// MCN load test: the paper's motivating use case (§2.2) — drive a mobile
// core network implementation with synthesized control-plane traffic and
// measure its load, latency and autoscaling behaviour.
//
// This example runs the pipeline twice:
//
//  1. in-process, against the virtual-time MCN simulator (deterministic
//     latency/autoscaling numbers), and
//  2. over TCP, against the replaynet MCN frontend, with the trace paced at
//     a wall-clock speedup — i.e. a real networked load test.
package main

import (
	"fmt"
	"log"

	cptgen "cptgpt"
	"cptgpt/internal/events"
)

func main() {
	log.SetFlags(0)

	// Train a small CPT-GPT model on ground truth and synthesize the
	// workload that will drive the MCN.
	gtCfg := cptgen.DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{cptgen.Phone: 250}
	gtCfg.Hours = 1
	real, err := cptgen.GenerateGroundTruth(gtCfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cptgen.DefaultCPTGPTConfig()
	cfg.Epochs = 8
	model, err := cptgen.TrainCPTGPT(real, cfg, cptgen.CPTGPTTrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	// StartWindow staggers stream starts over 30 minutes so the MCN sees a
	// realistic arrival pattern rather than a synchronized attach storm.
	workload, err := model.Generate(cptgen.CPTGPTGenOpts{
		NumStreams: 500, Device: cptgen.Phone, Seed: 7, StartWindow: 1800,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthesized workload:", workload.Summarize())

	// --- 1. Virtual-time MCN simulation -------------------------------
	mcnCfg := cptgen.DefaultMCNConfig()
	rep, err := cptgen.SimulateMCN(workload, mcnCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated MCN (virtual time):\n")
	fmt.Printf("  events processed:    %d (rejected %d semantically invalid)\n", rep.Events, rep.Rejected)
	fmt.Printf("  latency mean/p95/p99: %.1f / %.1f / %.1f ms\n",
		1000*rep.MeanLatencySec, 1000*rep.P95LatencySec, 1000*rep.P99LatencySec)
	fmt.Printf("  peak arrival rate:   %.1f events/s\n", rep.PeakRate)
	fmt.Printf("  peak CONNECTED UEs:  %d (per-UE state the core must hold)\n", rep.PeakConnectedUEs)
	fmt.Printf("  autoscaler high-water mark: %d instances\n", rep.MaxInstancesUsed)

	// --- 2. Networked replay over TCP ---------------------------------
	srv, err := cptgen.ListenMCN("127.0.0.1:0", cptgen.Gen4G)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("\nreplaying over TCP to %s (3600x speedup)...\n", srv.Addr())

	stats, err := cptgen.ReplayOverTCP(srv.Addr().String(), workload, cptgen.ReplayOpts{Speedup: 3600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server accounting: %d events, %d rejected, peak CONNECTED UEs %d\n",
		stats.Events, stats.Rejected, stats.PeakConnectedUEs)
	fmt.Printf("per-type counts: %v\n", stats.ByType)
}
