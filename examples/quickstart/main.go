// Quickstart: generate a ground-truth workload, train CPT-GPT on it,
// synthesize new traffic and evaluate its fidelity — the whole pipeline in
// one main.
package main

import (
	"fmt"
	"log"

	cptgen "cptgpt"
	"cptgpt/internal/events"
)

func main() {
	log.SetFlags(0)

	// 1. Ground truth: a small 1-hour phone workload standing in for a
	// carrier trace.
	gtCfg := cptgen.DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{cptgen.Phone: 300}
	gtCfg.Hours = 1
	real, err := cptgen.GenerateGroundTruth(gtCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ground truth:", real.Summarize())

	// 2. Train CPT-GPT. No domain knowledge goes in: the model sees only
	// tokenized (event, interarrival, stop) triples.
	cfg := cptgen.DefaultCPTGPTConfig()
	cfg.Epochs = 10
	model, err := cptgen.TrainCPTGPT(real, cfg, cptgen.CPTGPTTrainOpts{
		OnEpoch: func(e int, loss float64) { fmt.Printf("  epoch %2d  loss %.4f\n", e+1, loss) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained CPT-GPT: %d parameters\n", model.NumParams())

	// 3. Synthesize a fresh UE population of arbitrary size.
	synth, err := model.Generate(cptgen.CPTGPTGenOpts{NumStreams: 300, Device: cptgen.Phone, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthesized:", synth.Summarize())

	// 4. Evaluate fidelity: stateful semantics and distribution metrics.
	f := cptgen.Evaluate(real, synth)
	fmt.Printf("\nfidelity vs ground truth:\n")
	fmt.Printf("  semantic violations: %.3f%% of events, %.2f%% of streams\n",
		100*f.EventViolation, 100*f.StreamViolation)
	fmt.Printf("  sojourn CONNECTED max y-distance: %.1f%%\n", 100*f.SojournConnMaxY)
	fmt.Printf("  sojourn IDLE max y-distance:      %.1f%%\n", 100*f.SojournIdleMaxY)
	fmt.Printf("  flow length max y-distance:       %.1f%%\n", 100*f.FlowLenMaxY)
	for i, ev := range f.Vocab {
		fmt.Printf("  %-12s real %6.2f%%  synth diff %+5.2f%%\n",
			ev, 100*f.BreakdownReal[i], 100*f.BreakdownDiff[i])
	}

	// 5. The model is a deployable artifact (§4.5: weights + initial-event
	// distribution are released together).
	if err := model.SaveFile("cptgpt-phone.bin"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsaved model to cptgpt-phone.bin")
}
