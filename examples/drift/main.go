// Drift adaptation: the paper's Design 3 — control-plane traffic drifts
// with the hour of day, and instead of retraining hourly models from
// scratch, CPT-GPT warm-starts each hour's model from the previous one.
//
// The example trains a base model on the morning hour of a multi-hour
// trace, adapts it to the busier midday hour by fine-tuning, and compares
// (a) the adaptation cost against a from-scratch run and (b) the fidelity
// of both models on the midday traffic.
package main

import (
	"fmt"
	"log"
	"time"

	cptgen "cptgpt"
	"cptgpt/internal/events"
)

func main() {
	log.SetFlags(0)

	// A 3-hour trace crossing the morning activity ramp (StartHour 7).
	gtCfg := cptgen.DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{cptgen.Phone: 400}
	gtCfg.Hours = 3
	gtCfg.StartHour = 7
	full, err := cptgen.GenerateGroundTruth(gtCfg)
	if err != nil {
		log.Fatal(err)
	}
	hour0 := full.SliceHour(0)
	hour2 := full.SliceHour(2)
	fmt.Println("hour 0:", hour0.Summarize())
	fmt.Println("hour 2:", hour2.Summarize())

	// Base model on hour 0.
	cfg := cptgen.DefaultCPTGPTConfig()
	cfg.Epochs = 10
	t0 := time.Now()
	base, err := cptgen.TrainCPTGPT(hour0, cfg, cptgen.CPTGPTTrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	baseTime := time.Since(t0)
	fmt.Printf("\nbase model (hour 0): trained in %s\n", baseTime.Round(time.Millisecond))

	// Transfer learning to hour 2.
	t0 = time.Now()
	adapted, err := cptgen.FineTuneCPTGPT(base, hour2, cptgen.CPTGPTTrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	xferTime := time.Since(t0)

	// From-scratch competitor on hour 2 with the base epoch budget.
	t0 = time.Now()
	scratch, err := cptgen.TrainCPTGPT(hour2, cfg, cptgen.CPTGPTTrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	scratchTime := time.Since(t0)

	fmt.Printf("adapting to hour 2:  transfer %s vs scratch %s (%.1fx faster)\n",
		xferTime.Round(time.Millisecond), scratchTime.Round(time.Millisecond),
		float64(scratchTime)/float64(xferTime))

	// Fidelity of all three models on the drifted hour.
	for _, tc := range []struct {
		name string
		m    *cptgen.CPTGPTModel
	}{
		{"base (no adaptation)", base},
		{"transfer-learned", adapted},
		{"from scratch", scratch},
	} {
		gen, err := tc.m.Generate(cptgen.CPTGPTGenOpts{NumStreams: 300, Device: cptgen.Phone, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		f := cptgen.Evaluate(hour2, gen)
		fmt.Printf("  %-22s violations %.2f%%  flow-len KS %.1f%%  sojourn-CONN KS %.1f%%\n",
			tc.name, 100*f.EventViolation, 100*f.FlowLenMaxY, 100*f.SojournConnMaxY)
	}
	fmt.Println("\nthe transfer-learned model matches the scratch model's fidelity at a fraction of the cost (Design 3)")
}
