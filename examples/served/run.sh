#!/bin/sh
# Runnable version of the docs/OPERATIONS.md walkthrough: start cptserved,
# drive the flash-crowd builtin into the simulated mobile core at
# compressed time, watch p99 latency and the autoscaler react, stop the
# run, and shut the daemon down cleanly.
#
# Usage: examples/served/run.sh [compression] [ues]
# Needs: go, curl. No model files — the builtin runs on the synthetic
# generator. The daemon listens on an ephemeral localhost port.
set -eu

COMPRESSION=${1:-60}
UES=${2:-3000}
ADDR=127.0.0.1:${CPTSERVED_PORT:-18080}
cd "$(dirname "$0")/../.."

echo "== building and starting cptserved on $ADDR"
go build -o /tmp/cptserved.example ./cmd/cptserved
/tmp/cptserved.example -addr "$ADDR" &
DAEMON=$!
trap 'kill -TERM $DAEMON 2>/dev/null; wait $DAEMON 2>/dev/null || true' EXIT

# Wait for the daemon to come up.
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null

echo "== starting flash-crowd: $UES UEs, compression $COMPRESSION, mcn sink"
RESP=$(curl -sf -X POST "http://$ADDR/runs" \
    -d "{\"scenario\": \"flash-crowd\", \"ues\": $UES,
         \"compression\": $COMPRESSION, \"sink\": \"mcn\"}")
RUN=$(printf '%s' "$RESP" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
echo "   run id: $RUN"

echo "== watching p99 latency / instances / connected UEs (8 samples)"
for _ in $(seq 1 8); do
    sleep 2
    STATS=$(curl -sf "http://$ADDR/runs/$RUN/stats")
    printf '%s\n' "$STATS" | tr ',' '\n' | tr -d ' "{}' \
        | grep -E '^(state|events|latency_p99_ms|instances|connected_ues):' \
        | paste -sd' ' -
    STATE=$(printf '%s' "$STATS" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    [ "$STATE" = done ] && break
done

echo "== the same telemetry, Prometheus-shaped"
curl -sf "http://$ADDR/metrics" | grep -E 'cptserved_(mcn_latency_seconds.*p99|mcn_instances|run_events_total)' || true

echo "== stopping the run (clean drain; partial mcn report in result)"
curl -sf -X DELETE "http://$ADDR/runs/$RUN"
echo
echo "== done — daemon shuts down via trap"
