#!/bin/sh
# Runnable version of the docs/OPERATIONS.md "Overload protection"
# walkthrough: start cptserved with tight admission budgets, throw a 10x
# submit storm at it, and watch the three outcomes — immediate admission
# (201), the bounded FIFO queue (202, state "queued"), and 429 +
# Retry-After — then watch the queue pump every parked run to completion
# as budget frees, with /healthz degrading and recovering along the way.
#
# Usage: examples/served/overload.sh [storm-size]
# Needs: go, curl. No model files — the builtin runs on the synthetic
# generator. The daemon listens on an ephemeral localhost port.
set -eu

STORM=${1:-20}
ADDR=127.0.0.1:${CPTSERVED_PORT:-18080}
cd "$(dirname "$0")/../.."

echo "== building and starting cptserved on $ADDR (2 run slots, 4 queue slots)"
go build -o /tmp/cptserved.overload ./cmd/cptserved
/tmp/cptserved.overload -addr "$ADDR" \
    -max-active-runs 2 -max-total-ues 5000 -queue-depth 4 &
DAEMON=$!
trap 'kill -TERM $DAEMON 2>/dev/null; wait $DAEMON 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null

echo "== submit storm: $STORM paced flash-crowd runs at a 2-run daemon"
CODES=$(mktemp)
for _ in $(seq 1 "$STORM"); do
    curl -s -o /dev/null -w '%{http_code}\n' -X POST "http://$ADDR/runs" \
        -d '{"scenario": "flash-crowd", "ues": 500, "compression": 1800}' \
        >>"$CODES"
done
echo "   status codes (201 admitted / 202 queued / 429 rejected):"
sort "$CODES" | uniq -c
rm -f "$CODES"

echo "== while the queue is full, readiness degrades"
curl -s "http://$ADDR/healthz"
echo

echo "== admission telemetry mid-storm"
curl -sf "http://$ADDR/metrics" | grep -E '^cptserved_(admission|healthz)' || true

echo "== waiting for the queue to burn down (FIFO, pumped as runs finish)"
for _ in $(seq 1 120); do
    LEFT=$(curl -sf "http://$ADDR/runs" | grep -c '"state": "queued"' || true)
    ACTIVE=$(curl -sf "http://$ADDR/metrics" \
        | sed -n 's/^cptserved_runs_active \([0-9.]*\)$/\1/p')
    echo "   queued: $LEFT  active: $ACTIVE"
    [ "$LEFT" = 0 ] && break
    sleep 2
done

echo "== every admitted run reaches a terminal state; readiness recovers"
curl -s "http://$ADDR/healthz"
echo
curl -sf "http://$ADDR/runs" \
    | grep -o '"state": "[a-z]*"' | sort | uniq -c
curl -sf "http://$ADDR/metrics" | grep -E '^cptserved_admission' || true

echo "== done — daemon shuts down via trap"
