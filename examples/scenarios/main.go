// Scenario quickstart: compose a declarative workload and stream it into
// the MCN simulator — the paper's downstream use case (§2.2) staged as a
// named, reproducible scenario.
//
// The example (1) takes the built-in flash-crowd preset, (2) round-trips it
// through JSON the way a user-authored spec would load, (3) runs it at a
// 20k-UE population through the streaming pipeline into the simulated
// mobile-core NF, and (4) re-runs the count sink to show the workload
// shape. Peak memory stays O(chunk) regardless of the population: crank
// -ues (well, the UEs constant) to a million and the pipeline shape does
// not change.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	cptgen "cptgpt"
)

const ues = 20000

func main() {
	log.SetFlags(0)

	// 1. A built-in preset is just a Spec value; user scenarios are the
	// same thing loaded from JSON.
	spec, err := cptgen.BuiltinScenario("flash-crowd")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Round-trip through JSON, exactly as a hand-written spec loads.
	dir, err := os.MkdirTemp("", "scenario-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	specPath := filepath.Join(dir, "flash-crowd.json")
	if err := spec.Save(specPath); err != nil {
		log.Fatal(err)
	}
	if spec, err = cptgen.LoadScenario(specPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec %q: %s\n", spec.Name, spec.Description)

	// 3. Stream the scenario into the simulated mobile-core NF. The MCN
	// pulls events incrementally from the merged iterator; nothing
	// materializes a dataset.
	rep, err := cptgen.RunScenarioMCN(spec, cptgen.ScenarioRunOpts{UEs: ues}, cptgen.DefaultMCNConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mcn over %d UEs: %d events, %d rejected (duplicate signaling), peak %.0f ev/s\n",
		rep.UEs, rep.Events, rep.Rejected, rep.PeakRate)
	fmt.Printf("mcn autoscaling: instances max=%d final=%d, p99 latency %.1fms\n",
		rep.MaxInstancesUsed, rep.FinalInstances, 1e3*rep.P99LatencySec)

	// 4. The count sink summarizes the workload shape: the crowd spike at
	// t=1200s should own the peak-rate window.
	sum, err := cptgen.RunScenario(spec, cptgen.ScenarioRunOpts{UEs: ues})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d events, peak %.1f ev/s in window at %.0fs\n",
		sum.Events, sum.PeakRate, sum.PeakWindowStart)
}
