// Baselines: fit all four generators of the paper's evaluation — SMM-1,
// clustered SMM-K, NetShare (GAN/LSTM) and CPT-GPT — on the same workload
// and print a Table-6-style fidelity comparison.
package main

import (
	"fmt"
	"log"

	cptgen "cptgpt"
	"cptgpt/internal/events"
)

func main() {
	log.SetFlags(0)

	gtCfg := cptgen.DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{cptgen.Phone: 400}
	gtCfg.Hours = 1
	real, err := cptgen.GenerateGroundTruth(gtCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", real.Summarize())
	const n = 400

	type gen struct {
		name  string
		synth *cptgen.Dataset
	}
	var gens []gen

	// SMM-1: one semi-Markov model (domain knowledge, no heterogeneity).
	smm1Cfg := cptgen.DefaultSMMConfig()
	smm1, err := cptgen.FitSMM(real, smm1Cfg)
	if err != nil {
		log.Fatal(err)
	}
	d, err := smm1.Generate(cptgen.SMMGenOpts{NumStreams: n, Device: cptgen.Phone, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	gens = append(gens, gen{"SMM-1", d})

	// SMM-K: one model per UE cluster (the paper's SMM-20k construction).
	smmKCfg := cptgen.DefaultSMMConfig()
	smmKCfg.K = 12
	smmK, err := cptgen.FitSMM(real, smmKCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SMM-K: %d clusters, %d sojourn CDFs\n", smmK.K(), smmK.NumCDFs())
	if d, err = smmK.Generate(cptgen.SMMGenOpts{NumStreams: n, Device: cptgen.Phone, Seed: 2}); err != nil {
		log.Fatal(err)
	}
	gens = append(gens, gen{"SMM-K", d})

	// NetShare: the GAN/LSTM baseline.
	nsCfg := cptgen.DefaultNetShareConfig()
	nsCfg.Epochs = 12
	fmt.Println("training NetShare (GAN)...")
	ns, err := cptgen.TrainNetShare(real, nsCfg, cptgen.NetShareTrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if d, err = ns.Generate(cptgen.NetShareGenOpts{NumStreams: n, Device: cptgen.Phone, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	gens = append(gens, gen{"NetShare", d})

	// CPT-GPT: the paper's transformer.
	cgCfg := cptgen.DefaultCPTGPTConfig()
	cgCfg.Epochs = 12
	fmt.Println("training CPT-GPT (transformer)...")
	cg, err := cptgen.TrainCPTGPT(real, cgCfg, cptgen.CPTGPTTrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if d, err = cg.Generate(cptgen.CPTGPTGenOpts{NumStreams: n, Device: cptgen.Phone, Seed: 4}); err != nil {
		log.Fatal(err)
	}
	gens = append(gens, gen{"CPT-GPT", d})

	// Table-6-style comparison.
	fmt.Printf("\n%-10s %12s %12s %12s %12s %12s\n",
		"generator", "ev-viol", "str-viol", "sojC-KS", "sojI-KS", "flow-KS")
	for _, g := range gens {
		f := cptgen.Evaluate(real, g.synth)
		fmt.Printf("%-10s %11.3f%% %11.2f%% %11.1f%% %11.1f%% %11.1f%%\n",
			g.name, 100*f.EventViolation, 100*f.StreamViolation,
			100*f.SojournConnMaxY, 100*f.SojournIdleMaxY, 100*f.FlowLenMaxY)
	}
	fmt.Println("\nexpected shape: SMM-* have zero violations by construction but SMM-1 poor")
	fmt.Println("distribution fidelity; CPT-GPT near-zero violations without domain knowledge.")
}
