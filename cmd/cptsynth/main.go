// Command cptsynth samples a synthetic control-plane trace from a trained
// model (CPT-GPT or NetShare) or from an SMM fit of a reference trace.
//
// Usage:
//
//	cptsynth -model cptgpt  -model-file model.bin -n 1000 -out synth.jsonl
//	cptsynth -model cptgpt  -model-file model.bin -n 1000000 -precision f32 -speculative -draft-k 4 -out synth.jsonl.gz
//	cptsynth -model netshare -model-file model.bin -n 1000 -out synth.jsonl
//	cptsynth -model smm -k 16 -fit trace.jsonl -n 1000 -out synth.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	cptgen "cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/netshare"
	"cptgpt/internal/tracez"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cptsynth: ")

	var (
		model     = flag.String("model", "cptgpt", "generator: cptgpt, netshare or smm")
		modelFile = flag.String("model-file", "model.bin", "trained model path (cptgpt/netshare)")
		fit       = flag.String("fit", "", "reference trace to fit (smm)")
		k         = flag.Int("k", 1, "SMM cluster count (1 = SMM-1)")
		n         = flag.Int("n", 1000, "number of UE streams to synthesize")
		device    = flag.String("device", "phone", "device label: phone, connected_car, tablet")
		gen       = flag.String("gen", "4G", "generation (CSV fit inputs and netshare models)")
		out       = flag.String("out", "synth.jsonl", "output trace path")
		seed      = flag.Uint64("seed", 3, "random seed")
		par       = flag.Int("parallelism", 0, "worker count for generation (0 = all cores); output is identical at any value")
		batch     = flag.Int("batch", 0, "CPT-GPT decode batch size: slots per continuously refilled decoder (0 = default)")
		precision = flag.String("precision", "", "CPT-GPT decode arithmetic: f64 (bit-exact, default) or f32 (fast float32 path)")
		spec      = flag.Bool("speculative", false, "CPT-GPT speculative decoding: a self-fitted draft proposes -draft-k tokens per UE, one multi-token pass verifies them; output distribution is exact, deterministic per -seed")
		draftK    = flag.Int("draft-k", 0, "speculative draft chain length (0 = default)")
		trace     = flag.Bool("trace", false, "record flight-recorder spans and dump the per-stage timing summary to stderr on exit")
	)
	flag.Parse()
	if *trace {
		tracez.Enable()
		// log.Fatal paths skip this: the summary is a success-path report.
		defer func() { fmt.Fprint(os.Stderr, tracez.Summary()) }()
	}
	if *par > 0 {
		cptgen.SetParallelism(*par)
	}
	// Validate up front so a typo errors for every -model, not just cptgpt
	// (the only generator the knob applies to).
	prec, err := cptgen.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}

	dev, err := events.ParseDeviceType(*device)
	if err != nil {
		log.Fatal(err)
	}
	g, err := events.ParseGeneration(*gen)
	if err != nil {
		log.Fatal(err)
	}

	var d *cptgen.Dataset
	switch *model {
	case "cptgpt":
		m, err := cptgen.LoadCPTGPT(*modelFile)
		if err != nil {
			log.Fatal(err)
		}
		var st cptgen.CPTGPTDecodeStats
		opts := cptgen.CPTGPTGenOpts{
			NumStreams: *n, Device: dev, Seed: *seed, Precision: prec,
			Parallelism: *par, BatchSize: *batch,
			Speculative: *spec, DraftTokens: *draftK, Stats: &st,
		}
		if d, err = m.Generate(opts); err != nil {
			log.Fatal(err)
		}
		if *spec && st.DraftProposed > 0 {
			fmt.Printf("speculative decode: %d/%d draft tokens accepted (%.1f%%)\n",
				st.DraftAccepted, st.DraftProposed, 100*float64(st.DraftAccepted)/float64(st.DraftProposed))
		}
	case "netshare":
		cfg := cptgen.DefaultNetShareConfig()
		cfg.Generation = g
		m, err := netshare.LoadFile(*modelFile, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if d, err = m.Generate(cptgen.NetShareGenOpts{NumStreams: *n, Device: dev, Seed: *seed, Parallelism: *par}); err != nil {
			log.Fatal(err)
		}
	case "smm":
		if *fit == "" {
			log.Fatal("-fit is required for -model smm")
		}
		ref, err := cptgen.LoadTrace(*fit, g)
		if err != nil {
			log.Fatal(err)
		}
		cfg := cptgen.DefaultSMMConfig()
		cfg.K = *k
		cfg.Seed = *seed
		m, err := cptgen.FitSMM(ref, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fitted SMM: %d clusters, %d sojourn CDFs\n", m.K(), m.NumCDFs())
		if d, err = m.Generate(cptgen.SMMGenOpts{NumStreams: *n, Device: dev, Seed: *seed, Parallelism: *par}); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -model %q", *model)
	}

	if err := cptgen.SaveTrace(*out, d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, d.Summarize())
}
