// Command cpttrain fits a traffic generator on a trace and saves the model.
//
// Usage:
//
//	cpttrain -model cptgpt  -in trace.jsonl -out model.bin -epochs 20
//	cpttrain -model netshare -in trace.jsonl -out model.bin
//	cpttrain -model smm -k 16 -in trace.jsonl -out model.bin   (SMM is
//	  re-fit at generation time; -out stores the trace reference)
package main

import (
	"flag"
	"fmt"
	"log"

	cptgen "cptgpt"
	"cptgpt/internal/events"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpttrain: ")

	var (
		model  = flag.String("model", "cptgpt", "generator to train: cptgpt or netshare")
		in     = flag.String("in", "trace.jsonl", "training trace path")
		out    = flag.String("out", "model.bin", "output model path")
		gen    = flag.String("gen", "4G", "generation for CSV inputs")
		epochs = flag.Int("epochs", 0, "override epoch count (0 = config default)")
		dmodel = flag.Int("dmodel", 32, "CPT-GPT attention width")
		seed   = flag.Uint64("seed", 7, "random seed")
		par    = flag.Int("parallelism", 0, "tensor-kernel worker count (0 = all cores); trained weights are identical at any value")
		micro  = flag.Int("microbatch", 0, "CPT-GPT streams packed per training forward pass (0 = config default, 1 = serial); trained weights are identical at any value")
	)
	flag.Parse()
	if *par > 0 {
		cptgen.SetParallelism(*par)
	}

	g, err := events.ParseGeneration(*gen)
	if err != nil {
		log.Fatal(err)
	}
	d, err := cptgen.LoadTrace(*in, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %s\n", *in, d.Summarize())

	switch *model {
	case "cptgpt":
		cfg := cptgen.DefaultCPTGPTConfig()
		cfg.Generation = d.Generation
		cfg.DModel = *dmodel
		cfg.MLPHidden = 2 * *dmodel
		cfg.HeadHidden = *dmodel
		cfg.Seed = *seed
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		m, err := cptgen.TrainCPTGPT(d, cfg, cptgen.CPTGPTTrainOpts{
			MicrobatchStreams: *micro,
			OnEpoch:           func(e int, loss float64) { fmt.Printf("epoch %d: loss %.4f\n", e+1, loss) },
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d parameters, %d bytes of weights)\n", *out, m.NumParams(), m.WeightBytes())
	case "netshare":
		cfg := cptgen.DefaultNetShareConfig()
		cfg.Generation = d.Generation
		cfg.Seed = *seed
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		m, err := cptgen.TrainNetShare(d, cfg, cptgen.NetShareTrainOpts{
			OnEpoch: func(e int, dl, gl float64) { fmt.Printf("epoch %d: D %.4f G %.4f\n", e+1, dl, gl) },
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d parameters)\n", *out, m.NumParams())
	default:
		log.Fatalf("unknown -model %q (want cptgpt or netshare)", *model)
	}
}
