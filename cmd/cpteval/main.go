// Command cpteval computes the paper's fidelity metrics between a real and
// a synthesized control-plane trace.
//
// Usage:
//
//	cpteval -real trace.jsonl -synth synth.jsonl
package main

import (
	"flag"
	"fmt"
	"log"

	cptgen "cptgpt"
	"cptgpt/internal/events"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpteval: ")

	var (
		realPath  = flag.String("real", "trace.jsonl", "reference trace path")
		synthPath = flag.String("synth", "synth.jsonl", "synthesized trace path")
		gen       = flag.String("gen", "4G", "generation for CSV inputs")
		memN      = flag.Int("mem-n", 0, "also run the n-gram memorization audit with this n (0 = skip)")
		memEps    = flag.Float64("mem-eps", 0.1, "memorization interarrival tolerance")
	)
	flag.Parse()

	g, err := events.ParseGeneration(*gen)
	if err != nil {
		log.Fatal(err)
	}
	real, err := cptgen.LoadTrace(*realPath, g)
	if err != nil {
		log.Fatal(err)
	}
	synth, err := cptgen.LoadTrace(*synthPath, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real:  %s\n", real.Summarize())
	fmt.Printf("synth: %s\n", synth.Summarize())

	f := cptgen.Evaluate(real, synth)
	fmt.Printf("\nsemantic violations: events %.3f%%  streams %.2f%%\n",
		100*f.EventViolation, 100*f.StreamViolation)
	for _, v := range f.TopViolations {
		fmt.Printf("  top violation: state %s + event %s (%.3f%% of events)\n", v.State, v.Event, 100*v.Share)
	}
	fmt.Printf("max CDF y-distance:\n")
	fmt.Printf("  sojourn CONNECTED     %.1f%%\n", 100*f.SojournConnMaxY)
	fmt.Printf("  sojourn IDLE          %.1f%%\n", 100*f.SojournIdleMaxY)
	fmt.Printf("  flow length (all)     %.1f%%\n", 100*f.FlowLenMaxY)
	fmt.Printf("  flow length (SRV_REQ) %.1f%%\n", 100*f.FlowLenSrvReqMaxY)
	fmt.Printf("  flow length (REL)     %.1f%%\n", 100*f.FlowLenRelMaxY)
	fmt.Printf("event breakdown (synth - real):\n")
	for i, ev := range f.Vocab {
		fmt.Printf("  %-12s real %6.2f%%  diff %+6.2f%%\n", ev, 100*f.BreakdownReal[i], 100*f.BreakdownDiff[i])
	}

	if *memN > 0 {
		r, err := cptgen.Memorization(synth, real, *memN, *memEps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("memorization: %.3f%% of %d-grams repeat (eps %.0f%%)\n",
			100*r.Rate(), *memN, 100**memEps)
	}
}
