// Command cptscenario runs a declarative workload scenario through the
// streaming pipeline into a chosen sink.
//
// Usage:
//
//	cptscenario -list
//	cptscenario -spec flash-crowd -ues 1000000 -sink mcn
//	cptscenario -spec my-scenario.json -ues 100000 -sink jsonl -out events.jsonl.gz
//	cptscenario -spec handover-storm -save-spec storm.json
//	cptscenario -spec paging-storm -sink replay -addr 127.0.0.1:9000 -speedup 600
//	cptscenario -spec my-model-mix.json -ues 1000000 -precision f32 -speculative on -draft-k 4 -sink mcn
//
// -spec accepts a built-in name or a JSON spec path. Sinks: "count" (drain
// and summarize), "mcn" (the simulated mobile-core NF), "jsonl"/"csv"
// (event-interleaved trace files, ".gz"-transparent) and "replay" (pace
// onto a replaynet TCP server). Peak memory is O(-batch), independent of
// -ues, and output is bit-identical at every -parallelism and -batch.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	cptgen "cptgpt"
	"cptgpt/internal/scenario"
	"cptgpt/internal/tracez"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cptscenario: ")

	var (
		specArg  = flag.String("spec", "", "built-in scenario name or spec JSON path")
		list     = flag.Bool("list", false, "list built-in scenarios and exit")
		saveSpec = flag.String("save-spec", "", "write the resolved spec as JSON and exit")
		ues      = flag.Int("ues", 0, "total UE population (0 = the spec's default)")
		sink     = flag.String("sink", "count", "sink: count, mcn, jsonl, csv or replay")
		out      = flag.String("out", "", "output path for jsonl/csv sinks (default stdout; .gz compresses)")
		addr     = flag.String("addr", "127.0.0.1:9000", "replaynet server address (replay sink)")
		speedup  = flag.Float64("speedup", 0, "trace-time speedup for the replay sink (0 = full speed)")

		closedLoop = flag.Bool("closed-loop", false, "replay sink: acknowledged closed-loop driver (CUBIC window, RTT/RTO, reconnect-resume) instead of open-loop pacing")
		sloP99     = flag.Duration("slo-p99", 0, "replay sink: run the SLO-search controller, ramping offered load to the max sustained rate whose p99 transaction latency meets this SLO (implies -closed-loop)")
		sloRate    = flag.Float64("slo-rate", 0, "SLO search: initial probe rate in events/s (0 = default)")
		sloWindow  = flag.Int("slo-window", 0, "SLO search: acked events per probe window (0 = default)")

		replaySelf  = flag.Bool("replay-self", false, "replay sink: serve an in-process replaynet server instead of connecting to -addr (self-contained load tests)")
		selfService = flag.Duration("self-service-time", 0, "replay-self: per-event service time (rate-limits the in-process server at 1/value events/s per connection)")

		faultSeed    = flag.Uint64("fault-seed", 1, "fault injection: deterministic schedule seed")
		faultDrop    = flag.Float64("fault-drop", 0, "fault injection: per-write silent drop probability [0,1]")
		faultReset   = flag.Float64("fault-reset", 0, "fault injection: per-write connection reset probability [0,1]")
		faultPartial = flag.Float64("fault-partial", 0, "fault injection: per-write partial-write-then-sever probability [0,1]")
		faultStall   = flag.Float64("fault-stall", 0, "fault injection: per-call stall probability [0,1]")
		faultSide    = flag.String("fault-side", "client", "fault injection side: client, server (needs -replay-self) or both")
		par          = flag.Int("parallelism", 0, "generation worker count (0 = all cores); output is identical at any value")
		batch        = flag.Int("batch", 0, "UE streams per generation chunk (0 = default); output is identical at any value")
		fanIn        = flag.Int("fanin", 0, "merge fan-in bound (0 = default)")
		tmp          = flag.String("tmp", "", "spill directory (default system temp)")
		trace        = flag.Bool("trace", false, "record flight-recorder spans and dump the per-stage timing summary to stderr on exit")
		prec         = flag.String("precision", "", "override cptgpt sources' decode arithmetic: f64 (bit-exact) or f32 (fast float32 path); empty keeps each source's spec setting")
		specDec      = flag.String("speculative", "", "override cptgpt sources' speculative decoding: on or off; empty keeps each source's spec setting")
		draftK       = flag.Int("draft-k", 0, "override cptgpt sources' speculative draft chain length (0 keeps spec settings)")
	)
	flag.Parse()

	if *trace {
		tracez.Enable()
		// log.Fatal paths skip this: the summary is a success-path report.
		defer func() { fmt.Fprint(os.Stderr, tracez.Summary()) }()
	}

	// Validate up front: the overrides only reach the parser when the spec
	// has a cptgpt source, and a typo must not be silently dropped on the
	// all-synthetic built-ins.
	if _, err := cptgen.ParsePrecision(*prec); err != nil {
		log.Fatal(err)
	}
	switch *specDec {
	case "", "on", "off":
	default:
		log.Fatalf("unknown -speculative %q (want on, off or empty)", *specDec)
	}

	if *list {
		for _, name := range cptgen.BuiltinScenarios() {
			spec, err := cptgen.BuiltinScenario(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-24s %s\n", name, spec.Description)
		}
		return
	}
	if *specArg == "" {
		log.Fatal("-spec is required (see -list for built-ins)")
	}

	spec, err := loadSpec(*specArg)
	if err != nil {
		log.Fatal(err)
	}
	if *saveSpec != "" {
		if err := spec.Save(*saveSpec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveSpec)
		return
	}

	opts := cptgen.ScenarioRunOpts{
		UEs: *ues, Parallelism: *par, BatchSize: *batch,
		MaxFanIn: *fanIn, TempDir: *tmp, Precision: *prec,
		Speculative: *specDec, DraftTokens: *draftK,
	}

	start := time.Now()
	switch *sink {
	case "count":
		sum, err := cptgen.RunScenario(spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		printSummary(spec, sum, time.Since(start))

	case "mcn":
		rep, err := cptgen.RunScenarioMCN(spec, opts, cptgen.DefaultMCNConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario %s: %d events from %d UEs in %v\n", spec.Name, rep.Events, rep.UEs, time.Since(start).Round(time.Millisecond))
		fmt.Printf("mcn: rejected=%d (%.4f%%) peak_rate=%.1f/s peak_connected=%d\n",
			rep.Rejected, 100*float64(rep.Rejected)/float64(max(rep.Events, 1)), rep.PeakRate, rep.PeakConnectedUEs)
		fmt.Printf("mcn: latency mean=%.2fms p95=%.2fms p99=%.2fms instances[final=%d max=%d]\n",
			1e3*rep.MeanLatencySec, 1e3*rep.P95LatencySec, 1e3*rep.P99LatencySec, rep.FinalInstances, rep.MaxInstancesUsed)

	case "jsonl", "csv":
		// log.Fatal skips deferred cleanup, so the stream (and its spill
		// directory) is closed explicitly before any fatal exit.
		st, err := cptgen.OpenScenario(spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		w, closeW, err := openOut(*out)
		if err != nil {
			st.Close()
			log.Fatal(err)
		}
		var n int
		if *sink == "jsonl" {
			n, err = scenario.WriteJSONL(w, st)
		} else {
			n, err = scenario.WriteCSV(w, st)
		}
		if cerr := closeW(); err == nil {
			err = cerr
		}
		st.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scenario %s: wrote %d events in %v\n", spec.Name, n, time.Since(start).Round(time.Millisecond))

	case "replay":
		fcfg := cptgen.FaultConfig{
			Seed: *faultSeed, DropProb: *faultDrop, ResetProb: *faultReset,
			PartialProb: *faultPartial, StallProb: *faultStall,
		}
		if err := fcfg.Validate(); err != nil {
			log.Fatal(err)
		}
		faultsOn := *faultDrop > 0 || *faultReset > 0 || *faultPartial > 0 || *faultStall > 0
		switch *faultSide {
		case "client", "server", "both":
		default:
			log.Fatalf("unknown -fault-side %q (want client, server or both)", *faultSide)
		}
		if faultsOn && *faultSide != "client" && !*replaySelf {
			log.Fatal("server-side fault injection requires -replay-self")
		}

		st, err := cptgen.OpenScenario(spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		target := *addr
		if *replaySelf {
			sopts := cptgen.ReplayServerOpts{ServiceTime: *selfService}
			if faultsOn && *faultSide != "client" {
				cfg := fcfg
				sopts.Fault = &cfg
			}
			srv, err := cptgen.ListenMCNOpts("127.0.0.1:0", st.Generation(), sopts)
			if err != nil {
				st.Close()
				log.Fatal(err)
			}
			defer srv.Close()
			target = srv.Addr().String()
		}
		copts := cptgen.ReplayClosedOpts{Speedup: *speedup}
		if faultsOn && *faultSide != "server" {
			copts.Dial = cptgen.FaultDialer(fcfg)
		}

		switch {
		case *sloP99 > 0:
			res, err := scenario.ReplaySLOSearch(target, st, copts, cptgen.ReplaySearchOpts{
				SLOP99: *sloP99, InitialRate: *sloRate, WindowEvents: *sloWindow,
			})
			st.Close()
			if err != nil {
				log.Fatal(err)
			}
			for i, r := range res.Rounds {
				fmt.Printf("round %2d: offered %8.1f/s achieved %8.1f/s p99 %8s  %s\n",
					i+1, r.Rate, r.Achieved, r.P99.Round(time.Microsecond),
					map[bool]string{true: "met", false: "VIOLATED"}[r.Met])
			}
			fmt.Printf("scenario %s slo-search in %v: max sustained rate %.1f events/s at p99 ≤ %v (converged=%v, %d rounds)\n",
				spec.Name, time.Since(start).Round(time.Millisecond), res.MaxRate, *sloP99, res.Converged, len(res.Rounds))
			fmt.Printf("transport: sent=%d acked=%d retx=%d reconnects=%d srtt=%v final_cwnd=%.1f\n",
				res.Transport.Sent, res.Transport.Acked, res.Transport.Retransmits,
				res.Transport.Reconnects, res.Transport.SRTT.Round(time.Microsecond), res.Transport.FinalCwnd)

		case *closedLoop:
			cst, err := scenario.ReplayClosed(target, st, copts)
			st.Close()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("scenario %s closed-loop replayed in %v: server applied %d events (%d rejected, %d duplicates suppressed), peak %d connected UEs\n",
				spec.Name, time.Since(start).Round(time.Millisecond), cst.Server.Events,
				cst.Server.Rejected, cst.Server.Duplicates, cst.Server.PeakConnectedUEs)
			fmt.Printf("transport: sent=%d acked=%d retx=%d reconnects=%d rate=%.1f/s latency mean=%v p99=%v srtt=%v cwnd=%.1f\n",
				cst.Sent, cst.Acked, cst.Retransmits, cst.Reconnects, cst.AchievedRate,
				cst.MeanLatency.Round(time.Microsecond), cst.P99Latency.Round(time.Microsecond),
				cst.SRTT.Round(time.Microsecond), cst.FinalCwnd)

		default:
			stats, err := scenario.ReplayTCP(target, st, cptgen.ReplayOpts{Speedup: *speedup})
			st.Close()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("scenario %s replayed in %v: server saw %d events, %d rejected, peak %d connected UEs\n",
				spec.Name, time.Since(start).Round(time.Millisecond), stats.Events, stats.Rejected, stats.PeakConnectedUEs)
		}

	default:
		log.Fatalf("unknown sink %q (want count, mcn, jsonl, csv or replay)", *sink)
	}
}

// loadSpec resolves a built-in name or a spec file path.
func loadSpec(arg string) (*cptgen.ScenarioSpec, error) {
	if strings.ContainsAny(arg, "./\\") {
		return cptgen.LoadScenario(arg)
	}
	if spec, err := cptgen.BuiltinScenario(arg); err == nil {
		return spec, nil
	}
	return cptgen.LoadScenario(arg)
}

// openOut opens the sink output (stdout when path is empty), transparently
// gzip-compressing a ".gz" path.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		return gz, func() error {
			if err := gz.Close(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}, nil
	}
	return f, f.Close, nil
}

func printSummary(spec *cptgen.ScenarioSpec, sum cptgen.ScenarioSummary, dur time.Duration) {
	fmt.Printf("scenario %s: %d events in [%.1fs, %.1fs], generated in %v\n",
		spec.Name, sum.Events, sum.FirstTime, sum.LastTime, dur.Round(time.Millisecond))
	fmt.Printf("peak rate %.1f events/s in window starting at %.0fs\n", sum.PeakRate, sum.PeakWindowStart)
	for t, n := range sum.ByType {
		if n > 0 {
			fmt.Printf("  %-12s %d\n", cptgen.EventType(t), n)
		}
	}
}
