// Command cptgen generates a ground-truth control-plane workload (the
// stand-in for a carrier trace) and writes it to disk.
//
// Usage:
//
//	cptgen -out trace.jsonl -phones 500 -cars 300 -tablets 250 -hours 2
package main

import (
	"flag"
	"fmt"
	"log"

	cptgen "cptgpt"
	"cptgpt/internal/events"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cptgen: ")

	var (
		out       = flag.String("out", "trace.jsonl", "output path (.csv or JSONL)")
		gen       = flag.String("gen", "4G", "cellular generation: 4G or 5G")
		phones    = flag.Int("phones", 500, "number of phone UEs")
		cars      = flag.Int("cars", 300, "number of connected-car UEs")
		tablets   = flag.Int("tablets", 250, "number of tablet UEs")
		hours     = flag.Int("hours", 1, "trace horizon in hours")
		startHour = flag.Int("start-hour", 10, "hour-of-day at t=0 (diurnal phase)")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	g, err := events.ParseGeneration(*gen)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cptgen.GroundTruthConfig{
		Generation: g,
		Seed:       *seed,
		UEs: map[events.DeviceType]int{
			events.Phone:        *phones,
			events.ConnectedCar: *cars,
			events.Tablet:       *tablets,
		},
		Hours:     *hours,
		StartHour: *startHour,
	}
	d, err := cptgen.GenerateGroundTruth(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := cptgen.SaveTrace(*out, d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, d.Summarize())
}
