// Command cptexperiments regenerates the paper's tables and figures
// end-to-end: it builds ground-truth traces, trains all four generators,
// synthesizes evaluation datasets and prints every table in DESIGN.md §4's
// per-experiment index.
//
// Usage:
//
//	cptexperiments                  # all experiments, short scale
//	cptexperiments -scale full      # paper-shaped sizes
//	cptexperiments -only table5,table6
//	cptexperiments -skip-slow       # skip timing/ablation experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	cptgen "cptgpt"
	"cptgpt/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cptexperiments: ")

	var (
		scaleFlag = flag.String("scale", "short", "experiment scale: unit, short or full")
		only      = flag.String("only", "", "comma-separated experiment ids (empty = all)")
		skipSlow  = flag.Bool("skip-slow", false, "skip experiments that train extra models")
		seed      = flag.Uint64("seed", 1, "lab seed")
		quiet     = flag.Bool("q", false, "suppress progress logging")
		par       = flag.Int("parallelism", 0, "worker count for training and generation (0 = all cores); results are identical at any value")
		batch     = flag.Int("batch", 0, "CPT-GPT lockstep decode batch size (0 = default)")
		micro     = flag.Int("microbatch", 0, "CPT-GPT streams packed per training forward pass (0 = default, 1 = serial); results are identical at any value")
	)
	flag.Parse()
	if *par > 0 {
		cptgen.SetParallelism(*par)
	}

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	lab := experiments.NewLab(scale, *seed)
	lab.Parallelism = *par
	lab.BatchSize = *batch
	lab.Microbatch = *micro
	if !*quiet {
		lab.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] "+format+"\n", append([]any{time.Now().Format("15:04:05")}, args...)...)
		}
	}

	start := time.Now()
	var reports []*experiments.Report
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				log.Fatal(err)
			}
			r, err := e.Run(lab)
			if err != nil {
				log.Fatalf("%s: %v", e.ID, err)
			}
			reports = append(reports, r)
		}
	} else {
		if reports, err = experiments.RunAll(lab, *skipSlow); err != nil {
			log.Fatal(err)
		}
	}

	for _, r := range reports {
		fmt.Println(r)
	}
	fmt.Printf("completed %d experiments at scale %s in %s\n",
		len(reports), scale, time.Since(start).Round(time.Second))
}
