// Command cptserved is the long-running traffic-generation daemon: it
// loads CPT-GPT models once at startup, then runs scenarios on demand via
// an HTTP management API, pacing event emission against wall-clock time
// and exposing live telemetry. See docs/OPERATIONS.md for the API and a
// worked walkthrough.
//
// Usage:
//
//	cptserved [-addr 127.0.0.1:8080] [-preload model.cptgpt]... \
//	          [-tmp DIR] [-parallelism N] [-keep N] \
//	          [-journal-dir DIR] [-fsync interval] [-recover resume] \
//	          [-ckpt-events N] [-ckpt-interval D] \
//	          [-max-active-runs N] [-max-total-ues N] [-max-spill-bytes N] \
//	          [-queue-depth N] [-log-level info] [-pprof]
//
// SIGINT/SIGTERM stop every run with a clean drain (sinks flush their
// last released event) before the process exits. With -journal-dir set,
// runs are durable: a crashed daemon restarted with -recover=resume picks
// interrupted runs back up from their last checkpoint (see
// docs/OPERATIONS.md, "Crash recovery").
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cptgpt/internal/logz"
	"cptgpt/internal/mcn"
	"cptgpt/internal/runlog"
	"cptgpt/internal/served"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	tmp := flag.String("tmp", "", "spill directory for run files (default: system temp dir)")
	parallelism := flag.Int("parallelism", 0, "default generation worker bound per run (0 = engine default)")
	keep := flag.Int("keep", 0, "finished runs retained before eviction (0 = default)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	journalDir := flag.String("journal-dir", "", "write-ahead run journal directory (empty = durable runs off)")
	fsyncPolicy := flag.String("fsync", "interval", "journal durability policy: always|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", 0, "journal flush/fsync cadence for -fsync interval|off (0 = default)")
	recoverMode := flag.String("recover", "resume", "disposition of interrupted journals at startup: resume|fail|ignore")
	ckptEvents := flag.Int("ckpt-events", 0, "events between journal checkpoints (0 = default)")
	ckptInterval := flag.Duration("ckpt-interval", 0, "wall-time bound between journal checkpoints (0 = default)")
	maxActiveRuns := flag.Int("max-active-runs", 0, "admission: concurrent active runs (0 = unlimited)")
	maxTotalUEs := flag.Int64("max-total-ues", 0, "admission: summed UE population across active runs (0 = unlimited)")
	maxSpillBytes := flag.Int64("max-spill-bytes", 0, "admission: daemon-wide live spill-disk bytes (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue slots for over-budget submissions (0 = reject immediately)")
	var preload []string
	flag.Func("preload", "model file to load at startup (repeatable)", func(p string) error {
		preload = append(preload, p)
		return nil
	})
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "cptserved: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	lvl, err := logz.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cptserved: %v\n", err)
		os.Exit(2)
	}
	logger := logz.New(os.Stderr, lvl)
	policy, err := runlog.ParsePolicy(*fsyncPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cptserved: %v\n", err)
		os.Exit(2)
	}

	s := served.New(served.Options{
		TempDir:            *tmp,
		Parallelism:        *parallelism,
		MaxFinishedRuns:    *keep,
		MCN:                mcn.DefaultConfig(),
		Log:                logger,
		EnablePprof:        *enablePprof,
		JournalDir:         *journalDir,
		Fsync:              policy,
		FsyncInterval:      *fsyncInterval,
		Recover:            *recoverMode,
		CheckpointEvents:   *ckptEvents,
		CheckpointInterval: *ckptInterval,
		MaxActiveRuns:      *maxActiveRuns,
		MaxTotalUEs:        *maxTotalUEs,
		MaxSpillBytes:      *maxSpillBytes,
		QueueDepth:         *queueDepth,
	})
	for _, p := range preload {
		if err := s.PreloadModel(p); err != nil {
			logger.Errorw("preload failed", "path", p, "err", err)
			os.Exit(1)
		}
	}
	// Recovery runs after preloads (resumed cptgpt runs hit a warm cache)
	// and before the listener opens, so clients never observe a half-
	// recovered registry.
	if err := s.Recover(); err != nil {
		logger.Errorw("journal recovery failed", "err", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Infow("cptserved listening", "addr", *addr, "pprof", *enablePprof)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Errorw("serve failed", "err", err)
		os.Exit(1)
	case got := <-sig:
		logger.Infow("signal received, draining runs", "signal", got.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		logger.Warnw("drain incomplete", "err", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warnw("http shutdown", "err", err)
	}
	logger.Infow("cptserved stopped")
}
