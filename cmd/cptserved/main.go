// Command cptserved is the long-running traffic-generation daemon: it
// loads CPT-GPT models once at startup, then runs scenarios on demand via
// an HTTP management API, pacing event emission against wall-clock time
// and exposing live telemetry. See docs/OPERATIONS.md for the API and a
// worked walkthrough.
//
// Usage:
//
//	cptserved [-addr 127.0.0.1:8080] [-preload model.cptgpt]... \
//	          [-tmp DIR] [-parallelism N] [-keep N]
//
// SIGINT/SIGTERM stop every run with a clean drain (sinks flush their
// last released event) before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cptgpt/internal/mcn"
	"cptgpt/internal/served"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	tmp := flag.String("tmp", "", "spill directory for run files (default: system temp dir)")
	parallelism := flag.Int("parallelism", 0, "default generation worker bound per run (0 = engine default)")
	keep := flag.Int("keep", 0, "finished runs retained before eviction (0 = default)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	var preload []string
	flag.Func("preload", "model file to load at startup (repeatable)", func(p string) error {
		preload = append(preload, p)
		return nil
	})
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "cptserved: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	s := served.New(served.Options{
		TempDir:         *tmp,
		Parallelism:     *parallelism,
		MaxFinishedRuns: *keep,
		MCN:             mcn.DefaultConfig(),
	})
	for _, p := range preload {
		if err := s.PreloadModel(p); err != nil {
			log.Fatalf("preload %s: %v", p, err)
		}
		log.Printf("preloaded model %s", p)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("cptserved listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case got := <-sig:
		log.Printf("received %v, draining runs", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("cptserved stopped")
}
