package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"cptgpt/internal/runlog"
)

// buildDaemon compiles the cptserved binary for the crash tests.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cptserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never became healthy: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func postRun(t *testing.T, addr string, body map[string]any) string {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, out.Error)
	}
	return out.ID
}

func runState(t *testing.T, addr, id string) (state, errMsg string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.State, out.Error
}

func waitDone(t *testing.T, addr, id string, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		state, errMsg := runState(t, addr, id)
		switch state {
		case "done":
			return
		case "failed", "stopped":
			t.Fatalf("run %s ended %s (err %q), want done", id, state, errMsg)
		}
		if time.Now().After(end) {
			t.Fatalf("run %s stuck in state %s", id, state)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCrashRecoveryEndToEnd is the real-crash equivalence test: a daemon
// is SIGKILLed mid-way through a paced jsonl run (no drain, torn tails
// and all), a fresh daemon process restarts with -recover=resume, and the
// finished output must be byte-identical to an uninterrupted run's.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	bin := buildDaemon(t)
	work := t.TempDir()
	jdir := filepath.Join(work, "journal")
	refOut := filepath.Join(work, "reference.jsonl")
	out := filepath.Join(work, "events.jsonl")
	addr := freeAddr(t)

	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr, "-tmp", work,
			"-journal-dir", jdir, "-recover", "resume",
			"-ckpt-events", "100", "-ckpt-interval", "100ms",
			"-log-level", "warn")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	d1 := start()
	defer d1.Process.Kill()
	waitHealthy(t, addr)

	// The reference: the same scenario run unpaced to completion first.
	refID := postRun(t, addr, map[string]any{
		"scenario": "flash-crowd", "ues": 200, "sink": "jsonl", "out": refOut,
	})
	waitDone(t, addr, refID, 60*time.Second)

	// The victim: paced (3600s of trace over ~6s of wall clock) so the
	// kill lands mid-stream, after at least one durable checkpoint with a
	// sink cursor.
	victimID := postRun(t, addr, map[string]any{
		"scenario": "flash-crowd", "ues": 200, "compression": 600,
		"sink": "jsonl", "out": out,
	})
	jpath := filepath.Join(jdir, victimID+runlog.Ext)
	ckptDeadline := time.Now().Add(30 * time.Second)
	for {
		if st, err := runlog.Load(jpath); err == nil && st.Checkpoint != nil && st.Checkpoint.SinkBytes > 0 {
			break
		}
		if state, _ := runState(t, addr, victimID); state == "done" {
			t.Fatal("victim run finished before the kill; pace the scenario slower")
		}
		if time.Now().After(ckptDeadline) {
			t.Fatal("no durable checkpoint with a sink cursor appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGKILL: no drain, no flush, no BYE.
	if err := d1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.Wait()

	d2 := start()
	defer func() {
		d2.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { d2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			d2.Process.Kill()
		}
	}()
	waitHealthy(t, addr)
	waitDone(t, addr, victimID, 60*time.Second)

	ref, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		i := 0
		for i < len(got) && i < len(ref) && got[i] == ref[i] {
			i++
		}
		t.Fatalf("recovered output diverges from the uninterrupted reference at byte %d (len %d vs %d)",
			i, len(got), len(ref))
	}

	// The journal tells the recovery story: the run passed through the
	// recovering state and ended done.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"state":"recovering"`)) {
		t.Fatal("journal never recorded the recovering state")
	}
	st, err := runlog.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != runlog.StateDone {
		t.Fatalf("journal final state %q, want done", st.State)
	}
}

// TestDaemonFlagValidation pins the CLI-level knobs: a bad -fsync policy
// and a bad -recover mode must fail fast at startup, not at crash time.
func TestDaemonFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-fsync", "sometimes"},
		{"-journal-dir", t.TempDir(), "-recover", "maybe"},
	} {
		cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("daemon accepted %v:\n%s", args, out)
		}
	}
}
