// Package cptgen is the public API of the CPT-GPT reproduction: a toolkit
// for generating, modeling and evaluating cellular network control-plane
// traffic (CPT) without domain knowledge, after "High-Fidelity Cellular
// Network Control-Plane Traffic Generation without Domain Knowledge"
// (IMC 2024).
//
// The toolkit has four moving parts:
//
//   - Ground truth: GenerateGroundTruth synthesizes a realistic carrier-style
//     workload (the stand-in for the paper's proprietary trace).
//   - Generators: TrainCPTGPT (the paper's transformer), TrainNetShare (the
//     GAN/LSTM baseline) and FitSMM (the semi-Markov baseline) learn a
//     workload and synthesize arbitrary numbers of new UE streams.
//   - Fidelity: Evaluate computes the paper's fidelity metrics (semantic
//     violations, sojourn times, flow lengths, event breakdown) and
//     Memorization audits training-data leakage.
//   - Consumers: SimulateMCN runs a simulated mobile-core control-plane
//     function over a trace; the replay sub-API drives a TCP server with
//     paced traffic.
//
// Examples under examples/ exercise exactly this surface.
package cptgen

import (
	"net"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/faultnet"
	"cptgpt/internal/mcn"
	"cptgpt/internal/metrics"
	"cptgpt/internal/netshare"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/scenario"
	"cptgpt/internal/smm"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// Parallel execution. Every generator fans stream synthesis out across a
// worker pool, and the tensor kernels shard across the same pool; output is
// bit-identical at every parallelism degree because each stream draws only
// from its own index-seeded RNG. Training is batched too: CPT-GPT packs
// CPTGPTTrainOpts.MicrobatchStreams streams into each forward pass (block-
// diagonal causal attention over one concatenated matrix) and runs the tape
// out of a per-step bump arena — trained weights are bit-identical at every
// microbatch and parallelism setting. Per-call knobs live on the option
// structs (CPTGPTGenOpts/NetShareGenOpts/SMMGenOpts .Parallelism and
// .BatchSize, CPTGPTTrainOpts.Parallelism and .MicrobatchStreams);
// SetParallelism sets the process-global default used when those are zero.

// SetParallelism sets the process-global parallelism degree for tensor
// kernels and stream generation (0 restores the GOMAXPROCS default). It
// returns the previous setting so callers can scope an override.
func SetParallelism(n int) (prev int) { return tensor.SetParallelism(n) }

// Parallelism reports the effective process-global parallelism degree.
func Parallelism() int { return tensor.Parallelism() }

// DefaultBatchSize is the number of decode slots per CPT-GPT BatchDecoder
// when CPTGPTGenOpts.BatchSize is unset.
const DefaultBatchSize = cptgpt.DefaultBatchSize

// Precision selects CPT-GPT's decode arithmetic. PrecisionF64 (the zero
// value) is the bit-exact float64 reference path; PrecisionF32 decodes
// through a frozen float32 snapshot of the trained weights with fused row
// kernels and a contiguous float32 KV arena — about half the memory traffic,
// roughly 2× the tokens/s — under its own per-seed determinism contract
// (same Seed × Precision always reproduces the same output, at every
// Parallelism and BatchSize). Decoding uses continuous batching either way:
// the moment a stream emits STOP, its decoder slot is refilled with the next
// pending UE, so slots stay hot under skewed stream-length distributions.
type Precision = cptgpt.Precision

// Precision values for CPTGPTGenOpts.Precision.
const (
	PrecisionF64 = cptgpt.F64
	PrecisionF32 = cptgpt.F32
)

// ParsePrecision parses a precision flag value ("", "f64", "float64",
// "f32", "float32"); the empty string means PrecisionF64.
func ParsePrecision(s string) (Precision, error) { return cptgpt.ParsePrecision(s) }

// Speculative decoding. Setting CPTGPTGenOpts.Speculative has a cheap
// draft model propose CPTGPTGenOpts.DraftTokens tokens per UE slot and the
// transformer verify the whole chain in ONE multi-token pass (a
// prefill-shaped kernel whose k-row GEMMs run on AVX2 where available);
// acceptance–rejection sampling then keeps a prefix and resamples the
// first rejected position from the residual distribution, so the output
// law is exactly plain sampling's — the draft moves only the acceptance
// rate. Output stays deterministic per Seed at every Parallelism ×
// BatchSize. On skewed million-UE populations this is the decode
// throughput headline (≥1.5× tokens/s at paper-scale dims, k=4); see the
// README's "Speculative decoding" section for the knobs and intuition.
type (
	// CPTGPTDraftModel proposes speculative draft chains (see NewNGramDraft,
	// NewSMMDraft; nil in the options means the model's self-fitted draft).
	CPTGPTDraftModel = cptgpt.DraftModel
	// CPTGPTDecodeStats carries decode telemetry (scheduling steps and
	// speculative proposed/accepted counters) when CPTGPTGenOpts.Stats is
	// set.
	CPTGPTDecodeStats = cptgpt.DecodeStats
)

// DefaultDraftTokens is the speculation depth when
// CPTGPTGenOpts.DraftTokens is unset.
const DefaultDraftTokens = cptgpt.DefaultDraftTokens

// NewNGramDraft fits the no-domain-knowledge fallback draft — a smoothed
// bigram with per-transition clamped-Gaussian interarrival summaries —
// from a dataset, for speculative decoding with model m.
func NewNGramDraft(d *Dataset, m *CPTGPTModel) CPTGPTDraftModel {
	return cptgpt.NewNGramDraft(d, m.Tok)
}

// NewSMMDraft adapts a fitted semi-Markov baseline (FitSMM) into a
// speculative draft proposer for model m — the paper trains the SMM anyway,
// so the draft comes free.
func NewSMMDraft(sm *SMMModel, m *CPTGPTModel) (CPTGPTDraftModel, error) {
	return cptgpt.NewSMMDraft(sm, m.Tok)
}

// Core data model.
type (
	// Dataset is a control-plane traffic dataset: one stream per UE.
	Dataset = trace.Dataset
	// Stream is one UE's time-ordered control-event sequence.
	Stream = trace.Stream
	// Event is a single (timestamp, event type) sample.
	Event = trace.Event
	// EventType identifies a 3GPP control-plane event (SRV_REQ, HO, …).
	EventType = events.Type
	// DeviceType classifies a UE (phone, connected car, tablet).
	DeviceType = events.DeviceType
	// Generation selects 4G or 5G semantics.
	Generation = events.Generation
)

// Re-exported enumeration values.
const (
	Gen4G = events.Gen4G
	Gen5G = events.Gen5G

	Phone        = events.Phone
	ConnectedCar = events.ConnectedCar
	Tablet       = events.Tablet
)

// Ground-truth workload generation.
type (
	// GroundTruthConfig parameterizes the synthetic carrier workload.
	GroundTruthConfig = synthetic.Config
)

// GenerateGroundTruth synthesizes a carrier-style control-plane workload:
// per-UE behavioural simulation over the 3GPP state machine with latent
// heterogeneity and diurnal drift. This substitutes for the paper's
// proprietary trace (DESIGN.md §2).
func GenerateGroundTruth(cfg GroundTruthConfig) (*Dataset, error) {
	return synthetic.Generate(cfg)
}

// DefaultGroundTruthConfig returns a small 4G workload configuration.
func DefaultGroundTruthConfig() GroundTruthConfig { return synthetic.DefaultConfig() }

// CPT-GPT, the paper's transformer-based generator.
type (
	// CPTGPTConfig holds the transformer's hyperparameters.
	CPTGPTConfig = cptgpt.Config
	// CPTGPTModel is a trained CPT-GPT generator.
	CPTGPTModel = cptgpt.Model
	// CPTGPTTrainOpts tunes a training run.
	CPTGPTTrainOpts = cptgpt.TrainOpts
	// CPTGPTGenOpts tunes trace synthesis.
	CPTGPTGenOpts = cptgpt.GenOpts
)

// DefaultCPTGPTConfig returns a CPU-sized CPT-GPT configuration.
func DefaultCPTGPTConfig() CPTGPTConfig { return cptgpt.DefaultConfig() }

// TrainCPTGPT fits a CPT-GPT model on the dataset from scratch: it fits the
// multi-modal tokenizer, extracts the initial-event distribution and trains
// the decoder-only transformer with next-token supervision.
func TrainCPTGPT(d *Dataset, cfg CPTGPTConfig, opts CPTGPTTrainOpts) (*CPTGPTModel, error) {
	tok := cptgpt.FitTokenizer(d)
	m, err := cptgpt.NewModel(cfg, tok)
	if err != nil {
		return nil, err
	}
	if _, err := cptgpt.Train(m, d, opts); err != nil {
		return nil, err
	}
	return m, nil
}

// FineTuneCPTGPT adapts a trained model to a drifted dataset (Design 3):
// a cheap warm-start alternative to retraining from scratch.
func FineTuneCPTGPT(m *CPTGPTModel, d *Dataset, opts CPTGPTTrainOpts) (*CPTGPTModel, error) {
	c, err := m.Clone()
	if err != nil {
		return nil, err
	}
	if _, err := cptgpt.FineTune(c, d, opts); err != nil {
		return nil, err
	}
	return c, nil
}

// LoadCPTGPT reads a model saved with (*CPTGPTModel).SaveFile.
func LoadCPTGPT(path string) (*CPTGPTModel, error) { return cptgpt.LoadFile(path) }

// NetShare baseline.
type (
	// NetShareConfig holds the GAN/LSTM baseline's hyperparameters.
	NetShareConfig = netshare.Config
	// NetShareModel is a trained NetShare generator.
	NetShareModel = netshare.Model
	// NetShareTrainOpts tunes GAN training.
	NetShareTrainOpts = netshare.TrainOpts
	// NetShareGenOpts tunes trace synthesis.
	NetShareGenOpts = netshare.GenOpts
)

// DefaultNetShareConfig returns a CPU-sized NetShare configuration.
func DefaultNetShareConfig() NetShareConfig { return netshare.DefaultConfig() }

// TrainNetShare trains the GAN/LSTM baseline on the dataset.
func TrainNetShare(d *Dataset, cfg NetShareConfig, opts NetShareTrainOpts) (*NetShareModel, error) {
	m, err := netshare.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := netshare.Train(m, d, opts); err != nil {
		return nil, err
	}
	return m, nil
}

// SMM baseline.
type (
	// SMMConfig holds the semi-Markov baseline's parameters (K=1 for
	// SMM-1, K>1 for the clustered variant).
	SMMConfig = smm.Config
	// SMMModel is a fitted semi-Markov generator.
	SMMModel = smm.Model
	// SMMGenOpts tunes trace synthesis.
	SMMGenOpts = smm.GenOpts
)

// DefaultSMMConfig returns the SMM-1 configuration.
func DefaultSMMConfig() SMMConfig { return smm.DefaultConfig() }

// FitSMM fits the semi-Markov baseline on the dataset.
func FitSMM(d *Dataset, cfg SMMConfig) (*SMMModel, error) { return smm.Fit(d, cfg) }

// Fidelity evaluation.
type (
	// Fidelity bundles the paper's fidelity metrics.
	Fidelity = metrics.Fidelity
	// MemorizationResult reports the n-gram repetition audit.
	MemorizationResult = metrics.MemorizationResult
	// ReplayAggregate carries violation and sojourn accounting.
	ReplayAggregate = statemachine.AggregateReplay
)

// Evaluate computes the full fidelity suite of synth against real.
func Evaluate(real, synth *Dataset) Fidelity { return metrics.Evaluate(real, synth) }

// ReplayStats replays a dataset against its generation's UE state machine.
func ReplayStats(d *Dataset) *ReplayAggregate { return metrics.Replay(d) }

// Memorization audits how many generated n-grams repeat training n-grams
// within relative interarrival tolerance eps (§5.6).
func Memorization(generated, training *Dataset, n int, eps float64) (MemorizationResult, error) {
	return metrics.Memorization(generated, training, n, eps)
}

// Trace IO.

// SaveTrace writes a dataset to path (.csv for CSV, otherwise JSONL).
func SaveTrace(path string, d *Dataset) error { return trace.SaveFile(path, d) }

// LoadTrace reads a dataset from path; gen is used only for CSV inputs.
func LoadTrace(path string, gen Generation) (*Dataset, error) { return trace.LoadFile(path, gen) }

// Downstream consumers.
type (
	// MCNConfig parameterizes the simulated mobile-core NF.
	MCNConfig = mcn.Config
	// MCNReport is the simulation output (load, latency, autoscaling).
	MCNReport = mcn.Report
	// ReplayServer is the TCP MCN frontend.
	ReplayServer = replaynet.Server
	// ReplayStatsReport is the TCP server's accounting.
	ReplayStatsReport = replaynet.Stats
	// ReplayOpts tunes a TCP replay run.
	ReplayOpts = replaynet.ReplayOpts
	// ReplayServerOpts tunes a TCP MCN frontend (service time, ack batching,
	// fault injection).
	ReplayServerOpts = replaynet.ServerOpts
	// ReplayClosedOpts tunes a closed-loop (acknowledged, congestion-
	// controlled) replay run.
	ReplayClosedOpts = replaynet.ClosedOpts
	// ReplayClosedStats summarizes a closed-loop replay run.
	ReplayClosedStats = replaynet.ClosedStats
	// ReplayLiveStats publishes a running closed-loop replay's transport
	// state (cwnd, sRTT, RTO, in-flight, retransmits) as atomics.
	ReplayLiveStats = replaynet.LiveStats
	// ReplaySearchOpts tunes the SLO-search controller.
	ReplaySearchOpts = replaynet.SearchOpts
	// ReplaySearchResult is the SLO search outcome.
	ReplaySearchResult = replaynet.SearchResult
	// FaultConfig is the deterministic fault-injection schedule applied to a
	// connection side (see internal/faultnet).
	FaultConfig = faultnet.Config
)

// DefaultMCNConfig returns the default simulated-MCN configuration.
func DefaultMCNConfig() MCNConfig { return mcn.DefaultConfig() }

// SimulateMCN runs the simulated mobile-core control-plane function over
// the dataset in virtual time.
func SimulateMCN(d *Dataset, cfg MCNConfig) (*MCNReport, error) { return mcn.Run(d, cfg) }

// ListenMCN starts a TCP MCN frontend (see internal/replaynet's protocol).
func ListenMCN(addr string, gen Generation) (*ReplayServer, error) {
	return replaynet.ListenAndServe(addr, gen)
}

// ListenMCNOpts is ListenMCN with explicit server options: a per-event
// service time (rate limit), ack batching and deterministic fault injection
// on accepted connections.
func ListenMCNOpts(addr string, gen Generation, opts ReplayServerOpts) (*ReplayServer, error) {
	return replaynet.ListenAndServeOpts(addr, gen, opts)
}

// FaultDialer returns a dial function injecting cfg's deterministic fault
// schedule into every dialed connection — plug it into
// ReplayClosedOpts.Dial to exercise a driver's robustness paths.
func FaultDialer(cfg FaultConfig) func(addr string) (net.Conn, error) {
	return faultnet.Dialer(cfg)
}

// ReplayOverTCP paces a dataset's events onto a replaynet server and
// returns the server's final stats.
func ReplayOverTCP(addr string, d *Dataset, opts ReplayOpts) (ReplayStatsReport, error) {
	return replaynet.Replay(addr, d, opts)
}

// Scenario engine: declarative workload composition over a streaming
// million-UE pipeline. A ScenarioSpec (plain JSON; built-ins via
// BuiltinScenario) names traffic sources — synthetic ground truth, trained
// CPT-GPT models, or any generator bound through ScenarioRunOpts.Sources —
// and composes operators (population ramps, event amplification, time
// compression, thinning, clipping) over time windows. OpenScenario executes
// it as a bounded-memory pipeline: sources emit UE streams in chunks,
// chunks spill as sorted runs, and a capped-fan-in merge yields a globally
// time-ordered event iterator whose peak memory is independent of the UE
// count. Output is bit-identical at every Parallelism × BatchSize.
type (
	// ScenarioSpec is a declarative scenario (sources + windowed operators).
	ScenarioSpec = scenario.Spec
	// ScenarioSource names one traffic source of a spec.
	ScenarioSource = scenario.SourceSpec
	// ScenarioOp is one composable operator over a time window.
	ScenarioOp = scenario.OpSpec
	// ScenarioRunOpts tunes scenario execution (population, parallelism,
	// chunking, spill dir, custom source bindings).
	ScenarioRunOpts = scenario.RunOpts
	// ScenarioStream is the merged, time-ordered scenario event iterator.
	ScenarioStream = scenario.Stream
	// ScenarioEvent is one element of the merged sequence.
	ScenarioEvent = scenario.Event
	// ScenarioSummary aggregates a drained scenario in O(1) memory.
	ScenarioSummary = scenario.Summary
	// ScenarioChunkFunc plugs any chunked generator in as a source.
	ScenarioChunkFunc = scenario.ChunkFunc
)

// BuiltinScenarios lists the registered scenario presets (flash-crowd,
// handover-storm, paging-storm, iot-burst, failure-recovery-wave,
// mix-shift, baseline-diurnal).
func BuiltinScenarios() []string { return scenario.Builtins() }

// BuiltinScenario returns a fresh copy of a registered scenario preset.
func BuiltinScenario(name string) (*ScenarioSpec, error) { return scenario.Builtin(name) }

// LoadScenario reads and validates a scenario spec from a JSON file.
func LoadScenario(path string) (*ScenarioSpec, error) { return scenario.Load(path) }

// OpenScenario executes the scenario's generation phase and returns its
// streaming event iterator; the caller must Close it.
func OpenScenario(spec *ScenarioSpec, opts ScenarioRunOpts) (*ScenarioStream, error) {
	return spec.Open(opts)
}

// RunScenario executes the scenario end-to-end and drains it, returning
// the O(1)-memory summary (events, per-type breakdown, peak window rate).
func RunScenario(spec *ScenarioSpec, opts ScenarioRunOpts) (ScenarioSummary, error) {
	st, err := spec.Open(opts)
	if err != nil {
		return ScenarioSummary{}, err
	}
	defer st.Close()
	return scenario.Drain(st)
}

// RunScenarioMCN executes the scenario and drives the simulated mobile-core
// control-plane function with it — the paper's downstream use case at
// scenario scale.
func RunScenarioMCN(spec *ScenarioSpec, opts ScenarioRunOpts, cfg MCNConfig) (*MCNReport, error) {
	st, err := spec.Open(opts)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return scenario.RunMCN(st, cfg)
}
