module cptgpt

go 1.22
