// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus
// micro-benchmarks of the substrates (autograd matmul, transformer step,
// generators, state-machine replay).
//
// The experiment benchmarks share one Lab, so generator training happens
// once per process; subsequent iterations re-render tables from cached
// artifacts. The scale defaults to "unit" so `go test -bench=.` completes
// quickly; set CPTGPT_SCALE=short or =full (or run cmd/cptexperiments) for
// paper-shaped sizes.
package cptgen

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/experiments"
	"cptgpt/internal/mcn"
	"cptgpt/internal/metrics"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/runlog"
	"cptgpt/internal/scenario"
	"cptgpt/internal/served"
	"cptgpt/internal/smm"
	"cptgpt/internal/stats"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
	"cptgpt/internal/tracez"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
	benchLabErr  error
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		scale := experiments.Unit
		if s := os.Getenv("CPTGPT_SCALE"); s != "" {
			var err error
			if scale, err = experiments.ParseScale(s); err != nil {
				benchLabErr = err
				return
			}
		}
		benchLab = experiments.NewLab(scale, 1)
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	l := lab(b)
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the lab (train models, cache datasets) outside the timed loop.
	r, err := e.Run(l)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(l); err != nil {
			b.Fatal(err)
		}
	}
}

// Experiment benchmarks (paper tables and figures).

func BenchmarkTable3NetShareViolations(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure2SojournCDF(b *testing.B)          { benchExperiment(b, "figure2") }
func BenchmarkTable4NetShareTransferCost(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5Violations(b *testing.B)           { benchExperiment(b, "table5") }
func BenchmarkTable6MaxYDistance(b *testing.B)         { benchExperiment(b, "table6") }
func BenchmarkFigure5CDFGrid(b *testing.B)             { benchExperiment(b, "figure5") }
func BenchmarkTable7EventBreakdown(b *testing.B)       { benchExperiment(b, "table7") }
func BenchmarkTable8Ablation(b *testing.B)             { benchExperiment(b, "table8") }
func BenchmarkFigure6Scalability(b *testing.B)         { benchExperiment(b, "figure6") }
func BenchmarkTable9TransferTime(b *testing.B)         { benchExperiment(b, "table9") }
func BenchmarkTable10TransferFidelity(b *testing.B)    { benchExperiment(b, "table10") }
func BenchmarkTable11Memorization(b *testing.B)        { benchExperiment(b, "table11") }
func BenchmarkFigure7Interarrival(b *testing.B)        { benchExperiment(b, "figure7") }
func BenchmarkAblationBatchGen(b *testing.B)           { benchExperiment(b, "ablation-batchgen") }
func BenchmarkAblationLogScale(b *testing.B)           { benchExperiment(b, "ablation-logscale") }

// Substrate micro-benchmarks.

func BenchmarkTensorMatMul128(b *testing.B) {
	rng := stats.NewRand(1)
	x := tensor.Randn(128, 128, 1, rng)
	y := tensor.Randn(128, 128, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// BenchmarkTensorMatMul128Serial pins the kernel to one worker — the
// baseline for the pool speedup (results are bit-identical either way).
func BenchmarkTensorMatMul128Serial(b *testing.B) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	rng := stats.NewRand(1)
	x := tensor.Randn(128, 128, 1, rng)
	y := tensor.Randn(128, 128, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// BenchmarkTensorMatMulBlocked256 times the cache-blocked, transpose-packed
// MatMul kernel at 256³, pinned to one worker so the kernel effect is
// isolated from pool sharding. Compare against ...Naive; both produce
// bit-identical results (internal/tensor TestMatMulBlockedMatchesNaive).
func BenchmarkTensorMatMulBlocked256(b *testing.B) {
	benchMatMul256(b, true)
}

// BenchmarkTensorMatMulBlocked256Naive pins the pre-blocking triple-loop
// kernel over the same operands — the baseline for the blocked speedup.
func BenchmarkTensorMatMulBlocked256Naive(b *testing.B) {
	benchMatMul256(b, false)
}

func benchMatMul256(b *testing.B, blocked bool) {
	b.Helper()
	prevB := tensor.SetBlockedMatMul(blocked)
	defer tensor.SetBlockedMatMul(prevB)
	prevP := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prevP)
	rng := stats.NewRand(1)
	x := tensor.Randn(256, 256, 1, rng)
	y := tensor.Randn(256, 256, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// benchTrainEpoch times one full CPT-GPT training epoch over a fixed stream
// population and reports amortized ns/token (the §5.5 time-to-fidelity
// currency: tokens processed per unit wall-clock).
func benchTrainEpoch(b *testing.B, opts CPTGPTTrainOpts) {
	b.Helper()
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G, Seed: 4,
		UEs: map[events.DeviceType]int{events.Phone: 80}, Hours: 1, StartHour: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultCPTGPTConfig()
	cfg.Generation = d.Generation
	cfg.Epochs = 1
	tokens := 0
	for i := range d.Streams {
		if l := len(d.Streams[i].Events); l >= 2 && l <= cfg.MaxLen+1 {
			tokens += l - 1
		}
	}
	if tokens == 0 {
		b.Skip("no eligible streams")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainCPTGPT(d, cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tokens), "ns/token")
}

// BenchmarkCPTGPTTrainEpoch measures the packed-minibatch trainer at default
// settings (MicrobatchStreams = 4, Parallelism = GOMAXPROCS, arena on,
// blocked MatMul). Compare against ...Serial for the overall training
// speedup; the equivalence tests in internal/cptgpt prove both paths train
// bit-identical weights.
func BenchmarkCPTGPTTrainEpoch(b *testing.B) {
	benchTrainEpoch(b, CPTGPTTrainOpts{})
}

// BenchmarkCPTGPTTrainEpochSerial is the pre-PR training path: one stream
// per forward pass, one tensor worker, heap-allocated tape (arena off) and
// the naive MatMul kernels.
func BenchmarkCPTGPTTrainEpochSerial(b *testing.B) {
	prev := tensor.SetBlockedMatMul(false)
	defer tensor.SetBlockedMatMul(prev)
	benchTrainEpoch(b, CPTGPTTrainOpts{MicrobatchStreams: 1, Parallelism: 1, NoArena: true})
}

func BenchmarkTensorTrainStep(b *testing.B) {
	// One forward+backward of a 2-block transformer over a 64-token stream.
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G, Seed: 1,
		UEs: map[events.DeviceType]int{events.Phone: 50}, Hours: 1, StartHour: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	tok := cptgpt.FitTokenizer(d)
	cfg := cptgpt.DefaultConfig()
	m, err := cptgpt.NewModel(cfg, tok)
	if err != nil {
		b.Fatal(err)
	}
	var enc *tensor.Tensor
	var tg *cptgpt.Targets
	for i := range d.Streams {
		if len(d.Streams[i].Events) >= 32 && len(d.Streams[i].Events) <= cfg.MaxLen {
			if enc, tg, err = tok.EncodeStream(&d.Streams[i]); err != nil {
				b.Fatal(err)
			}
			break
		}
	}
	if enc == nil {
		b.Skip("no suitably long stream")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := m.Forward(enc, nil)
		if err != nil {
			b.Fatal(err)
		}
		loss := m.Loss(h, tg)
		loss.Backward()
	}
}

// benchGenerate times batched generation of a fixed UE population and
// reports amortized per-stream latency.
func benchGenerate(b *testing.B, opts cptgpt.GenOpts) {
	b.Helper()
	l := lab(b)
	m, err := l.CPT(events.Phone)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		if _, err := m.Generate(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*opts.NumStreams), "ns/stream")
}

// BenchmarkCPTGPTGeneratePerStream measures the parallel batched engine at
// the default settings (Parallelism = GOMAXPROCS, lockstep batches): a
// UE population decoded per op, with amortized ns/stream reported. Compare
// against ...PerStreamSerial for the parallel speedup; both paths emit
// bit-identical streams (see internal/cptgpt batch tests).
func BenchmarkCPTGPTGeneratePerStream(b *testing.B) {
	benchGenerate(b, cptgpt.GenOpts{NumStreams: 64, Device: events.Phone})
}

// BenchmarkCPTGPTGeneratePerStreamSerial is the one-stream-at-a-time
// baseline (Parallelism = 1, BatchSize = 1) over the same population.
func BenchmarkCPTGPTGeneratePerStreamSerial(b *testing.B) {
	benchGenerate(b, cptgpt.GenOpts{NumStreams: 64, Device: events.Phone, Parallelism: 1, BatchSize: 1})
}

// BenchmarkCPTGPTGeneratePerStreamF32 is the same population through the
// float32 decode fast path (frozen InferModel snapshot, fused kernels,
// contiguous f32 KV arena). Compare against BenchmarkCPTGPTGeneratePerStream
// for the end-to-end f32 speedup at the lab's CPU-sized model.
func BenchmarkCPTGPTGeneratePerStreamF32(b *testing.B) {
	benchGenerate(b, cptgpt.GenOpts{NumStreams: 64, Device: events.Phone, Precision: cptgpt.F32})
}

// paperScaleModel builds an untrained CPT-GPT at the paper's tuned
// architecture (2 blocks, d_model 128, MLP hidden 1024 — 725K parameters,
// ~5.2 MB of float64 weights), the regime where decode is memory-bandwidth
// bound and the float32 path's halved traffic shows up. Weights are random:
// kernel cost is independent of training.
func paperScaleModel(b *testing.B) *cptgpt.Model {
	b.Helper()
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G, Seed: 12,
		UEs: map[events.DeviceType]int{events.Phone: 20}, Hours: 1, StartHour: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := cptgpt.DefaultConfig()
	cfg.DModel = 128
	cfg.Heads = 4
	cfg.MLPHidden = 1024
	cfg.HeadHidden = 64
	cfg.MaxLen = 256
	m, err := cptgpt.NewModel(cfg, cptgpt.FitTokenizer(d))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchDecodeToken measures raw BatchDecoder throughput — ns per decoded
// token — at the paper-scale architecture, pinned to one worker so the
// number isolates kernel and memory-traffic effects from pool sharding.
// Every step advances all slots, so this is the dense upper bound the
// schedulers feed.
func benchDecodeToken(b *testing.B, prec cptgpt.Precision) {
	b.Helper()
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	m := paperScaleModel(b)
	const slots, steps = 16, 64
	dec := m.NewBatchDecoder(slots, prec)
	dim := m.Tok.Dim()
	toks := make([]float64, slots*dim)
	all := make([]int, slots)
	for i := range all {
		all[i] = i
		toks[i*dim+1] = 1 // one-hot event 0, interarrival 0, stop 0
		toks[i*dim+dim-2] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset()
		for s := 0; s < steps; s++ {
			dec.Step(all, toks)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slots*steps), "ns/token")
}

// BenchmarkCPTGPTDecodeTokenF64 is the float64 reference decode path at
// paper scale (the bit-exactness baseline).
func BenchmarkCPTGPTDecodeTokenF64(b *testing.B) { benchDecodeToken(b, cptgpt.F64) }

// BenchmarkCPTGPTDecodeTokenF32 is the fused float32 fast path over the
// same shapes; the acceptance bar for the fast path is ≥ 1.8× fewer
// ns/token than ...F64 (internal/cptgpt's fidelity tests bound what the
// speed costs: ~1e-6 logit drift, indistinguishable trace marginals).
func BenchmarkCPTGPTDecodeTokenF32(b *testing.B) { benchDecodeToken(b, cptgpt.F32) }

// benchGenerateSkewed times end-to-end generation of a population whose
// stream lengths are heavily skewed (an untrained model's stop head fires
// geometrically, so most streams are short and a tail runs long — the shape
// real scenarios produce; here: mean ≈ 12 tokens, p99 ≈ 65). One decoder
// (Parallelism: 1) fans its active slots over the tensor pool at the
// machine's default width, which is how the scheduling difference
// manifests: lockstep drains each batch down to its longest stream, so its
// tail steps occupy one pool worker with one slot while the rest idle, and
// what work remains loses the group weight-sweep amortization; continuous
// batching reseats retired slots immediately, keeping the fan-out full and
// the per-group weight sweep amortized over a full batch. On a single-core
// machine the two converge (per-token cost dominates); on a multi-worker
// pool (CI's 4 vCPUs) the occupancy gap is the headline ~1.2–1.4×.
// Decode runs the f32 fast path, whose group kernels are where the
// amortization lives; both schedulers emit bit-identical streams.
func benchGenerateSkewed(b *testing.B, lockstep bool) {
	b.Helper()
	m := paperScaleModel(b)
	opts := cptgpt.GenOpts{
		NumStreams: 256, Device: events.Phone, Seed: 42, Precision: cptgpt.F32,
		Parallelism: 1, BatchSize: 32, Lockstep: lockstep,
	}
	// One warm-up run counts the emitted tokens for the ns/token metric
	// (fixed seed, so every iteration emits the same population).
	warm, err := m.Generate(opts)
	if err != nil {
		b.Fatal(err)
	}
	tokens := 0
	for i := range warm.Streams {
		tokens += len(warm.Streams[i].Events)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*opts.NumStreams), "ns/stream")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tokens), "ns/token")
}

// BenchmarkCPTGPTGenerateSkewedContinuous measures the continuous-batching
// scheduler on the skewed-length population.
func BenchmarkCPTGPTGenerateSkewedContinuous(b *testing.B) { benchGenerateSkewed(b, false) }

// BenchmarkCPTGPTGenerateSkewedLockstep is the retire-whole-batch companion
// (the pre-continuous scheduler) over the identical population — the
// baseline for the ≥ 1.2× per-stream continuous-batching win. Both paths
// emit bit-identical streams (GenOpts.Lockstep changes scheduling only).
func BenchmarkCPTGPTGenerateSkewedLockstep(b *testing.B) { benchGenerateSkewed(b, true) }

// benchDecodeSpeculative measures speculative decoding end-to-end on the
// same skewed population as benchGenerateSkewed: draft chains of k=4 from
// the model's self-fitted n-gram, one multi-token verify pass per chain,
// exact acceptance–rejection. Reported ns/token counts EMITTED tokens, the
// apples-to-apples throughput currency against the plain decode
// benchmarks; accept% is the fraction of drafted tokens that survived
// verification (from BatchDecoder.Stats via GenOpts.Stats).
func benchDecodeSpeculative(b *testing.B, prec cptgpt.Precision) {
	b.Helper()
	m := paperScaleModel(b)
	var st cptgpt.DecodeStats
	opts := cptgpt.GenOpts{
		NumStreams: 256, Device: events.Phone, Seed: 42, Precision: prec,
		Parallelism: 1, BatchSize: 32,
		Speculative: true, DraftTokens: 4, Stats: &st,
	}
	// Warm-up fits and caches the self-draft outside the timed region and
	// counts the emitted tokens (fixed seed: identical every iteration).
	warm, err := m.Generate(opts)
	if err != nil {
		b.Fatal(err)
	}
	tokens := 0
	for i := range warm.Streams {
		tokens += len(warm.Streams[i].Events)
	}
	st = cptgpt.DecodeStats{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*opts.NumStreams), "ns/stream")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tokens), "ns/token")
	if st.DraftProposed > 0 {
		b.ReportMetric(100*float64(st.DraftAccepted)/float64(st.DraftProposed), "accept%")
	}
}

// BenchmarkCPTGPTDecodeSpeculativeF32 is the speculative-decoding headline:
// compare its ns/token against BenchmarkCPTGPTGenerateSkewedContinuous
// (the PR 4 continuous-batching f32 path over the identical population
// shape) — the acceptance bar is ≥ 1.5× tokens/s at k = 4. The win is the
// multi-token verify kernel: prefill-shaped k-row GEMMs run ~5× the
// scalar matvec throughput on AVX2, and the acceptance rate converts most
// verified positions into emitted tokens.
func BenchmarkCPTGPTDecodeSpeculativeF32(b *testing.B) { benchDecodeSpeculative(b, cptgpt.F32) }

// BenchmarkCPTGPTDecodeSpeculativeF64 is the float64 companion: the same
// draft/verify/accept pipeline over the bit-exact reference kernels. The
// F64 verify pass has no GEMM fast path (its contract is bit-equality with
// single-token stepping), so this isolates the scheduling cost of
// speculation from the kernel win.
func BenchmarkCPTGPTDecodeSpeculativeF64(b *testing.B) { benchDecodeSpeculative(b, cptgpt.F64) }

// BenchmarkCPTGPTVerifyKTokens measures the raw multi-token verify kernel:
// ns per verified position when every slot consumes k=4-token chains
// through StepK, against BenchmarkCPTGPTDecodeTokenF32's single-token
// stepping over the same model shape — the kernel-level speedup that
// speculative decoding's acceptance rate then discounts.
func BenchmarkCPTGPTVerifyKTokens(b *testing.B) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	m := paperScaleModel(b)
	const slots, k, rounds = 16, 4, 16
	dec := m.NewBatchDecoder(slots, cptgpt.F32)
	dim := m.Tok.Dim()
	toks := make([]float64, slots*k*dim)
	all := make([]int, slots)
	ks := make([]int, slots)
	for i := range all {
		all[i] = i
		ks[i] = k
		for r := 0; r < k; r++ {
			toks[(i*k+r)*dim+1] = 1 // one-hot event 0, interarrival 0, stop 0
			toks[(i*k+r)*dim+dim-2] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset()
		for s := 0; s < rounds; s++ {
			dec.StepK(all, ks, k, toks)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slots*k*rounds), "ns/token")
}

func BenchmarkSMMGenerate1000(b *testing.B) {
	l := lab(b)
	m, err := l.SMM(events.Phone, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(smm.GenOpts{NumStreams: 1000, Device: events.Phone, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// closedBenchSource feeds n attach/detach events with 10ms trace spacing.
type closedBenchSource struct{ i, n int }

func (s *closedBenchSource) NextReplayEvent() (replaynet.ReplayEvent, bool, error) {
	if s.i >= s.n {
		return replaynet.ReplayEvent{}, false, nil
	}
	ev := replaynet.ReplayEvent{Time: float64(s.i) * 0.01, UE: uint64((s.i / 2) % 32), Type: events.Attach}
	if s.i%2 == 1 {
		ev.Type = events.Detach
	}
	s.i++
	return ev, true, nil
}

// BenchmarkReplayClosedLoopPerEvent measures the acknowledged closed-loop
// replay transport end to end over loopback TCP: sequenced SEVENT frames
// out, cumulative ACKs back, CUBIC window growth, RTT estimation and
// latency-histogram accounting all on the measured path. Reported as
// amortized ns per acknowledged signaling transaction.
func BenchmarkReplayClosedLoopPerEvent(b *testing.B) {
	srv, err := replaynet.ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const n = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := replaynet.ReplayClosed(srv.Addr().String(), events.Gen4G,
			&closedBenchSource{n: n}, replaynet.ClosedOpts{SessionID: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if st.Acked != n {
			b.Fatalf("acked %d, want %d", st.Acked, n)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/event")
}

func BenchmarkReplayValidation(b *testing.B) {
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G, Seed: 2,
		UEs: map[events.DeviceType]int{events.Phone: 200}, Hours: 1, StartHour: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Replay(d)
	}
	b.ReportMetric(float64(d.NumEvents()), "events/op")
}

func BenchmarkTraceJSONLRoundTrip(b *testing.B) {
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G, Seed: 3,
		UEs: map[events.DeviceType]int{events.Phone: 100}, Hours: 1, StartHour: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, d); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadJSONL(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScenario drains a built-in scenario once per op and reports
// amortized ns/event through the full pipeline (generate → transform →
// spill → merge).
func benchScenario(b *testing.B, name string, ues int, opts scenario.RunOpts) {
	b.Helper()
	spec, err := scenario.Builtin(name)
	if err != nil {
		b.Fatal(err)
	}
	opts.UEs = ues
	// One warm-up run sizes the event count for the per-event metric.
	st, err := spec.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	sum, err := scenario.Drain(st)
	st.Close()
	if err != nil {
		b.Fatal(err)
	}
	if sum.Events == 0 {
		b.Fatal("scenario emitted no events")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := spec.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := scenario.Drain(st); err != nil {
			b.Fatal(err)
		}
		st.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sum.Events), "ns/event")
}

// BenchmarkScenarioMergePerEvent measures the streaming scenario pipeline
// end-to-end on the flash-crowd preset and reports amortized ns/event —
// the currency of the "millions of users" north star (1M UEs ≈ 33M events
// at this preset's shape).
func BenchmarkScenarioMergePerEvent(b *testing.B) {
	benchScenario(b, "flash-crowd", 2000, scenario.RunOpts{})
}

// BenchmarkScenarioMergePerEventNarrow forces the hierarchical merge path
// (tiny chunks, fan-in 4) over the same workload — the spill/merge overhead
// bound.
func BenchmarkScenarioMergePerEventNarrow(b *testing.B) {
	benchScenario(b, "flash-crowd", 2000, scenario.RunOpts{BatchSize: 64, MaxFanIn: 4})
}

// BenchmarkScenarioFlashCrowd runs a 10k-UE flash crowd into the MCN sink
// per op — the full scenario → simulator pipeline. The alloc guard for
// bounded-memory streaming is TestBoundedMemoryStreaming in
// internal/scenario; here the per-op heap is reported as a metric via
// ReportAllocs for trend tracking.
func BenchmarkScenarioFlashCrowd(b *testing.B) {
	spec, err := scenario.Builtin("flash-crowd")
	if err != nil {
		b.Fatal(err)
	}
	cfg := mcn.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := spec.Open(scenario.RunOpts{UEs: 10000})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := scenario.RunMCN(st, cfg)
		if err != nil {
			b.Fatal(err)
		}
		st.Close()
		if i == 0 {
			b.ReportMetric(float64(rep.Events), "events/op")
		}
	}
}

// BenchmarkTracezSpanDisabled measures the flight recorder's disabled-path
// cost at an instrumented call site: one atomic load in Begin, one in End.
// This is the overhead every hot loop pays when tracing is off, so it must
// stay in the low single nanoseconds.
func BenchmarkTracezSpanDisabled(b *testing.B) {
	tracez.Disable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tracez.Begin(tracez.StageDecodeStep, "")
		sp.End(1, "")
	}
}

// BenchmarkTracezSpanEnabled measures the full recording path: timestamping,
// one span allocation, the ring store and the stage-aggregate updates.
func BenchmarkTracezSpanEnabled(b *testing.B) {
	tracez.Enable()
	defer func() {
		tracez.Disable()
		tracez.Reset()
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tracez.Begin(tracez.StageDecodeStep, "")
		sp.End(1, "")
	}
}

// BenchmarkTelemetryHistogramObserve measures one lock-free histogram
// sample: a log-bucket index, an atomic bucket add and the CAS sum loop.
func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := telemetry.NewHistogram(telemetry.LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

// BenchmarkRunlogAppend measures one checkpoint append to the write-ahead
// run journal under the default interval fsync policy: JSON encode, CRC,
// frame header and a buffered write. This is the per-checkpoint tax every
// durable run pays, so it must stay deep in sub-microsecond territory.
func BenchmarkRunlogAppend(b *testing.B) {
	j, err := runlog.Create(filepath.Join(b.TempDir(), "bench"+runlog.Ext),
		runlog.Options{Policy: runlog.PolicyInterval})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.AppendBegin(runlog.Begin{RunID: "run-1", Scenario: "flash-crowd", Sink: "jsonl", UEs: 1000})
	c := runlog.Checkpoint{
		Time: 123.456789, UE: 982451653, Seq: 31,
		Events: 1 << 20, TraceOffset: 123.456789,
		SinkBytes: 1 << 27, SinkLines: 1 << 20,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Events++
		j.AppendCheckpoint(c)
	}
}

// BenchmarkAdmissionCheck measures the daemon's POST /runs admission fast
// path with every limit armed: three atomic loads against the resource
// ledger, no locks. Every submission pays this before anything else, so
// it must stay well under a microsecond.
func BenchmarkAdmissionCheck(b *testing.B) {
	s := served.New(served.Options{
		TempDir:       b.TempDir(),
		MaxActiveRuns: 64,
		MaxTotalUEs:   1 << 20,
		MaxSpillBytes: 1 << 34,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.CheckAdmission(1000); err != nil {
			b.Fatal(err)
		}
	}
}
