package scenario

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Budget kinds, the typed reason a run exceeded its resource envelope.
const (
	// BudgetSpillBytes: the run's live spill-disk footprint (sorted run
	// files plus merge outputs) crossed MaxSpillBytes.
	BudgetSpillBytes = "spill_bytes"
	// BudgetEvents: the pacer released MaxEvents events.
	BudgetEvents = "events"
	// BudgetWallClock: the run's context deadline (MaxWall) expired.
	BudgetWallClock = "wall_clock"
)

// Budget bounds one run's resource consumption. The zero value is
// unlimited. Budgets make an over-consuming run fail itself — with a
// typed *BudgetExceededError naming what ran out — instead of exhausting
// the disk or wall clock the whole process shares.
//
// Enforcement points: MaxSpillBytes is checked before every spill and
// merge write inside OpenContext (generation phase); MaxEvents is checked
// by the Pacer before each release; MaxWall is enforced by the caller
// attaching a context deadline of MaxWall to the run's context — the
// pipeline and Pacer then classify that deadline's expiry as a wall-clock
// budget breach rather than an operator stop.
type Budget struct {
	// MaxSpillBytes caps the run's live spill-disk footprint in bytes
	// (0 = unlimited). The cap covers the peak: a merge pass's output is
	// charged before its inputs are released.
	MaxSpillBytes int64
	// MaxEvents caps how many events the Pacer releases (0 = unlimited).
	MaxEvents int64
	// MaxWall is the run's wall-clock deadline (0 = unlimited). The caller
	// must derive the run context with this deadline; the field here only
	// tells the pipeline to classify the expiry as a budget breach.
	MaxWall time.Duration
	// SpillUsed, when non-nil, also receives the run's spill accounting —
	// a shared gauge of live spill bytes across runs (the daemon's
	// admission controller reads it for its -max-spill-bytes budget).
	SpillUsed *atomic.Int64
}

// BudgetExceededError is the typed failure a run reports when it runs
// over one of its Budget bounds. Kind is one of the Budget* constants;
// Limit and Used are in the kind's unit (bytes, events, or nanoseconds).
type BudgetExceededError struct {
	Kind  string
	Limit int64
	Used  int64
	cause error
}

func (e *BudgetExceededError) Error() string {
	switch e.Kind {
	case BudgetWallClock:
		return fmt.Sprintf("scenario: budget exceeded: wall clock ran %s against a %s deadline",
			time.Duration(e.Used), time.Duration(e.Limit))
	default:
		return fmt.Sprintf("scenario: budget exceeded: %s used %d of %d", e.Kind, e.Used, e.Limit)
	}
}

// Unwrap exposes the underlying cause (context.DeadlineExceeded for
// wall-clock breaches), so errors.Is keeps working across the typed wrap.
func (e *BudgetExceededError) Unwrap() error { return e.cause }

// WrapWallClock types a context-deadline expiry as a wall-clock budget
// breach — for callers (the daemon) that armed the deadline themselves
// and see the raw context error from the generation phase.
func WrapWallClock(limit, elapsed time.Duration, cause error) *BudgetExceededError {
	return &BudgetExceededError{Kind: BudgetWallClock, Limit: int64(limit), Used: int64(elapsed), cause: cause}
}

// AsBudgetExceeded unwraps err to a *BudgetExceededError if one is in its
// chain.
func AsBudgetExceeded(err error) (*BudgetExceededError, bool) {
	var be *BudgetExceededError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// spillAccount tracks one run's live spill bytes against its quota and,
// when configured, a shared cross-run gauge. All methods are nil-safe so
// unbudgeted runs pay nothing.
type spillAccount struct {
	max    int64
	shared *atomic.Int64
	local  atomic.Int64
}

// newSpillAccount returns nil when the budget needs no spill tracking.
func newSpillAccount(b Budget) *spillAccount {
	if b.MaxSpillBytes <= 0 && b.SpillUsed == nil {
		return nil
	}
	return &spillAccount{max: b.MaxSpillBytes, shared: b.SpillUsed}
}

// add charges n bytes about to be written and reports a quota breach.
// The charge stands even on error — the caller aborts the run and the
// whole account is released once the spill directory is removed.
func (a *spillAccount) add(n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	used := a.local.Add(n)
	if a.shared != nil {
		a.shared.Add(n)
	}
	if a.max > 0 && used > a.max {
		return &BudgetExceededError{Kind: BudgetSpillBytes, Limit: a.max, Used: used}
	}
	return nil
}

// sub releases n bytes whose backing file was deleted.
func (a *spillAccount) sub(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.local.Add(-n)
	if a.shared != nil {
		a.shared.Add(-n)
	}
}

// release drops whatever the account still holds — called when the spill
// directory is removed wholesale (Stream.Close, or an aborted open).
func (a *spillAccount) release() {
	if a == nil {
		return
	}
	rem := a.local.Swap(0)
	if rem != 0 && a.shared != nil {
		a.shared.Add(-rem)
	}
}
