package scenario

import (
	"sort"

	"cptgpt/internal/events"
	"cptgpt/internal/trace"
)

// mix64 is the SplitMix64 finalizer: a cheap, high-quality stateless hash
// used to derive all operator randomness from (spec seed, op index, UE,
// event) tuples — stateless so a UE's transformed stream never depends on
// which chunk or worker produced it.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// opRand returns a deterministic uniform in [0, 1) for an (op seed, UE,
// draw index) tuple.
func opRand(seed, ue, n uint64) float64 {
	h := mix64(seed ^ mix64(ue) ^ mix64(n^0x6a09e667f3bcc909))
	return float64(h>>11) / (1 << 53)
}

// compiledOp is an OpSpec resolved against the spec: parsed event type and
// a per-op seed.
type compiledOp struct {
	spec OpSpec
	ev   events.Type
	seed uint64
}

// compileOps resolves the spec's operators targeting source srcID, in spec
// order. Op seeds mix the spec seed with the op's index so two identical
// ops draw independent randomness.
func compileOps(spec *Spec, srcID string) ([]compiledOp, error) {
	var out []compiledOp
	for i := range spec.Ops {
		op := &spec.Ops[i]
		if op.Source != "" && op.Source != srcID {
			continue
		}
		c := compiledOp{spec: *op, seed: spec.Seed ^ mix64(uint64(i)+0x517cc1b727220a95)}
		if op.Op == "amplify" {
			ev, err := events.ParseType(op.Event)
			if err != nil {
				return nil, err
			}
			c.ev = ev
		}
		out = append(out, c)
	}
	return out, nil
}

// applyOps rewrites one UE stream through the source's operator chain, then
// clamps it to [0, horizon) and restores time order. ue is the UE's global
// key; scratch (reused across calls) receives the rewritten events and the
// stream's Events slice is repointed at it, so callers must copy events out
// before the next applyOps call on the same scratch.
func applyOps(ops []compiledOp, s *trace.Stream, ue uint64, horizon float64, scratch []trace.Event) []trace.Event {
	evs := append(scratch[:0], s.Events...)
	for i := range ops {
		evs = ops[i].apply(evs, ue)
	}
	// Clamp to the scenario horizon and drop pre-origin events.
	kept := evs[:0]
	for _, e := range evs {
		if e.Time >= 0 && e.Time < horizon {
			kept = append(kept, e)
		}
	}
	evs = kept
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	s.Events = evs
	return evs
}

// apply rewrites evs in place (growing it only for amplify) and returns the
// result.
func (c *compiledOp) apply(evs []trace.Event, ue uint64) []trace.Event {
	w0, w1 := c.spec.Window[0], c.spec.Window[1]
	switch c.spec.Op {
	case "ramp":
		if len(evs) == 0 {
			return evs
		}
		u := opRand(c.seed, ue, 0)
		switch c.spec.Shape {
		case "front":
			u = u * u
		case "spike":
			u = u * u * u * u
		}
		shift := w0 + u*(w1-w0) - evs[0].Time
		for i := range evs {
			evs[i].Time += shift
		}

	case "amplify":
		whole := int(c.spec.Factor)
		frac := c.spec.Factor - float64(whole)
		out := evs[:0:0] // fresh backing: we both read and append
		for i, e := range evs {
			out = append(out, e)
			if e.Type != c.ev || e.Time < w0 || e.Time >= w1 {
				continue
			}
			copies := whole - 1
			if frac > 0 && opRand(c.seed, ue, uint64(i)*2+1) < frac {
				copies++
			}
			for j := 0; j < copies; j++ {
				jit := 0.5 * opRand(c.seed^uint64(j+1), ue, uint64(i)*2+2)
				t := e.Time + jit
				if t >= w1 {
					t = e.Time
				}
				out = append(out, trace.Event{Time: t, Type: e.Type})
			}
		}
		return out

	case "thin":
		kept := evs[:0]
		for i, e := range evs {
			if e.Time >= w0 && e.Time < w1 && opRand(c.seed, ue, uint64(i)) < c.spec.Prob {
				continue
			}
			kept = append(kept, e)
		}
		return kept

	case "compress":
		f := c.spec.Factor
		for i := range evs {
			t := evs[i].Time
			switch {
			case t < w0:
			case t < w1:
				evs[i].Time = w0 + (t-w0)/f
			default:
				evs[i].Time = t - (w1-w0)*(1-1/f)
			}
		}

	case "clip":
		kept := evs[:0]
		for _, e := range evs {
			if e.Time >= w0 && e.Time < w1 {
				kept = append(kept, e)
			}
		}
		return kept
	}
	return evs
}
