package scenario

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/mcn"
	"cptgpt/internal/trace"
)

func mcnConfigForTest() mcn.Config { return mcn.DefaultConfig() }

// drainAll collects a scenario's full event sequence (test-sized runs only).
func drainAll(t *testing.T, spec *Spec, opts RunOpts) []Event {
	t.Helper()
	st, err := spec.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var out []Event
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// rate returns events/s of evs within [lo, hi).
func rate(evs []Event, lo, hi float64) float64 {
	var n int
	for _, e := range evs {
		if e.Time >= lo && e.Time < hi {
			n++
		}
	}
	return float64(n) / (hi - lo)
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", got, spec)
	}
}

func TestSpecValidation(t *testing.T) {
	base := func() *Spec { s, _ := Builtin("flash-crowd"); return s }
	bad := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"bad generation", func(s *Spec) { s.Generation = "6G" }},
		{"zero horizon", func(s *Spec) { s.HorizonSec = 0 }},
		{"no sources", func(s *Spec) { s.Sources = nil }},
		{"dup source id", func(s *Spec) { s.Sources[1].ID = s.Sources[0].ID }},
		{"unknown kind", func(s *Spec) { s.Sources[0].Kind = "quantum" }},
		{"bad device mix", func(s *Spec) { s.Sources[0].DeviceMix = map[string]float64{"drone": 1} }},
		{"zero shares", func(s *Spec) { s.Sources[0].Share = 0; s.Sources[1].Share = 0 }},
		{"op unknown source", func(s *Spec) { s.Ops[0].Source = "nobody" }},
		{"op empty window", func(s *Spec) { s.Ops[0].Window = [2]float64{100, 100} }},
		{"op unknown name", func(s *Spec) { s.Ops[0].Op = "explode" }},
		{"ramp bad shape", func(s *Spec) { s.Ops[0].Shape = "sideways" }},
		{"amplify bad event", func(s *Spec) { s.Ops[2].Event = "NOPE" }},
		{"amplify factor<1", func(s *Spec) { s.Ops[2].Factor = 0.5 }},
		{"compress factor<=1", func(s *Spec) { s.Ops[1].Factor = 1 }},
		{"cptgpt no model", func(s *Spec) { s.Sources[0].Kind = "cptgpt"; s.Sources[0].ModelFile = "" }},
		{"cptgpt bad precision", func(s *Spec) {
			s.Sources[0].Kind = "cptgpt"
			s.Sources[0].ModelFile = "m.bin"
			s.Sources[0].Precision = "f16"
		}},
	}
	for _, tc := range bad {
		s := base()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinRegistry(t *testing.T) {
	names := Builtins()
	if len(names) < 6 {
		t.Fatalf("only %d built-ins registered, need ≥ 6: %v", len(names), names)
	}
	for _, name := range names {
		spec, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Fatalf("built-in %q reports name %q", name, spec.Name)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("built-in %q invalid: %v", name, err)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("unknown built-in must error")
	}
}

// Every built-in must produce a non-empty, globally time-ordered sequence
// bounded by the horizon.
func TestBuiltinsStreamOrdered(t *testing.T) {
	for _, name := range Builtins() {
		spec, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		evs := drainAll(t, spec, RunOpts{UEs: 400})
		if len(evs) == 0 {
			t.Fatalf("%s: no events", name)
		}
		last := Event{Time: -1}
		for i, e := range evs {
			if e.Time < last.Time {
				t.Fatalf("%s: event %d at %v after %v", name, i, e.Time, last.Time)
			}
			if e.Time < 0 || e.Time >= spec.HorizonSec {
				t.Fatalf("%s: event %d at %v outside horizon %v", name, i, e.Time, spec.HorizonSec)
			}
			if !e.Type.Valid() || !e.Device.Valid() {
				t.Fatalf("%s: event %d has invalid type/device: %+v", name, i, e)
			}
			last = e
		}
	}
}

// Scenario signatures: each built-in must exhibit the workload shape it
// names.

func TestFlashCrowdSignature(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, spec, RunOpts{UEs: 800})
	// Baseline over the pre-crowd steady state (skip the initial attach
	// transient), storm over the crowd window.
	baseline := rate(evs, 300, 1200)
	storm := rate(evs, 1200, 1500)
	if storm < 5*baseline {
		t.Fatalf("flash-crowd window rate %.2f/s not ≥ 5x baseline %.2f/s", storm, baseline)
	}
}

func TestHandoverStormSignature(t *testing.T) {
	spec, err := Builtin("handover-storm")
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, spec, RunOpts{UEs: 800})
	hoShare := func(lo, hi float64) float64 {
		var ho, all int
		for _, e := range evs {
			if e.Time >= lo && e.Time < hi {
				all++
				if e.Type == events.Handover {
					ho++
				}
			}
		}
		return float64(ho) / float64(all)
	}
	in, out := hoShare(900, 1800), hoShare(2100, 3600)
	if in < 2*out {
		t.Fatalf("handover-storm HO share in window %.3f not ≥ 2x outside %.3f", in, out)
	}
}

func TestPagingStormSignature(t *testing.T) {
	spec, err := Builtin("paging-storm")
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, spec, RunOpts{UEs: 800})
	srvRate := func(lo, hi float64) float64 {
		var n int
		for _, e := range evs {
			if e.Time >= lo && e.Time < hi && e.Type == events.ServiceRequest {
				n++
			}
		}
		return float64(n) / (hi - lo)
	}
	in, out := srvRate(600, 1200), srvRate(1800, 3600)
	if in < 3*out {
		t.Fatalf("paging-storm SRV_REQ rate in window %.2f/s not ≥ 3x outside %.2f/s", in, out)
	}
}

func TestIoTBurstSignature(t *testing.T) {
	spec, err := Builtin("iot-burst")
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, spec, RunOpts{UEs: 800})
	iotRate := func(lo, hi float64) float64 {
		var n int
		for _, e := range evs {
			if e.Time >= lo && e.Time < hi && e.Device != events.Phone {
				n++
			}
		}
		return float64(n) / (hi - lo)
	}
	burst, before := iotRate(1800, 2100), iotRate(300, 1800)
	if burst < 5*before {
		t.Fatalf("iot-burst device rate %.2f/s not ≥ 5x pre-burst %.2f/s", burst, before)
	}
}

func TestFailureRecoveryWaveSignature(t *testing.T) {
	spec, err := Builtin("failure-recovery-wave")
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, spec, RunOpts{UEs: 800})
	pre := rate(evs, 600, 1500)
	outage := rate(evs, 1500, 1800)
	wave := rate(evs, 1800, 2100)
	if outage > 0.02*pre {
		t.Fatalf("outage window rate %.3f/s not ~0 (pre %.3f/s)", outage, pre)
	}
	if wave < 1.5*pre {
		t.Fatalf("recovery wave rate %.2f/s not ≥ 1.5x pre-outage %.2f/s", wave, pre)
	}
	// The wave must lead with attaches (re-registration).
	var atch, all int
	for _, e := range evs {
		if e.Time >= 1800 && e.Time < 1860 {
			all++
			if e.Type == events.Attach {
				atch++
			}
		}
	}
	if all == 0 || float64(atch)/float64(all) < 0.2 {
		t.Fatalf("recovery wave is not attach-led: %d/%d", atch, all)
	}
}

func TestMixShiftSignature(t *testing.T) {
	spec, err := Builtin("mix-shift")
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, spec, RunOpts{UEs: 800})
	carShare := func(lo, hi float64) float64 {
		var car, all int
		for _, e := range evs {
			if e.Time >= lo && e.Time < hi {
				all++
				if e.Device == events.ConnectedCar {
					car++
				}
			}
		}
		if all == 0 {
			return 0
		}
		return float64(car) / float64(all)
	}
	first, second := carShare(0, 1800), carShare(1800, 3600)
	if second < first+0.3 {
		t.Fatalf("mix-shift car share did not shift: %.3f → %.3f", first, second)
	}
}

func TestBaselineDiurnalSignature(t *testing.T) {
	spec, err := Builtin("baseline-diurnal")
	if err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, spec, RunOpts{UEs: 400})
	// Hours must differ in activity (the diurnal curve), without any
	// storm-scale spike: a drifting baseline.
	h1 := rate(evs, 3600, 7200)
	h2 := rate(evs, 7200, 10800)
	if h1 == 0 || h2 == 0 {
		t.Fatal("baseline hours empty")
	}
	ratio := h1 / h2
	if ratio < 1.02 && ratio > 0.98 {
		t.Fatalf("no diurnal drift between hours: %.2f vs %.2f events/s", h1, h2)
	}
	if ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("baseline drifted like a storm: %.2f vs %.2f events/s", h1, h2)
	}
}

// The engine's determinism guarantee: identical output at every
// Parallelism × BatchSize, including when the hierarchical merge path
// (MaxFanIn ≪ runs) kicks in.
func TestDeterministicAcrossParallelismAndBatch(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	want := drainAll(t, spec, RunOpts{UEs: 300, Parallelism: 1, BatchSize: 300})
	for _, par := range []int{1, 4} {
		for _, batch := range []int{13, 64, 300} {
			for _, fanIn := range []int{0, 2} {
				got := drainAll(t, spec, RunOpts{UEs: 300, Parallelism: par, BatchSize: batch, MaxFanIn: fanIn})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("parallelism=%d batch=%d fanIn=%d diverged (%d vs %d events)",
						par, batch, fanIn, len(got), len(want))
				}
			}
		}
	}
}

// TestCPTGPTSourcePrecision runs a cptgpt-model source end-to-end through
// the streaming pipeline at both decode precisions: the spec-declared "f32"
// fast path must be deterministic across Parallelism × BatchSize, and
// RunOpts.Precision must override the spec run-wide.
func TestCPTGPTSourcePrecision(t *testing.T) {
	cfg := cptgpt.DefaultConfig()
	cfg.DModel = 16
	cfg.Heads = 2
	cfg.MLPHidden = 32
	cfg.HeadHidden = 16
	cfg.MaxLen = 40
	tk := cptgpt.Tokenizer{Gen: events.Gen4G, MinLog: 0, MaxLog: 5, LogScale: true}
	m, err := cptgpt.NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{
		Name: "precision-test", Generation: "4G", Seed: 3, HorizonSec: 600, Population: 50,
		Sources: []SourceSpec{{ID: "gpt", Kind: "cptgpt", ModelFile: path, Share: 1, Precision: "f32"}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	f32a := drainAll(t, spec, RunOpts{})
	if len(f32a) == 0 {
		t.Fatal("f32 scenario emitted no events")
	}
	f32b := drainAll(t, spec, RunOpts{Parallelism: 2, BatchSize: 8})
	if !reflect.DeepEqual(f32a, f32b) {
		t.Fatal("f32 scenario output differs across Parallelism × BatchSize")
	}
	f64evs := drainAll(t, spec, RunOpts{Precision: "f64"})
	if len(f64evs) == 0 {
		t.Fatal("f64-override scenario emitted no events")
	}
	if _, err := spec.Open(RunOpts{Precision: "f16"}); err == nil {
		t.Fatal("bad RunOpts.Precision must error")
	}
}

// TestCPTGPTSourceSpeculative runs a cptgpt-model source through the
// pipeline with speculative decoding: spec-declared speculation must be
// deterministic across Parallelism × BatchSize, the run-wide override must
// switch it on/off against the spec, and a bad override must error.
func TestCPTGPTSourceSpeculative(t *testing.T) {
	cfg := cptgpt.DefaultConfig()
	cfg.DModel = 16
	cfg.Heads = 2
	cfg.MLPHidden = 32
	cfg.HeadHidden = 16
	cfg.MaxLen = 40
	tk := cptgpt.Tokenizer{Gen: events.Gen4G, MinLog: 0, MaxLog: 5, LogScale: true}
	m, err := cptgpt.NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{
		Name: "speculative-test", Generation: "4G", Seed: 3, HorizonSec: 600, Population: 40,
		Sources: []SourceSpec{{ID: "gpt", Kind: "cptgpt", ModelFile: path, Share: 1,
			Speculative: true, DraftTokens: 3}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	specA := drainAll(t, spec, RunOpts{})
	if len(specA) == 0 {
		t.Fatal("speculative scenario emitted no events")
	}
	specB := drainAll(t, spec, RunOpts{Parallelism: 2, BatchSize: 8})
	if !reflect.DeepEqual(specA, specB) {
		t.Fatal("speculative scenario output differs across Parallelism × BatchSize")
	}
	// "off" override must reproduce the plain-decode pipeline exactly.
	plainSpec := *spec
	plainSpec.Sources = append([]SourceSpec(nil), spec.Sources...)
	plainSpec.Sources[0].Speculative = false
	plain := drainAll(t, &plainSpec, RunOpts{})
	off := drainAll(t, spec, RunOpts{Speculative: "off"})
	if !reflect.DeepEqual(plain, off) {
		t.Fatal(`RunOpts.Speculative "off" must match a non-speculative spec`)
	}
	// "on" override over the plain spec must match the speculative spec.
	on := drainAll(t, &plainSpec, RunOpts{Speculative: "on", DraftTokens: 3})
	if !reflect.DeepEqual(specA, on) {
		t.Fatal(`RunOpts.Speculative "on" must match a speculative spec`)
	}
	if _, err := spec.Open(RunOpts{Speculative: "sometimes"}); err == nil {
		t.Fatal("bad RunOpts.Speculative must error")
	}
	bad := *spec
	bad.Sources = append([]SourceSpec(nil), spec.Sources...)
	bad.Sources[0].DraftTokens = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative draft_tokens must fail validation")
	}
}

// A custom ChunkFunc binds an arbitrary generator into a spec.
func TestCustomSourceBinding(t *testing.T) {
	spec := &Spec{
		Name: "custom-test", Generation: "4G", Seed: 1, HorizonSec: 100, Population: 10,
		Sources: []SourceSpec{{ID: "mine", Kind: "custom", Share: 1}},
	}
	if _, err := spec.Open(RunOpts{}); err == nil {
		t.Fatal("custom kind without a binding must error")
	}
	chunk := func(lo, hi int) ([]trace.Stream, error) {
		out := make([]trace.Stream, hi-lo)
		for i := range out {
			out[i] = trace.Stream{
				UEID: fmt.Sprintf("c-%d", lo+i), Device: events.Tablet,
				Events: []trace.Event{{Time: float64(lo+i) + 0.5, Type: events.Attach}},
			}
		}
		return out, nil
	}
	st, err := spec.Open(RunOpts{Sources: map[string]ChunkFunc{"mine": chunk}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var n int
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if want := fmt.Sprintf("mine-%07d", n); st.UEID(e) != want {
			t.Fatalf("UEID %q, want %q", st.UEID(e), want)
		}
		if e.Device != events.Tablet || e.Type != events.Attach {
			t.Fatalf("unexpected event %+v", e)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("drained %d events, want 10", n)
	}
}

// Operator unit semantics over a hand-built stream.
func TestOperatorSemantics(t *testing.T) {
	mk := func() *trace.Stream {
		return &trace.Stream{UEID: "u", Device: events.Phone, Events: []trace.Event{
			{Time: 10, Type: events.Attach},
			{Time: 100, Type: events.ServiceRequest},
			{Time: 150, Type: events.Handover},
			{Time: 200, Type: events.S1ConnRel},
			{Time: 400, Type: events.ServiceRequest},
		}}
	}
	apply := func(op OpSpec, s *trace.Stream) []trace.Event {
		c := compiledOp{spec: op, seed: 42}
		if op.Op == "amplify" {
			ev, err := events.ParseType(op.Event)
			if err != nil {
				t.Fatal(err)
			}
			c.ev = ev
		}
		return applyOps([]compiledOp{c}, s, 7, 1000, nil)
	}

	// clip keeps only the window.
	s := mk()
	got := apply(OpSpec{Op: "clip", Window: [2]float64{100, 201}}, s)
	if len(got) != 3 || got[0].Time != 100 || got[2].Time != 200 {
		t.Fatalf("clip wrong: %+v", got)
	}

	// thin with prob 1 empties the window, keeps the rest.
	s = mk()
	got = apply(OpSpec{Op: "thin", Window: [2]float64{100, 201}, Prob: 1}, s)
	if len(got) != 2 || got[0].Time != 10 || got[1].Time != 400 {
		t.Fatalf("thin wrong: %+v", got)
	}

	// compress squeezes the window and pulls the tail forward.
	s = mk()
	got = apply(OpSpec{Op: "compress", Window: [2]float64{100, 300}, Factor: 2}, s)
	want := []float64{10, 100, 125, 150, 300}
	for i, w := range want {
		if math.Abs(got[i].Time-w) > 1e-9 {
			t.Fatalf("compress event %d at %v, want %v (%+v)", i, got[i].Time, w, got)
		}
	}

	// amplify with an integer factor multiplies matching events exactly.
	s = mk()
	got = apply(OpSpec{Op: "amplify", Window: [2]float64{0, 1000}, Event: "SRV_REQ", Factor: 3}, s)
	var srv int
	for _, e := range got {
		if e.Type == events.ServiceRequest {
			srv++
		}
	}
	if srv != 6 {
		t.Fatalf("amplify x3 produced %d SRV_REQ, want 6", srv)
	}
	if len(got) != 9 {
		t.Fatalf("amplify changed non-target events: %d total, want 9", len(got))
	}

	// ramp(uniform) moves the first event into the window, preserving
	// relative offsets.
	s = mk()
	got = apply(OpSpec{Op: "ramp", Window: [2]float64{500, 600}, Shape: "uniform"}, s)
	if got[0].Time < 500 || got[0].Time >= 600 {
		t.Fatalf("ramp start %v outside window", got[0].Time)
	}
	if d := (got[1].Time - got[0].Time) - 90; math.Abs(d) > 1e-9 {
		t.Fatalf("ramp broke relative offsets by %v", d)
	}
}

// Sinks: JSONL and CSV event writers emit one line per event.
func TestEventWriterSinks(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Open(RunOpts{UEs: 60})
	if err != nil {
		t.Fatal(err)
	}
	var jb bytes.Buffer
	nj, err := WriteJSONL(&jb, st)
	st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if nj == 0 || strings.Count(jb.String(), "\n") != nj {
		t.Fatalf("JSONL sink wrote %d events, %d lines", nj, strings.Count(jb.String(), "\n"))
	}

	st, err = spec.Open(RunOpts{UEs: 60})
	if err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	nc, err := WriteCSV(&cb, st)
	st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if nc != nj {
		t.Fatalf("CSV sink wrote %d events, JSONL wrote %d", nc, nj)
	}
	if !strings.HasPrefix(cb.String(), "ue_id,device_type,timestamp,event_type\n") {
		t.Fatal("CSV sink missing header")
	}
}

// The MCN sink consumes the stream and accounts for every event.
func TestMCNSinkConsumesScenario(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Open(RunOpts{UEs: 200})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Drain(st)
	st.Close()
	if err != nil {
		t.Fatal(err)
	}

	st, err = spec.Open(RunOpts{UEs: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep, err := RunMCN(st, mcnConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != sum.Events {
		t.Fatalf("MCN processed %d events, scenario emitted %d", rep.Events, sum.Events)
	}
	if rep.UEs == 0 || rep.MaxInstancesUsed < rep.FinalInstances {
		t.Fatalf("implausible MCN report: %+v", rep)
	}
	// The synthetic sources are semantically valid; only operator-injected
	// duplicates (amplified SRV_REQ) may be rejected.
	if frac := float64(rep.Rejected) / float64(rep.Events); frac > 0.2 {
		t.Fatalf("rejection fraction %.3f implausibly high", frac)
	}
}

func TestDrainSummary(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Open(RunOpts{UEs: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sum, err := Drain(st)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events == 0 || sum.LastTime < sum.FirstTime || sum.LastTime >= spec.HorizonSec {
		t.Fatalf("implausible summary: %+v", sum)
	}
	var byType int
	for _, n := range sum.ByType {
		byType += n
	}
	if byType != sum.Events {
		t.Fatalf("ByType sums to %d, want %d", byType, sum.Events)
	}
	// The crowd spike must dominate the peak-rate window.
	if sum.PeakWindowStart < 1100 || sum.PeakWindowStart > 1600 {
		t.Fatalf("peak window at %v, want inside the crowd spike", sum.PeakWindowStart)
	}
}
