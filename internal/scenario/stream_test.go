package scenario

import (
	"runtime"
	"testing"

	"cptgpt/internal/trace"
)

// liveHeap forces a collection and returns the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// peakScenarioHeap runs a flash-crowd scenario at the given population and
// returns the peak live heap observed (after Open and sampled during the
// drain), relative to the pre-run baseline.
func peakScenarioHeap(t *testing.T, ues int) uint64 {
	t.Helper()
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	base := liveHeap()
	st, err := spec.Open(RunOpts{UEs: ues, Parallelism: 2, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	peak := liveHeap()
	n := 0
	for {
		_, ok := st.Next()
		if !ok {
			break
		}
		n++
		if n%8192 == 0 {
			if h := liveHeap(); h > peak {
				peak = h
			}
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if h := liveHeap(); h > peak {
		peak = h
	}
	if n == 0 {
		t.Fatal("scenario emitted no events")
	}
	if peak <= base {
		return 0
	}
	return peak - base
}

// TestBoundedMemoryStreaming is the alloc guard for the streaming pipeline:
// quadrupling the UE population must not meaningfully move the peak live
// heap, because every phase holds O(BatchSize) streams plus O(MaxFanIn)
// merge buffers — events live on disk, not in memory.
func TestBoundedMemoryStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile run skipped in -short")
	}
	small := peakScenarioHeap(t, 500)
	large := peakScenarioHeap(t, 2000)
	// Identical asymptotics with generous constant slack: the large run
	// may cost at most 2x the small one plus 4 MiB, against a ~4x event
	// volume. A pipeline that materialized the dataset would blow through
	// this immediately (±16 bytes/event × ~4x events).
	if large > 2*small+4<<20 {
		t.Fatalf("peak heap scales with UE count: %d UEs → %d bytes, %d UEs → %d bytes",
			500, small, 2000, large)
	}
}

// Merging zero-length sources must yield a clean empty stream.
func TestEmptyScenarioStream(t *testing.T) {
	spec := &Spec{
		Name: "empty", Generation: "4G", Seed: 1, HorizonSec: 10, Population: 4,
		Sources: []SourceSpec{{ID: "none", Kind: "custom", Share: 1}},
	}
	st, err := spec.Open(RunOpts{Sources: map[string]ChunkFunc{
		"none": func(lo, hi int) ([]trace.Stream, error) { return make([]trace.Stream, hi-lo), nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok := st.Next(); ok {
		t.Fatal("empty scenario emitted an event")
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}
