package scenario

import (
	"context"
	"os"
	"testing"
	"time"

	"cptgpt/internal/events"
)

// sliceSource is a fixed in-memory EventSource for pacer tests.
type sliceSource struct {
	evs []Event
	i   int
}

func (s *sliceSource) Next() (Event, bool) {
	if s.i >= len(s.evs) {
		return Event{}, false
	}
	e := s.evs[s.i]
	s.i++
	return e, true
}
func (s *sliceSource) Err() error                    { return nil }
func (s *sliceSource) Generation() events.Generation { return events.Gen4G }
func (s *sliceSource) UEID(e Event) string           { return "ue" }

// evenlySpaced builds n events, dt trace-seconds apart.
func evenlySpaced(n int, dt float64) *sliceSource {
	src := &sliceSource{}
	for i := 0; i < n; i++ {
		src.evs = append(src.evs, Event{Time: float64(i) * dt, UE: 1, Seq: uint32(i)})
	}
	return src
}

// TestPacerTiming checks that a paced drain of T trace-seconds at
// compression c takes about T/c wall seconds — within a generous tolerance
// for loaded CI machines — and that an unpaced drain does not sleep.
func TestPacerTiming(t *testing.T) {
	// 20 events spanning 38 trace-seconds at compression 100 → ~380ms.
	p := NewPacer(context.Background(), evenlySpaced(20, 2), 100)
	start := time.Now()
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	elapsed := time.Since(start)
	if n != 20 || p.Events() != 20 {
		t.Fatalf("released %d events (counter %d), want 20", n, p.Events())
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if p.Stopped() {
		t.Fatal("exhaustion must not report Stopped")
	}
	// Lower bound is hard (sleeps cannot complete early); upper bound is
	// loose — the schedule is 380ms and we allow 3x for scheduler noise.
	if elapsed < 350*time.Millisecond {
		t.Fatalf("paced drain took %v, want ≥ 350ms", elapsed)
	}
	if elapsed > 1140*time.Millisecond {
		t.Fatalf("paced drain took %v, want ≤ ~1.14s", elapsed)
	}

	// Unpaced (compression 0): released as fast as the source yields.
	p0 := NewPacer(nil, evenlySpaced(1000, 10), 0)
	start = time.Now()
	for {
		if _, ok := p0.Next(); !ok {
			break
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("unpaced drain slept: %v", elapsed)
	}
	if p0.Events() != 1000 {
		t.Fatalf("unpaced counter = %d, want 1000", p0.Events())
	}
}

// TestPacerLag checks that a source whose timestamps are already in the
// past (relative to the pace) reports a positive lag.
func TestPacerLag(t *testing.T) {
	// First event anchors the clock; the rest land "behind schedule" only
	// if the consumer is slower than the pace. Force it: compression so
	// high the whole trace is due immediately, then check lag after a
	// consumer-side delay.
	src := evenlySpaced(3, 1000) // 0s, 1000s, 2000s trace time
	p := NewPacer(context.Background(), src, 1e12)
	if _, ok := p.Next(); !ok {
		t.Fatal("first event missing")
	}
	time.Sleep(20 * time.Millisecond) // slow consumer
	if _, ok := p.Next(); !ok {
		t.Fatal("second event missing")
	}
	if lag := p.Lag(); lag < 10*time.Millisecond {
		t.Fatalf("lag = %v, want ≥ 10ms (slow consumer must show up)", lag)
	}
}

// TestPacerCancel checks the clean-drain contract: cancelling mid-stream
// releases the in-flight event, then ends the stream with ok=false,
// Err()==nil and Stopped()==true.
func TestPacerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// 1000 trace-seconds between events at compression 10 → 100s sleeps:
	// without cancellation this test would hang.
	p := NewPacer(ctx, evenlySpaced(5, 1000), 10)
	if _, ok := p.Next(); !ok {
		t.Fatal("first event missing")
	}
	done := make(chan struct{})
	var got []bool
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			_, ok := p.Next()
			got = append(got, ok)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the pacer park in its sleep
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled pacer did not return")
	}
	// The event the pacer was holding is released, then the stream ends.
	if len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("post-cancel Next results = %v, want [true false]", got)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("cancellation must not surface as Err: %v", err)
	}
	if !p.Stopped() {
		t.Fatal("cancelled pacer must report Stopped")
	}
	if p.Events() != 2 {
		t.Fatalf("events = %d, want 2", p.Events())
	}
}

// TestOpenContextCancelled checks that a pre-cancelled context aborts the
// generation phase with the context's error and leaves no spill directory.
func TestOpenContextCancelled(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tmp := t.TempDir()
	if _, err := spec.OpenContext(ctx, RunOpts{UEs: 200, TempDir: tmp}); err != context.Canceled {
		t.Fatalf("OpenContext on cancelled ctx = %v, want context.Canceled", err)
	}
	ents, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("cancelled OpenContext left spill state: %v", ents)
	}
}
