package scenario

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tracez"
)

// EventSource is the consumer-side contract of a scenario event sequence:
// Next yields events in the merge's (Time, UE, Seq) total order until
// ok=false, after which Err distinguishes clean exhaustion (nil) from a
// pipeline failure. Both *Stream and *Pacer implement it, and every sink
// (Drain, WriteJSONL, WriteCSV, RunMCN, ReplayTCP) consumes it, so pacing
// and other stages compose between the merge and any sink.
//
// Next is single-consumer: one goroutine pulls at a time.
type EventSource interface {
	Next() (e Event, ok bool)
	Err() error
	Generation() events.Generation
	UEID(Event) string
}

// Pacer re-times an event source to the wall clock: an event carrying
// trace timestamp t is released no earlier than start + (t-t0)/Compression
// wall time, where t0 is the first event's timestamp and start the wall
// instant it was released. Compression c plays c seconds of trace time per
// wall second (1 = real time, 3600 = an hour per second); Compression 0
// disables pacing and the Pacer degrades to a pure cancellation/counting
// stage.
//
// Cancelling the context ends the stream cleanly between events: an event
// already pulled from the source is still released (never severed
// mid-flight), the next Next returns ok=false with Err()==nil, and Stopped
// reports true so callers can tell an operator stop from exhaustion.
// Downstream sinks observe an ordinary end-of-stream and flush normally —
// this is the graceful-drain seam the daemon's DELETE /runs/{id} uses.
//
// Concurrency: Next is single-consumer; Events, Lag and Stopped are atomic
// reads safe from any goroutine while Next runs (they back the daemon's
// live telemetry).
type Pacer struct {
	src         EventSource
	ctx         context.Context
	compression float64

	started  bool
	start    time.Time
	t0       float64
	resumeT0 float64
	resumed  bool
	timer    *time.Timer
	done     bool

	// Budget enforcement (SetBudget): event-count and wall-clock bounds.
	// budgetErr, once set, is the stream's terminal error.
	budget    Budget
	budgetErr error

	// Load shedding (SetShedAfterLag): once lag crosses shedAfter the
	// pacer stops issuing pacing waits and releases events immediately —
	// dropping pacing, never events — until lag falls under shedAfter/2.
	// shedding/shedCheck belong to the single consumer goroutine; shed is
	// the cumulative shed-release counter, readable concurrently.
	shedAfter time.Duration
	shedding  bool
	shedCheck int64
	shedSp    tracez.Active
	shedSp0   int64
	shed      atomic.Int64

	events  atomic.Int64
	lag     atomic.Int64 // nanoseconds behind schedule at the last release
	stopped atomic.Bool

	// Distribution sinks (see SetHistograms) and achieved-rate window
	// accounting. winStart/winN belong to the single consumer goroutine.
	lagHist  *telemetry.Histogram
	rateHist *telemetry.Histogram
	winStart time.Time
	winN     int64
}

// NewPacer wraps src with wall-clock pacing under ctx. A nil ctx means
// context.Background(); compression <= 0 disables pacing.
func NewPacer(ctx context.Context, src EventSource, compression float64) *Pacer {
	if ctx == nil {
		ctx = context.Background()
	}
	if compression < 0 {
		compression = 0
	}
	return &Pacer{src: src, ctx: ctx, compression: compression}
}

// ResumeAt anchors the pacer's trace-time origin at t0 instead of the
// first event's timestamp. A resumed run passes its checkpointed trace
// offset here so the suffix plays at the schedule the uninterrupted run
// would have followed from that point (the wall origin is still the first
// release — recovery downtime is not replayed as lag). Call before the
// first Next.
func (p *Pacer) ResumeAt(t0 float64) {
	p.resumeT0 = t0
	p.resumed = true
}

// SetBudget bounds the stream: after MaxEvents releases the pacer ends
// the stream with a typed *BudgetExceededError, and a context deadline
// expiry is classified as a wall-clock budget breach (instead of a clean
// operator stop) when MaxWall is set. Call before the first Next.
func (p *Pacer) SetBudget(b Budget) { p.budget = b }

// SetShedAfterLag arms load shedding: when the release lag exceeds d the
// pacer enters shed mode — pacing waits and per-release schedule
// bookkeeping are dropped (events are not) so the backlog drains at full
// speed — and leaves it once lag falls under d/2. Shed releases are
// counted (Shed) so the degraded interval is observable and journalable.
// d <= 0 disables shedding. Call before the first Next.
func (p *Pacer) SetShedAfterLag(d time.Duration) {
	if d > 0 {
		p.shedAfter = d
	}
}

// SetHistograms attaches distribution sinks: lag receives the release lag
// in seconds for every paced release (0 when on schedule), rate receives
// the achieved events/s of every ~1s wall window. Either may be nil. Call
// before the first Next; the daemon points these at its per-run
// cptserved_pacer_lag_seconds / cptserved_pacer_window_rate series.
func (p *Pacer) SetHistograms(lag, rate *telemetry.Histogram) {
	p.lagHist = lag
	p.rateHist = rate
}

// windowTick advances the achieved-rate window accounting by one released
// event and flushes the window once it spans ≥ 1s of wall time.
func (p *Pacer) windowTick(now time.Time) {
	if p.winStart.IsZero() {
		p.winStart = now
	}
	p.winN++
	if el := now.Sub(p.winStart); el >= time.Second {
		if p.rateHist != nil {
			p.rateHist.Observe(float64(p.winN) / el.Seconds())
		}
		tracez.Record(tracez.StagePacerWindow, "", p.winStart, el, p.winN, "")
		p.winStart = now
		p.winN = 0
	}
}

// flushWindow emits the final partial achieved-rate window at end of
// stream, so even a sub-second run records one window observation.
func (p *Pacer) flushWindow() {
	if p.winStart.IsZero() || p.winN == 0 {
		return
	}
	el := time.Since(p.winStart)
	if el > 0 {
		if p.rateHist != nil {
			p.rateHist.Observe(float64(p.winN) / el.Seconds())
		}
		tracez.Record(tracez.StagePacerWindow, "", p.winStart, el, p.winN, "")
	}
	p.winN = 0
}

// endShed leaves shed mode, closing the trace span over the shed burst.
func (p *Pacer) endShed() {
	if !p.shedding {
		return
	}
	p.shedding = false
	if p.shedSp.Live() {
		p.shedSp.End(p.shed.Load()-p.shedSp0, "")
		p.shedSp = tracez.Active{}
	}
}

// endStream finalizes the iterator state shared by every end-of-stream
// path (cancellation, budget exhaustion, source exhaustion).
func (p *Pacer) endStream() {
	p.done = true
	p.endShed()
	p.flushWindow()
}

// Next releases the source's next event at its paced wall time.
func (p *Pacer) Next() (Event, bool) {
	if p.done {
		return Event{}, false
	}
	if err := p.ctx.Err(); err != nil {
		p.endStream()
		if p.budget.MaxWall > 0 && errors.Is(err, context.DeadlineExceeded) {
			// The deadline came from the run's wall-clock budget: this is a
			// budget breach, not an operator stop.
			used := int64(p.budget.MaxWall)
			if p.started {
				used = int64(time.Since(p.start))
			}
			p.budgetErr = &BudgetExceededError{
				Kind: BudgetWallClock, Limit: int64(p.budget.MaxWall), Used: used, cause: err,
			}
		} else {
			p.stopped.Store(true)
		}
		return Event{}, false
	}
	if limit := p.budget.MaxEvents; limit > 0 && p.events.Load() >= limit {
		p.endStream()
		p.budgetErr = &BudgetExceededError{Kind: BudgetEvents, Limit: limit, Used: p.events.Load()}
		return Event{}, false
	}
	e, ok := p.src.Next()
	if !ok {
		p.endStream()
		return Event{}, false
	}
	// Achieved-rate windows need a wall clock per event; skip entirely
	// unless something is listening (one atomic load when tracing is off).
	trackWin := p.rateHist != nil || tracez.Enabled()
	if p.compression > 0 {
		if p.shedding {
			// Shed fast path: no waits, no per-release schedule math. Every
			// 32nd release re-measures the lag to decide whether to rejoin
			// the schedule (hysteresis: exit under shedAfter/2).
			p.shed.Add(1)
			p.shedCheck++
			if p.shedCheck&31 == 0 {
				now := time.Now()
				target := p.start.Add(time.Duration((e.Time - p.t0) / p.compression * float64(time.Second)))
				lag := now.Sub(target)
				p.lag.Store(int64(max(lag, 0)))
				if p.lagHist != nil {
					p.lagHist.Observe(max(lag, 0).Seconds())
				}
				if trackWin {
					// The 31 skipped releases still belong to this window.
					p.winN += 31
					p.windowTick(now)
				}
				if lag < p.shedAfter/2 {
					p.endShed()
				}
			}
			p.events.Add(1)
			return e, true
		}
		now := time.Now()
		if !p.started {
			p.started = true
			p.start = now
			if p.resumed {
				p.t0 = p.resumeT0
			} else {
				p.t0 = e.Time
			}
		}
		target := p.start.Add(time.Duration((e.Time - p.t0) / p.compression * float64(time.Second)))
		wait := target.Sub(now)
		if p.shedAfter > 0 && -wait > p.shedAfter {
			// Lag crossed the shed bound: give up on pacing until the
			// backlog drains. Events keep flowing — only the waits and the
			// per-release bookkeeping are dropped.
			p.shedding = true
			p.shedCheck = 0
			p.shedSp0 = p.shed.Load()
			p.shedSp = tracez.Begin(tracez.StagePacerShed, "")
			p.shed.Add(1)
			p.lag.Store(int64(-wait))
			if p.lagHist != nil {
				p.lagHist.Observe((-wait).Seconds())
			}
			if trackWin {
				p.windowTick(now)
			}
		} else if wait > 0 {
			p.lag.Store(0)
			if p.lagHist != nil {
				p.lagHist.Observe(0)
			}
			waitSp := tracez.Begin(tracez.StagePacerWait, "")
			if p.timer == nil {
				p.timer = time.NewTimer(wait)
			} else {
				p.timer.Reset(wait)
			}
			select {
			case <-p.timer.C:
			case <-p.ctx.Done():
				if !p.timer.Stop() {
					<-p.timer.C
				}
				// Release the in-flight event immediately; the next call
				// observes the cancellation and ends the stream.
			}
			waitSp.End(1, "")
			if trackWin {
				p.windowTick(time.Now())
			}
		} else {
			// Behind schedule: release immediately and record the deficit.
			p.lag.Store(int64(-wait))
			if p.lagHist != nil {
				p.lagHist.Observe((-wait).Seconds())
			}
			if trackWin {
				p.windowTick(now)
			}
		}
	} else if trackWin {
		p.windowTick(time.Now())
	}
	p.events.Add(1)
	return e, true
}

// Err reports the source's error, or the typed *BudgetExceededError that
// ended the stream. A context cancellation is a clean stop, not an error
// — see Stopped.
func (p *Pacer) Err() error {
	if p.budgetErr != nil {
		return p.budgetErr
	}
	return p.src.Err()
}

// Generation returns the underlying source's technology generation.
func (p *Pacer) Generation() events.Generation { return p.src.Generation() }

// UEID delegates to the underlying source.
func (p *Pacer) UEID(e Event) string { return p.src.UEID(e) }

// Compression returns the configured time-compression factor (0 = unpaced).
func (p *Pacer) Compression() float64 { return p.compression }

// Events returns the number of events released so far. Safe concurrently
// with Next.
func (p *Pacer) Events() int64 { return p.events.Load() }

// Lag returns how far behind schedule the last release was (0 when the
// pacer is keeping up or pacing is disabled). Safe concurrently with Next.
func (p *Pacer) Lag() time.Duration { return time.Duration(p.lag.Load()) }

// Shed returns how many events were released in shed mode — paced past
// the shed-after-lag bound without a pacing wait. Safe concurrently with
// Next.
func (p *Pacer) Shed() int64 { return p.shed.Load() }

// ResumeShed seeds the shed counter with what previous incarnations
// journaled, so the cumulative count survives crash recovery exactly.
// Call before the first Next.
func (p *Pacer) ResumeShed(n int64) {
	if n > 0 {
		p.shed.Store(n)
	}
}

// Stopped reports whether the stream ended because the context was
// cancelled rather than by source exhaustion. Safe concurrently with Next.
func (p *Pacer) Stopped() bool { return p.stopped.Load() }
