package scenario

import (
	"context"
	"sync/atomic"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tracez"
)

// EventSource is the consumer-side contract of a scenario event sequence:
// Next yields events in the merge's (Time, UE, Seq) total order until
// ok=false, after which Err distinguishes clean exhaustion (nil) from a
// pipeline failure. Both *Stream and *Pacer implement it, and every sink
// (Drain, WriteJSONL, WriteCSV, RunMCN, ReplayTCP) consumes it, so pacing
// and other stages compose between the merge and any sink.
//
// Next is single-consumer: one goroutine pulls at a time.
type EventSource interface {
	Next() (e Event, ok bool)
	Err() error
	Generation() events.Generation
	UEID(Event) string
}

// Pacer re-times an event source to the wall clock: an event carrying
// trace timestamp t is released no earlier than start + (t-t0)/Compression
// wall time, where t0 is the first event's timestamp and start the wall
// instant it was released. Compression c plays c seconds of trace time per
// wall second (1 = real time, 3600 = an hour per second); Compression 0
// disables pacing and the Pacer degrades to a pure cancellation/counting
// stage.
//
// Cancelling the context ends the stream cleanly between events: an event
// already pulled from the source is still released (never severed
// mid-flight), the next Next returns ok=false with Err()==nil, and Stopped
// reports true so callers can tell an operator stop from exhaustion.
// Downstream sinks observe an ordinary end-of-stream and flush normally —
// this is the graceful-drain seam the daemon's DELETE /runs/{id} uses.
//
// Concurrency: Next is single-consumer; Events, Lag and Stopped are atomic
// reads safe from any goroutine while Next runs (they back the daemon's
// live telemetry).
type Pacer struct {
	src         EventSource
	ctx         context.Context
	compression float64

	started  bool
	start    time.Time
	t0       float64
	resumeT0 float64
	resumed  bool
	timer    *time.Timer
	done     bool

	events  atomic.Int64
	lag     atomic.Int64 // nanoseconds behind schedule at the last release
	stopped atomic.Bool

	// Distribution sinks (see SetHistograms) and achieved-rate window
	// accounting. winStart/winN belong to the single consumer goroutine.
	lagHist  *telemetry.Histogram
	rateHist *telemetry.Histogram
	winStart time.Time
	winN     int64
}

// NewPacer wraps src with wall-clock pacing under ctx. A nil ctx means
// context.Background(); compression <= 0 disables pacing.
func NewPacer(ctx context.Context, src EventSource, compression float64) *Pacer {
	if ctx == nil {
		ctx = context.Background()
	}
	if compression < 0 {
		compression = 0
	}
	return &Pacer{src: src, ctx: ctx, compression: compression}
}

// ResumeAt anchors the pacer's trace-time origin at t0 instead of the
// first event's timestamp. A resumed run passes its checkpointed trace
// offset here so the suffix plays at the schedule the uninterrupted run
// would have followed from that point (the wall origin is still the first
// release — recovery downtime is not replayed as lag). Call before the
// first Next.
func (p *Pacer) ResumeAt(t0 float64) {
	p.resumeT0 = t0
	p.resumed = true
}

// SetHistograms attaches distribution sinks: lag receives the release lag
// in seconds for every paced release (0 when on schedule), rate receives
// the achieved events/s of every ~1s wall window. Either may be nil. Call
// before the first Next; the daemon points these at its per-run
// cptserved_pacer_lag_seconds / cptserved_pacer_window_rate series.
func (p *Pacer) SetHistograms(lag, rate *telemetry.Histogram) {
	p.lagHist = lag
	p.rateHist = rate
}

// windowTick advances the achieved-rate window accounting by one released
// event and flushes the window once it spans ≥ 1s of wall time.
func (p *Pacer) windowTick(now time.Time) {
	if p.winStart.IsZero() {
		p.winStart = now
	}
	p.winN++
	if el := now.Sub(p.winStart); el >= time.Second {
		if p.rateHist != nil {
			p.rateHist.Observe(float64(p.winN) / el.Seconds())
		}
		tracez.Record(tracez.StagePacerWindow, "", p.winStart, el, p.winN, "")
		p.winStart = now
		p.winN = 0
	}
}

// flushWindow emits the final partial achieved-rate window at end of
// stream, so even a sub-second run records one window observation.
func (p *Pacer) flushWindow() {
	if p.winStart.IsZero() || p.winN == 0 {
		return
	}
	el := time.Since(p.winStart)
	if el > 0 {
		if p.rateHist != nil {
			p.rateHist.Observe(float64(p.winN) / el.Seconds())
		}
		tracez.Record(tracez.StagePacerWindow, "", p.winStart, el, p.winN, "")
	}
	p.winN = 0
}

// Next releases the source's next event at its paced wall time.
func (p *Pacer) Next() (Event, bool) {
	if p.done {
		return Event{}, false
	}
	if p.ctx.Err() != nil {
		p.done = true
		p.stopped.Store(true)
		p.flushWindow()
		return Event{}, false
	}
	e, ok := p.src.Next()
	if !ok {
		p.done = true
		p.flushWindow()
		return Event{}, false
	}
	// Achieved-rate windows need a wall clock per event; skip entirely
	// unless something is listening (one atomic load when tracing is off).
	trackWin := p.rateHist != nil || tracez.Enabled()
	if p.compression > 0 {
		now := time.Now()
		if !p.started {
			p.started = true
			p.start = now
			if p.resumed {
				p.t0 = p.resumeT0
			} else {
				p.t0 = e.Time
			}
		}
		target := p.start.Add(time.Duration((e.Time - p.t0) / p.compression * float64(time.Second)))
		if wait := target.Sub(now); wait > 0 {
			p.lag.Store(0)
			if p.lagHist != nil {
				p.lagHist.Observe(0)
			}
			waitSp := tracez.Begin(tracez.StagePacerWait, "")
			if p.timer == nil {
				p.timer = time.NewTimer(wait)
			} else {
				p.timer.Reset(wait)
			}
			select {
			case <-p.timer.C:
			case <-p.ctx.Done():
				if !p.timer.Stop() {
					<-p.timer.C
				}
				// Release the in-flight event immediately; the next call
				// observes the cancellation and ends the stream.
			}
			waitSp.End(1, "")
			if trackWin {
				p.windowTick(time.Now())
			}
		} else {
			// Behind schedule: release immediately and record the deficit.
			p.lag.Store(int64(-wait))
			if p.lagHist != nil {
				p.lagHist.Observe((-wait).Seconds())
			}
			if trackWin {
				p.windowTick(now)
			}
		}
	} else if trackWin {
		p.windowTick(time.Now())
	}
	p.events.Add(1)
	return e, true
}

// Err reports the source's error. A context cancellation is a clean stop,
// not an error — see Stopped.
func (p *Pacer) Err() error { return p.src.Err() }

// Generation returns the underlying source's technology generation.
func (p *Pacer) Generation() events.Generation { return p.src.Generation() }

// UEID delegates to the underlying source.
func (p *Pacer) UEID(e Event) string { return p.src.UEID(e) }

// Compression returns the configured time-compression factor (0 = unpaced).
func (p *Pacer) Compression() float64 { return p.compression }

// Events returns the number of events released so far. Safe concurrently
// with Next.
func (p *Pacer) Events() int64 { return p.events.Load() }

// Lag returns how far behind schedule the last release was (0 when the
// pacer is keeping up or pacing is disabled). Safe concurrently with Next.
func (p *Pacer) Lag() time.Duration { return time.Duration(p.lag.Load()) }

// Stopped reports whether the stream ended because the context was
// cancelled rather than by source exhaustion. Safe concurrently with Next.
func (p *Pacer) Stopped() bool { return p.stopped.Load() }
