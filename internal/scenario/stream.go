package scenario

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
	"cptgpt/internal/tracez"
)

// Event is one element of a scenario's merged, time-ordered event sequence:
// a timestamp, a compact UE key, the UE's device type and the event type.
// Seq is the event's index within its UE stream; (Time, UE, Seq) is the
// total order the merge emits, which is what makes scenario output
// bit-identical at every parallelism and chunking.
type Event struct {
	Time   float64
	UE     uint64
	Seq    uint32
	Device events.DeviceType
	Type   events.Type
}

// ueKeyBits is how many low bits of a UE key hold the per-source stream
// index; the source index lives above them.
const ueKeyBits = 40

// ueKey packs (source index, stream index) into one 64-bit UE key.
func ueKey(src int, idx int) uint64 {
	return uint64(src)<<ueKeyBits | uint64(idx)
}

// less orders events by the merge's total order (Time, UE, Seq).
func (e Event) less(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.UE != o.UE {
		return e.UE < o.UE
	}
	return e.Seq < o.Seq
}

// RunOpts tunes scenario execution. The zero value is usable.
type RunOpts struct {
	// UEs overrides the spec's population (0 keeps Spec.Population; if
	// that is also 0, DefaultPopulation applies).
	UEs int
	// Parallelism bounds the worker count generating and spilling chunks;
	// 0 means the tensor-layer default. Output is identical at every
	// setting.
	Parallelism int
	// BatchSize is the number of UE streams generated, transformed and
	// spilled per chunk — the unit the pipeline's peak memory scales with;
	// 0 means DefaultChunkStreams. CPT-GPT sources decode each chunk
	// through a continuously refilled BatchDecoder of
	// min(BatchSize, cptgpt.DefaultBatchSize) slots.
	// Output is identical at every setting.
	BatchSize int
	// TempDir hosts the spill run files ("" = the system temp dir). Every
	// run file is deleted by Stream.Close.
	TempDir string
	// MaxFanIn bounds the k-way merge width (and thus open files and
	// buffer memory); runs beyond it are merged hierarchically. 0 means
	// DefaultMaxFanIn.
	MaxFanIn int
	// Precision overrides every cptgpt source's decode arithmetic for this
	// run: "f64" (bit-exact reference) or "f32" (the fused float32 fast
	// path, ~half the decode memory traffic). "" keeps each source's own
	// spec setting. Output is deterministic per precision: for a fixed
	// precision it is identical at every Parallelism × BatchSize.
	Precision string
	// Speculative overrides every cptgpt source's speculative-decoding
	// setting for this run: "on" forces it, "off" disables it, "" keeps
	// each source's spec setting. Speculative output is deterministic per
	// seed and distributionally exact, but differs stream-by-stream from
	// plain decoding (different RNG consumption).
	Speculative string
	// DraftTokens overrides the speculation depth run-wide (0 keeps each
	// source's spec setting, or the engine default).
	DraftTokens int
	// Sources binds custom generators to spec source IDs (required for
	// kind "custom", optional override for any other kind).
	Sources map[string]ChunkFunc
	// LoadModel loads the trained model backing a "cptgpt" source; nil
	// means cptgpt.LoadFile. A long-running daemon passes a caching loader
	// here so models are read from disk once and shared across runs.
	LoadModel func(path string) (*cptgpt.Model, error)
	// SourceStats, when non-nil, supplies the decode-telemetry sink for
	// each cptgpt source (keyed by source ID; return nil to skip one).
	// Counters accumulate atomically as generation chunks finish, so a
	// daemon can watch per-source decode stats (slot utilization, draft
	// acceptance) while the generation phase is still running.
	SourceStats func(sourceID string) *cptgpt.DecodeStats
	// SourceStepHist, when non-nil, supplies a lock-free decode-step
	// duration histogram for each cptgpt source (keyed by source ID;
	// return nil to skip one). Every BatchDecoder.Step/StepK the source
	// performs observes its wall duration there — the distribution behind
	// a daemon's cptserved_decode_step_seconds series.
	SourceStepHist func(sourceID string) *telemetry.Histogram
	// Budget bounds the run's resource consumption (zero = unlimited):
	// spill-disk bytes are enforced at every spill and merge write, event
	// and wall-clock bounds by the Pacer. An over-budget run fails with a
	// typed *BudgetExceededError.
	Budget Budget
	// ResumeAfter fast-forwards the run past a checkpointed merge key:
	// every event ≤ (Time, UE, Seq) is regenerated (the pipeline is
	// deterministic, so regeneration is bit-identical) but pruned at the
	// spill stage, and the returned Stream emits exactly the suffix the
	// original run would have emitted after that key. Stream.Skipped
	// reports how many events were pruned. Nil runs from the beginning.
	ResumeAfter *Event
}

// DefaultPopulation is the UE count used when neither the spec nor the run
// options give one.
const DefaultPopulation = 1000

// DefaultChunkStreams is the default RunOpts.BatchSize.
const DefaultChunkStreams = 1024

// DefaultMaxFanIn is the default merge fan-in bound.
const DefaultMaxFanIn = 64

func (o RunOpts) chunkStreams() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return DefaultChunkStreams
}

// decodeBatch bounds the CPT-GPT decode batch (the BatchDecoder's slot
// count): the chunk size, capped at the decoder default so a large spill
// chunk does not inflate the shared KV cache.
func (o RunOpts) decodeBatch() int {
	return min(o.chunkStreams(), cptgpt.DefaultBatchSize)
}

// DecodeBatch reports the decode-slot capacity cptgpt sources run with
// under these options — the denominator for turning DecodeStats.SlotSteps
// into a slot-utilization figure.
func (o RunOpts) DecodeBatch() int { return o.decodeBatch() }

func (o RunOpts) fanIn() int {
	if o.MaxFanIn > 1 {
		return o.MaxFanIn
	}
	return DefaultMaxFanIn
}

func (o RunOpts) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return tensor.Parallelism()
}

// recordSize is the on-disk size of one spilled event: time(8) ue(8)
// seq(4) type(1) device(1), little-endian.
const recordSize = 22

func encodeRecord(buf []byte, e Event) {
	binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(e.Time))
	binary.LittleEndian.PutUint64(buf[8:16], e.UE)
	binary.LittleEndian.PutUint32(buf[16:20], e.Seq)
	buf[20] = byte(e.Type)
	buf[21] = byte(e.Device)
}

func decodeRecord(buf []byte) Event {
	return Event{
		Time:   math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8])),
		UE:     binary.LittleEndian.Uint64(buf[8:16]),
		Seq:    binary.LittleEndian.Uint32(buf[16:20]),
		Type:   events.Type(buf[20]),
		Device: events.DeviceType(buf[21]),
	}
}

// writeRun spills a sorted event slice to path, charging the spill
// account first so a quota breach aborts before the disk fills further.
func writeRun(path string, evs []Event, acct *spillAccount) error {
	if err := acct.add(int64(len(evs)) * recordSize); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scenario: creating run %s: %w", path, err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var rec [recordSize]byte
	for _, e := range evs {
		encodeRecord(rec[:], e)
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return fmt.Errorf("scenario: writing run %s: %w", path, err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("scenario: flushing run %s: %w", path, err)
	}
	return f.Close()
}

// runReader reads one spilled run sequentially.
type runReader struct {
	f   *os.File
	br  *bufio.Reader
	cur Event
}

func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: opening run %s: %w", path, err)
	}
	return &runReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

// next loads the run's next event into cur; ok=false at EOF.
func (r *runReader) next() (ok bool, err error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, fmt.Errorf("scenario: reading run: %w", err)
	}
	r.cur = decodeRecord(rec[:])
	return true, nil
}

func (r *runReader) close() error { return r.f.Close() }

// mergeHeap is a min-heap of run readers keyed by their current event.
type mergeHeap []*runReader

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].cur.less(h[j].cur) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stream is a scenario's merged event iterator: a bounded-memory, globally
// time-ordered sequence of control-plane events pulled incrementally by a
// sink. Close releases the spill directory.
type Stream struct {
	gen     events.Generation
	srcIDs  []string
	total   int // UEs across sources
	h       mergeHeap
	dir     string
	acct    *spillAccount // spill-byte accounting released on Close (nil = untracked)
	err     error
	closed  bool
	skipped int64 // events pruned by RunOpts.ResumeAfter

	// The stream's lifetime is the final lazy k-way merge; its span covers
	// first pull to exhaustion (or Close, for partially consumed streams).
	mergeSp tracez.Active
	mergeK  int
	merged  int64
}

// endMergeSpan records the stream's merge span once; safe to call from
// both the exhaustion path and Close.
func (st *Stream) endMergeSpan() {
	if st.mergeSp.Live() {
		st.mergeSp.End(st.merged, fmt.Sprintf("k=%d", st.mergeK))
		st.mergeSp = tracez.Active{}
	}
}

// Generation returns the scenario's technology generation.
func (st *Stream) Generation() events.Generation { return st.gen }

// UEs returns the total UE population backing the stream.
func (st *Stream) UEs() int { return st.total }

// Skipped reports how many regenerated events RunOpts.ResumeAfter pruned
// before the stream's first emitted event (0 for a from-scratch run).
func (st *Stream) Skipped() int64 { return st.skipped }

// UEID renders an event's UE key as a readable identifier,
// "<source-id>-<stream-index>".
func (st *Stream) UEID(e Event) string {
	src := int(e.UE >> ueKeyBits)
	idx := e.UE & (1<<ueKeyBits - 1)
	if src < len(st.srcIDs) {
		return fmt.Sprintf("%s-%07d", st.srcIDs[src], idx)
	}
	return fmt.Sprintf("ue-%d", e.UE)
}

// Next returns the next event in global time order; ok=false ends the
// stream (check Err, then Close).
func (st *Stream) Next() (e Event, ok bool) {
	if st.err != nil || len(st.h) == 0 {
		return Event{}, false
	}
	r := st.h[0]
	e = r.cur
	more, err := r.next()
	switch {
	case err != nil:
		st.err = err
		return Event{}, false
	case more:
		heap.Fix(&st.h, 0)
	default:
		heap.Pop(&st.h)
		if cerr := r.close(); cerr != nil && st.err == nil {
			st.err = cerr
		}
		if len(st.h) == 0 && st.err == nil {
			st.merged++
			st.endMergeSpan()
			return e, true
		}
	}
	st.merged++
	return e, true
}

// Err reports the first error the pipeline hit (nil on clean exhaustion).
func (st *Stream) Err() error { return st.err }

// Close releases every open run and deletes the spill directory. It is
// safe to call after partial consumption and more than once.
func (st *Stream) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	st.endMergeSpan()
	for _, r := range st.h {
		r.close()
	}
	st.h = nil
	st.acct.release()
	if st.dir != "" {
		if err := os.RemoveAll(st.dir); err != nil {
			return fmt.Errorf("scenario: removing spill dir: %w", err)
		}
	}
	return nil
}

// chunkJob is one unit of the generation phase: streams [lo, hi) of one
// source, spilled to run file out.
type chunkJob struct {
	src    int
	lo, hi int
	out    string
}

// Open executes the scenario's generation phase and returns its merged
// event stream. The pipeline:
//
//  1. every source's UE index space is cut into chunks of
//     RunOpts.BatchSize streams;
//  2. RunOpts.Parallelism workers generate chunks (model sources decode in
//     lockstep through a BatchDecoder), rewrite each stream through the
//     source's operator chain, assign the per-UE event sequence numbers,
//     sort the chunk and spill it as a sorted binary run;
//  3. runs are merged hierarchically down to RunOpts.MaxFanIn, and the
//     returned Stream k-way-merges the survivors lazily.
//
// Peak memory is O(Parallelism × BatchSize × stream length) for phase 2
// plus O(MaxFanIn) buffers for phase 3 — independent of the UE count. The
// emitted sequence is bit-identical at every Parallelism × BatchSize
// because chunk boundaries only move events between runs, never change the
// (Time, UE, Seq) total order the merge restores.
//
// Open is OpenContext under context.Background().
func (spec *Spec) Open(opts RunOpts) (st *Stream, err error) {
	return spec.OpenContext(context.Background(), opts)
}

// OpenContext is Open under a cancellable context: cancelling ctx aborts
// the generation phase between chunk jobs and merge passes (spill files are
// cleaned up) and OpenContext returns ctx's error — the seam a daemon uses
// to stop a run that is still generating. Cancellation after OpenContext
// returns does not affect the Stream; wrap it in a Pacer for cancellable
// consumption.
func (spec *Spec) OpenContext(ctx context.Context, opts RunOpts) (st *Stream, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	gen, err := spec.gen()
	if err != nil {
		return nil, err
	}
	total := opts.UEs
	if total <= 0 {
		total = spec.Population
	}
	if total <= 0 {
		total = DefaultPopulation
	}
	sources, err := resolveSources(spec, opts, total)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp(opts.TempDir, "cptscenario-")
	if err != nil {
		return nil, fmt.Errorf("scenario: creating spill dir: %w", err)
	}
	acct := newSpillAccount(opts.Budget)
	defer func() {
		if err != nil {
			os.RemoveAll(dir)
			acct.release()
		}
	}()

	// Phase 1: cut sources into chunk jobs.
	chunk := opts.chunkStreams()
	var jobs []chunkJob
	for si := range sources {
		for lo := 0; lo < sources[si].n; lo += chunk {
			hi := lo + chunk
			if hi > sources[si].n {
				hi = sources[si].n
			}
			jobs = append(jobs, chunkJob{
				src: si, lo: lo, hi: hi,
				out: filepath.Join(dir, fmt.Sprintf("run-%04d-%07d.bin", si, lo)),
			})
		}
	}

	// Phase 2: generate, transform, sort, spill — fanned over workers.
	runs, skipped, err := spillChunks(ctx, spec, sources, jobs, opts, acct)
	if err != nil {
		return nil, err
	}

	// Phase 3: bound the merge fan-in.
	if runs, err = reduceRuns(ctx, runs, opts.fanIn(), dir, acct); err != nil {
		return nil, err
	}

	st = &Stream{gen: gen, dir: dir, acct: acct, total: total, skipped: skipped}
	for i := range sources {
		st.srcIDs = append(st.srcIDs, sources[i].id)
	}
	if st.h, err = openRunHeap(runs); err != nil {
		st.Close()
		return nil, err
	}
	st.mergeSp = tracez.Begin(tracez.StageScenarioMerge, "")
	st.mergeK = len(runs)
	return st, nil
}

// openRunHeap opens every run, primes each reader with its first event
// (dropping empty runs) and returns an initialized merge heap. On error
// every run opened so far is closed.
func openRunHeap(paths []string) (mergeHeap, error) {
	var h mergeHeap
	fail := func(r *runReader, err error) (mergeHeap, error) {
		if r != nil {
			r.close()
		}
		for _, o := range h {
			o.close()
		}
		return nil, err
	}
	for _, path := range paths {
		r, err := openRun(path)
		if err != nil {
			return fail(nil, err)
		}
		ok, err := r.next()
		if err != nil {
			return fail(r, err)
		}
		if !ok {
			r.close()
			continue
		}
		h = append(h, r)
	}
	heap.Init(&h)
	return h, nil
}

// spillChunks runs the generation phase and returns the produced run paths
// in deterministic job order (empty chunks are skipped) plus the number of
// events pruned by RunOpts.ResumeAfter. A context cancellation stops
// dispatching jobs and surfaces as ctx's error.
func spillChunks(ctx context.Context, spec *Spec, sources []boundSource, jobs []chunkJob, opts RunOpts, acct *spillAccount) ([]string, int64, error) {
	horizon := spec.HorizonSec
	workers := opts.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	nonEmpty := make([]bool, len(jobs))
	errs := make([]error, workers)
	var skipped atomic.Int64
	jobCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var evs []Event
			var scratch []trace.Event
			// One job, isolated: a panicking source or operator must not
			// take down the process (a daemon runs many scenarios) — it
			// fails this run, and the worker keeps draining the job channel
			// so the dispatcher never blocks on dead workers.
			runJob := func(ji int) {
				defer func() {
					if p := recover(); p != nil {
						errs[w] = fmt.Errorf("scenario: panic in generation worker: %v\n%s", p, debug.Stack())
					}
				}()
				job := jobs[ji]
				src := &sources[job.src]
				srcSp := tracez.Begin(tracez.StageScenarioSource, "")
				streams, err := src.chunk(job.lo, job.hi)
				srcSp.End(int64(len(streams)), src.id)
				if err != nil {
					errs[w] = fmt.Errorf("scenario: source %q chunk [%d,%d): %w", src.id, job.lo, job.hi, err)
					return
				}
				if len(streams) != job.hi-job.lo {
					// A mis-sized chunk would silently corrupt UE keys
					// (stream i's key is job.lo+i).
					errs[w] = fmt.Errorf("scenario: source %q chunk [%d,%d) returned %d streams, want %d",
						src.id, job.lo, job.hi, len(streams), job.hi-job.lo)
					return
				}
				opsSp := tracez.Begin(tracez.StageScenarioOps, "")
				evs = evs[:0]
				for i := range streams {
					s := &streams[i]
					ue := ueKey(job.src, job.lo+i)
					scratch = applyOps(src.ops, s, ue, horizon, scratch)
					for seq, e := range s.Events {
						evs = append(evs, Event{
							Time: e.Time, UE: ue, Seq: uint32(seq),
							Device: s.Device, Type: e.Type,
						})
					}
				}
				opsSp.End(int64(len(evs)), src.id)
				if len(evs) == 0 {
					return
				}
				spillSp := tracez.Begin(tracez.StageScenarioSpill, "")
				sortEvents(evs)
				out := evs
				if resume := opts.ResumeAfter; resume != nil {
					// Fast-forward: prune the regenerated prefix ≤ the
					// checkpointed key. The chunk is sorted in the merge's
					// total order, so the prefix is a binary search away.
					cut := sort.Search(len(out), func(i int) bool { return resume.less(out[i]) })
					if cut > 0 {
						skipped.Add(int64(cut))
						out = out[cut:]
					}
					if len(out) == 0 {
						spillSp.End(0, src.id)
						return
					}
				}
				if err := writeRun(job.out, out, acct); err != nil {
					errs[w] = err
					return
				}
				spillSp.End(int64(len(out)), src.id)
				nonEmpty[ji] = true
			}
			for ji := range jobCh {
				if errs[w] != nil || ctx.Err() != nil {
					continue // drain after failure or cancellation
				}
				runJob(ji)
			}
		}(w)
	}
	for ji := range jobs {
		if ctx.Err() != nil {
			break
		}
		jobCh <- ji
	}
	close(jobCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	var runs []string
	for ji, ok := range nonEmpty {
		if ok {
			runs = append(runs, jobs[ji].out)
		}
	}
	return runs, skipped.Load(), nil
}

// sortEvents sorts by the merge's total order.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].less(evs[j]) })
}

// reduceRuns merges run files until at most fanIn remain. Each pass merges
// only the minimal prefix — min(fanIn, excess+1) runs — into one run
// appended at the queue's tail, so a trace just over the fan-in boundary
// rewrites a couple of runs, not the whole spill, and deep reductions
// re-merge each byte O(1) times on average. Merging never reorders the
// (Time, UE, Seq) total order, so the final stream is independent of how
// many passes happened.
func reduceRuns(ctx context.Context, runs []string, fanIn int, dir string, acct *spillAccount) ([]string, error) {
	for seq := 0; len(runs) > fanIn; seq++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k := min(fanIn, len(runs)-fanIn+1)
		out := filepath.Join(dir, fmt.Sprintf("merge-%06d.bin", seq))
		// The merge output is as large as its inputs combined; charge it
		// up front so the quota covers the pass's 2× peak, not just the
		// steady state.
		var inBytes int64
		for _, path := range runs[:k] {
			if fi, err := os.Stat(path); err == nil {
				inBytes += fi.Size()
			}
		}
		if err := acct.add(inBytes); err != nil {
			return nil, err
		}
		if err := mergeRunFiles(runs[:k], out); err != nil {
			return nil, err
		}
		// The merged inputs are dead weight; delete them eagerly so disk
		// usage stays ~2× the trace instead of growing per pass.
		for _, path := range runs[:k] {
			os.Remove(path)
		}
		acct.sub(inBytes)
		runs = append(runs[k:], out)
	}
	return runs, nil
}

// mergeRunFiles k-way merges sorted run files into one sorted run.
func mergeRunFiles(paths []string, out string) error {
	sp := tracez.Begin(tracez.StageScenarioMerge, "")
	var merged int64
	h, err := openRunHeap(paths)
	if err != nil {
		return err
	}
	defer func() {
		for _, r := range h {
			r.close()
		}
		if sp.Live() {
			sp.End(merged, fmt.Sprintf("k=%d", len(paths)))
		}
	}()

	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("scenario: creating merge run %s: %w", out, err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var rec [recordSize]byte
	for len(h) > 0 {
		r := h[0]
		merged++
		encodeRecord(rec[:], r.cur)
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return fmt.Errorf("scenario: writing merge run %s: %w", out, err)
		}
		ok, err := r.next()
		switch {
		case err != nil:
			f.Close()
			return err
		case ok:
			heap.Fix(&h, 0)
		default:
			heap.Pop(&h)
			if err := r.close(); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("scenario: flushing merge run %s: %w", out, err)
	}
	return f.Close()
}
