package scenario

import (
	"fmt"
	"math"
	"sort"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/trace"
)

// ChunkFunc produces the UE streams with indices [lo, hi) of one source's
// population, deterministically: the concatenation over any partition of
// the index space must be identical (every repo generator guarantees this
// via index-seeded per-stream RNGs). This is the plug point for custom
// sources — an SMM or NetShare model binds as a ChunkFunc via
// RunOpts.Sources.
type ChunkFunc func(lo, hi int) ([]trace.Stream, error)

// defaultDeviceMix is the carrier-like device split used when a synthetic
// source declares none (phones dominate, as in the paper's trace).
var defaultDeviceMix = map[string]float64{
	"phone":         0.65,
	"connected_car": 0.26,
	"tablet":        0.09,
}

// apportion splits total into len(weights) integer counts proportional to
// weights, distributing rounding remainders deterministically (largest
// fractional part first, ties by index).
func apportion(weights []float64, total int) []int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	counts := make([]int, len(weights))
	if sum <= 0 || total <= 0 {
		return counts
	}
	fracs := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := w / sum * float64(total)
		counts[i] = int(exact)
		fracs[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for k := 0; assigned < total; k++ {
		counts[order[k%len(order)]]++
		assigned++
	}
	return counts
}

// boundSource is a spec source resolved against a run: a concrete UE count,
// a chunked generator and the compiled operator chain targeting it.
type boundSource struct {
	id    string
	n     int
	chunk ChunkFunc
	ops   []compiledOp
}

// sourceSeed derives a source's generator seed from the spec seed and the
// source's position, so sources are independent but reproducible.
func sourceSeed(spec *Spec, idx int) uint64 {
	return spec.Seed ^ mix64(uint64(idx)+0xd1b54a32d192ed03)
}

// resolveSources binds every spec source to a generator and its share of
// the population.
func resolveSources(spec *Spec, opts RunOpts, total int) ([]boundSource, error) {
	gen, err := spec.gen()
	if err != nil {
		return nil, err
	}
	counts := sourceShares(spec, total)
	bound := make([]boundSource, len(spec.Sources))
	for i := range spec.Sources {
		src := &spec.Sources[i]
		b := &bound[i]
		b.id = src.ID
		b.n = counts[i]
		if b.ops, err = compileOps(spec, src.ID); err != nil {
			return nil, fmt.Errorf("scenario: source %q: %w", src.ID, err)
		}

		// A run-time binding overrides any declared kind.
		if fn, ok := opts.Sources[src.ID]; ok {
			b.chunk = fn
			continue
		}
		if b.n == 0 {
			// A zero share of the population: never pulled from.
			continue
		}
		switch src.Kind {
		case "", "synthetic":
			cfg, err := syntheticConfig(spec, src, gen, sourceSeed(spec, i), b.n)
			if err != nil {
				return nil, err
			}
			b.chunk = func(lo, hi int) ([]trace.Stream, error) {
				return synthetic.GenerateRange(cfg, lo, hi)
			}
		case "cptgpt":
			// RunOpts.LoadModel lets a daemon inject a caching loader so
			// the model file is read (and its inference snapshot frozen)
			// once across runs.
			load := opts.LoadModel
			if load == nil {
				load = cptgpt.LoadFile
			}
			m, err := load(src.ModelFile)
			if err != nil {
				return nil, fmt.Errorf("scenario: source %q: %w", src.ID, err)
			}
			dev := events.Phone
			if src.Device != "" {
				if dev, err = events.ParseDeviceType(src.Device); err != nil {
					return nil, fmt.Errorf("scenario: source %q: %w", src.ID, err)
				}
			}
			// Decode precision: the source's declared setting, overridden
			// run-wide by RunOpts.Precision (how a spec written for the
			// bit-exact path scales up through the f32 fast path without
			// editing the file).
			precSpec := src.Precision
			if opts.Precision != "" {
				precSpec = opts.Precision
			}
			prec, err := cptgpt.ParsePrecision(precSpec)
			if err != nil {
				return nil, fmt.Errorf("scenario: source %q: %w", src.ID, err)
			}
			// Speculative decoding: the source's declared setting, with the
			// run-wide override on top (same pattern as precision). The
			// draft is the loaded model's self-fitted n-gram — fitted once
			// on the first chunk, cached on the model for the rest.
			speculative := src.Speculative
			switch opts.Speculative {
			case "":
			case "on":
				speculative = true
			case "off":
				speculative = false
			default:
				return nil, fmt.Errorf("scenario: source %q: unknown speculative override %q (want on, off or empty)", src.ID, opts.Speculative)
			}
			draftK := src.DraftTokens
			if opts.DraftTokens > 0 {
				draftK = opts.DraftTokens
			}
			// Live decode telemetry: counters accumulate into the caller's
			// per-source DecodeStats as each chunk finishes.
			var stats *cptgpt.DecodeStats
			if opts.SourceStats != nil {
				stats = opts.SourceStats(src.ID)
			}
			var stepHist *telemetry.Histogram
			if opts.SourceStepHist != nil {
				stepHist = opts.SourceStepHist(src.ID)
			}
			genOpts := cptgpt.GenOpts{
				Device:      dev,
				Seed:        sourceSeed(spec, i),
				Temperature: src.Temperature,
				Precision:   prec,
				BatchSize:   opts.decodeBatch(),
				Speculative: speculative,
				DraftTokens: draftK,
				Stats:       stats,
				StepHist:    stepHist,
				// Spread stream starts over the horizon; ramp ops can
				// re-stage populations on top of this.
				StartWindow: spec.HorizonSec,
				Parallelism: 1, // the scenario engine parallelizes across chunks
			}
			b.chunk = func(lo, hi int) ([]trace.Stream, error) {
				return m.GenerateRange(lo, hi, genOpts)
			}
		case "custom":
			return nil, fmt.Errorf("scenario: source %q has kind custom but no RunOpts.Sources binding", src.ID)
		default:
			return nil, fmt.Errorf("scenario: source %q: unknown kind %q", src.ID, src.Kind)
		}
	}
	return bound, nil
}

// syntheticConfig builds the ground-truth generator configuration for a
// synthetic source: the device mix apportioned over the source's UE count,
// the horizon rounded up to whole hours (the engine clips at the exact
// horizon), and the source's own seed.
func syntheticConfig(spec *Spec, src *SourceSpec, gen events.Generation, seed uint64, n int) (synthetic.Config, error) {
	mix := src.DeviceMix
	if len(mix) == 0 {
		mix = defaultDeviceMix
	}
	devs := events.DeviceTypes()
	weights := make([]float64, len(devs))
	for i, dev := range devs {
		weights[i] = mix[dev.String()]
	}
	counts := apportion(weights, n)
	ues := make(map[events.DeviceType]int, len(devs))
	for i, dev := range devs {
		ues[dev] = counts[i]
	}
	cfg := synthetic.Config{
		Generation: gen,
		Seed:       seed,
		UEs:        ues,
		Hours:      int(math.Ceil(spec.HorizonSec / 3600)),
		StartHour:  src.StartHour,
	}
	if cfg.Hours < 1 {
		cfg.Hours = 1
	}
	if err := cfg.Validate(); err != nil {
		return synthetic.Config{}, fmt.Errorf("scenario: source %q: %w", src.ID, err)
	}
	return cfg, nil
}
