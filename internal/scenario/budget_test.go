package scenario

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpillBudgetExceeded pins that a run whose spill footprint crosses
// MaxSpillBytes fails with the typed error, and that the shared gauge is
// fully released afterwards (no leaked accounting).
func TestSpillBudgetExceeded(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	var shared atomic.Int64
	_, err = spec.Open(RunOpts{
		UEs: 2000, TempDir: t.TempDir(),
		Budget: Budget{MaxSpillBytes: 4 * 1024, SpillUsed: &shared},
	})
	if err == nil {
		t.Fatal("open succeeded under a 4KiB spill budget")
	}
	be, ok := AsBudgetExceeded(err)
	if !ok {
		t.Fatalf("error %v is not a BudgetExceededError", err)
	}
	if be.Kind != BudgetSpillBytes {
		t.Fatalf("kind = %q, want %q", be.Kind, BudgetSpillBytes)
	}
	if be.Limit != 4*1024 || be.Used <= be.Limit {
		t.Fatalf("limit/used = %d/%d, want used > limit = 4096", be.Limit, be.Used)
	}
	if got := shared.Load(); got != 0 {
		t.Fatalf("shared spill gauge holds %d bytes after failed open, want 0", got)
	}
}

// TestSpillAccountingLifecycle pins that the shared gauge tracks live
// spill bytes during a successful run and drains to zero on Close.
func TestSpillAccountingLifecycle(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	var shared atomic.Int64
	st, err := spec.Open(RunOpts{
		UEs: 500, TempDir: t.TempDir(),
		Budget: Budget{SpillUsed: &shared},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := shared.Load(); got <= 0 {
		t.Fatalf("shared spill gauge = %d with an open stream, want > 0", got)
	}
	n := 0
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := shared.Load(); got != 0 {
		t.Fatalf("shared spill gauge holds %d bytes after Close, want 0", got)
	}
	if n == 0 {
		t.Fatal("stream yielded no events")
	}
}

// TestPacerEventBudget pins the event-count ceiling: the pacer ends the
// stream after exactly MaxEvents releases with the typed error, and the
// end is not reported as an operator stop.
func TestPacerEventBudget(t *testing.T) {
	p := NewPacer(context.Background(), evenlySpaced(100, 1), 0)
	p.SetBudget(Budget{MaxEvents: 7})
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if n != 7 || p.Events() != 7 {
		t.Fatalf("released %d (counter %d), want 7", n, p.Events())
	}
	be, ok := AsBudgetExceeded(p.Err())
	if !ok || be.Kind != BudgetEvents {
		t.Fatalf("Err() = %v, want BudgetExceeded/events", p.Err())
	}
	if p.Stopped() {
		t.Fatal("a budget breach must not report Stopped")
	}
}

// TestPacerWallBudget pins deadline classification: with MaxWall set, a
// context-deadline expiry surfaces as a wall-clock budget breach that
// still unwraps to context.DeadlineExceeded; without MaxWall the same
// expiry stays a clean stop.
func TestPacerWallBudget(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(30*time.Millisecond))
	defer cancel()
	// Slow source: each release waits 5ms of wall, so the deadline lands
	// mid-stream.
	p := NewPacer(ctx, evenlySpaced(1000, 0.005), 1)
	p.SetBudget(Budget{MaxWall: 30 * time.Millisecond})
	for {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	be, ok := AsBudgetExceeded(p.Err())
	if !ok || be.Kind != BudgetWallClock {
		t.Fatalf("Err() = %v, want BudgetExceeded/wall_clock", p.Err())
	}
	if !errors.Is(p.Err(), context.DeadlineExceeded) {
		t.Fatalf("wall-clock breach %v must unwrap to context.DeadlineExceeded", p.Err())
	}
	if p.Stopped() {
		t.Fatal("a wall-clock breach must not report Stopped")
	}

	// Same expiry without a wall budget: clean operator-style stop.
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(20*time.Millisecond))
	defer cancel2()
	p2 := NewPacer(ctx2, evenlySpaced(1000, 0.005), 1)
	for {
		if _, ok := p2.Next(); !ok {
			break
		}
	}
	if err := p2.Err(); err != nil {
		t.Fatalf("unbudgeted deadline expiry must stay a clean stop, got %v", err)
	}
	if !p2.Stopped() {
		t.Fatal("unbudgeted deadline expiry must report Stopped")
	}
}

// laggingSource delays each Next so the pacer falls behind its schedule.
type laggingSource struct {
	sliceSource
	delay time.Duration
	slowN int // events that carry the delay; the rest are immediate
}

func (s *laggingSource) Next() (Event, bool) {
	if s.i < s.slowN {
		time.Sleep(s.delay)
	}
	return s.sliceSource.Next()
}

// TestPacerShedAfterLag pins load shedding: a source that outruns its lag
// bound flips the pacer into shed mode (counted releases, no waits), no
// events are dropped, and the stream still ends cleanly.
func TestPacerShedAfterLag(t *testing.T) {
	// 400 events at the same trace instant: the schedule is "all at t0",
	// so every wall-millisecond of source delay is pure lag.
	src := &laggingSource{delay: time.Millisecond, slowN: 40}
	for i := 0; i < 400; i++ {
		src.evs = append(src.evs, Event{Time: 0, UE: 1, Seq: uint32(i)})
	}
	p := NewPacer(context.Background(), src, 1)
	p.SetShedAfterLag(10 * time.Millisecond)
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if n != 400 {
		t.Fatalf("released %d events, want 400 (shedding must never drop events)", n)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if p.Shed() == 0 {
		t.Fatal("pacer never shed despite lag far past the bound")
	}
	if p.Shed() >= 400 {
		t.Fatalf("shed %d of 400 releases; the pre-lag prefix must be paced", p.Shed())
	}
}

// TestPacerResumeShed pins that a resumed pacer's shed counter continues
// from the journaled base instead of restarting at zero.
func TestPacerResumeShed(t *testing.T) {
	p := NewPacer(context.Background(), evenlySpaced(3, 0), 0)
	p.ResumeShed(17)
	for {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	if got := p.Shed(); got != 17 {
		t.Fatalf("Shed() = %d after resume seed with no new shedding, want 17", got)
	}
}
