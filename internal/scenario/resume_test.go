package scenario

import (
	"strings"
	"testing"

	"cptgpt/internal/trace"
)

// TestResumeAfterBitIdenticalSuffix is the crash-recovery keystone: a run
// resumed after any checkpointed merge key must emit exactly the suffix
// the uninterrupted run emits after that key, bit for bit, and report the
// pruned prefix through Skipped.
func TestResumeAfterBitIdenticalSuffix(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{UEs: 300, Parallelism: 2, BatchSize: 64}
	full := drainAll(t, spec, opts)
	if len(full) < 100 {
		t.Fatalf("scenario too small for the test: %d events", len(full))
	}

	// Resume from several cut points, including mid-run chunk boundaries
	// and the extremes.
	for _, cut := range []int{0, 1, len(full) / 3, len(full) / 2, len(full) - 2, len(full) - 1} {
		key := full[cut]
		ropts := opts
		ropts.ResumeAfter = &key
		// A different worker layout must not change the resumed suffix.
		ropts.Parallelism = 3
		ropts.BatchSize = 50
		st, err := spec.Open(ropts)
		if err != nil {
			t.Fatal(err)
		}
		var got []Event
		for {
			e, ok := st.Next()
			if !ok {
				break
			}
			got = append(got, e)
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		want := full[cut+1:]
		if len(got) != len(want) {
			t.Fatalf("cut %d: resumed %d events, want %d", cut, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: event %d diverges: got %+v want %+v", cut, i, got[i], want[i])
			}
		}
		if st.Skipped() != int64(cut+1) {
			t.Errorf("cut %d: Skipped = %d, want %d", cut, st.Skipped(), cut+1)
		}
		st.Close()
	}
}

// TestResumeAfterKeyBeforeEverything yields the whole run (nothing ≤ key).
func TestResumeAfterKeyBeforeEverything(t *testing.T) {
	spec, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{UEs: 120, Parallelism: 2, BatchSize: 64}
	full := drainAll(t, spec, opts)
	opts.ResumeAfter = &Event{Time: -1}
	got := drainAll(t, spec, opts)
	if len(got) != len(full) {
		t.Fatalf("resume before start emitted %d events, want %d", len(got), len(full))
	}
}

// TestPacerResumeAt pins the resumed pacer schedule: with ResumeAt(t0) the
// first event is released immediately and the schedule is anchored at the
// checkpointed trace offset, not the first event's own timestamp.
func TestPacerResumeAt(t *testing.T) {
	src := &sliceSource{evs: []Event{
		{Time: 100.0}, {Time: 100.05}, {Time: 100.1},
	}}
	p := NewPacer(nil, src, 1)
	p.ResumeAt(100.0)
	var rel []Event
	for {
		e, ok := p.Next()
		if !ok {
			break
		}
		rel = append(rel, e)
	}
	if len(rel) != 3 {
		t.Fatalf("released %d events, want 3", len(rel))
	}
	if p.t0 != 100.0 {
		t.Errorf("t0 = %v, want the resume anchor 100.0", p.t0)
	}

	// Without ResumeAt the anchor is the first event's timestamp.
	src2 := &sliceSource{evs: []Event{{Time: 100.05}}}
	p2 := NewPacer(nil, src2, 1)
	p2.Next()
	if p2.t0 != 100.05 {
		t.Errorf("unresumed t0 = %v, want 100.05", p2.t0)
	}
}

// TestWorkerPanicContained pins satellite 1 at the scenario layer: a
// panicking ChunkFunc fails the run with the panic message and stack in
// the error instead of crashing the process.
func TestWorkerPanicContained(t *testing.T) {
	spec := &Spec{
		Name: "panicky", Generation: "5g", HorizonSec: 10, Population: 8,
		Sources: []SourceSpec{{ID: "boom", Kind: "custom", Share: 1}},
	}
	opts := RunOpts{
		Parallelism: 2, BatchSize: 4,
		Sources: map[string]ChunkFunc{
			"boom": func(lo, hi int) ([]trace.Stream, error) {
				panic("synthetic source exploded")
			},
		},
	}
	_, err := spec.Open(opts)
	if err == nil {
		t.Fatal("panicking source did not fail the run")
	}
	if want := "panic in generation worker"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
	if !strings.Contains(err.Error(), "synthetic source exploded") {
		t.Errorf("error %q lost the panic value", err)
	}
}
