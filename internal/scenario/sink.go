package scenario

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"cptgpt/internal/events"
	"cptgpt/internal/mcn"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/tracez"
)

// Summary aggregates a drained scenario stream in O(1) memory.
type Summary struct {
	// Events is the total emitted event count; ByType breaks it down.
	Events int
	ByType [events.NumTypes]int
	// FirstTime/LastTime bound the emitted timestamps.
	FirstTime float64
	LastTime  float64
	// PeakRate is the highest event rate (events/s) over any aligned
	// 60-second window; PeakWindowStart is that window's start.
	PeakRate        float64
	PeakWindowStart float64
}

// summaryWindow is the rate-metering window width for Summary.PeakRate.
const summaryWindow = 60.0

// Drain consumes the source to exhaustion, returning its summary — the
// "count" sink. It is also the cheapest way to force a full scenario run.
func Drain(st EventSource) (Summary, error) {
	sp := tracez.Begin(tracez.StageScenarioSink, "")
	var sum Summary
	defer func() { sp.End(int64(sum.Events), "count") }()
	var winStart float64
	winCount := 0
	first := true
	flush := func() {
		if rate := float64(winCount) / summaryWindow; rate > sum.PeakRate {
			sum.PeakRate = rate
			sum.PeakWindowStart = winStart
		}
	}
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if first {
			sum.FirstTime = e.Time
			winStart = float64(int(e.Time/summaryWindow)) * summaryWindow
			first = false
		}
		for e.Time >= winStart+summaryWindow {
			flush()
			winStart += summaryWindow
			winCount = 0
		}
		winCount++
		sum.Events++
		if e.Type.Valid() {
			sum.ByType[e.Type]++
		}
		sum.LastTime = e.Time
	}
	if !first {
		flush()
	}
	return sum, st.Err()
}

// eventLine is the JSONL encoding of one scenario event.
type eventLine struct {
	Time   float64 `json:"t"`
	UEID   string  `json:"ue_id"`
	Device string  `json:"device_type"`
	Type   string  `json:"event_type"`
}

// LineWriter encodes scenario events one at a time in the jsonl or csv
// interchange format, exposing the encoder's flush boundary: after Flush,
// every event passed to Write has fully reached the underlying writer.
// WriteJSONL and WriteCSV are built on it; so is the daemon's journaled
// file sink, which must align durable checkpoints (sink byte cursor ↔
// event count) with event boundaries.
type LineWriter struct {
	ueid func(Event) string
	bw   *bufio.Writer // jsonl path
	enc  *json.Encoder
	cw   *csv.Writer // csv path (owns its own buffering)
	row  []string
	n    int
}

// NewLineWriter builds a per-event encoder for format "jsonl" or "csv",
// rendering UE identifiers through ueid. For CSV, header selects whether
// the column header is emitted first — a resumed sink already has one on
// disk; jsonl ignores it.
func NewLineWriter(w io.Writer, format string, ueid func(Event) string, header bool) (*LineWriter, error) {
	lw := &LineWriter{ueid: ueid}
	switch format {
	case "jsonl":
		lw.bw = bufio.NewWriter(w)
		lw.enc = json.NewEncoder(lw.bw)
	case "csv":
		lw.cw = csv.NewWriter(w)
		lw.row = make([]string, 4)
		if header {
			if err := lw.cw.Write([]string{"ue_id", "device_type", "timestamp", "event_type"}); err != nil {
				return nil, fmt.Errorf("scenario: writing CSV header: %w", err)
			}
		}
	default:
		return nil, fmt.Errorf("scenario: unknown line format %q (want jsonl or csv)", format)
	}
	return lw, nil
}

// Write encodes one event.
func (lw *LineWriter) Write(e Event) error {
	if lw.enc != nil {
		if err := lw.enc.Encode(eventLine{
			Time: e.Time, UEID: lw.ueid(e),
			Device: e.Device.String(), Type: e.Type.String(),
		}); err != nil {
			return fmt.Errorf("scenario: writing event %d: %w", lw.n, err)
		}
	} else {
		lw.row[0] = lw.ueid(e)
		lw.row[1] = e.Device.String()
		lw.row[2] = strconv.FormatFloat(e.Time, 'f', -1, 64)
		lw.row[3] = e.Type.String()
		if err := lw.cw.Write(lw.row); err != nil {
			return fmt.Errorf("scenario: writing CSV row %d: %w", lw.n, err)
		}
	}
	lw.n++
	return nil
}

// Flush pushes every written event through to the underlying writer.
func (lw *LineWriter) Flush() error {
	if lw.bw != nil {
		return lw.bw.Flush()
	}
	lw.cw.Flush()
	return lw.cw.Error()
}

// Count returns the number of events written.
func (lw *LineWriter) Count() int { return lw.n }

// WriteJSONL drains the stream to w as one JSON object per event (the
// event-interleaved counterpart of the per-stream trace format: scenario
// output arrives in time order across UEs, so per-UE grouping would require
// unbounded buffering). Returns the event count.
func WriteJSONL(w io.Writer, st EventSource) (int, error) {
	return writeLines(w, st, "jsonl")
}

// WriteCSV drains the stream to w as CSV rows with the trace interchange
// columns (ue_id,device_type,timestamp,event_type), one event per row in
// time order. Returns the event count.
func WriteCSV(w io.Writer, st EventSource) (int, error) {
	return writeLines(w, st, "csv")
}

func writeLines(w io.Writer, st EventSource, format string) (int, error) {
	sp := tracez.Begin(tracez.StageScenarioSink, "")
	lw, err := NewLineWriter(w, format, st.UEID, true)
	if err != nil {
		sp.End(0, format)
		return 0, err
	}
	defer func() { sp.End(int64(lw.n), format) }()
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if err := lw.Write(e); err != nil {
			return lw.n, err
		}
	}
	if err := st.Err(); err != nil {
		return lw.n, err
	}
	return lw.n, lw.Flush()
}

// mcnAdapter presents an EventSource as an mcn.ArrivalSource.
type mcnAdapter struct{ st EventSource }

func (a mcnAdapter) NextArrival() (mcn.Arrival, bool, error) {
	e, ok := a.st.Next()
	if !ok {
		return mcn.Arrival{}, false, a.st.Err()
	}
	return mcn.Arrival{Time: e.Time, UE: e.UE, Type: e.Type}, true, nil
}

// RunMCN drains the source through the simulated mobile-core control-plane
// function — the scenario engine's flagship sink. Memory stays bounded by
// the MCN's per-UE state, never by the event count.
func RunMCN(st EventSource, cfg mcn.Config) (*mcn.Report, error) {
	sp := tracez.Begin(tracez.StageScenarioSink, "")
	rep, err := mcn.RunStream(st.Generation(), mcnAdapter{st}, cfg)
	if rep != nil {
		sp.End(int64(rep.Events), "mcn")
	} else {
		sp.End(0, "mcn")
	}
	return rep, err
}

// replayAdapter presents an EventSource as a replaynet.EventSource.
type replayAdapter struct{ st EventSource }

func (a replayAdapter) NextReplayEvent() (replaynet.ReplayEvent, bool, error) {
	e, ok := a.st.Next()
	if !ok {
		return replaynet.ReplayEvent{}, false, a.st.Err()
	}
	return replaynet.ReplayEvent{Time: e.Time, UE: e.UE, Type: e.Type}, true, nil
}

// ReplayTCP drains the stream onto a replaynet server — the networked MCN
// load-test sink.
func ReplayTCP(addr string, st EventSource, opts replaynet.ReplayOpts) (replaynet.Stats, error) {
	sp := tracez.Begin(tracez.StageScenarioSink, "")
	stats, err := replaynet.ReplayStream(addr, st.Generation(), replayAdapter{st}, opts)
	sp.End(int64(stats.Events), "replay")
	return stats, err
}

// ReplayClosed drains the stream onto a replaynet server in closed loop:
// every event is an acknowledged signaling transaction, in-flight count is
// governed by a CUBIC-style window and delivery is exactly-once across
// connection failures. The congestion-controlled counterpart of ReplayTCP.
func ReplayClosed(addr string, st EventSource, opts replaynet.ClosedOpts) (replaynet.ClosedStats, error) {
	sp := tracez.Begin(tracez.StageScenarioSink, "")
	stats, err := replaynet.ReplayClosed(addr, st.Generation(), replayAdapter{st}, opts)
	sp.End(stats.Acked, "replay-closed")
	return stats, err
}

// ReplaySLOSearch drives the stream against a replaynet server with the
// closed-loop SLO-search controller, ramping the offered event rate to find
// the maximum sustained load whose p99 transaction latency meets the SLO.
func ReplaySLOSearch(addr string, st EventSource, opts replaynet.ClosedOpts, search replaynet.SearchOpts) (replaynet.SearchResult, error) {
	return replaynet.SLOSearch(addr, st.Generation(), replayAdapter{st}, opts, search)
}
