package scenario

import (
	"fmt"
	"sort"
)

// builtins is the registry of named scenario presets. Each is a plain Spec
// built on the synthetic ground-truth generator, so every preset runs out
// of the box (no trained model required); swapping a source's kind to
// "cptgpt" (or binding a custom generator) upgrades it to model-driven
// traffic without touching the operators.
var builtins = map[string]func() *Spec{
	"baseline-diurnal":      baselineDiurnal,
	"flash-crowd":           flashCrowd,
	"handover-storm":        handoverStorm,
	"paging-storm":          pagingStorm,
	"iot-burst":             iotBurst,
	"failure-recovery-wave": failureRecoveryWave,
	"mix-shift":             mixShift,
}

// Builtins lists the registered scenario names, sorted.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Builtin returns a fresh copy of a registered scenario spec.
func Builtin(name string) (*Spec, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown built-in %q (have %v)", name, Builtins())
	}
	return mk(), nil
}

// baselineDiurnal is three hours of ordinary carrier traffic: the default
// device mix under the generator's hour-of-day activity curves, no
// operators. It is the control every storm scenario is compared against.
func baselineDiurnal() *Spec {
	return &Spec{
		Name:        "baseline-diurnal",
		Description: "Ordinary carrier workload over three hours; diurnal activity drift, no operators.",
		Generation:  "4G",
		Seed:        1,
		HorizonSec:  3 * 3600,
		Population:  2000,
		Sources: []SourceSpec{
			{ID: "pop", Kind: "synthetic", Share: 1, StartHour: 8},
		},
	}
}

// flashCrowd models a stadium-style flash crowd: a base population plus a
// crowd that arrives in a 5-minute spike, its early activity compressed
// and its service requests amplified — the event-rate wall the paper's
// autoscaling use case must absorb.
func flashCrowd() *Spec {
	return &Spec{
		Name:        "flash-crowd",
		Description: "Base load plus a crowd arriving in a 5-minute spike with compressed, amplified activity.",
		Generation:  "4G",
		Seed:        2,
		HorizonSec:  3600,
		Population:  2000,
		Sources: []SourceSpec{
			{ID: "base", Kind: "synthetic", Share: 0.6, StartHour: 12},
			{ID: "crowd", Kind: "synthetic", Share: 0.4, StartHour: 18,
				DeviceMix: map[string]float64{"phone": 1}},
		},
		Ops: []OpSpec{
			{Op: "ramp", Source: "crowd", Window: [2]float64{1200, 1500}, Shape: "spike"},
			{Op: "compress", Source: "crowd", Window: [2]float64{1200, 3600}, Factor: 6},
			{Op: "amplify", Source: "crowd", Window: [2]float64{1200, 1800}, Event: "SRV_REQ", Factor: 2},
		},
	}
}

// handoverStorm models mass synchronized mobility (a train of UEs crossing
// cells): handovers amplified 8× for 15 minutes over the whole population.
func handoverStorm() *Spec {
	return &Spec{
		Name:        "handover-storm",
		Description: "Mass mobility: HO events amplified 8x in a 15-minute window.",
		Generation:  "4G",
		Seed:        3,
		HorizonSec:  3600,
		Population:  2000,
		Sources: []SourceSpec{
			{ID: "pop", Kind: "synthetic", Share: 1, StartHour: 17,
				DeviceMix: map[string]float64{"phone": 0.5, "connected_car": 0.45, "tablet": 0.05}},
		},
		Ops: []OpSpec{
			{Op: "amplify", Source: "pop", Window: [2]float64{900, 1800}, Event: "HO", Factor: 8},
		},
	}
}

// pagingStorm models a paging flood (every idle UE answering pages at
// once): service requests amplified 6× for 10 minutes.
func pagingStorm() *Spec {
	return &Spec{
		Name:        "paging-storm",
		Description: "Paging flood: SRV_REQ amplified 6x in a 10-minute window.",
		Generation:  "4G",
		Seed:        4,
		HorizonSec:  3600,
		Population:  2000,
		Sources: []SourceSpec{
			{ID: "pop", Kind: "synthetic", Share: 1, StartHour: 20},
		},
		Ops: []OpSpec{
			{Op: "amplify", Source: "pop", Window: [2]float64{600, 1200}, Event: "SRV_REQ", Factor: 6},
		},
	}
}

// iotBurst models synchronized machine-type reporting: an IoT fleet (cars
// and tablets standing in for meters/trackers) waking in a 2-minute spike
// with its reporting compressed into the burst.
func iotBurst() *Spec {
	return &Spec{
		Name:        "iot-burst",
		Description: "IoT fleet wakes in a 2-minute spike; phone background load continues.",
		Generation:  "4G",
		Seed:        5,
		HorizonSec:  3600,
		Population:  2000,
		Sources: []SourceSpec{
			{ID: "background", Kind: "synthetic", Share: 0.5, StartHour: 3,
				DeviceMix: map[string]float64{"phone": 1}},
			{ID: "iot", Kind: "synthetic", Share: 0.5, StartHour: 3,
				DeviceMix: map[string]float64{"connected_car": 0.7, "tablet": 0.3}},
		},
		Ops: []OpSpec{
			{Op: "ramp", Source: "iot", Window: [2]float64{1800, 1920}, Shape: "spike"},
			{Op: "compress", Source: "iot", Window: [2]float64{1800, 3600}, Factor: 8},
		},
	}
}

// failureRecoveryWave models an RAN outage and its aftermath: the whole
// population goes silent for five minutes, then a re-attach wave (UEs
// re-registering with amplified attaches) slams the core.
func failureRecoveryWave() *Spec {
	return &Spec{
		Name:        "failure-recovery-wave",
		Description: "5-minute outage (all events dropped) followed by a re-attach wave.",
		Generation:  "4G",
		Seed:        6,
		HorizonSec:  3600,
		Population:  2000,
		Sources: []SourceSpec{
			{ID: "pop", Kind: "synthetic", Share: 0.7, StartHour: 10},
			{ID: "recovery", Kind: "synthetic", Share: 0.3, StartHour: 10},
		},
		Ops: []OpSpec{
			{Op: "thin", Source: "pop", Window: [2]float64{1500, 1800}, Prob: 1},
			// The recovery cohort's whole lifecycle (starting with its
			// attach) is staged into a 60-second wave after the outage.
			{Op: "ramp", Source: "recovery", Window: [2]float64{1800, 1860}, Shape: "spike"},
			{Op: "amplify", Source: "recovery", Window: [2]float64{1800, 1980}, Event: "ATCH", Factor: 2},
		},
	}
}

// mixShift models a device-mix drift mid-scenario: a phone-heavy first half
// hands over to a connected-car-heavy second half (the paper's Design-3
// drift axis, staged as a scenario).
func mixShift() *Spec {
	return &Spec{
		Name:        "mix-shift",
		Description: "Phone-heavy first half, connected-car-heavy second half.",
		Generation:  "4G",
		Seed:        7,
		HorizonSec:  3600,
		Population:  2000,
		Sources: []SourceSpec{
			{ID: "early", Kind: "synthetic", Share: 0.5, StartHour: 9,
				DeviceMix: map[string]float64{"phone": 0.85, "connected_car": 0.1, "tablet": 0.05}},
			{ID: "late", Kind: "synthetic", Share: 0.5, StartHour: 9,
				DeviceMix: map[string]float64{"phone": 0.1, "connected_car": 0.8, "tablet": 0.1}},
		},
		Ops: []OpSpec{
			{Op: "clip", Source: "early", Window: [2]float64{0, 1800}},
			{Op: "ramp", Source: "late", Window: [2]float64{1800, 2400}, Shape: "front"},
			{Op: "clip", Source: "late", Window: [2]float64{1800, 3600}},
		},
	}
}
