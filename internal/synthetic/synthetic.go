// Package synthetic generates the ground-truth control-plane workload that
// stands in for the paper's proprietary carrier trace (73M events from 430K
// UEs). See DESIGN.md §2 for the substitution rationale.
//
// The generator is a behavioural simulator, not a Markov model: each UE
// draws latent per-UE factors (activity level, mobility, session-length
// scale) from device-type-specific mixtures, then walks the 4G/5G UE state
// machine emitting semantically valid events whose sojourn times are
// modulated by (a) the latent factors, (b) an hour-of-day diurnal curve and
// (c) a two-state active-bout/dormant process that induces within-stream
// autocorrelation. A single semi-Markov model cannot represent (a)–(c),
// which is exactly why the paper's SMM-1 baseline underfits while the
// clustered SMM and the transformer do not — the same ordering the paper
// reports on the real trace.
package synthetic

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// Config parameterizes a ground-truth trace generation run.
type Config struct {
	// Generation selects 4G or 5G event vocabulary and state machine.
	Generation events.Generation
	// Seed makes the run reproducible.
	Seed uint64
	// UEs gives the population per device type.
	UEs map[events.DeviceType]int
	// Hours is the horizon length; events are emitted in [0, 3600·Hours).
	Hours int
	// StartHour is the hour-of-day at t=0 (0–23), anchoring the diurnal
	// curve so hourly slices exhibit time-of-day drift.
	StartHour int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Hours <= 0 {
		return fmt.Errorf("synthetic: Hours must be positive, got %d", c.Hours)
	}
	if c.StartHour < 0 || c.StartHour > 23 {
		return fmt.Errorf("synthetic: StartHour must be in [0,23], got %d", c.StartHour)
	}
	total := 0
	for dev, n := range c.UEs {
		if !dev.Valid() {
			return fmt.Errorf("synthetic: invalid device type %v", dev)
		}
		if n < 0 {
			return fmt.Errorf("synthetic: negative UE count %d for %v", n, dev)
		}
		total += n
	}
	if total == 0 {
		return fmt.Errorf("synthetic: no UEs requested")
	}
	return nil
}

// DefaultConfig returns a small 4G configuration suitable for tests and the
// quickstart example: a few hundred UEs over a handful of hours.
func DefaultConfig() Config {
	return Config{
		Generation: events.Gen4G,
		Seed:       1,
		UEs: map[events.DeviceType]int{
			events.Phone:        120,
			events.ConnectedCar: 60,
			events.Tablet:       40,
		},
		Hours:     2,
		StartHour: 10,
	}
}

// profile holds the device-type behaviour parameters.
type profile struct {
	// connMix / idleMix are the base sojourn mixtures (seconds).
	connMix stats.Mixture
	idleMix stats.Mixture
	// hoRate is the expected handovers per connected second at mobility 1.
	hoRate float64
	// tauAfterHo is the probability a handover crosses a tracking-area
	// boundary and is followed by a TAU (4G only).
	tauAfterHo float64
	// idleTauPeriod is the mean periodic-TAU timer while idle (4G only).
	idleTauPeriod float64
	// detachProb is the probability an idle gap becomes a detach/re-attach
	// cycle instead.
	detachProb float64
	// offMean is the mean off-network duration after a detach.
	offMean float64
	// activitySigma / mobilitySigma control per-UE latent heterogeneity.
	activitySigma float64
	mobilitySigma float64
	// boutDormantFactor stretches idle gaps during dormant phases;
	// boutLen/dormantLen are the mean session counts per phase.
	boutDormantFactor float64
	boutLen           float64
	dormantLen        float64
	// diurnal is the activity multiplier per hour-of-day (larger = more
	// active = shorter idle gaps).
	diurnal [24]float64
}

func mustMixture(weights []float64, comps []stats.Sampler) stats.Mixture {
	m, err := stats.NewMixture(weights, comps)
	if err != nil {
		panic(err)
	}
	return m
}

// profiles returns the per-device behaviour table. Numbers are chosen so
// the emergent statistics track the paper's real-trace shape: SRV_REQ and
// S1_CONN_REL each ≈44–48% of events, connected cars with ~3× the HO/TAU
// share of phones, connected sojourns mostly 5–50 s, idle gaps 10–1000 s
// heavy-tailed, and tablets sparser than phones.
func profiles() map[events.DeviceType]profile {
	phoneDiurnal := diurnalCurve(0.35, 9, 21, 1.0)
	carDiurnal := diurnalCurve(0.15, 8, 18, 1.1)
	tabletDiurnal := diurnalCurve(0.25, 17, 23, 0.9)
	return map[events.DeviceType]profile{
		events.Phone: {
			connMix: mustMixture(
				[]float64{0.65, 0.30, 0.05},
				[]stats.Sampler{
					stats.LogNormal{Mu: math.Log(9), Sigma: 0.55},
					stats.LogNormal{Mu: math.Log(28), Sigma: 0.5},
					stats.LogNormal{Mu: math.Log(90), Sigma: 0.6},
				}),
			idleMix: mustMixture(
				[]float64{0.5, 0.35, 0.15},
				[]stats.Sampler{
					stats.LogNormal{Mu: math.Log(25), Sigma: 0.7},
					stats.LogNormal{Mu: math.Log(120), Sigma: 0.8},
					stats.LogNormal{Mu: math.Log(700), Sigma: 0.9},
				}),
			hoRate:        0.0022,
			tauAfterHo:    0.45,
			idleTauPeriod: 3200,
			detachProb:    0.002,
			offMean:       900,
			activitySigma: 0.75,
			mobilitySigma: 0.8,

			boutDormantFactor: 3.5,
			boutLen:           6,
			dormantLen:        2,
			diurnal:           phoneDiurnal,
		},
		events.ConnectedCar: {
			connMix: mustMixture(
				[]float64{0.55, 0.45},
				[]stats.Sampler{
					stats.LogNormal{Mu: math.Log(14), Sigma: 0.5},
					stats.LogNormal{Mu: math.Log(60), Sigma: 0.65},
				}),
			idleMix: mustMixture(
				[]float64{0.45, 0.4, 0.15},
				[]stats.Sampler{
					stats.LogNormal{Mu: math.Log(40), Sigma: 0.6},
					stats.LogNormal{Mu: math.Log(260), Sigma: 0.7},
					stats.LogNormal{Mu: math.Log(1500), Sigma: 0.8},
				}),
			hoRate:        0.0085,
			tauAfterHo:    0.55,
			idleTauPeriod: 2400,
			detachProb:    0.012,
			offMean:       2500,
			activitySigma: 0.9,
			mobilitySigma: 1.0,

			boutDormantFactor: 5.0, // driving bouts vs parked
			boutLen:           8,
			dormantLen:        3,
			diurnal:           carDiurnal,
		},
		events.Tablet: {
			connMix: mustMixture(
				[]float64{0.6, 0.4},
				[]stats.Sampler{
					stats.LogNormal{Mu: math.Log(12), Sigma: 0.6},
					stats.LogNormal{Mu: math.Log(45), Sigma: 0.7},
				}),
			idleMix: mustMixture(
				[]float64{0.4, 0.35, 0.25},
				[]stats.Sampler{
					stats.LogNormal{Mu: math.Log(35), Sigma: 0.7},
					stats.LogNormal{Mu: math.Log(200), Sigma: 0.8},
					stats.LogNormal{Mu: math.Log(1200), Sigma: 0.9},
				}),
			hoRate:        0.0019,
			tauAfterHo:    0.5,
			idleTauPeriod: 2800,
			detachProb:    0.011,
			offMean:       3200,
			activitySigma: 1.0,
			mobilitySigma: 0.7,

			boutDormantFactor: 4.0,
			boutLen:           5,
			dormantLen:        3,
			diurnal:           tabletDiurnal,
		},
	}
}

// diurnalCurve builds a 24-hour activity multiplier: a raised-cosine bump
// between peakStart and peakEnd hours on a floor of base, scaled by amp.
func diurnalCurve(base float64, peakStart, peakEnd int, amp float64) [24]float64 {
	var out [24]float64
	for h := 0; h < 24; h++ {
		v := base
		if inHourRange(h, peakStart, peakEnd) {
			span := float64((peakEnd - peakStart + 24) % 24)
			if span == 0 {
				span = 1
			}
			pos := float64((h-peakStart+24)%24) / span
			v = base + amp*(0.5-0.5*math.Cos(2*math.Pi*pos))*1.2
		}
		if v < 0.05 {
			v = 0.05
		}
		out[h] = v
	}
	return out
}

func inHourRange(h, start, end int) bool {
	if start <= end {
		return h >= start && h <= end
	}
	return h >= start || h <= end
}

// ueLatent holds a UE's per-stream latent factors.
type ueLatent struct {
	activity float64 // >1 means more sessions (shorter idle gaps)
	mobility float64 // >1 means more handovers
	connScal float64 // stretches connected sojourns
}

// TotalUEs returns the configured population size across device types —
// the exclusive upper bound of the global UE index space GenerateRange
// addresses.
func TotalUEs(cfg Config) int {
	var n int
	for _, dev := range events.DeviceTypes() {
		n += cfg.UEs[dev]
	}
	return n
}

// deviceOfIndex maps a global UE index (device-major canonical order) to
// its device type and per-device index.
func deviceOfIndex(cfg Config, idx int) (events.DeviceType, int) {
	for _, dev := range events.DeviceTypes() {
		if idx < cfg.UEs[dev] {
			return dev, idx
		}
		idx -= cfg.UEs[dev]
	}
	panic("synthetic: UE index out of range")
}

// simWorkPerUE is the rough per-UE simulation cost fed to the worker pool's
// fan-out heuristic; one UE is always worth sharding.
const simWorkPerUE = 1 << 20

// Generate produces a ground-truth dataset according to cfg. Streams are
// time-ordered and semantically valid with respect to the generation's
// hierarchical state machine.
//
// UE simulation fans out across the tensor worker pool; because every UE
// consumes only its own index-seeded RNG, the output is bit-identical to
// the serial loop at any parallelism degree.
func Generate(cfg Config) (*trace.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	streams, err := GenerateRange(cfg, 0, TotalUEs(cfg))
	if err != nil {
		return nil, err
	}
	d := &trace.Dataset{Generation: cfg.Generation}
	for i := range streams {
		if len(streams[i].Events) > 0 {
			d.Streams = append(d.Streams, streams[i])
		}
	}
	return d, nil
}

// GenerateRange simulates the UEs with global indices in [lo, hi) — the
// canonical device-major order Generate uses — and returns their streams in
// index order, including streams that emitted no events (Generate drops
// those; chunked consumers filter as they see fit). Each UE draws only from
// its own index-seeded RNG, so the concatenation of arbitrary chunk
// emissions is bit-identical to one full run: the streaming scenario engine
// leans on exactly this to synthesize million-UE populations in
// O(chunk)-memory.
func GenerateRange(cfg Config, lo, hi int) ([]trace.Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if total := TotalUEs(cfg); lo < 0 || hi < lo || hi > total {
		return nil, fmt.Errorf("synthetic: UE range [%d,%d) outside [0,%d)", lo, hi, total)
	}
	profs := profiles()
	horizon := 3600 * float64(cfg.Hours)
	streams := make([]trace.Stream, hi-lo)
	tensor.ParallelFor(hi-lo, simWorkPerUE, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			dev, i := deviceOfIndex(cfg, lo+j)
			p := profs[dev]
			// Derive a per-UE seed so UE streams are independent of
			// population sizes of other device types.
			rng := stats.NewRand(cfg.Seed ^ (uint64(dev)+1)<<32 ^ uint64(i)*0x9e3779b97f4a7c15)
			lat := ueLatent{
				activity: math.Exp(p.activitySigma * rng.NormFloat64()),
				mobility: math.Exp(p.mobilitySigma * rng.NormFloat64()),
				connScal: math.Exp(0.4 * rng.NormFloat64()),
			}
			streams[j] = simulateUE(cfg, p, lat, dev, i, horizon, rng)
		}
	})
	return streams, nil
}

// simulateUE walks one UE through the state machine over [0, horizon).
func simulateUE(cfg Config, p profile, lat ueLatent, dev events.DeviceType, idx int, horizon float64, rng *rand.Rand) trace.Stream {
	s := trace.Stream{
		UEID:   fmt.Sprintf("%s-%06d", dev, idx),
		Device: dev,
	}
	is5G := cfg.Generation == events.Gen5G
	emit := func(t float64, e events.Type) {
		s.Events = append(s.Events, trace.Event{Time: t, Type: e})
	}

	// Bout/dormant modulation: a session-count-driven phase process.
	inBout := rng.Float64() < p.boutLen/(p.boutLen+p.dormantLen)
	sessionsLeft := phaseLen(rng, p, inBout)

	diurnalAt := func(t float64) float64 {
		h := (cfg.StartHour + int(t/3600)) % 24
		return p.diurnal[h]
	}

	// UEs start detached and attach after a short initial stagger so the
	// trace does not begin with a synchronized attach storm.
	t := rng.Float64() * 120 * (1 / math.Max(lat.activity, 0.05))
	if t >= horizon {
		return s
	}
	if is5G {
		emit(t, events.Register)
	} else {
		emit(t, events.Attach)
	}

	connected := true // attach established a signaling connection
	for t < horizon {
		if connected {
			// Connected sojourn, scaled by the UE's session-length factor.
			dur := p.connMix.Sample(rng) * lat.connScal
			if dur < 0.2 {
				dur = 0.2
			}
			end := t + dur
			// Handovers within the visit: Poisson thinning over the visit.
			nHO := poisson(rng, p.hoRate*lat.mobility*dur)
			hoTimes := make([]float64, 0, nHO)
			for k := 0; k < nHO; k++ {
				hoTimes = append(hoTimes, t+rng.Float64()*dur)
			}
			sort.Float64s(hoTimes)
			for _, ht := range hoTimes {
				if ht >= horizon {
					break
				}
				emit(ht, events.Handover)
				if !is5G && rng.Float64() < p.tauAfterHo {
					tt := ht + 0.3 + rng.Float64()*1.5
					if tt < end && tt < horizon {
						emit(tt, events.TAU)
					}
				}
			}
			if end >= horizon {
				break
			}
			t = end
			if is5G {
				emit(t, events.ANRel)
			} else {
				emit(t, events.S1ConnRel)
			}
			connected = false
			sessionsLeft--
			if sessionsLeft <= 0 {
				inBout = !inBout
				sessionsLeft = phaseLen(rng, p, inBout)
			}
			continue
		}

		// Idle gap: base mixture over activity and diurnal modulation;
		// dormant phases stretch the gap.
		gap := p.idleMix.Sample(rng) / math.Max(lat.activity*diurnalAt(t), 0.02)
		if !inBout {
			gap *= p.boutDormantFactor
		}
		if gap < 0.5 {
			gap = 0.5
		}

		if rng.Float64() < p.detachProb {
			// Detach/re-attach cycle.
			dt := t + math.Min(gap, 5+rng.Float64()*20)
			if dt >= horizon {
				break
			}
			if is5G {
				emit(dt, events.Deregister)
			} else {
				emit(dt, events.Detach)
			}
			off := p.offMean * (0.3 + rng.ExpFloat64())
			rt := dt + off
			if rt >= horizon {
				break
			}
			if is5G {
				emit(rt, events.Register)
			} else {
				emit(rt, events.Attach)
			}
			t = rt
			connected = true
			continue
		}

		// Periodic TAUs while idle (4G only).
		if !is5G {
			next := t + p.idleTauPeriod*(0.8+0.4*rng.Float64())
			for next < t+gap && next < horizon {
				emit(next, events.TAU)
				next += p.idleTauPeriod * (0.8 + 0.4*rng.Float64())
			}
		}
		t += gap
		if t >= horizon {
			break
		}
		emit(t, events.ServiceRequest)
		connected = true
	}

	s.SortByTime()
	return s
}

// phaseLen draws the number of sessions in the next bout/dormant phase.
func phaseLen(rng *rand.Rand, p profile, inBout bool) int {
	mean := p.dormantLen
	if inBout {
		mean = p.boutLen
	}
	n := 1 + poisson(rng, mean-1)
	return n
}

// poisson draws a Poisson variate with the given mean (Knuth's method for
// small means, normal approximation above 30).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
