package synthetic

import (
	"math"
	"reflect"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

func small4G(t *testing.T, seed uint64) Config {
	t.Helper()
	return Config{
		Generation: events.Gen4G,
		Seed:       seed,
		UEs: map[events.DeviceType]int{
			events.Phone:        60,
			events.ConnectedCar: 40,
			events.Tablet:       30,
		},
		Hours:     1,
		StartHour: 10,
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Generation: events.Gen4G, Hours: 0, UEs: map[events.DeviceType]int{events.Phone: 1}},
		{Generation: events.Gen4G, Hours: 1, StartHour: 25, UEs: map[events.DeviceType]int{events.Phone: 1}},
		{Generation: events.Gen4G, Hours: 1, UEs: map[events.DeviceType]int{events.Phone: -1}},
		{Generation: events.Gen4G, Hours: 1, UEs: map[events.DeviceType]int{}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestSemanticallyValid is the generator's core invariant: every stream it
// emits replays with zero violations against the hierarchical state machine.
func TestSemanticallyValid(t *testing.T) {
	for _, gen := range []events.Generation{events.Gen4G, events.Gen5G} {
		cfg := small4G(t, 7)
		cfg.Generation = gen
		d, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := statemachine.New(gen)
		for i := range d.Streams {
			s := &d.Streams[i]
			r := statemachine.Replay(m, s.Types(), s.Times())
			if r.Violated() {
				t.Fatalf("%s stream %s has violations: %+v", gen, s.UEID, r.Violations[0])
			}
		}
	}
}

func TestTimestampsOrderedAndBounded(t *testing.T) {
	cfg := small4G(t, 8)
	cfg.Hours = 2
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 3600.0 * 2
	for i := range d.Streams {
		last := math.Inf(-1)
		for _, e := range d.Streams[i].Events {
			if e.Time < last {
				t.Fatalf("stream %s timestamps decrease", d.Streams[i].UEID)
			}
			if e.Time < 0 || e.Time >= horizon {
				t.Fatalf("stream %s timestamp %v outside [0, %v)", d.Streams[i].UEID, e.Time, horizon)
			}
			last = e.Time
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	d1, err := Generate(small4G(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(small4G(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumStreams() != d2.NumStreams() || d1.NumEvents() != d2.NumEvents() {
		t.Fatal("same seed must give identical datasets")
	}
	for i := range d1.Streams {
		a, b := &d1.Streams[i], &d2.Streams[i]
		for j := range a.Events {
			if a.Events[j] != b.Events[j] {
				t.Fatal("same seed must give identical events")
			}
		}
	}
	d3, err := Generate(small4G(t, 43))
	if err != nil {
		t.Fatal(err)
	}
	if d3.NumEvents() == d1.NumEvents() {
		t.Log("different seeds gave equal event counts (possible but unlikely)")
	}
}

func TestDeviceMixBehaviour(t *testing.T) {
	cfg := Config{
		Generation: events.Gen4G,
		Seed:       5,
		UEs: map[events.DeviceType]int{
			events.Phone:        200,
			events.ConnectedCar: 200,
		},
		Hours:     1,
		StartHour: 12,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hoShare := func(dev events.DeviceType) float64 {
		sub := d.FilterDevice(dev)
		var ho, total float64
		for i := range sub.Streams {
			for _, e := range sub.Streams[i].Events {
				total++
				if e.Type == events.Handover {
					ho++
				}
			}
		}
		return ho / total
	}
	phone, car := hoShare(events.Phone), hoShare(events.ConnectedCar)
	if car <= phone {
		t.Fatalf("connected cars must hand over more than phones: car %.3f vs phone %.3f", car, phone)
	}
}

func TestSRVandRELDominant(t *testing.T) {
	d, err := Generate(small4G(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	shares, vocab := d.EventBreakdown()
	var srvRel float64
	for i, e := range vocab {
		if e == events.ServiceRequest || e == events.S1ConnRel {
			srvRel += shares[i]
		}
	}
	if srvRel < 0.6 {
		t.Fatalf("SRV_REQ+S1_CONN_REL share %.2f; the real trace has ≈0.9 (Table 7)", srvRel)
	}
}

func TestDiurnalDrift(t *testing.T) {
	// Generate across the morning ramp: hour starting 05:00 should be much
	// quieter than hour starting 12:00 for phones.
	cfg := Config{
		Generation: events.Gen4G,
		Seed:       11,
		UEs:        map[events.DeviceType]int{events.Phone: 300},
		Hours:      8,
		StartHour:  5,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := d.SliceHour(0) // 05:00
	noon := d.SliceHour(7)  // 12:00
	if noon.NumEvents() <= early.NumEvents() {
		t.Fatalf("diurnal drift missing: noon %d events vs 5am %d", noon.NumEvents(), early.NumEvents())
	}
}

func TestUEHeterogeneity(t *testing.T) {
	cfg := small4G(t, 13)
	cfg.UEs = map[events.DeviceType]int{events.Phone: 300}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lengths := d.FlowLengths(nil)
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for _, l := range lengths {
		min = math.Min(min, l)
		max = math.Max(max, l)
	}
	// Latent activity mixtures should spread flow lengths widely.
	if max < 5*min || max < 20 {
		t.Fatalf("flow lengths too homogeneous: min %v max %v", min, max)
	}
}

func Test5GUsesOnly5GVocabulary(t *testing.T) {
	cfg := small4G(t, 17)
	cfg.Generation = events.Gen5G
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Streams {
		for _, e := range d.Streams[i].Events {
			if events.VocabIndex(events.Gen5G, e.Type) < 0 {
				t.Fatalf("5G trace contains %s", e.Type)
			}
		}
	}
}

// The worker-pool fan-out must not change a single bit of the output.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := small4G(t, 9)
	prev := tensor.SetParallelism(1)
	serial, err := Generate(cfg)
	tensor.SetParallelism(prev)
	if err != nil {
		t.Fatal(err)
	}
	tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)
	par, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel generation diverged from serial")
	}
}

// Chunked emission must concatenate to exactly the full run, regardless of
// chunk boundaries.
func TestGenerateRangeMatchesFull(t *testing.T) {
	cfg := small4G(t, 11)
	total := TotalUEs(cfg)
	if total != 130 {
		t.Fatalf("TotalUEs = %d, want 130", total)
	}
	full, err := GenerateRange(cfg, 0, total)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, total} {
		var got []trace.Stream
		for lo := 0; lo < total; lo += chunk {
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			part, err := GenerateRange(cfg, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, part...)
		}
		if !reflect.DeepEqual(got, full) {
			t.Fatalf("chunk size %d diverged from full run", chunk)
		}
	}
	if _, err := GenerateRange(cfg, 5, 3); err == nil {
		t.Fatal("inverted range must error")
	}
	if _, err := GenerateRange(cfg, 0, total+1); err == nil {
		t.Fatal("out-of-bounds range must error")
	}
}
