// Package smm implements the prior-art Semi-Markov-Model traffic generator
// the paper uses as its domain-knowledge baseline (§3.3): transition
// probabilities and per-transition empirical sojourn-time CDFs fit over the
// two-level hierarchical UE state machine, in two variants —
//
//   - SMM-1: a single model per device type (Config.K = 1), and
//   - SMM-K: the paper's "SMM-20k" construction, which first clusters UEs
//     by stream features (flow length, interarrival scale and variability,
//     handover share) with k-means and fits one model per cluster. K scales
//     with the trace instead of the paper's 20,216 instances.
//
// Because the SMM samples only transitions that the state machine permits,
// it produces zero semantic violations by construction — which is exactly
// how the paper reports it (Table 5 omits SMM rows).
package smm

import (
	"fmt"
	"math"
	"sync"

	"cptgpt/internal/events"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// Config parameterizes SMM fitting.
type Config struct {
	// K is the number of UE clusters; 1 yields the SMM-1 baseline.
	K int
	// Horizon is the generation window in seconds (an hour slice: 3600).
	Horizon float64
	// Seed fixes clustering and sampling randomness.
	Seed uint64
}

// DefaultConfig returns an SMM-1 configuration over a one-hour horizon.
func DefaultConfig() Config { return Config{K: 1, Horizon: 3600, Seed: 17} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("smm: K must be ≥ 1, got %d", c.K)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("smm: Horizon must be positive, got %v", c.Horizon)
	}
	return nil
}

// initChoice is one observed (first event, post-event state) bootstrap pair.
type initChoice struct {
	event events.Type
	state statemachine.State
}

// clusterModel is one fitted semi-Markov model.
type clusterModel struct {
	weight float64
	// init samples the stream's bootstrap (event, state) pair.
	init        *stats.Categorical
	initChoices []initChoice
	// trans[state] samples the next event among the valid events observed
	// in that state.
	trans map[statemachine.State]*stats.Categorical
	// transChoices[state] aligns with trans[state]'s categories.
	transChoices map[statemachine.State][]events.Type
	// transProbs[state] aligns with transChoices: the normalized transition
	// probabilities, kept alongside the sampler so the conditional proposer
	// (ProposeNext) can report them without re-deriving weights.
	transProbs map[statemachine.State][]float64
	// sojourn[state→event] is the empirical CDF of the time spent in state
	// before leaving via event (the paper's "one CDF model per transition").
	sojourn map[statemachine.StateEvent]*stats.EmpiricalSampler
	// sojournLog[state→event] holds the mean and standard deviation of
	// log1p(sojourn seconds) for the transition — the Gaussian summary a
	// speculative draft proposes interarrivals from.
	sojournLog map[statemachine.StateEvent][2]float64
}

// Model is a fitted SMM generator (one or many clusters).
type Model struct {
	Gen      events.Generation
	Cfg      Config
	clusters []clusterModel

	// proposals lazily caches the mixture conditionals ProposeNext serves
	// (derived state, rebuilt per state on first request).
	proposals struct {
		mu      sync.Mutex
		byState map[statemachine.State]*NextProposal
	}
}

// K returns the number of non-empty fitted clusters.
func (m *Model) K() int { return len(m.clusters) }

// NumCDFs returns the total number of per-transition sojourn CDFs across
// clusters (the paper quotes 283,024 for its full SMM-20k ensemble).
func (m *Model) NumCDFs() int {
	var n int
	for i := range m.clusters {
		n += len(m.clusters[i].sojourn)
	}
	return n
}

// Fit estimates an SMM (or a cluster ensemble for K > 1) from the dataset.
func Fit(d *trace.Dataset, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(d.Streams) == 0 {
		return nil, fmt.Errorf("smm: empty dataset")
	}
	m := &Model{Gen: d.Generation, Cfg: cfg}
	machine := statemachine.New(d.Generation)

	groups := [][]int{}
	if cfg.K == 1 {
		idx := make([]int, len(d.Streams))
		for i := range idx {
			idx[i] = i
		}
		groups = append(groups, idx)
	} else {
		feats := make([][]float64, len(d.Streams))
		for i := range d.Streams {
			feats[i] = streamFeatures(&d.Streams[i], d.Generation)
		}
		rng := stats.NewRand(cfg.Seed)
		km := stats.KMeans(feats, cfg.K, 50, rng)
		byCluster := make(map[int][]int)
		for i, c := range km.Assignment {
			byCluster[c] = append(byCluster[c], i)
		}
		for c := 0; c < cfg.K; c++ {
			if len(byCluster[c]) > 0 {
				groups = append(groups, byCluster[c])
			}
		}
	}

	total := float64(len(d.Streams))
	for _, g := range groups {
		cm, err := fitCluster(d, g, machine)
		if err != nil {
			return nil, err
		}
		if cm == nil {
			continue // no usable streams in this cluster
		}
		cm.weight = float64(len(g)) / total
		m.clusters = append(m.clusters, *cm)
	}
	if len(m.clusters) == 0 {
		return nil, fmt.Errorf("smm: no cluster produced a usable model (all streams too short or unbootstrappable)")
	}
	return m, nil
}

// streamFeatures extracts the clustering features the prior art uses: flow
// length, interarrival scale and variability, and handover share.
func streamFeatures(s *trace.Stream, gen events.Generation) []float64 {
	ia := s.Interarrivals()
	var body []float64
	if len(ia) > 1 {
		body = ia[1:]
	}
	mean := stats.Mean(body)
	sd := stats.StdDev(body)
	var ho float64
	if n := len(s.Events); n > 0 {
		ho = float64(s.CountType(events.Handover)) / float64(n)
	}
	return []float64{
		math.Log1p(float64(len(s.Events))),
		math.Log1p(mean),
		math.Log1p(sd),
		ho,
	}
}

// fitCluster estimates one semi-Markov model from the streams indexed by g.
// It returns nil (no error) when the cluster has no usable streams.
func fitCluster(d *trace.Dataset, g []int, machine statemachine.Machine) (*clusterModel, error) {
	type seKey = statemachine.StateEvent
	transCount := make(map[statemachine.State]map[events.Type]float64)
	sojournObs := make(map[seKey][]float64)
	initCount := make(map[initChoice]float64)

	for _, si := range g {
		s := &d.Streams[si]
		evs := s.Types()
		ts := s.Times()
		if len(evs) < 1 {
			continue
		}
		// Walk the stream the same way the replay does, recording valid
		// transitions and the sojourn preceding each.
		start := -1
		var state statemachine.State
		for i, e := range evs {
			if st, ok := machine.Bootstrap(e); ok {
				state = st
				start = i
				break
			}
		}
		if start < 0 {
			continue
		}
		initCount[initChoice{event: evs[start], state: state}]++
		prevT := ts[start]
		for i := start + 1; i < len(evs); i++ {
			next, ok := machine.Step(state, evs[i])
			if !ok {
				continue // skip violating events when fitting
			}
			if transCount[state] == nil {
				transCount[state] = make(map[events.Type]float64)
			}
			transCount[state][evs[i]]++
			key := seKey{State: state, Event: evs[i]}
			sojournObs[key] = append(sojournObs[key], ts[i]-prevT)
			prevT = ts[i]
			state = next
		}
	}
	if len(initCount) == 0 {
		return nil, nil
	}

	cm := &clusterModel{
		trans:        make(map[statemachine.State]*stats.Categorical),
		transChoices: make(map[statemachine.State][]events.Type),
		transProbs:   make(map[statemachine.State][]float64),
		sojourn:      make(map[seKey]*stats.EmpiricalSampler),
		sojournLog:   make(map[seKey][2]float64),
	}
	// Initial distribution, in deterministic order.
	vocab := events.Vocabulary(d.Generation)
	var initW []float64
	for _, e := range vocab {
		for _, st := range []statemachine.State{statemachine.Deregistered, statemachine.SrvReqS, statemachine.HoS} {
			c := initChoice{event: e, state: st}
			if w := initCount[c]; w > 0 {
				cm.initChoices = append(cm.initChoices, c)
				initW = append(initW, w)
			}
		}
	}
	cat, err := stats.NewCategorical(initW)
	if err != nil {
		return nil, fmt.Errorf("smm: initial distribution: %w", err)
	}
	cm.init = cat

	for state, counts := range transCount {
		var choices []events.Type
		var ws []float64
		var total float64
		for _, e := range vocab { // vocabulary order for determinism
			if w := counts[e]; w > 0 {
				choices = append(choices, e)
				ws = append(ws, w)
				total += w
			}
		}
		cat, err := stats.NewCategorical(ws)
		if err != nil {
			return nil, fmt.Errorf("smm: transition distribution for %s: %w", state, err)
		}
		probs := make([]float64, len(ws))
		for i, w := range ws {
			probs[i] = w / total
		}
		cm.trans[state] = cat
		cm.transChoices[state] = choices
		cm.transProbs[state] = probs
	}
	for key, obs := range sojournObs {
		cm.sojourn[key] = stats.NewEmpiricalSampler(obs)
		cm.sojournLog[key] = logMoments(obs)
	}
	return cm, nil
}

// logMoments returns the mean and standard deviation of log1p(x) over the
// observations (negatives clamped to zero, matching how sojourns are used).
func logMoments(obs []float64) [2]float64 {
	var sum, sum2 float64
	for _, x := range obs {
		l := math.Log1p(math.Max(x, 0))
		sum += l
		sum2 += l * l
	}
	n := float64(len(obs))
	mean := sum / n
	va := sum2/n - mean*mean
	if va < 0 {
		va = 0
	}
	return [2]float64{mean, math.Sqrt(va)}
}

// NextProposal is the fitted SMM's conditional next-event distribution at a
// machine state, mixture-weighted across clusters: the token-by-token face
// of a model whose sampler is otherwise generate-only. Speculative decoding
// drives it as a draft proposer — Events/Probs propose the next event type,
// and SojournLogMean/Std give per-transition Gaussian summaries of
// log1p(sojourn seconds) to propose interarrivals from.
type NextProposal struct {
	// Events are the candidate next events, in vocabulary order.
	Events []events.Type
	// Probs are the corresponding probabilities (they sum to 1).
	Probs []float64
	// SojournLogMean and SojournLogStd are, per candidate event, the mixture
	// mean and standard deviation of log1p(sojourn seconds) spent in the
	// state before leaving via that event.
	SojournLogMean, SojournLogStd []float64
}

// ProposeNext returns the mixture conditional at state st, or ok = false
// when no fitted cluster ever left st (absorbing in the training data).
// Cluster conditionals are weighted by cluster weight; sojourn moments mix
// with weights proportional to weight × per-cluster transition probability.
// Results are cached per state; the method is safe for concurrent use and
// costs a map lookup in steady state.
func (m *Model) ProposeNext(st statemachine.State) (*NextProposal, bool) {
	m.proposals.mu.Lock()
	defer m.proposals.mu.Unlock()
	if m.proposals.byState == nil {
		m.proposals.byState = make(map[statemachine.State]*NextProposal)
	}
	if p, ok := m.proposals.byState[st]; ok {
		return p, p != nil
	}
	p := m.buildProposal(st)
	m.proposals.byState[st] = p
	return p, p != nil
}

// buildProposal computes the mixture conditional at st (nil when no cluster
// has transitions there).
func (m *Model) buildProposal(st statemachine.State) *NextProposal {
	var wsum float64
	for i := range m.clusters {
		if m.clusters[i].trans[st] != nil {
			wsum += m.clusters[i].weight
		}
	}
	if wsum <= 0 {
		return nil
	}
	p := &NextProposal{}
	for _, e := range events.Vocabulary(m.Gen) { // vocabulary order
		var prob, mom0, mom1, mw float64
		for ci := range m.clusters {
			c := &m.clusters[ci]
			probs, choices := c.transProbs[st], c.transChoices[st]
			if probs == nil {
				continue
			}
			for j, ce := range choices {
				if ce != e {
					continue
				}
				pc := c.weight / wsum * probs[j]
				prob += pc
				if lm, ok := c.sojournLog[statemachine.StateEvent{State: st, Event: e}]; ok {
					mom0 += pc * lm[0]
					mom1 += pc * (lm[1]*lm[1] + lm[0]*lm[0])
					mw += pc
				}
				break
			}
		}
		if prob <= 0 {
			continue
		}
		var mean, sd float64
		if mw > 0 {
			mean = mom0 / mw
			if va := mom1/mw - mean*mean; va > 0 {
				sd = math.Sqrt(va)
			}
		}
		p.Events = append(p.Events, e)
		p.Probs = append(p.Probs, prob)
		p.SojournLogMean = append(p.SojournLogMean, mean)
		p.SojournLogStd = append(p.SojournLogStd, sd)
	}
	if len(p.Events) == 0 {
		return nil
	}
	return p
}

// GenOpts parameterizes SMM trace synthesis.
type GenOpts struct {
	// NumStreams is the UE population to synthesize.
	NumStreams int
	// Device labels the generated streams.
	Device events.DeviceType
	// Seed fixes sampling randomness.
	Seed uint64
	// Parallelism bounds cross-stream sampling concurrency; 0 means the
	// tensor-layer default (GOMAXPROCS, or tensor.SetParallelism's value).
	// Every stream draws from its own index-seeded RNG, so output is
	// identical at every setting.
	Parallelism int
	// StartWindow, when positive, offsets each stream's start uniformly in
	// [0, StartWindow) seconds (see cptgpt.GenOpts.StartWindow).
	StartWindow float64
}

// Generate synthesizes a dataset: each stream picks a cluster by weight,
// draws a bootstrap (event, state) pair, then alternates event and sojourn
// sampling until the horizon is exceeded. Only machine-valid transitions
// exist in the fitted tables, so the output has zero semantic violations by
// construction. Streams fan out across Parallelism workers; output is
// deterministic for a fixed Seed regardless of the worker count.
func (m *Model) Generate(opts GenOpts) (*trace.Dataset, error) {
	if opts.NumStreams <= 0 {
		return nil, fmt.Errorf("smm: NumStreams must be positive, got %d", opts.NumStreams)
	}
	weights := make([]float64, len(m.clusters))
	for i := range m.clusters {
		weights[i] = m.clusters[i].weight
	}
	pick, err := stats.NewCategorical(weights)
	if err != nil {
		return nil, fmt.Errorf("smm: cluster weights: %w", err)
	}

	streams := make([]trace.Stream, opts.NumStreams)
	machine := statemachine.New(m.Gen)
	workers := opts.Parallelism
	if workers <= 0 {
		workers = tensor.Parallelism()
	}
	if workers > opts.NumStreams {
		workers = opts.NumStreams
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				streams[i] = m.sampleStream(i, opts, pick, machine)
			}
		}()
	}
	for i := 0; i < opts.NumStreams; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return &trace.Dataset{Generation: m.Gen, Streams: streams}, nil
}

// GenerateRange synthesizes the streams with global indices [lo, hi) of
// the population Generate would produce for the same opts: the returned
// slice equals Generate(opts).Streams[lo:hi] bit-for-bit whenever
// opts.NumStreams ≥ hi. Every stream draws only from its own index-seeded
// RNG, so chunked emission over any partition of the index space
// reconstructs one full run — the scenario engine's streaming sources rely
// on this.
func (m *Model) GenerateRange(lo, hi int, opts GenOpts) ([]trace.Stream, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("smm: invalid stream range [%d,%d)", lo, hi)
	}
	weights := make([]float64, len(m.clusters))
	for i := range m.clusters {
		weights[i] = m.clusters[i].weight
	}
	pick, err := stats.NewCategorical(weights)
	if err != nil {
		return nil, fmt.Errorf("smm: cluster weights: %w", err)
	}
	machine := statemachine.New(m.Gen)
	streams := make([]trace.Stream, hi-lo)
	n := hi - lo
	workers := opts.Parallelism
	if workers <= 0 {
		workers = tensor.Parallelism()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for j := 0; j < n; j++ {
			streams[j] = m.sampleStream(lo+j, opts, pick, machine)
		}
		return streams, nil
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				streams[j] = m.sampleStream(lo+j, opts, pick, machine)
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return streams, nil
}

// sampleStream draws one semi-Markov stream with its own index-seeded RNG.
func (m *Model) sampleStream(i int, opts GenOpts, pick *stats.Categorical, machine statemachine.Machine) trace.Stream {
	rng := stats.NewRand(m.Cfg.Seed ^ opts.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	c := &m.clusters[pick.Sample(rng)]
	s := trace.Stream{
		UEID:   fmt.Sprintf("smm-%s-%06d", opts.Device, i),
		Device: opts.Device,
	}
	ic := c.initChoices[c.init.Sample(rng)]
	t := 0.0
	if opts.StartWindow > 0 {
		t = rng.Float64() * opts.StartWindow
	}
	s.Events = append(s.Events, trace.Event{Time: t, Type: ic.event})
	state := ic.state
	for {
		cat := c.trans[state]
		if cat == nil {
			break // absorbing in the fitted data
		}
		choices := c.transChoices[state]
		e := choices[cat.Sample(rng)]
		soj := c.sojourn[statemachine.StateEvent{State: state, Event: e}]
		var dt float64
		if soj != nil {
			dt = math.Max(soj.Sample(rng), 0)
		}
		t += dt
		if t >= m.Cfg.Horizon {
			break
		}
		s.Events = append(s.Events, trace.Event{Time: t, Type: e})
		next, ok := machine.Step(state, e)
		if !ok {
			// Unreachable: fitted tables contain only valid transitions.
			break
		}
		state = next
	}
	return s
}
