package smm

import (
	"math"
	"reflect"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/metrics"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/trace"
)

func groundTruth(t *testing.T, seed uint64, ues int) *trace.Dataset {
	t.Helper()
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G,
		Seed:       seed,
		UEs:        map[events.DeviceType]int{events.Phone: ues},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFitAndGenerateSMM1(t *testing.T) {
	d := groundTruth(t, 1, 200)
	m, err := Fit(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Fatalf("SMM-1 cluster count %d", m.K())
	}
	if m.NumCDFs() == 0 {
		t.Fatal("no sojourn CDFs fitted")
	}
	gen, err := m.Generate(GenOpts{NumStreams: 300, Device: events.Phone, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gen.NumStreams() != 300 {
		t.Fatalf("generated %d streams", gen.NumStreams())
	}

	// Core SMM property: zero violations by construction.
	agg := metrics.Replay(gen)
	if agg.ViolatingEvents != 0 {
		t.Fatalf("SMM generated %d violating events; must be 0 by construction", agg.ViolatingEvents)
	}

	// Horizon property: all events inside the fitting horizon.
	for i := range gen.Streams {
		for _, e := range gen.Streams[i].Events {
			if e.Time < 0 || e.Time >= m.Cfg.Horizon {
				t.Fatalf("event at %v outside horizon %v", e.Time, m.Cfg.Horizon)
			}
		}
	}
}

func TestClusteredSMMBeatsSingleOnFlowLength(t *testing.T) {
	train := groundTruth(t, 3, 400)
	test := groundTruth(t, 4, 400)

	cfg1 := DefaultConfig()
	m1, err := Fit(train, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfgK := DefaultConfig()
	cfgK.K = 12
	mK, err := Fit(train, cfgK)
	if err != nil {
		t.Fatal(err)
	}
	if mK.K() <= 1 {
		t.Fatalf("clustered fit produced %d clusters", mK.K())
	}

	g1, err := m1.Generate(GenOpts{NumStreams: 400, Device: events.Phone, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gK, err := mK.Generate(GenOpts{NumStreams: 400, Device: events.Phone, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	f1 := metrics.Evaluate(test, g1)
	fK := metrics.Evaluate(test, gK)
	// The paper's central SMM finding: one model cannot capture UE
	// heterogeneity; clustering recovers the flow-length distribution.
	if fK.FlowLenMaxY >= f1.FlowLenMaxY {
		t.Fatalf("clustered SMM should improve flow length: SMM-1 %.3f vs SMM-K %.3f",
			f1.FlowLenMaxY, fK.FlowLenMaxY)
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	d := groundTruth(t, 7, 100)
	m, err := Fit(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g1, err := m.Generate(GenOpts{NumStreams: 50, Device: events.Phone, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.Generate(GenOpts{NumStreams: 50, Device: events.Phone, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Streams {
		if len(g1.Streams[i].Events) != len(g2.Streams[i].Events) {
			t.Fatal("same seed must generate identical traces")
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(&trace.Dataset{Generation: events.Gen4G}, DefaultConfig()); err == nil {
		t.Fatal("empty dataset must error")
	}
	d := groundTruth(t, 8, 10)
	bad := DefaultConfig()
	bad.K = 0
	if _, err := Fit(d, bad); err == nil {
		t.Fatal("K=0 must error")
	}
	bad = DefaultConfig()
	bad.Horizon = -1
	if _, err := Fit(d, bad); err == nil {
		t.Fatal("negative horizon must error")
	}
}

func TestGenerateValidation(t *testing.T) {
	d := groundTruth(t, 9, 20)
	m, err := Fit(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Generate(GenOpts{NumStreams: 0}); err == nil {
		t.Fatal("NumStreams=0 must error")
	}
}

func TestFit5G(t *testing.T) {
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen5G,
		Seed:       10,
		UEs:        map[events.DeviceType]int{events.Phone: 100},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := m.Generate(GenOpts{NumStreams: 100, Device: events.Phone, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if agg := metrics.Replay(gen); agg.ViolatingEvents != 0 {
		t.Fatalf("5G SMM produced %d violations", agg.ViolatingEvents)
	}
}

// TestGenerateParallelismInvariant is the SMM determinism guarantee: the
// same seed yields bit-identical streams at every parallelism degree.
func TestGenerateParallelismInvariant(t *testing.T) {
	d := groundTruth(t, 12, 120)
	cfg := DefaultConfig()
	cfg.K = 4
	m, err := Fit(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := GenOpts{NumStreams: 80, Device: events.Phone, Seed: 21, StartWindow: 60, Parallelism: 1}
	want, err := m.Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		opts := base
		opts.Parallelism = p
		got, err := m.Generate(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Streams {
			w, g := want.Streams[i], got.Streams[i]
			if w.UEID != g.UEID || len(w.Events) != len(g.Events) {
				t.Fatalf("parallelism %d: stream %d differs (%d vs %d events)", p, i, len(g.Events), len(w.Events))
			}
			for j := range w.Events {
				if w.Events[j] != g.Events[j] {
					t.Fatalf("parallelism %d: stream %d event %d = %+v, want %+v", p, i, j, g.Events[j], w.Events[j])
				}
			}
		}
	}
}

// TestProposeNext pins the conditional proposer API speculative decoding
// drafts from: at every state a fitted model can leave, the proposal lists
// machine-valid events in vocabulary order with probabilities summing to 1
// and finite log-sojourn moments; states the training data never leaves
// report ok = false.
func TestProposeNext(t *testing.T) {
	d := groundTruth(t, 5, 200)
	m, err := Fit(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	machine := statemachine.New(events.Gen4G)
	found := 0
	for _, st := range machine.States() {
		p, ok := m.ProposeNext(st)
		if !ok {
			if p != nil {
				t.Fatalf("state %s: ok=false with non-nil proposal", st)
			}
			continue
		}
		found++
		if len(p.Events) == 0 || len(p.Events) != len(p.Probs) ||
			len(p.Events) != len(p.SojournLogMean) || len(p.Events) != len(p.SojournLogStd) {
			t.Fatalf("state %s: ragged proposal %+v", st, p)
		}
		var sum float64
		prevIdx := -1
		for i, e := range p.Events {
			if _, ok := machine.Step(st, e); !ok {
				t.Fatalf("state %s proposes machine-invalid event %s", st, e)
			}
			if idx := events.VocabIndex(events.Gen4G, e); idx <= prevIdx {
				t.Fatalf("state %s: events not in vocabulary order", st)
			} else {
				prevIdx = idx
			}
			if p.Probs[i] <= 0 {
				t.Fatalf("state %s event %s: non-positive probability %v", st, e, p.Probs[i])
			}
			if math.IsNaN(p.SojournLogMean[i]) || math.IsNaN(p.SojournLogStd[i]) || p.SojournLogStd[i] < 0 {
				t.Fatalf("state %s event %s: bad sojourn moments (%v, %v)", st, e, p.SojournLogMean[i], p.SojournLogStd[i])
			}
			sum += p.Probs[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("state %s: probabilities sum to %v", st, sum)
		}
		// Cached: same pointer on repeat.
		if p2, _ := m.ProposeNext(st); p2 != p {
			t.Fatalf("state %s: proposal not cached", st)
		}
	}
	if found == 0 {
		t.Fatal("no state produced a proposal")
	}
}

// TestProposeNextMatchesCounts checks the single-cluster case against direct
// transition counting on a hand-built dataset: two streams whose CONNECTED
// state leaves via SRV_REQ-path transitions with known frequencies.
func TestProposeNextMatchesCounts(t *testing.T) {
	d := groundTruth(t, 6, 300)
	m, err := Fit(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	machine := statemachine.New(events.Gen4G)

	// Recount transitions exactly as fitCluster walks streams.
	counts := make(map[statemachine.State]map[events.Type]float64)
	for i := range d.Streams {
		evs := d.Streams[i].Types()
		start := -1
		var st statemachine.State
		for j, e := range evs {
			if s, ok := machine.Bootstrap(e); ok {
				st, start = s, j
				break
			}
		}
		if start < 0 {
			continue
		}
		for j := start + 1; j < len(evs); j++ {
			next, ok := machine.Step(st, evs[j])
			if !ok {
				continue
			}
			if counts[st] == nil {
				counts[st] = make(map[events.Type]float64)
			}
			counts[st][evs[j]]++
			st = next
		}
	}
	for st, byEv := range counts {
		var total float64
		for _, c := range byEv {
			total += c
		}
		p, ok := m.ProposeNext(st)
		if !ok {
			t.Fatalf("state %s has %v observed transitions but no proposal", st, total)
		}
		for i, e := range p.Events {
			want := byEv[e] / total
			if math.Abs(p.Probs[i]-want) > 1e-9 {
				t.Fatalf("state %s event %s: prob %v, want %v", st, e, p.Probs[i], want)
			}
		}
	}
}

// Chunked emission must concatenate to exactly Generate's output.
func TestSMMGenerateRangeMatchesGenerate(t *testing.T) {
	d := groundTruth(t, 3, 120)
	m, err := Fit(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := GenOpts{NumStreams: 33, Device: events.Phone, Seed: 8, StartWindow: 60}
	full, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 5, 33} {
		var got []trace.Stream
		for lo := 0; lo < opts.NumStreams; lo += chunk {
			hi := lo + chunk
			if hi > opts.NumStreams {
				hi = opts.NumStreams
			}
			part, err := m.GenerateRange(lo, hi, opts)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, part...)
		}
		if !reflect.DeepEqual(got, full.Streams) {
			t.Fatalf("chunk size %d diverged from Generate", chunk)
		}
	}
	if _, err := m.GenerateRange(-1, 2, opts); err == nil {
		t.Fatal("negative range must error")
	}
}
