package logz

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	at := time.Date(2024, 6, 1, 12, 30, 45, 123_000_000, time.UTC)
	return func() time.Time { return at }
}

func TestLineFormat(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelDebug)
	l.now = fixedClock()
	l.Infow("run started", "run", "run-1", "events", int64(42), "rate", 1.5,
		"ok", true, "dur", 250*time.Millisecond, "msg", "two words")
	got := b.String()
	want := `2024-06-01T12:30:45.123Z INFO run started run=run-1 events=42 rate=1.5 ok=true dur=250ms msg="two words"` + "\n"
	if got != want {
		t.Fatalf("line = %q\nwant  %q", got, want)
	}
}

func TestLevels(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelWarn)
	l.Debugw("nope")
	l.Infow("nope")
	l.Warnw("w")
	l.Errorw("e")
	out := b.String()
	if strings.Contains(out, "nope") {
		t.Fatalf("below-level lines emitted:\n%s", out)
	}
	if !strings.Contains(out, "WARN w") || !strings.Contains(out, "ERROR e") {
		t.Fatalf("at-level lines missing:\n%s", out)
	}
	l.SetLevel(LevelOff)
	l.Errorw("silent")
	if strings.Contains(b.String(), "silent") {
		t.Fatal("LevelOff still emitted")
	}
	if l.Enabled(LevelError) {
		t.Fatal("Enabled(Error) true at LevelOff")
	}
}

func TestNilLoggerSilent(t *testing.T) {
	var l *Logger
	// Must not panic; must report disabled.
	l.Infow("x", "k", "v")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestOddKeyValues(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelInfo)
	l.now = fixedClock()
	l.Infow("odd", "k")
	if !strings.Contains(b.String(), "k=(missing)") {
		t.Fatalf("odd trailing key not marked: %q", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"WARN": LevelWarn, "warning": LevelWarn, "error": LevelError,
		"off": LevelOff, "none": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestConcurrentLines(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	l := New(w, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Infow("tick", "g", i)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.Contains(line, "INFO tick g=") {
			t.Fatalf("interleaved/torn line: %q", line)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
