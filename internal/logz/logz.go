// Package logz is a tiny leveled key=value logger for the serving daemon:
// one line per event, RFC3339 timestamp, upper-case level, message, then
// sorted-order-as-given key=value pairs — grep-friendly structured logging
// without a dependency. A nil *Logger is valid and silent, so library code
// can log unconditionally.
package logz

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. Off suppresses everything.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "OFF"
	}
}

// ParseLevel maps a -log-level flag value (case-insensitive) to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelInfo, fmt.Errorf("logz: unknown level %q (want debug|info|warn|error|off)", s)
	}
}

// Logger writes leveled key=value lines to one writer. Safe for concurrent
// use; each line is written with a single Write under a mutex. The level is
// atomic and may be changed at runtime.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	now   func() time.Time // test hook; nil means time.Now
}

// New returns a logger writing at-or-above lvl to w.
func New(w io.Writer, lvl Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(lvl))
	return l
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(lvl Level) {
	if l != nil {
		l.level.Store(int32(lvl))
	}
}

// Enabled reports whether lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && int32(lvl) >= l.level.Load()
}

// needsQuote reports whether a value must be quoted to stay one token.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '"', '=':
			return true
		}
	}
	return false
}

func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		if needsQuote(x) {
			return strconv.AppendQuote(b, x)
		}
		return append(b, x...)
	case error:
		return strconv.AppendQuote(b, x.Error())
	case time.Duration:
		return append(b, x.String()...)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, x)
	case nil:
		return append(b, "nil"...)
	default:
		s := fmt.Sprint(v)
		if needsQuote(s) {
			return strconv.AppendQuote(b, s)
		}
		return append(b, s...)
	}
}

// log emits one line: `<ts> <LEVEL> <msg> k=v k=v ...`. kv pairs are
// emitted in argument order; a trailing odd key gets the value "(missing)".
func (l *Logger) log(lvl Level, msg string, kv ...any) {
	if !l.Enabled(lvl) {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	b := make([]byte, 0, 128)
	b = now().UTC().AppendFormat(b, "2006-01-02T15:04:05.000Z")
	b = append(b, ' ')
	b = append(b, lvl.String()...)
	b = append(b, ' ')
	if strings.ContainsAny(msg, "\n\"") {
		b = strconv.AppendQuote(b, msg)
	} else {
		b = append(b, msg...)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ' ')
		b = append(b, fmt.Sprint(kv[i])...)
		b = append(b, '=')
		b = appendValue(b, kv[i+1])
	}
	if len(kv)%2 == 1 {
		b = append(b, ' ')
		b = append(b, fmt.Sprint(kv[len(kv)-1])...)
		b = append(b, "=(missing)"...)
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(b)
	l.mu.Unlock()
}

// Debugw logs at debug level with key=value pairs.
func (l *Logger) Debugw(msg string, kv ...any) { l.log(LevelDebug, msg, kv...) }

// Infow logs at info level with key=value pairs.
func (l *Logger) Infow(msg string, kv ...any) { l.log(LevelInfo, msg, kv...) }

// Warnw logs at warn level with key=value pairs.
func (l *Logger) Warnw(msg string, kv ...any) { l.log(LevelWarn, msg, kv...) }

// Errorw logs at error level with key=value pairs.
func (l *Logger) Errorw(msg string, kv ...any) { l.log(LevelError, msg, kv...) }
