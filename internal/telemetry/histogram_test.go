package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestBucketsScheme(t *testing.T) {
	b := LatencyBuckets
	if got, want := b.NumBuckets(), 2+16*9; got != want {
		t.Fatalf("NumBuckets = %d, want %d", got, want)
	}
	// Underflow, overflow, and interior placement.
	if got := b.Index(1e-6); got != 0 {
		t.Fatalf("Index(1e-6) = %d, want 0", got)
	}
	if got := b.Index(1e5); got != b.NumBuckets()-1 {
		t.Fatalf("Index(1e5) = %d, want %d", got, b.NumBuckets()-1)
	}
	// Every interior sample lands in a bucket whose edges bracket it.
	for _, v := range []float64{1e-5, 2e-5, 1e-3, 0.4, 1, 37.5, 9999} {
		i := b.Index(v)
		if i <= 0 || i >= b.NumBuckets()-1 {
			t.Fatalf("Index(%v) = %d, want interior", v, i)
		}
		if hi := b.UpperEdge(i); v > hi*(1+1e-12) {
			t.Fatalf("Index(%v) = %d but upper edge %v < sample", v, i, hi)
		}
		if lo := b.UpperEdge(i - 1); i > 1 && v < lo*(1-1e-12) {
			t.Fatalf("Index(%v) = %d but lower edge %v > sample", v, i, lo)
		}
	}
	// Edges strictly increase (Prometheus requires sorted le values).
	for i := 1; i < b.NumBuckets()-1; i++ {
		if b.UpperEdge(i) <= b.UpperEdge(i-1) {
			t.Fatalf("edges not increasing at %d: %v <= %v", i, b.UpperEdge(i), b.UpperEdge(i-1))
		}
	}
	if !math.IsInf(b.UpperEdge(b.NumBuckets()-1), 1) {
		t.Fatal("last edge is not +Inf")
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	samples := []float64{0.001, 0.002, 0.010, 0.100, 1.5}
	var want float64
	for _, v := range samples {
		h.Observe(v)
		want += v
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", got, len(samples))
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if got := h.Mean(); math.Abs(got-want/5) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want/5)
	}
	// The median sample is 0.010; its bucket's upper edge must bracket it.
	if q := h.Quantile(0.5); q < 0.010 || q > 0.012 {
		t.Fatalf("Quantile(0.5) = %v, want ≈0.010 bucket edge", q)
	}
	// Out-of-range samples clamp to Min / Max.
	h2 := NewHistogram(LatencyBuckets)
	h2.Observe(1e-9)
	h2.Observe(1e9)
	if q := h2.Quantile(0); q != LatencyBuckets.Min {
		t.Fatalf("underflow quantile = %v, want %v", q, LatencyBuckets.Min)
	}
	if q := h2.Quantile(1); q != LatencyBuckets.Max {
		t.Fatalf("overflow quantile = %v, want %v", q, LatencyBuckets.Max)
	}
}

// parsePromHistogram pulls the rendered bucket counts, sum and count for one
// histogram series out of a full /metrics exposition.
func parsePromHistogram(t *testing.T, text, name string) (les []string, cum []int64, sum float64, count int64) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			iLE := strings.Index(line, `le="`)
			rest := line[iLE+4:]
			iQ := strings.Index(rest, `"`)
			les = append(les, rest[:iQ])
			f := strings.Fields(line)
			v, err := strconv.ParseInt(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			cum = append(cum, v)
		case strings.HasPrefix(line, name+"_sum"):
			f := strings.Fields(line)
			sum, _ = strconv.ParseFloat(f[len(f)-1], 64)
		case strings.HasPrefix(line, name+"_count"):
			f := strings.Fields(line)
			count, _ = strconv.ParseInt(f[len(f)-1], 10, 64)
		}
	}
	return les, cum, sum, count
}

func TestHistogramPrometheusRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", LatencyBuckets, L("run", "r1"))
	for _, v := range []float64{1e-6, 0.001, 0.001, 0.25, 1e6} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	les, cum, sum, count := parsePromHistogram(t, text, "test_latency_seconds")
	if len(les) != LatencyBuckets.NumBuckets() {
		t.Fatalf("rendered %d buckets, want %d", len(les), LatencyBuckets.NumBuckets())
	}
	// Cumulative counts must be monotone non-decreasing.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %d < %d", i, cum[i], cum[i-1])
		}
	}
	// The +Inf bucket equals _count — the histogram invariant scrapers check.
	if les[len(les)-1] != "+Inf" {
		t.Fatalf("last le = %q, want +Inf", les[len(les)-1])
	}
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf bucket %d != _count %d", cum[len(cum)-1], count)
	}
	if count != 5 {
		t.Fatalf("_count = %d, want 5", count)
	}
	if want := 1e-6 + 0.001 + 0.001 + 0.25 + 1e6; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("_sum = %v, want %v", sum, want)
	}
	// Every le value (bar +Inf) must parse and strictly increase.
	var prev float64
	for i, le := range les[:len(les)-1] {
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("unparseable le %q: %v", le, err)
		}
		if i > 0 && v <= prev {
			t.Fatalf("le values not increasing: %v after %v", v, prev)
		}
		prev = v
	}
	// The labels and le are rendered together, le last.
	if !strings.Contains(text, `test_latency_seconds_bucket{run="r1",le="+Inf"}`) {
		t.Fatalf("missing composed labels+le in:\n%s", text)
	}

	// Rendering is deterministic: a second pass over unchanged state is
	// byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Fatal("two renders of identical state differ")
	}
}

func TestHistogramRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h_seconds", "h", LatencyBuckets, L("run", "r1"))
	// Re-registering the same series returns the same histogram.
	if h2 := r.Histogram("test_h_seconds", "h", LatencyBuckets, L("run", "r1")); h2 != h {
		t.Fatal("re-registration returned a different histogram")
	}
	// A kind clash (histogram name reused as a counter) panics like any
	// other registry kind conflict.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind clash did not panic")
			}
		}()
		r.Counter("test_h_seconds", "h", L("run", "r1"))
	}()
	// Snapshot exposes _count and _sum sample values.
	h.Observe(0.5)
	found := 0
	for _, s := range r.Snapshot() {
		switch s.Name {
		case "test_h_seconds_count", "test_h_seconds_sum":
			found++
		}
	}
	if found != 2 {
		t.Fatalf("snapshot missing histogram samples (found %d of 2)", found)
	}
	// Drop removes the series from the exposition.
	r.Drop("run", "r1")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "test_h_seconds") {
		t.Fatalf("dropped histogram still rendered:\n%s", b.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-6)
			}
		}(g)
	}
	// Concurrent render while writers race: the +Inf==_count invariant must
	// hold on any snapshot, not just the final one, because both come from
	// one pass over the bucket counters.
	var b strings.Builder
	_ = h.writePrometheus(&b, "test_conc", "")
	_, midCum, _, midCount := parsePromHistogram(t, b.String(), "test_conc")
	if midCum[len(midCum)-1] != midCount {
		t.Fatalf("mid-race +Inf %d != _count %d", midCum[len(midCum)-1], midCount)
	}
	wg.Wait()

	if got, want := h.Count(), int64(goroutines*per); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	var want float64
	for i := 0; i < goroutines*per; i++ {
		want += float64(i) * 1e-6
	}
	if math.Abs(h.Sum()-want) > 1e-6*want {
		t.Fatalf("Sum = %v, want ≈%v", h.Sum(), want)
	}
	les, cum, _, count := parsePromHistogram(t, func() string {
		var f strings.Builder
		_ = h.writePrometheus(&f, "test_conc", "")
		return f.String()
	}(), "test_conc")
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf %d != _count %d after concurrent writes", cum[len(cum)-1], count)
	}
	_ = les
}
