package telemetry

import (
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Buckets describes a log-spaced histogram bucket scheme: bucket 0 holds
// values below Min, then PerDecade buckets per decade up to Max, then one
// overflow bucket. This is the scheme mcn.LatencyHist introduced for O(1)
// latency distributions; it lives here so mcn, replaynet and the telemetry
// registry agree on one bucketing (and one set of Prometheus `le` edges).
type Buckets struct {
	Min       float64 // lower edge of the first log bucket
	Max       float64 // values >= Max land in the overflow bucket
	PerDecade int     // buckets per factor-of-10
}

// LatencyBuckets spans 10µs..10ks at 16 buckets/decade — the exact edges of
// mcn.LatencyHist, used for every duration-valued histogram in the repo.
var LatencyBuckets = Buckets{Min: 1e-5, Max: 1e4, PerDecade: 16}

// RateBuckets spans 0.01..10M events/s at 16 buckets/decade, for
// achieved-rate distributions (unpaced runs can emit millions of events/s).
var RateBuckets = Buckets{Min: 1e-2, Max: 1e7, PerDecade: 16}

// NumBuckets returns the total bucket count: underflow + PerDecade per
// decade in [Min, Max) + overflow.
func (b Buckets) NumBuckets() int {
	decades := int(math.Round(math.Log10(b.Max / b.Min)))
	return 2 + b.PerDecade*decades
}

// Index returns the bucket index for value v. The formula is identical to
// mcn.LatencyHist.Add so the two histograms fill the same buckets for the
// same samples.
func (b Buckets) Index(v float64) int {
	n := b.NumBuckets()
	switch {
	case v < b.Min:
		return 0
	case v >= b.Max:
		return n - 1
	default:
		idx := 1 + int(math.Floor(math.Log10(v/b.Min)*float64(b.PerDecade)))
		if idx > n-2 {
			idx = n - 2
		}
		return idx
	}
}

// UpperEdge returns the inclusive upper bound of bucket i: Min for the
// underflow bucket, +Inf for the overflow bucket, Min·10^(i/PerDecade)
// otherwise.
func (b Buckets) UpperEdge(i int) float64 {
	switch {
	case i <= 0:
		return b.Min
	case i >= b.NumBuckets()-1:
		return math.Inf(1)
	default:
		return b.Min * math.Pow(10, float64(i)/float64(b.PerDecade))
	}
}

// Histogram is a lock-free log-bucketed distribution: one atomic counter
// per bucket plus an exact atomic sum, so hot loops (pacer releases, decode
// steps, replay ACK folds) can Observe from any goroutine without locks.
// It renders as a native Prometheus histogram (cumulative `_bucket{le=...}`
// series, `_sum`, `_count`). The quantile semantics match mcn.LatencyHist:
// the upper edge of the bucket holding the requested rank, clamped to
// [Min, Max].
type Histogram struct {
	b       Buckets
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the exact sample sum
	les     []string      // pre-rendered `le` label values, one per bucket
}

// NewHistogram returns an empty histogram over scheme b. Use this for
// standalone instruments (e.g. tracez stage aggregates); use
// Registry.Histogram for series that should render on /metrics.
func NewHistogram(b Buckets) *Histogram {
	n := b.NumBuckets()
	h := &Histogram{b: b, counts: make([]atomic.Int64, n), les: make([]string, n)}
	for i := 0; i < n-1; i++ {
		h.les[i] = strconv.FormatFloat(b.UpperEdge(i), 'g', -1, 64)
	}
	h.les[n-1] = "+Inf"
	return h
}

// Observe records one sample. Lock-free: two atomic adds plus a CAS loop
// for the exact sum. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	var idx int
	switch {
	case v < h.b.Min:
		idx = 0
	case v >= h.b.Max:
		idx = len(h.counts) - 1
	default:
		idx = 1 + int(math.Floor(math.Log10(v/h.b.Min)*float64(h.b.PerDecade)))
		if idx > len(h.counts)-2 {
			idx = len(h.counts) - 2
		}
	}
	h.counts[idx].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the exact sum of recorded samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the exact mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the upper edge of the bucket containing the q-quantile,
// with mcn.LatencyHist's rank and clamp semantics (underflow reads Min,
// overflow reads Max, 0 when empty).
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n-1))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i == len(h.counts)-1 {
				return h.b.Max
			}
			return h.b.UpperEdge(i)
		}
	}
	return h.b.Max
}

// bucketSig splices an `le` label into a series' canonical label signature.
func bucketSig(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return sig[:len(sig)-1] + `,le="` + le + `"}`
}

// writePrometheus renders the histogram as cumulative `_bucket` lines plus
// `_sum` and `_count`. Only non-empty buckets would still render — every
// bucket line is emitted so the edge set is stable across scrapes, keeping
// the output byte-identical for identical state. The `+Inf` bucket and
// `_count` are computed from the same single pass over the bucket counters,
// so they are always equal even while writers are racing.
func (h *Histogram) writePrometheus(w io.Writer, name, sig string) error {
	var cum int64
	buf := make([]byte, 0, 64)
	for i := range h.counts {
		cum += h.counts[i].Load()
		buf = buf[:0]
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		buf = append(buf, bucketSig(sig, h.les[i])...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	buf = buf[:0]
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, sig...)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, h.Sum(), 'g', -1, 64)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, sig...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, cum, 10)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	return err
}

// Histogram returns the histogram for (name, labels) over scheme b,
// creating it on first use. Re-registering the same series returns the same
// *Histogram (the scheme argument is ignored on the second call).
func (r *Registry) Histogram(name, help string, b Buckets, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram(b)
		s.fn = nil
	}
	return s.hist
}
