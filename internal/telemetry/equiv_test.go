// External test package: mcn imports telemetry, so the equivalence test
// between telemetry.Histogram and mcn.LatencyHist must live outside the
// telemetry package to avoid an import cycle.
package telemetry_test

import (
	"math"
	"math/rand"
	"testing"

	"cptgpt/internal/mcn"
	"cptgpt/internal/telemetry"
)

// TestHistogramMatchesLatencyHist pins the contract behind the PR-8 rebase:
// mcn.LatencyHist and telemetry.Histogram share one bucket scheme, so their
// quantiles agree exactly and their means agree to float accumulation order.
func TestHistogramMatchesLatencyHist(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lh := mcn.NewLatencyHist()
	th := telemetry.NewHistogram(telemetry.LatencyBuckets)
	for i := 0; i < 50_000; i++ {
		// Log-uniform over the interesting range plus under/overflow tails.
		v := math.Pow(10, -6+11*rng.Float64())
		lh.Add(v)
		th.Observe(v)
	}
	if int64(lh.Count()) != th.Count() {
		t.Fatalf("Count: LatencyHist %d, Histogram %d", lh.Count(), th.Count())
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		if l, h := lh.Quantile(q), th.Quantile(q); l != h {
			t.Fatalf("Quantile(%v): LatencyHist %v, Histogram %v", q, l, h)
		}
	}
	if l, h := lh.Mean(), th.Mean(); math.Abs(l-h) > 1e-9*math.Abs(l) {
		t.Fatalf("Mean: LatencyHist %v, Histogram %v", l, h)
	}
}
