// Package telemetry is the live-observability substrate of the generation
// daemon: a small metrics registry whose hot-path instruments (Counter,
// Gauge) are single atomic words, so the scenario pipeline, the CPT-GPT
// decoder and the MCN simulator can publish progress from their inner loops
// without taking a lock, and an HTTP handler can render every live run as a
// Prometheus-style text page while those loops keep running.
//
// Concurrency contract: Counter.Add/Inc, Gauge.Set and Histogram.Observe
// are lock-free (atomic adds / stores) and safe from any number of
// goroutines; reads (Load, Snapshot, WritePrometheus) are atomic per
// instrument and never block writers. Registration
// (Counter/Gauge/Histogram/CounterFunc/GaugeFunc) and Drop take the
// registry mutex and belong on setup/teardown paths, not hot paths;
// registering the same (name, labels) twice returns the same instrument.
// Func-backed series are read at render time, so their callbacks must
// themselves be safe for concurrent use (read atomics).
//
// Determinism contract: WritePrometheus renders metrics sorted by name and
// then by label signature, so two snapshots of the same state are
// byte-identical — which keeps the daemon's /metrics endpoint diffable and
// the tests exact.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric: one atomic int64.
// The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a point-in-time metric: one atomic float64 (stored as bits).
// The zero value is ready to use and reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the gauge's current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one name=value pair attached to a metric series.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates counter, gauge and histogram metrics.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance of a metric: either an owned instrument
// (counter/gauge/histogram) or a func-backed read-through.
type series struct {
	labelSig string // rendered {k="v",...} signature, "" when unlabeled
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	fn       func() float64
}

// value reads the series' current value.
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Load())
	case s.gauge != nil:
		return s.gauge.Load()
	default:
		return s.fn()
	}
}

// metric is a named family of series sharing help text and a kind.
type metric struct {
	name   string
	help   string
	kind   kind
	series map[string]*series // by label signature
}

// Registry holds named metrics and renders them as Prometheus text.
// NewRegistry returns an empty one; methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// labelSig renders labels as a canonical {k="v",...} signature (sorted by
// key, values escaped), so the same label set always maps to one series.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register returns (creating if needed) the series for (name, labels),
// panicking on malformed names or a kind clash — both programmer errors.
func (r *Registry) register(name, help string, k kind, labels []Label) *series {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l.Key))
		}
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metrics[name]
	if m == nil {
		m = &metric{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.metrics[name] = m
	} else if m.kind != k {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, m.kind, k))
	}
	s := m.series[sig]
	if s == nil {
		s = &series{labelSig: sig}
		m.series[sig] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
// Re-registering the same series returns the same *Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
		s.fn = nil
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
		s.fn = nil
	}
	return s.gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// render time — the bridge for subsystems that already keep their own
// atomic counters (DecodeStats, mcn.LiveStats). fn must be concurrency-safe.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.counter, s.gauge = nil, nil
	s.fn = func() float64 { return float64(fn()) }
}

// GaugeFunc registers a gauge series whose value is read from fn at render
// time. fn must be concurrency-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.counter, s.gauge = nil, nil
	s.fn = fn
}

// Drop removes every series carrying label key=value (and any metric left
// empty) — how a daemon retires a finished run's series when the run record
// is evicted.
func (r *Registry) Drop(key, value string) {
	needle := key + `="` + escapeLabel(value) + `"`
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, m := range r.metrics {
		for sig := range m.series {
			if strings.Contains(sig, "{"+needle) || strings.Contains(sig, ","+needle) {
				delete(m.series, sig)
			}
		}
		if len(m.series) == 0 {
			delete(r.metrics, name)
		}
	}
}

// SampleValue is one rendered series: a metric name, its label signature
// and the value at snapshot time.
type SampleValue struct {
	Name   string
	Labels string // canonical {k="v",...} signature, "" when unlabeled
	Value  float64
}

// Snapshot returns every series' current value, sorted by (name, labels) —
// the JSON-friendly counterpart of WritePrometheus. Histogram series
// contribute their `_count` and `_sum` aggregates (the full bucket vector
// only renders on the Prometheus page).
func (r *Registry) Snapshot() []SampleValue {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []SampleValue
	for _, m := range r.metrics {
		for _, s := range m.series {
			if s.hist != nil {
				out = append(out,
					SampleValue{Name: m.name + "_count", Labels: s.labelSig, Value: float64(s.hist.Count())},
					SampleValue{Name: m.name + "_sum", Labels: s.labelSig, Value: s.hist.Sum()})
				continue
			}
			out = append(out, SampleValue{Name: m.name, Labels: s.labelSig, Value: s.value()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (# HELP / # TYPE headers, one "name{labels} value" line per
// series), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := r.metrics[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			r.mu.RUnlock()
			return err
		}
		sigs := make([]string, 0, len(m.series))
		for sig := range m.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := m.series[sig]
			var err error
			if s.hist != nil {
				if err = s.hist.writePrometheus(w, m.name, sig); err != nil {
					r.mu.RUnlock()
					return err
				}
				continue
			}
			if v := s.value(); m.kind == kindCounter && v == math.Trunc(v) {
				_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, sig, int64(v))
			} else {
				_, err = fmt.Fprintf(w, "%s%s %g\n", m.name, sig, v)
			}
			if err != nil {
				r.mu.RUnlock()
				return err
			}
		}
	}
	r.mu.RUnlock()
	return nil
}
