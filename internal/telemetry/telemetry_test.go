package telemetry

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events", L("run", "r1"))
	c.Add(41)
	c.Inc()
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Re-registering the same (name, labels) returns the same instrument.
	if c2 := r.Counter("test_events_total", "events", L("run", "r1")); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	// A different label value is a different series.
	if c3 := r.Counter("test_events_total", "events", L("run", "r2")); c3 == c {
		t.Fatal("different labels returned the same counter")
	}
	g := r.Gauge("test_lag_seconds", "lag")
	g.Set(1.5)
	if got := g.Load(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestFuncSeries(t *testing.T) {
	r := NewRegistry()
	n := int64(7)
	r.CounterFunc("test_fn_total", "fn", func() int64 { return n })
	r.GaugeFunc("test_fn_gauge", "fn", func() float64 { return 2.25 })
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	if snap[0].Name != "test_fn_gauge" || snap[0].Value != 2.25 {
		t.Fatalf("snapshot[0] = %+v", snap[0])
	}
	if snap[1].Name != "test_fn_total" || snap[1].Value != 7 {
		t.Fatalf("snapshot[1] = %+v", snap[1])
	}
}

func TestConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	g := r.Gauge("test_gauge", "t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				_ = r.Snapshot()[0].Value // readers never block writers
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

// promLine matches one sample line of the Prometheus text format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9eE.+-]+$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second metric", L("run", "r1"), L("scenario", "flash-crowd")).Add(3)
	r.Counter("b_total", "second metric", L("run", "r2"), L("scenario", "iot-burst")).Add(5)
	r.Gauge("a_gauge", "first metric").Set(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Deterministic order: a_gauge first, then b_total's two series sorted.
	want := []string{
		"# HELP a_gauge first metric",
		"# TYPE a_gauge gauge",
		"a_gauge 0.5",
		"# HELP b_total second metric",
		"# TYPE b_total counter",
		`b_total{run="r1",scenario="flash-crowd"} 3`,
		`b_total{run="r2",scenario="iot-burst"} 5`,
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i, l := range lines {
		if l != want[i] {
			t.Fatalf("line %d = %q, want %q", i, l, want[i])
		}
		if !strings.HasPrefix(l, "#") && !promLine.MatchString(l) {
			t.Fatalf("line %d %q does not match the exposition format", i, l)
		}
	}
	// Two renders of the same state are byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("repeated renders differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "esc", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped line missing; got %q", sb.String())
	}
}

func TestDrop(t *testing.T) {
	r := NewRegistry()
	r.Counter("d_total", "d", L("run", "r1")).Inc()
	r.Counter("d_total", "d", L("run", "r2")).Inc()
	r.GaugeFunc("d_gauge", "d", func() float64 { return 1 }, L("run", "r1"), L("x", "y"))
	r.Drop("run", "r1")
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Labels != `{run="r2"}` {
		t.Fatalf("after Drop, snapshot = %+v", snap)
	}
	// Dropping the last series removes the metric family entirely.
	r.Drop("run", "r2")
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("after dropping all, snapshot = %+v", snap)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad metric name", func() { r.Counter("bad name", "h") })
	mustPanic("bad label name", func() { r.Counter("ok_total", "h", L("bad key", "v")) })
	r.Counter("kind_clash", "h")
	mustPanic("kind clash", func() { r.Gauge("kind_clash", "h") })
}
