package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns both ends of an in-process TCP connection.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-ch
	if !ok {
		c.Close()
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestZeroConfigPassthrough(t *testing.T) {
	c, s := pipePair(t)
	fc := Wrap(c, Config{})
	msg := []byte("hello, wire")
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestDropLosesBytesSilently(t *testing.T) {
	c, s := pipePair(t)
	fc := Wrap(c, Config{Seed: 42, DropProb: 1})
	if n, err := fc.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("drop must report success, got n=%d err=%v", n, err)
	}
	if fc.Drops.Load() != 1 {
		t.Fatalf("drops=%d, want 1", fc.Drops.Load())
	}
	// Nothing may arrive.
	s.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	if n, err := s.Read(buf); err == nil {
		t.Fatalf("read %d dropped bytes", n)
	}
}

func TestResetSeversBothDirections(t *testing.T) {
	c, s := pipePair(t)
	fc := Wrap(c, Config{Seed: 7, ResetProb: 1})
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("reset write must error")
	}
	if _, err := fc.Write([]byte("y")); err == nil {
		t.Fatal("severed conn must stay dead")
	}
	// The peer observes EOF (or a reset) promptly.
	s.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer must see the close")
	}
}

func TestPartialWriteSendsPrefixThenSevers(t *testing.T) {
	c, s := pipePair(t)
	fc := Wrap(c, Config{Seed: 3, PartialProb: 1})
	msg := []byte("0123456789")
	n, err := fc.Write(msg)
	if err == nil {
		t.Fatal("partial write must error")
	}
	if n != len(msg)/2 {
		t.Fatalf("wrote %d, want %d", n, len(msg)/2)
	}
	got := make([]byte, n)
	s.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg[:n]) {
		t.Fatalf("prefix %q", got)
	}
}

func TestStallDelaysWrite(t *testing.T) {
	c, s := pipePair(t)
	_ = s
	fc := Wrap(c, Config{Seed: 5, StallProb: 1, StallDur: 30 * time.Millisecond})
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stall only delayed %v", d)
	}
	if fc.Stalls.Load() == 0 {
		t.Fatal("stall counter did not fire")
	}
}

// TestDeterministicSchedule pins that the same seed yields the same fault
// decisions over the same call sequence.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed uint64) []bool {
		c, _ := pipePair(t)
		fc := Wrap(c, Config{Seed: seed, DropProb: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			before := fc.Drops.Load()
			fc.Write([]byte("abcdef"))
			out = append(out, fc.Drops.Load() > before)
		}
		return out
	}
	a, b := schedule(11), schedule(11)
	other := schedule(12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at write %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-write schedule")
	}
}

func TestValidateRejectsBadProb(t *testing.T) {
	if err := (Config{DropProb: 1.5}).Validate(); err == nil {
		t.Fatal("DropProb 1.5 must be rejected")
	}
	if err := (Config{StallProb: -0.1}).Validate(); err == nil {
		t.Fatal("negative StallProb must be rejected")
	}
}
