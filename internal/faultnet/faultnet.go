// Package faultnet wraps net.Conn with deterministic, seeded fault
// injection: latency jitter, silent drops, connection resets, partial
// writes and stalls. It exists so every robustness path of the replaynet
// closed-loop driver — retransmission, reconnect-and-resume, RTO backoff,
// malformed-stream handling — is exercisable in-process by ordinary unit
// tests, with the fault schedule a pure function of the configured seed
// rather than of a flaky network.
//
// A faulty Conn is usable on either side of a connection: a driver wraps
// its dialed conns (Dialer), a server wraps its accepted conns (Listener).
// Faults fire per Write/Read call:
//
//   - Latency/Jitter sleep before the operation (one-way delay).
//   - Drop reports a successful write without sending the bytes — the
//     stream desynchronizes, exactly like a lost segment tail, and the
//     peer sees either a stall or a malformed frame.
//   - Partial sends a prefix of the buffer, then severs the connection.
//   - Reset severs the connection immediately (RST-like).
//   - Stall sleeps StallDur before proceeding (head-of-line blocking).
//
// Determinism contract: a Conn's fault schedule depends only on its seed
// and the sequence of Read/Write calls made on it. Listener and Dialer
// derive per-connection seeds from the base seed and the connection
// ordinal, so test runs replay the same faults as long as connections are
// established in the same order.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config is the fault schedule of one connection. The zero value injects
// nothing and adds no overhead beyond a method indirection.
type Config struct {
	// Seed keys the deterministic fault schedule.
	Seed uint64

	// Latency is a fixed sleep before every Write; Jitter adds a uniform
	// random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// DropProb silently discards a Write (reported as fully written).
	DropProb float64
	// ResetProb severs the connection instead of a Write.
	ResetProb float64
	// PartialProb writes a strict prefix of the buffer and then severs the
	// connection (only fires on buffers of ≥ 2 bytes).
	PartialProb float64
	// StallProb sleeps StallDur before a Write or Read proceeds.
	StallProb float64
	// StallDur is the stall duration (default 10ms when StallProb > 0).
	StallDur time.Duration
}

// active reports whether the config injects any fault at all.
func (c Config) active() bool {
	return c.Latency > 0 || c.Jitter > 0 || c.DropProb > 0 ||
		c.ResetProb > 0 || c.PartialProb > 0 || c.StallProb > 0
}

// Validate checks probability ranges.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", c.DropProb}, {"ResetProb", c.ResetProb}, {"PartialProb", c.PartialProb}, {"StallProb", c.StallProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	return nil
}

// mix64 is SplitMix64's finalizer — the repo-wide cheap seeded mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a SplitMix64 stream.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Conn injects the configured faults into an underlying net.Conn. Reads
// and writes each take a small mutex so the fault schedule is well-defined
// under the one-reader-one-writer usage pattern of the replaynet protocol;
// a severed connection reports errReset from then on.
type Conn struct {
	net.Conn
	cfg Config

	wmu  sync.Mutex
	wrng rng

	rmu  sync.Mutex
	rrng rng

	severed atomic.Bool

	// Counters let tests assert the schedule actually fired.
	Drops, Resets, Partials, Stalls atomic.Int64
}

// Wrap returns c with cfg's fault schedule applied. A zero cfg passes
// everything through untouched.
func Wrap(c net.Conn, cfg Config) *Conn {
	if cfg.StallDur <= 0 {
		cfg.StallDur = 10 * time.Millisecond
	}
	return &Conn{
		Conn: c,
		cfg:  cfg,
		wrng: rng{state: mix64(cfg.Seed ^ 0x77a5)},
		rrng: rng{state: mix64(cfg.Seed ^ 0x33c9)},
	}
}

// errReset is returned after the fault schedule severs the connection.
type resetError struct{}

func (resetError) Error() string   { return "faultnet: connection reset by fault injection" }
func (resetError) Timeout() bool   { return false }
func (resetError) Temporary() bool { return false }

// sever closes the underlying conn and fails this and all future calls.
func (f *Conn) sever() error {
	f.severed.Store(true)
	_ = f.Conn.Close()
	return resetError{}
}

// Write applies the fault schedule, then writes.
func (f *Conn) Write(b []byte) (int, error) {
	if !f.cfg.active() {
		return f.Conn.Write(b)
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if f.severed.Load() {
		return 0, resetError{}
	}
	if d := f.cfg.Latency; d > 0 || f.cfg.Jitter > 0 {
		if f.cfg.Jitter > 0 {
			d += time.Duration(f.wrng.float() * float64(f.cfg.Jitter))
		}
		time.Sleep(d)
	}
	if f.cfg.StallProb > 0 && f.wrng.float() < f.cfg.StallProb {
		f.Stalls.Add(1)
		time.Sleep(f.cfg.StallDur)
	}
	if f.cfg.ResetProb > 0 && f.wrng.float() < f.cfg.ResetProb {
		f.Resets.Add(1)
		return 0, f.sever()
	}
	if f.cfg.PartialProb > 0 && len(b) >= 2 && f.wrng.float() < f.cfg.PartialProb {
		f.Partials.Add(1)
		n, err := f.Conn.Write(b[:len(b)/2])
		serr := f.sever()
		if err == nil {
			err = serr
		}
		return n, err
	}
	if f.cfg.DropProb > 0 && f.wrng.float() < f.cfg.DropProb {
		f.Drops.Add(1)
		return len(b), nil // reported sent, never hits the wire
	}
	return f.Conn.Write(b)
}

// Read applies the read-side fault schedule (stalls), then reads.
func (f *Conn) Read(b []byte) (int, error) {
	if f.cfg.StallProb <= 0 {
		return f.Conn.Read(b)
	}
	f.rmu.Lock()
	stall := f.severed.Load() == false && f.rrng.float() < f.cfg.StallProb
	f.rmu.Unlock()
	if stall {
		f.Stalls.Add(1)
		time.Sleep(f.cfg.StallDur)
	}
	return f.Conn.Read(b)
}

// Listener wraps accepted connections with per-connection fault schedules
// derived from cfg.Seed and the accept ordinal.
type Listener struct {
	net.Listener
	cfg Config
	n   atomic.Uint64

	mu    sync.Mutex
	conns []*Conn
}

// WrapListener returns ln with every accepted conn wrapped in cfg's fault
// schedule (connection i uses seed mix64(Seed + i)).
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cfg := l.cfg
	cfg.Seed = mix64(l.cfg.Seed + l.n.Add(1))
	fc := Wrap(c, cfg)
	l.mu.Lock()
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// Conns snapshots the accepted connections (for test assertions on fault
// counters).
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// Dialer returns a dial function that wraps each dialed TCP connection in
// cfg's fault schedule; dial i uses seed mix64(Seed ^ (i<<1 | 1)), so the
// client-side schedule is independent of the server side's at equal seeds.
func Dialer(cfg Config) func(addr string) (net.Conn, error) {
	var n atomic.Uint64
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		dcfg := cfg
		dcfg.Seed = mix64(cfg.Seed ^ (n.Add(1)<<1 | 1))
		return Wrap(c, dcfg), nil
	}
}
