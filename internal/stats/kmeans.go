package stats

import (
	"math"
	"math/rand/v2"
)

// KMeansResult holds the output of Lloyd's algorithm: the final centroids
// and the assignment of each input point to a centroid index.
type KMeansResult struct {
	Centroids  [][]float64
	Assignment []int
	Iterations int
}

// KMeans clusters points (each a feature vector of identical dimension) into
// k clusters with Lloyd's algorithm and k-means++ seeding. It is used by the
// clustered SMM baseline to group UEs with similar stream features, mirroring
// the prior-art's per-cluster model instantiation. Features are standardized
// internally (zero mean, unit variance per dimension) so heterogeneous
// feature scales do not dominate.
//
// k is clamped to [1, len(points)]; maxIter bounds Lloyd iterations.
func KMeans(points [][]float64, k, maxIter int, rng *rand.Rand) KMeansResult {
	n := len(points)
	if n == 0 {
		return KMeansResult{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dim := len(points[0])

	// Standardize a copy of the points.
	std := make([][]float64, n)
	mu := make([]float64, dim)
	sd := make([]float64, dim)
	for d := 0; d < dim; d++ {
		var s float64
		for _, p := range points {
			s += p[d]
		}
		mu[d] = s / float64(n)
		var v float64
		for _, p := range points {
			diff := p[d] - mu[d]
			v += diff * diff
		}
		sd[d] = math.Sqrt(v / float64(n))
		if sd[d] < 1e-12 {
			sd[d] = 1
		}
	}
	for i, p := range points {
		row := make([]float64, dim)
		for d := 0; d < dim; d++ {
			row[d] = (p[d] - mu[d]) / sd[d]
		}
		std[i] = row
	}

	centroids := kmeansPlusPlus(std, k, rng)
	assign := make([]int, n)
	var it int
	for it = 0; it < maxIter; it++ {
		changed := false
		for i, p := range std {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range std {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = append([]float64(nil), std[rng.IntN(n)]...)
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}

	// De-standardize centroids for the caller.
	out := make([][]float64, k)
	for c := range centroids {
		row := make([]float64, dim)
		for d := 0; d < dim; d++ {
			row[d] = centroids[c][d]*sd[d] + mu[d]
		}
		out[c] = row
	}
	return KMeansResult{Centroids: out, Assignment: assign, Iterations: it}
}

func kmeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), points[rng.IntN(n)]...))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if sd := sqDist(p, c); sd < d {
					d = sd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			centroids = append(centroids, append([]float64(nil), points[rng.IntN(n)]...))
			continue
		}
		u := rng.Float64() * total
		idx := n - 1
		for i, d := range dists {
			u -= d
			if u < 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
