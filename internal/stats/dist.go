// Package stats provides the statistical substrate shared by the workload
// generator, the baselines and the fidelity metrics: seedable samplers for
// the heavy-tailed distributions that describe control-plane interarrival
// and sojourn times, empirical CDFs with the max-y-distance (two-sample
// Kolmogorov–Smirnov statistic) used throughout the paper's evaluation,
// histograms, and a small k-means used by the clustered SMM baseline.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Sampler draws float64 variates from a distribution.
type Sampler interface {
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution mean (may be +Inf for very heavy tails).
	Mean() float64
}

// Exponential is the exponential distribution with the given rate λ > 0.
type Exponential struct {
	Rate float64
}

// Sample draws an Exp(λ) variate.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// Mean returns 1/λ.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma²)).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// FitLogNormal estimates a log-normal by moment matching on log-values.
// It requires all samples to be positive; non-positive samples are clamped
// to the smallest positive sample (or 1e-9 when none exists).
func FitLogNormal(xs []float64) LogNormal {
	if len(xs) == 0 {
		return LogNormal{Mu: 0, Sigma: 1}
	}
	minPos := math.Inf(1)
	for _, x := range xs {
		if x > 0 && x < minPos {
			minPos = x
		}
	}
	if math.IsInf(minPos, 1) {
		minPos = 1e-9
	}
	var sum, sum2 float64
	for _, x := range xs {
		if x <= 0 {
			x = minPos
		}
		l := math.Log(x)
		sum += l
		sum2 += l * l
	}
	n := float64(len(xs))
	mu := sum / n
	variance := sum2/n - mu*mu
	if variance < 1e-12 {
		variance = 1e-12
	}
	return LogNormal{Mu: mu, Sigma: math.Sqrt(variance)}
}

// Weibull is the Weibull distribution with shape K and scale Lambda.
type Weibull struct {
	K      float64
	Lambda float64
}

// Sample draws a Weibull variate by inverse-transform sampling.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean returns λ·Γ(1+1/k).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// Pareto is the (type I) Pareto distribution with minimum Xm and shape Alpha.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws a Pareto variate by inverse-transform sampling.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns α·xm/(α-1) for α > 1 and +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Mixture is a finite mixture of component samplers with the given weights.
// Weights need not be normalized; they must be non-negative with a positive
// sum.
type Mixture struct {
	Weights    []float64
	Components []Sampler
}

// NewMixture validates and constructs a mixture.
func NewMixture(weights []float64, components []Sampler) (Mixture, error) {
	if len(weights) != len(components) || len(weights) == 0 {
		return Mixture{}, fmt.Errorf("stats: mixture needs equal, non-zero counts of weights and components (got %d, %d)", len(weights), len(components))
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return Mixture{}, fmt.Errorf("stats: negative or NaN mixture weight %v", w)
		}
		sum += w
	}
	if sum <= 0 {
		return Mixture{}, fmt.Errorf("stats: mixture weights sum to %v, want > 0", sum)
	}
	return Mixture{Weights: weights, Components: components}, nil
}

// Sample picks a component by weight and samples it.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	return m.Components[m.pick(rng)].Sample(rng)
}

func (m Mixture) pick(rng *rand.Rand) int {
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range m.Weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(m.Weights) - 1
}

// Mean returns the weighted mean of the components.
func (m Mixture) Mean() float64 {
	var total, acc float64
	for i, w := range m.Weights {
		total += w
		acc += w * m.Components[i].Mean()
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// Categorical draws indices 0..len(weights)-1 with probability proportional
// to the weights.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical sampler. Weights must be non-negative
// with a positive sum.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: negative or NaN categorical weight %v at %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: categorical weights sum to %v, want > 0", total)
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Categorical{cum: cum}, nil
}

// Sample draws one index.
func (c *Categorical) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.cum) }

// NewRand returns a deterministic *rand.Rand seeded from two words, the
// project-wide convention for reproducible experiments.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
