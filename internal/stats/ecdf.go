package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample. The
// zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input slice is copied and sorted; an
// empty input yields an ECDF whose Eval is identically 0.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns the fraction of samples ≤ x.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th sample quantile for q in [0, 1], using the
// nearest-rank definition. It returns NaN for an empty sample.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Values returns the sorted sample. The returned slice is owned by the ECDF
// and must not be modified.
func (e *ECDF) Values() []float64 { return e.sorted }

// MaxYDistance computes the maximum vertical distance between the ECDFs of
// two samples — the two-sample Kolmogorov–Smirnov statistic — which the
// paper reports (as a percentage) for every distribution-fidelity metric.
// It returns a value in [0, 1]; if either sample is empty it returns 1
// (maximal discrepancy), so a generator that produces no samples for a
// metric is penalized rather than silently scored perfect.
func MaxYDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := make([]float64, len(a))
	bs := make([]float64, len(b))
	copy(as, a)
	copy(bs, b)
	sort.Float64s(as)
	sort.Float64s(bs)

	var (
		i, j int
		d    float64
	)
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// Histogram buckets a sample into equal-width bins over [lo, hi]. Samples
// outside the range are clamped into the first or last bin. It returns the
// bin counts and the bin edges (len(edges) == bins+1).
func Histogram(xs []float64, lo, hi float64, bins int) (counts []int, edges []float64) {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + w*float64(i)
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when there
// are fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// EmpiricalSampler resamples from an observed sample with linear
// interpolation between adjacent order statistics. This is the "one CDF
// model per transition" device the SMM baseline uses for sojourn times,
// which the SMM authors adopted after finding parametric families
// (Poisson/Pareto/Weibull) inadequate for control-plane traffic.
type EmpiricalSampler struct {
	sorted []float64
}

// NewEmpiricalSampler builds a sampler from xs; it copies and sorts the
// input. An empty sample yields a sampler that always returns 0.
func NewEmpiricalSampler(xs []float64) *EmpiricalSampler {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &EmpiricalSampler{sorted: s}
}

// Sample draws by inverse-transform over the interpolated empirical CDF.
func (e *EmpiricalSampler) Sample(rng interface{ Float64() float64 }) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return e.sorted[0]
	}
	u := rng.Float64() * float64(n-1)
	i := int(u)
	if i >= n-1 {
		i = n - 2
	}
	frac := u - float64(i)
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// N returns the underlying sample size.
func (e *EmpiricalSampler) N() int { return len(e.sorted) }
