package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistributionMeans(t *testing.T) {
	rng := NewRand(1)
	const n = 200000
	for _, tc := range []struct {
		name string
		s    Sampler
		tol  float64
	}{
		{"exp", Exponential{Rate: 2}, 0.02},
		{"lognormal", LogNormal{Mu: 0, Sigma: 0.5}, 0.02},
		{"weibull", Weibull{K: 1.5, Lambda: 2}, 0.03},
		{"pareto", Pareto{Xm: 1, Alpha: 3}, 0.05},
		{"uniform", Uniform{Lo: 2, Hi: 10}, 0.05},
	} {
		var sum float64
		for i := 0; i < n; i++ {
			sum += tc.s.Sample(rng)
		}
		got := sum / n
		want := tc.s.Mean()
		if math.Abs(got-want)/want > tc.tol {
			t.Errorf("%s: empirical mean %.4f vs analytic %.4f", tc.name, got, want)
		}
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("Pareto with alpha<=1 must have infinite mean")
	}
}

func TestFitLogNormal(t *testing.T) {
	rng := NewRand(2)
	src := LogNormal{Mu: 1.2, Sigma: 0.4}
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = src.Sample(rng)
	}
	fit := FitLogNormal(xs)
	if math.Abs(fit.Mu-src.Mu) > 0.02 || math.Abs(fit.Sigma-src.Sigma) > 0.02 {
		t.Fatalf("fit (%v, %v) vs source (%v, %v)", fit.Mu, fit.Sigma, src.Mu, src.Sigma)
	}
}

func TestFitLogNormalDegenerate(t *testing.T) {
	fit := FitLogNormal(nil)
	if fit.Sigma <= 0 {
		t.Fatal("empty fit must stay usable")
	}
	fit = FitLogNormal([]float64{0, -1, 2})
	if math.IsNaN(fit.Mu) || math.IsNaN(fit.Sigma) {
		t.Fatal("non-positive samples must not produce NaN")
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Fatal("empty mixture must error")
	}
	if _, err := NewMixture([]float64{1}, []Sampler{Exponential{1}, Exponential{2}}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
	if _, err := NewMixture([]float64{-1, 2}, []Sampler{Exponential{1}, Exponential{2}}); err == nil {
		t.Fatal("negative weight must error")
	}
	m, err := NewMixture([]float64{1, 3}, []Sampler{Uniform{0, 1}, Uniform{10, 11}})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25*0.5 + 0.75*10.5
	if math.Abs(m.Mean()-want) > 1e-9 {
		t.Fatalf("mixture mean %v, want %v", m.Mean(), want)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c, err := NewCategorical([]float64{1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(3)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(rng)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestCategoricalValidation(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Fatal("empty weights must error")
	}
	if _, err := NewCategorical([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights must error")
	}
	if _, err := NewCategorical([]float64{1, -1}); err == nil {
		t.Fatal("negative weight must error")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	for _, tc := range []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	} {
		if got := e.Eval(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", q)
	}
	if !math.IsNaN(NewECDF(nil).Quantile(0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestMaxYDistanceIdentical(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	if d := MaxYDistance(xs, xs); d != 0 {
		t.Fatalf("identical samples: distance %v, want 0", d)
	}
}

func TestMaxYDistanceDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if d := MaxYDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint samples: distance %v, want 1", d)
	}
}

func TestMaxYDistanceEmptyPenalized(t *testing.T) {
	if d := MaxYDistance(nil, []float64{1}); d != 1 {
		t.Fatalf("empty sample must score 1, got %v", d)
	}
}

func TestMaxYDistanceKnownValue(t *testing.T) {
	// a = {1,2,3,4}, b = {3,4,5,6}: at x=2 F_a=0.5, F_b=0 → D = 0.5.
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	if d := MaxYDistance(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("distance %v, want 0.5", d)
	}
}

// Property: the KS statistic is symmetric and within [0, 1].
func TestMaxYDistanceProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		d1 := MaxYDistance(a, b)
		d2 := MaxYDistance(b, a)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0.5, 1.5, 2.5, -10, 99}, 0, 3, 3)
	if len(counts) != 3 || len(edges) != 4 {
		t.Fatalf("shape %d/%d", len(counts), len(edges))
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("counts %v (out-of-range values clamp)", counts)
	}
}

func TestEmpiricalSampler(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5}
	es := NewEmpiricalSampler(src)
	rng := NewRand(4)
	var got []float64
	for i := 0; i < 10000; i++ {
		v := es.Sample(rng)
		if v < 1 || v > 5 {
			t.Fatalf("sample %v outside source range", v)
		}
		got = append(got, v)
	}
	sort.Float64s(got)
	med := got[len(got)/2]
	if math.Abs(med-3) > 0.15 {
		t.Fatalf("median %v, want ≈3", med)
	}
	if NewEmpiricalSampler(nil).Sample(rng) != 0 {
		t.Fatal("empty sampler must return 0")
	}
	if NewEmpiricalSampler([]float64{7}).Sample(rng) != 7 {
		t.Fatal("singleton sampler must return its value")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("stddev %v", s)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := NewRand(5)
	var points [][]float64
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1})
	}
	res := KMeans(points, 2, 50, rng)
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids %d", len(res.Centroids))
	}
	// All points in each half share an assignment.
	for i := 1; i < 50; i++ {
		if res.Assignment[i] != res.Assignment[0] {
			t.Fatal("first cluster split")
		}
	}
	for i := 51; i < 100; i++ {
		if res.Assignment[i] != res.Assignment[50] {
			t.Fatal("second cluster split")
		}
	}
	if res.Assignment[0] == res.Assignment[50] {
		t.Fatal("clusters merged")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := NewRand(6)
	if res := KMeans(nil, 3, 10, rng); res.Assignment != nil {
		t.Fatal("empty input")
	}
	pts := [][]float64{{1, 2}, {3, 4}}
	res := KMeans(pts, 10, 10, rng) // k > n clamps
	if len(res.Centroids) != 2 {
		t.Fatalf("k should clamp to n, got %d", len(res.Centroids))
	}
	res = KMeans(pts, 0, 10, rng) // k < 1 clamps
	if len(res.Centroids) != 1 {
		t.Fatalf("k should clamp to 1, got %d", len(res.Centroids))
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same sequence")
		}
	}
}
