// Package events defines the control-plane event and device-type
// vocabularies used throughout the generator (Table 1 of the paper).
//
// A control-plane traffic trace is a set of per-UE streams; each sample in a
// stream carries an event type from this vocabulary plus a timestamp. The
// package deliberately contains no behaviour beyond naming, parsing and
// enumeration so that every other package (state machines, tokenizers,
// baselines, metrics) shares one canonical encoding.
package events

import (
	"fmt"
	"strings"
)

// Generation selects the cellular technology generation whose event
// vocabulary and state machine apply to a trace.
type Generation int

const (
	// Gen4G is LTE / EPS (events ATCH, DTCH, SRV_REQ, S1_CONN_REL, HO, TAU).
	Gen4G Generation = iota
	// Gen5G is NR (events REGISTER, DEREGISTER, SRV_REQ, AN_REL, HO; no TAU).
	Gen5G
)

// String returns the conventional short name of the generation.
func (g Generation) String() string {
	switch g {
	case Gen4G:
		return "4G"
	case Gen5G:
		return "5G"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// ParseGeneration converts a string such as "4G" or "5g" to a Generation.
func ParseGeneration(s string) (Generation, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "4G", "LTE", "EPS":
		return Gen4G, nil
	case "5G", "NR":
		return Gen5G, nil
	default:
		return 0, fmt.Errorf("events: unknown generation %q", s)
	}
}

// Type identifies a control-plane event originated by a UE toward the mobile
// core network. The 4G and 5G vocabularies are merged into one enum; use
// Vocabulary to obtain the subset valid for a generation.
type Type int

// 4G event types (Table 1). SRV_REQ and HO are shared with 5G.
const (
	// Attach registers the UE with the MCN (4G ATCH).
	Attach Type = iota
	// Detach de-registers the UE from the MCN (4G DTCH).
	Detach
	// ServiceRequest creates a signaling connection so the UE can send and
	// receive data- and control-plane messages (4G/5G SRV_REQ).
	ServiceRequest
	// S1ConnRel releases the signaling connection and associated resources
	// in both planes (4G S1_CONN_REL).
	S1ConnRel
	// Handover switches the UE from its serving cell to another (4G/5G HO).
	Handover
	// TAU updates the UE's tracking area (4G only).
	TAU

	// Register registers the UE with the MCN (5G REGISTER).
	Register
	// Deregister de-registers the UE from the MCN (5G DEREGISTER).
	Deregister
	// ANRel releases the signaling connection (5G AN_REL).
	ANRel

	numTypes // sentinel: count of event types
)

// NumTypes is the total number of event types across both generations.
const NumTypes = int(numTypes)

var typeNames = [NumTypes]string{
	Attach:         "ATCH",
	Detach:         "DTCH",
	ServiceRequest: "SRV_REQ",
	S1ConnRel:      "S1_CONN_REL",
	Handover:       "HO",
	TAU:            "TAU",
	Register:       "REGISTER",
	Deregister:     "DEREGISTER",
	ANRel:          "AN_REL",
}

// String returns the 3GPP-style wire name of the event type (e.g. "SRV_REQ").
func (t Type) String() string {
	if t < 0 || int(t) >= NumTypes {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// Valid reports whether t is a defined event type.
func (t Type) Valid() bool { return t >= 0 && int(t) < NumTypes }

// ParseType converts a wire name such as "SRV_REQ" back to a Type.
func ParseType(s string) (Type, error) {
	name := strings.ToUpper(strings.TrimSpace(s))
	for i, n := range typeNames {
		if n == name {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("events: unknown event type %q", s)
}

// Vocabulary returns the ordered event types valid for a generation. The
// order is stable and is the canonical index order used by tokenizers.
func Vocabulary(g Generation) []Type {
	switch g {
	case Gen5G:
		return []Type{Register, Deregister, ServiceRequest, ANRel, Handover}
	default:
		return []Type{Attach, Detach, ServiceRequest, S1ConnRel, Handover, TAU}
	}
}

// VocabIndex returns t's position in Vocabulary(g), or -1 if t is not part
// of that generation's vocabulary.
func VocabIndex(g Generation, t Type) int {
	for i, v := range Vocabulary(g) {
		if v == t {
			return i
		}
	}
	return -1
}

// Describe returns the human description from Table 1 of the paper.
func Describe(t Type) string {
	switch t {
	case Attach, Register:
		return "Register the UE with the MCN"
	case Detach, Deregister:
		return "De-register the UE from the MCN"
	case ServiceRequest:
		return "Create a signaling connection to allow UE to send/receive data and control-plane messages"
	case S1ConnRel, ANRel:
		return "Release the signaling connection and other resources in both control and data planes"
	case Handover:
		return "Switch the UE from the current cell coverage serving it to another cell"
	case TAU:
		return "Update the UE's tracking area"
	default:
		return "unknown event type"
	}
}

// DeviceType classifies a UE as one of the three device populations of the
// paper's dataset: phones, connected cars and tablets.
type DeviceType int

const (
	// Phone UEs (278,389 of 430,939 in the paper's trace).
	Phone DeviceType = iota
	// ConnectedCar UEs (113,182 in the paper's trace).
	ConnectedCar
	// Tablet UEs (39,368 in the paper's trace).
	Tablet

	numDeviceTypes
)

// NumDeviceTypes is the count of device types.
const NumDeviceTypes = int(numDeviceTypes)

var deviceNames = [NumDeviceTypes]string{
	Phone:        "phone",
	ConnectedCar: "connected_car",
	Tablet:       "tablet",
}

// String returns the lowercase name of the device type.
func (d DeviceType) String() string {
	if d < 0 || int(d) >= NumDeviceTypes {
		return fmt.Sprintf("DeviceType(%d)", int(d))
	}
	return deviceNames[d]
}

// Valid reports whether d is a defined device type.
func (d DeviceType) Valid() bool { return d >= 0 && int(d) < NumDeviceTypes }

// ParseDeviceType converts a name such as "phone" back to a DeviceType.
func ParseDeviceType(s string) (DeviceType, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for i, n := range deviceNames {
		if n == name {
			return DeviceType(i), nil
		}
	}
	return 0, fmt.Errorf("events: unknown device type %q", s)
}

// DeviceTypes returns all device types in canonical order.
func DeviceTypes() []DeviceType {
	return []DeviceType{Phone, ConnectedCar, Tablet}
}
