package events

import (
	"testing"
	"testing/quick"
)

func TestTypeStringRoundTrip(t *testing.T) {
	for i := 0; i < NumTypes; i++ {
		ty := Type(i)
		parsed, err := ParseType(ty.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", ty.String(), err)
		}
		if parsed != ty {
			t.Fatalf("round trip %v -> %v", ty, parsed)
		}
	}
}

func TestParseTypeCaseInsensitive(t *testing.T) {
	ty, err := ParseType(" srv_req ")
	if err != nil || ty != ServiceRequest {
		t.Fatalf("ParseType(srv_req) = %v, %v", ty, err)
	}
	if _, err := ParseType("NOT_AN_EVENT"); err == nil {
		t.Fatal("expected error for unknown event")
	}
}

func TestDeviceTypeRoundTrip(t *testing.T) {
	for _, d := range DeviceTypes() {
		parsed, err := ParseDeviceType(d.String())
		if err != nil || parsed != d {
			t.Fatalf("round trip %v -> %v, %v", d, parsed, err)
		}
	}
	if _, err := ParseDeviceType("toaster"); err == nil {
		t.Fatal("expected error for unknown device")
	}
}

func TestGenerationParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Generation
	}{
		{"4G", Gen4G}, {"lte", Gen4G}, {"5g", Gen5G}, {"NR", Gen5G},
	} {
		g, err := ParseGeneration(tc.in)
		if err != nil || g != tc.want {
			t.Fatalf("ParseGeneration(%q) = %v, %v", tc.in, g, err)
		}
	}
	if _, err := ParseGeneration("6G"); err == nil {
		t.Fatal("expected error for unknown generation")
	}
}

func TestVocabulary4G(t *testing.T) {
	v := Vocabulary(Gen4G)
	want := []Type{Attach, Detach, ServiceRequest, S1ConnRel, Handover, TAU}
	if len(v) != len(want) {
		t.Fatalf("4G vocabulary size %d, want %d", len(v), len(want))
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("4G vocab[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestVocabulary5GHasNoTAU(t *testing.T) {
	for _, e := range Vocabulary(Gen5G) {
		if e == TAU {
			t.Fatal("5G vocabulary must not contain TAU (Table 1)")
		}
	}
	if len(Vocabulary(Gen5G)) != 5 {
		t.Fatalf("5G vocabulary size %d, want 5", len(Vocabulary(Gen5G)))
	}
}

func TestVocabIndexConsistent(t *testing.T) {
	for _, g := range []Generation{Gen4G, Gen5G} {
		for i, e := range Vocabulary(g) {
			if got := VocabIndex(g, e); got != i {
				t.Fatalf("VocabIndex(%v, %v) = %d, want %d", g, e, got, i)
			}
		}
	}
	if VocabIndex(Gen5G, TAU) != -1 {
		t.Fatal("TAU must not index into the 5G vocabulary")
	}
	if VocabIndex(Gen4G, Register) != -1 {
		t.Fatal("REGISTER must not index into the 4G vocabulary")
	}
}

func TestDescribeCoversAllTypes(t *testing.T) {
	for i := 0; i < NumTypes; i++ {
		if d := Describe(Type(i)); d == "" || d == "unknown event type" {
			t.Fatalf("Describe(%v) missing", Type(i))
		}
	}
}

// Property: VocabIndex is the inverse of Vocabulary indexing for any valid
// index, for both generations.
func TestVocabIndexProperty(t *testing.T) {
	f := func(raw uint8, is5G bool) bool {
		g := Gen4G
		if is5G {
			g = Gen5G
		}
		v := Vocabulary(g)
		i := int(raw) % len(v)
		return VocabIndex(g, v[i]) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidEnumStrings(t *testing.T) {
	if Type(-1).Valid() || Type(NumTypes).Valid() {
		t.Fatal("out-of-range types must be invalid")
	}
	if DeviceType(-1).Valid() || DeviceType(NumDeviceTypes).Valid() {
		t.Fatal("out-of-range devices must be invalid")
	}
	// String must not panic on invalid values.
	_ = Type(99).String()
	_ = DeviceType(99).String()
	_ = Generation(99).String()
}
