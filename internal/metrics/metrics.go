// Package metrics computes the fidelity metrics of Table 2 — semantic
// violations, sojourn-time distributions, event-type breakdown, flow-length
// distributions — plus the n-gram memorization audit of §5.6. All
// distribution comparisons use the maximum vertical CDF distance (the
// two-sample KS statistic), matching the paper's reporting.
package metrics

import (
	"cptgpt/internal/events"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/trace"
)

// Replay feeds every stream of the dataset through the generation's UE
// state machine and returns the aggregate violation and sojourn accounting.
func Replay(d *trace.Dataset) *statemachine.AggregateReplay {
	m := statemachine.New(d.Generation)
	agg := statemachine.NewAggregateReplay()
	for i := range d.Streams {
		s := &d.Streams[i]
		r := statemachine.Replay(m, s.Types(), s.Times())
		agg.Add(&r)
	}
	return agg
}

// ViolationShare is one Table 3 row: a (state, event) pair and its share of
// counted events.
type ViolationShare struct {
	State statemachine.State
	Event events.Type
	Share float64
}

// Fidelity bundles every fidelity metric comparing a synthesized dataset
// against a reference ("real") dataset.
type Fidelity struct {
	// EventViolation is the fraction of events violating the state machine.
	EventViolation float64
	// StreamViolation is the fraction of streams with ≥ 1 violating event.
	StreamViolation float64
	// TopViolations lists the highest-frequency violating (state, event)
	// pairs (Table 3).
	TopViolations []ViolationShare

	// SojournConnMaxY / SojournIdleMaxY are the max CDF y-distances between
	// the per-UE mean sojourn-time distributions (CONNECTED / IDLE).
	SojournConnMaxY float64
	SojournIdleMaxY float64

	// FlowLenMaxY / FlowLenSrvReqMaxY / FlowLenRelMaxY are the max CDF
	// y-distances of the flow-length distributions: all events, SRV_REQ
	// only and S1_CONN_REL (AN_REL in 5G) only — the three Table 6 rows.
	FlowLenMaxY       float64
	FlowLenSrvReqMaxY float64
	FlowLenRelMaxY    float64

	// BreakdownReal / BreakdownSynth are the event-type shares (vocabulary
	// order); BreakdownDiff is synth − real per type (Table 7).
	BreakdownReal  []float64
	BreakdownSynth []float64
	BreakdownDiff  []float64
	// AvgAbsBreakdownDiff is the mean |diff| over event types.
	AvgAbsBreakdownDiff float64

	// Vocab labels the breakdown rows.
	Vocab []events.Type
}

// Evaluate computes the full fidelity suite of synth against real. Both
// datasets must share a generation.
func Evaluate(real, synth *trace.Dataset) Fidelity {
	return EvaluateWithReplay(real, synth, Replay(real), Replay(synth))
}

// EvaluateWithReplay is Evaluate with pre-computed replays, letting callers
// that already replayed (e.g. the experiment harness) avoid doing it twice.
func EvaluateWithReplay(real, synth *trace.Dataset, realAgg, synthAgg *statemachine.AggregateReplay) Fidelity {
	var f Fidelity
	f.EventViolation = synthAgg.EventViolationRate()
	f.StreamViolation = synthAgg.StreamViolationRate()
	keys, shares := synthAgg.TopViolations(3)
	for i, k := range keys {
		f.TopViolations = append(f.TopViolations, ViolationShare{State: k.State, Event: k.Event, Share: shares[i]})
	}

	f.SojournConnMaxY = maxY(realAgg.MeanConnectedPerUE, synthAgg.MeanConnectedPerUE)
	f.SojournIdleMaxY = maxY(realAgg.MeanIdlePerUE, synthAgg.MeanIdlePerUE)

	f.FlowLenMaxY = maxY(real.FlowLengths(nil), synth.FlowLengths(nil))
	srv := events.ServiceRequest
	rel := releaseEvent(real.Generation)
	f.FlowLenSrvReqMaxY = maxY(real.FlowLengths(&srv), synth.FlowLengths(&srv))
	f.FlowLenRelMaxY = maxY(real.FlowLengths(&rel), synth.FlowLengths(&rel))

	f.BreakdownReal, f.Vocab = real.EventBreakdown()
	f.BreakdownSynth, _ = synth.EventBreakdown()
	f.BreakdownDiff = make([]float64, len(f.BreakdownReal))
	var sum float64
	for i := range f.BreakdownDiff {
		f.BreakdownDiff[i] = f.BreakdownSynth[i] - f.BreakdownReal[i]
		sum += abs(f.BreakdownDiff[i])
	}
	if n := len(f.BreakdownDiff); n > 0 {
		f.AvgAbsBreakdownDiff = sum / float64(n)
	}
	return f
}

// releaseEvent returns the connection-release event of the generation
// (S1_CONN_REL for 4G, AN_REL for 5G).
func releaseEvent(g events.Generation) events.Type {
	if g == events.Gen5G {
		return events.ANRel
	}
	return events.S1ConnRel
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
