package metrics

import (
	"math"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/trace"
)

func groundTruth(t *testing.T, seed uint64, ues int) *trace.Dataset {
	t.Helper()
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G,
		Seed:       seed,
		UEs:        map[events.DeviceType]int{events.Phone: ues},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReplayCleanDataset(t *testing.T) {
	d := groundTruth(t, 1, 80)
	agg := Replay(d)
	if agg.EventViolationRate() != 0 || agg.StreamViolationRate() != 0 {
		t.Fatalf("ground truth must replay clean: %v / %v",
			agg.EventViolationRate(), agg.StreamViolationRate())
	}
	if len(agg.SojournConnected) == 0 || len(agg.SojournIdle) == 0 {
		t.Fatal("expected sojourn samples")
	}
}

func TestEvaluateSelfIsNearPerfect(t *testing.T) {
	d := groundTruth(t, 2, 100)
	f := Evaluate(d, d)
	if f.EventViolation != 0 || f.StreamViolation != 0 {
		t.Fatal("self-evaluation must have zero violations")
	}
	if f.SojournConnMaxY != 0 || f.FlowLenMaxY != 0 {
		t.Fatal("self-evaluation distances must be zero")
	}
	for _, diff := range f.BreakdownDiff {
		if diff != 0 {
			t.Fatal("self breakdown diff must be zero")
		}
	}
}

func TestEvaluateSeparatesGoodFromBad(t *testing.T) {
	real := groundTruth(t, 3, 150)
	similar := groundTruth(t, 4, 150) // same process, new seed

	// A deliberately broken synthesizer: all streams are the same short
	// pattern with constant interarrivals and a semantic violation.
	bad := &trace.Dataset{Generation: events.Gen4G}
	for i := 0; i < 150; i++ {
		bad.Streams = append(bad.Streams, trace.Stream{
			UEID:   "bad",
			Device: events.Phone,
			Events: []trace.Event{
				{Time: 0, Type: events.ServiceRequest},
				{Time: 1, Type: events.ServiceRequest}, // violation
				{Time: 2, Type: events.S1ConnRel},
			},
		})
	}

	fGood := Evaluate(real, similar)
	fBad := Evaluate(real, bad)
	if fGood.EventViolation != 0 {
		t.Fatal("similar trace must not violate")
	}
	if fBad.EventViolation == 0 || fBad.StreamViolation != 1 {
		t.Fatalf("broken trace must violate: %+v", fBad.EventViolation)
	}
	if fBad.FlowLenMaxY <= fGood.FlowLenMaxY {
		t.Fatalf("flow-length distance must separate: good %v bad %v", fGood.FlowLenMaxY, fBad.FlowLenMaxY)
	}
	if fBad.SojournConnMaxY <= fGood.SojournConnMaxY {
		t.Fatalf("sojourn distance must separate: good %v bad %v", fGood.SojournConnMaxY, fBad.SojournConnMaxY)
	}
	if len(fBad.TopViolations) == 0 {
		t.Fatal("top violations missing")
	}
}

func TestBreakdownDiffSignsAndSum(t *testing.T) {
	real := groundTruth(t, 5, 100)
	synth := groundTruth(t, 6, 100)
	f := Evaluate(real, synth)
	var sum float64
	for _, d := range f.BreakdownDiff {
		sum += d
	}
	// Diffs of two probability vectors must sum to ~0.
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("breakdown diffs sum to %v", sum)
	}
	if f.AvgAbsBreakdownDiff < 0 {
		t.Fatal("negative avg abs diff")
	}
}

func TestMemorizationExactCopyDetected(t *testing.T) {
	train := groundTruth(t, 7, 60)
	// Generated = exact copy → near-100% repetition at any n that fits.
	r, err := Memorization(train, train, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rate() < 0.999 {
		t.Fatalf("self-memorization rate %v, want ≈1", r.Rate())
	}
}

func TestMemorizationFreshTraceLow(t *testing.T) {
	train := groundTruth(t, 8, 60)
	fresh := groundTruth(t, 9, 60)
	r10, err := Memorization(fresh, train, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r10.Rate() > 0.01 {
		t.Fatalf("independent traces should rarely share 10-grams: %v", r10.Rate())
	}
	r20, err := Memorization(fresh, train, 20, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if r20.Rate() != 0 {
		t.Fatalf("20-gram repetition %v, want 0", r20.Rate())
	}
}

func TestMemorizationToleranceMonotone(t *testing.T) {
	train := groundTruth(t, 10, 60)
	gen := groundTruth(t, 11, 60)
	r1, err := Memorization(gen, train, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Memorization(gen, train, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rate() < r1.Rate() {
		t.Fatalf("larger tolerance must not reduce repetition: %v vs %v", r1.Rate(), r2.Rate())
	}
}

func TestMemorizationValidation(t *testing.T) {
	d := groundTruth(t, 12, 10)
	if _, err := Memorization(d, d, 0, 0.1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := Memorization(d, d, 5, -0.1); err == nil {
		t.Fatal("negative eps must error")
	}
}

func TestEvaluate5GUsesANRel(t *testing.T) {
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen5G,
		Seed:       13,
		UEs:        map[events.DeviceType]int{events.Phone: 50},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := Evaluate(d, d)
	if f.FlowLenRelMaxY != 0 {
		t.Fatal("5G release flow-length self-distance must be zero")
	}
	if len(f.Vocab) != 5 {
		t.Fatalf("5G vocab size %d", len(f.Vocab))
	}
}
