package metrics

import (
	"fmt"
	"strings"

	"cptgpt/internal/stats"
	"cptgpt/internal/trace"
)

// maxY is the two-sample KS statistic; an alias keeping call sites short.
func maxY(a, b []float64) float64 {
	return stats.MaxYDistance(a, b)
}

// MemorizationResult reports the n-gram repetition audit of §5.6.
type MemorizationResult struct {
	// N is the subsequence length, Epsilon the interarrival tolerance.
	N       int
	Epsilon float64
	// Generated is the number of n-grams extracted from the generated set;
	// Repeated is how many of them match at least one training n-gram.
	Generated int
	Repeated  int
}

// Rate returns the repeated fraction in [0, 1].
func (r MemorizationResult) Rate() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.Repeated) / float64(r.Generated)
}

// ngram is one continuous subsequence: an event-type signature plus the
// aligned interarrival times.
type ngram struct {
	ia []float64
}

// Memorization extracts all n-grams (continuous subsequences of length n)
// from both datasets and reports the fraction of generated n-grams that
// repeat a training n-gram. Two n-grams repeat when their event-type
// sequences are identical and every pair of corresponding interarrival
// times falls within relative tolerance ε, i.e. (1−ε) < t_gen/t_real <
// (1+ε). Pairs where t_real is zero match only when t_gen is (near) zero;
// the paper leaves this case unspecified and our convention treats
// sub-millisecond values as equal.
func Memorization(generated, training *trace.Dataset, n int, eps float64) (MemorizationResult, error) {
	if n < 1 {
		return MemorizationResult{}, fmt.Errorf("metrics: n must be ≥ 1, got %d", n)
	}
	if eps < 0 {
		return MemorizationResult{}, fmt.Errorf("metrics: epsilon must be ≥ 0, got %v", eps)
	}
	res := MemorizationResult{N: n, Epsilon: eps}

	// Index training n-grams by event-type signature.
	index := make(map[string][]ngram)
	for i := range training.Streams {
		s := &training.Streams[i]
		ia := s.Interarrivals()
		for start := 0; start+n <= len(s.Events); start++ {
			sig := signature(s, start, n)
			index[sig] = append(index[sig], ngram{ia: ia[start : start+n]})
		}
	}

	for i := range generated.Streams {
		s := &generated.Streams[i]
		ia := s.Interarrivals()
		for start := 0; start+n <= len(s.Events); start++ {
			res.Generated++
			sig := signature(s, start, n)
			for _, tr := range index[sig] {
				if iaMatch(ia[start:start+n], tr.ia, eps) {
					res.Repeated++
					break
				}
			}
		}
	}
	return res, nil
}

// signature builds the event-type key of the n-gram starting at start.
func signature(s *trace.Stream, start, n int) string {
	var b strings.Builder
	for i := start; i < start+n; i++ {
		if i > start {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(s.Events[i].Type))
	}
	return b.String()
}

// iaMatch reports whether every interarrival pair is within relative
// tolerance eps.
func iaMatch(gen, real []float64, eps float64) bool {
	const zeroIsh = 1e-3 // sub-millisecond interarrivals compare as equal
	for i := range gen {
		g, r := gen[i], real[i]
		if r <= zeroIsh {
			if g > zeroIsh {
				return false
			}
			continue
		}
		ratio := g / r
		if ratio <= 1-eps || ratio >= 1+eps {
			return false
		}
	}
	return true
}
