// Package mcn simulates a mobile-core-network control-plane function (an
// MME/AMF-like event processor) consuming a control-plane traffic trace.
// It is the downstream application substrate motivating the paper (§2.2):
// evaluating MCN designs — throughput, latency, autoscaling — requires
// realistic control-plane workloads, and this simulator is what the
// examples and the scenario engine drive with synthesized traffic.
//
// The simulation is event-driven in virtual time: a time-ordered arrival
// sequence — pulled incrementally from an ArrivalSource, so a million-UE
// scenario never materializes in memory — is served by a pool of NF
// instances with per-event-type service costs; an optional autoscaler
// resizes the pool per window against a target utilization. Per-UE state is
// tracked with the 3GPP state machine, and semantically invalid events are
// rejected — which is how a stateful MCN would behave, and why the paper
// insists only semantically correct traces are usable downstream.
//
// Latency percentiles are computed from a fixed-size log-spaced histogram
// (exact mean, percentile values rounded up to a bucket edge ≤ 16%/decade
// apart), so the simulator's memory footprint is O(per-UE state), never
// O(events).
//
// Concurrency contract: Run/RunStream are synchronous and single-threaded —
// the simulation loop owns all of its state and two concurrent calls never
// share anything. The one cross-goroutine surface is Config.Live: when set,
// the loop publishes progress into LiveStats' atomic fields (counters per
// arrival; latency quantiles and instance counts at every metering-window
// close and every liveQuantileEvery arrivals), and any number of goroutines
// may read them while the run is in flight — that is what backs the
// cptserved daemon's mid-run /stats and /metrics. Determinism: the
// simulation is pure virtual time — results depend only on the arrival
// sequence and Config, never on wall-clock pacing or readers.
package mcn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"cptgpt/internal/events"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/trace"
)

// Config parameterizes the MCN simulation.
type Config struct {
	// BaseInstances is the initial NF instance count (parallel servers).
	BaseInstances int
	// AutoScale enables per-window pool resizing.
	AutoScale bool
	// TargetUtil is the autoscaler's utilization set-point in (0, 1).
	TargetUtil float64
	// Window is the autoscaler/metering window in seconds.
	Window float64
	// ServiceCost maps each event type to its service time in seconds;
	// types absent from the map use DefaultServiceCost.
	ServiceCost map[events.Type]float64
	// DefaultServiceCost is the fallback service time in seconds.
	DefaultServiceCost float64
	// MaxInstances bounds the autoscaler.
	MaxInstances int
	// Live, when non-nil, receives the simulation's progress as atomic
	// counters while RunStream is still running (see LiveStats). It does
	// not change the simulation.
	Live *LiveStats
	// LatencySink, when non-nil, mirrors every served event's latency
	// sample (seconds) into a lock-free telemetry histogram — the
	// distribution-level counterpart of Live's point quantiles, rendered
	// natively on /metrics. It does not change the simulation.
	LatencySink *telemetry.Histogram
}

// LiveStats publishes a running simulation's progress for concurrent
// readers: all fields are atomics, written by the simulation loop and
// readable from any goroutine at any time. Events, Rejected, UEs and
// ConnectedUEs advance per arrival; MeanLatencyNanos, P95LatencyNanos,
// P99LatencyNanos and Instances refresh at every metering-window close,
// every liveQuantileEvery arrivals, and once at the end of the run, when
// they match the final Report exactly.
type LiveStats struct {
	Events       atomic.Int64
	Rejected     atomic.Int64
	UEs          atomic.Int64
	ConnectedUEs atomic.Int64
	Instances    atomic.Int64

	MeanLatencyNanos atomic.Int64
	P95LatencyNanos  atomic.Int64
	P99LatencyNanos  atomic.Int64
}

// liveQuantileEvery is how many arrivals may pass between latency-quantile
// refreshes of Config.Live (quantile extraction walks the histogram's ~150
// buckets, so it stays off the per-event path).
const liveQuantileEvery = 512

// DefaultConfig returns a configuration with 3GPP-flavoured relative costs:
// attach/detach are heavyweight (authentication, session setup), service
// requests and releases moderate, handovers and TAUs light.
func DefaultConfig() Config {
	return Config{
		BaseInstances: 2,
		AutoScale:     true,
		TargetUtil:    0.6,
		Window:        60,
		ServiceCost: map[events.Type]float64{
			events.Attach:         0.020,
			events.Register:       0.020,
			events.Detach:         0.010,
			events.Deregister:     0.010,
			events.ServiceRequest: 0.005,
			events.S1ConnRel:      0.003,
			events.ANRel:          0.003,
			events.Handover:       0.004,
			events.TAU:            0.002,
		},
		DefaultServiceCost: 0.005,
		MaxInstances:       64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.BaseInstances < 1:
		return fmt.Errorf("mcn: BaseInstances must be ≥ 1, got %d", c.BaseInstances)
	case c.AutoScale && (c.TargetUtil <= 0 || c.TargetUtil >= 1):
		return fmt.Errorf("mcn: TargetUtil must be in (0,1), got %v", c.TargetUtil)
	case c.Window <= 0:
		return fmt.Errorf("mcn: Window must be positive, got %v", c.Window)
	case c.DefaultServiceCost <= 0:
		return fmt.Errorf("mcn: DefaultServiceCost must be positive, got %v", c.DefaultServiceCost)
	case c.MaxInstances < c.BaseInstances:
		return fmt.Errorf("mcn: MaxInstances %d below BaseInstances %d", c.MaxInstances, c.BaseInstances)
	}
	return nil
}

// WindowStat is one metering window's aggregate.
type WindowStat struct {
	Start     float64
	Arrivals  int
	Util      float64
	Instances int
}

// Report is the simulation output.
type Report struct {
	// Events is the number of arrivals processed; Rejected counts events
	// dropped for violating the UE state machine.
	Events   int
	Rejected int
	// MeanLatencySec / P95LatencySec / P99LatencySec summarize the
	// queueing + service latency of accepted events. The mean is exact;
	// the percentiles are upper bucket edges of a log-spaced histogram.
	MeanLatencySec float64
	P95LatencySec  float64
	P99LatencySec  float64
	// PeakRate is the highest per-window arrival rate (events/s).
	PeakRate float64
	// PeakConnectedUEs is the maximum number of UEs simultaneously in the
	// CONNECTED top-level state — the per-UE state memory a stateful MCN
	// must hold (§3.2 C3).
	PeakConnectedUEs int
	// UEs is the number of distinct UEs observed.
	UEs int
	// FinalInstances is the instance count at the end of the run;
	// MaxInstancesUsed is the autoscaler's high-water mark.
	FinalInstances   int
	MaxInstancesUsed int
	// Windows carries the per-window history (for autoscaling plots).
	Windows []WindowStat
}

// Arrival is one merged control-plane event: a timestamp, the UE it belongs
// to (any stable 64-bit key) and the event type.
type Arrival struct {
	Time float64
	UE   uint64
	Type events.Type
}

// ArrivalSource feeds the simulator a time-ordered arrival sequence, one
// event per call. It returns ok=false when the sequence is exhausted. The
// simulator never buffers the sequence, so sources may be arbitrarily long.
type ArrivalSource interface {
	NextArrival() (a Arrival, ok bool, err error)
}

// LatencyHist is a log-spaced latency histogram over the shared
// telemetry.LatencyBuckets scheme: bucket 0 holds latencies below the
// scheme's Min (10µs), then 16 buckets per decade up to 10ks, then one
// overflow bucket. Percentile queries return the upper edge of the bucket
// holding the requested rank (≤ 16%/decade apart), and the mean is exact —
// O(1) memory regardless of the sample count. It backs the MCN simulator's
// latency report and the closed-loop replay driver's per-transaction SLO
// accounting; the bucket math lives in telemetry.Buckets so mcn, replaynet
// and the Prometheus histograms agree on one edge set. Not safe for
// concurrent use (the single-writer simulator loop); the lock-free
// equivalent is telemetry.Histogram.
type LatencyHist struct {
	counts []int
	n      int
	sum    float64
}

// latencyBuckets is the shared log-bucket scheme (1e-5..1e4 s, 16/decade).
var latencyBuckets = telemetry.LatencyBuckets

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{counts: make([]int, latencyBuckets.NumBuckets())}
}

// Add records one latency sample in seconds.
func (h *LatencyHist) Add(l float64) {
	h.n++
	h.sum += l
	h.counts[latencyBuckets.Index(l)]++
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int { return h.n }

// Reset clears the histogram for reuse (a controller's per-probe-window
// measurements reuse one allocation).
func (h *LatencyHist) Reset() {
	clear(h.counts)
	h.n = 0
	h.sum = 0
}

// Mean returns the exact mean of the recorded samples.
func (h *LatencyHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the upper edge of the bucket containing the q-quantile,
// clamped to the scheme's [Min, Max].
func (h *LatencyHist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int(q * float64(h.n-1))
	var cum int
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			if i == len(h.counts)-1 {
				return latencyBuckets.Max
			}
			return latencyBuckets.UpperEdge(i)
		}
	}
	return latencyBuckets.Max
}

// serverHeap is a min-heap of per-instance next-free times.
type serverHeap []float64

func (h serverHeap) Len() int            { return len(h) }
func (h serverHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *serverHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ueRec is the per-UE admission state.
type ueRec struct {
	state statemachine.State
	boot  bool
}

// datasetSource adapts an in-memory Dataset to an ArrivalSource by merging
// all streams into one time-ordered sequence up front (the compatibility
// path for callers that already hold the whole dataset).
type datasetSource struct {
	arr []Arrival
	i   int
}

func newDatasetSource(d *trace.Dataset) *datasetSource {
	src := &datasetSource{}
	for ue := range d.Streams {
		for _, e := range d.Streams[ue].Events {
			src.arr = append(src.arr, Arrival{Time: e.Time, UE: uint64(ue), Type: e.Type})
		}
	}
	sort.SliceStable(src.arr, func(i, j int) bool { return src.arr[i].Time < src.arr[j].Time })
	return src
}

func (s *datasetSource) NextArrival() (Arrival, bool, error) {
	if s.i >= len(s.arr) {
		return Arrival{}, false, nil
	}
	a := s.arr[s.i]
	s.i++
	return a, true, nil
}

// Run simulates the MCN over the dataset and returns the report. It is
// RunStream over the dataset's merged arrival sequence.
func Run(d *trace.Dataset, cfg Config) (*Report, error) {
	return RunStream(d.Generation, newDatasetSource(d), cfg)
}

// RunStream simulates the MCN over a time-ordered arrival sequence pulled
// incrementally from src. Memory is bounded by the per-UE state map and the
// instance pool — independent of the number of events — which is what lets
// the scenario engine drive million-UE workloads through it. Arrivals must
// be non-decreasing in time; a time regression is reported as an error
// (merged scenario streams guarantee order by construction).
func RunStream(gen events.Generation, src ArrivalSource, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	machine := statemachine.New(gen)
	ues := make(map[uint64]ueRec)

	servers := make(serverHeap, cfg.BaseInstances)
	heap.Init(&servers)
	instances := cfg.BaseInstances
	maxInstances := instances

	rep := &Report{}
	hist := NewLatencyHist()
	connected := 0
	var winStart float64
	winArrivals := 0
	var winBusy float64
	started := false
	var lastTime float64

	// publishQuantiles refreshes Live's derived metrics (quantile queries
	// walk the histogram, so they run per window / every few hundred
	// events, never per arrival).
	publishQuantiles := func() {
		if cfg.Live == nil {
			return
		}
		cfg.Live.MeanLatencyNanos.Store(int64(hist.Mean() * 1e9))
		cfg.Live.P95LatencyNanos.Store(int64(hist.Quantile(0.95) * 1e9))
		cfg.Live.P99LatencyNanos.Store(int64(hist.Quantile(0.99) * 1e9))
		cfg.Live.Instances.Store(int64(instances))
	}

	closeWindow := func(end float64) {
		dur := end - winStart
		if dur <= 0 {
			dur = cfg.Window
		}
		util := winBusy / (dur * float64(instances))
		rate := float64(winArrivals) / dur
		rep.Windows = append(rep.Windows, WindowStat{Start: winStart, Arrivals: winArrivals, Util: util, Instances: instances})
		if rate > rep.PeakRate {
			rep.PeakRate = rate
		}
		if cfg.AutoScale {
			want := int(math.Ceil(util / cfg.TargetUtil * float64(instances)))
			if want < cfg.BaseInstances {
				want = cfg.BaseInstances
			}
			if want > cfg.MaxInstances {
				want = cfg.MaxInstances
			}
			for instances < want {
				heap.Push(&servers, end)
				instances++
			}
			for instances > want && len(servers) > 0 {
				// Retire the soonest-free server.
				heap.Pop(&servers)
				instances--
			}
			if instances > maxInstances {
				maxInstances = instances
			}
		}
		winStart = end
		winArrivals = 0
		winBusy = 0
		publishQuantiles()
	}

	for {
		a, ok, err := src.NextArrival()
		if err != nil {
			return nil, fmt.Errorf("mcn: arrival source: %w", err)
		}
		if !ok {
			break
		}
		if !started {
			winStart = a.Time
			started = true
		} else if a.Time < lastTime {
			return nil, fmt.Errorf("mcn: arrivals out of order: %v after %v", a.Time, lastTime)
		}
		lastTime = a.Time
		for a.Time >= winStart+cfg.Window {
			closeWindow(winStart + cfg.Window)
		}
		winArrivals++
		rep.Events++
		if cfg.Live != nil {
			cfg.Live.Events.Add(1)
			if rep.Events%liveQuantileEvery == 0 {
				publishQuantiles()
			}
		}

		// Stateful admission: replay semantics with bootstrap heuristic.
		rec, seen := ues[a.UE]
		if !seen {
			rep.UEs++
			if cfg.Live != nil {
				cfg.Live.UEs.Add(1)
			}
		}
		prevTop := statemachine.Top(rec.state)
		if !rec.boot {
			if st, ok := machine.Bootstrap(a.Type); ok {
				rec.state = st
				rec.boot = true
				ues[a.UE] = rec
			} else if !seen {
				ues[a.UE] = rec // remember the UE even pre-bootstrap
			}
			// Pre-bootstrap events are admitted without state checks.
		} else {
			next, ok := machine.Step(rec.state, a.Type)
			if !ok {
				rep.Rejected++
				if cfg.Live != nil {
					cfg.Live.Rejected.Add(1)
				}
				continue
			}
			rec.state = next
			ues[a.UE] = rec
		}
		if top := statemachine.Top(rec.state); top != prevTop {
			switch {
			case top == statemachine.TopConnected:
				connected++
				if connected > rep.PeakConnectedUEs {
					rep.PeakConnectedUEs = connected
				}
			case prevTop == statemachine.TopConnected:
				connected--
			}
			if cfg.Live != nil {
				cfg.Live.ConnectedUEs.Store(int64(connected))
			}
		}

		// Queueing: earliest-free server takes the job.
		cost := cfg.ServiceCost[a.Type]
		if cost == 0 {
			cost = cfg.DefaultServiceCost
		}
		free := heap.Pop(&servers).(float64)
		start := math.Max(free, a.Time)
		finish := start + cost
		heap.Push(&servers, finish)
		hist.Add(finish - a.Time)
		if cfg.LatencySink != nil {
			cfg.LatencySink.Observe(finish - a.Time)
		}
		winBusy += cost
	}
	if !started {
		return &Report{FinalInstances: cfg.BaseInstances}, nil
	}
	closeWindow(winStart + cfg.Window)

	rep.MeanLatencySec = hist.Mean()
	rep.P95LatencySec = hist.Quantile(0.95)
	rep.P99LatencySec = hist.Quantile(0.99)
	rep.FinalInstances = instances
	rep.MaxInstancesUsed = maxInstances
	publishQuantiles()
	return rep, nil
}
