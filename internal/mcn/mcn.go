// Package mcn simulates a mobile-core-network control-plane function (an
// MME/AMF-like event processor) consuming a control-plane traffic trace.
// It is the downstream application substrate motivating the paper (§2.2):
// evaluating MCN designs — throughput, latency, autoscaling — requires
// realistic control-plane workloads, and this simulator is what the
// examples drive with synthesized traffic.
//
// The simulation is event-driven in virtual time: all streams' events merge
// into one time-ordered arrival sequence; a pool of NF instances serves
// them with per-event-type service costs; an optional autoscaler resizes
// the pool per window against a target utilization. Per-UE state is tracked
// with the 3GPP state machine, and semantically invalid events are rejected
// — which is how a stateful MCN would behave, and why the paper insists
// only semantically correct traces are usable downstream.
package mcn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"cptgpt/internal/events"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/trace"
)

// Config parameterizes the MCN simulation.
type Config struct {
	// BaseInstances is the initial NF instance count (parallel servers).
	BaseInstances int
	// AutoScale enables per-window pool resizing.
	AutoScale bool
	// TargetUtil is the autoscaler's utilization set-point in (0, 1).
	TargetUtil float64
	// Window is the autoscaler/metering window in seconds.
	Window float64
	// ServiceCost maps each event type to its service time in seconds;
	// types absent from the map use DefaultServiceCost.
	ServiceCost map[events.Type]float64
	// DefaultServiceCost is the fallback service time in seconds.
	DefaultServiceCost float64
	// MaxInstances bounds the autoscaler.
	MaxInstances int
}

// DefaultConfig returns a configuration with 3GPP-flavoured relative costs:
// attach/detach are heavyweight (authentication, session setup), service
// requests and releases moderate, handovers and TAUs light.
func DefaultConfig() Config {
	return Config{
		BaseInstances: 2,
		AutoScale:     true,
		TargetUtil:    0.6,
		Window:        60,
		ServiceCost: map[events.Type]float64{
			events.Attach:         0.020,
			events.Register:       0.020,
			events.Detach:         0.010,
			events.Deregister:     0.010,
			events.ServiceRequest: 0.005,
			events.S1ConnRel:      0.003,
			events.ANRel:          0.003,
			events.Handover:       0.004,
			events.TAU:            0.002,
		},
		DefaultServiceCost: 0.005,
		MaxInstances:       64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.BaseInstances < 1:
		return fmt.Errorf("mcn: BaseInstances must be ≥ 1, got %d", c.BaseInstances)
	case c.AutoScale && (c.TargetUtil <= 0 || c.TargetUtil >= 1):
		return fmt.Errorf("mcn: TargetUtil must be in (0,1), got %v", c.TargetUtil)
	case c.Window <= 0:
		return fmt.Errorf("mcn: Window must be positive, got %v", c.Window)
	case c.DefaultServiceCost <= 0:
		return fmt.Errorf("mcn: DefaultServiceCost must be positive, got %v", c.DefaultServiceCost)
	case c.MaxInstances < c.BaseInstances:
		return fmt.Errorf("mcn: MaxInstances %d below BaseInstances %d", c.MaxInstances, c.BaseInstances)
	}
	return nil
}

// WindowStat is one metering window's aggregate.
type WindowStat struct {
	Start     float64
	Arrivals  int
	Util      float64
	Instances int
}

// Report is the simulation output.
type Report struct {
	// Events is the number of arrivals processed; Rejected counts events
	// dropped for violating the UE state machine.
	Events   int
	Rejected int
	// MeanLatencySec / P95LatencySec / P99LatencySec summarize the
	// queueing + service latency of accepted events.
	MeanLatencySec float64
	P95LatencySec  float64
	P99LatencySec  float64
	// PeakRate is the highest per-window arrival rate (events/s).
	PeakRate float64
	// PeakConnectedUEs is the maximum number of UEs simultaneously in the
	// CONNECTED top-level state — the per-UE state memory a stateful MCN
	// must hold (§3.2 C3).
	PeakConnectedUEs int
	// FinalInstances is the instance count at the end of the run;
	// MaxInstancesUsed is the autoscaler's high-water mark.
	FinalInstances   int
	MaxInstancesUsed int
	// Windows carries the per-window history (for autoscaling plots).
	Windows []WindowStat
}

// arrival is one merged trace event.
type arrival struct {
	t  float64
	ue int
	ev events.Type
}

// serverHeap is a min-heap of per-instance next-free times.
type serverHeap []float64

func (h serverHeap) Len() int            { return len(h) }
func (h serverHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *serverHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates the MCN over the dataset and returns the report.
func Run(d *trace.Dataset, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Merge arrivals.
	var arr []arrival
	for ue := range d.Streams {
		for _, e := range d.Streams[ue].Events {
			arr = append(arr, arrival{t: e.Time, ue: ue, ev: e.Type})
		}
	}
	sort.Slice(arr, func(i, j int) bool { return arr[i].t < arr[j].t })
	if len(arr) == 0 {
		return &Report{FinalInstances: cfg.BaseInstances}, nil
	}

	machine := statemachine.New(d.Generation)
	ueState := make([]statemachine.State, len(d.Streams))
	ueBoot := make([]bool, len(d.Streams))

	servers := make(serverHeap, cfg.BaseInstances)
	heap.Init(&servers)
	instances := cfg.BaseInstances
	maxInstances := instances

	rep := &Report{}
	var latencies []float64
	connected := 0
	winStart := arr[0].t
	winArrivals := 0
	var winBusy float64

	closeWindow := func(end float64) {
		dur := end - winStart
		if dur <= 0 {
			dur = cfg.Window
		}
		util := winBusy / (dur * float64(instances))
		rate := float64(winArrivals) / dur
		rep.Windows = append(rep.Windows, WindowStat{Start: winStart, Arrivals: winArrivals, Util: util, Instances: instances})
		if rate > rep.PeakRate {
			rep.PeakRate = rate
		}
		if cfg.AutoScale {
			want := int(math.Ceil(util / cfg.TargetUtil * float64(instances)))
			if want < cfg.BaseInstances {
				want = cfg.BaseInstances
			}
			if want > cfg.MaxInstances {
				want = cfg.MaxInstances
			}
			for instances < want {
				heap.Push(&servers, end)
				instances++
			}
			for instances > want && len(servers) > 0 {
				// Retire the soonest-free server.
				heap.Pop(&servers)
				instances--
			}
			if instances > maxInstances {
				maxInstances = instances
			}
		}
		winStart = end
		winArrivals = 0
		winBusy = 0
	}

	for _, a := range arr {
		for a.t >= winStart+cfg.Window {
			closeWindow(winStart + cfg.Window)
		}
		winArrivals++
		rep.Events++

		// Stateful admission: replay semantics with bootstrap heuristic.
		prevTop := statemachine.Top(ueState[a.ue])
		if !ueBoot[a.ue] {
			if st, ok := machine.Bootstrap(a.ev); ok {
				ueState[a.ue] = st
				ueBoot[a.ue] = true
			}
			// Pre-bootstrap events are admitted without state checks.
		} else {
			next, ok := machine.Step(ueState[a.ue], a.ev)
			if !ok {
				rep.Rejected++
				continue
			}
			ueState[a.ue] = next
		}
		if top := statemachine.Top(ueState[a.ue]); top != prevTop {
			switch {
			case top == statemachine.TopConnected:
				connected++
				if connected > rep.PeakConnectedUEs {
					rep.PeakConnectedUEs = connected
				}
			case prevTop == statemachine.TopConnected:
				connected--
			}
		}

		// Queueing: earliest-free server takes the job.
		cost := cfg.ServiceCost[a.ev]
		if cost == 0 {
			cost = cfg.DefaultServiceCost
		}
		free := heap.Pop(&servers).(float64)
		start := math.Max(free, a.t)
		finish := start + cost
		heap.Push(&servers, finish)
		latencies = append(latencies, finish-a.t)
		winBusy += cost
	}
	closeWindow(winStart + cfg.Window)

	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		rep.MeanLatencySec = sum / float64(len(latencies))
		rep.P95LatencySec = latencies[int(0.95*float64(len(latencies)-1))]
		rep.P99LatencySec = latencies[int(0.99*float64(len(latencies)-1))]
	}
	rep.FinalInstances = instances
	rep.MaxInstancesUsed = maxInstances
	return rep, nil
}
