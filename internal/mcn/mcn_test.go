package mcn

import (
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/trace"
)

func workload(t *testing.T, ues int) *trace.Dataset {
	t.Helper()
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G,
		Seed:       1,
		UEs:        map[events.DeviceType]int{events.Phone: ues},
		Hours:      1,
		StartHour:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BaseInstances = 0 },
		func(c *Config) { c.TargetUtil = 1.5 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.DefaultServiceCost = 0 },
		func(c *Config) { c.MaxInstances = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanWorkload(t *testing.T) {
	d := workload(t, 150)
	rep, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != d.NumEvents() {
		t.Fatalf("processed %d of %d events", rep.Events, d.NumEvents())
	}
	if rep.Rejected != 0 {
		t.Fatalf("ground truth rejected %d events; must be 0", rep.Rejected)
	}
	if rep.MeanLatencySec <= 0 || rep.P99LatencySec < rep.P95LatencySec {
		t.Fatalf("latency accounting broken: %+v", rep)
	}
	if rep.PeakConnectedUEs <= 0 {
		t.Fatal("peak connected UEs must be positive")
	}
	if len(rep.Windows) == 0 {
		t.Fatal("window history missing")
	}
}

func TestRejectsInvalidEvents(t *testing.T) {
	d := &trace.Dataset{Generation: events.Gen4G, Streams: []trace.Stream{{
		UEID: "u", Device: events.Phone,
		Events: []trace.Event{
			{Time: 0, Type: events.ServiceRequest},
			{Time: 1, Type: events.ServiceRequest}, // invalid while connected
			{Time: 2, Type: events.S1ConnRel},
		},
	}}}
	rep, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", rep.Rejected)
	}
}

func TestAutoscalerScalesUp(t *testing.T) {
	// A burst far above one instance's capacity must raise the pool.
	d := &trace.Dataset{Generation: events.Gen4G}
	for u := 0; u < 200; u++ {
		s := trace.Stream{UEID: "u", Device: events.Phone}
		base := float64(u) * 0.01
		s.Events = append(s.Events,
			trace.Event{Time: base, Type: events.Attach},
			trace.Event{Time: base + 1, Type: events.S1ConnRel},
			trace.Event{Time: base + 2, Type: events.ServiceRequest},
			trace.Event{Time: base + 3, Type: events.S1ConnRel},
		)
		d.Streams = append(d.Streams, s)
	}
	cfg := DefaultConfig()
	cfg.BaseInstances = 1
	cfg.Window = 1
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxInstancesUsed <= 1 {
		t.Fatalf("autoscaler never scaled: max %d", rep.MaxInstancesUsed)
	}
}

func TestNoAutoscaleKeepsPoolFixed(t *testing.T) {
	d := workload(t, 60)
	cfg := DefaultConfig()
	cfg.AutoScale = false
	cfg.BaseInstances = 3
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalInstances != 3 || rep.MaxInstancesUsed > 3 {
		t.Fatalf("pool changed without autoscaling: %+v", rep)
	}
}

func TestEmptyDataset(t *testing.T) {
	rep, err := Run(&trace.Dataset{Generation: events.Gen4G}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 0 {
		t.Fatal("empty dataset must process nothing")
	}
}

func TestMoreInstancesReduceLatency(t *testing.T) {
	d := workload(t, 200)
	cfg1 := DefaultConfig()
	cfg1.AutoScale = false
	cfg1.BaseInstances = 1
	rep1, err := Run(d, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := cfg1
	cfg8.BaseInstances = 8
	rep8, err := Run(d, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if rep8.P99LatencySec > rep1.P99LatencySec {
		t.Fatalf("8 instances slower than 1: %v vs %v", rep8.P99LatencySec, rep1.P99LatencySec)
	}
}
