package mcn

import (
	"math"
	"sort"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/trace"
)

func workload(t *testing.T, ues int) *trace.Dataset {
	t.Helper()
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G,
		Seed:       1,
		UEs:        map[events.DeviceType]int{events.Phone: ues},
		Hours:      1,
		StartHour:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BaseInstances = 0 },
		func(c *Config) { c.TargetUtil = 1.5 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.DefaultServiceCost = 0 },
		func(c *Config) { c.MaxInstances = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanWorkload(t *testing.T) {
	d := workload(t, 150)
	rep, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != d.NumEvents() {
		t.Fatalf("processed %d of %d events", rep.Events, d.NumEvents())
	}
	if rep.Rejected != 0 {
		t.Fatalf("ground truth rejected %d events; must be 0", rep.Rejected)
	}
	if rep.MeanLatencySec <= 0 || rep.P99LatencySec < rep.P95LatencySec {
		t.Fatalf("latency accounting broken: %+v", rep)
	}
	if rep.PeakConnectedUEs <= 0 {
		t.Fatal("peak connected UEs must be positive")
	}
	if len(rep.Windows) == 0 {
		t.Fatal("window history missing")
	}
}

func TestRejectsInvalidEvents(t *testing.T) {
	d := &trace.Dataset{Generation: events.Gen4G, Streams: []trace.Stream{{
		UEID: "u", Device: events.Phone,
		Events: []trace.Event{
			{Time: 0, Type: events.ServiceRequest},
			{Time: 1, Type: events.ServiceRequest}, // invalid while connected
			{Time: 2, Type: events.S1ConnRel},
		},
	}}}
	rep, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", rep.Rejected)
	}
}

func TestAutoscalerScalesUp(t *testing.T) {
	// A burst far above one instance's capacity must raise the pool.
	d := &trace.Dataset{Generation: events.Gen4G}
	for u := 0; u < 200; u++ {
		s := trace.Stream{UEID: "u", Device: events.Phone}
		base := float64(u) * 0.01
		s.Events = append(s.Events,
			trace.Event{Time: base, Type: events.Attach},
			trace.Event{Time: base + 1, Type: events.S1ConnRel},
			trace.Event{Time: base + 2, Type: events.ServiceRequest},
			trace.Event{Time: base + 3, Type: events.S1ConnRel},
		)
		d.Streams = append(d.Streams, s)
	}
	cfg := DefaultConfig()
	cfg.BaseInstances = 1
	cfg.Window = 1
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxInstancesUsed <= 1 {
		t.Fatalf("autoscaler never scaled: max %d", rep.MaxInstancesUsed)
	}
}

func TestNoAutoscaleKeepsPoolFixed(t *testing.T) {
	d := workload(t, 60)
	cfg := DefaultConfig()
	cfg.AutoScale = false
	cfg.BaseInstances = 3
	rep, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalInstances != 3 || rep.MaxInstancesUsed > 3 {
		t.Fatalf("pool changed without autoscaling: %+v", rep)
	}
}

func TestEmptyDataset(t *testing.T) {
	rep, err := Run(&trace.Dataset{Generation: events.Gen4G}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 0 {
		t.Fatal("empty dataset must process nothing")
	}
}

func TestMoreInstancesReduceLatency(t *testing.T) {
	d := workload(t, 200)
	cfg1 := DefaultConfig()
	cfg1.AutoScale = false
	cfg1.BaseInstances = 1
	rep1, err := Run(d, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := cfg1
	cfg8.BaseInstances = 8
	rep8, err := Run(d, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if rep8.P99LatencySec > rep1.P99LatencySec {
		t.Fatalf("8 instances slower than 1: %v vs %v", rep8.P99LatencySec, rep1.P99LatencySec)
	}
}

// sliceSource feeds a fixed arrival slice as an ArrivalSource.
type sliceSource struct {
	arr []Arrival
	i   int
}

func (s *sliceSource) NextArrival() (Arrival, bool, error) {
	if s.i >= len(s.arr) {
		return Arrival{}, false, nil
	}
	a := s.arr[s.i]
	s.i++
	return a, true, nil
}

// TestRunStreamMatchesRun feeds RunStream an arrival sequence merged
// independently of datasetSource (time-keyed stable sort built by hand), so
// a bug in the dataset adapter's merge cannot cancel out.
func TestRunStreamMatchesRun(t *testing.T) {
	d := workload(t, 120)
	want, err := Run(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var arr []Arrival
	for ue := range d.Streams {
		for _, e := range d.Streams[ue].Events {
			arr = append(arr, Arrival{Time: e.Time, UE: uint64(ue), Type: e.Type})
		}
	}
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Time < arr[j].Time })
	got, err := RunStream(d.Generation, src(arr), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want.Events != got.Events || want.Rejected != got.Rejected ||
		want.MeanLatencySec != got.MeanLatencySec || want.MaxInstancesUsed != got.MaxInstancesUsed {
		t.Fatalf("RunStream diverged from Run:\n got %+v\nwant %+v", got, want)
	}
}

// Latency accounting reference: widely spaced arrivals on an idle server
// each cost exactly their service time, so the mean is exact and the
// histogram percentiles land within one log bucket (≤ 10^(1/16) ≈ 15.5%)
// above the true value.
func TestLatencyAccountingExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AutoScale = false
	var arr []Arrival
	for i := 0; i < 100; i++ {
		base := float64(i) * 10
		arr = append(arr,
			Arrival{Time: base, UE: uint64(i), Type: events.Attach},
			Arrival{Time: base + 5, UE: uint64(i), Type: events.S1ConnRel})
	}
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Time < arr[j].Time })
	rep, err := RunStream(events.Gen4G, src(arr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := (cfg.ServiceCost[events.Attach] + cfg.ServiceCost[events.S1ConnRel]) / 2
	if math.Abs(rep.MeanLatencySec-wantMean) > 1e-12 {
		t.Fatalf("mean latency %v, want exactly %v", rep.MeanLatencySec, wantMean)
	}
	// Every latency is one of {0.003, 0.020}; p95/p99 must bracket the
	// larger cost from above within one bucket.
	bucket := math.Pow(10, 1.0/16)
	for _, q := range []float64{rep.P95LatencySec, rep.P99LatencySec} {
		if q < 0.020 || q > 0.020*bucket {
			t.Fatalf("quantile %v outside [0.020, %v]", q, 0.020*bucket)
		}
	}
}

func TestRunStreamRejectsOutOfOrder(t *testing.T) {
	src := &sliceSource{arr: []Arrival{
		{Time: 10, UE: 0, Type: events.Attach},
		{Time: 5, UE: 1, Type: events.Attach},
	}}
	if _, err := RunStream(events.Gen4G, src, DefaultConfig()); err == nil {
		t.Fatal("out-of-order arrivals must error")
	}
}

// Window-boundary resizing: a hot first window followed by silence must
// scale the pool up at the boundary and back down across the empty windows,
// with every resize recorded at a window edge.
func TestAutoscalerWindowBoundaryResizing(t *testing.T) {
	var arr []Arrival
	// 2000 attach/rel pairs in [0, 10): far above one instance's capacity.
	for i := 0; i < 2000; i++ {
		tt := float64(i) * 0.005
		arr = append(arr,
			Arrival{Time: tt, UE: uint64(i), Type: events.Attach},
			Arrival{Time: tt + 0.002, UE: uint64(i), Type: events.S1ConnRel})
	}
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Time < arr[j].Time })
	// One straggler far later forces several idle windows to close.
	arr = append(arr, Arrival{Time: 100, UE: 999999, Type: events.Attach})

	cfg := DefaultConfig()
	cfg.BaseInstances = 1
	cfg.Window = 10
	rep, err := RunStream(events.Gen4G, src(arr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxInstancesUsed <= 1 {
		t.Fatalf("burst did not scale the pool: %+v", rep)
	}
	// The pool must have shrunk back to BaseInstances across the idle
	// windows before the straggler.
	if rep.FinalInstances != cfg.BaseInstances {
		t.Fatalf("pool did not shrink during idle windows: final %d", rep.FinalInstances)
	}
	// Instance counts only change window-to-window, and window starts are
	// spaced exactly one Window apart.
	for i := 1; i < len(rep.Windows); i++ {
		if got := rep.Windows[i].Start - rep.Windows[i-1].Start; math.Abs(got-cfg.Window) > 1e-9 {
			t.Fatalf("window %d starts %.3f after its predecessor, want %.1f", i, got, cfg.Window)
		}
	}
}

// TargetUtil near its (0,1) edges: a near-zero set-point means any load
// overshoots the target and the pool slams to MaxInstances; a near-one
// set-point tolerates the same load with (almost) no scaling.
func TestAutoscalerTargetUtilEdges(t *testing.T) {
	var arr []Arrival
	for i := 0; i < 500; i++ {
		tt := float64(i) * 0.05
		arr = append(arr,
			Arrival{Time: tt, UE: uint64(i), Type: events.Attach},
			Arrival{Time: tt + 0.01, UE: uint64(i), Type: events.S1ConnRel})
	}
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Time < arr[j].Time })

	cfg := DefaultConfig()
	cfg.BaseInstances = 1
	cfg.Window = 5

	for _, bad := range []float64{0, 1, -0.1, 1.1} {
		c := cfg
		c.TargetUtil = bad
		if err := c.Validate(); err == nil {
			t.Fatalf("TargetUtil %v must be rejected", bad)
		}
	}

	low := cfg
	low.TargetUtil = 0.001
	repLow, err := RunStream(events.Gen4G, src(arr), low)
	if err != nil {
		t.Fatal(err)
	}
	if repLow.MaxInstancesUsed != cfg.MaxInstances {
		t.Fatalf("TargetUtil≈0 must drive the pool to MaxInstances, got %d", repLow.MaxInstancesUsed)
	}

	high := cfg
	high.TargetUtil = 0.999
	repHigh, err := RunStream(events.Gen4G, src(arr), high)
	if err != nil {
		t.Fatal(err)
	}
	if repHigh.MaxInstancesUsed >= repLow.MaxInstancesUsed {
		t.Fatalf("TargetUtil≈1 scaled as hard as ≈0: %d vs %d", repHigh.MaxInstancesUsed, repLow.MaxInstancesUsed)
	}
}

// Rejection accounting over a merged, time-ordered multi-UE sequence: UE
// state must be tracked per UE key, not per position, so interleaving must
// not change which events are rejected.
func TestRejectionAccountingMergedInput(t *testing.T) {
	// UE 1 is valid throughout; UE 2 double-sends SRV_REQ while connected
	// (1 rejection) and detaches from idle (valid).
	arr := []Arrival{
		{Time: 0, UE: 1, Type: events.Attach},
		{Time: 0.5, UE: 2, Type: events.Attach},
		{Time: 1, UE: 1, Type: events.S1ConnRel},
		{Time: 1.5, UE: 2, Type: events.S1ConnRel},
		{Time: 2, UE: 1, Type: events.ServiceRequest},
		{Time: 2.5, UE: 2, Type: events.ServiceRequest},
		{Time: 2.6, UE: 2, Type: events.ServiceRequest}, // invalid: already connected
		{Time: 3, UE: 1, Type: events.S1ConnRel},
		{Time: 3.5, UE: 2, Type: events.S1ConnRel},
		{Time: 4, UE: 2, Type: events.Detach},
	}
	rep, err := RunStream(events.Gen4G, src(arr), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 {
		t.Fatalf("rejected %d, want exactly 1", rep.Rejected)
	}
	if rep.Events != len(arr) {
		t.Fatalf("processed %d arrivals, want %d", rep.Events, len(arr))
	}
	if rep.UEs != 2 {
		t.Fatalf("saw %d UEs, want 2", rep.UEs)
	}
	if rep.PeakConnectedUEs != 2 {
		t.Fatalf("peak connected %d, want 2", rep.PeakConnectedUEs)
	}
}

func src(arr []Arrival) *sliceSource { return &sliceSource{arr: arr} }

// TestLiveStatsMatchFinalReport runs the simulator with live publication
// enabled and checks (a) that the live counters end exactly on the report's
// numbers and (b) that a concurrent reader observes monotone progress while
// the run is in flight.
func TestLiveStatsMatchFinalReport(t *testing.T) {
	d := workload(t, 200)
	cfg := DefaultConfig()
	live := &LiveStats{}
	cfg.Live = live

	progress := make(chan int64, 1)
	src := newDatasetSource(d)
	// Wrap the source so the reader goroutine gets a window to observe a
	// mid-run value: sample the live counter from inside the stream.
	probe := &probeSource{src: src, at: int64(d.NumEvents() / 2), live: live, out: progress}
	rep, err := RunStream(d.Generation, probe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mid := <-progress; mid <= 0 || mid > int64(rep.Events) {
		t.Fatalf("mid-run live events = %d, want in (0, %d]", mid, rep.Events)
	}
	if got := live.Events.Load(); got != int64(rep.Events) {
		t.Fatalf("live events = %d, report %d", got, rep.Events)
	}
	if got := live.Rejected.Load(); got != int64(rep.Rejected) {
		t.Fatalf("live rejected = %d, report %d", got, rep.Rejected)
	}
	if got := live.UEs.Load(); got != int64(rep.UEs) {
		t.Fatalf("live UEs = %d, report %d", got, rep.UEs)
	}
	if got := live.Instances.Load(); got != int64(rep.FinalInstances) {
		t.Fatalf("live instances = %d, report %d", got, rep.FinalInstances)
	}
	if got := float64(live.P95LatencyNanos.Load()) / 1e9; math.Abs(got-rep.P95LatencySec) > 2e-9 {
		t.Fatalf("live p95 = %v, report %v", got, rep.P95LatencySec)
	}
	if got := float64(live.P99LatencyNanos.Load()) / 1e9; math.Abs(got-rep.P99LatencySec) > 2e-9 {
		t.Fatalf("live p99 = %v, report %v", got, rep.P99LatencySec)
	}
	if got := float64(live.MeanLatencyNanos.Load()) / 1e9; math.Abs(got-rep.MeanLatencySec) > 2e-9 {
		t.Fatalf("live mean = %v, report %v", got, rep.MeanLatencySec)
	}

	// Live publication must not change the simulation itself.
	cfg.Live = nil
	rep2, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Events != rep.Events || rep2.Rejected != rep.Rejected || rep2.P99LatencySec != rep.P99LatencySec {
		t.Fatalf("Live changed the simulation: %+v vs %+v", rep2, rep)
	}
}

// probeSource passes arrivals through and snapshots a live counter once,
// mid-stream — proof the stats are readable while the run is in flight.
type probeSource struct {
	src  ArrivalSource
	n    int64
	at   int64
	live *LiveStats
	out  chan int64
}

func (p *probeSource) NextArrival() (Arrival, bool, error) {
	p.n++
	if p.n == p.at {
		p.out <- p.live.Events.Load()
	}
	return p.src.NextArrival()
}
