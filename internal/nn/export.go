package nn

// Inference weight export: frozen float32 snapshots of trained layers for
// the decode fast path. Training keeps float64 (the optimizer's precision
// contract is bit-exactness across batching), but autoregressive decoding is
// read-only and memory-bandwidth bound, so a one-time conversion into
// contiguous float32 panels roughly halves the traffic of every step.
//
// Linear weights are exported *transposed* (out×in, row-major) so the
// inference matvec (tensor.MatVecF32) walks each output's weights with unit
// stride. The snapshots share no storage with the live parameters: they are
// value copies, safe to read from any number of goroutines while the source
// model stays untouched.

// LinearF32 is a frozen float32 snapshot of a Linear layer. WT is the
// transposed out×in weight panel (output j's weights are the contiguous row
// WT[j*In:(j+1)*In]); B is the bias.
type LinearF32 struct {
	In, Out int
	WT      []float32
	B       []float32
}

// ExportF32 freezes the layer into a transposed float32 panel.
func (l *Linear) ExportF32() LinearF32 {
	in, out := l.W.Rows, l.W.Cols
	e := LinearF32{In: in, Out: out, WT: make([]float32, in*out), B: make([]float32, out)}
	for k := 0; k < in; k++ {
		row := l.W.Data[k*out : (k+1)*out]
		for j, w := range row {
			e.WT[j*in+k] = float32(w)
		}
	}
	for j, b := range l.B.Data {
		e.B[j] = float32(b)
	}
	return e
}

// LayerNormF32 is a frozen float32 snapshot of a LayerNorm.
type LayerNormF32 struct {
	Gain, Bias []float32
	Eps        float64
}

// ExportF32 freezes the layer norm's gain and bias.
func (l *LayerNorm) ExportF32() LayerNormF32 {
	e := LayerNormF32{
		Gain: make([]float32, len(l.Gain.Data)),
		Bias: make([]float32, len(l.Bias.Data)),
		Eps:  l.Eps,
	}
	for i, g := range l.Gain.Data {
		e.Gain[i] = float32(g)
	}
	for i, b := range l.Bias.Data {
		e.Bias[i] = float32(b)
	}
	return e
}

// MLPF32 is a frozen float32 snapshot of an MLP (ReLU between layers).
type MLPF32 struct {
	Layers []LinearF32
}

// ExportF32 freezes every layer of the MLP.
func (m *MLP) ExportF32() MLPF32 {
	e := MLPF32{Layers: make([]LinearF32, len(m.Layers))}
	for i, l := range m.Layers {
		e.Layers[i] = l.ExportF32()
	}
	return e
}
