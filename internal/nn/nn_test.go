package nn

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"cptgpt/internal/tensor"
)

func newRNG() *rand.Rand { return rand.New(rand.NewPCG(7, 8)) }

// checkModuleGrads numerically verifies gradients of every parameter of a
// module under the given scalar loss.
func checkModuleGrads(t *testing.T, name string, params []*tensor.Tensor, loss func() *tensor.Tensor) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	loss().Backward()
	const h = 1e-6
	for pi, p := range params {
		analytic := make([]float64, len(p.Data))
		if p.Grad != nil {
			copy(analytic, p.Grad)
		}
		// Check a few sampled elements per parameter to keep runtime sane.
		step := len(p.Data)/5 + 1
		for i := 0; i < len(p.Data); i += step {
			orig := p.Data[i]
			p.Data[i] = orig + h
			up := loss().Data[0]
			p.Data[i] = orig - h
			down := loss().Data[0]
			p.Data[i] = orig
			numeric := (up - down) / (2 * h)
			diff := math.Abs(analytic[i] - numeric)
			scale := math.Max(1, math.Max(math.Abs(analytic[i]), math.Abs(numeric)))
			if diff/scale > 2e-4 {
				t.Fatalf("%s: param %d elem %d: analytic %g vs numeric %g", name, pi, i, analytic[i], numeric)
			}
		}
	}
}

func TestLinearForward(t *testing.T) {
	l := &Linear{
		W: tensor.FromSlice(2, 2, []float64{1, 2, 3, 4}).Param(),
		B: tensor.FromSlice(1, 2, []float64{10, 20}).Param(),
	}
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	y := l.Forward(x)
	if y.Data[0] != 14 || y.Data[1] != 26 {
		t.Fatalf("Linear forward = %v, want [14 26]", y.Data)
	}
}

func TestAttentionGrads(t *testing.T) {
	rng := newRNG()
	att := NewCausalSelfAttention(8, 2, rng)
	x := tensor.Randn(5, 8, 1, rng).Param()
	params := append(att.Params(), x)
	checkModuleGrads(t, "attention", params, func() *tensor.Tensor {
		return tensor.Mean(att.Forward(x))
	})
}

func TestBlockGrads(t *testing.T) {
	rng := newRNG()
	b := NewBlock(8, 2, 16, rng)
	x := tensor.Randn(4, 8, 1, rng).Param()
	params := append(b.Params(), x)
	checkModuleGrads(t, "block", params, func() *tensor.Tensor {
		return tensor.Mean(b.Forward(x))
	})
}

func TestAttentionCausality(t *testing.T) {
	rng := newRNG()
	att := NewCausalSelfAttention(8, 2, rng)
	x := tensor.Randn(6, 8, 1, rng)
	y1 := att.Forward(x)

	// Perturb a *future* position; earlier outputs must not change.
	x2 := tensor.FromSlice(6, 8, append([]float64(nil), x.Data...))
	for j := 0; j < 8; j++ {
		x2.Set(5, j, x2.At(5, j)+3)
	}
	y2 := att.Forward(x2)
	for r := 0; r < 5; r++ {
		for c := 0; c < 8; c++ {
			if math.Abs(y1.At(r, c)-y2.At(r, c)) > 1e-12 {
				t.Fatalf("future token leaked into position %d", r)
			}
		}
	}
}

func TestLSTMGrads(t *testing.T) {
	rng := newRNG()
	cell := NewLSTMCell(4, 6, rng)
	x1 := tensor.Randn(2, 4, 1, rng)
	x2 := tensor.Randn(2, 4, 1, rng)
	checkModuleGrads(t, "lstm", cell.Params(), func() *tensor.Tensor {
		h, c := cell.ZeroState(2)
		h, c = cell.Step(x1, h, c)
		h, _ = cell.Step(x2, h, c)
		return tensor.Mean(h)
	})
}

func TestLSTMStateShapes(t *testing.T) {
	rng := newRNG()
	cell := NewLSTMCell(3, 5, rng)
	h, c := cell.ZeroState(4)
	x := tensor.Randn(4, 3, 1, rng)
	h2, c2 := cell.Step(x, h, c)
	if h2.Rows != 4 || h2.Cols != 5 || c2.Rows != 4 || c2.Cols != 5 {
		t.Fatalf("LSTM state shapes: h %dx%d c %dx%d", h2.Rows, h2.Cols, c2.Rows, c2.Cols)
	}
}

func TestMLPGrads(t *testing.T) {
	rng := newRNG()
	m := NewMLP(rng, 4, 8, 2)
	x := tensor.Randn(3, 4, 1, rng)
	checkModuleGrads(t, "mlp", m.Params(), func() *tensor.Tensor {
		return tensor.Mean(m.Forward(x))
	})
}

func TestAdamReducesLoss(t *testing.T) {
	rng := newRNG()
	// Fit y = 2x + 1 with a single linear layer.
	l := NewLinear(1, 1, rng)
	opt := NewAdam(l.Params(), 0.05)
	xs := tensor.FromSlice(8, 1, []float64{-2, -1.5, -1, -0.5, 0.5, 1, 1.5, 2})
	ys := make([]float64, 8)
	mask := make([]bool, 8)
	for i, x := range xs.Data {
		ys[i] = 2*x + 1
		mask[i] = true
	}
	var first, last float64
	for step := 0; step < 200; step++ {
		opt.ZeroGrads()
		loss := tensor.MSE(l.Forward(xs), ys, mask)
		if step == 0 {
			first = loss.Data[0]
		}
		last = loss.Data[0]
		loss.Backward()
		opt.Step()
	}
	if last > first/100 {
		t.Fatalf("Adam failed to fit line: first %v last %v", first, last)
	}
	if math.Abs(l.W.Data[0]-2) > 0.05 || math.Abs(l.B.Data[0]-1) > 0.05 {
		t.Fatalf("fitted W=%v B=%v, want 2 and 1", l.W.Data[0], l.B.Data[0])
	}
}

func TestAdamClipsGradients(t *testing.T) {
	p := tensor.FromSlice(1, 2, []float64{0, 0}).Param()
	p.Grad = []float64{100, 100}
	opt := NewAdam([]*tensor.Tensor{p}, 0.1)
	if n := opt.GradNorm(); math.Abs(n-math.Sqrt(20000)) > 1e-9 {
		t.Fatalf("GradNorm = %v", n)
	}
	opt.Step()
	// With clipping, the first Adam step magnitude is ≈ LR regardless of
	// raw gradient scale.
	for _, v := range p.Data {
		if math.Abs(v) > 0.2 {
			t.Fatalf("clipped step too large: %v", v)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := newRNG()
	m1 := NewMLP(rng, 3, 5, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params(), map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(newRNG(), 3, 5, 2)
	// Perturb m2 so the load visibly restores m1's values.
	m2.Layers[0].W.Data[0] += 5
	meta, err := LoadParams(&buf, m2.Params())
	if err != nil {
		t.Fatal(err)
	}
	if meta["k"] != "v" {
		t.Fatalf("meta round-trip: %v", meta)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Data {
			if p1[i].Data[j] != p2[i].Data[j] {
				t.Fatalf("param %d elem %d differs after load", i, j)
			}
		}
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	rng := newRNG()
	m1 := NewMLP(rng, 3, 5, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params(), nil); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(rng, 3, 6, 2) // different hidden size
	if _, err := LoadParams(&buf, m2.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestCopyParams(t *testing.T) {
	rng := newRNG()
	a := NewMLP(rng, 2, 3, 1)
	b := NewMLP(rng, 2, 3, 1)
	if err := CopyParams(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatal("CopyParams did not copy")
			}
		}
	}
	c := NewMLP(rng, 2, 4, 1)
	if err := CopyParams(c.Params(), a.Params()); err == nil {
		t.Fatal("expected error for mismatched shapes")
	}
}

func TestNumParams(t *testing.T) {
	rng := newRNG()
	m := NewMLP(rng, 3, 5, 2) // 3*5+5 + 5*2+2 = 32
	if n := NumParams(m.Params()); n != 32 {
		t.Fatalf("NumParams = %d, want 32", n)
	}
}
