package nn

import (
	"testing"

	"cptgpt/internal/stats"
)

func TestLinearExportF32Transposes(t *testing.T) {
	rng := stats.NewRand(5)
	l := NewLinear(7, 4, rng)
	e := l.ExportF32()
	if e.In != 7 || e.Out != 4 || len(e.WT) != 28 || len(e.B) != 4 {
		t.Fatalf("bad export shape: %+v", e)
	}
	for k := 0; k < e.In; k++ {
		for j := 0; j < e.Out; j++ {
			if e.WT[j*e.In+k] != float32(l.W.Data[k*e.Out+j]) {
				t.Fatalf("WT[%d,%d] = %v, want float32(W[%d,%d]) = %v",
					j, k, e.WT[j*e.In+k], k, j, float32(l.W.Data[k*e.Out+j]))
			}
		}
	}
	// Snapshot must not alias the live parameters.
	before := e.WT[0]
	l.W.Data[0] += 1
	if e.WT[0] != before {
		t.Fatal("export aliases live weights")
	}
}

func TestLayerNormAndMLPExportF32(t *testing.T) {
	rng := stats.NewRand(6)
	ln := NewLayerNorm(5)
	ln.Gain.Data[2] = 1.5
	ln.Bias.Data[3] = -0.25
	le := ln.ExportF32()
	if le.Eps != ln.Eps || le.Gain[2] != 1.5 || le.Bias[3] != -0.25 {
		t.Fatalf("layer norm export mismatch: %+v", le)
	}

	m := NewMLP(rng, 6, 8, 3)
	me := m.ExportF32()
	if len(me.Layers) != 2 || me.Layers[0].In != 6 || me.Layers[0].Out != 8 || me.Layers[1].Out != 3 {
		t.Fatalf("mlp export shape mismatch: %+v", me)
	}
}
