package nn

import (
	"path/filepath"
	"testing"

	"cptgpt/internal/tensor"
)

func TestCheckpointFileRoundTrip(t *testing.T) {
	rng := newRNG()
	m1 := NewMLP(rng, 4, 8, 2)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := SaveParamsFile(path, m1.Params(), map[string]string{"epoch": "3"}); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(newRNG(), 4, 8, 2)
	m2.Layers[0].W.Data[0] = 99
	meta, err := LoadParamsFile(path, m2.Params())
	if err != nil {
		t.Fatal(err)
	}
	if meta["epoch"] != "3" {
		t.Fatalf("meta %v", meta)
	}
	if m2.Layers[0].W.Data[0] == 99 {
		t.Fatal("load did not restore values")
	}
}

func TestLoadParamsFileMissing(t *testing.T) {
	m := NewMLP(newRNG(), 2, 2)
	if _, err := LoadParamsFile(filepath.Join(t.TempDir(), "nope.bin"), m.Params()); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestBlockForwardShapePreserved(t *testing.T) {
	rng := newRNG()
	b := NewBlock(16, 4, 32, rng)
	x := tensor.Randn(7, 16, 1, rng)
	y := b.Forward(x)
	if y.Rows != 7 || y.Cols != 16 {
		t.Fatalf("block output %dx%d", y.Rows, y.Cols)
	}
}
