package nn

import (
	"math"

	"cptgpt/internal/tensor"
)

// Adam implements the Adam optimizer with optional global-norm gradient
// clipping, operating over a fixed parameter list captured at construction.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // ≤ 0 disables clipping

	params []*tensor.Tensor
	m      [][]float64
	v      [][]float64
	t      int
}

// NewAdam creates an Adam optimizer over params with the given learning
// rate, default betas (0.9, 0.999), eps 1e-8 and clip norm 1.0.
func NewAdam(params []*tensor.Tensor, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 1.0,
		params: params,
		m:      make([][]float64, len(params)),
		v:      make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, p.Numel())
		a.v[i] = make([]float64, p.Numel())
	}
	return a
}

// GradNorm returns the global L2 norm of all parameter gradients.
func (a *Adam) GradNorm() float64 {
	var sq float64
	for _, p := range a.params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// Step applies one Adam update using the accumulated gradients, then leaves
// gradients intact (call ZeroGrads before the next backward pass).
func (a *Adam) Step() {
	a.t++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / (n + 1e-12)
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		grad, data := p.Grad, p.Data
		// The update is elementwise (the only cross-element coupling, the
		// clip norm, is already folded into scale), so sharding it across
		// the tensor worker pool changes nothing about the result.
		tensor.ParallelFor(len(grad), 16, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				g := grad[j] * scale
				m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
				v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
				data[j] -= a.LR * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.Eps)
			}
		})
	}
}

// ZeroGrads clears all parameter gradients.
func (a *Adam) ZeroGrads() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// StepCount returns the number of optimizer steps taken so far.
func (a *Adam) StepCount() int { return a.t }
