package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"cptgpt/internal/tensor"
)

// paramBlob is the gob wire form of one parameter tensor.
type paramBlob struct {
	Rows, Cols int
	Data       []float64
}

// checkpoint is the gob wire form of a full parameter set plus arbitrary
// model metadata supplied by the caller.
type checkpoint struct {
	Magic  string
	Meta   map[string]string
	Params []paramBlob
}

const checkpointMagic = "cptgpt-nn/1"

// SaveParams serializes params (in order) and meta to w.
func SaveParams(w io.Writer, params []*tensor.Tensor, meta map[string]string) error {
	ck := checkpoint{Magic: checkpointMagic, Meta: meta}
	for _, p := range params {
		ck.Params = append(ck.Params, paramBlob{Rows: p.Rows, Cols: p.Cols, Data: p.Data})
	}
	if err := gob.NewEncoder(w).Encode(&ck); err != nil {
		return fmt.Errorf("nn: encoding checkpoint: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint from r and copies the stored values into
// params, which must match the stored shapes in order. It returns the
// stored metadata.
func LoadParams(r io.Reader, params []*tensor.Tensor) (map[string]string, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if ck.Magic != checkpointMagic {
		return nil, fmt.Errorf("nn: bad checkpoint magic %q", ck.Magic)
	}
	if len(ck.Params) != len(params) {
		return nil, fmt.Errorf("nn: checkpoint has %d parameters, model has %d", len(ck.Params), len(params))
	}
	for i, b := range ck.Params {
		p := params[i]
		if b.Rows != p.Rows || b.Cols != p.Cols {
			return nil, fmt.Errorf("nn: parameter %d shape mismatch: checkpoint %d×%d, model %d×%d",
				i, b.Rows, b.Cols, p.Rows, p.Cols)
		}
		copy(p.Data, b.Data)
	}
	return ck.Meta, nil
}

// SaveParamsFile writes a checkpoint to path.
func SaveParamsFile(path string, params []*tensor.Tensor, meta map[string]string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return SaveParams(f, params, meta)
}

// LoadParamsFile reads a checkpoint from path into params.
func LoadParamsFile(path string, params []*tensor.Tensor) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: opening %s: %w", path, err)
	}
	defer f.Close()
	return LoadParams(f, params)
}

// CopyParams copies values from src parameters into dst (shape-checked) —
// the warm-start primitive behind transfer learning (Design 3).
func CopyParams(dst, src []*tensor.Tensor) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: CopyParams count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if dst[i].Rows != src[i].Rows || dst[i].Cols != src[i].Cols {
			return fmt.Errorf("nn: CopyParams shape mismatch at %d: %d×%d vs %d×%d",
				i, dst[i].Rows, dst[i].Cols, src[i].Rows, src[i].Cols)
		}
		copy(dst[i].Data, src[i].Data)
	}
	return nil
}

// NumParams returns the total scalar parameter count of params.
func NumParams(params []*tensor.Tensor) int {
	var n int
	for _, p := range params {
		n += p.Numel()
	}
	return n
}
