// Package nn provides the neural-network layers, optimizer and checkpoint
// machinery shared by the CPT-GPT transformer and the NetShare GAN/LSTM
// baseline: linear and layer-norm layers, causal multi-head self-attention,
// transformer decoder blocks, an LSTM cell, Adam with gradient clipping,
// and gob-based parameter (de)serialization.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"cptgpt/internal/tensor"
)

// Module is anything exposing trainable parameters in a stable order.
type Module interface {
	Params() []*tensor.Tensor
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *tensor.Tensor // in×out
	B *tensor.Tensor // 1×out
}

// NewLinear creates a Linear with Xavier/Glorot-normal initialization.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: tensor.Randn(in, out, std, rng).Param(),
		B: tensor.New(1, out).Param(),
	}
}

// Forward applies the layer to x (n×in) returning n×out.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Add(tensor.MatMul(x, l.W), l.B)
}

// Params returns [W, B].
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// LayerNorm is a row-wise layer normalization with learned gain and bias.
type LayerNorm struct {
	Gain *tensor.Tensor
	Bias *tensor.Tensor
	Eps  float64
}

// NewLayerNorm creates a LayerNorm over dim columns (gain 1, bias 0).
func NewLayerNorm(dim int) *LayerNorm {
	g := tensor.New(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{Gain: g.Param(), Bias: tensor.New(1, dim).Param(), Eps: 1e-5}
}

// Forward normalizes x row-wise.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Params returns [Gain, Bias].
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gain, l.Bias} }

// CausalSelfAttention is multi-head scaled dot-product attention with a
// causal mask, operating on a T×d sequence (one stream at a time, matching
// the paper's per-UE stream inference).
type CausalSelfAttention struct {
	Heads int
	Dim   int
	Wq    *Linear
	Wk    *Linear
	Wv    *Linear
	Wo    *Linear
}

// NewCausalSelfAttention creates attention over dim columns split across
// heads; dim must be divisible by heads.
func NewCausalSelfAttention(dim, heads int, rng *rand.Rand) *CausalSelfAttention {
	if heads <= 0 || dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by heads %d", dim, heads))
	}
	return &CausalSelfAttention{
		Heads: heads,
		Dim:   dim,
		Wq:    NewLinear(dim, dim, rng),
		Wk:    NewLinear(dim, dim, rng),
		Wv:    NewLinear(dim, dim, rng),
		Wo:    NewLinear(dim, dim, rng),
	}
}

// Forward computes attention over x (T×dim) and returns T×dim.
func (a *CausalSelfAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	heads := make([]*tensor.Tensor, a.Heads)
	for h := 0; h < a.Heads; h++ {
		lo, hi := h*dh, (h+1)*dh
		qh := tensor.SliceCols(q, lo, hi)
		kh := tensor.SliceCols(k, lo, hi)
		vh := tensor.SliceCols(v, lo, hi)
		scores := tensor.Scale(tensor.MatMul(qh, tensor.Transpose(kh)), scale)
		att := tensor.CausalSoftmax(scores)
		heads[h] = tensor.MatMul(att, vh)
	}
	return a.Wo.Forward(tensor.ConcatCols(heads...))
}

// ForwardPacked computes attention over a packed minibatch: x is the
// row-wise concatenation of B independent sequences ("segments") and bounds
// holds the B+1 segment offsets (bounds[s] .. bounds[s+1] is segment s).
// The effective mask is block-diagonal causal — position i attends only to
// j ≤ i within its own segment — realized segment-wise so the cross-segment
// score blocks (all zero under the mask) are never materialized; the cost
// stays Σ Tₛ² instead of (Σ Tₛ)².
//
// The Q/K/V/O projections run once over the whole packed batch, which is
// where the minibatch speedup comes from; per-segment results are
// bit-identical to running Forward on each segment alone.
func (a *CausalSelfAttention) ForwardPacked(x *tensor.Tensor, bounds []int) *tensor.Tensor {
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != x.Rows {
		panic(fmt.Sprintf("nn: ForwardPacked bounds %v do not cover %d rows", bounds, x.Rows))
	}
	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	segs := len(bounds) - 1
	heads := make([]*tensor.Tensor, a.Heads)
	parts := make([]*tensor.Tensor, segs)
	for h := 0; h < a.Heads; h++ {
		lo, hi := h*dh, (h+1)*dh
		qh := tensor.SliceCols(q, lo, hi)
		kh := tensor.SliceCols(k, lo, hi)
		vh := tensor.SliceCols(v, lo, hi)
		for s := 0; s < segs; s++ {
			sl, sh := bounds[s], bounds[s+1]
			if sl >= sh {
				panic(fmt.Sprintf("nn: ForwardPacked empty segment %d", s))
			}
			qs := tensor.SliceRows(qh, sl, sh)
			ks := tensor.SliceRows(kh, sl, sh)
			vs := tensor.SliceRows(vh, sl, sh)
			scores := tensor.Scale(tensor.MatMul(qs, tensor.Transpose(ks)), scale)
			parts[s] = tensor.MatMul(tensor.CausalSoftmax(scores), vs)
		}
		if segs == 1 {
			heads[h] = parts[0]
		} else {
			heads[h] = tensor.ConcatRows(parts...)
		}
	}
	return a.Wo.Forward(tensor.ConcatCols(heads...))
}

// Params returns the projection parameters.
func (a *CausalSelfAttention) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, m := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// FeedForward is the position-wise MLP of a transformer block
// (Linear → GELU → Linear).
type FeedForward struct {
	In  *Linear
	Out *Linear
}

// NewFeedForward creates an MLP dim → hidden → dim.
func NewFeedForward(dim, hidden int, rng *rand.Rand) *FeedForward {
	return &FeedForward{In: NewLinear(dim, hidden, rng), Out: NewLinear(hidden, dim, rng)}
}

// Forward applies the MLP row-wise.
func (f *FeedForward) Forward(x *tensor.Tensor) *tensor.Tensor {
	return f.Out.Forward(tensor.GELU(f.In.Forward(x)))
}

// Params returns the two linear layers' parameters.
func (f *FeedForward) Params() []*tensor.Tensor {
	return append(f.In.Params(), f.Out.Params()...)
}

// Block is a pre-norm transformer decoder block:
// x ← x + Attn(LN₁(x)); x ← x + FF(LN₂(x)).
type Block struct {
	LN1  *LayerNorm
	Attn *CausalSelfAttention
	LN2  *LayerNorm
	FF   *FeedForward
}

// NewBlock creates a decoder block with the given width, head count and MLP
// hidden size (the paper's model uses 2 blocks, width 128, hidden 1024).
func NewBlock(dim, heads, hidden int, rng *rand.Rand) *Block {
	return &Block{
		LN1:  NewLayerNorm(dim),
		Attn: NewCausalSelfAttention(dim, heads, rng),
		LN2:  NewLayerNorm(dim),
		FF:   NewFeedForward(dim, hidden, rng),
	}
}

// Forward applies the block to x (T×dim).
func (b *Block) Forward(x *tensor.Tensor) *tensor.Tensor {
	x = tensor.Add(x, b.Attn.Forward(b.LN1.Forward(x)))
	return tensor.Add(x, b.FF.Forward(b.LN2.Forward(x)))
}

// ForwardPacked applies the block to a packed minibatch of segments (see
// CausalSelfAttention.ForwardPacked). LayerNorm and the MLP are row-wise, so
// only attention needs the segment bounds.
func (b *Block) ForwardPacked(x *tensor.Tensor, bounds []int) *tensor.Tensor {
	x = tensor.Add(x, b.Attn.ForwardPacked(b.LN1.Forward(x), bounds))
	return tensor.Add(x, b.FF.Forward(b.LN2.Forward(x)))
}

// Params returns all block parameters.
func (b *Block) Params() []*tensor.Tensor {
	ps := b.LN1.Params()
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.FF.Params()...)
	return ps
}

// MLP is a general multi-layer perceptron with ReLU activations between
// layers, used by the output heads and the GAN discriminator.
type MLP struct {
	Layers []*Linear
}

// NewMLP creates an MLP through the given layer sizes, e.g. (9, 64, 1).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
	}
	return m
}

// Forward applies the MLP with ReLU between layers (none after the last).
func (m *MLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = tensor.ReLU(x)
		}
	}
	return x
}

// Params returns all layer parameters.
func (m *MLP) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// LSTMCell is a standard long short-term memory cell. It is the sequence
// model of the NetShare baseline (the paper's L4 discusses its forgetting
// behaviour over long streams).
type LSTMCell struct {
	In     int
	Hidden int
	Wx     *tensor.Tensor // In×4H, gate order [i f g o]
	Wh     *tensor.Tensor // H×4H
	B      *tensor.Tensor // 1×4H
}

// NewLSTMCell creates an LSTM cell with forget-gate bias initialized to 1.
func NewLSTMCell(in, hidden int, rng *rand.Rand) *LSTMCell {
	std := math.Sqrt(1.0 / float64(hidden))
	c := &LSTMCell{
		In:     in,
		Hidden: hidden,
		Wx:     tensor.Randn(in, 4*hidden, std, rng).Param(),
		Wh:     tensor.Randn(hidden, 4*hidden, std, rng).Param(),
		B:      tensor.New(1, 4*hidden).Param(),
	}
	for j := hidden; j < 2*hidden; j++ { // forget gate bias = 1
		c.B.Data[j] = 1
	}
	return c
}

// Step advances the cell: given input x (n×In) and state (h, c) (n×Hidden),
// it returns the next (h, c).
func (l *LSTMCell) Step(x, h, c *tensor.Tensor) (hNext, cNext *tensor.Tensor) {
	z := tensor.Add(tensor.Add(tensor.MatMul(x, l.Wx), tensor.MatMul(h, l.Wh)), l.B)
	hn := l.Hidden
	i := tensor.Sigmoid(tensor.SliceCols(z, 0, hn))
	f := tensor.Sigmoid(tensor.SliceCols(z, hn, 2*hn))
	g := tensor.Tanh(tensor.SliceCols(z, 2*hn, 3*hn))
	o := tensor.Sigmoid(tensor.SliceCols(z, 3*hn, 4*hn))
	cNext = tensor.Add(tensor.Mul(f, c), tensor.Mul(i, g))
	hNext = tensor.Mul(o, tensor.Tanh(cNext))
	return hNext, cNext
}

// ZeroState returns zero-valued (h, c) for a batch of n sequences.
func (l *LSTMCell) ZeroState(n int) (h, c *tensor.Tensor) {
	return tensor.New(n, l.Hidden), tensor.New(n, l.Hidden)
}

// Params returns [Wx, Wh, B].
func (l *LSTMCell) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Wx, l.Wh, l.B} }
