package netshare

import (
	"fmt"
	"math"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/nn"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// TrainOpts tunes a GAN training run.
type TrainOpts struct {
	// Epochs overrides Config.Epochs when > 0.
	Epochs int
	// LR overrides Config.LR when > 0.
	LR float64
	// OnEpoch observes per-epoch mean discriminator and generator losses.
	OnEpoch func(epoch int, dLoss, gLoss float64)
	// Probe, when non-nil, is called every ProbeEvery epochs and must
	// return a fidelity score (lower is better) for the model's *current*
	// weights. Training keeps the generator checkpoint with the best score
	// and restores it at the end — the paper's checkpoint-ranking device
	// (§5.5), which it needs because GAN losses do not correlate with
	// sample quality.
	Probe func() float64
	// ProbeEvery defaults to 1 (every epoch).
	ProbeEvery int
	// Parallelism, when > 0, overrides the process-global tensor-kernel
	// parallelism for the duration of the run (results are bit-identical at
	// any setting). The GAN already trains a Config.BatchSize-packed
	// minibatch per step, so it needs no separate microbatch knob.
	Parallelism int
	// NoArena disables the per-step tensor arena (heap tape allocation);
	// results are identical either way. Benchmarking/kill-switch knob.
	NoArena bool
}

// TrainResult reports a GAN training run.
type TrainResult struct {
	Streams  int
	Steps    int
	Epochs   int
	DLoss    []float64
	GLoss    []float64
	Duration time.Duration
	// BestEpoch is the 1-based epoch whose checkpoint was kept (0 when no
	// Probe was supplied); BestScore is its probe score.
	BestEpoch int
	BestScore float64
}

// encodeStream flattens one real stream into the discriminator's input
// layout: Steps·BatchGen samples of [event one-hot | normalized ia | stop],
// padding past the end with stop=1, followed by the stream's (minLog,
// logWidth) normalization range. Per-stream min/max normalization over
// log1p(interarrival) matches DoppelGANger's scheme (the paper's L5).
func (m *Model) encodeStream(s *trace.Stream) ([]float64, error) {
	cfg := m.Cfg
	vocab := events.Vocabulary(cfg.Generation)
	v := len(vocab)
	fps := cfg.fieldsPerSample()
	total := cfg.seqDim()
	l := len(s.Events)
	if l < 2 {
		return nil, fmt.Errorf("netshare: stream %s too short (%d)", s.UEID, l)
	}
	if l > cfg.MaxLen() {
		return nil, fmt.Errorf("netshare: stream %s length %d exceeds MaxLen %d", s.UEID, l, cfg.MaxLen())
	}

	ia := s.Interarrivals()
	minLog, maxLog := math.Inf(1), math.Inf(-1)
	for _, x := range ia[1:] {
		lg := math.Log1p(math.Max(x, 0))
		if lg < minLog {
			minLog = lg
		}
		if lg > maxLog {
			maxLog = lg
		}
	}
	width := maxLog - minLog
	if width < 1e-6 {
		width = 1e-6
	}

	out := make([]float64, total)
	for i := 0; i < cfg.MaxLen(); i++ {
		base := i * fps
		if i < l {
			idx := events.VocabIndex(cfg.Generation, s.Events[i].Type)
			if idx < 0 {
				return nil, fmt.Errorf("netshare: stream %s event %d not in %s vocabulary", s.UEID, i, cfg.Generation)
			}
			out[base+idx] = 1
			if i > 0 {
				out[base+v] = (math.Log1p(math.Max(ia[i], 0)) - minLog) / width
			}
			if i == l-1 {
				out[base+v+1] = 1
			}
		} else {
			out[base+v+1] = 1 // padding keeps the stop flag raised
		}
	}
	out[total-3] = float64(l) / float64(cfg.MaxLen()) // length fraction
	out[total-2] = minLog
	out[total-1] = math.Log(width)
	return out, nil
}

// Train runs adversarial training on the dataset: alternating
// discriminator and generator steps with the non-saturating GAN loss.
func Train(m *Model, d *trace.Dataset, opts TrainOpts) (*TrainResult, error) {
	if d.Generation != m.Cfg.Generation {
		return nil, fmt.Errorf("netshare: dataset generation %s does not match model %s", d.Generation, m.Cfg.Generation)
	}
	epochs := m.Cfg.Epochs
	if opts.Epochs > 0 {
		epochs = opts.Epochs
	}
	lr := m.Cfg.LR
	if opts.LR > 0 {
		lr = opts.LR
	}
	if opts.Parallelism > 0 {
		prev := tensor.SetParallelism(opts.Parallelism)
		defer tensor.SetParallelism(prev)
	}

	var real [][]float64
	for i := range d.Streams {
		s := &d.Streams[i]
		if len(s.Events) < 2 || len(s.Events) > m.Cfg.MaxLen() {
			continue
		}
		enc, err := m.encodeStream(s)
		if err != nil {
			return nil, err
		}
		real = append(real, enc)
	}
	if len(real) == 0 {
		return nil, fmt.Errorf("netshare: no eligible training streams (need length in [2, %d])", m.Cfg.MaxLen())
	}

	dlr := m.Cfg.DLR
	if dlr <= 0 {
		dlr = lr / 4
	}
	gOpt := nn.NewAdam(m.GenParams(), lr)
	dOpt := nn.NewAdam(m.DiscParams(), dlr)
	rng := stats.NewRand(m.Cfg.Seed ^ 0xBEEF)
	res := &TrainResult{Streams: len(real)}
	start := time.Now()

	b := m.Cfg.BatchSize
	if b > len(real) {
		b = len(real)
	}
	itersPerEpoch := (len(real) + b - 1) / b
	seqDim := m.Cfg.seqDim()
	realTarget := 1.0
	if m.Cfg.LabelSmooth > 0 {
		realTarget = m.Cfg.LabelSmooth
	}
	ones := make([]float64, b)
	smooth := make([]float64, b)
	zeros := make([]float64, b)
	for i := range ones {
		ones[i] = 1
		smooth[i] = realTarget
	}

	zeroAll := func() {
		gOpt.ZeroGrads()
		dOpt.ZeroGrads()
	}

	probeEvery := opts.ProbeEvery
	if probeEvery <= 0 {
		probeEvery = 1
	}
	var bestSnap [][]float64
	bestScore := math.Inf(1)

	// Both GAN steps rebuild the same tape shape every iteration, so tape
	// buffers come from a bump arena rewound once per iteration (the real
	// encodings above are heap-allocated and unaffected). The probe
	// generates with the arena detached (tensor.ArenaDetached): its
	// sampling runs tape ops on worker goroutines, and those tensors must
	// not be tied to this trainer's Reset cycle. The install is
	// ownership-gated; if another trainer holds the ambient slot this run
	// trains off the heap. Other concurrent tape work while an arena is
	// held remains unsupported — see tensor.InstallArena.
	var arena *tensor.Arena
	if !opts.NoArena {
		arena = tensor.NewArena()
		if tensor.InstallArena(arena) {
			defer tensor.UninstallArena(arena)
		} else {
			arena = nil
		}
	}

	order := make([]int, len(real))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var dSum, gSum float64
		// Instance noise decays linearly across epochs.
		noiseStd := 0.0
		if m.Cfg.InstanceNoise > 0 && epochs > 1 {
			noiseStd = m.Cfg.InstanceNoise * (1 - float64(epoch)/float64(epochs))
		}
		jitter := func(x *tensor.Tensor) *tensor.Tensor {
			if noiseStd <= 0 {
				return x
			}
			n := tensor.New(x.Rows, x.Cols)
			for i := range n.Data {
				n.Data[i] = noiseStd * rng.NormFloat64()
			}
			return tensor.Add(x, n)
		}
		for it := 0; it < itersPerEpoch; it++ {
			// Real minibatch.
			rb := tensor.New(b, seqDim)
			for r := 0; r < b; r++ {
				copy(rb.Data[r*seqDim:(r+1)*seqDim], real[order[(it*b+r)%len(real)]])
			}

			// ---- Discriminator step ----
			fake := m.generateSoft(m.sampleNoise(b, rng))
			dReal := m.Disc.Forward(m.discInput(jitter(rb)))
			dFake := m.Disc.Forward(m.discInput(jitter(fake)))
			lossD := tensor.AddScalars([]float64{0.5, 0.5},
				tensor.BCEWithLogits(dReal, smooth),
				tensor.BCEWithLogits(dFake, zeros))
			zeroAll()
			lossD.Backward()
			dOpt.Step()

			// ---- Generator step ----
			fake = m.generateSoft(m.sampleNoise(b, rng))
			lossG := tensor.BCEWithLogits(m.Disc.Forward(m.discInput(jitter(fake))), ones)
			zeroAll()
			lossG.Backward()
			gOpt.Step()
			zeroAll()

			dSum += lossD.Data[0]
			gSum += lossG.Data[0]
			res.Steps++
			if arena != nil {
				arena.Reset()
			}
		}
		res.Epochs = epoch + 1
		res.DLoss = append(res.DLoss, dSum/float64(itersPerEpoch))
		res.GLoss = append(res.GLoss, gSum/float64(itersPerEpoch))
		if opts.OnEpoch != nil {
			tensor.ArenaDetached(func() { opts.OnEpoch(epoch, res.DLoss[epoch], res.GLoss[epoch]) })
		}
		if opts.Probe != nil && (epoch+1)%probeEvery == 0 {
			var score float64
			tensor.ArenaDetached(func() { score = opts.Probe() })
			if score < bestScore {
				bestScore = score
				res.BestEpoch = epoch + 1
				bestSnap = snapshotParams(m.GenParams())
			}
		}
	}
	if bestSnap != nil {
		restoreParams(m.GenParams(), bestSnap)
		res.BestScore = bestScore
	}
	res.Duration = time.Since(start)
	return res, nil
}

// snapshotParams deep-copies parameter values.
func snapshotParams(params []*tensor.Tensor) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

// restoreParams writes snapshot values back into params.
func restoreParams(params []*tensor.Tensor, snap [][]float64) {
	for i, p := range params {
		copy(p.Data, snap[i])
	}
}

// sampleNoise draws the per-step LSTM inputs [z0 | z_t] plus the shared
// stream-level noise z0 that also drives the range head.
func (m *Model) sampleNoise(b int, rng interface{ NormFloat64() float64 }) ([]*tensor.Tensor, *tensor.Tensor) {
	nd := m.Cfg.NoiseDim
	z0 := tensor.New(b, nd)
	for j := range z0.Data {
		z0.Data[j] = rng.NormFloat64()
	}
	noise := make([]*tensor.Tensor, m.Cfg.Steps)
	for i := range noise {
		z := tensor.New(b, 2*nd)
		for r := 0; r < b; r++ {
			copy(z.Data[r*2*nd:r*2*nd+nd], z0.Data[r*nd:(r+1)*nd])
			for j := nd; j < 2*nd; j++ {
				z.Data[r*2*nd+j] = rng.NormFloat64()
			}
		}
		noise[i] = z
	}
	return noise, z0
}

// Clone deep-copies the model, the warm-start primitive used by the
// transfer-learning experiments.
func (m *Model) Clone() (*Model, error) {
	c, err := New(m.Cfg)
	if err != nil {
		return nil, err
	}
	if err := nn.CopyParams(c.GenParams(), m.GenParams()); err != nil {
		return nil, err
	}
	if err := nn.CopyParams(c.DiscParams(), m.DiscParams()); err != nil {
		return nil, err
	}
	return c, nil
}
