package netshare

import (
	"bytes"
	"math"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/trace"
)

func groundTruth(t *testing.T, seed uint64, ues int) *trace.Dataset {
	t.Helper()
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G,
		Seed:       seed,
		UEs:        map[events.DeviceType]int{events.Phone: ues},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 2
	cfg.Hidden = 24
	cfg.DiscHidden = 32
	cfg.BatchSize = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BatchGen = 0 },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.NoiseDim = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.Epochs = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if DefaultConfig().MaxLen() != 60 {
		t.Fatalf("default MaxLen %d, want 60", DefaultConfig().MaxLen())
	}
}

func TestEncodeStream(t *testing.T) {
	cfg := tinyConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &trace.Stream{UEID: "u", Device: events.Phone, Events: []trace.Event{
		{Time: 0, Type: events.Attach},
		{Time: 10, Type: events.S1ConnRel},
		{Time: 110, Type: events.ServiceRequest},
	}}
	enc, err := m.encodeStream(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != cfg.seqDim() {
		t.Fatalf("encoded length %d, want %d", len(enc), cfg.seqDim())
	}
	fps := cfg.fieldsPerSample()
	v := 6
	// Sample 0: ATCH one-hot at index 0, ia 0, stop 0.
	if enc[0] != 1 || enc[v] != 0 || enc[v+1] != 0 {
		t.Fatalf("sample 0 encoding wrong: %v", enc[:fps])
	}
	// Sample 2 is the last: stop flag must be 1.
	if enc[2*fps+v+1] != 1 {
		t.Fatal("last sample stop flag not set")
	}
	// Padding sample 3 keeps stop raised and zero features.
	if enc[3*fps+v+1] != 1 {
		t.Fatal("padding stop flag not set")
	}
	for j := 0; j < v; j++ {
		if enc[3*fps+j] != 0 {
			t.Fatal("padding event one-hot not zero")
		}
	}
	// Normalized interarrivals are in [0, 1].
	for i := 1; i < 3; i++ {
		ia := enc[i*fps+v]
		if ia < 0 || ia > 1 {
			t.Fatalf("sample %d normalized ia %v outside [0,1]", i, ia)
		}
	}
	// Length fraction feature.
	if got := enc[cfg.seqDim()-3]; math.Abs(got-3.0/60.0) > 1e-12 {
		t.Fatalf("length fraction %v", got)
	}
}

func TestEncodeStreamRejects(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	short := &trace.Stream{Events: []trace.Event{{Time: 0, Type: events.Attach}}}
	if _, err := m.encodeStream(short); err == nil {
		t.Fatal("length-1 stream must be rejected")
	}
	long := &trace.Stream{}
	for i := 0; i < m.Cfg.MaxLen()+1; i++ {
		long.Events = append(long.Events, trace.Event{Time: float64(i), Type: events.TAU})
	}
	if _, err := m.encodeStream(long); err == nil {
		t.Fatal("over-length stream must be rejected")
	}
}

func TestTrainRunsAndImproves(t *testing.T) {
	d := groundTruth(t, 1, 80)
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var epochs int
	res, err := Train(m, d, TrainOpts{OnEpoch: func(e int, dl, gl float64) { epochs++ }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 2 || epochs != 2 || res.Steps == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	if len(res.DLoss) != 2 || len(res.GLoss) != 2 {
		t.Fatal("loss histories missing")
	}
}

func TestTrainProbeKeepsBestCheckpoint(t *testing.T) {
	d := groundTruth(t, 2, 60)
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A probe that prefers the first checkpoint: later epochs score worse.
	calls := 0
	res, err := Train(m, d, TrainOpts{Probe: func() float64 {
		calls++
		return float64(calls)
	}, ProbeEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEpoch != 1 {
		t.Fatalf("best epoch %d, want 1", res.BestEpoch)
	}
	if res.BestScore != 1 {
		t.Fatalf("best score %v, want 1", res.BestScore)
	}
}

func TestGenerateStreamShape(t *testing.T) {
	d := groundTruth(t, 3, 60)
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, d, TrainOpts{}); err != nil {
		t.Fatal(err)
	}
	gen, err := m.Generate(GenOpts{NumStreams: 40, Device: events.Tablet, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gen.NumStreams() != 40 {
		t.Fatalf("generated %d streams", gen.NumStreams())
	}
	for i := range gen.Streams {
		s := &gen.Streams[i]
		if s.Device != events.Tablet {
			t.Fatal("device label lost")
		}
		if len(s.Events) == 0 || len(s.Events) > m.Cfg.MaxLen() {
			t.Fatalf("stream length %d out of bounds", len(s.Events))
		}
		last := math.Inf(-1)
		for _, e := range s.Events {
			if e.Time < last {
				t.Fatal("timestamps must not decrease")
			}
			last = e.Time
			if !e.Type.Valid() {
				t.Fatal("invalid event type")
			}
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g1, err := m.Generate(GenOpts{NumStreams: 10, Device: events.Phone, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.Generate(GenOpts{NumStreams: 10, Device: events.Phone, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Streams {
		if len(g1.Streams[i].Events) != len(g2.Streams[i].Events) {
			t.Fatal("same seed must generate identical streams")
		}
		for j := range g1.Streams[i].Events {
			if g1.Streams[i].Events[j] != g2.Streams[i].Events[j] {
				t.Fatal("same seed must generate identical events")
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g1, err := m.Generate(GenOpts{NumStreams: 5, Device: events.Phone, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m2.Generate(GenOpts{NumStreams: 5, Device: events.Phone, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Streams {
		if len(g1.Streams[i].Events) != len(g2.Streams[i].Events) {
			t.Fatal("loaded model generates differently")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c.GenParams()[0].Data[0] += 42
	if m.GenParams()[0].Data[0] == c.GenParams()[0].Data[0] {
		t.Fatal("clone shares storage")
	}
}

func TestRangeFromRawClamps(t *testing.T) {
	_, w := rangeFromRaw(0, 100)
	if w > math.Exp(5)+1 {
		t.Fatalf("width %v not clamped", w)
	}
	_, w = rangeFromRaw(0, -100)
	if w < math.Exp(-6)-1e-9 {
		t.Fatalf("width %v under-clamped", w)
	}
}

func TestTrainRejectsWrongGeneration(t *testing.T) {
	d := groundTruth(t, 7, 30)
	cfg := tinyConfig()
	cfg.Generation = events.Gen5G
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, d, TrainOpts{}); err == nil {
		t.Fatal("4G data into 5G model must error")
	}
}
