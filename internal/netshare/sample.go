package netshare

import (
	"fmt"
	"math"
	"sync"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// GenOpts parameterizes NetShare trace synthesis.
type GenOpts struct {
	// NumStreams is the UE population to synthesize.
	NumStreams int
	// Device labels the generated streams.
	Device events.DeviceType
	// Seed fixes sampling randomness.
	Seed uint64
	// Parallelism bounds sampling concurrency; 0 means the tensor-layer
	// default (GOMAXPROCS, or tensor.SetParallelism's value). Every stream
	// draws from its own index-seeded RNG, so output is identical at every
	// setting.
	Parallelism int
	// Workers is a deprecated alias for Parallelism, honored when
	// Parallelism is 0.
	Workers int
	// StartWindow, when positive, offsets each stream's start uniformly in
	// [0, StartWindow) seconds (see cptgpt.GenOpts.StartWindow).
	StartWindow float64
}

// Generate synthesizes a dataset by running the trained generator on fresh
// noise, one invocation per UE. Following NetShare's inference procedure,
// categorical fields take the highest-probability value ("simply choosing
// the element with the highest possibility") and the numeric interarrival
// is the generator's deterministic scalar output — variety comes only from
// the noise input, which is the root of the paper's L2 observation. UE IDs
// come from a random string generator since the metadata generator was
// discarded (§4.2.1).
func (m *Model) Generate(opts GenOpts) (*trace.Dataset, error) {
	if opts.NumStreams <= 0 {
		return nil, fmt.Errorf("netshare: NumStreams must be positive, got %d", opts.NumStreams)
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = opts.Workers
	}
	if workers <= 0 {
		workers = tensor.Parallelism()
	}
	if workers > opts.NumStreams {
		workers = opts.NumStreams
	}

	streams := make([]trace.Stream, opts.NumStreams)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				streams[i] = m.sampleStream(i, opts)
			}
		}()
	}
	for i := 0; i < opts.NumStreams; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return &trace.Dataset{Generation: m.Cfg.Generation, Streams: streams}, nil
}

// sampleStream decodes one stream from fresh noise.
func (m *Model) sampleStream(idx int, opts GenOpts) trace.Stream {
	cfg := m.Cfg
	rng := stats.NewRand(opts.Seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15)
	vocab := events.Vocabulary(cfg.Generation)
	v := len(vocab)
	fps := cfg.fieldsPerSample()

	noise, rz := m.sampleNoise(1, rng)
	data, rawMin, rawLogWidth := m.generateRaw(noise, rz)
	minLog, width := rangeFromRaw(rawMin, rawLogWidth)

	s := trace.Stream{
		UEID:   fmt.Sprintf("ue-%08x", rng.Uint64()&0xffffffff),
		Device: opts.Device,
	}
	t := 0.0
	if opts.StartWindow > 0 {
		t = rng.Float64() * opts.StartWindow
	}
	for i := 0; i < cfg.MaxLen(); i++ {
		base := i * fps
		// Event: argmax over the softmaxed block.
		best, bestP := 0, math.Inf(-1)
		for j := 0; j < v; j++ {
			if data[base+j] > bestP {
				best, bestP = j, data[base+j]
			}
		}
		iaNorm := data[base+v]
		stop := data[base+v+1]
		if i > 0 {
			t += math.Expm1(math.Max(minLog+iaNorm*width, 0))
		}
		s.Events = append(s.Events, trace.Event{Time: t, Type: vocab[best]})
		// The stop field is the per-sample termination hazard; sample it,
		// matching the soft survival-mask semantics of training.
		if rng.Float64() < stop {
			break
		}
	}
	return s
}
