package netshare

import (
	"fmt"
	"io"
	"os"

	"cptgpt/internal/nn"
)

// Save serializes the model (both players) to w.
func (m *Model) Save(w io.Writer) error {
	params := append(m.GenParams(), m.DiscParams()...)
	meta := map[string]string{
		"kind":       "netshare",
		"generation": m.Cfg.Generation.String(),
		"config":     fmt.Sprintf("%+v", m.Cfg),
	}
	return nn.SaveParams(w, params, meta)
}

// Load reads weights from r into a model rebuilt from cfg; cfg must match
// the architecture the checkpoint was written with.
func Load(r io.Reader, cfg Config) (*Model, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	params := append(m.GenParams(), m.DiscParams()...)
	if _, err := nn.LoadParams(r, params); err != nil {
		return nil, fmt.Errorf("netshare: %w", err)
	}
	return m, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("netshare: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return m.Save(f)
}

// LoadFile reads a model from path.
func LoadFile(path string, cfg Config) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netshare: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f, cfg)
}
