// Package netshare implements the GAN/LSTM baseline the paper compares
// against, adapted to control-plane traffic exactly as §4.2.1 describes:
//
//   - the metadata (UE-ID) generator is discarded — UE IDs come from a
//     plain string generator;
//   - the LSTM time-series generator emits samples of three fields: event
//     type, interarrival time and a stop flag;
//   - batch generation produces S samples per LSTM step (the paper's L4:
//     intra-batch samples do not condition on one another);
//   - interarrival times are normalized per stream by that stream's own
//     min/max (DoppelGANger's mode-collapse mitigation, L5), so the
//     generator additionally produces each stream's (min, width) range pair
//     from the noise vector;
//   - training is adversarial: an MLP discriminator scores flattened
//     sequences, and generator/discriminator alternate non-saturating GAN
//     steps.
//
// The architecture is deliberately faithful to the baseline including its
// weaknesses; the fidelity gaps the paper reports (L1–L5) are emergent
// properties of this design, not injected behaviours.
package netshare

import (
	"fmt"
	"math"

	"cptgpt/internal/events"
	"cptgpt/internal/nn"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
)

// Config holds the NetShare model hyperparameters.
type Config struct {
	// Generation fixes the event vocabulary.
	Generation events.Generation
	// BatchGen is S, the number of samples emitted per LSTM step (the
	// paper's batch generation; DoppelGANger defaults to 5).
	BatchGen int
	// Steps is the number of LSTM steps, so MaxLen = BatchGen·Steps.
	Steps int
	// NoiseDim is the per-step noise input dimension.
	NoiseDim int
	// Hidden is the LSTM hidden size.
	Hidden int
	// DiscHidden sizes the discriminator MLP's hidden layers.
	DiscHidden int
	// BatchSize is the GAN minibatch (streams per step).
	BatchSize int
	// LR is the generator's Adam learning rate.
	LR float64
	// DLR is the discriminator's learning rate; 0 means LR/4 (a two
	// time-scale update rule keeping the discriminator from overpowering
	// the generator at this model scale).
	DLR float64
	// LabelSmooth is the one-sided real-label target (e.g. 0.9); 0 means
	// no smoothing.
	LabelSmooth float64
	// InstanceNoise is the initial stddev of Gaussian noise added to
	// discriminator inputs, decayed linearly to zero over training; 0
	// disables it.
	InstanceNoise float64
	// Epochs is the number of passes over the training streams.
	Epochs int
	// Seed fixes initialization and sampling randomness.
	Seed uint64
}

// DefaultConfig returns a CPU-sized NetShare configuration.
func DefaultConfig() Config {
	return Config{
		Generation:    events.Gen4G,
		BatchGen:      5,
		Steps:         12,
		NoiseDim:      8,
		Hidden:        48,
		DiscHidden:    64,
		BatchSize:     16,
		LR:            2e-3,
		DLR:           2e-3,
		LabelSmooth:   0.9,
		InstanceNoise: 0.1,
		Epochs:        30,
		Seed:          11,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.BatchGen <= 0 || c.Steps <= 0:
		return fmt.Errorf("netshare: BatchGen and Steps must be positive")
	case c.NoiseDim <= 0 || c.Hidden <= 0 || c.DiscHidden <= 0:
		return fmt.Errorf("netshare: NoiseDim/Hidden/DiscHidden must be positive")
	case c.BatchSize <= 0:
		return fmt.Errorf("netshare: BatchSize must be positive")
	case c.LR <= 0:
		return fmt.Errorf("netshare: LR must be positive")
	case c.Epochs <= 0:
		return fmt.Errorf("netshare: Epochs must be positive")
	}
	return nil
}

// MaxLen returns the maximum stream length the model can generate.
func (c Config) MaxLen() int { return c.BatchGen * c.Steps }

// fieldsPerSample returns V (event one-hot) + 1 (interarrival) + 1 (stop).
func (c Config) fieldsPerSample() int {
	return len(events.Vocabulary(c.Generation)) + 2
}

// seqDim returns the flattened sequence dimension plus the length-fraction
// feature and the 2 range features.
func (c Config) seqDim() int { return c.Steps*c.BatchGen*c.fieldsPerSample() + 3 }

// Model is the NetShare generator/discriminator pair.
type Model struct {
	Cfg Config

	// Gen is the LSTM generator core.
	Gen *nn.LSTMCell
	// Head maps the LSTM hidden state to one batch of S raw samples.
	Head *nn.MLP
	// Range maps the first noise vector to the per-stream (minLog,
	// widthLog) normalization range.
	Range *nn.MLP
	// Disc scores flattened sequences.
	Disc *nn.MLP
}

// New builds an initialized NetShare model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(cfg.Seed)
	fps := cfg.fieldsPerSample()
	m := &Model{Cfg: cfg}
	// The LSTM consumes [stream noise z0 | step noise z_t] at every step:
	// z0 is shared with the range head so the per-stream normalization
	// range and the sequence are generated coherently (as DoppelGANger
	// couples metadata and time-series through shared conditioning).
	m.Gen = nn.NewLSTMCell(2*cfg.NoiseDim, cfg.Hidden, rng)
	m.Head = nn.NewMLP(rng, cfg.Hidden, cfg.Hidden, cfg.BatchGen*fps)
	// Bias the stop outputs negative so the initial termination hazard is
	// ≈ 7% per sample instead of sigmoid(0) = 50%; without this the
	// untrained generator emits near-empty streams and adversarial
	// training settles in that degenerate basin.
	lastBias := m.Head.Layers[len(m.Head.Layers)-1].B
	for s := 0; s < cfg.BatchGen; s++ {
		lastBias.Data[s*fps+fps-1] = -2.5
	}
	m.Range = nn.NewMLP(rng, cfg.NoiseDim, cfg.Hidden/2, 2)
	// +1: the minibatch-variance feature (see discInput), the specialized
	// anti-mode-collapse enhancement GAN baselines need (the paper's L5).
	m.Disc = nn.NewMLP(rng, cfg.seqDim()+1, cfg.DiscHidden, cfg.DiscHidden/2, 1)
	return m, nil
}

// discInput augments a batch of flattened sequences with a minibatch
// statistic: the mean per-column variance across the batch, broadcast to
// every row. A per-example discriminator cannot see distribution-level
// collapse (every fake identical yet individually plausible); this feature
// makes collapse directly visible, the standard minibatch-discrimination
// remedy the paper alludes to in L5.
func (m *Model) discInput(x *tensor.Tensor) *tensor.Tensor {
	mean := tensor.MeanRows(x)
	centered := tensor.Add(x, tensor.Scale(mean, -1))
	variance := tensor.Mean(tensor.Mul(centered, centered))
	return tensor.ConcatCols(x, tensor.BroadcastScalar(variance, x.Rows))
}

// GenParams returns the generator-side parameters (LSTM + head + range).
func (m *Model) GenParams() []*tensor.Tensor {
	ps := m.Gen.Params()
	ps = append(ps, m.Head.Params()...)
	ps = append(ps, m.Range.Params()...)
	return ps
}

// DiscParams returns the discriminator parameters.
func (m *Model) DiscParams() []*tensor.Tensor { return m.Disc.Params() }

// NumParams returns the total scalar parameter count of both players.
func (m *Model) NumParams() int {
	return nn.NumParams(m.GenParams()) + nn.NumParams(m.DiscParams())
}

// activateHead converts raw head outputs (B × S·fps) into activated,
// alive-gated sample fields: softmax over each sample's event block, sigmoid
// on interarrival and stop. The soft (probability-valued) representation is
// what the discriminator consumes during training, as in DoppelGANger.
//
// alive is a B×1 soft continuation mask: 1 while the stream is running,
// decaying toward 0 once a stop flag fires. Event and interarrival fields of
// each sample are multiplied by the mask (DoppelGANger's generation-flag
// gating), so a stopped fake stream fades to zeros exactly like the padded
// region of a real stream — without that gating the discriminator wins on a
// trivial tell and training collapses. It returns the gated fields, the
// updated mask and the per-step alive mass (sum over the step's samples).
func (m *Model) activateHead(raw, alive *tensor.Tensor) (gated, nextAlive, stepAlive *tensor.Tensor) {
	v := len(events.Vocabulary(m.Cfg.Generation))
	fps := m.Cfg.fieldsPerSample()
	b := raw.Rows
	ones := tensor.New(b, 1)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	stepAlive = tensor.New(b, 1)
	parts := make([]*tensor.Tensor, 0, 3*m.Cfg.BatchGen)
	for s := 0; s < m.Cfg.BatchGen; s++ {
		base := s * fps
		ev := tensor.Softmax(tensor.SliceCols(raw, base, base+v))
		ia := tensor.Sigmoid(tensor.SliceCols(raw, base+v, base+v+1))
		stop := tensor.Sigmoid(tensor.SliceCols(raw, base+v+1, base+v+2))
		parts = append(parts,
			tensor.ScaleRows(ev, alive),
			tensor.ScaleRows(ia, alive),
			// The padded region of a real stream keeps its stop flag
			// raised; mirror that by emitting stop·alive + (1-alive).
			tensor.Add(tensor.ScaleRows(stop, alive), tensor.Sub(ones, alive)))
		stepAlive = tensor.Add(stepAlive, alive)
		// alive ← alive · (1 − stop)
		alive = tensor.Mul(alive, tensor.Sub(ones, stop))
	}
	return tensor.ConcatCols(parts...), alive, stepAlive
}

// generateSoft runs the generator over noise and returns the flattened soft
// alive-gated sequence plus range features (B × seqDim), differentiable
// end-to-end. This is the discriminator-facing path.
func (m *Model) generateSoft(noise []*tensor.Tensor, rangeNoise *tensor.Tensor) *tensor.Tensor {
	b := rangeNoise.Rows
	h, c := m.Gen.ZeroState(b)
	alive := tensor.New(b, 1)
	for i := range alive.Data {
		alive.Data[i] = 1
	}
	// aliveSum accumulates the soft effective length, which becomes an
	// explicit discriminator feature: without it a per-example
	// discriminator barely sees stream length and the generator collapses
	// to near-empty streams (stopping immediately is the easiest way to
	// imitate padding).
	aliveSum := tensor.New(b, 1)
	var stepsOut []*tensor.Tensor
	for _, z := range noise {
		h, c = m.Gen.Step(z, h, c)
		raw := m.Head.Forward(h)
		var gated *tensor.Tensor
		var stepAlive *tensor.Tensor
		gated, alive, stepAlive = m.activateHead(raw, alive)
		aliveSum = tensor.Add(aliveSum, stepAlive)
		stepsOut = append(stepsOut, gated)
	}
	stepsOut = append(stepsOut, tensor.Scale(aliveSum, 1/float64(m.Cfg.MaxLen())))
	rng := m.Range.Forward(rangeNoise) // B×2: raw (minLog, logWidth)
	stepsOut = append(stepsOut, rng)
	return tensor.ConcatCols(stepsOut...)
}

// generateRaw runs the generator for one stream (B=1) and returns the
// ungated activated fields per sample — softmax event probabilities,
// sigmoid interarrival and sigmoid stop probability — plus the raw range
// pair. This is the decoding-facing path: the stop probability is a
// per-sample Bernoulli hazard matching the soft survival mask the
// discriminator was trained against.
func (m *Model) generateRaw(noise []*tensor.Tensor, rangeNoise *tensor.Tensor) (fields []float64, rawMin, rawLogWidth float64) {
	h, c := m.Gen.ZeroState(1)
	v := len(events.Vocabulary(m.Cfg.Generation))
	fps := m.Cfg.fieldsPerSample()
	out := make([]float64, 0, m.Cfg.MaxLen()*fps)
	for _, z := range noise {
		h, c = m.Gen.Step(z, h, c)
		raw := m.Head.Forward(h)
		for s := 0; s < m.Cfg.BatchGen; s++ {
			base := s * fps
			ev := tensor.Softmax(tensor.SliceCols(raw, base, base+v))
			ia := tensor.Sigmoid(tensor.SliceCols(raw, base+v, base+v+1))
			stop := tensor.Sigmoid(tensor.SliceCols(raw, base+v+1, base+v+2))
			out = append(out, ev.Data...)
			out = append(out, ia.Data[0], stop.Data[0])
		}
	}
	rng := m.Range.Forward(rangeNoise)
	return out, rng.Data[0], rng.Data[1]
}

// rangeFromRaw maps the generator's raw range outputs (minLog, logWidth) to
// a usable (minLog, width) pair; the log-width is clamped so an untrained
// generator cannot produce astronomically wide ranges.
func rangeFromRaw(rawMin, rawLogWidth float64) (minLog, width float64) {
	lw := math.Min(math.Max(rawLogWidth, -6), 5)
	return rawMin, math.Exp(lw)
}
