package runlog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Terminal run states: a journal whose last state record is one of these
// describes a finished run and is not a recovery candidate.
const (
	StateDone    = "done"
	StateStopped = "stopped"
	StateFailed  = "failed"
)

// RunState is everything a journal says about its run: the identity
// record, the latest checkpoint and state transition, and how the scan
// ended (clean EOF vs torn tail).
type RunState struct {
	// Path is the journal file.
	Path string
	// Begin is the run identity record, nil when the journal is corrupt
	// before the first record (such a journal is unrecoverable).
	Begin *Begin
	// Checkpoint is the last durable checkpoint, nil when none was written.
	Checkpoint *Checkpoint
	// State/Error are the last state transition ("" when none recorded —
	// the run died before leaving its initial state).
	State string
	Error string
	// Records counts valid records scanned.
	Records int
	// TornTail reports that the scan stopped at a torn or corrupt tail
	// rather than clean EOF (expected after a crash).
	TornTail bool
	// Offset is the byte length of the valid record prefix — where
	// OpenResume truncates before appending.
	Offset int64
}

// Terminal reports whether the journal's run already finished.
func (st *RunState) Terminal() bool {
	switch st.State {
	case StateDone, StateStopped, StateFailed:
		return true
	}
	return false
}

// Load scans a journal file, tolerating a torn tail: it reads frames until
// EOF, a short frame, an oversized length or a CRC mismatch, and folds the
// valid prefix into a RunState.
func Load(path string) (*RunState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runlog: opening journal %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("runlog: reading journal %s: %w", path, err)
	}

	st := &RunState{Path: path}
	off := 0
	for {
		if off == len(data) {
			break // clean EOF
		}
		if len(data)-off < 8 {
			st.TornTail = true
			break
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecord || off+8+int(n) > len(data) {
			st.TornTail = true
			break
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			st.TornTail = true
			break
		}
		var rec wireRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A framed record that is not valid JSON means a writer bug,
			// not a torn tail, but recovery-wise it ends the journal too.
			st.TornTail = true
			break
		}
		st.apply(&rec)
		st.Records++
		off += 8 + int(n)
	}
	st.Offset = int64(off)
	return st, nil
}

func (st *RunState) apply(rec *wireRecord) {
	switch rec.Rec {
	case "begin":
		if st.Begin == nil {
			st.Begin = rec.Begin
		}
	case "ckpt":
		st.Checkpoint = &Checkpoint{
			Time: rec.T, UE: rec.UE, Seq: rec.Seq,
			Events:      rec.Events,
			TraceOffset: rec.Off,
			SinkBytes:   rec.Bytes, SinkLines: rec.Lines,
			ReplayApplied: rec.Applied,
			Shed:          rec.Shed,
		}
	case "state":
		st.State, st.Error = rec.State, rec.Error
	}
}

// OpenResume loads a journal, truncates its torn tail and reopens it for
// appending, so a recovered run keeps journaling into the same file.
func OpenResume(path string, o Options) (*Journal, *RunState, error) {
	st, err := Load(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runlog: reopening journal %s: %w", path, err)
	}
	if err := f.Truncate(st.Offset); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runlog: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(st.Offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runlog: seeking journal %s: %w", path, err)
	}
	return newJournal(f, path, o), st, nil
}

// Ext is the journal filename extension; a run's journal lives at
// <dir>/<run-id>.runlog.
const Ext = ".runlog"

// ScanDir loads every *.runlog journal in dir, sorted by filename.
// Per-file parse results (including corrupt-before-begin journals, which
// come back with Begin == nil) are in the slice; only a directory read
// error fails the scan.
func ScanDir(dir string) ([]*RunState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runlog: scanning %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), Ext) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*RunState
	for _, name := range names {
		st, err := Load(filepath.Join(dir, name))
		if err != nil {
			// Unreadable file: surface as an unrecoverable entry.
			st = &RunState{Path: filepath.Join(dir, name), TornTail: true}
		}
		out = append(out, st)
	}
	return out, nil
}
