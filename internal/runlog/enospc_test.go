package runlog

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// enospcFile wraps a real journal file and starts failing writes with
// ENOSPC after failAfter bytes — including the realistic mid-record
// partial write, where the kernel accepts part of a buffer and then the
// filesystem runs out of space.
type enospcFile struct {
	f         *os.File
	failAfter int
	written   int
	syncFail  bool
}

func (e *enospcFile) Write(p []byte) (int, error) {
	room := e.failAfter - e.written
	if room <= 0 {
		return 0, syscall.ENOSPC
	}
	if len(p) <= room {
		n, err := e.f.Write(p)
		e.written += n
		return n, err
	}
	// Partial write: accept what fits, then report the device full. This
	// tears the tail frame on disk exactly the way a real ENOSPC does.
	n, err := e.f.Write(p[:room])
	e.written += n
	if err != nil {
		return n, err
	}
	return n, syscall.ENOSPC
}

func (e *enospcFile) Sync() error {
	if e.syncFail {
		return syscall.ENOSPC
	}
	return e.f.Sync()
}

func (e *enospcFile) Close() error { return e.f.Close() }

func newENOSPCJournal(t *testing.T, failAfter int, o Options) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.runlog")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return newJournal(&enospcFile{f: f, failAfter: failAfter}, path, o), path
}

// TestJournalENOSPCDegrades pins the degrade contract on a full disk:
// the journal goes memory-only, Metrics.Errors increments once, OnError
// fires once, and the run-facing API keeps accepting appends as no-ops.
func TestJournalENOSPCDegrades(t *testing.T) {
	var m Metrics
	calls := 0
	j, _ := newENOSPCJournal(t, 0, Options{
		Policy: PolicyAlways, Metrics: &m,
		OnError: func(err error) {
			calls++
			if err == nil {
				t.Error("OnError invoked with nil error")
			}
		},
	})
	j.AppendState("generating", "")
	if !j.Degraded() {
		t.Fatal("journal not degraded after ENOSPC on a PolicyAlways append")
	}
	// Post-degrade appends and syncs must be silent no-ops, not repeat
	// errors.
	j.AppendState("streaming", "")
	j.AppendCheckpoint(Checkpoint{Events: 10})
	j.Sync()
	if err := j.Close(); err != nil {
		t.Fatalf("Close after degrade: %v", err)
	}
	if got := m.Errors.Load(); got != 1 {
		t.Fatalf("Metrics.Errors = %d, want 1 (degrade counts once)", got)
	}
	if calls != 1 {
		t.Fatalf("OnError fired %d times, want 1", calls)
	}
}

// TestJournalENOSPCTornTail pins that a mid-record ENOSPC leaves a torn
// file that (a) loads as its valid prefix with TornTail set, and (b) does
// not grow after the degrade — later appends must not resurrect writing
// into a file whose tail is garbage.
func TestJournalENOSPCTornTail(t *testing.T) {
	var m Metrics
	// Measure one state record's framed size on an unconstrained journal,
	// then give the journal under test room for that frame plus a sliver
	// of the next, so the second append tears mid-frame.
	j, path := newENOSPCJournal(t, 1<<20, Options{Policy: PolicyAlways, Metrics: &m})
	j.AppendState("generating", "")
	full, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, path2 := newENOSPCJournal(t, int(full.Size())+5, Options{Policy: PolicyAlways, Metrics: &m})
	j2.AppendState("generating", "")
	if j2.Degraded() {
		t.Fatal("journal degraded before the disk filled")
	}
	j2.AppendCheckpoint(Checkpoint{Events: 7, Shed: 3})
	if !j2.Degraded() {
		t.Fatal("journal not degraded by the mid-record ENOSPC")
	}
	tornSize, err := os.Stat(path2)
	if err != nil {
		t.Fatal(err)
	}
	if tornSize.Size() != full.Size()+5 {
		t.Fatalf("torn file is %d bytes, want %d (prefix + 5 partial bytes)",
			tornSize.Size(), full.Size()+5)
	}

	// Appends after the degrade must leave the file untouched.
	j2.AppendState("streaming", "")
	j2.AppendCheckpoint(Checkpoint{Events: 99})
	j2.Sync()
	j2.Close()
	after, err := os.Stat(path2)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != tornSize.Size() {
		t.Fatalf("degraded journal grew from %d to %d bytes", tornSize.Size(), after.Size())
	}

	// The torn file still loads: valid prefix, torn tail flagged.
	st, err := Load(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornTail {
		t.Fatal("Load did not flag the torn tail")
	}
	if st.Records != 1 || st.State != "generating" {
		t.Fatalf("prefix = %d records, state %q; want 1 record, state generating",
			st.Records, st.State)
	}
	if st.Checkpoint != nil {
		t.Fatal("the torn checkpoint must not survive the scan")
	}
}

// TestJournalENOSPCOnSync pins that a failing fsync (metadata cannot be
// made durable) degrades the journal just like a failing write.
func TestJournalENOSPCOnSync(t *testing.T) {
	var m Metrics
	path := filepath.Join(t.TempDir(), "run.runlog")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	j := newJournal(&enospcFile{f: f, failAfter: 1 << 20, syncFail: true},
		path, Options{Policy: PolicyAlways, Metrics: &m})
	j.AppendState("generating", "")
	if !j.Degraded() {
		t.Fatal("journal not degraded by failing fsync")
	}
	if got := m.Errors.Load(); got != 1 {
		t.Fatalf("Metrics.Errors = %d, want 1", got)
	}
	j.Close()
}

// TestCheckpointShedRoundTrip pins the new shed counter through the wire
// format: append → load returns the same value, and zero stays omitted.
func TestCheckpointShedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.runlog")
	j, err := Create(path, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	j.AppendBegin(Begin{
		RunID: "run-1", Scenario: "flash-crowd", Sink: "count",
		MaxSpillBytes: 1 << 20, MaxEvents: 500, MaxWallNanos: int64(3 * time.Second),
		Degrade: "drop", ShedAfterNanos: int64(50 * time.Millisecond),
		StartedAt: time.Unix(0, 0),
	})
	j.AppendCheckpoint(Checkpoint{Time: 1.5, Events: 100, Shed: 42})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint == nil || st.Checkpoint.Shed != 42 {
		t.Fatalf("checkpoint = %+v, want Shed 42", st.Checkpoint)
	}
	b := st.Begin
	if b == nil || b.MaxSpillBytes != 1<<20 || b.MaxEvents != 500 ||
		b.MaxWallNanos != int64(3*time.Second) || b.Degrade != "drop" ||
		b.ShedAfterNanos != int64(50*time.Millisecond) {
		t.Fatalf("begin budgets did not round-trip: %+v", b)
	}
}
