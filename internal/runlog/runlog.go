// Package runlog is the write-ahead run journal behind crash-safe
// cptserved runs: an append-only, CRC-framed, torn-tail-tolerant log per
// run recording the submitted spec, periodic progress checkpoints and
// state transitions, so a daemon restart can resume an interrupted run
// exactly where its sinks left off.
//
// On-disk format: a journal is a sequence of framed records, each
//
//	u32le payload length | u32le CRC-32C of payload | payload (JSON)
//
// A crash can only tear the tail — records are appended, never rewritten —
// so recovery reads frames until EOF, a short frame, an oversized length or
// a CRC mismatch, and treats everything before that point as the journal.
// OpenResume truncates the torn tail before appending, keeping the file a
// clean record sequence across any number of crashes.
//
// Durability is a policy knob: PolicyAlways fsyncs every append,
// PolicyInterval (the default) flushes and fsyncs at most once per
// interval, PolicyOff flushes to the OS on the interval but never fsyncs —
// so even "off" loses at most one interval of records to a process crash
// (only a machine crash can lose more).
//
// A journal never fails its run: any write, flush or sync error degrades
// the journal to memory-only (appends become no-ops), invokes the OnError
// hook once and counts into Metrics.Errors. The run carries on; only its
// crash-recoverability is lost.
//
// Concurrency: a Journal is safe for concurrent appends, though runs
// append from a single goroutine in practice. Metrics fields are atomics,
// shared across journals and readable at any time.
package runlog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cptgpt/internal/tracez"
)

// Policy selects the journal's durability level.
type Policy int

const (
	// PolicyInterval flushes and fsyncs at most once per interval (the
	// default): a crash loses at most one interval of checkpoints, which
	// recovery regenerates deterministically.
	PolicyInterval Policy = iota
	// PolicyAlways fsyncs every append — maximum durability, one fsync per
	// record.
	PolicyAlways
	// PolicyOff never fsyncs; records are still flushed to the OS on the
	// interval, so only a machine (not process) crash can lose them.
	PolicyOff
)

// ParsePolicy parses "always", "interval" or "off" ("" means interval).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "interval":
		return PolicyInterval, nil
	case "always":
		return PolicyAlways, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("runlog: unknown fsync policy %q (want always, interval or off)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyOff:
		return "off"
	default:
		return "interval"
	}
}

// DefaultInterval is the PolicyInterval/PolicyOff flush cadence.
const DefaultInterval = 100 * time.Millisecond

// maxRecord bounds a frame's payload length; anything larger in a header
// is treated as tail corruption.
const maxRecord = 1 << 20

// highWater and hardCap bound the in-memory frame buffer. Past highWater
// an append kicks the background flusher without waiting on it; past
// hardCap (disk persistently slower than the producer) the append writes
// through inline — real backpressure, but only in that extreme.
const (
	highWater = 1 << 20
	hardCap   = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Metrics aggregates journal activity across every journal that shares it
// (the daemon registers these as cptserved_journal_* series). All fields
// are atomics.
type Metrics struct {
	// Appends counts records appended; Bytes the framed bytes they carried.
	Appends atomic.Int64
	Bytes   atomic.Int64
	// Fsyncs counts file syncs issued by the durability policy.
	Fsyncs atomic.Int64
	// Errors counts journals degraded to memory-only by a disk error.
	Errors atomic.Int64
}

// Options configures a Journal.
type Options struct {
	// Policy is the durability policy (zero value: PolicyInterval).
	Policy Policy
	// Interval is the flush/fsync cadence for PolicyInterval and the flush
	// cadence for PolicyOff (0 = DefaultInterval).
	Interval time.Duration
	// Metrics, when non-nil, receives the journal's activity counters.
	Metrics *Metrics
	// OnError, when non-nil, is invoked once with the disk error that
	// degraded the journal to memory-only.
	OnError func(error)
}

// Begin is a run's identity record: everything needed to reconstruct and
// resume the run after a crash, written as the journal's first record.
type Begin struct {
	RunID    string `json:"run_id"`
	Scenario string `json:"scenario"`
	// Spec is the full resolved scenario spec (JSON), so recovery does not
	// depend on the builtin registry staying stable across versions.
	Spec        json.RawMessage `json:"spec"`
	Sink        string          `json:"sink"`
	Out         string          `json:"out,omitempty"`
	Addr        string          `json:"addr,omitempty"`
	ClosedLoop  bool            `json:"closed_loop,omitempty"`
	UEs         int             `json:"ues,omitempty"`
	Compression float64         `json:"compression,omitempty"`
	Precision   string          `json:"precision,omitempty"`
	Speculative string          `json:"speculative,omitempty"`
	DraftTokens int             `json:"draft_tokens,omitempty"`
	Parallelism int             `json:"parallelism,omitempty"`
	BatchSize   int             `json:"batch_size,omitempty"`
	// SessionID is the closed-loop replay session key, fixed at submission
	// so a resumed run can rejoin the server-side session.
	SessionID uint64 `json:"session_id,omitempty"`
	// Resource budgets and degrade policy, journaled so a resumed run keeps
	// the envelope it was admitted under. MaxWallNanos is the total
	// wall-clock budget; recovery re-arms the remainder.
	MaxSpillBytes  int64     `json:"max_spill_bytes,omitempty"`
	MaxEvents      int64     `json:"max_events,omitempty"`
	MaxWallNanos   int64     `json:"max_wall_nanos,omitempty"`
	Degrade        string    `json:"degrade,omitempty"`
	ShedAfterNanos int64     `json:"shed_after_nanos,omitempty"`
	StartedAt      time.Time `json:"started_at"`
}

// Checkpoint is a progress record: the durable high-water mark recovery
// resumes from. Key (Time, UE, Seq) is the merge key of the last event the
// checkpoint covers; the sink cursor fields say how much sink output is
// durable for events up to and including that key.
type Checkpoint struct {
	// Time/UE/Seq are the merge key of the last covered event.
	Time float64
	UE   uint64
	Seq  uint32
	// Events is the total released-event count up to the key (cumulative
	// across resumed incarnations).
	Events int64
	// TraceOffset re-anchors the pacer: trace time resumes from here.
	TraceOffset float64
	// SinkBytes/SinkLines locate the jsonl/csv sink cursor: the file's
	// durable byte length and data-line count for events ≤ the key.
	SinkBytes int64
	SinkLines int64
	// ReplayApplied is the closed-loop replay sequence number the server
	// has contiguously applied (equals Events for that sink).
	ReplayApplied int64
	// Shed is the cumulative count of releases the pacer load-shed (pacing
	// dropped, events delivered) up to the key, across resumed incarnations.
	Shed int64
}

// wireRecord is the JSON payload shape shared by every record type;
// Rec discriminates ("begin", "ckpt", "state"). Checkpoint fields are
// inlined flat so the hot append path can build them without reflection.
type wireRecord struct {
	Rec   string `json:"rec"`
	Begin *Begin `json:"begin,omitempty"`

	// state
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	At    int64  `json:"at,omitempty"`

	// ckpt (flat)
	T       float64 `json:"t,omitempty"`
	UE      uint64  `json:"ue,omitempty"`
	Seq     uint32  `json:"seq,omitempty"`
	Events  int64   `json:"events,omitempty"`
	Off     float64 `json:"off,omitempty"`
	Bytes   int64   `json:"bytes,omitempty"`
	Lines   int64   `json:"lines,omitempty"`
	Applied int64   `json:"applied,omitempty"`
	Shed    int64   `json:"shed,omitempty"`
}

// journalFile is the slice of *os.File the journal needs — the seam the
// degradation tests inject failing writers through.
type journalFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Journal is one run's append-side write-ahead log. Appends only frame and
// buffer under the mutex; file writes and fsyncs happen on a background
// flusher ticking at the policy interval (or inline for PolicyAlways), so
// the hot path never waits on the disk.
type Journal struct {
	mu       sync.Mutex // guards buffered/spare/scratch/degraded/f-identity
	wmu      sync.Mutex // serializes file writes+syncs in steal order
	f        journalFile
	buffered []byte   // pending frames not yet written to f
	ckptOff  int      // offset of a coalescable trailing ckpt frame, -1 none
	spares   [][]byte // recycled steal-cycle buffers (flushes overlap)
	scratch  []byte
	policy   Policy
	interval time.Duration
	degraded bool
	m        *Metrics
	onError  func(error)
	path     string
	stop     chan struct{}
	kick     chan struct{}
	flusher  sync.WaitGroup
}

// Create opens a fresh journal at path (truncating any existing file).
func Create(path string, o Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runlog: creating journal %s: %w", path, err)
	}
	return newJournal(f, path, o), nil
}

func newJournal(f journalFile, path string, o Options) *Journal {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	j := &Journal{
		f: f, path: path,
		ckptOff: -1,
		policy:  o.Policy, interval: o.Interval,
		m: o.Metrics, onError: o.OnError,
		stop: make(chan struct{}),
		kick: make(chan struct{}, 1),
	}
	if j.policy != PolicyAlways {
		j.flusher.Add(1)
		go j.flushLoop(j.stop)
	}
	return j
}

// flushLoop is the background flusher for the interval policies: it writes
// buffered frames to the OS every interval, fsyncing under PolicyInterval.
func (j *Journal) flushLoop(stop <-chan struct{}) {
	defer j.flusher.Done()
	t := time.NewTicker(j.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.flush(j.policy == PolicyInterval)
		case <-j.kick:
			j.flush(false)
		case <-stop:
			return
		}
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Degraded reports whether a disk error has demoted the journal to
// memory-only (appends are dropped; the run itself is unaffected).
func (j *Journal) Degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// degrade demotes the journal to memory-only after a disk error. The file
// itself is left for Close (it may be mid-write on the flusher); appends
// and flushes become no-ops immediately. Caller holds j.mu.
func (j *Journal) degrade(err error) {
	if j.degraded {
		return
	}
	j.degraded = true
	j.buffered = nil
	if j.m != nil {
		j.m.Errors.Add(1)
	}
	if j.onError != nil {
		j.onError(err)
	}
}

// append frames payload and buffers it; PolicyAlways additionally flushes
// and fsyncs inline. A checkpoint (ckpt) that lands while the previous
// checkpoint is still unflushed replaces it in place — only the newest
// progress marker matters for recovery, so coalescing loses nothing and
// keeps a fast producer from outrunning the disk.
func (j *Journal) append(payload []byte, ckpt bool) {
	sp := tracez.Begin(tracez.StageRunlogAppend, "")
	j.mu.Lock()
	if j.degraded {
		j.mu.Unlock()
		sp.End(0, "degraded")
		return
	}
	if ckpt && j.ckptOff >= 0 {
		j.buffered = j.buffered[:j.ckptOff]
	}
	if ckpt {
		j.ckptOff = len(j.buffered)
	} else {
		j.ckptOff = -1
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	j.buffered = append(j.buffered, hdr[:]...)
	j.buffered = append(j.buffered, payload...)
	if j.m != nil {
		j.m.Appends.Add(1)
		j.m.Bytes.Add(int64(len(payload) + len(hdr)))
	}
	buffered := len(j.buffered)
	j.mu.Unlock()
	switch {
	case j.policy == PolicyAlways:
		j.flush(true)
	case buffered >= hardCap:
		j.flush(false)
	case buffered >= highWater:
		select {
		case j.kick <- struct{}{}:
		default:
		}
	}
	sp.End(int64(len(payload)), "")
}

// flush steals the buffered frames and writes them to the file, fsyncing
// when sync is set. wmu keeps concurrent flushes in steal order, so the
// file always holds a prefix of the append sequence.
func (j *Journal) flush(sync bool) {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	j.mu.Lock()
	buf := j.buffered
	j.buffered = nil
	j.ckptOff = -1 // the trailing ckpt is leaving the buffer
	if n := len(j.spares); n > 0 {
		j.buffered = j.spares[n-1][:0]
		j.spares = j.spares[:n-1]
	}
	f := j.f
	if j.degraded || f == nil {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()

	ok := true
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			j.mu.Lock()
			j.degrade(err)
			j.mu.Unlock()
			ok = false
		}
	}
	if ok && sync {
		if err := f.Sync(); err != nil {
			j.mu.Lock()
			j.degrade(err)
			j.mu.Unlock()
			ok = false
		}
		if ok && j.m != nil {
			j.m.Fsyncs.Add(1)
		}
	}
	j.mu.Lock()
	if buf != nil && len(j.spares) < 4 {
		j.spares = append(j.spares, buf[:0])
	}
	j.mu.Unlock()
}

// Sync flushes buffered records and fsyncs (unless PolicyOff) — the
// barrier a checkpoint uses before declaring its cursor durable.
func (j *Journal) Sync() {
	j.flush(j.policy != PolicyOff)
}

// Close stops the flusher, flushes remaining records and closes the
// journal file (fsyncing unless PolicyOff). Safe to call more than once.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.stop != nil {
		close(j.stop)
		j.stop = nil
	}
	j.mu.Unlock()
	j.flusher.Wait()
	j.flush(j.policy != PolicyOff)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// AppendBegin writes the run's identity record.
func (j *Journal) AppendBegin(b Begin) {
	payload, err := json.Marshal(wireRecord{Rec: "begin", Begin: &b})
	if err != nil {
		j.mu.Lock()
		j.degrade(fmt.Errorf("runlog: encoding begin record: %w", err))
		j.mu.Unlock()
		return
	}
	j.append(payload, false)
}

// AppendState writes a run state transition ("" error for clean states).
func (j *Journal) AppendState(state, errMsg string) {
	payload, err := json.Marshal(wireRecord{
		Rec: "state", State: state, Error: errMsg, At: time.Now().UnixNano(),
	})
	if err != nil {
		return
	}
	j.append(payload, false)
}

// AppendCheckpoint writes a progress checkpoint. This is the journal's hot
// path: the payload is built with strconv appends, no reflection.
func (j *Journal) AppendCheckpoint(c Checkpoint) {
	buf := j.takeScratch()
	buf = append(buf, `{"rec":"ckpt","t":`...)
	buf = strconv.AppendFloat(buf, c.Time, 'g', -1, 64)
	if c.UE != 0 {
		buf = append(buf, `,"ue":`...)
		buf = strconv.AppendUint(buf, c.UE, 10)
	}
	if c.Seq != 0 {
		buf = append(buf, `,"seq":`...)
		buf = strconv.AppendUint(buf, uint64(c.Seq), 10)
	}
	buf = append(buf, `,"events":`...)
	buf = strconv.AppendInt(buf, c.Events, 10)
	buf = append(buf, `,"off":`...)
	buf = strconv.AppendFloat(buf, c.TraceOffset, 'g', -1, 64)
	if c.SinkBytes != 0 {
		buf = append(buf, `,"bytes":`...)
		buf = strconv.AppendInt(buf, c.SinkBytes, 10)
	}
	if c.SinkLines != 0 {
		buf = append(buf, `,"lines":`...)
		buf = strconv.AppendInt(buf, c.SinkLines, 10)
	}
	if c.ReplayApplied != 0 {
		buf = append(buf, `,"applied":`...)
		buf = strconv.AppendInt(buf, c.ReplayApplied, 10)
	}
	if c.Shed != 0 {
		buf = append(buf, `,"shed":`...)
		buf = strconv.AppendInt(buf, c.Shed, 10)
	}
	buf = append(buf, '}')
	j.append(buf, true)
	j.putScratch(buf)
}

// takeScratch/putScratch reuse one payload buffer across checkpoints (the
// mutex makes contention rare; a miss just allocates).
func (j *Journal) takeScratch() []byte {
	j.mu.Lock()
	b := j.scratch
	j.scratch = nil
	j.mu.Unlock()
	return b[:0]
}

func (j *Journal) putScratch(b []byte) {
	j.mu.Lock()
	if j.scratch == nil {
		j.scratch = b
	}
	j.mu.Unlock()
}
