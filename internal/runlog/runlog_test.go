package runlog

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testBegin() Begin {
	return Begin{
		RunID:    "run-1",
		Scenario: "flash-crowd",
		Spec:     json.RawMessage(`{"name":"flash-crowd"}`),
		Sink:     "jsonl",
		Out:      "/tmp/out.jsonl",
		UEs:      500,
		// Compression 2.0 means half trace speed; pick a non-default to
		// catch field drops in the round trip.
		Compression: 2.0,
		SessionID:   0xdeadbeef,
		StartedAt:   time.Unix(1700000000, 0).UTC(),
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run-1"+Ext)
	j, err := Create(path, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	begin := testBegin()
	j.AppendBegin(begin)
	j.AppendState("generating", "")
	j.AppendCheckpoint(Checkpoint{
		Time: 12.5, UE: 42, Seq: 7,
		Events: 1000, TraceOffset: 12.5,
		SinkBytes: 81920, SinkLines: 1000,
	})
	j.AppendCheckpoint(Checkpoint{
		Time: 99.25, UE: 41, Seq: 9,
		Events: 5000, TraceOffset: 99.25,
		SinkBytes: 409600, SinkLines: 5000, ReplayApplied: 5000,
	})
	j.AppendState("done", "")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTail {
		t.Error("clean journal reported a torn tail")
	}
	if st.Records != 5 {
		t.Errorf("Records = %d, want 5", st.Records)
	}
	if st.Begin == nil {
		t.Fatal("Begin record lost")
	}
	if st.Begin.RunID != begin.RunID || st.Begin.Scenario != begin.Scenario ||
		st.Begin.SessionID != begin.SessionID || st.Begin.Compression != begin.Compression ||
		!st.Begin.StartedAt.Equal(begin.StartedAt) {
		t.Errorf("Begin round trip mismatch: %+v", st.Begin)
	}
	if string(st.Begin.Spec) != string(begin.Spec) {
		t.Errorf("Spec round trip: %s", st.Begin.Spec)
	}
	want := Checkpoint{
		Time: 99.25, UE: 41, Seq: 9,
		Events: 5000, TraceOffset: 99.25,
		SinkBytes: 409600, SinkLines: 5000, ReplayApplied: 5000,
	}
	if st.Checkpoint == nil || *st.Checkpoint != want {
		t.Errorf("Checkpoint = %+v, want %+v", st.Checkpoint, want)
	}
	if st.State != StateDone || !st.Terminal() {
		t.Errorf("State = %q (terminal=%v), want done/terminal", st.State, st.Terminal())
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offset != info.Size() {
		t.Errorf("Offset = %d, want full file %d", st.Offset, info.Size())
	}
}

// TestCheckpointMarshalMatchesWire pins the hand-built checkpoint payload
// against the reflective wireRecord decoder: every field must survive, and
// the zero-suppressed fields must decode as zeros.
func TestCheckpointMarshalMatchesWire(t *testing.T) {
	cases := []Checkpoint{
		{},
		{Time: 1e6, UE: 1, Seq: 1, Events: 1, TraceOffset: 1e6},
		{Time: 0.015625, UE: 1<<63 + 5, Seq: 4294967295,
			Events: 1 << 40, TraceOffset: 3.14159,
			SinkBytes: 1 << 50, SinkLines: 123456789, ReplayApplied: 99},
	}
	for _, c := range cases {
		// Build the payload exactly as AppendCheckpoint does, by writing
		// through a journal whose file captures the frame.
		var cap captureFile
		jw := newJournal(&cap, "mem", Options{Policy: PolicyAlways})
		jw.AppendCheckpoint(c)
		jw.Close()
		if len(cap.frames) != 1 {
			t.Fatalf("captured %d frames, want 1", len(cap.frames))
		}
		payload := cap.frames[0]
		if !json.Valid(payload) {
			t.Fatalf("hand-built checkpoint is not valid JSON: %s", payload)
		}
		var rec wireRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			t.Fatalf("decoding %s: %v", payload, err)
		}
		var st RunState
		st.apply(&rec)
		if st.Checkpoint == nil || *st.Checkpoint != c {
			t.Errorf("round trip %s -> %+v, want %+v", payload, st.Checkpoint, c)
		}
	}
}

// captureFile collects appended frame payloads (strips the 8-byte header
// of each record as it arrives via a single buffered write).
type captureFile struct {
	frames [][]byte
}

func (c *captureFile) Write(p []byte) (int, error) {
	total := len(p)
	// The journal flushes whole frames; split them back apart.
	for len(p) >= 8 {
		n := int(uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24)
		if 8+n > len(p) {
			break
		}
		c.frames = append(c.frames, append([]byte(nil), p[8:8+n]...))
		p = p[8+n:]
	}
	return total, nil
}
func (c *captureFile) Sync() error  { return nil }
func (c *captureFile) Close() error { return nil }

func TestTornTailTruncatedOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run-2"+Ext)
	j, err := Create(path, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	j.AppendBegin(testBegin())
	j.AppendCheckpoint(Checkpoint{Time: 5, UE: 3, Seq: 1, Events: 10, TraceOffset: 5})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A crash mid-append tears the tail: a partial header, then a partial
	// frame, then a full frame with a corrupt byte.
	tails := map[string][]byte{
		"partial-header": {0x10, 0x00},
		"partial-frame":  {0xff, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 'x', 'y'},
	}
	// CRC mismatch: take the clean second record's frame and flip a payload
	// byte.
	corrupt := append([]byte(nil), clean[len(clean)/2:]...)
	if len(corrupt) > 10 {
		corrupt[9] ^= 0xff
	}
	tails["crc-mismatch"] = corrupt

	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "torn"+Ext)
			if err := os.WriteFile(p, append(append([]byte(nil), clean...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := Load(p)
			if err != nil {
				t.Fatal(err)
			}
			if !st.TornTail {
				t.Error("torn tail not detected")
			}
			if st.Records != 2 || st.Begin == nil || st.Checkpoint == nil {
				t.Errorf("valid prefix not preserved: records=%d", st.Records)
			}
			if st.Offset != int64(len(clean)) {
				t.Errorf("Offset = %d, want %d", st.Offset, len(clean))
			}

			// Resume must truncate the tail and keep appending cleanly.
			j2, st2, err := OpenResume(p, Options{Policy: PolicyAlways})
			if err != nil {
				t.Fatal(err)
			}
			if st2.Offset != int64(len(clean)) {
				t.Errorf("resume Offset = %d, want %d", st2.Offset, len(clean))
			}
			j2.AppendState(StateDone, "")
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			st3, err := Load(p)
			if err != nil {
				t.Fatal(err)
			}
			if st3.TornTail || st3.Records != 3 || st3.State != StateDone {
				t.Errorf("after resume: torn=%v records=%d state=%q", st3.TornTail, st3.Records, st3.State)
			}
		})
	}
}

func TestCorruptBeforeBegin(t *testing.T) {
	p := filepath.Join(t.TempDir(), "junk"+Ext)
	if err := os.WriteFile(p, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Begin != nil || !st.TornTail || st.Records != 0 {
		t.Errorf("junk journal parsed as valid: %+v", st)
	}
}

func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"run-3", "run-1"} {
		j, err := Create(filepath.Join(dir, id+Ext), Options{Policy: PolicyAlways})
		if err != nil {
			t.Fatal(err)
		}
		b := testBegin()
		b.RunID = id
		j.AppendBegin(b)
		j.Close()
	}
	// A non-journal file is ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	states, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("ScanDir found %d journals, want 2", len(states))
	}
	if states[0].Begin.RunID != "run-1" || states[1].Begin.RunID != "run-3" {
		t.Errorf("ScanDir order: %s, %s", states[0].Begin.RunID, states[1].Begin.RunID)
	}

	// A missing directory is not an error — just nothing to recover.
	none, err := ScanDir(filepath.Join(dir, "missing"))
	if err != nil || none != nil {
		t.Errorf("missing dir: %v, %v", none, err)
	}
}

// failFile fails writes (or syncs) after a threshold, to drive degradation.
type failFile struct {
	writes   int
	failAt   int
	failSync bool
}

var errDisk = errors.New("disk full")

func (f *failFile) Write(p []byte) (int, error) {
	f.writes++
	if !f.failSync && f.writes >= f.failAt {
		return 0, errDisk
	}
	return len(p), nil
}
func (f *failFile) Sync() error {
	if f.failSync {
		return errDisk
	}
	return nil
}
func (f *failFile) Close() error { return nil }

func TestDegradeOnDiskError(t *testing.T) {
	for _, tc := range []struct {
		name string
		file *failFile
	}{
		{"write-error", &failFile{failAt: 2}},
		{"sync-error", &failFile{failAt: 1 << 30, failSync: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var m Metrics
			var gotErr error
			j := newJournal(tc.file, "mem", Options{
				Policy:  PolicyAlways,
				Metrics: &m,
				OnError: func(err error) { gotErr = err },
			})
			j.AppendBegin(testBegin())
			j.AppendCheckpoint(Checkpoint{Time: 1, Events: 1})
			j.AppendCheckpoint(Checkpoint{Time: 2, Events: 2})
			if !j.Degraded() {
				t.Fatal("journal did not degrade on disk error")
			}
			if !errors.Is(gotErr, errDisk) {
				t.Errorf("OnError got %v, want disk error", gotErr)
			}
			if m.Errors.Load() != 1 {
				t.Errorf("Errors = %d, want exactly 1 (degrade is once)", m.Errors.Load())
			}
			// Appends after degradation are silent no-ops.
			j.AppendState(StateDone, "")
			j.Sync()
			if err := j.Close(); err != nil {
				t.Errorf("Close after degrade: %v", err)
			}
		})
	}
}

func TestPolicyParse(t *testing.T) {
	for s, want := range map[string]Policy{
		"": PolicyInterval, "interval": PolicyInterval,
		"always": PolicyAlways, "off": PolicyOff,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && got.String() != s {
			t.Errorf("Policy(%q).String() = %q", s, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted junk")
	}
}

func TestIntervalPolicyBuffersBetweenSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buf"+Ext)
	j, err := Create(path, Options{Policy: PolicyInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	j.AppendBegin(testBegin())
	for i := 0; i < 100; i++ {
		j.AppendCheckpoint(Checkpoint{Time: float64(i), Events: int64(i)})
	}
	// Nothing flushed yet (the interval is an hour); Sync is the explicit
	// barrier. The 100 buffered checkpoints coalesce into the newest one —
	// only the latest progress marker matters for recovery.
	j.Sync()
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 {
		t.Errorf("after Sync: %d records durable, want 2 (begin + coalesced ckpt)", st.Records)
	}
	if st.Checkpoint == nil || st.Checkpoint.Events != 99 {
		t.Errorf("coalesced checkpoint = %+v, want the newest (events=99)", st.Checkpoint)
	}

	// A non-checkpoint record pins the checkpoint before it: no coalescing
	// across record types, order is preserved.
	j.AppendCheckpoint(Checkpoint{Time: 100, Events: 100})
	j.AppendState("streaming", "")
	j.AppendCheckpoint(Checkpoint{Time: 101, Events: 101})
	j.AppendCheckpoint(Checkpoint{Time: 102, Events: 102})
	j.Sync()
	st, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// begin, ckpt(99), ckpt(100), state, ckpt(102).
	if st.Records != 5 || st.State != "streaming" {
		t.Errorf("after mixed appends: records=%d state=%q, want 5/streaming", st.Records, st.State)
	}
	if st.Checkpoint == nil || st.Checkpoint.Events != 102 {
		t.Errorf("latest checkpoint = %+v, want events=102", st.Checkpoint)
	}
	j.Close()
}

func BenchmarkRunlogAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench"+Ext)
	var m Metrics
	j, err := Create(path, Options{Policy: PolicyInterval, Metrics: &m})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.AppendBegin(testBegin())
	c := Checkpoint{
		Time: 123.456789, UE: 982451653, Seq: 31,
		Events: 1 << 20, TraceOffset: 123.456789,
		SinkBytes: 1 << 27, SinkLines: 1 << 20,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Events++
		j.AppendCheckpoint(c)
	}
}
