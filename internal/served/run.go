package served

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/mcn"
	"cptgpt/internal/scenario"
)

// Run states. A run is born generating (the spill phase of the scenario
// pipeline), moves to streaming once its merged event stream is open and
// the pacer starts releasing events, and ends in exactly one of done
// (source exhausted), stopped (operator cancellation drained cleanly) or
// failed (pipeline or sink error).
const (
	StateGenerating = "generating"
	StateStreaming  = "streaming"
	StateDone       = "done"
	StateStopped    = "stopped"
	StateFailed     = "failed"
)

// terminal reports whether a run state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateStopped || state == StateFailed
}

// StartRequest is the POST /runs body: a scenario (builtin name or inline
// spec), a sink, and the run knobs.
type StartRequest struct {
	// Scenario names a builtin; Spec carries an inline scenario. Exactly
	// one must be set.
	Scenario string         `json:"scenario,omitempty"`
	Spec     *scenario.Spec `json:"spec,omitempty"`
	// UEs overrides the spec population (0 keeps it).
	UEs int `json:"ues,omitempty"`
	// Compression is the time-compression factor: the run plays
	// Compression seconds of trace time per wall-clock second (1 = real
	// time). 0 disables pacing — events pour out as fast as the sink
	// accepts them.
	Compression float64 `json:"compression,omitempty"`
	// Sink is "count" (default), "mcn", "jsonl" or "csv".
	Sink string `json:"sink,omitempty"`
	// Out is the server-side output path for the jsonl/csv sinks
	// (".gz" compresses).
	Out string `json:"out,omitempty"`
	// Precision / Speculative / DraftTokens are the run-wide cptgpt
	// overrides, with RunOpts semantics.
	Precision   string `json:"precision,omitempty"`
	Speculative string `json:"speculative,omitempty"`
	DraftTokens int    `json:"draft_tokens,omitempty"`
	// Parallelism / BatchSize tune the generation phase (0 = defaults).
	Parallelism int `json:"parallelism,omitempty"`
	BatchSize   int `json:"batch_size,omitempty"`
}

// RunInfo is the wire form of a run's identity and lifecycle.
type RunInfo struct {
	ID          string         `json:"id"`
	Scenario    string         `json:"scenario"`
	Sink        string         `json:"sink"`
	UEs         int            `json:"ues"`
	Compression float64        `json:"compression"`
	State       string         `json:"state"`
	StartedAt   time.Time      `json:"started_at"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Error       string         `json:"error,omitempty"`
	Result      map[string]any `json:"result,omitempty"`
}

// SourceStats is one cptgpt source's decode telemetry in /runs/{id}/stats.
type SourceStats struct {
	Steps           int64   `json:"steps"`
	SlotSteps       int64   `json:"slot_steps"`
	SlotUtilization float64 `json:"slot_utilization"`
	DraftProposed   int64   `json:"draft_proposed"`
	DraftAccepted   int64   `json:"draft_accepted"`
	DraftAcceptance float64 `json:"draft_acceptance"`
}

// MCNStats is the live MCN-sink telemetry in /runs/{id}/stats.
type MCNStats struct {
	Events       int64   `json:"events"`
	Rejected     int64   `json:"rejected"`
	UEs          int64   `json:"ues"`
	ConnectedUEs int64   `json:"connected_ues"`
	Instances    int64   `json:"instances"`
	MeanMs       float64 `json:"latency_mean_ms"`
	P95Ms        float64 `json:"latency_p95_ms"`
	P99Ms        float64 `json:"latency_p99_ms"`
}

// RunStats is the GET /runs/{id}/stats body: a point-in-time snapshot of a
// run's live counters, safe to take while the run is in flight.
type RunStats struct {
	ID          string  `json:"id"`
	Scenario    string  `json:"scenario"`
	State       string  `json:"state"`
	Events      int64   `json:"events"`
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is the cumulative streaming-phase rate; RecentPerSec is
	// the rate since the previous stats scrape (0 on the first scrape).
	EventsPerSec    float64                `json:"events_per_sec"`
	RecentPerSec    float64                `json:"recent_events_per_sec"`
	Compression     float64                `json:"compression"`
	PacerLagSeconds float64                `json:"pacer_lag_seconds"`
	Sources         map[string]SourceStats `json:"sources,omitempty"`
	MCN             *MCNStats              `json:"mcn,omitempty"`
}

// run is one scenario execution owned by the daemon.
type run struct {
	id           string
	scenarioName string
	spec         *scenario.Spec
	sink         string
	out          string
	ues          int
	compression  float64
	opts         scenario.RunOpts

	cancel context.CancelFunc
	done   chan struct{}

	// pacer is published by the lifecycle goroutine when streaming begins;
	// its counters are the run's live event telemetry.
	pacer atomic.Pointer[scenario.Pacer]
	// decode holds the per-cptgpt-source stats sinks, created before the
	// pipeline opens so generation-phase telemetry is live from the start.
	decode map[string]*cptgpt.DecodeStats
	// mcnLive is set for the mcn sink.
	mcnLive *mcn.LiveStats

	mu         sync.Mutex
	state      string
	startedAt  time.Time
	streamAt   time.Time // when streaming began (zero until then)
	finishedAt time.Time
	err        error
	result     map[string]any

	// last stats-scrape sample, for the recent-rate estimate.
	scrapeAt     time.Time
	scrapeEvents int64
}

// setState transitions the run's lifecycle state.
func (r *run) setState(state string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = state
	if state == StateStreaming {
		r.streamAt = time.Now()
	}
}

// finish records the terminal state, error and sink result.
func (r *run) finish(state string, err error, result map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = state
	r.err = err
	r.result = result
	r.finishedAt = time.Now()
}

// info snapshots the run as wire-form RunInfo.
func (r *run) info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := RunInfo{
		ID: r.id, Scenario: r.scenarioName, Sink: r.sink,
		UEs: r.ues, Compression: r.compression,
		State: r.state, StartedAt: r.startedAt, Result: r.result,
	}
	if !r.finishedAt.IsZero() {
		t := r.finishedAt
		info.FinishedAt = &t
	}
	if r.err != nil {
		info.Error = r.err.Error()
	}
	return info
}

// events returns the live released-event count (0 before streaming).
func (r *run) events() int64 {
	if p := r.pacer.Load(); p != nil {
		return p.Events()
	}
	return 0
}

// lagSeconds returns the pacer's current schedule deficit.
func (r *run) lagSeconds() float64 {
	if p := r.pacer.Load(); p != nil {
		return p.Lag().Seconds()
	}
	return 0
}

// stats snapshots the run's live telemetry. The scrape window for the
// recent-rate estimate advances on every call.
func (r *run) stats() RunStats {
	now := time.Now()
	events := r.events()

	r.mu.Lock()
	st := RunStats{
		ID: r.id, Scenario: r.scenarioName, State: r.state,
		Events: events, Compression: r.compression,
		PacerLagSeconds: r.lagSeconds(),
	}
	if !r.streamAt.IsZero() {
		end := now
		if !r.finishedAt.IsZero() {
			end = r.finishedAt
		}
		if wall := end.Sub(r.streamAt).Seconds(); wall > 0 {
			st.WallSeconds = wall
			st.EventsPerSec = float64(events) / wall
		}
	}
	if !r.scrapeAt.IsZero() {
		if dt := now.Sub(r.scrapeAt).Seconds(); dt > 0 {
			st.RecentPerSec = float64(events-r.scrapeEvents) / dt
		}
	}
	r.scrapeAt = now
	r.scrapeEvents = events
	r.mu.Unlock()

	if len(r.decode) > 0 {
		st.Sources = make(map[string]SourceStats, len(r.decode))
		slots := float64(r.opts.DecodeBatch())
		for id, ds := range r.decode {
			snap := ds.Load()
			s := SourceStats{
				Steps:         snap.Steps,
				SlotSteps:     snap.SlotSteps,
				DraftProposed: snap.DraftProposed,
				DraftAccepted: snap.DraftAccepted,
			}
			if s.Steps > 0 && slots > 0 {
				s.SlotUtilization = float64(s.SlotSteps) / (float64(s.Steps) * slots)
			}
			if s.DraftProposed > 0 {
				s.DraftAcceptance = float64(s.DraftAccepted) / float64(s.DraftProposed)
			}
			st.Sources[id] = s
		}
	}
	if r.mcnLive != nil {
		st.MCN = &MCNStats{
			Events:       r.mcnLive.Events.Load(),
			Rejected:     r.mcnLive.Rejected.Load(),
			UEs:          r.mcnLive.UEs.Load(),
			ConnectedUEs: r.mcnLive.ConnectedUEs.Load(),
			Instances:    r.mcnLive.Instances.Load(),
			MeanMs:       float64(r.mcnLive.MeanLatencyNanos.Load()) / 1e6,
			P95Ms:        float64(r.mcnLive.P95LatencyNanos.Load()) / 1e6,
			P99Ms:        float64(r.mcnLive.P99LatencyNanos.Load()) / 1e6,
		}
	}
	return st
}

// execute runs the scenario to its sink under ctx. It is the run's
// lifecycle goroutine body: generating → streaming → terminal state, with
// a context cancellation draining cleanly at either phase.
func (r *run) execute(ctx context.Context, mcnCfg mcn.Config) {
	st, err := r.spec.OpenContext(ctx, r.opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			r.finish(StateStopped, nil, nil)
		} else {
			r.finish(StateFailed, err, nil)
		}
		return
	}
	defer st.Close()

	pacer := scenario.NewPacer(ctx, st, r.compression)
	r.pacer.Store(pacer)
	r.setState(StateStreaming)

	var result map[string]any
	switch r.sink {
	case "count":
		var sum scenario.Summary
		if sum, err = scenario.Drain(pacer); err == nil {
			result = map[string]any{
				"events":            sum.Events,
				"first_time":        sum.FirstTime,
				"last_time":         sum.LastTime,
				"peak_rate":         sum.PeakRate,
				"peak_window_start": sum.PeakWindowStart,
			}
		}
	case "mcn":
		mcnCfg.Live = r.mcnLive
		var rep *mcn.Report
		if rep, err = scenario.RunMCN(pacer, mcnCfg); err == nil {
			result = map[string]any{
				"events":          rep.Events,
				"rejected":        rep.Rejected,
				"ues":             rep.UEs,
				"latency_mean_ms": 1e3 * rep.MeanLatencySec,
				"latency_p95_ms":  1e3 * rep.P95LatencySec,
				"latency_p99_ms":  1e3 * rep.P99LatencySec,
				"peak_rate":       rep.PeakRate,
				"max_instances":   rep.MaxInstancesUsed,
			}
		}
	case "jsonl", "csv":
		var n int
		if n, err = r.writeFile(pacer); err == nil {
			result = map[string]any{"events": n, "out": r.out}
		}
	default:
		err = fmt.Errorf("served: unknown sink %q", r.sink)
	}

	switch {
	case err != nil:
		r.finish(StateFailed, err, nil)
	case pacer.Stopped():
		r.finish(StateStopped, nil, result)
	default:
		r.finish(StateDone, nil, result)
	}
}

// writeFile drains the source into the run's jsonl/csv output file,
// gzip-compressing a ".gz" path. The writer chain is flushed and closed
// before the event count is returned, so a stopped run's file is complete
// up to its last released event — never truncated mid-line.
func (r *run) writeFile(src scenario.EventSource) (int, error) {
	f, err := os.Create(r.out)
	if err != nil {
		return 0, err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(r.out, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	var n int
	if r.sink == "jsonl" {
		n, err = scenario.WriteJSONL(w, src)
	} else {
		n, err = scenario.WriteCSV(w, src)
	}
	if gz != nil {
		if cerr := gz.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}
