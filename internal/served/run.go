package served

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/logz"
	"cptgpt/internal/mcn"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/runlog"
	"cptgpt/internal/scenario"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tensor"
	"cptgpt/internal/tracez"
)

// Run states. A run is born generating (the spill phase of the scenario
// pipeline), moves to streaming once its merged event stream is open and
// the pacer starts releasing events, and ends in exactly one of done
// (source exhausted), stopped (operator cancellation drained cleanly) or
// failed (pipeline or sink error). A run resumed from its journal after a
// daemon crash is born recovering instead — the regeneration phase that
// fast-forwards to the checkpoint — and then moves to streaming. A run
// the admission controller could not fit is born queued and moves to
// generating when budget frees (or to stopped if deleted while waiting).
const (
	StateQueued     = "queued"
	StateGenerating = "generating"
	StateRecovering = "recovering"
	StateStreaming  = "streaming"
	StateDone       = "done"
	StateStopped    = "stopped"
	StateFailed     = "failed"
)

// terminal reports whether a run state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateStopped || state == StateFailed
}

// StartRequest is the POST /runs body: a scenario (builtin name or inline
// spec), a sink, and the run knobs.
type StartRequest struct {
	// Scenario names a builtin; Spec carries an inline scenario. Exactly
	// one must be set.
	Scenario string         `json:"scenario,omitempty"`
	Spec     *scenario.Spec `json:"spec,omitempty"`
	// UEs overrides the spec population (0 keeps it).
	UEs int `json:"ues,omitempty"`
	// Compression is the time-compression factor: the run plays
	// Compression seconds of trace time per wall-clock second (1 = real
	// time). 0 disables pacing — events pour out as fast as the sink
	// accepts them.
	Compression float64 `json:"compression,omitempty"`
	// Sink is "count" (default), "mcn", "jsonl", "csv" or "replay".
	Sink string `json:"sink,omitempty"`
	// Out is the server-side output path for the jsonl/csv sinks
	// (".gz" compresses).
	Out string `json:"out,omitempty"`
	// Addr is the replaynet server address for the replay sink (required
	// there, reachability-probed at request time).
	Addr string `json:"addr,omitempty"`
	// ClosedLoop switches the replay sink to the acknowledged closed-loop
	// driver (CUBIC window, RTT/RTO estimation, reconnect-resume); its
	// transport state feeds the cptserved_replay_* series.
	ClosedLoop bool `json:"closed_loop,omitempty"`
	// Precision / Speculative / DraftTokens are the run-wide cptgpt
	// overrides, with RunOpts semantics.
	Precision   string `json:"precision,omitempty"`
	Speculative string `json:"speculative,omitempty"`
	DraftTokens int    `json:"draft_tokens,omitempty"`
	// Parallelism / BatchSize tune the generation phase (0 = defaults).
	Parallelism int `json:"parallelism,omitempty"`
	BatchSize   int `json:"batch_size,omitempty"`
	// Per-run resource budgets (0 = unlimited). MaxSpillBytes caps the
	// run's live spill-disk footprint, MaxEvents the events released, and
	// MaxWallSeconds the wall clock from launch; an over-budget run fails
	// with a typed budget_exceeded error naming what ran out.
	MaxSpillBytes  int64   `json:"max_spill_bytes,omitempty"`
	MaxEvents      int64   `json:"max_events,omitempty"`
	MaxWallSeconds float64 `json:"max_wall_seconds,omitempty"`
	// Degrade selects the file-sink failure policy: "fail" (default —
	// a hard sink error fails the run), "drop" (circuit breaker discards
	// writes while the sink is broken; lossy output), or "pause" (breaker
	// blocks the drain until the sink recovers; lossless, adds lag).
	Degrade string `json:"degrade,omitempty"`
	// ShedAfterLagSeconds arms pacer load shedding: when emission lags
	// the paced schedule by more than this, the pacer stops sleeping and
	// free-runs (dropping pacing, never events) until lag halves.
	ShedAfterLagSeconds float64 `json:"shed_after_lag_seconds,omitempty"`
}

// RunInfo is the wire form of a run's identity and lifecycle.
type RunInfo struct {
	ID          string         `json:"id"`
	Scenario    string         `json:"scenario"`
	Sink        string         `json:"sink"`
	UEs         int            `json:"ues"`
	Compression float64        `json:"compression"`
	State       string         `json:"state"`
	StartedAt   time.Time      `json:"started_at"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Error       string         `json:"error,omitempty"`
	Result      map[string]any `json:"result,omitempty"`
}

// SourceStats is one cptgpt source's decode telemetry in /runs/{id}/stats.
type SourceStats struct {
	Steps           int64   `json:"steps"`
	SlotSteps       int64   `json:"slot_steps"`
	SlotUtilization float64 `json:"slot_utilization"`
	DraftProposed   int64   `json:"draft_proposed"`
	DraftAccepted   int64   `json:"draft_accepted"`
	DraftAcceptance float64 `json:"draft_acceptance"`
}

// MCNStats is the live MCN-sink telemetry in /runs/{id}/stats.
type MCNStats struct {
	Events       int64   `json:"events"`
	Rejected     int64   `json:"rejected"`
	UEs          int64   `json:"ues"`
	ConnectedUEs int64   `json:"connected_ues"`
	Instances    int64   `json:"instances"`
	MeanMs       float64 `json:"latency_mean_ms"`
	P95Ms        float64 `json:"latency_p95_ms"`
	P99Ms        float64 `json:"latency_p99_ms"`
}

// ReplayStats is the live closed-loop replay transport telemetry in
// /runs/{id}/stats.
type ReplayStats struct {
	Cwnd        int64   `json:"cwnd"`
	Inflight    int64   `json:"inflight"`
	SRTTMs      float64 `json:"srtt_ms"`
	RTOMs       float64 `json:"rto_ms"`
	Sent        int64   `json:"sent"`
	Acked       int64   `json:"acked"`
	Retransmits int64   `json:"retransmits"`
	Reconnects  int64   `json:"reconnects"`
}

// PoolStats is the run-window tensor worker-pool load telemetry in
// /runs/{id}/stats: deltas of the process-wide pool counters across the
// run's lifetime (the pool is shared, so overlapping runs both observe it).
type PoolStats struct {
	Workers      int     `json:"workers"`
	ValidPolls   int64   `json:"valid_polls"`
	EmptyPolls   int64   `json:"empty_polls"`
	Items        int64   `json:"items"`
	ItemsPerPoll float64 `json:"items_per_poll"`
}

// RunStats is the GET /runs/{id}/stats body: a point-in-time snapshot of a
// run's live counters, safe to take while the run is in flight.
type RunStats struct {
	ID          string  `json:"id"`
	Scenario    string  `json:"scenario"`
	State       string  `json:"state"`
	Events      int64   `json:"events"`
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is the cumulative streaming-phase rate; RecentPerSec is
	// the rate since the previous stats scrape (0 on the first scrape).
	EventsPerSec    float64 `json:"events_per_sec"`
	RecentPerSec    float64 `json:"recent_events_per_sec"`
	Compression     float64 `json:"compression"`
	PacerLagSeconds float64 `json:"pacer_lag_seconds"`
	// SinkRetries counts transient sink write errors absorbed by the
	// bounded-backoff retry layer; SinkDropped the writes the circuit
	// breaker discarded under the drop policy; ShedEvents the releases
	// the pacer load-shed (events delivered, pacing skipped).
	SinkRetries int64                  `json:"sink_retries,omitempty"`
	SinkDropped int64                  `json:"sink_dropped,omitempty"`
	ShedEvents  int64                  `json:"shed_events,omitempty"`
	Sources     map[string]SourceStats `json:"sources,omitempty"`
	MCN         *MCNStats              `json:"mcn,omitempty"`
	Replay      *ReplayStats           `json:"replay,omitempty"`
	Pool        *PoolStats             `json:"pool,omitempty"`
}

// run is one scenario execution owned by the daemon.
type run struct {
	id           string
	scenarioName string
	spec         *scenario.Spec
	sink         string
	out          string
	addr         string
	closedLoop   bool
	ues          int
	compression  float64
	opts         scenario.RunOpts

	cancel context.CancelFunc
	done   chan struct{}
	// runCtx is the run's root context, carried from submission so a
	// queued run can launch (or be cancelled) later.
	runCtx context.Context

	// Overload-protection plumbing, all set before the run is published.
	// budget is the run's resource envelope (also in opts.Budget);
	// degrade the file-sink failure policy; shedAfter the pacer
	// load-shedding bound; admitUEs the run's admission cost in UE slots;
	// recovered marks a crash-recovery incarnation (its wall budget
	// counts from the journaled start); overBudget counts budget breaches
	// into the daemon's kind-labeled series.
	budget     scenario.Budget
	degrade    string
	shedAfter  time.Duration
	admitUEs   int64
	recovered  bool
	overBudget func(kind string)
	// queueSp spans the admission-queue wait; breaker is the live sink
	// circuit breaker (nil until the sink opens, and for fail policy).
	queueSp tracez.Active
	breaker atomic.Pointer[breakerWriter]

	// pacer is published by the lifecycle goroutine when streaming begins;
	// its counters are the run's live event telemetry.
	pacer atomic.Pointer[scenario.Pacer]
	// decode holds the per-cptgpt-source stats sinks, created before the
	// pipeline opens so generation-phase telemetry is live from the start.
	decode map[string]*cptgpt.DecodeStats
	// mcnLive is set for the mcn sink.
	mcnLive *mcn.LiveStats
	// replayLive is set for the closed-loop replay sink.
	replayLive *replaynet.LiveStats
	// poolBase is the process-wide tensor pool counter baseline captured at
	// run start; stats() reports deltas against it.
	poolBase tensor.PoolLoadStats

	// Durable-run plumbing, nil/zero when journaling is off. journal is the
	// run's write-ahead log and jpath its file ("" = memory-only or none);
	// resume/resumeKey carry the checkpoint a recovered run restarts from,
	// baseEvents the events prior incarnations released, sessionID the
	// fixed closed-loop replay session, and replayResumeFrom the absolute
	// sequence the replay server had applied at the checkpoint. All are set
	// before the run goroutine launches and never mutated after.
	journal          *runlog.Journal
	jpath            string
	resume           *runlog.Checkpoint
	resumeKey        *scenario.Event
	baseEvents       int64
	sessionID        uint64
	replayResumeFrom uint64
	ckptEvery        int64
	ckptInterval     time.Duration
	// resumeSkips is the daemon-wide resume fast-forward counter (nil
	// outside recovery); sinkRetries counts absorbed transient sink errors.
	resumeSkips *telemetry.Counter
	sinkRetries atomic.Int64

	// log receives lifecycle events (nil = silent). Set before the run
	// goroutine launches, never mutated after.
	log *logz.Logger
	// Per-run distribution series, created by registerRunMetrics before the
	// run goroutine launches (the go statement orders the writes) and fed by
	// execute's pipeline wiring. stepHists is keyed by cptgpt source id.
	pacerLagHist  *telemetry.Histogram
	pacerRateHist *telemetry.Histogram
	mcnLatHist    *telemetry.Histogram
	replayRTTHist *telemetry.Histogram
	stepHists     map[string]*telemetry.Histogram

	mu         sync.Mutex
	state      string
	startedAt  time.Time
	streamAt   time.Time // when streaming began (zero until then)
	finishedAt time.Time
	err        error
	result     map[string]any

	// last stats-scrape sample, for the recent-rate estimate.
	scrapeAt     time.Time
	scrapeEvents int64
}

// setState transitions the run's lifecycle state.
func (r *run) setState(state string) {
	now := time.Now()
	r.mu.Lock()
	r.state = state
	if state == StateStreaming {
		r.streamAt = now
	}
	r.mu.Unlock()
	tracez.Record(tracez.StageRunState, r.id, now, 0, 0, state)
	if r.journal != nil {
		r.journal.AppendState(state, "")
	}
	r.log.Infow("run state", "run", r.id, "state", state)
}

// finish records the terminal state, error and sink result. Idempotent:
// once a run is terminal the recorded outcome sticks — a panic unwinding
// through sink cleanup after a normal finish must not overwrite it.
func (r *run) finish(state string, err error, result map[string]any) {
	now := time.Now()
	r.mu.Lock()
	if terminal(r.state) {
		r.mu.Unlock()
		return
	}
	r.state = state
	r.err = err
	r.result = result
	r.finishedAt = now
	wall := now.Sub(r.startedAt)
	events := r.events()
	r.mu.Unlock()
	tracez.Record(tracez.StageRunState, r.id, now, 0, events, state)
	if r.journal != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		r.journal.AppendState(state, msg)
		// A durable terminal record keeps the next startup from resuming a
		// finished run.
		r.journal.Sync()
	}
	if err != nil {
		if be, ok := scenario.AsBudgetExceeded(err); ok && r.overBudget != nil {
			r.overBudget(be.Kind)
		}
		r.log.Errorw("run finished", "run", r.id, "state", state,
			"events", events, "wall", wall, "err", err)
	} else {
		r.log.Infow("run finished", "run", r.id, "state", state,
			"events", events, "wall", wall)
	}
}

// wallDeadline is when the run's wall-clock budget expires. A fresh run
// gets the full budget from launch (queue wait excluded); a recovered run
// gets the remainder measured from its journaled start, with a small
// grace so recovery can at least reach a clean terminal state.
func (r *run) wallDeadline() time.Time {
	d := r.budget.MaxWall
	if r.recovered {
		if rem := d - time.Since(r.startedAt); rem < time.Second {
			d = time.Second
		} else {
			d = rem
		}
	}
	return time.Now().Add(d)
}

// info snapshots the run as wire-form RunInfo.
func (r *run) info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := RunInfo{
		ID: r.id, Scenario: r.scenarioName, Sink: r.sink,
		UEs: r.ues, Compression: r.compression,
		State: r.state, StartedAt: r.startedAt, Result: r.result,
	}
	if !r.finishedAt.IsZero() {
		t := r.finishedAt
		info.FinishedAt = &t
	}
	if r.err != nil {
		info.Error = r.err.Error()
	}
	return info
}

// events returns the live released-event count: what previous
// incarnations checkpointed plus this incarnation's pacer (the resumed
// pacer only sees the regenerated suffix, so the sum counts every event
// exactly once).
func (r *run) events() int64 {
	if p := r.pacer.Load(); p != nil {
		return r.baseEvents + p.Events()
	}
	return r.baseEvents
}

// lagSeconds returns the pacer's current schedule deficit.
func (r *run) lagSeconds() float64 {
	if p := r.pacer.Load(); p != nil {
		return p.Lag().Seconds()
	}
	return 0
}

// stats snapshots the run's live telemetry. The scrape window for the
// recent-rate estimate advances on every call.
func (r *run) stats() RunStats {
	now := time.Now()
	events := r.events()

	r.mu.Lock()
	st := RunStats{
		ID: r.id, Scenario: r.scenarioName, State: r.state,
		Events: events, Compression: r.compression,
		PacerLagSeconds: r.lagSeconds(),
		SinkRetries:     r.sinkRetries.Load(),
	}
	if p := r.pacer.Load(); p != nil {
		st.ShedEvents = p.Shed()
	}
	if b := r.breaker.Load(); b != nil {
		st.SinkDropped = b.dropped.Load()
	}
	if !r.streamAt.IsZero() {
		end := now
		if !r.finishedAt.IsZero() {
			end = r.finishedAt
		}
		if wall := end.Sub(r.streamAt).Seconds(); wall > 0 {
			st.WallSeconds = wall
			st.EventsPerSec = float64(events) / wall
		}
	}
	if !r.scrapeAt.IsZero() {
		if dt := now.Sub(r.scrapeAt).Seconds(); dt > 0 {
			st.RecentPerSec = float64(events-r.scrapeEvents) / dt
		}
	}
	r.scrapeAt = now
	r.scrapeEvents = events
	r.mu.Unlock()

	if len(r.decode) > 0 {
		st.Sources = make(map[string]SourceStats, len(r.decode))
		slots := float64(r.opts.DecodeBatch())
		for id, ds := range r.decode {
			snap := ds.Load()
			s := SourceStats{
				Steps:         snap.Steps,
				SlotSteps:     snap.SlotSteps,
				DraftProposed: snap.DraftProposed,
				DraftAccepted: snap.DraftAccepted,
			}
			if s.Steps > 0 && slots > 0 {
				s.SlotUtilization = float64(s.SlotSteps) / (float64(s.Steps) * slots)
			}
			if s.DraftProposed > 0 {
				s.DraftAcceptance = float64(s.DraftAccepted) / float64(s.DraftProposed)
			}
			st.Sources[id] = s
		}
	}
	if r.mcnLive != nil {
		st.MCN = &MCNStats{
			Events:       r.mcnLive.Events.Load(),
			Rejected:     r.mcnLive.Rejected.Load(),
			UEs:          r.mcnLive.UEs.Load(),
			ConnectedUEs: r.mcnLive.ConnectedUEs.Load(),
			Instances:    r.mcnLive.Instances.Load(),
			MeanMs:       float64(r.mcnLive.MeanLatencyNanos.Load()) / 1e6,
			P95Ms:        float64(r.mcnLive.P95LatencyNanos.Load()) / 1e6,
			P99Ms:        float64(r.mcnLive.P99LatencyNanos.Load()) / 1e6,
		}
	}
	if live := r.replayLive; live != nil {
		st.Replay = &ReplayStats{
			Cwnd:        live.CwndEvents.Load(),
			Inflight:    live.Inflight.Load(),
			SRTTMs:      float64(live.SRTTNanos.Load()) / 1e6,
			RTOMs:       float64(live.RTONanos.Load()) / 1e6,
			Sent:        live.Sent.Load(),
			Acked:       live.Acked.Load(),
			Retransmits: live.Retransmits.Load(),
			Reconnects:  live.Reconnects.Load(),
		}
	}
	if len(r.decode) > 0 {
		// Pool load only accompanies runs that exercise the tensor pool
		// (cptgpt sources); the deltas are against the run-start baseline.
		cur := tensor.PoolLoad()
		p := &PoolStats{
			Workers:    cur.Workers,
			ValidPolls: cur.ValidPolls - r.poolBase.ValidPolls,
			EmptyPolls: cur.EmptyPolls - r.poolBase.EmptyPolls,
			Items:      cur.Items - r.poolBase.Items,
		}
		if p.ValidPolls > 0 {
			p.ItemsPerPoll = float64(p.Items) / float64(p.ValidPolls)
		}
		st.Pool = p
	}
	return st
}

// execute runs the scenario to its sink under ctx. It is the run's
// lifecycle goroutine body: generating → streaming → terminal state, with
// a context cancellation draining cleanly at either phase.
func (r *run) execute(ctx context.Context, mcnCfg mcn.Config) {
	opts := r.opts
	var recSp tracez.Active
	if r.resume != nil {
		// Recovery: regenerate deterministically and prune everything at or
		// before the checkpointed merge key; the stream yields exactly the
		// suffix the uninterrupted run would have produced.
		opts.ResumeAfter = r.resumeKey
		recSp = tracez.Begin(tracez.StageRunRecover, r.id)
	}
	genSp := tracez.Begin(tracez.StageRunGenerate, r.id)
	st, err := r.spec.OpenContext(ctx, opts)
	genSp.End(0, r.scenarioName)
	if err != nil {
		if recSp.Live() {
			recSp.End(0, "failed")
		}
		switch {
		case errors.Is(err, context.Canceled):
			r.finish(StateStopped, nil, nil)
		case r.budget.MaxWall > 0 && errors.Is(err, context.DeadlineExceeded):
			// The wall-clock budget expired during generation: the only
			// deadline on a run's context is its own budget, so classify
			// the expiry as the typed breach.
			if _, typed := scenario.AsBudgetExceeded(err); !typed {
				err = scenario.WrapWallClock(r.budget.MaxWall, time.Since(r.startedAt), err)
			}
			r.finish(StateFailed, err, nil)
		default:
			r.finish(StateFailed, err, nil)
		}
		return
	}
	defer st.Close()
	if recSp.Live() {
		skipped := st.Skipped()
		if r.resumeSkips != nil {
			r.resumeSkips.Add(skipped)
		}
		recSp.End(skipped, "fast-forward")
	}

	pacer := scenario.NewPacer(ctx, st, r.compression)
	pacer.SetHistograms(r.pacerLagHist, r.pacerRateHist)
	// The pacer enforces the event-count ceiling (less what previous
	// incarnations already released) and classifies the wall deadline; a
	// resumed run also continues its cumulative shed counter.
	pb := r.budget
	if pb.MaxEvents > 0 {
		if rem := pb.MaxEvents - r.baseEvents; rem >= 1 {
			pb.MaxEvents = rem
		} else {
			pb.MaxEvents = 1
		}
	}
	pacer.SetBudget(pb)
	if r.shedAfter > 0 {
		pacer.SetShedAfterLag(r.shedAfter)
	}
	if r.resume != nil {
		pacer.ResumeAt(r.resume.TraceOffset)
		pacer.ResumeShed(r.resume.Shed)
	}
	r.pacer.Store(pacer)
	r.setState(StateStreaming)

	streamSp := tracez.Begin(tracez.StageRunStream, r.id)
	defer func() {
		if streamSp.Live() {
			streamSp.End(r.events(), r.sink)
		}
	}()

	// With a journal attached, a checkpoint tap between the pacer and the
	// sink records recovery points at the configured cadence.
	var src scenario.EventSource = pacer
	var tap *ckptTap
	if r.journal != nil {
		tap = newCkptTap(pacer, r)
		src = tap
	}

	var result map[string]any
	switch r.sink {
	case "count":
		var sum scenario.Summary
		if sum, err = scenario.Drain(src); err == nil {
			result = map[string]any{
				"events":            sum.Events,
				"first_time":        sum.FirstTime,
				"last_time":         sum.LastTime,
				"peak_rate":         sum.PeakRate,
				"peak_window_start": sum.PeakWindowStart,
			}
		}
	case "mcn":
		mcnCfg.Live = r.mcnLive
		mcnCfg.LatencySink = r.mcnLatHist
		var rep *mcn.Report
		if rep, err = scenario.RunMCN(src, mcnCfg); err == nil {
			result = map[string]any{
				"events":          rep.Events,
				"rejected":        rep.Rejected,
				"ues":             rep.UEs,
				"latency_mean_ms": 1e3 * rep.MeanLatencySec,
				"latency_p95_ms":  1e3 * rep.P95LatencySec,
				"latency_p99_ms":  1e3 * rep.P99LatencySec,
				"peak_rate":       rep.PeakRate,
				"max_instances":   rep.MaxInstancesUsed,
			}
		}
	case "jsonl", "csv":
		var n int64
		if n, err = r.writeFile(ctx, src, tap); err == nil {
			result = map[string]any{"events": n, "out": r.out}
			if b := r.breaker.Load(); b != nil && b.dropped.Load() > 0 {
				result["dropped"] = b.dropped.Load()
			}
		}
	case "replay":
		// The pacer already paces against wall clock, so the replay drivers
		// run unpaced (Speedup 0) on top of it. A DELETE cancels the pacer,
		// which drains cleanly: the driver sees end-of-source, finishes the
		// in-flight window and completes the STATS/BYE handshake, so the
		// server-side session always ends on a frame boundary.
		if r.closedLoop {
			var cst replaynet.ClosedStats
			copts := replaynet.ClosedOpts{
				Live: r.replayLive, RTTSink: r.replayRTTHist,
				// A journaled run fixes its session identity at submission so
				// a resumed incarnation rejoins the server-side session and
				// skips everything the server already applied — exactly-once
				// end to end.
				SessionID:  r.sessionID,
				ResumeFrom: r.replayResumeFrom,
			}
			if cst, err = scenario.ReplayClosed(r.addr, src, copts); err == nil {
				result = map[string]any{
					"events":          cst.Server.Events,
					"rejected":        cst.Server.Rejected,
					"duplicates":      cst.Server.Duplicates,
					"sent":            cst.Sent,
					"acked":           cst.Acked,
					"retransmits":     cst.Retransmits,
					"reconnects":      cst.Reconnects,
					"latency_mean_ms": float64(cst.MeanLatency) / 1e6,
					"latency_p99_ms":  float64(cst.P99Latency) / 1e6,
					"achieved_rate":   cst.AchievedRate,
				}
			}
		} else {
			var rst replaynet.Stats
			if rst, err = scenario.ReplayTCP(r.addr, src, replaynet.ReplayOpts{}); err == nil {
				result = map[string]any{
					"events":             rst.Events,
					"rejected":           rst.Rejected,
					"peak_connected_ues": rst.PeakConnectedUEs,
				}
			}
		}
	default:
		err = fmt.Errorf("served: unknown sink %q", r.sink)
	}

	switch {
	case err != nil:
		r.finish(StateFailed, err, nil)
	case pacer.Stopped():
		r.finish(StateStopped, nil, result)
	default:
		r.finish(StateDone, nil, result)
	}
}

// sinkWriterTestHook, when non-nil, wraps the sink file below the retry
// layer — the seam the degrade and soak tests inject ENOSPC and slow-sink
// faults through.
var sinkWriterTestHook atomic.Pointer[func(runID string, w io.Writer) io.Writer]

// writeFile drains the source into the run's jsonl/csv output file,
// gzip-compressing a ".gz" path. The writer chain is flushed and closed
// before the event count is returned, so a stopped run's file is complete
// up to its last released event — never truncated mid-line.
//
// On a resumed run the file is cut back to the checkpoint's durable byte
// cursor and appended to; with the bit-identical regenerated suffix this
// makes the final file byte-for-byte equal to an uninterrupted run's
// (exactly-once). Gzip forecloses the cursor arithmetic, so ".gz" runs
// restart from scratch instead (resumePlan never hands them a
// checkpoint). With a checkpoint tap attached, the tap's sync hook
// flushes the encoder and fsyncs the file before each checkpoint is
// recorded — a checkpoint always implies a durable sink prefix covering
// exactly the events at or before its key.
func (r *run) writeFile(ctx context.Context, src scenario.EventSource, tap *ckptTap) (int64, error) {
	gz := strings.HasSuffix(r.out, ".gz")
	resumed := r.resume != nil && !gz
	var (
		f         *os.File
		err       error
		baseLines int64
	)
	if resumed {
		c := r.resume
		baseLines = c.SinkLines
		f, err = os.OpenFile(r.out, os.O_WRONLY, 0o644)
		if err == nil {
			if terr := f.Truncate(c.SinkBytes); terr != nil {
				err = terr
			} else if _, serr := f.Seek(c.SinkBytes, io.SeekStart); serr != nil {
				err = serr
			}
			if err != nil {
				f.Close()
			}
		}
	} else {
		f, err = os.Create(r.out)
	}
	if err != nil {
		return 0, err
	}
	var base io.Writer = f
	if hook := sinkWriterTestHook.Load(); hook != nil {
		base = (*hook)(r.id, f)
	}
	cw := &countingWriter{w: &retryWriter{w: base, retries: &r.sinkRetries}}
	if resumed {
		cw.n = r.resume.SinkBytes
	}
	var w io.Writer = cw
	var gzw *gzip.Writer
	if gz {
		gzw = gzip.NewWriter(cw)
		w = gzw
	}
	if r.degrade == DegradeDrop || r.degrade == DegradePause {
		// The breaker sits above the byte-counting layer, so dropped
		// writes never reach the durable-cursor arithmetic and resumed
		// checkpoints stay exact.
		bw := newBreakerWriter(w, ctx, r.degrade, r.id)
		r.breaker.Store(bw)
		defer bw.finishSpan()
		w = bw
	}
	lw, lerr := scenario.NewLineWriter(w, r.sink, src.UEID, !resumed)
	if lerr != nil {
		f.Close()
		return 0, lerr
	}
	if tap != nil && !gz {
		tap.syncSink = func(c *runlog.Checkpoint) bool {
			if lw.Flush() != nil || f.Sync() != nil {
				return false
			}
			c.SinkBytes = cw.n
			c.SinkLines = baseLines + int64(lw.Count())
			return true
		}
	}
	sp := tracez.Begin(tracez.StageScenarioSink, "")
	defer func() { sp.End(int64(lw.Count()), r.sink) }()
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if err = lw.Write(e); err != nil {
			break
		}
	}
	if err == nil {
		err = src.Err()
	}
	if ferr := lw.Flush(); err == nil {
		err = ferr
	}
	if gzw != nil {
		if cerr := gzw.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return baseLines + int64(lw.Count()), err
}
