// Package served is the cptserved daemon core: a long-running HTTP service
// that loads CPT-GPT models once, runs scenarios on demand, paces their
// event streams against wall-clock time under a compression factor, and
// exposes live per-run telemetry.
//
// The management API (see docs/OPERATIONS.md for the full catalog):
//
//	POST   /runs            start a run (builtin name or inline spec)
//	GET    /runs            list runs
//	GET    /runs/{id}       inspect one run
//	GET    /runs/{id}/stats live telemetry snapshot (JSON)
//	DELETE /runs/{id}       stop a run (clean drain)
//	GET    /metrics         Prometheus text exposition
//	GET    /healthz         liveness
//	GET    /debug/trace     flight-recorder spans + per-stage aggregates
//	GET    /debug/pprof/*   Go profiler endpoints (opt-in via Options)
//
// Concurrency contract: a Server is safe for concurrent use by any number
// of HTTP clients. Each run executes on its own goroutine; its event
// pipeline is single-consumer (the run goroutine), while its telemetry
// (pacer counters, DecodeStats, mcn.LiveStats, the telemetry registry) is
// all atomics, read by handlers and the /metrics scraper without touching
// the hot path. Close cancels every run's context; the clean-drain
// contract of scenario.Pacer means stopped runs flush their sinks before
// ending, so stopping the daemon never truncates output mid-record.
//
// Durability: with Options.JournalDir set, every run maintains a
// write-ahead journal (internal/runlog) of its identity, progress
// checkpoints and state transitions, and Recover resumes interrupted runs
// after a daemon crash — byte-identical file sinks, exactly-once
// closed-loop replay. See docs/ARCHITECTURE.md for the journal format and
// the recovery state machine, docs/OPERATIONS.md for the runbook.
package served

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/logz"
	"cptgpt/internal/mcn"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/runlog"
	"cptgpt/internal/scenario"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tensor"
	"cptgpt/internal/tracez"
)

// DefaultMaxFinishedRuns is the number of terminal runs retained (with
// their stats and metric series) before the oldest are evicted.
const DefaultMaxFinishedRuns = 256

// Options configures a Server.
type Options struct {
	// TempDir hosts per-run spill files ("" = system temp dir).
	TempDir string
	// Parallelism is the default generation-phase worker bound applied to
	// runs that do not set their own (0 = the engine default).
	Parallelism int
	// MaxFinishedRuns bounds the terminal-run history (0 = default).
	MaxFinishedRuns int
	// MCN configures the mcn sink; zero value means mcn.DefaultConfig().
	MCN mcn.Config
	// Log receives the daemon's structured lifecycle events (nil = silent).
	Log *logz.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// management mux. Off by default: the profiler exposes goroutine dumps
	// and should only face operators.
	EnablePprof bool

	// JournalDir enables durable runs: every run appends a write-ahead
	// journal (<dir>/<run-id>.runlog) of its spec, progress checkpoints and
	// state transitions, and Recover resumes interrupted runs from it after
	// a daemon crash. "" disables journaling.
	JournalDir string
	// Fsync is the journal durability policy (default: fsync on a timer);
	// FsyncInterval is the flush/fsync cadence for the timer-based policies
	// (0 = the runlog default).
	Fsync         runlog.Policy
	FsyncInterval time.Duration
	// Recover selects Recover's disposition of interrupted journals:
	// "resume" (default), "fail" or "ignore".
	Recover string
	// CheckpointEvents / CheckpointInterval set the journal checkpoint
	// cadence (0 = defaults).
	CheckpointEvents   int
	CheckpointInterval time.Duration

	// Admission control — daemon-wide budgets checked at POST /runs, all
	// 0 = unlimited. MaxActiveRuns bounds concurrently active runs,
	// MaxTotalUEs the summed UE population across them, MaxSpillBytes the
	// daemon-wide live spill-disk footprint. An over-budget submission
	// waits in a bounded FIFO queue of QueueDepth (0 = no queue) and is
	// admitted as budget frees; past the queue it is rejected with 429
	// and a Retry-After.
	MaxActiveRuns int
	MaxTotalUEs   int64
	MaxSpillBytes int64
	QueueDepth    int
}

// Server owns the model cache, the run registry and the telemetry
// registry behind the cptserved HTTP API.
type Server struct {
	opts  Options
	mcn   mcn.Config
	reg   *telemetry.Registry
	log   *logz.Logger
	start time.Time

	runsStarted *telemetry.Counter
	runPanics   *telemetry.Counter
	// journalM aggregates every run journal's append/fsync counters;
	// recoveries and resumeSkips exist only when journaling is enabled.
	journalM    runlog.Metrics
	recoveries  *telemetry.Counter
	resumeSkips *telemetry.Counter

	// admission is the lock-free daemon-wide resource ledger; the
	// counters record its verdicts, budgetExceeded (keyed by budget kind)
	// the per-run budget breaches.
	admission      admitter
	admitted       *telemetry.Counter
	rejected       *telemetry.Counter
	queuedTotal    *telemetry.Counter
	budgetExceeded map[string]*telemetry.Counter

	mu           sync.Mutex
	models       map[string]*cptgpt.Model
	runs         map[string]*run
	order        []string // insertion order, for listing and eviction
	queue        []*run   // FIFO admission queue, subset of runs
	seq          int
	shuttingDown bool
	wg           sync.WaitGroup
}

// New builds a Server. No goroutines start until the first run.
func New(opts Options) *Server {
	if opts.MaxFinishedRuns <= 0 {
		opts.MaxFinishedRuns = DefaultMaxFinishedRuns
	}
	if opts.CheckpointEvents <= 0 {
		opts.CheckpointEvents = DefaultCheckpointEvents
	}
	if opts.CheckpointInterval <= 0 {
		opts.CheckpointInterval = DefaultCheckpointInterval
	}
	cfg := opts.MCN
	if cfg.BaseInstances == 0 && cfg.DefaultServiceCost == 0 {
		cfg = mcn.DefaultConfig()
	}
	s := &Server{
		opts:   opts,
		mcn:    cfg,
		reg:    telemetry.NewRegistry(),
		log:    opts.Log,
		start:  time.Now(),
		models: make(map[string]*cptgpt.Model),
		runs:   make(map[string]*run),
	}
	s.admission.maxRuns = int64(opts.MaxActiveRuns)
	s.admission.maxUEs = opts.MaxTotalUEs
	s.admission.maxSpill = opts.MaxSpillBytes
	// The daemon always flies with the recorder on: the ring is fixed-size
	// and span recording is a few atomics, so there is no reason to make
	// operators opt in before the incident they need it for.
	tracez.Enable()
	s.reg.GaugeFunc("cptserved_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("cptserved_models_loaded",
		"Distinct model files resident in the daemon's cache.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.models))
		})
	s.reg.GaugeFunc("cptserved_runs_active",
		"Runs currently generating or streaming.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, r := range s.runs {
				r.mu.Lock()
				if !terminal(r.state) {
					n++
				}
				r.mu.Unlock()
			}
			return float64(n)
		})
	s.runsStarted = s.reg.Counter("cptserved_runs_started_total",
		"Runs accepted by POST /runs since daemon start.")
	s.runPanics = s.reg.Counter("cptserved_run_panics_total",
		"Run goroutines that panicked and were contained as failed runs.")
	s.admitted = s.reg.Counter("cptserved_admission_admitted_total",
		"Submissions admitted (immediately or from the queue).")
	s.rejected = s.reg.Counter("cptserved_admission_rejected_total",
		"Submissions rejected with 429 (budget exhausted, queue full).")
	s.queuedTotal = s.reg.Counter("cptserved_admission_queued_total",
		"Submissions parked in the admission queue.")
	s.reg.GaugeFunc("cptserved_admission_queue_depth",
		"Runs currently waiting in the admission queue.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.queue))
		})
	s.reg.GaugeFunc("cptserved_spill_bytes",
		"Live spill-disk footprint summed across runs.",
		func() float64 { return float64(s.admission.spill.Load()) })
	s.budgetExceeded = make(map[string]*telemetry.Counter, 3)
	for _, kind := range []string{scenario.BudgetSpillBytes, scenario.BudgetEvents, scenario.BudgetWallClock} {
		s.budgetExceeded[kind] = s.reg.Counter("cptserved_budget_exceeded_total",
			"Runs failed by a per-run resource budget, by exhausted resource.",
			telemetry.L("kind", kind))
	}
	s.reg.GaugeFunc("cptserved_healthz_state",
		"Readiness: 1 when serving, 0 when degraded (see GET /healthz).",
		func() float64 {
			if len(s.healthReasons()) > 0 {
				return 0
			}
			return 1
		})
	if opts.JournalDir != "" {
		s.reg.CounterFunc("cptserved_journal_appends_total",
			"Records appended to run journals.", s.journalM.Appends.Load)
		s.reg.CounterFunc("cptserved_journal_bytes_total",
			"Framed bytes appended to run journals.", s.journalM.Bytes.Load)
		s.reg.CounterFunc("cptserved_journal_fsyncs_total",
			"Journal fsyncs issued by the durability policy.", s.journalM.Fsyncs.Load)
		s.reg.CounterFunc("cptserved_journal_errors_total",
			"Disk errors that degraded a run journal to memory-only.", s.journalM.Errors.Load)
		s.recoveries = s.reg.Counter("cptserved_journal_recoveries_total",
			"Interrupted runs resumed from their journals at startup.")
		s.resumeSkips = s.reg.Counter("cptserved_journal_resume_skip_events_total",
			"Checkpointed events regenerated and pruned during resume fast-forward.")
	}
	return s
}

// loadModel resolves a model path through the daemon-lifetime cache, so a
// model file is deserialized once no matter how many runs reference it.
func (s *Server) loadModel(path string) (*cptgpt.Model, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = path
	}
	s.mu.Lock()
	if m, ok := s.models[abs]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()
	// Load outside the lock: model files can be large and two concurrent
	// first-loads of the same file are harmless (last write wins, both
	// models are equivalent).
	t0 := time.Now()
	m, err := cptgpt.LoadFile(path)
	if err != nil {
		s.log.Warnw("model load failed", "path", path, "err", err)
		return nil, err
	}
	s.log.Infow("model loaded", "path", path, "dur", time.Since(t0))
	s.mu.Lock()
	s.models[abs] = m
	s.mu.Unlock()
	return m, nil
}

// PreloadModel loads a model into the cache at startup so the first run
// referencing it pays no load latency.
func (s *Server) PreloadModel(path string) error {
	_, err := s.loadModel(path)
	return err
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleStart)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("GET /runs/{id}/stats", s.handleStats)
	mux.HandleFunc("DELETE /runs/{id}", s.handleStop)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /debug/trace", tracez.Handler())
	if s.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// overBudgetInc counts a run's budget breach into the kind-labeled
// cptserved_budget_exceeded_total series.
func (s *Server) overBudgetInc(kind string) {
	if c := s.budgetExceeded[kind]; c != nil {
		c.Inc()
	}
}

// healthReasons computes why the daemon is degraded — empty when it is
// healthy. Degraded means still serving, but with reduced guarantees an
// operator should know about before pointing more load here: an active
// run's journal fell back to memory-only (crash recovery lost), a sink
// circuit breaker is open (output degraded), or the admission queue is
// full (new submissions bounce).
func (s *Server) healthReasons() []string {
	var reasons []string
	s.mu.Lock()
	if s.opts.QueueDepth > 0 && len(s.queue) >= s.opts.QueueDepth {
		reasons = append(reasons, "admission_queue_full")
	}
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	journalDegraded, breakerOpenSeen := false, false
	for _, r := range runs {
		r.mu.Lock()
		j, term := r.journal, terminal(r.state)
		r.mu.Unlock()
		if term {
			continue
		}
		if j != nil && j.Degraded() {
			journalDegraded = true
		}
		if r.breakerState() == float64(breakerOpen) {
			breakerOpenSeen = true
		}
	}
	if journalDegraded {
		reasons = append(reasons, "journal_degraded")
	}
	if breakerOpenSeen {
		reasons = append(reasons, "sink_breaker_open")
	}
	return reasons
}

// handleHealthz is readiness-aware liveness: 200 while healthy, 503 with
// the reasons while degraded — load balancers steer traffic away while
// operators read the detail.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"uptime_seconds": time.Since(s.start).Seconds()}
	if reasons := s.healthReasons(); len(reasons) > 0 {
		body["ok"] = false
		body["state"] = "degraded"
		body["reasons"] = reasons
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["ok"] = true
	body["state"] = "serving"
	writeJSON(w, http.StatusOK, body)
}

// Close stops every run (clean drain), waits for their goroutines, and
// rejects new runs. Bounded by ctx: if the drain outlasts it, Close
// returns ctx.Err() with run goroutines still finishing in the background.
func (s *Server) Close(ctx context.Context) error {
	t0 := time.Now()
	s.mu.Lock()
	s.shuttingDown = true
	active := 0
	for _, r := range s.runs {
		r.mu.Lock()
		if !terminal(r.state) {
			active++
		}
		r.mu.Unlock()
		r.cancel()
	}
	queued := s.queue
	s.queue = nil
	s.mu.Unlock()
	// Queued runs never launched: no goroutine will close their done
	// channel, so finish them here as stopped.
	for _, r := range queued {
		r.queueSp.End(0, "shutdown")
		r.finish(StateStopped, nil, nil)
		close(r.done)
	}
	s.log.Infow("daemon closing", "active_runs", active)

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.log.Infow("daemon closed", "drain", time.Since(t0))
		return nil
	case <-ctx.Done():
		s.log.Warnw("daemon close timed out with runs still draining", "after", time.Since(t0))
		return ctx.Err()
	}
}

// resolveSpec turns a StartRequest's scenario/spec pair into a validated
// Spec and its display name.
func resolveSpec(req *StartRequest) (*scenario.Spec, string, error) {
	switch {
	case req.Scenario != "" && req.Spec != nil:
		return nil, "", errors.New("set exactly one of scenario and spec, not both")
	case req.Scenario != "":
		spec, err := scenario.Builtin(req.Scenario)
		if err != nil {
			return nil, "", err
		}
		return spec, req.Scenario, nil
	case req.Spec != nil:
		if err := req.Spec.Validate(); err != nil {
			return nil, "", err
		}
		name := req.Spec.Name
		if name == "" {
			name = "inline"
		}
		return req.Spec, name, nil
	default:
		return nil, "", errors.New("set scenario (builtin name) or spec (inline scenario)")
	}
}

// validateStart checks the knobs that can be rejected before any work
// starts, so bad requests fail with 400 rather than a failed run.
func validateStart(req *StartRequest) error {
	if _, err := cptgpt.ParsePrecision(req.Precision); err != nil {
		return err
	}
	switch req.Speculative {
	case "", "on", "off":
	default:
		return fmt.Errorf("speculative must be \"on\", \"off\" or empty, got %q", req.Speculative)
	}
	if req.Compression < 0 {
		return errors.New("compression must be ≥ 0")
	}
	if req.UEs < 0 {
		return errors.New("ues must be ≥ 0")
	}
	switch req.Sink {
	case "", "count", "mcn":
		if req.Out != "" {
			return fmt.Errorf("sink %q takes no out path", req.Sink)
		}
	case "jsonl", "csv":
		if req.Out == "" {
			return fmt.Errorf("sink %q requires out (server-side output path)", req.Sink)
		}
	case "replay":
		if req.Out != "" {
			return fmt.Errorf("sink %q takes no out path", req.Sink)
		}
		if req.Addr == "" {
			return errors.New(`sink "replay" requires addr (replaynet server address)`)
		}
		// Probe reachability now so a bad address is a 400, not a run that
		// starts, spins up the pipeline and then fails.
		conn, err := net.DialTimeout("tcp", req.Addr, 2*time.Second)
		if err != nil {
			return fmt.Errorf("replay addr %q unreachable: %w", req.Addr, err)
		}
		conn.Close()
	default:
		return fmt.Errorf("unknown sink %q (want count, mcn, jsonl, csv or replay)", req.Sink)
	}
	if req.Sink != "replay" {
		if req.Addr != "" {
			return fmt.Errorf("sink %q takes no addr", req.Sink)
		}
		if req.ClosedLoop {
			return fmt.Errorf("closed_loop only applies to the replay sink")
		}
	}
	if req.MaxSpillBytes < 0 || req.MaxEvents < 0 {
		return errors.New("max_spill_bytes and max_events must be ≥ 0")
	}
	if req.MaxWallSeconds < 0 || req.ShedAfterLagSeconds < 0 {
		return errors.New("max_wall_seconds and shed_after_lag_seconds must be ≥ 0")
	}
	switch req.Degrade {
	case "", DegradeFail:
	case DegradeDrop, DegradePause:
		if req.Sink != "jsonl" && req.Sink != "csv" {
			return fmt.Errorf("degrade %q only applies to the jsonl and csv sinks", req.Degrade)
		}
	default:
		return fmt.Errorf("unknown degrade policy %q (want fail, drop or pause)", req.Degrade)
	}
	return nil
}

func (s *Server) handleStart(w http.ResponseWriter, req *http.Request) {
	var body StartRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if err := validateStart(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, name, err := resolveSpec(&body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	sink := body.Sink
	if sink == "" {
		sink = "count"
	}
	parallelism := body.Parallelism
	if parallelism == 0 {
		parallelism = s.opts.Parallelism
	}

	r := &run{
		scenarioName: name,
		spec:         spec,
		sink:         sink,
		out:          body.Out,
		addr:         body.Addr,
		closedLoop:   body.ClosedLoop,
		ues:          body.UEs,
		compression:  body.Compression,
		done:         make(chan struct{}),
		decode:       make(map[string]*cptgpt.DecodeStats),
		state:        StateGenerating,
		startedAt:    time.Now(),
		poolBase:     tensor.PoolLoad(),
		ckptEvery:    int64(s.opts.CheckpointEvents),
		ckptInterval: s.opts.CheckpointInterval,
		degrade:      body.Degrade,
		shedAfter:    time.Duration(body.ShedAfterLagSeconds * float64(time.Second)),
		admitUEs:     admissionUEs(body.UEs, spec),
		overBudget:   s.overBudgetInc,
		budget: scenario.Budget{
			MaxSpillBytes: body.MaxSpillBytes,
			MaxEvents:     body.MaxEvents,
			MaxWall:       time.Duration(body.MaxWallSeconds * float64(time.Second)),
			SpillUsed:     &s.admission.spill,
		},
	}
	if s.opts.JournalDir != "" && sink == "replay" && body.ClosedLoop {
		// Fix the replay session identity at submission (the same derivation
		// the closed-loop driver defaults to) so a resumed incarnation can
		// rejoin the server-side session.
		r.sessionID = uint64(time.Now().UnixNano())*2654435761 + 1
	}
	for _, src := range spec.Sources {
		if src.Kind == "cptgpt" {
			r.decode[src.ID] = &cptgpt.DecodeStats{}
		}
	}
	if sink == "mcn" {
		r.mcnLive = &mcn.LiveStats{}
	}
	if sink == "replay" && body.ClosedLoop {
		r.replayLive = &replaynet.LiveStats{}
	}
	r.opts = scenario.RunOpts{
		UEs:         body.UEs,
		Parallelism: parallelism,
		BatchSize:   body.BatchSize,
		TempDir:     s.opts.TempDir,
		Precision:   body.Precision,
		Speculative: body.Speculative,
		DraftTokens: body.DraftTokens,
		Budget:      r.budget,
		LoadModel:   s.loadModel,
		SourceStats: func(id string) *cptgpt.DecodeStats { return r.decode[id] },
		// r.stepHists is populated by registerRunMetrics before the run
		// goroutine launches, so the closure reads a settled map.
		SourceStepHist: func(id string) *telemetry.Histogram { return r.stepHists[id] },
	}

	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.runCtx = ctx

	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		cancel()
		writeErr(w, http.StatusServiceUnavailable, errors.New("daemon is shutting down"))
		return
	}
	admitErr := s.admission.check(r.admitUEs)
	if admitErr != nil && len(s.queue) >= s.opts.QueueDepth {
		// Over budget and no queue space: bounce now. The check is
		// re-taken under s.mu, so the rejection is authoritative, not a
		// stale read racing another admission.
		s.mu.Unlock()
		cancel()
		s.rejected.Inc()
		s.log.Infow("run rejected by admission control", "scenario", name,
			"reason", admitErr.Reason, "used", admitErr.Used, "limit", admitErr.Limit)
		w.Header().Set("Retry-After",
			fmt.Sprintf("%d", int(admitErr.RetryAfter.Seconds())))
		writeErr(w, http.StatusTooManyRequests, admitErr)
		return
	}
	s.seq++
	r.id = fmt.Sprintf("run-%d", s.seq)
	s.runs[r.id] = r
	s.order = append(s.order, r.id)
	queued := admitErr != nil
	if queued {
		r.state = StateQueued
		s.enqueueLocked(r)
	} else {
		s.admission.reserve(r.admitUEs)
		s.wg.Add(1)
	}
	evicted := s.evictLocked()
	s.mu.Unlock()

	// Drop evicted runs' series outside s.mu: registry callbacks take
	// s.mu under the registry lock, so the reverse order would deadlock.
	// Evicted journals go too — an evicted run must not resurrect at the
	// next startup.
	for _, er := range evicted {
		s.reg.Drop("run", er.id)
		er.removeJournal()
	}

	s.runsStarted.Inc()
	s.registerRunMetrics(r)
	r.log = s.log
	if queued {
		s.queuedTotal.Inc()
		s.log.Infow("run queued by admission control", "run", r.id,
			"scenario", r.scenarioName, "reason", admitErr.Reason)
		// Re-pump once: if the budget freed between the admission check
		// and the enqueue, no release is coming to wake the queue.
		s.pumpQueue()
		writeJSON(w, http.StatusAccepted, r.info())
		return
	}
	s.admitted.Inc()
	if s.opts.JournalDir != "" {
		s.openJournal(r)
	}
	s.log.Infow("run started", "run", r.id, "scenario", r.scenarioName,
		"sink", r.sink, "ues", r.ues, "compression", r.compression)

	s.launch(r, ctx, cancel)

	writeJSON(w, http.StatusCreated, r.info())
}

// executeTestHook, when non-nil, runs in the run goroutine before
// execute — the seam the panic-containment tests inject through.
var executeTestHook atomic.Pointer[func(*run)]

// launch starts the run's lifecycle goroutine. The panic recovery is the
// innermost defer, so a panic anywhere in the pipeline is contained: the
// run finishes failed with the stack in its error, the journal records
// the terminal state and closes, and the daemon carries on serving. The
// run's admission reservation is released (and the queue pumped) after
// the run is terminal and its done channel closed.
func (s *Server) launch(r *run, ctx context.Context, cancel context.CancelFunc) {
	go func() {
		defer s.wg.Done()
		defer s.releaseAdmission(r)
		defer close(r.done)
		defer cancel()
		// A wall-clock budget becomes a real context deadline here — at
		// launch, not submission, so time spent in the admission queue
		// does not count against the run.
		if r.budget.MaxWall > 0 {
			var cancelWall context.CancelFunc
			ctx, cancelWall = context.WithDeadline(ctx, r.wallDeadline())
			defer cancelWall()
		}
		defer func() {
			if r.journal != nil {
				r.journal.Close()
			}
		}()
		defer func() {
			if p := recover(); p != nil {
				s.runPanics.Inc()
				r.finish(StateFailed, fmt.Errorf("served: run panicked: %v\n%s", p, debug.Stack()), nil)
			}
		}()
		if hook := executeTestHook.Load(); hook != nil {
			(*hook)(r)
		}
		r.execute(ctx, s.mcn)
	}()
}

// evictLocked trims the oldest terminal runs past the retention bound and
// returns the evicted runs (whose metric series and journal files the
// caller must drop after releasing s.mu). Caller holds s.mu.
func (s *Server) evictLocked() []*run {
	excess := len(s.order) - s.opts.MaxFinishedRuns
	if excess <= 0 {
		return nil
	}
	var evicted []*run
	kept := s.order[:0]
	for _, id := range s.order {
		r := s.runs[id]
		r.mu.Lock()
		evictable := terminal(r.state)
		r.mu.Unlock()
		if excess > 0 && evictable {
			delete(s.runs, id)
			evicted = append(evicted, r)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return evicted
}

// registerRunMetrics wires the run's live counters into /metrics. All the
// functions read atomics (or take the run's small state lock), never the
// registry itself, per the telemetry callback contract.
func (s *Server) registerRunMetrics(r *run) {
	lbl := []telemetry.Label{telemetry.L("run", r.id), telemetry.L("scenario", r.scenarioName)}
	s.reg.CounterFunc("cptserved_run_events_total",
		"Events released downstream of the pacer, per run.",
		r.events, lbl...)
	s.reg.GaugeFunc("cptserved_run_pacer_lag_seconds",
		"How far the run's emission lags its paced schedule.",
		r.lagSeconds, lbl...)
	// Distribution series: native histograms fed from the run's hot paths.
	// They are created here — before the run goroutine launches, so the go
	// statement's happens-before makes them visible to execute() without
	// further synchronization.
	r.pacerLagHist = s.reg.Histogram("cptserved_pacer_lag_seconds",
		"Distribution of the pacer's schedule deficit at each release.",
		telemetry.LatencyBuckets, lbl...)
	r.pacerRateHist = s.reg.Histogram("cptserved_pacer_window_rate",
		"Distribution of achieved events/s over 1-second pacer windows.",
		telemetry.RateBuckets, lbl...)
	if r.degrade == DegradeDrop || r.degrade == DegradePause {
		s.reg.GaugeFunc("cptserved_breaker_state",
			"Sink circuit breaker: 0 closed, 1 open, 2 half-open.",
			r.breakerState, lbl...)
	}

	for id, ds := range r.decode {
		ds := ds
		dl := append([]telemetry.Label{telemetry.L("source", id)}, lbl...)
		if r.stepHists == nil {
			r.stepHists = make(map[string]*telemetry.Histogram, len(r.decode))
		}
		r.stepHists[id] = s.reg.Histogram("cptserved_decode_step_seconds",
			"Distribution of batched decode step wall time, per cptgpt source.",
			telemetry.LatencyBuckets, dl...)
		s.reg.CounterFunc("cptserved_decode_steps_total",
			"Batched decode steps executed by a cptgpt source.",
			func() int64 { return ds.Load().Steps }, dl...)
		s.reg.CounterFunc("cptserved_decode_slot_steps_total",
			"Occupied slot-steps across decode steps (utilization numerator).",
			func() int64 { return ds.Load().SlotSteps }, dl...)
		s.reg.CounterFunc("cptserved_decode_draft_proposed_total",
			"Draft tokens proposed by speculative decoding.",
			func() int64 { return ds.Load().DraftProposed }, dl...)
		s.reg.CounterFunc("cptserved_decode_draft_accepted_total",
			"Draft tokens accepted by the multi-token verifier.",
			func() int64 { return ds.Load().DraftAccepted }, dl...)
	}

	if live := r.mcnLive; live != nil {
		s.reg.CounterFunc("cptserved_mcn_events_total",
			"Arrivals processed by the run's MCN simulation.",
			live.Events.Load, lbl...)
		s.reg.CounterFunc("cptserved_mcn_rejected_total",
			"Arrivals rejected by the MCN's UE state machine.",
			live.Rejected.Load, lbl...)
		s.reg.GaugeFunc("cptserved_mcn_connected_ues",
			"UEs currently in the CONNECTED state.",
			func() float64 { return float64(live.ConnectedUEs.Load()) }, lbl...)
		s.reg.GaugeFunc("cptserved_mcn_instances",
			"NF instances currently provisioned by the autoscaler.",
			func() float64 { return float64(live.Instances.Load()) }, lbl...)
		s.reg.GaugeFunc("cptserved_mcn_latency_seconds",
			"MCN event latency (mean refreshes per metering window).",
			func() float64 { return float64(live.MeanLatencyNanos.Load()) / 1e9 },
			append([]telemetry.Label{telemetry.L("stat", "mean")}, lbl...)...)
		s.reg.GaugeFunc("cptserved_mcn_latency_seconds",
			"MCN event latency (mean refreshes per metering window).",
			func() float64 { return float64(live.P95LatencyNanos.Load()) / 1e9 },
			append([]telemetry.Label{telemetry.L("stat", "p95")}, lbl...)...)
		s.reg.GaugeFunc("cptserved_mcn_latency_seconds",
			"MCN event latency (mean refreshes per metering window).",
			func() float64 { return float64(live.P99LatencyNanos.Load()) / 1e9 },
			append([]telemetry.Label{telemetry.L("stat", "p99")}, lbl...)...)
		r.mcnLatHist = s.reg.Histogram("cptserved_mcn_arrival_latency_seconds",
			"Distribution of per-event MCN serving latency.",
			telemetry.LatencyBuckets, lbl...)
	}

	if live := r.replayLive; live != nil {
		s.reg.GaugeFunc("cptserved_replay_cwnd",
			"Closed-loop replay congestion window (in-flight event budget).",
			func() float64 { return float64(live.CwndEvents.Load()) }, lbl...)
		s.reg.GaugeFunc("cptserved_replay_srtt_seconds",
			"Closed-loop replay smoothed transaction RTT.",
			func() float64 { return float64(live.SRTTNanos.Load()) / 1e9 }, lbl...)
		s.reg.GaugeFunc("cptserved_replay_rto_seconds",
			"Closed-loop replay retransmission timeout.",
			func() float64 { return float64(live.RTONanos.Load()) / 1e9 }, lbl...)
		s.reg.CounterFunc("cptserved_replay_retx_total",
			"Events retransmitted after a loss event.",
			live.Retransmits.Load, lbl...)
		s.reg.GaugeFunc("cptserved_replay_inflight",
			"Sent-but-unacknowledged closed-loop events.",
			func() float64 { return float64(live.Inflight.Load()) }, lbl...)
		s.reg.CounterFunc("cptserved_replay_reconnects_total",
			"Completed reconnect-and-resume handshakes.",
			live.Reconnects.Load, lbl...)
		r.replayRTTHist = s.reg.Histogram("cptserved_replay_rtt_seconds",
			"Distribution of closed-loop replay send→ACK round-trip times.",
			telemetry.LatencyBuckets, lbl...)
	}
}

// lookup resolves a run id to its record.
func (s *Server) lookup(id string) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	infos := make([]RunInfo, 0, len(s.order))
	for _, id := range s.order {
		if r, ok := s.runs[id]; ok {
			infos = append(infos, r.info())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	writeJSON(w, http.StatusOK, r.info())
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	writeJSON(w, http.StatusOK, r.stats())
}

// handleStop cancels a run and waits (bounded by the request context) for
// its clean drain, then reports the final state.
func (s *Server) handleStop(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	s.log.Infow("run stop requested", "run", r.id)
	if s.cancelQueued(r) {
		// Still waiting for admission: removed from the queue and finished
		// without ever launching.
		r.removeJournal()
		writeJSON(w, http.StatusOK, r.info())
		return
	}
	r.cancel()
	select {
	case <-r.done:
	case <-req.Context().Done():
		// Still draining: keep the journal — if the daemon dies before the
		// drain lands, the next startup should still see this run.
		writeJSON(w, http.StatusAccepted, r.info())
		return
	}
	// The operator discarded the run and the drain completed; its journal
	// must not resurrect it at the next startup.
	r.removeJournal()
	writeJSON(w, http.StatusOK, r.info())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
