package served

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/faultnet"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/runlog"
)

// soakFor stretches TestChaosSoak to a full chaos soak; the default is a
// quick smoke pass so ordinary `go test` still walks the harness. CI runs
// `go test -race -run TestChaosSoak -soak 30s ./internal/served`.
var soakFor = flag.Duration("soak", 0, "chaos soak duration (0 = 2s smoke pass)")

// blockRuns installs an executeTestHook that parks every run goroutine on
// the returned gate until the test closes it — the way these tests hold a
// run "active" while poking admission from the outside.
func blockRuns(t *testing.T) chan struct{} {
	t.Helper()
	gate := make(chan struct{})
	hook := func(*run) { <-gate }
	executeTestHook.Store(&hook)
	t.Cleanup(func() {
		executeTestHook.Store(nil)
		select {
		case <-gate:
		default:
			close(gate)
		}
	})
	return gate
}

// postRaw submits a StartRequest and returns the raw response — for
// asserting status codes and headers `do` hides.
func postRaw(t *testing.T, url string, req StartRequest) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestAdmissionQueueAndReject walks the overload front door: with one run
// slot and a one-deep queue, the first submission is admitted, the second
// parks in the queue (202, state "queued"), the third bounces with 429 and
// a Retry-After — and once the active run finishes, the queue pumps the
// parked run to completion.
func TestAdmissionQueueAndReject(t *testing.T) {
	gate := blockRuns(t)
	s, ts := newDurableServer(t, Options{MaxActiveRuns: 1, QueueDepth: 1})

	var a RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 50}, &a, http.StatusCreated)

	resp, body := postRaw(t, ts.URL, StartRequest{Scenario: "flash-crowd", UEs: 50})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submission = %d, want 202; body: %s", resp.StatusCode, body)
	}
	var b RunInfo
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("second submission state %q, want %q", b.State, StateQueued)
	}

	resp, body = postRaw(t, ts.URL, StartRequest{Scenario: "flash-crowd", UEs: 50})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission = %d, want 429; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if !strings.Contains(string(body), AdmitActiveRuns) {
		t.Fatalf("429 body does not name the exhausted budget: %s", body)
	}

	// The queued run is inspectable like any other registered run.
	var qi RunInfo
	do(t, "GET", ts.URL+"/runs/"+b.ID, nil, &qi, http.StatusOK)
	if qi.State != StateQueued {
		t.Fatalf("queued run state %q, want %q", qi.State, StateQueued)
	}

	metrics := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"cptserved_admission_admitted_total 1",
		"cptserved_admission_queued_total 1",
		"cptserved_admission_rejected_total 1",
		"cptserved_admission_queue_depth 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	close(gate)
	if fa := waitState(t, ts.URL, a.ID); fa.State != StateDone {
		t.Fatalf("active run ended %s (err %q), want done", fa.State, fa.Error)
	}
	if fb := waitState(t, ts.URL, b.ID); fb.State != StateDone {
		t.Fatalf("queued run ended %s (err %q), want done", fb.State, fb.Error)
	}
	if got := s.admission.runs.Load(); got != 0 {
		t.Fatalf("admission ledger holds %d runs after both finished", got)
	}
	metrics = scrapeMetrics(t, ts.URL)
	if !strings.Contains(metrics, "cptserved_admission_admitted_total 2") {
		t.Fatalf("queued run was never counted admitted:\n%s", metrics)
	}
}

// TestAdmissionUEBudget pins the -max-total-ues axis: a submission whose
// UE population would overrun the daemon budget bounces even though run
// slots are free.
func TestAdmissionUEBudget(t *testing.T) {
	_, ts := newDurableServer(t, Options{MaxTotalUEs: 100})
	resp, body := postRaw(t, ts.URL, StartRequest{Scenario: "flash-crowd", UEs: 300})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized submission = %d, want 429; body: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), AdmitTotalUEs) {
		t.Fatalf("429 body does not name the UE budget: %s", body)
	}
	// Within budget still flows.
	var ok RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 80}, &ok, http.StatusCreated)
	waitState(t, ts.URL, ok.ID)
}

// TestDeleteQueuedRun pins DELETE on a still-queued run: it leaves the
// queue immediately, finishes as stopped without ever launching, and the
// freed slot does not wedge the queue.
func TestDeleteQueuedRun(t *testing.T) {
	gate := blockRuns(t)
	_, ts := newDurableServer(t, Options{MaxActiveRuns: 1, QueueDepth: 2})

	var a, b, c RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 50}, &a, http.StatusCreated)
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 50}, &b, http.StatusAccepted)
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 50}, &c, http.StatusAccepted)

	var del RunInfo
	do(t, "DELETE", ts.URL+"/runs/"+b.ID, nil, &del, http.StatusOK)
	if del.State != StateStopped {
		t.Fatalf("deleted queued run state %q, want %q", del.State, StateStopped)
	}

	close(gate)
	if fa := waitState(t, ts.URL, a.ID); fa.State != StateDone {
		t.Fatalf("active run ended %s, want done", fa.State)
	}
	// c sat behind the cancelled b and must still be admitted.
	if fc := waitState(t, ts.URL, c.ID); fc.State != StateDone {
		t.Fatalf("run queued behind the cancelled one ended %s (err %q), want done", fc.State, fc.Error)
	}
	var again RunInfo
	do(t, "GET", ts.URL+"/runs/"+b.ID, nil, &again, http.StatusOK)
	if again.State != StateStopped {
		t.Fatalf("cancelled queued run resurrected as %q", again.State)
	}
}

// TestDeleteRecoveringRun pins the recovery/DELETE race: cancelling a run
// that is still in the "recovering" state must drain it cleanly to
// stopped, remove its journal, and leave nothing for the next startup to
// re-register.
func TestDeleteRecoveringRun(t *testing.T) {
	gate := blockRuns(t)
	dir := filepath.Join(t.TempDir(), "journals")
	craftCrashedJournal(t, dir, runlog.Begin{
		RunID: "run-7", Scenario: "flash-crowd",
		Spec: builtinJSON(t, "flash-crowd"),
		Sink: "count", UEs: 200, StartedAt: time.Now(),
	}, nil, nil)

	s, ts := newDurableServer(t, Options{JournalDir: dir})
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	var info RunInfo
	do(t, "GET", ts.URL+"/runs/run-7", nil, &info, http.StatusOK)
	if info.State != StateRecovering {
		t.Fatalf("resumed run state %q, want %q", info.State, StateRecovering)
	}

	// DELETE while the run goroutine is parked pre-execute. The handler
	// blocks until the drain, so it runs concurrently with the gate release
	// — but the gate only opens after the cancel has landed, so the run
	// must observe it and stop rather than complete.
	s.mu.Lock()
	r := s.runs["run-7"]
	s.mu.Unlock()
	delDone := make(chan RunInfo, 1)
	go func() {
		var di RunInfo
		do(t, "DELETE", ts.URL+"/runs/run-7", nil, &di, http.StatusOK)
		delDone <- di
	}()
	deadline := time.Now().Add(5 * time.Second)
	for r.runCtx.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("DELETE never cancelled the recovering run's context")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	di := <-delDone
	if di.State != StateStopped {
		t.Fatalf("deleted recovering run drained to %q, want %q", di.State, StateStopped)
	}

	// The journal went with the DELETE: a fresh daemon over the same
	// directory finds nothing to resume — the run does not resurrect.
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Fatalf("journal dir not empty after DELETE drain: %v (err %v)", entries, err)
	}
	s2 := New(Options{TempDir: t.TempDir(), JournalDir: dir})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var list struct {
		Runs []RunInfo `json:"runs"`
	}
	do(t, "GET", ts2.URL+"/runs", nil, &list, http.StatusOK)
	if len(list.Runs) != 0 {
		t.Fatalf("fresh recovery re-registered the deleted run: %+v", list.Runs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// enospcWriter fails its first failN writes with ENOSPC (a hard error the
// transient retry layer below the breaker will not absorb), then writes
// through. The Write-call granularity matches the breaker's failure
// counting, so tests can script exact trip sequences.
type enospcWriter struct {
	w     io.Writer
	failN int64
	fails atomic.Int64
}

func (e *enospcWriter) Write(p []byte) (int, error) {
	if e.fails.Add(1) <= e.failN {
		return 0, syscall.ENOSPC
	}
	return e.w.Write(p)
}

// injectSinkFaults wires sinkWriterTestHook to wrap every sink file in
// wrap for the duration of the test.
func injectSinkFaults(t *testing.T, wrap func(runID string, w io.Writer) io.Writer) {
	t.Helper()
	sinkWriterTestHook.Store(&wrap)
	t.Cleanup(func() { sinkWriterTestHook.Store(nil) })
}

// TestBreakerDrop drives a jsonl run with degrade "drop" into a sink that
// hard-fails its first writes: the breaker trips, the run keeps draining
// with counted lossy output, and still finishes done.
func TestBreakerDrop(t *testing.T) {
	injectSinkFaults(t, func(_ string, w io.Writer) io.Writer {
		return &enospcWriter{w: w, failN: 3}
	})
	_, ts := newDurableServer(t, Options{})
	out := filepath.Join(t.TempDir(), "out.jsonl")
	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{
		Scenario: "flash-crowd", UEs: 150, Sink: "jsonl", Out: out, Degrade: "drop",
	}, &info, http.StatusCreated)
	final := waitState(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("drop-degrade run ended %s (err %q), want done", final.State, final.Error)
	}
	dropped, _ := final.Result["dropped"].(float64)
	if dropped < 3 {
		t.Fatalf("drop-degrade run reports %v dropped writes, want ≥ 3", final.Result["dropped"])
	}
	var stats RunStats
	do(t, "GET", ts.URL+"/runs/"+info.ID+"/stats", nil, &stats, http.StatusOK)
	if stats.SinkDropped != int64(dropped) {
		t.Fatalf("stats sink_dropped %d != result dropped %v", stats.SinkDropped, dropped)
	}
	// Lossy by design: the file lost the dropped writes.
	ref, _ := renderReference(t, "flash-crowd", 150, "jsonl")
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(ref) {
		t.Fatalf("drop-degrade output not lossy: %d bytes vs %d reference", len(got), len(ref))
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "cptserved_breaker_state") {
		t.Fatal("metrics missing cptserved_breaker_state for a degrade-enabled run")
	}
}

// TestBreakerPause drives the same faulty sink under degrade "pause": the
// breaker blocks the drain through the cooldown instead of shedding data,
// so the finished file is byte-identical to an unfaulted run's.
func TestBreakerPause(t *testing.T) {
	injectSinkFaults(t, func(_ string, w io.Writer) io.Writer {
		return &enospcWriter{w: w, failN: 3}
	})
	_, ts := newDurableServer(t, Options{})
	out := filepath.Join(t.TempDir(), "out.jsonl")
	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{
		Scenario: "flash-crowd", UEs: 150, Sink: "jsonl", Out: out, Degrade: "pause",
	}, &info, http.StatusCreated)
	final := waitState(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("pause-degrade run ended %s (err %q), want done", final.State, final.Error)
	}
	if _, lossy := final.Result["dropped"]; lossy {
		t.Fatalf("pause-degrade run dropped data: %+v", final.Result)
	}
	ref, _ := renderReference(t, "flash-crowd", 150, "jsonl")
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("pause-degrade output differs from reference: %d bytes vs %d", len(got), len(ref))
	}
}

// TestBudgetExceededRuns pins the per-run budget axes end to end: each
// over-budget run fails with the typed reason in its error and the
// kind-labeled metric — while an unbudgeted sibling on the same daemon
// finishes with output byte-identical to an unloaded run's.
func TestBudgetExceededRuns(t *testing.T) {
	_, ts := newDurableServer(t, Options{})
	out := filepath.Join(t.TempDir(), "sibling.jsonl")
	var sibling RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{
		Scenario: "flash-crowd", UEs: 150, Sink: "jsonl", Out: out,
	}, &sibling, http.StatusCreated)

	cases := []struct {
		name    string
		req     StartRequest
		kind    string
		wantErr string
	}{
		{"events", StartRequest{Scenario: "flash-crowd", UEs: 100, MaxEvents: 7}, "events", "events"},
		{"spill_bytes", StartRequest{Scenario: "flash-crowd", UEs: 2000, MaxSpillBytes: 4096}, "spill_bytes", "spill_bytes"},
		{"wall_clock", StartRequest{Scenario: "flash-crowd", UEs: 100, Compression: 60, MaxWallSeconds: 0.3}, "wall_clock", "wall clock"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var info RunInfo
			do(t, "POST", ts.URL+"/runs", tc.req, &info, http.StatusCreated)
			final := waitState(t, ts.URL, info.ID)
			if final.State != StateFailed {
				t.Fatalf("over-budget run ended %s, want failed", final.State)
			}
			if !strings.Contains(final.Error, "budget exceeded") || !strings.Contains(final.Error, tc.wantErr) {
				t.Fatalf("failure not typed as a %s budget breach: %q", tc.kind, final.Error)
			}
			want := fmt.Sprintf(`cptserved_budget_exceeded_total{kind=%q} 1`, tc.kind)
			if m := scrapeMetrics(t, ts.URL); !strings.Contains(m, want) {
				t.Fatalf("metrics missing %q", want)
			}
		})
	}

	if fs := waitState(t, ts.URL, sibling.ID); fs.State != StateDone {
		t.Fatalf("sibling run ended %s (err %q), want done", fs.State, fs.Error)
	}
	ref, _ := renderReference(t, "flash-crowd", 150, "jsonl")
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("sibling output differs from an unloaded daemon's: %d bytes vs %d", len(got), len(ref))
	}
}

// TestHealthzDegraded pins the readiness contract: a full admission queue
// flips GET /healthz to 503 with the reason, and back to 200 once the
// pressure clears.
func TestHealthzDegraded(t *testing.T) {
	gate := blockRuns(t)
	_, ts := newDurableServer(t, Options{MaxActiveRuns: 1, QueueDepth: 1})
	do(t, "GET", ts.URL+"/healthz", nil, nil, http.StatusOK)

	var a, b RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 50}, &a, http.StatusCreated)
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 50}, &b, http.StatusAccepted)

	var health struct {
		OK      bool     `json:"ok"`
		State   string   `json:"state"`
		Reasons []string `json:"reasons"`
	}
	do(t, "GET", ts.URL+"/healthz", nil, &health, http.StatusServiceUnavailable)
	if health.OK || health.State != "degraded" {
		t.Fatalf("degraded healthz body: %+v", health)
	}
	found := false
	for _, r := range health.Reasons {
		found = found || r == "admission_queue_full"
	}
	if !found {
		t.Fatalf("healthz reasons %v missing admission_queue_full", health.Reasons)
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "cptserved_healthz_state 0") {
		t.Fatal("cptserved_healthz_state gauge not 0 while degraded")
	}

	close(gate)
	waitState(t, ts.URL, a.ID)
	waitState(t, ts.URL, b.ID)
	do(t, "GET", ts.URL+"/healthz", nil, &health, http.StatusOK)
	if !health.OK || health.State != "serving" {
		t.Fatalf("recovered healthz body: %+v", health)
	}
}

// chaosSink is the soak's misbehaving filesystem: roughly every 40th sink
// write fails with ENOSPC and every 15th stalls briefly, shared across
// every file-sink run in the daemon.
type chaosSink struct {
	w io.Writer
	n *atomic.Int64
}

func (c *chaosSink) Write(p []byte) (int, error) {
	n := c.n.Add(1)
	if n%40 == 0 {
		return 0, syscall.ENOSPC
	}
	if n%15 == 0 {
		time.Sleep(500 * time.Microsecond)
	}
	return c.w.Write(p)
}

// TestChaosSoak runs the daemon under sustained overload and injected
// faults — concurrent paced runs, a faultnet-wrapped replay backend,
// ENOSPC/slow-sink writes, over-budget submissions, admission churn and
// mid-flight cancels — then asserts the daemon came through whole: every
// run terminal, healthz serving, bounded heap, no leaked goroutines.
func TestChaosSoak(t *testing.T) {
	dur := *soakFor
	if dur == 0 {
		if testing.Short() {
			t.Skip("chaos soak skipped in -short mode")
		}
		dur = 2 * time.Second
	}

	before := runtime.NumGoroutine()
	func() {
		var writes atomic.Int64
		injectSinkFaults(t, func(_ string, w io.Writer) io.Writer {
			return &chaosSink{w: w, n: &writes}
		})
		backend, err := replaynet.ListenAndServeOpts("127.0.0.1:0", events.Gen4G, replaynet.ServerOpts{
			Fault: &faultnet.Config{
				Seed: 11, DropProb: 0.01, StallProb: 0.02, StallDur: 2 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer backend.Close()

		outDir := t.TempDir()
		s := New(Options{
			TempDir:          t.TempDir(),
			JournalDir:       filepath.Join(t.TempDir(), "journals"),
			MaxActiveRuns:    4,
			MaxTotalUEs:      5000,
			MaxSpillBytes:    256 << 20,
			QueueDepth:       8,
			CheckpointEvents: 256,
		})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := s.Close(ctx); err != nil {
				t.Errorf("server close: %v", err)
			}
		}()

		variants := func(i int) StartRequest {
			switch i % 6 {
			case 0: // paced count run
				return StartRequest{Scenario: "flash-crowd", UEs: 200, Compression: 3600}
			case 1: // lossy file sink under the chaos writer
				return StartRequest{Scenario: "flash-crowd", UEs: 150, Sink: "jsonl",
					Out: filepath.Join(outDir, fmt.Sprintf("soak-%d.jsonl", i)), Degrade: "drop"}
			case 2: // lossless file sink: the breaker pauses through the faults
				return StartRequest{Scenario: "flash-crowd", UEs: 100, Sink: "jsonl",
					Out: filepath.Join(outDir, fmt.Sprintf("soak-%d.jsonl", i)), Degrade: "pause"}
			case 3: // over-budget: fails with a typed breach mid-soak
				return StartRequest{Scenario: "flash-crowd", UEs: 100, MaxEvents: 50}
			case 4: // closed-loop replay across the faulty network
				return StartRequest{Scenario: "flash-crowd", UEs: 100, Sink: "replay",
					Addr: backend.Addr().String(), ClosedLoop: true}
			default: // paced with load-shedding armed
				return StartRequest{Scenario: "flash-crowd", UEs: 150, Compression: 3600,
					ShedAfterLagSeconds: 0.05}
			}
		}

		var ids []string
		deadline := time.Now().Add(dur)
		for i := 0; time.Now().Before(deadline); i++ {
			resp, body := postRaw(t, ts.URL, variants(i))
			switch resp.StatusCode {
			case http.StatusCreated, http.StatusAccepted:
				var info RunInfo
				if err := json.Unmarshal(body, &info); err != nil {
					t.Fatalf("decode submit response: %v; body: %s", err, body)
				}
				ids = append(ids, info.ID)
			case http.StatusTooManyRequests:
				// Overload doing its job; back off like a client would.
				time.Sleep(20 * time.Millisecond)
			default:
				t.Fatalf("submission %d = %d; body: %s", i, resp.StatusCode, body)
			}
			// Mid-flight churn: cancel an occasional run, wherever it is in
			// its lifecycle (queued, generating, streaming, done).
			if i%7 == 3 && len(ids) > 0 {
				req, _ := http.NewRequest("DELETE", ts.URL+"/runs/"+ids[len(ids)/2], nil)
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
			}
			// The daemon must answer health probes throughout — degraded is
			// fine, unresponsive is not.
			hr, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatalf("healthz unresponsive mid-soak: %v", err)
			}
			hr.Body.Close()
			if hr.StatusCode != http.StatusOK && hr.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("healthz = %d mid-soak", hr.StatusCode)
			}
			time.Sleep(15 * time.Millisecond)
		}

		// Storm over: every submitted run must reach a terminal state — no
		// deadlocked drains, no runs stranded in the queue.
		settle := time.Now().Add(120 * time.Second)
		for {
			var list struct {
				Runs []RunInfo `json:"runs"`
			}
			do(t, "GET", ts.URL+"/runs", nil, &list, http.StatusOK)
			pending := 0
			for _, r := range list.Runs {
				if !terminal(r.State) {
					pending++
				}
			}
			if pending == 0 {
				if len(list.Runs) == 0 {
					t.Fatal("soak submitted runs but the daemon lists none")
				}
				break
			}
			if time.Now().After(settle) {
				t.Fatalf("%d runs never reached a terminal state: %+v", pending, list.Runs)
			}
			time.Sleep(50 * time.Millisecond)
		}
		do(t, "GET", ts.URL+"/healthz", nil, nil, http.StatusOK)

		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > 768<<20 {
			t.Fatalf("heap not bounded after soak: %d bytes live", ms.HeapAlloc)
		}
	}()

	// Daemon and test server are down; settle shared HTTP goroutines
	// before comparing counts.
	settle := time.Now().Add(10 * time.Second)
	for time.Now().Before(settle) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
}
