package served

import (
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/replaynet"
)

// replayBackend starts an in-process replaynet server for the daemon to
// drive.
func replayBackend(t *testing.T, opts replaynet.ServerOpts) *replaynet.Server {
	t.Helper()
	srv, err := replaynet.ListenAndServeOpts("127.0.0.1:0", events.Gen4G, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// unreachableAddr returns a TCP address that refuses connections (a
// just-closed listener's port).
func unreachableAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDaemonReplaySinkValidation(t *testing.T) {
	_, ts := newTestServer(t)

	// Missing addr.
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 100, Sink: "replay"},
		nil, http.StatusBadRequest)
	// Unreachable addr.
	do(t, "POST", ts.URL+"/runs", StartRequest{
		Scenario: "flash-crowd", UEs: 100, Sink: "replay", Addr: unreachableAddr(t),
	}, nil, http.StatusBadRequest)
	// closed_loop and addr are replay-only knobs.
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 100, ClosedLoop: true},
		nil, http.StatusBadRequest)
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 100, Addr: "127.0.0.1:9"},
		nil, http.StatusBadRequest)
}

// TestDaemonReplaySinkClosedLoop runs a closed-loop replay through the
// daemon: the run must complete, report transport accounting, expose a
// replay stats block and the cptserved_replay_* series.
func TestDaemonReplaySinkClosedLoop(t *testing.T) {
	backend := replayBackend(t, replaynet.ServerOpts{})
	_, ts := newTestServer(t)

	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{
		Scenario: "flash-crowd", UEs: 200, Sink: "replay",
		Addr: backend.Addr().String(), ClosedLoop: true,
	}, &info, http.StatusCreated)
	final := waitState(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("run ended %s (err %q), want done", final.State, final.Error)
	}
	sent, _ := final.Result["sent"].(float64)
	acked, _ := final.Result["acked"].(float64)
	if sent <= 0 || acked != sent {
		t.Fatalf("transport result sent=%v acked=%v", sent, acked)
	}
	if got := backend.Snapshot().Events; got != int(acked) {
		t.Fatalf("backend applied %d events, driver acked %v", got, acked)
	}

	var stats RunStats
	do(t, "GET", ts.URL+"/runs/"+info.ID+"/stats", nil, &stats, http.StatusOK)
	if stats.Replay == nil {
		t.Fatal("stats missing replay block")
	}
	if stats.Replay.Acked != int64(acked) || stats.Replay.Cwnd < 2 {
		t.Fatalf("replay stats: %+v", stats.Replay)
	}
	if stats.Replay.SRTTMs <= 0 || stats.Replay.RTOMs <= 0 {
		t.Fatalf("estimator never published: %+v", stats.Replay)
	}

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"cptserved_replay_cwnd{",
		"cptserved_replay_srtt_seconds{",
		"cptserved_replay_rto_seconds{",
		"cptserved_replay_retx_total{",
		"cptserved_replay_inflight{",
		"cptserved_replay_reconnects_total{",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestDaemonReplayDeleteDrains stops a paced replay run and checks the
// clean-drain contract: the run ends stopped (not failed), with a partial
// but consistent result, and the backend session ends on a frame boundary
// (its stats handshake succeeded).
func TestDaemonReplayDeleteDrains(t *testing.T) {
	backend := replayBackend(t, replaynet.ServerOpts{})
	_, ts := newTestServer(t)

	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{
		Scenario: "flash-crowd", UEs: 300, Compression: 60,
		Sink: "replay", Addr: backend.Addr().String(), ClosedLoop: true,
	}, &info, http.StatusCreated)

	// Wait until it streams, then stop it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st RunStats
		do(t, "GET", ts.URL+"/runs/"+info.ID+"/stats", nil, &st, http.StatusOK)
		if st.State == StateStreaming && st.Replay != nil && st.Replay.Acked > 0 {
			break
		}
		if terminal(st.State) {
			t.Fatalf("paced run ended early: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started streaming")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var stopped RunInfo
	do(t, "DELETE", ts.URL+"/runs/"+info.ID, nil, &stopped, http.StatusOK)
	if stopped.State != StateStopped {
		t.Fatalf("after DELETE state=%s err=%q, want stopped", stopped.State, stopped.Error)
	}
	// The drain completed the final stats handshake: the result carries the
	// server's accounting, consistent with the backend's own snapshot.
	acked, ok := stopped.Result["acked"].(float64)
	if !ok || acked <= 0 {
		t.Fatalf("stopped run result: %+v", stopped.Result)
	}
	if got := backend.Snapshot().Events; got != int(acked) {
		t.Fatalf("backend applied %d, driver acked %v — drain lost or duplicated events", got, acked)
	}
}
