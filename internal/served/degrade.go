package served

import (
	"context"
	"io"
	"sync/atomic"
	"time"

	"cptgpt/internal/tracez"
)

// Degrade policies for file-sink write failures. The default ("fail")
// keeps today's behavior: a hard sink error fails the run. "drop" and
// "pause" interpose a per-run circuit breaker between the line encoder
// and the sink file.
const (
	DegradeFail  = "fail"
	DegradePause = "pause"
	DegradeDrop  = "drop"
)

// Breaker tuning: trip after breakerThreshold consecutive write failures;
// stay open breakerCooldown before the half-open probe, doubling per
// consecutive trip up to breakerCooldownMax.
const (
	breakerThreshold   = 3
	breakerCooldown    = 100 * time.Millisecond
	breakerCooldownMax = 2 * time.Second
)

// Breaker states, exposed through the cptserved_breaker_state gauge
// (0 = closed, 1 = open, 2 = half-open).
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerWriter is a per-run sink circuit breaker. It sits between the
// line encoder and the (counting, retrying) file writer, so a sink that
// starts hard-failing — disk full, device error, anything the transient
// retry layer below could not absorb — stops being hammered: after
// breakerThreshold consecutive failures the breaker opens for a cooldown,
// then lets one half-open probe through; a probe failure re-opens with a
// doubled cooldown, a success closes the breaker and resets it.
//
// What happens to writes while the breaker is open is the run's degrade
// policy: "drop" discards them (counted — the output file is lossy by
// design, and its byte cursors stay accurate because dropped writes never
// reach the counting layer), "pause" blocks the drain until the probe
// succeeds or the run is cancelled (lossless, at the cost of pacer lag).
//
// Concurrency: Write runs on the single sink-drain goroutine; only the
// state/dropped/trips atomics are read concurrently (metrics, healthz).
type breakerWriter struct {
	w      io.Writer
	ctx    context.Context
	policy string
	runID  string

	fails    int
	cooldown time.Duration
	until    time.Time

	state   atomic.Int32
	dropped atomic.Int64 // writes discarded under the drop policy
	trips   atomic.Int64

	sp    tracez.Active // open-interval span, live while the breaker is open
	spDr0 int64         // dropped count when the interval began
}

func newBreakerWriter(w io.Writer, ctx context.Context, policy, runID string) *breakerWriter {
	return &breakerWriter{w: w, ctx: ctx, policy: policy, runID: runID, cooldown: breakerCooldown}
}

// trip opens the breaker for the current cooldown.
func (b *breakerWriter) trip() {
	b.trips.Add(1)
	b.state.Store(breakerOpen)
	b.until = time.Now().Add(b.cooldown)
	if b.cooldown < breakerCooldownMax {
		b.cooldown *= 2
	}
	if !b.sp.Live() {
		b.sp = tracez.Begin(tracez.StageSinkBreaker, b.runID)
		b.spDr0 = b.dropped.Load()
	}
}

// reset closes the breaker after a successful write.
func (b *breakerWriter) reset() {
	if b.sp.Live() {
		b.sp.End(b.dropped.Load()-b.spDr0, b.policy)
		b.sp = tracez.Active{}
	}
	b.fails = 0
	b.cooldown = breakerCooldown
	b.state.Store(breakerClosed)
}

func (b *breakerWriter) Write(p []byte) (int, error) {
	for {
		if b.state.Load() == breakerOpen {
			wait := time.Until(b.until)
			if wait > 0 {
				if b.policy == DegradeDrop {
					b.dropped.Add(1)
					return len(p), nil
				}
				// pause: block out the cooldown, or bail on cancellation so
				// a DELETE still drains promptly.
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-b.ctx.Done():
					t.Stop()
					return 0, b.ctx.Err()
				}
			}
			b.state.Store(breakerHalfOpen)
		}
		n, err := b.w.Write(p)
		if err == nil {
			b.reset()
			return n, nil
		}
		b.fails++
		if b.state.Load() == breakerHalfOpen || b.fails >= breakerThreshold {
			b.trip()
			continue
		}
		// Below the trip threshold the policy still governs the failure:
		// drop discards this write, pause re-attempts immediately (the
		// loop reaches the threshold and trips within two more writes).
		if b.policy == DegradeDrop {
			b.dropped.Add(1)
			return len(p), nil
		}
		if b.ctx.Err() != nil {
			return n, b.ctx.Err()
		}
	}
}

// finishSpan closes a still-open breaker interval span at end of stream.
func (b *breakerWriter) finishSpan() {
	if b.sp.Live() {
		b.sp.End(b.dropped.Load()-b.spDr0, b.policy)
		b.sp = tracez.Active{}
	}
}

// breakerState renders the run's breaker for the metrics gauge:
// 0 closed (or no breaker), 1 open, 2 half-open.
func (r *run) breakerState() float64 {
	if b := r.breaker.Load(); b != nil {
		return float64(b.state.Load())
	}
	return 0
}
