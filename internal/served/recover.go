package served

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/mcn"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/runlog"
	"cptgpt/internal/scenario"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tensor"
)

// Recover scans the journal directory and disposes of every run journal a
// previous daemon process left behind, according to Options.Recover:
// interrupted runs are resumed from their last checkpoint ("resume", the
// default), registered as failed casualties ("fail"), or discarded
// ("ignore"). Journals whose run already reached a terminal state are
// reaped; journals torn before their identity record are discarded with a
// warning. Call once at startup, after model preloads and before serving
// traffic.
func (s *Server) Recover() error {
	if s.opts.JournalDir == "" {
		return nil
	}
	mode := s.opts.Recover
	if mode == "" {
		mode = "resume"
	}
	switch mode {
	case "resume", "fail", "ignore":
	default:
		return fmt.Errorf("served: unknown recover mode %q (want resume, fail or ignore)", mode)
	}
	states, err := runlog.ScanDir(s.opts.JournalDir)
	if err != nil {
		return err
	}
	for _, st := range states {
		if st.Begin == nil {
			s.log.Warnw("discarding unrecoverable run journal", "path", st.Path)
			os.Remove(st.Path)
			continue
		}
		if st.Terminal() {
			// The run finished; its journal was only crash-recovery state.
			os.Remove(st.Path)
			continue
		}
		s.bumpSeq(st.Begin.RunID)
		switch mode {
		case "ignore":
			s.log.Infow("discarding interrupted run journal", "run", st.Begin.RunID, "path", st.Path)
			os.Remove(st.Path)
		case "fail":
			s.registerInterrupted(st, errors.New("served: run interrupted by daemon restart (recovery disabled)"))
		default:
			if err := s.resumeRun(st); errors.Is(err, errDupRun) {
				// The id is already live (a duplicate journal, or a resume
				// racing re-registration). Registering a failed casualty
				// would overwrite the live run, so just drop the orphan.
				s.log.Warnw("discarding duplicate run journal", "run", st.Begin.RunID, "path", st.Path)
				os.Remove(st.Path)
			} else if err != nil {
				s.registerInterrupted(st, fmt.Errorf("served: run interrupted and resume failed: %w", err))
			}
		}
	}
	return nil
}

// bumpSeq advances the run-id sequence past a recovered id so resumed and
// newly accepted runs never collide.
func (s *Server) bumpSeq(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "run-%d", &n); err == nil {
		s.mu.Lock()
		if n > s.seq {
			s.seq = n
		}
		s.mu.Unlock()
	}
}

// registerInterrupted records an interrupted run as a failed entry in the
// registry — operators see the crash casualty in /runs instead of it
// silently vanishing — and appends the terminal state to its journal so
// the next startup reaps the file.
func (s *Server) registerInterrupted(st *runlog.RunState, cause error) {
	b := st.Begin
	done := make(chan struct{})
	close(done)
	r := &run{
		id: b.RunID, scenarioName: b.Scenario, sink: b.Sink,
		out: b.Out, addr: b.Addr, closedLoop: b.ClosedLoop,
		ues: b.UEs, compression: b.Compression,
		cancel: func() {}, done: done,
		state: StateFailed, startedAt: b.StartedAt, finishedAt: time.Now(),
		err:   cause,
		jpath: st.Path,
		log:   s.log,
	}
	if j, _, err := runlog.OpenResume(st.Path, s.journalOpts(b.RunID)); err == nil {
		j.AppendState(StateFailed, cause.Error())
		j.Close()
	}
	s.mu.Lock()
	if _, dup := s.runs[r.id]; dup {
		// The id is already registered (live or resumed): overwriting it
		// would orphan the live run's registry entry and duplicate its id
		// in the listing order. Keep the live run.
		s.mu.Unlock()
		s.log.Warnw("interrupted run already registered; keeping the live entry", "run", r.id)
		return
	}
	s.runs[r.id] = r
	s.order = append(s.order, r.id)
	s.mu.Unlock()
	s.registerRunMetrics(r)
	s.log.Warnw("interrupted run registered as failed", "run", r.id, "err", cause)
}

// errDupRun reports a resume colliding with an already-registered run id.
var errDupRun = errors.New("run id already registered")

// resumeRun rebuilds an interrupted run from its journal and relaunches
// it: the scenario regenerates deterministically and fast-forwards past
// the checkpointed merge key, the sink truncates to its durable cursor
// and appends, and the pacer re-anchors at the checkpointed trace offset.
func (s *Server) resumeRun(st *runlog.RunState) error {
	b := st.Begin
	spec := new(scenario.Spec)
	if err := json.Unmarshal(b.Spec, spec); err != nil {
		return fmt.Errorf("journaled spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("journaled spec: %w", err)
	}
	parallelism := b.Parallelism
	if parallelism == 0 {
		parallelism = s.opts.Parallelism
	}
	r := &run{
		id: b.RunID, scenarioName: b.Scenario, spec: spec,
		sink: b.Sink, out: b.Out, addr: b.Addr, closedLoop: b.ClosedLoop,
		ues: b.UEs, compression: b.Compression,
		done:         make(chan struct{}),
		decode:       make(map[string]*cptgpt.DecodeStats),
		state:        StateRecovering,
		startedAt:    b.StartedAt,
		poolBase:     tensor.PoolLoad(),
		sessionID:    b.SessionID,
		ckptEvery:    int64(s.opts.CheckpointEvents),
		ckptInterval: s.opts.CheckpointInterval,
		jpath:        st.Path,
		log:          s.log,
		resumeSkips:  s.resumeSkips,
		// The journaled resource envelope survives the crash: the resumed
		// incarnation runs under the budgets it was admitted with.
		degrade:    b.Degrade,
		shedAfter:  time.Duration(b.ShedAfterNanos),
		admitUEs:   admissionUEs(b.UEs, spec),
		recovered:  true,
		overBudget: s.overBudgetInc,
		budget: scenario.Budget{
			MaxSpillBytes: b.MaxSpillBytes,
			MaxEvents:     b.MaxEvents,
			MaxWall:       time.Duration(b.MaxWallNanos),
			SpillUsed:     &s.admission.spill,
		},
	}
	for _, src := range spec.Sources {
		if src.Kind == "cptgpt" {
			r.decode[src.ID] = &cptgpt.DecodeStats{}
		}
	}
	if r.sink == "mcn" {
		r.mcnLive = &mcn.LiveStats{}
	}
	if r.sink == "replay" && r.closedLoop {
		r.replayLive = &replaynet.LiveStats{}
	}
	r.opts = scenario.RunOpts{
		UEs:            b.UEs,
		Parallelism:    parallelism,
		BatchSize:      b.BatchSize,
		TempDir:        s.opts.TempDir,
		Precision:      b.Precision,
		Speculative:    b.Speculative,
		DraftTokens:    b.DraftTokens,
		Budget:         r.budget,
		LoadModel:      s.loadModel,
		SourceStats:    func(id string) *cptgpt.DecodeStats { return r.decode[id] },
		SourceStepHist: func(id string) *telemetry.Histogram { return r.stepHists[id] },
	}
	if c := s.resumePlan(st); c != nil {
		r.resume = c
		r.resumeKey = &scenario.Event{Time: c.Time, UE: c.UE, Seq: c.Seq}
		r.baseEvents = c.Events
		r.replayResumeFrom = uint64(c.ReplayApplied)
	}
	j, _, err := runlog.OpenResume(st.Path, s.journalOpts(r.id))
	if err != nil {
		return err
	}
	r.journal = j

	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.runCtx = ctx
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		cancel()
		j.Close()
		return errors.New("daemon is shutting down")
	}
	if _, dup := s.runs[r.id]; dup {
		s.mu.Unlock()
		cancel()
		j.Close()
		return fmt.Errorf("%w: %s", errDupRun, r.id)
	}
	s.runs[r.id] = r
	s.order = append(s.order, r.id)
	// Resumed runs reserve without an admission check: they were admitted
	// before the crash, and recovery must not strand them behind budget
	// freshly admitted runs now hold. A transient overshoot of the limits
	// is the accepted cost.
	s.admission.reserve(r.admitUEs)
	s.wg.Add(1)
	s.mu.Unlock()

	s.registerRunMetrics(r)
	j.AppendState(StateRecovering, "")
	if s.recoveries != nil {
		s.recoveries.Inc()
	}
	from := "scratch"
	if r.resume != nil {
		from = fmt.Sprintf("checkpoint at %d events", r.baseEvents)
	}
	s.log.Infow("resuming interrupted run", "run", r.id,
		"scenario", r.scenarioName, "sink", r.sink, "from", from)
	s.launch(r, ctx, cancel)
	return nil
}

// resumePlan decides whether the journal's checkpoint is actionable. For
// file sinks the checkpoint's durable prefix must still exist on disk; a
// missing or shortened sink file — or a gzip sink, whose byte cursors
// compression forecloses — falls back to a full from-scratch restart
// (still exactly-once: the work is redone, never double-counted). Nil
// means restart from the beginning.
func (s *Server) resumePlan(st *runlog.RunState) *runlog.Checkpoint {
	c := st.Checkpoint
	if c == nil {
		return nil
	}
	b := st.Begin
	switch b.Sink {
	case "jsonl", "csv":
		if strings.HasSuffix(b.Out, ".gz") || c.SinkBytes <= 0 {
			return nil
		}
		fi, err := os.Stat(b.Out)
		if err != nil || fi.Size() < c.SinkBytes {
			s.log.Warnw("sink file lost its durable prefix; restarting run from scratch",
				"run", b.RunID, "out", b.Out)
			return nil
		}
	}
	return c
}
