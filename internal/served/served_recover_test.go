package served

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/replaynet"
	"cptgpt/internal/runlog"
	"cptgpt/internal/scenario"
)

// newDurableServer is newTestServer with caller-controlled Options —
// recovery tests need a journal directory and tight checkpoint cadences.
func newDurableServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.TempDir == "" {
		opts.TempDir = t.TempDir()
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, ts
}

// renderReference produces the byte-exact sink file an uninterrupted run
// of the builtin would write, plus the event sequence behind it, via the
// same deterministic pipeline and line encoder the daemon uses.
func renderReference(t *testing.T, builtin string, ues int, format string) ([]byte, []scenario.Event) {
	t.Helper()
	spec, err := scenario.Builtin(builtin)
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Open(scenario.RunOpts{UEs: ues, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var buf bytes.Buffer
	lw, err := scenario.NewLineWriter(&buf, format, st.UEID, true)
	if err != nil {
		t.Fatal(err)
	}
	var evs []scenario.Event
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if err := lw.Write(e); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, e)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), evs
}

// lineOffset returns the byte offset just past the first n lines of data.
func lineOffset(t *testing.T, data []byte, n int) int64 {
	t.Helper()
	off := 0
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			t.Fatalf("data has fewer than %d lines", n)
		}
		off += nl + 1
	}
	return int64(off)
}

// craftCrashedJournal writes the journal a crashed daemon would leave
// behind for a mid-flight run: identity, streaming state, the given
// checkpoint, and (optionally) a torn record tail.
func craftCrashedJournal(t *testing.T, dir string, b runlog.Begin, c *runlog.Checkpoint, tornTail []byte) string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, b.RunID+runlog.Ext)
	j, err := runlog.Create(path, runlog.Options{Policy: runlog.PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	j.AppendBegin(b)
	j.AppendState(StateStreaming, "")
	if c != nil {
		j.AppendCheckpoint(*c)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(tornTail) > 0 {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tornTail); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return path
}

func builtinJSON(t *testing.T, name string) json.RawMessage {
	t.Helper()
	spec, err := scenario.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDaemonCrashRecoveryFileSinks is the byte-identical keystone for
// both file formats: a crashed run (durable sink prefix + torn half-line,
// journal checkpoint older than the file, torn journal tail) resumed by a
// fresh daemon must finish done with the sink file byte-for-byte equal to
// an uninterrupted run's.
func TestDaemonCrashRecoveryFileSinks(t *testing.T) {
	for _, format := range []string{"jsonl", "csv"} {
		t.Run(format, func(t *testing.T) {
			const ues = 200
			ref, evs := renderReference(t, "flash-crowd", ues, format)
			if len(evs) < 100 {
				t.Fatalf("scenario too small: %d events", len(evs))
			}
			cut := len(evs) / 2
			key := evs[cut-1]
			dataLines := cut
			if format == "csv" {
				dataLines++ // the header line precedes the data
			}
			off := lineOffset(t, ref, dataLines)

			// The crashed sink: the checkpointed durable prefix plus a torn
			// half-line that outran the last fsync.
			out := filepath.Join(t.TempDir(), "out."+format)
			crashed := append(append([]byte{}, ref[:off]...), []byte(`{"t":99.9,"ue_id":"tor`)...)
			if err := os.WriteFile(out, crashed, 0o644); err != nil {
				t.Fatal(err)
			}

			jdir := t.TempDir()
			craftCrashedJournal(t, jdir, runlog.Begin{
				RunID: "run-7", Scenario: "flash-crowd", Spec: builtinJSON(t, "flash-crowd"),
				Sink: format, Out: out, UEs: ues, StartedAt: time.Now(),
			}, &runlog.Checkpoint{
				Time: key.Time, UE: key.UE, Seq: key.Seq,
				Events: int64(cut), TraceOffset: key.Time,
				SinkBytes: off, SinkLines: int64(cut),
			}, []byte("torn-journal-tail-garbage"))

			s, ts := newDurableServer(t, Options{JournalDir: jdir})
			if err := s.Recover(); err != nil {
				t.Fatal(err)
			}
			final := waitState(t, ts.URL, "run-7")
			if final.State != StateDone {
				t.Fatalf("recovered run ended %s (err %q), want done", final.State, final.Error)
			}
			wantEvents := float64(len(evs))
			if got, _ := final.Result["events"].(float64); got != wantEvents {
				t.Fatalf("result events = %v, want %v", got, wantEvents)
			}

			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				i := 0
				for i < len(got) && i < len(ref) && got[i] == ref[i] {
					i++
				}
				t.Fatalf("recovered file diverges from reference at byte %d (len %d vs %d)", i, len(got), len(ref))
			}

			// Recovery telemetry: one resume, fast-forward pruned the prefix.
			body := scrapeMetrics(t, ts.URL)
			if !regexp.MustCompile(`cptserved_journal_recoveries_total 1\b`).MatchString(body) {
				t.Fatalf("metrics missing recovery counter:\n%s", body)
			}
			m := regexp.MustCompile(`cptserved_journal_resume_skip_events_total (\d+)`).FindStringSubmatch(body)
			if m == nil {
				t.Fatal("metrics missing resume-skip counter")
			}
			if skips, _ := strconv.Atoi(m[1]); skips != cut {
				t.Fatalf("resume skipped %d events, want %d", skips, cut)
			}

			// The journal recorded the recovery and the terminal state, so a
			// later startup reaps it instead of resuming again.
			jpath := filepath.Join(jdir, "run-7"+runlog.Ext)
			raw, err := os.ReadFile(jpath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(raw, []byte(`"state":"recovering"`)) {
				t.Fatal("journal never recorded the recovering state")
			}
			st, err := runlog.Load(jpath)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != runlog.StateDone || !st.Terminal() {
				t.Fatalf("journal final state %q, want done", st.State)
			}
		})
	}
}

// TestDaemonRecoverModes pins the -recover=fail and -recover=ignore
// dispositions, plus the reap of already-terminal journals.
func TestDaemonRecoverModes(t *testing.T) {
	mk := func(t *testing.T, dir, id string) string {
		return craftCrashedJournal(t, dir, runlog.Begin{
			RunID: id, Scenario: "flash-crowd", Spec: builtinJSON(t, "flash-crowd"),
			Sink: "count", UEs: 80, StartedAt: time.Now(),
		}, nil, nil)
	}

	t.Run("fail", func(t *testing.T) {
		dir := t.TempDir()
		path := mk(t, dir, "run-3")
		s, ts := newDurableServer(t, Options{JournalDir: dir, Recover: "fail"})
		if err := s.Recover(); err != nil {
			t.Fatal(err)
		}
		var info RunInfo
		do(t, "GET", ts.URL+"/runs/run-3", nil, &info, http.StatusOK)
		if info.State != StateFailed {
			t.Fatalf("interrupted run state %s, want failed", info.State)
		}
		if want := "interrupted"; !bytes.Contains([]byte(info.Error), []byte(want)) {
			t.Fatalf("error %q does not mention %q", info.Error, want)
		}
		// The journal got its terminal record; a second daemon in resume
		// mode reaps it without registering anything.
		st, err := runlog.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != runlog.StateFailed {
			t.Fatalf("journal state %q, want failed", st.State)
		}
		s2, ts2 := newDurableServer(t, Options{JournalDir: dir})
		if err := s2.Recover(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatal("terminal journal was not reaped")
		}
		do(t, "GET", ts2.URL+"/runs/run-3", nil, nil, http.StatusNotFound)
	})

	t.Run("ignore", func(t *testing.T) {
		dir := t.TempDir()
		path := mk(t, dir, "run-4")
		s, ts := newDurableServer(t, Options{JournalDir: dir, Recover: "ignore"})
		if err := s.Recover(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatal("ignored journal was not removed")
		}
		do(t, "GET", ts.URL+"/runs/run-4", nil, nil, http.StatusNotFound)
		// The id sequence still advanced past the discarded run.
		var info RunInfo
		do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 50}, &info, http.StatusCreated)
		if info.ID != "run-5" {
			t.Fatalf("next run id %s, want run-5", info.ID)
		}
	})

	t.Run("bad-mode", func(t *testing.T) {
		s, _ := newDurableServer(t, Options{JournalDir: t.TempDir(), Recover: "yolo"})
		if err := s.Recover(); err == nil {
			t.Fatal("unknown recover mode accepted")
		}
	})
}

// replayEvSource adapts a scenario event slice to replaynet's source
// contract, for seeding a backend session outside the daemon.
type replayEvSource struct {
	evs []scenario.Event
	i   int
}

func (s *replayEvSource) NextReplayEvent() (replaynet.ReplayEvent, bool, error) {
	if s.i >= len(s.evs) {
		return replaynet.ReplayEvent{}, false, nil
	}
	e := s.evs[s.i]
	s.i++
	return replaynet.ReplayEvent{Time: e.Time, UE: e.UE, Type: e.Type}, true, nil
}

// TestDaemonClosedLoopCrashRecovery pins exactly-once delivery through a
// daemon crash: a session seeded with a prefix of the stream, a journal
// checkpoint *older* than what the server applied (the crash always loses
// the checkpoint→truth tail), and a resumed daemon run — the backend must
// end with every event applied exactly once.
func TestDaemonClosedLoopCrashRecovery(t *testing.T) {
	backend := replayBackend(t, replaynet.ServerOpts{})

	const ues = 150
	spec, err := scenario.Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Open(scenario.RunOpts{UEs: ues, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var evs []scenario.Event
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		evs = append(evs, e)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if len(evs) < 60 {
		t.Fatalf("scenario too small: %d events", len(evs))
	}

	// Incarnation 1 (the one that "crashed"): the first half of the stream
	// reached the server under session 424242.
	const session = 424242
	applied := len(evs) / 2
	st1, err := replaynet.ReplayClosed(backend.Addr().String(), events.Gen4G,
		&replayEvSource{evs: evs[:applied]}, replaynet.ClosedOpts{SessionID: session})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Server.Events != applied {
		t.Fatalf("seed incarnation applied %d, want %d", st1.Server.Events, applied)
	}

	// The journal checkpoint is staler than the server: it covers only the
	// first quarter. Resume must skip the gap unsent, not re-apply it.
	cut := applied / 2
	key := evs[cut-1]
	jdir := t.TempDir()
	craftCrashedJournal(t, jdir, runlog.Begin{
		RunID: "run-2", Scenario: "flash-crowd", Spec: builtinJSON(t, "flash-crowd"),
		Sink: "replay", Addr: backend.Addr().String(), ClosedLoop: true,
		UEs: ues, SessionID: session, StartedAt: time.Now(),
	}, &runlog.Checkpoint{
		Time: key.Time, UE: key.UE, Seq: key.Seq,
		Events: int64(cut), TraceOffset: key.Time,
		ReplayApplied: int64(cut),
	}, nil)

	s, ts := newDurableServer(t, Options{JournalDir: jdir})
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, ts.URL, "run-2")
	if final.State != StateDone {
		t.Fatalf("recovered replay run ended %s (err %q), want done", final.State, final.Error)
	}
	if got, _ := final.Result["events"].(float64); got != float64(len(evs)) {
		t.Fatalf("session applied %v events, want exactly %d (loss or duplication)", got, len(evs))
	}
	if dups, _ := final.Result["duplicates"].(float64); dups != 0 {
		t.Fatalf("recovery double-applied %v events", dups)
	}
	if got := backend.Snapshot().Events; got != len(evs) {
		t.Fatalf("backend holds %d events, want %d", got, len(evs))
	}
}

// TestDaemonJournalLifecycle pins journal file hygiene: created with the
// run, removed on DELETE after a clean drain, removed on retention
// eviction — and durable runs degrade gracefully when the journal
// directory is unusable.
func TestDaemonJournalLifecycle(t *testing.T) {
	jdir := t.TempDir()
	s, ts := newDurableServer(t, Options{JournalDir: jdir, MaxFinishedRuns: 1})
	_ = s

	runFile := func(id string) string { return filepath.Join(jdir, id+runlog.Ext) }
	startCount := func() RunInfo {
		var info RunInfo
		do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 60}, &info, http.StatusCreated)
		return waitState(t, ts.URL, info.ID)
	}

	// run-1: journal exists while retained, records the terminal state.
	if final := startCount(); final.State != StateDone {
		t.Fatalf("run-1 ended %s", final.State)
	}
	st, err := runlog.Load(runFile("run-1"))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != runlog.StateDone {
		t.Fatalf("run-1 journal state %q, want done", st.State)
	}

	// DELETE removes the journal with the run's history.
	do(t, "DELETE", ts.URL+"/runs/run-1", nil, nil, http.StatusOK)
	if _, err := os.Stat(runFile("run-1")); !os.IsNotExist(err) {
		t.Fatal("DELETE left the journal behind")
	}

	// Retention eviction removes the evicted run's journal: with
	// MaxFinishedRuns=1, starting run-3 evicts terminal run-2.
	startCount() // run-2
	startCount() // run-3 (evicts run-2 at submission)
	if _, err := os.Stat(runFile("run-2")); !os.IsNotExist(err) {
		t.Fatal("eviction left run-2's journal behind")
	}

	// Degradation: an unusable journal dir must not fail runs.
	notADir := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts2 := newDurableServer(t, Options{JournalDir: notADir})
	var info RunInfo
	do(t, "POST", ts2.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 60}, &info, http.StatusCreated)
	if final := waitState(t, ts2.URL, info.ID); final.State != StateDone {
		t.Fatalf("unjournaled run ended %s (err %q), want done", final.State, final.Error)
	}
}

// TestDaemonRunPanicContained pins satellite 1 at the daemon layer: a
// panicking run goroutine becomes a failed run with the panic and stack
// in its error, bumps cptserved_run_panics_total, journals the terminal
// state, and leaves the daemon serving.
func TestDaemonRunPanicContained(t *testing.T) {
	jdir := t.TempDir()
	_, ts := newDurableServer(t, Options{JournalDir: jdir})

	hook := func(*run) { panic("synthetic run explosion") }
	executeTestHook.Store(&hook)
	t.Cleanup(func() { executeTestHook.Store(nil) })

	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 60}, &info, http.StatusCreated)
	final := waitState(t, ts.URL, info.ID)
	if final.State != StateFailed {
		t.Fatalf("panicked run ended %s, want failed", final.State)
	}
	for _, want := range []string{"run panicked", "synthetic run explosion", "goroutine"} {
		if !bytes.Contains([]byte(final.Error), []byte(want)) {
			t.Fatalf("error %q missing %q", final.Error, want)
		}
	}
	st, err := runlog.Load(filepath.Join(jdir, info.ID+runlog.Ext))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != runlog.StateFailed {
		t.Fatalf("journal state %q, want failed", st.State)
	}
	body := scrapeMetrics(t, ts.URL)
	if !regexp.MustCompile(`cptserved_run_panics_total 1\b`).MatchString(body) {
		t.Fatal("metrics missing the panic counter")
	}

	// The daemon survived: with the hook gone, the next run completes.
	executeTestHook.Store(nil)
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 60}, &info, http.StatusCreated)
	if final := waitState(t, ts.URL, info.ID); final.State != StateDone {
		t.Fatalf("post-panic run ended %s, want done", final.State)
	}
}

// Transient-error writers for the retry tests.
type flakyWriter struct {
	fails int
	buf   bytes.Buffer
}

func (f *flakyWriter) Write(p []byte) (int, error) {
	if f.fails > 0 {
		f.fails--
		return 0, syscall.EINTR
	}
	return f.buf.Write(p)
}

type shortWriter struct {
	buf     bytes.Buffer
	tripped bool
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if !s.tripped && len(p) > 2 {
		s.tripped = true
		n, _ := s.buf.Write(p[:2])
		return n, io.ErrShortWrite
	}
	return s.buf.Write(p)
}

type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, os.ErrPermission }

// TestRetryWriter pins satellite 2's semantics: transient errors are
// retried with counted attempts, partial writes resume at the delivered
// offset, and permanent errors surface unchanged without retries.
func TestRetryWriter(t *testing.T) {
	var retries atomic.Int64

	fw := &flakyWriter{fails: 2}
	rw := &retryWriter{w: fw, retries: &retries}
	if n, err := rw.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = (%d, %v), want (5, nil)", n, err)
	}
	if fw.buf.String() != "hello" || retries.Load() != 2 {
		t.Fatalf("content %q retries %d, want %q/2", fw.buf.String(), retries.Load(), "hello")
	}

	retries.Store(0)
	sw := &shortWriter{}
	rw = &retryWriter{w: sw, retries: &retries}
	if n, err := rw.Write([]byte("abcdef")); err != nil || n != 6 {
		t.Fatalf("short Write = (%d, %v), want (6, nil)", n, err)
	}
	if sw.buf.String() != "abcdef" {
		t.Fatalf("short-write content %q, want %q (no duplicated prefix)", sw.buf.String(), "abcdef")
	}
	if retries.Load() != 1 {
		t.Fatalf("short-write retries %d, want 1", retries.Load())
	}

	retries.Store(0)
	rw = &retryWriter{w: brokenWriter{}, retries: &retries}
	if _, err := rw.Write([]byte("x")); err == nil {
		t.Fatal("permanent error was swallowed")
	}
	if retries.Load() != 0 {
		t.Fatalf("permanent error consumed %d retries", retries.Load())
	}
}

// TestDaemonDurableConcurrentChurn exercises the journaled hot path under
// the race detector: tight checkpoint cadence, concurrent paced file-sink
// runs, live stats/metrics scrapes, and stop-mid-stream.
func TestDaemonDurableConcurrentChurn(t *testing.T) {
	jdir := t.TempDir()
	outDir := t.TempDir()
	_, ts := newDurableServer(t, Options{
		JournalDir:         jdir,
		CheckpointEvents:   16,
		CheckpointInterval: 5 * time.Millisecond,
	})

	const n = 3
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		var info RunInfo
		do(t, "POST", ts.URL+"/runs", StartRequest{
			Scenario: "flash-crowd", UEs: 150, Compression: 120,
			Sink: "jsonl", Out: filepath.Join(outDir, fmt.Sprintf("churn-%d.jsonl", i)),
		}, &info, http.StatusCreated)
		ids[i] = info.ID
	}
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, id := range ids {
			var stats RunStats
			do(t, "GET", ts.URL+"/runs/"+id+"/stats", nil, &stats, http.StatusOK)
		}
		scrapeMetrics(t, ts.URL)
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range ids {
		do(t, "DELETE", ts.URL+"/runs/"+id, nil, nil, http.StatusOK)
	}
	for _, id := range ids {
		final := waitState(t, ts.URL, id)
		if final.State != StateStopped && final.State != StateDone {
			t.Fatalf("churn run %s ended %s (err %q)", id, final.State, final.Error)
		}
	}
}
