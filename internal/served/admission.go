package served

import (
	"fmt"
	"sync/atomic"
	"time"

	"cptgpt/internal/scenario"
	"cptgpt/internal/tracez"
)

// Admission rejection reasons — which daemon-wide budget a submission ran
// into. They label the 429 body and the rejected-counter's reason.
const (
	AdmitActiveRuns = "active_runs"
	AdmitTotalUEs   = "total_ues"
	AdmitSpillBytes = "spill_bytes"
	AdmitQueueFull  = "queue_full"
)

// AdmissionError is the typed 429 a submission gets when the daemon is at
// capacity: which budget was hit, where it stands, and how long the
// client should wait before retrying.
type AdmissionError struct {
	Reason     string
	Limit      int64
	Used       int64
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("served: admission rejected: %s at %d of %d", e.Reason, e.Used, e.Limit)
}

// admitter is the daemon-wide resource ledger behind admission control.
// The limits are fixed at construction; the ledger fields are atomics, so
// the admission check is lock-free — reservations and releases serialize
// under Server.mu, but the hot read path never takes it.
type admitter struct {
	maxRuns  int64
	maxUEs   int64
	maxSpill int64

	runs atomic.Int64 // active (admitted, not yet terminal) runs
	ues  atomic.Int64 // summed UE population across active runs
	// spill is the daemon-wide live spill-disk footprint: every run's
	// scenario budget shares this gauge, so generation-phase disk usage is
	// visible to admission the moment it is charged.
	spill atomic.Int64
}

// enabled reports whether any admission limit is configured.
func (a *admitter) enabled() bool {
	return a.maxRuns > 0 || a.maxUEs > 0 || a.maxSpill > 0
}

// check is the lock-free admission test for a submission costing ues UE
// slots. Atomic loads only — this is the POST /runs fast path and the
// BenchmarkAdmissionCheck target.
func (a *admitter) check(ues int64) *AdmissionError {
	if a.maxRuns > 0 && a.runs.Load() >= a.maxRuns {
		return &AdmissionError{Reason: AdmitActiveRuns, Limit: a.maxRuns,
			Used: a.runs.Load(), RetryAfter: time.Second}
	}
	if a.maxUEs > 0 && a.ues.Load()+ues > a.maxUEs {
		return &AdmissionError{Reason: AdmitTotalUEs, Limit: a.maxUEs,
			Used: a.ues.Load(), RetryAfter: time.Second}
	}
	if a.maxSpill > 0 && a.spill.Load() >= a.maxSpill {
		return &AdmissionError{Reason: AdmitSpillBytes, Limit: a.maxSpill,
			Used: a.spill.Load(), RetryAfter: 2 * time.Second}
	}
	return nil
}

// reserve charges a run's admission cost. Caller holds Server.mu (or is a
// recovery path that deliberately reserves past the limits).
func (a *admitter) reserve(ues int64) {
	a.runs.Add(1)
	a.ues.Add(ues)
}

// release returns a terminal run's admission cost to the ledger.
func (a *admitter) release(ues int64) {
	a.runs.Add(-1)
	a.ues.Add(-ues)
}

// CheckAdmission reports whether a run costing ues UE slots would be
// admitted right now. Lock-free: atomic loads against the admission
// ledger, nothing else. The returned error, when non-nil, is an
// *AdmissionError. Admission is advisory at this layer — the authoritative
// check-and-reserve happens under the server's registration lock — but
// the answer is exact whenever the ledger is quiescent.
func (s *Server) CheckAdmission(ues int) error {
	if err := s.admission.check(int64(ues)); err != nil {
		return err
	}
	return nil
}

// admissionUEs is a submission's admission cost: the UE override if set,
// else the spec's population, else the engine default.
func admissionUEs(ues int, spec *scenario.Spec) int64 {
	if ues > 0 {
		return int64(ues)
	}
	if spec != nil && spec.Population > 0 {
		return int64(spec.Population)
	}
	return int64(scenario.DefaultPopulation)
}

// releaseAdmission returns a launched run's reservation and wakes the
// admission queue. Runs on the run's lifecycle goroutine after the run is
// terminal (its done channel is closed), exactly once per launch.
func (s *Server) releaseAdmission(r *run) {
	s.admission.release(r.admitUEs)
	s.pumpQueue()
}

// pumpQueue admits queued runs in FIFO order while the freed budget
// allows. Runs cancelled while queued were already finished and removed
// by their DELETE; a head-of-line run that no longer fits stays queued —
// no reordering, so a small run never starves behind the budget a big one
// is waiting for.
func (s *Server) pumpQueue() {
	for {
		s.mu.Lock()
		if s.shuttingDown || len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		r := s.queue[0]
		if r.runCtx.Err() != nil {
			// Cancelled while queued (daemon Close mid-pump); its DELETE or
			// Close finished it — just drop the queue slot.
			s.queue = s.queue[1:]
			s.mu.Unlock()
			continue
		}
		if err := s.admission.check(r.admitUEs); err != nil {
			s.mu.Unlock()
			return
		}
		s.queue = s.queue[1:]
		s.admission.reserve(r.admitUEs)
		s.wg.Add(1)
		s.mu.Unlock()

		r.queueSp.End(0, "admitted")
		s.admitted.Inc()
		r.setState(StateGenerating)
		if s.opts.JournalDir != "" {
			s.openJournal(r)
		}
		s.log.Infow("queued run admitted", "run", r.id,
			"queued_for", time.Since(r.startedAt))
		s.launch(r, r.runCtx, r.cancel)
	}
}

// enqueueLocked parks an over-budget submission in the admission queue.
// Caller holds s.mu and has verified there is queue space.
func (s *Server) enqueueLocked(r *run) {
	r.queueSp = tracez.Begin(tracez.StageRunQueued, r.id)
	s.queue = append(s.queue, r)
}

// cancelQueued removes a still-queued run and finishes it as stopped.
// Returns false when the run is not in the queue (it was already admitted
// — the caller falls through to the normal cancel-and-drain path).
func (s *Server) cancelQueued(r *run) bool {
	s.mu.Lock()
	found := false
	for i, q := range s.queue {
		if q == r {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			found = true
			break
		}
	}
	s.mu.Unlock()
	if !found {
		return false
	}
	// Never launched: nothing will close done or release a reservation
	// (it never made one), so finish the run here.
	r.queueSp.End(0, "cancelled")
	r.cancel()
	r.finish(StateStopped, nil, nil)
	close(r.done)
	return true
}
