package served

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/scenario"
)

// newTestServer builds a daemon and an httptest front end. The caller gets
// a closer that drains runs and shuts the test server down.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{TempDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, ts
}

// tinyModelFile saves an untrained tiny CPT-GPT model for cptgpt-source
// runs — decoding works without training, the output is just near-uniform.
func tinyModelFile(t *testing.T) string {
	t.Helper()
	cfg := cptgpt.DefaultConfig()
	cfg.DModel = 16
	cfg.Heads = 2
	cfg.MLPHidden = 32
	cfg.HeadHidden = 16
	cfg.MaxLen = 40
	tk := cptgpt.Tokenizer{Gen: events.Gen4G, MinLog: 0, MaxLog: 5, LogScale: true}
	m, err := cptgpt.NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.cptgpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// do sends a JSON request and decodes the JSON response into out (skipped
// when out is nil), failing on an unexpected status.
func do(t *testing.T, method, url string, body, out any, wantStatus int) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s response: %v; body: %s", method, url, err, buf.String())
		}
	}
}

// waitState polls a run until it reaches a terminal state.
func waitState(t *testing.T, url, id string) RunInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var info RunInfo
		do(t, "GET", url+"/runs/"+id, nil, &info, http.StatusOK)
		if terminal(info.State) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in state %s", id, info.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonLifecycle walks the full story on a builtin scenario: start
// (unpaced, count sink) → completes → list/inspect/stats agree → metrics
// carry the run's series — and the daemon leaks no goroutines.
func TestDaemonLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		s := New(Options{TempDir: t.TempDir()})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Close(ctx); err != nil {
				t.Errorf("server close: %v", err)
			}
		}()

		var info RunInfo
		do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 300}, &info, http.StatusCreated)
		if info.ID == "" || info.Scenario != "flash-crowd" || info.Sink != "count" {
			t.Fatalf("start response: %+v", info)
		}
		final := waitState(t, ts.URL, info.ID)
		if final.State != StateDone {
			t.Fatalf("run ended %s (err %q), want done", final.State, final.Error)
		}
		evs, ok := final.Result["events"].(float64)
		if !ok || evs <= 0 {
			t.Fatalf("done run result missing event count: %+v", final.Result)
		}

		var list struct {
			Runs []RunInfo `json:"runs"`
		}
		do(t, "GET", ts.URL+"/runs", nil, &list, http.StatusOK)
		if len(list.Runs) != 1 || list.Runs[0].ID != info.ID {
			t.Fatalf("list: %+v", list)
		}

		var stats RunStats
		do(t, "GET", ts.URL+"/runs/"+info.ID+"/stats", nil, &stats, http.StatusOK)
		if stats.Events != int64(evs) {
			t.Fatalf("stats events %d != result events %v", stats.Events, evs)
		}
		if stats.State != StateDone || stats.WallSeconds <= 0 || stats.EventsPerSec <= 0 {
			t.Fatalf("stats: %+v", stats)
		}

		body := scrapeMetrics(t, ts.URL)
		for _, want := range []string{
			"cptserved_uptime_seconds",
			"cptserved_runs_started_total 1",
			`cptserved_run_events_total{run="` + info.ID + `",scenario="flash-crowd"} ` + fmt.Sprint(int64(evs)),
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("metrics missing %q:\n%s", want, body)
			}
		}

		do(t, "GET", ts.URL+"/runs/nope", nil, nil, http.StatusNotFound)
		do(t, "GET", ts.URL+"/healthz", nil, nil, http.StatusOK)
	}()

	// The closure's Cleanup ran: daemon and test server are down. Shared
	// HTTP keep-alive goroutines are not the daemon's — close them — then
	// allow the runtime a settling window before comparing counts.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
}

// scrapeMetrics fetches /metrics and validates it line-by-line against the
// Prometheus text exposition grammar.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9.eE+-]+(e[+-][0-9]+)?$`)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("unparseable metrics line: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDaemonStopPacedRun starts a paced run that would take far longer
// than the test budget, stops it mid-stream, and checks the clean drain:
// state stopped, no error, and the jsonl sink's file intact line-by-line.
func TestDaemonStopPacedRun(t *testing.T) {
	_, ts := newTestServer(t)
	out := filepath.Join(t.TempDir(), "events.jsonl")

	// flash-crowd spans hours of trace time; at compression 60 the run
	// would take minutes. Stop it almost immediately.
	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{
		Scenario: "flash-crowd", UEs: 300, Compression: 60,
		Sink: "jsonl", Out: out,
	}, &info, http.StatusCreated)

	// Let it get past generation and release at least one event.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st RunStats
		do(t, "GET", ts.URL+"/runs/"+info.ID+"/stats", nil, &st, http.StatusOK)
		if st.State == StateStreaming && st.Events > 0 {
			if st.Compression != 60 {
				t.Fatalf("stats compression = %v, want 60", st.Compression)
			}
			break
		}
		if terminal(st.State) {
			t.Fatalf("paced run ended early: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started streaming")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var stopped RunInfo
	do(t, "DELETE", ts.URL+"/runs/"+info.ID, nil, &stopped, http.StatusOK)
	if stopped.State != StateStopped || stopped.Error != "" {
		t.Fatalf("stop: %+v", stopped)
	}
	evs, ok := stopped.Result["events"].(float64)
	if !ok || evs <= 0 {
		t.Fatalf("stopped run lost its partial result: %+v", stopped.Result)
	}

	// Clean drain: every line of the sink file is complete, valid JSON,
	// and the count matches the run's released-event count.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("truncated jsonl line %d: %v", lines+1, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != int(evs) {
		t.Fatalf("sink file has %d lines, run reported %v events", lines, evs)
	}
}

// TestDaemonCPTGPTSourceStats runs an inline spec backed by a tiny model
// file and checks the decode telemetry: per-source steps/slot-steps in
// /stats, decode series in /metrics, and model-cache reuse across runs.
func TestDaemonCPTGPTSourceStats(t *testing.T) {
	s, ts := newTestServer(t)
	model := tinyModelFile(t)

	spec := &scenario.Spec{
		Name: "gpt-inline", Generation: "4G", Seed: 11, HorizonSec: 600, Population: 40,
		Sources: []scenario.SourceSpec{{ID: "gpt", Kind: "cptgpt", ModelFile: model, Share: 1}},
	}
	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Spec: spec, Sink: "count"}, &info, http.StatusCreated)
	final := waitState(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("run ended %s (err %q)", final.State, final.Error)
	}

	var stats RunStats
	do(t, "GET", ts.URL+"/runs/"+info.ID+"/stats", nil, &stats, http.StatusOK)
	src, ok := stats.Sources["gpt"]
	if !ok {
		t.Fatalf("stats missing cptgpt source block: %+v", stats)
	}
	if src.Steps <= 0 || src.SlotSteps <= 0 {
		t.Fatalf("decode stats empty: %+v", src)
	}
	if src.SlotUtilization <= 0 || src.SlotUtilization > 1 {
		t.Fatalf("slot utilization out of range: %+v", src)
	}
	// A cptgpt-source run reports the tensor pool's load deltas.
	if stats.Pool == nil {
		t.Fatalf("stats missing pool block: %+v", stats)
	}
	if stats.Pool.ValidPolls < 0 || stats.Pool.EmptyPolls < 0 || stats.Pool.Items < 0 {
		t.Fatalf("pool deltas negative: %+v", stats.Pool)
	}

	body := scrapeMetrics(t, ts.URL)
	if !strings.Contains(body, `cptserved_decode_steps_total{run="`+info.ID+`",scenario="gpt-inline",source="gpt"}`) {
		t.Fatalf("metrics missing decode series:\n%s", body)
	}
	if !strings.Contains(body, "cptserved_models_loaded 1") {
		t.Fatalf("model cache gauge wrong:\n%s", body)
	}

	// Second run against the same model file must reuse the cached model.
	do(t, "POST", ts.URL+"/runs", StartRequest{Spec: spec, Sink: "count"}, &info, http.StatusCreated)
	if final = waitState(t, ts.URL, info.ID); final.State != StateDone {
		t.Fatalf("second run ended %s (err %q)", final.State, final.Error)
	}
	s.mu.Lock()
	cached := len(s.models)
	s.mu.Unlock()
	if cached != 1 {
		t.Fatalf("model cache holds %d entries after two runs of one model, want 1", cached)
	}
}

// TestDaemonMCNSink drives the builtin scenario into the mcn sink and
// checks the latency telemetry lands in stats, metrics and the result.
func TestDaemonMCNSink(t *testing.T) {
	_, ts := newTestServer(t)

	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 300, Sink: "mcn"}, &info, http.StatusCreated)
	final := waitState(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("mcn run ended %s (err %q)", final.State, final.Error)
	}
	for _, k := range []string{"events", "latency_p95_ms", "latency_p99_ms", "max_instances"} {
		if _, ok := final.Result[k]; !ok {
			t.Fatalf("mcn result missing %q: %+v", k, final.Result)
		}
	}

	var stats RunStats
	do(t, "GET", ts.URL+"/runs/"+info.ID+"/stats", nil, &stats, http.StatusOK)
	if stats.MCN == nil || stats.MCN.Events <= 0 {
		t.Fatalf("stats missing live mcn block: %+v", stats)
	}
	if stats.MCN.P99Ms < stats.MCN.P95Ms {
		t.Fatalf("p99 %v < p95 %v", stats.MCN.P99Ms, stats.MCN.P95Ms)
	}

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`cptserved_mcn_events_total{run="` + info.ID + `"`,
		`cptserved_mcn_latency_seconds{run="` + info.ID + `",scenario="flash-crowd",stat="p99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestDaemonValidation checks that malformed start requests fail fast with
// 400 and never create a run.
func TestDaemonValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []StartRequest{
		{},                             // neither scenario nor spec
		{Scenario: "no-such-scenario"}, // unknown builtin
		{Scenario: "flash-crowd", Spec: &scenario.Spec{}}, // both
		{Scenario: "flash-crowd", Sink: "tape"},           // unknown sink
		{Scenario: "flash-crowd", Sink: "jsonl"},          // file sink, no out
		{Scenario: "flash-crowd", Out: "x.jsonl"},         // out without file sink
		{Scenario: "flash-crowd", Precision: "f16"},       // bad precision
		{Scenario: "flash-crowd", Speculative: "maybe"},   // bad speculative
		{Scenario: "flash-crowd", Compression: -1},        // negative compression
		{Scenario: "flash-crowd", UEs: -5},                // negative population
	}
	for i, req := range bad {
		do(t, "POST", ts.URL+"/runs", req, nil, http.StatusBadRequest)
		_ = i
	}
	// Unknown JSON fields are rejected too (catches client typos).
	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"scenario":"flash-crowd","compresion":10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typoed field accepted: %d", resp.StatusCode)
	}

	var list struct {
		Runs []RunInfo `json:"runs"`
	}
	do(t, "GET", ts.URL+"/runs", nil, &list, http.StatusOK)
	if len(list.Runs) != 0 {
		t.Fatalf("rejected requests created runs: %+v", list.Runs)
	}
}

// TestDaemonConcurrentRuns exercises concurrent start/poll/stop traffic
// under the race detector.
func TestDaemonConcurrentRuns(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var info RunInfo
			// Half paced-and-stopped, half unpaced-to-completion.
			reqBody := StartRequest{Scenario: "flash-crowd", UEs: 150}
			if i%2 == 0 {
				reqBody.Compression = 60
			}
			b, _ := json.Marshal(reqBody)
			resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			err = json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if i%2 == 0 {
				time.Sleep(50 * time.Millisecond)
				req, _ := http.NewRequest("DELETE", ts.URL+"/runs/"+info.ID, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				resp, err := http.Get(ts.URL + "/runs/" + info.ID)
				if err != nil {
					errs <- err
					return
				}
				var cur RunInfo
				err = json.NewDecoder(resp.Body).Decode(&cur)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if terminal(cur.State) {
					if cur.State == StateFailed {
						errs <- fmt.Errorf("run %s failed: %s", cur.ID, cur.Error)
					}
					return
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("run %s never finished", info.ID)
					return
				}
				// Scrape while runs churn: exercises the registry under race.
				http.Get(ts.URL + "/metrics")
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDaemonShutdownRejects checks that Close stops in-flight runs with a
// clean drain and that new runs are refused afterwards.
func TestDaemonShutdownRejects(t *testing.T) {
	s := New(Options{TempDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 300, Compression: 30}, &info, http.StatusCreated)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	var cur RunInfo
	do(t, "GET", ts.URL+"/runs/"+info.ID, nil, &cur, http.StatusOK)
	if cur.State != StateStopped && cur.State != StateDone {
		t.Fatalf("run state after shutdown = %s, want stopped or done", cur.State)
	}
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd"}, nil, http.StatusServiceUnavailable)
}

// TestDaemonEviction bounds the finished-run history and drops evicted
// runs' metric series.
func TestDaemonEviction(t *testing.T) {
	s := New(Options{TempDir: t.TempDir(), MaxFinishedRuns: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	var first RunInfo
	for i := 0; i < 3; i++ {
		var info RunInfo
		do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 150}, &info, http.StatusCreated)
		if i == 0 {
			first = info
		}
		waitState(t, ts.URL, info.ID)
	}
	var list struct {
		Runs []RunInfo `json:"runs"`
	}
	do(t, "GET", ts.URL+"/runs", nil, &list, http.StatusOK)
	if len(list.Runs) != 2 {
		t.Fatalf("retained %d runs, want 2", len(list.Runs))
	}
	do(t, "GET", ts.URL+"/runs/"+first.ID, nil, nil, http.StatusNotFound)
	if body := scrapeMetrics(t, ts.URL); strings.Contains(body, `run="`+first.ID+`"`) {
		t.Fatalf("evicted run's metric series survive:\n%s", body)
	}
}

// TestDaemonObservability drives a cptgpt-source run and an mcn run, then
// checks the PR-8 surfaces: /metrics carries native Prometheus histograms
// (cumulative _bucket/_sum/_count) for the pacer, decode and mcn
// distributions, and /debug/trace exposes flight-recorder spans covering
// the scenario pipeline, the batch decoder, the pacer and the run
// lifecycle.
func TestDaemonObservability(t *testing.T) {
	_, ts := newTestServer(t)
	model := tinyModelFile(t)

	spec := &scenario.Spec{
		Name: "gpt-obs", Generation: "4G", Seed: 7, HorizonSec: 600, Population: 40,
		Sources: []scenario.SourceSpec{{ID: "gpt", Kind: "cptgpt", ModelFile: model, Share: 1}},
	}
	var info RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Spec: spec, Sink: "count"}, &info, http.StatusCreated)
	if final := waitState(t, ts.URL, info.ID); final.State != StateDone {
		t.Fatalf("cptgpt run ended %s (err %q)", final.State, final.Error)
	}
	var mcnInfo RunInfo
	do(t, "POST", ts.URL+"/runs", StartRequest{Scenario: "flash-crowd", UEs: 200, Sink: "mcn"}, &mcnInfo, http.StatusCreated)
	if final := waitState(t, ts.URL, mcnInfo.ID); final.State != StateDone {
		t.Fatalf("mcn run ended %s (err %q)", final.State, final.Error)
	}

	body := scrapeMetrics(t, ts.URL)

	// Native histogram families present, each with the full bucket ladder.
	families := map[string]bool{}
	for _, m := range regexp.MustCompile(`(?m)^([a-z_]+)_bucket\{`).FindAllStringSubmatch(body, -1) {
		families[m[1]] = true
	}
	for _, want := range []string{
		"cptserved_pacer_lag_seconds",
		"cptserved_pacer_window_rate",
		"cptserved_decode_step_seconds",
		"cptserved_mcn_arrival_latency_seconds",
	} {
		if !families[want] {
			t.Fatalf("metrics missing histogram family %q (have %v)", want, families)
		}
	}
	if len(families) < 4 {
		t.Fatalf("only %d native histogram families, want >= 4", len(families))
	}

	// Observations actually land: decode steps, mcn latencies and pacer
	// windows all have nonzero _count, and every family's +Inf bucket
	// equals its _count.
	for series, lbl := range map[string]string{
		"cptserved_decode_step_seconds":         `{run="` + info.ID + `",scenario="gpt-obs",source="gpt"}`,
		"cptserved_pacer_window_rate":           `{run="` + info.ID + `",scenario="gpt-obs"}`,
		"cptserved_mcn_arrival_latency_seconds": `{run="` + mcnInfo.ID + `",scenario="flash-crowd"}`,
	} {
		countRe := regexp.MustCompile(regexp.QuoteMeta(series+"_count"+lbl) + ` (\d+)`)
		m := countRe.FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("metrics missing %s_count%s:\n%s", series, lbl, body)
		}
		if m[1] == "0" {
			t.Fatalf("%s%s has zero observations", series, lbl)
		}
		infLine := series + "_bucket" + lbl[:len(lbl)-1] + `,le="+Inf"} ` + m[1]
		if !strings.Contains(body, infLine) {
			t.Fatalf("metrics missing matching +Inf bucket %q", infLine)
		}
	}

	// The flight recorder covers every pipeline layer.
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var trace struct {
		Enabled bool `json:"enabled"`
		Stages  []struct {
			Stage string `json:"stage"`
			Count int64  `json:"count"`
		} `json:"stages"`
		Spans []struct {
			Stage string `json:"stage"`
			Dur   int64  `json:"dur_nanos"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("decode /debug/trace: %v", err)
	}
	if !trace.Enabled {
		t.Fatal("daemon's flight recorder reports disabled")
	}
	if len(trace.Spans) == 0 {
		t.Fatal("/debug/trace has no spans")
	}
	have := map[string]int64{}
	for _, st := range trace.Stages {
		have[st.Stage] = st.Count
	}
	for _, want := range []string{
		"scenario.source", "scenario.spill", "scenario.merge", "scenario.sink",
		"decode.step", "pacer.window",
		"run.generate", "run.stream", "run.state",
	} {
		if have[want] == 0 {
			t.Fatalf("/debug/trace missing stage %q (have %v)", want, have)
		}
	}
	// Two runs, two streaming transitions + two terminal states minimum.
	if have["run.state"] < 4 {
		t.Fatalf("run.state count = %d, want >= 4", have["run.state"])
	}
}

// TestDaemonPprofOptIn checks the profiler stays unmounted by default and
// mounts under /debug/pprof/ when Options.EnablePprof is set.
func TestDaemonPprofOptIn(t *testing.T) {
	s, ts := newTestServer(t)
	_ = s
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in: %d", resp.StatusCode)
	}

	sp := New(Options{TempDir: t.TempDir(), EnablePprof: true})
	tsp := httptest.NewServer(sp.Handler())
	defer tsp.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sp.Close(ctx)
	}()
	resp, err = http.Get(tsp.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d with EnablePprof", resp.StatusCode)
	}
}
