package served

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"cptgpt/internal/runlog"
	"cptgpt/internal/scenario"
)

// Journal checkpoint cadence defaults: a checkpoint lands at least every
// CheckpointEvents released events, and (tested every 16 events so the
// hot path stays clock-free) after CheckpointInterval of wall time.
const (
	DefaultCheckpointEvents   = 4096
	DefaultCheckpointInterval = time.Second
)

// openJournal attaches a write-ahead journal to a newly accepted run.
// Journaling is best-effort by design: any failure here (unwritable
// directory, full disk) logs a warning and leaves the run unjournaled
// rather than failing the start — durability degrades, traffic
// generation does not.
func (s *Server) openJournal(r *run) {
	if err := os.MkdirAll(s.opts.JournalDir, 0o755); err != nil {
		s.log.Warnw("run journal unavailable", "run", r.id, "err", err)
		return
	}
	spec, err := json.Marshal(r.spec)
	if err != nil {
		s.log.Warnw("run journal unavailable", "run", r.id, "err", err)
		return
	}
	path := filepath.Join(s.opts.JournalDir, r.id+runlog.Ext)
	j, err := runlog.Create(path, s.journalOpts(r.id))
	if err != nil {
		s.log.Warnw("run journal unavailable", "run", r.id, "err", err)
		return
	}
	j.AppendBegin(runlog.Begin{
		RunID: r.id, Scenario: r.scenarioName, Spec: spec,
		Sink: r.sink, Out: r.out, Addr: r.addr, ClosedLoop: r.closedLoop,
		UEs: r.ues, Compression: r.compression,
		Precision: r.opts.Precision, Speculative: r.opts.Speculative,
		DraftTokens: r.opts.DraftTokens,
		Parallelism: r.opts.Parallelism, BatchSize: r.opts.BatchSize,
		SessionID:     r.sessionID,
		MaxSpillBytes: r.budget.MaxSpillBytes, MaxEvents: r.budget.MaxEvents,
		MaxWallNanos: int64(r.budget.MaxWall), Degrade: r.degrade,
		ShedAfterNanos: int64(r.shedAfter),
		StartedAt:      r.startedAt,
	})
	// The write-ahead contract: the run's identity record is durable
	// before the run does any work.
	j.Sync()
	// The run may already be published (healthz reads journals of live
	// runs under r.mu), so the assignment takes the run lock.
	r.mu.Lock()
	r.journal = j
	r.jpath = path
	r.mu.Unlock()
}

// journalOpts is the shared runlog configuration: every journal feeds the
// same metrics block (behind the cptserved_journal_* series) and logs its
// own degradation.
func (s *Server) journalOpts(runID string) runlog.Options {
	return runlog.Options{
		Policy:   s.opts.Fsync,
		Interval: s.opts.FsyncInterval,
		Metrics:  &s.journalM,
		OnError: func(err error) {
			s.log.Warnw("run journal degraded to memory-only", "run", runID, "err", err)
		},
	}
}

// removeJournal deletes the run's journal file. Called when the run's
// history leaves the daemon (DELETE drain, retention eviction): a run the
// operator discarded must not resurrect at the next startup.
func (r *run) removeJournal() {
	if r.jpath != "" {
		os.Remove(r.jpath)
	}
}

// ckptTap interposes between the pacer and the sink, appending a journal
// checkpoint at the run's cadence. A checkpoint names the merge key of
// the newest event the sink durably holds, so recovery can fast-forward
// the regenerated stream past it and replay only the lost tail.
type ckptTap struct {
	scenario.EventSource
	j        *runlog.Journal
	base     int64 // events released by previous incarnations
	every    int64
	interval time.Duration

	// syncSink, when set (file sinks), makes the sink's durable cursor
	// part of each checkpoint: it must flush the sink to stable storage
	// and fill the cursor fields, returning false to skip this checkpoint
	// (the invariant "a checkpoint implies a durable sink prefix" beats
	// checkpoint freshness).
	syncSink func(*runlog.Checkpoint) bool

	// shed, when set, reads the pacer's cumulative load-shed counter so
	// checkpoints carry it and a resumed pacer continues the count.
	shed func() int64

	// acked, when set (closed-loop replay), is the driver's contiguously
	// applied absolute sequence: checkpoints cover the newest
	// server-acknowledged event rather than the newest released one, and
	// pending queues released-but-unacknowledged events until a
	// checkpoint can cover them.
	acked   *atomic.Uint64
	seqBase uint64 // absolute sequence already applied before this incarnation
	pending []scenario.Event
	pendSeq uint64 // absolute sequence of pending[0]

	n     int64 // events released this incarnation
	lastN int64
	lastT time.Time
	prev  scenario.Event
}

// newCkptTap wires a tap for the run. For sync sinks the caller must set
// syncSink before the first Next.
func newCkptTap(src scenario.EventSource, r *run) *ckptTap {
	t := &ckptTap{
		EventSource: src,
		j:           r.journal,
		base:        r.baseEvents,
		every:       r.ckptEvery,
		interval:    r.ckptInterval,
		lastT:       time.Now(),
	}
	if r.sink == "replay" && r.closedLoop {
		t.acked = &r.replayLive.AckedSeq
		t.seqBase = r.replayResumeFrom
	}
	if p := r.pacer.Load(); p != nil {
		t.shed = p.Shed
	}
	return t
}

// Next releases the source's next event, checkpointing first when the
// cadence is due — so a checkpoint only ever covers events the sink has
// fully consumed (the sink finished writing event k before the single
// consumer pulls event k+1).
func (t *ckptTap) Next() (scenario.Event, bool) {
	e, ok := t.EventSource.Next()
	if !ok {
		if t.n > 0 {
			t.checkpoint()
		}
		return e, ok
	}
	if t.n > 0 && t.due() {
		t.checkpoint()
	}
	t.n++
	t.prev = e
	if t.acked != nil {
		if len(t.pending) == 0 {
			t.pendSeq = t.seqBase + uint64(t.n)
		}
		t.pending = append(t.pending, e)
	}
	return e, true
}

func (t *ckptTap) due() bool {
	if t.n-t.lastN >= t.every {
		return true
	}
	return t.n&15 == 0 && time.Since(t.lastT) >= t.interval
}

func (t *ckptTap) checkpoint() {
	var c runlog.Checkpoint
	if t.acked != nil {
		a := t.acked.Load()
		if len(t.pending) == 0 || a < t.pendSeq {
			return // nothing newly acknowledged since the last cover
		}
		drop := a - t.pendSeq + 1
		if drop > uint64(len(t.pending)) {
			drop = uint64(len(t.pending))
		}
		key := t.pending[drop-1]
		t.pending = t.pending[drop:]
		t.pendSeq += drop
		applied := int64(t.pendSeq - 1)
		c = runlog.Checkpoint{
			Time: key.Time, UE: key.UE, Seq: key.Seq,
			Events: applied, TraceOffset: key.Time,
			ReplayApplied: applied,
		}
	} else {
		c = runlog.Checkpoint{
			Time: t.prev.Time, UE: t.prev.UE, Seq: t.prev.Seq,
			Events: t.base + t.n, TraceOffset: t.prev.Time,
		}
		if t.syncSink != nil && !t.syncSink(&c) {
			return
		}
	}
	if t.shed != nil {
		c.Shed = t.shed()
	}
	t.j.AppendCheckpoint(c)
	t.lastN = t.n
	t.lastT = time.Now()
}

// Sink write-retry policy (satellite of the durability story): a
// transient filesystem hiccup costs a counted retry with doubling
// backoff, not a failed run. Permanent errors surface unchanged.
const (
	sinkRetryAttempts = 5
	sinkRetryBackoff  = time.Millisecond
)

// transientWriteErr reports whether a sink write error is worth retrying:
// an interrupted or would-block syscall, or a short write.
func transientWriteErr(err error) bool {
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) || errors.Is(err, io.ErrShortWrite)
}

// retryWriter absorbs transient write errors with bounded exponential
// backoff, resuming partial writes at the delivered offset and counting
// each retry into the run's stats.
type retryWriter struct {
	w       io.Writer
	retries *atomic.Int64
}

func (rw *retryWriter) Write(p []byte) (int, error) {
	n, err := rw.w.Write(p)
	backoff := sinkRetryBackoff
	for attempt := 0; err != nil && transientWriteErr(err) && attempt < sinkRetryAttempts; attempt++ {
		rw.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		var m int
		m, err = rw.w.Write(p[n:])
		n += m
	}
	return n, err
}

// countingWriter tracks the absolute sink byte offset — seeded with the
// resumed durable prefix length on recovery, so checkpoints always carry
// whole-file cursors.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
