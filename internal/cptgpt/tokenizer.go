// Package cptgpt implements the paper's primary contribution: CPT-GPT, a
// decoder-only transformer that synthesizes cellular control-plane traffic
// without domain knowledge.
//
// The three design elements of §4.4 are all here:
//
//   - Design 1 — multi-modal tokenization: each sample becomes the
//     concatenation of an interarrival sub-token (log-scaled, min-max
//     normalized), a one-hot event-type sub-token and a one-hot stop-flag
//     sub-token; a linear layer replaces the NLP embedding table.
//   - Design 2 — distribution-parameter output: the numeric interarrival
//     head predicts a (mean, log-std) pair trained with Gaussian NLL and
//     sampled at inference, instead of a deterministic scalar.
//   - Design 3 — transfer learning: models warm-start from another hour's
//     weights and fine-tune, which is how hourly model ensembles are built.
package cptgpt

import (
	"fmt"
	"math"

	"cptgpt/internal/events"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// Tokenizer converts between streams and the multi-modal token space of
// Design 1. A token is the concatenation
//
//	[ interarrival (1) | event one-hot (V) | stop one-hot (2) ]
//
// giving dimension V+3 (9 for the 4G vocabulary, as in Figure 3).
type Tokenizer struct {
	// Gen fixes the event vocabulary.
	Gen events.Generation
	// MinLog and MaxLog are the dataset-wide bounds of log1p(interarrival)
	// used for min-max scaling into [0, 1].
	MinLog, MaxLog float64
	// LogScale disables the log1p transform when false (kept for the
	// Figure 7 companion ablation; the paper always uses log scaling).
	LogScale bool
}

// FitTokenizer scans the dataset's interarrival times and returns a
// tokenizer whose scaling covers them.
func FitTokenizer(d *trace.Dataset) Tokenizer {
	tk := Tokenizer{Gen: d.Generation, MinLog: math.Inf(1), MaxLog: math.Inf(-1), LogScale: true}
	for i := range d.Streams {
		ia := d.Streams[i].Interarrivals()
		for _, x := range ia[min(len(ia), 1):] {
			l := math.Log1p(math.Max(x, 0))
			if l < tk.MinLog {
				tk.MinLog = l
			}
			if l > tk.MaxLog {
				tk.MaxLog = l
			}
		}
	}
	if math.IsInf(tk.MinLog, 1) { // no interarrivals at all
		tk.MinLog, tk.MaxLog = 0, 1
	}
	if tk.MaxLog-tk.MinLog < 1e-9 {
		tk.MaxLog = tk.MinLog + 1
	}
	return tk
}

// Vocab returns the tokenizer's event vocabulary.
func (tk Tokenizer) Vocab() []events.Type { return events.Vocabulary(tk.Gen) }

// V returns the vocabulary size.
func (tk Tokenizer) V() int { return len(events.Vocabulary(tk.Gen)) }

// Dim returns the token dimension d_token = 1 + V + 2.
func (tk Tokenizer) Dim() int { return 1 + tk.V() + 2 }

// ScaleIA maps an interarrival time (seconds) to the model's [0, 1] space.
func (tk Tokenizer) ScaleIA(x float64) float64 {
	v := math.Max(x, 0)
	if tk.LogScale {
		v = math.Log1p(v)
	}
	s := (v - tk.MinLog) / (tk.MaxLog - tk.MinLog)
	return math.Min(math.Max(s, 0), 1)
}

// UnscaleIA inverts ScaleIA (clamping into the fitted range first).
func (tk Tokenizer) UnscaleIA(s float64) float64 {
	s = math.Min(math.Max(s, 0), 1)
	v := tk.MinLog + s*(tk.MaxLog-tk.MinLog)
	if tk.LogScale {
		return math.Expm1(v)
	}
	return v
}

// Targets holds the next-token training targets aligned with an input token
// matrix of T rows: row t predicts sample t+1's fields.
type Targets struct {
	// Event is the vocabulary index of the next sample's event type.
	Event []int
	// IA is the next sample's scaled interarrival.
	IA []float64
	// IAMask marks rows whose IA target participates in the loss (all true
	// in the standard encoding; kept explicit for padding-free batching).
	IAMask []bool
	// Stop is 1 when the next sample is the last of the stream, else 0.
	Stop []int
}

// EncodeStream converts a stream of length L ≥ 2 into an input token matrix
// of T = L−1 rows plus aligned next-token targets. The first token carries
// interarrival 0 and stop 0 (matching §4.5's prompt construction); the final
// sample appears only as a target, with its stop flag set to 1.
//
// Streams shorter than 2 events or containing events outside the
// generation's vocabulary yield an error.
func (tk Tokenizer) EncodeStream(s *trace.Stream) (*tensor.Tensor, *Targets, error) {
	l := len(s.Events)
	if l < 2 {
		return nil, nil, fmt.Errorf("cptgpt: stream %s has length %d; streams of length 1 are excluded from training", s.UEID, l)
	}
	d := tk.Dim()
	t := l - 1
	in := tensor.New(t, d)
	tg := &Targets{
		Event:  make([]int, t),
		IA:     make([]float64, t),
		IAMask: make([]bool, t),
		Stop:   make([]int, t),
	}
	ia := s.Interarrivals()
	for i := 0; i < t; i++ {
		idx := events.VocabIndex(tk.Gen, s.Events[i].Type)
		if idx < 0 {
			return nil, nil, fmt.Errorf("cptgpt: stream %s event %d (%s) not in %s vocabulary", s.UEID, i, s.Events[i].Type, tk.Gen)
		}
		tk.writeToken(in.Data[i*d:(i+1)*d], idx, tk.ScaleIA(ia[i]), 0)
		if i == 0 {
			in.Data[i*d] = 0 // first token's interarrival is 0 by convention
		}
		nidx := events.VocabIndex(tk.Gen, s.Events[i+1].Type)
		if nidx < 0 {
			return nil, nil, fmt.Errorf("cptgpt: stream %s event %d (%s) not in %s vocabulary", s.UEID, i+1, s.Events[i+1].Type, tk.Gen)
		}
		tg.Event[i] = nidx
		tg.IA[i] = tk.ScaleIA(ia[i+1])
		tg.IAMask[i] = true
		if i+1 == l-1 {
			tg.Stop[i] = 1
		}
	}
	return in, tg, nil
}

// writeToken fills one token row: [ia | one-hot event | one-hot stop].
func (tk Tokenizer) writeToken(row []float64, eventIdx int, scaledIA float64, stop int) {
	for i := range row {
		row[i] = 0
	}
	row[0] = scaledIA
	row[1+eventIdx] = 1
	row[1+tk.V()+stop] = 1
}

// AppendToken grows a token matrix by one row (used by autoregressive
// sampling). data is the backing slice; it returns the new backing slice.
func (tk Tokenizer) AppendToken(data []float64, eventIdx int, scaledIA float64, stop int) []float64 {
	d := tk.Dim()
	row := make([]float64, d)
	tk.writeToken(row, eventIdx, scaledIA, stop)
	return append(data, row...)
}
