package cptgpt

import (
	"fmt"
	"math"
	"sync"

	"cptgpt/internal/events"
	"cptgpt/internal/trace"
)

// Draft proposers for speculative decoding. A draft model is a cheap
// stand-in for the transformer that guesses the next few tokens of a
// stream; the verify pass (BatchDecoder.StepK) then runs all guesses
// through the real model in one prefill-shaped pass and the
// acceptance–rejection sampler in speculate.go keeps a prefix. The draft
// influences only HOW OFTEN guesses are accepted — never the output
// distribution, which the sampler preserves exactly — so a draft needs no
// correctness properties beyond well-formed proposals: event probabilities
// that sum to 1 and a positive interarrival proposal spread.

// DefaultDraftTokens is the draft chain length (tokens proposed per verify
// pass) when GenOpts.DraftTokens is unset.
const DefaultDraftTokens = 4

// draftSigmaFloor keeps interarrival proposal spreads away from zero: a
// near-point proposal would almost always reject against the model's
// Gaussian, costing throughput (never correctness).
const draftSigmaFloor = 0.05

// draftUniformMix is the probability mass drafts blend toward the uniform
// event distribution. It bounds the worst-case acceptance loss when the
// draft's conditional is overconfident or has support gaps — q(x) = 0 on an
// event the model likes means every such proposal rejects.
const draftUniformMix = 0.1

// DraftModel proposes speculative draft chains. Implementations must be
// safe for concurrent use: every decode worker holds its own DraftStates
// but shares the model.
type DraftModel interface {
	// NewDraftState returns fresh per-stream proposal state. States are
	// slot-local and reused across the streams a slot decodes (Reset per
	// stream).
	NewDraftState() DraftState
}

// DraftState is one stream's draft-side decoding state. The speculative
// sampler drives it in lockstep with the emitted token sequence: Reset at
// the bootstrap event, Observe for every emitted token, and Propose for
// each drafted position (the sampler itself draws the proposal from the
// returned distributions, so states never need randomness).
type DraftState interface {
	// Reset reinitializes the state for a new stream whose bootstrap event
	// is eventIdx (a tokenizer vocabulary index).
	Reset(eventIdx int)
	// Observe advances the state past an emitted token: event index and
	// scaled interarrival (the tokenizer's [0, 1] space).
	Observe(eventIdx int, scaledIA float64)
	// Propose fills evProbs (length V, summing to 1) with the proposal
	// distribution over the next event type.
	Propose(evProbs []float64)
	// ProposeIA returns the mean and standard deviation of the Gaussian
	// (clamped to [0, 1] like the model's own head) proposing the next
	// scaled interarrival, conditioned on the event the sampler just drew
	// from Propose's distribution. Std must be positive.
	ProposeIA(eventIdx int) (iaMean, iaStd float64)
	// CopyFrom makes this state a copy of src (same concrete type): the
	// sampler forks a scratch state down the draft chain each round and
	// re-syncs it from the committed state afterwards.
	CopyFrom(src DraftState)
}

// NGramDraft is the fallback draft proposer fitted from training data: a
// smoothed bigram over event types plus per-transition clamped-Gaussian
// summaries of the scaled interarrival. It knows nothing about 3GPP
// semantics — which is exactly the paper's no-domain-knowledge stance —
// yet tracks a trained CPT-GPT closely enough for useful acceptance rates,
// because both learned the same training marginals.
//
// The interarrival proposal is fitted atom-first: the model's own IA law
// is clamp(N(mean, std), 0, 1), whose clamp atoms at 0 and 1 often carry
// most of the mass, so the fit chooses (mu, sigma) to reproduce the
// OBSERVED atom frequencies exactly (two quantile equations) and lets the
// interior follow — which is what maximizes the acceptance overlap
// ∫min(p, q) against a target of the same family.
type NGramDraft struct {
	v     int
	probs []float64 // V×V row-major: probs[prev*v+next]
	init  []float64 // event proposal used with no predecessor
	iaMu  []float64 // V×V per-(prev, next) clamped-Gaussian mean
	iaSd  []float64 // V×V per-(prev, next) std (floored)
}

// iaAcc accumulates clamped-sample statistics for one fit unit.
type iaAcc struct {
	n, n0, n1, sum, sum2 float64
}

func (a *iaAcc) add(x float64) {
	a.n++
	switch {
	case x <= 0:
		a.n0++
	case x >= 1:
		a.n1++
	}
	a.sum += x
	a.sum2 += x * x
}

func (a *iaAcc) merge(b iaAcc) {
	a.n += b.n
	a.n0 += b.n0
	a.n1 += b.n1
	a.sum += b.sum
	a.sum2 += b.sum2
}

// NewNGramDraft fits the bigram draft from a dataset tokenized by tok.
// Streams with events outside the vocabulary are skipped, not an error; an
// empty or fully skipped dataset yields uniform proposals.
func NewNGramDraft(d *trace.Dataset, tok Tokenizer) *NGramDraft {
	v := tok.V()
	g := &NGramDraft{
		v:     v,
		probs: make([]float64, v*v),
		init:  make([]float64, v),
		iaMu:  make([]float64, v*v),
		iaSd:  make([]float64, v*v),
	}
	counts := make([]float64, v*v)
	initCounts := make([]float64, v)
	pair := make([]iaAcc, v*v)
	for i := range d.Streams {
		s := &d.Streams[i]
		ia := s.Interarrivals()
		prev := -1
		for j := range s.Events {
			idx := events.VocabIndex(tok.Gen, s.Events[j].Type)
			if idx < 0 {
				prev = -1
				continue
			}
			if prev >= 0 {
				counts[prev*v+idx]++
				pair[prev*v+idx].add(tok.ScaleIA(ia[j]))
			} else {
				initCounts[idx]++
			}
			prev = idx
		}
	}
	var initTotal float64
	for _, c := range initCounts {
		initTotal += c
	}
	for next := 0; next < v; next++ {
		base := 1 / float64(v)
		if initTotal > 0 {
			base = initCounts[next] / initTotal
		}
		g.init[next] = (1-draftUniformMix)*base + draftUniformMix/float64(v)
	}
	var global iaAcc
	for i := range pair {
		global.merge(pair[i])
	}
	// minPairObs is the sample count below which a transition's IA fit
	// falls back to its predecessor's pooled statistics (then global).
	const minPairObs = 8
	for prev := 0; prev < v; prev++ {
		var total float64
		var pooled iaAcc
		for next := 0; next < v; next++ {
			total += counts[prev*v+next]
			pooled.merge(pair[prev*v+next])
		}
		for next := 0; next < v; next++ {
			base := 1 / float64(v)
			if total > 0 {
				base = counts[prev*v+next] / total
			}
			g.probs[prev*v+next] = (1-draftUniformMix)*base + draftUniformMix/float64(v)
			acc := pair[prev*v+next]
			if acc.n < minPairObs {
				acc = pooled
			}
			if acc.n < 1 {
				acc = global
			}
			g.iaMu[prev*v+next], g.iaSd[prev*v+next] = fitClampedGauss(acc)
		}
	}
	return g
}

// fitClampedGauss chooses (mu, sigma) for a clamp(N(mu, sigma), 0, 1)
// proposal from clamped observations. When both clamp atoms were observed,
// the two atom-frequency equations pin (mu, sigma) exactly; with one atom,
// sigma comes from the sample moments and mu matches the atom; with none,
// plain moment matching. Sigma is floored (a near-point proposal rejects
// almost surely against any Gaussian target).
func fitClampedGauss(a iaAcc) (mu, sd float64) {
	if a.n <= 0 {
		return 0.5, 0.5
	}
	f0, f1 := a.n0/a.n, a.n1/a.n
	mean := a.sum / a.n
	va := a.sum2/a.n - mean*mean
	sdM := math.Sqrt(math.Max(va, 0))
	switch {
	case f0 >= 1: // every observation clamped at 0
		return -0.2, 0.1
	case f1 >= 1:
		return 1.2, 0.1
	case f0 > 0 && f1 > 0:
		z0, z1 := invPhi(f0), invPhi(1-f1)
		if z1-z0 > 1e-3 {
			sd = math.Max(1/(z1-z0), draftSigmaFloor)
			return clampDraftMu(-z0 * sd), sd
		}
	case f0 > 0:
		sd = math.Max(sdM, draftSigmaFloor)
		return clampDraftMu(-invPhi(f0) * sd), sd
	case f1 > 0:
		sd = math.Max(sdM, draftSigmaFloor)
		return clampDraftMu(1 - invPhi(1-f1)*sd), sd
	}
	return clampDraftMu(mean), math.Max(sdM, draftSigmaFloor)
}

// clampDraftMu keeps fitted proposal means in a sane band (means outside
// [0, 1] are legitimate — that is how heavy clamp atoms arise — but runaway
// quantile solutions are not).
func clampDraftMu(mu float64) float64 {
	return math.Min(math.Max(mu, -3), 4)
}

// invPhi is the standard normal quantile via bisection on stdPhi —
// fit-time only, so 80 iterations of exactness beat a rational
// approximation's review burden.
func invPhi(p float64) float64 {
	lo, hi := -8.0, 8.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if stdPhi(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// NewDraftState returns a fresh bigram state.
func (g *NGramDraft) NewDraftState() DraftState { return &ngramState{g: g, prev: -1} }

// ngramState tracks only the last emitted event.
type ngramState struct {
	g    *NGramDraft
	prev int
}

func (s *ngramState) Reset(eventIdx int)              { s.prev = eventIdx }
func (s *ngramState) Observe(eventIdx int, _ float64) { s.prev = eventIdx }

func (s *ngramState) Propose(evProbs []float64) {
	g := s.g
	if s.prev < 0 || s.prev >= g.v {
		copy(evProbs[:g.v], g.init)
		return
	}
	copy(evProbs[:g.v], g.probs[s.prev*g.v:(s.prev+1)*g.v])
}

func (s *ngramState) ProposeIA(eventIdx int) (float64, float64) {
	g := s.g
	if s.prev < 0 || s.prev >= g.v || eventIdx < 0 || eventIdx >= g.v {
		return 0.5, 0.5
	}
	return g.iaMu[s.prev*g.v+eventIdx], g.iaSd[s.prev*g.v+eventIdx]
}

func (s *ngramState) CopyFrom(src DraftState) {
	o, ok := src.(*ngramState)
	if !ok {
		panic(fmt.Sprintf("cptgpt: ngramState.CopyFrom(%T)", src))
	}
	*s = *o
}

// selfDraftStreams is the calibration population SelfDraft decodes (plainly)
// to fit its n-gram; selfDraftSeed fixes its randomness so the draft — and
// therefore speculative output — is deterministic per model.
const (
	selfDraftStreams = 160
	selfDraftSeed    = 0x5eed0d12af7
)

// draftCache lazily holds the model's self-fitted draft (see SelfDraft).
type draftCache struct {
	mu sync.Mutex
	d  DraftModel
}

// SelfDraft returns the model's self-distilled draft proposer: an n-gram
// fitted on a small population the model itself generates (plain decoding,
// fixed internal seed). It needs no training data or baseline model at
// hand, which is what lets a cptgpt model loaded from disk — a scenario
// source, say — decode speculatively out of the box. The draft is cached on
// the model and shared by all decoders; Train/FineTune invalidate it along
// with the float32 inference snapshot.
func (m *Model) SelfDraft() DraftModel {
	m.draft.mu.Lock()
	defer m.draft.mu.Unlock()
	if m.draft.d != nil {
		return m.draft.d
	}
	ds, err := m.Generate(GenOpts{
		NumStreams: selfDraftStreams,
		Device:     0,
		Seed:       selfDraftSeed,
		Precision:  F32, // calibration tolerates f32; ~2× cheaper
	})
	if err != nil {
		// Generate can only fail on an invalid initial distribution, which
		// would have failed the caller's own decode too; fall back to an
		// uninformative draft rather than plumbing an error.
		ds = &trace.Dataset{Generation: m.Cfg.Generation}
	}
	m.draft.d = NewNGramDraft(ds, m.Tok)
	return m.draft.d
}

// invalidateDraft drops the cached self-draft (weights changed).
func (m *Model) invalidateDraft() {
	m.draft.mu.Lock()
	m.draft.d = nil
	m.draft.mu.Unlock()
}
