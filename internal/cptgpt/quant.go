package cptgpt

import (
	"fmt"
	"strings"
	"sync"

	"cptgpt/internal/nn"
)

// Precision selects the arithmetic of the decode fast path.
//
// Training is always float64 — its determinism contract (bit-identical
// weights at every microbatch × parallelism) depends on exact accumulation —
// but generation is read-only, and at million-UE populations decode is
// memory-bandwidth bound: every step streams the full weight set plus the
// stream's KV cache through the core. F32 decodes through a frozen float32
// snapshot of the weights (InferModel) with fused row kernels and a
// contiguous float32 KV arena, roughly halving that traffic.
type Precision uint8

const (
	// F64 is the bit-exact float64 reference path: output is bit-identical
	// to the original serial decoder at every Parallelism × BatchSize.
	F64 Precision = iota
	// F32 is the fast float32 inference path. It has its own determinism
	// contract — the same Seed × Parallelism × BatchSize always reproduces
	// the same output, and output is identical across Parallelism and
	// BatchSize settings — but its streams differ (within distributional
	// tolerance, see the fidelity tests) from the F64 path's.
	F32
)

// String renders the precision as its flag spelling.
func (p Precision) String() string {
	if p == F32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision parses a precision flag value. The empty string means F64,
// the bit-exact default.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(s) {
	case "", "f64", "float64":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	}
	return F64, fmt.Errorf("cptgpt: unknown precision %q (want f64 or f32)", s)
}

// InferModel is a frozen float32 inference snapshot of a Model: every weight
// matrix converted once into a contiguous float32 row-major panel (linears
// transposed so the decode matvec reads each output's weights with unit
// stride). The snapshot is immutable and shares no storage with the live
// float64 parameters, so any number of BatchDecoders — across goroutines —
// can read it concurrently.
type InferModel struct {
	inProj nn.LinearF32
	posEmb []float32 // MaxLen × DModel
	blocks []inferBlock
	final  nn.LayerNormF32

	eventHd, iaHd, stopHd nn.MLPF32
}

// inferBlock is one decoder block's frozen weights.
type inferBlock struct {
	ln1, ln2       nn.LayerNormF32
	wq, wk, wv, wo nn.LinearF32
	ffIn, ffOut    nn.LinearF32
	heads          int
}

// newInferModel freezes m's current weights.
func newInferModel(m *Model) *InferModel {
	inf := &InferModel{
		inProj:  m.InProj.ExportF32(),
		posEmb:  make([]float32, len(m.PosEmb.Data)),
		final:   m.Final.ExportF32(),
		eventHd: m.EventHd.ExportF32(),
		iaHd:    m.IAHd.ExportF32(),
		stopHd:  m.StopHd.ExportF32(),
	}
	for i, v := range m.PosEmb.Data {
		inf.posEmb[i] = float32(v)
	}
	inf.blocks = make([]inferBlock, len(m.BlocksNN))
	for i, b := range m.BlocksNN {
		inf.blocks[i] = inferBlock{
			ln1:   b.LN1.ExportF32(),
			ln2:   b.LN2.ExportF32(),
			wq:    b.Attn.Wq.ExportF32(),
			wk:    b.Attn.Wk.ExportF32(),
			wv:    b.Attn.Wv.ExportF32(),
			wo:    b.Attn.Wo.ExportF32(),
			ffIn:  b.FF.In.ExportF32(),
			ffOut: b.FF.Out.ExportF32(),
			heads: b.Attn.Heads,
		}
	}
	return inf
}

// inferCache is the lazily built, invalidatable InferModel cache hanging off
// a Model. A plain mutex (not sync.Once) so Train can drop a stale snapshot
// after updating weights.
type inferCache struct {
	mu  sync.Mutex
	inf *InferModel
}

// Infer returns the model's float32 inference snapshot, freezing the current
// weights on first use. The snapshot is cached — every F32 BatchDecoder of
// this model shares it — and safe for concurrent use. Train and FineTune
// invalidate the cache when they update weights; mutating parameters by hand
// requires calling InvalidateInfer explicitly.
func (m *Model) Infer() *InferModel {
	m.infer.mu.Lock()
	defer m.infer.mu.Unlock()
	if m.infer.inf == nil {
		m.infer.inf = newInferModel(m)
	}
	return m.infer.inf
}

// InvalidateInfer drops the derived inference state — the cached float32
// snapshot and the self-fitted speculative draft — so the next use
// re-derives both from the (presumably updated) weights.
func (m *Model) InvalidateInfer() {
	m.infer.mu.Lock()
	m.infer.inf = nil
	m.infer.mu.Unlock()
	m.invalidateDraft()
}
