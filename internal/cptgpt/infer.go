package cptgpt

import (
	"math"

	"cptgpt/internal/nn"
)

// decoder is a tape-free incremental forward pass over the model with
// per-block key/value caching. Autoregressive sampling recomputes only one
// token per step instead of the whole prefix, which is what makes the
// scalability experiment (Figure 6) tractable on a CPU. Its output is
// verified against Model.Forward in the package tests.
type decoder struct {
	m   *Model
	pos int
	// kc/vc hold, per block, the cached keys/values: pos rows × DModel.
	kc [][]float64
	vc [][]float64
	// scratch buffers reused across steps
	x, q, k, v, att, ff []float64
}

// newDecoder creates an incremental decoder for m.
func newDecoder(m *Model) *decoder {
	d := &decoder{m: m}
	d.kc = make([][]float64, len(m.BlocksNN))
	d.vc = make([][]float64, len(m.BlocksNN))
	dm := m.Cfg.DModel
	d.x = make([]float64, dm)
	d.q = make([]float64, dm)
	d.k = make([]float64, dm)
	d.v = make([]float64, dm)
	d.att = make([]float64, dm)
	d.ff = make([]float64, m.Cfg.MLPHidden)
	return d
}

// headsOut carries the per-step raw head outputs.
type headsOut struct {
	eventLogits []float64
	iaMean      float64
	iaLogStd    float64 // NaN when the distribution head is disabled
	stopLogits  [2]float64
}

// step consumes one token (d_token values) and returns the head outputs at
// the new position. It panics if the position exceeds MaxLen.
func (d *decoder) step(token []float64) headsOut {
	m := d.m
	dm := m.Cfg.DModel
	if d.pos >= m.Cfg.MaxLen {
		panic("cptgpt: decoder stepped past MaxLen")
	}

	// Token projection + positional embedding.
	linearRow(d.x, token, m.InProj)
	pe := m.PosEmb.Data[d.pos*dm : (d.pos+1)*dm]
	for i := range d.x {
		d.x[i] += pe[i]
	}

	tmp := make([]float64, dm)
	for bi, b := range m.BlocksNN {
		// Attention sub-layer (pre-norm, residual).
		layerNormRow(tmp, d.x, b.LN1)
		linearRow(d.q, tmp, b.Attn.Wq)
		linearRow(d.k, tmp, b.Attn.Wk)
		linearRow(d.v, tmp, b.Attn.Wv)
		d.kc[bi] = append(d.kc[bi], d.k...)
		d.vc[bi] = append(d.vc[bi], d.v...)
		nPos := d.pos + 1
		heads := b.Attn.Heads
		dh := dm / heads
		scale := 1 / math.Sqrt(float64(dh))
		for h := 0; h < heads; h++ {
			lo := h * dh
			// scores over all cached positions for this head
			scores := make([]float64, nPos)
			maxv := math.Inf(-1)
			for t := 0; t < nPos; t++ {
				kRow := d.kc[bi][t*dm+lo : t*dm+lo+dh]
				var s float64
				for j := 0; j < dh; j++ {
					s += d.q[lo+j] * kRow[j]
				}
				s *= scale
				scores[t] = s
				if s > maxv {
					maxv = s
				}
			}
			var sum float64
			for t := range scores {
				scores[t] = math.Exp(scores[t] - maxv)
				sum += scores[t]
			}
			inv := 1 / sum
			for j := 0; j < dh; j++ {
				d.att[lo+j] = 0
			}
			for t := 0; t < nPos; t++ {
				w := scores[t] * inv
				vRow := d.vc[bi][t*dm+lo : t*dm+lo+dh]
				for j := 0; j < dh; j++ {
					d.att[lo+j] += w * vRow[j]
				}
			}
		}
		linearRow(tmp, d.att, b.Attn.Wo)
		for i := range d.x {
			d.x[i] += tmp[i]
		}

		// Feed-forward sub-layer (pre-norm, residual).
		layerNormRow(tmp, d.x, b.LN2)
		linearRowInto(d.ff, tmp, b.FF.In)
		for i := range d.ff {
			d.ff[i] = gelu(d.ff[i])
		}
		linearRowInto(tmp, d.ff, b.FF.Out)
		for i := range d.x {
			d.x[i] += tmp[i]
		}
	}

	layerNormRow(tmp, d.x, m.Final)

	var out headsOut
	out.eventLogits = mlpRow(tmp, m.EventHd)
	ia := mlpRow(tmp, m.IAHd)
	out.iaMean = ia[0]
	if m.Cfg.DistHead {
		out.iaLogStd = math.Min(math.Max(ia[1], -6), 2)
	} else {
		out.iaLogStd = math.NaN()
	}
	stop := mlpRow(tmp, m.StopHd)
	out.stopLogits = [2]float64{stop[0], stop[1]}

	d.pos++
	return out
}

// linearRow computes dst = row·W + b for a single row; dst must have
// length = l.W.Cols and may not alias row.
func linearRow(dst, row []float64, l *nn.Linear) {
	linearRowInto(dst, row, l)
}

func linearRowInto(dst, row []float64, l *nn.Linear) {
	cols := l.W.Cols
	copy(dst, l.B.Data)
	for k, x := range row {
		if x == 0 {
			continue
		}
		wRow := l.W.Data[k*cols : (k+1)*cols]
		for j, w := range wRow {
			dst[j] += x * w
		}
	}
}

// layerNormRow computes dst = LN(row) with l's gain and bias.
func layerNormRow(dst, row []float64, l *nn.LayerNorm) {
	n := float64(len(row))
	var mu float64
	for _, v := range row {
		mu += v
	}
	mu /= n
	var va float64
	for _, v := range row {
		d := v - mu
		va += d * d
	}
	va /= n
	istd := 1 / math.Sqrt(va+l.Eps)
	for i, v := range row {
		dst[i] = (v-mu)*istd*l.Gain.Data[i] + l.Bias.Data[i]
	}
}

// mlpRow applies an MLP (ReLU between layers) to a single row.
func mlpRow(row []float64, m *nn.MLP) []float64 {
	cur := row
	for i, l := range m.Layers {
		next := make([]float64, l.W.Cols)
		linearRowInto(next, cur, l)
		if i+1 < len(m.Layers) {
			for j := range next {
				if next[j] < 0 {
					next[j] = 0
				}
			}
		}
		cur = next
	}
	return cur
}

func gelu(x float64) float64 {
	const c = 0.7978845608028654
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}
