package cptgpt

import (
	"fmt"
	"math"

	"cptgpt/internal/nn"
)

// decoder is a tape-free incremental forward pass over the model with
// per-block key/value caching. Autoregressive sampling recomputes only one
// token per step instead of the whole prefix, which is what makes the
// scalability experiment (Figure 6) tractable on a CPU. Its output is
// verified against Model.Forward in the package tests.
//
// The decoder owns all of its scratch, so a step performs no allocations in
// steady state; BatchDecoder in batch.go runs many of these row kernels in
// lockstep over a shared cache layout.
type decoder struct {
	m   *Model
	pos int
	// kc/vc hold, per block, the cached keys/values: pos rows × DModel,
	// pre-sized to MaxLen rows so appends never reallocate.
	kc [][]float64
	vc [][]float64
	// scratch buffers reused across steps
	x, q, k, v, att, tmp []float64
	ff                   []float64
	scores               []float64 // attention weights over cached positions
	hid, hid2            []float64 // MLP-head hidden activations (ping-pong)
	evOut                []float64 // event-head output (V logits)
	iaOut                []float64 // interarrival-head output (1 or 2)
	stopOut              []float64 // stop-head output (2 logits)
}

// newDecoder creates an incremental decoder for m.
func newDecoder(m *Model) *decoder {
	d := &decoder{m: m}
	dm := m.Cfg.DModel
	d.kc = make([][]float64, len(m.BlocksNN))
	d.vc = make([][]float64, len(m.BlocksNN))
	for i := range d.kc {
		d.kc[i] = make([]float64, 0, m.Cfg.MaxLen*dm)
		d.vc[i] = make([]float64, 0, m.Cfg.MaxLen*dm)
	}
	d.x = make([]float64, dm)
	d.q = make([]float64, dm)
	d.k = make([]float64, dm)
	d.v = make([]float64, dm)
	d.att = make([]float64, dm)
	d.tmp = make([]float64, dm)
	d.ff = make([]float64, m.Cfg.MLPHidden)
	d.scores = make([]float64, m.Cfg.MaxLen)
	d.hid = make([]float64, headHiddenMax(m))
	d.hid2 = make([]float64, headHiddenMax(m))
	d.evOut = make([]float64, m.Tok.V())
	d.iaOut = make([]float64, m.IAHd.Layers[len(m.IAHd.Layers)-1].W.Cols)
	d.stopOut = make([]float64, 2)
	return d
}

// headHiddenMax returns the widest intermediate layer across the three
// output heads, sizing the shared hidden scratch.
func headHiddenMax(m *Model) int {
	w := 1
	for _, h := range []*nn.MLP{m.EventHd, m.IAHd, m.StopHd} {
		for _, l := range h.Layers {
			if l.W.Cols > w {
				w = l.W.Cols
			}
		}
	}
	return w
}

// StepOut carries the raw head outputs of one decode step for one stream.
// EventLogits aliases decoder-owned scratch and is valid only until the
// next step of the same decoder (or decoder slot).
type StepOut struct {
	EventLogits []float64
	IAMean      float64
	IALogStd    float64 // NaN when the distribution head is disabled
	StopLogits  [2]float64
}

// step consumes one token (d_token values) and returns the head outputs at
// the new position. It panics if the position exceeds MaxLen.
func (d *decoder) step(token []float64) StepOut {
	m := d.m
	dm := m.Cfg.DModel
	if d.pos >= m.Cfg.MaxLen {
		panic("cptgpt: decoder stepped past MaxLen")
	}

	// Token projection + positional embedding.
	linearRowInto(d.x, token, m.InProj)
	pe := m.PosEmb.Data[d.pos*dm : (d.pos+1)*dm]
	for i := range d.x {
		d.x[i] += pe[i]
	}

	tmp := d.tmp
	for bi, b := range m.BlocksNN {
		// Attention sub-layer (pre-norm, residual).
		layerNormRow(tmp, d.x, b.LN1)
		linearRowInto(d.q, tmp, b.Attn.Wq)
		linearRowInto(d.k, tmp, b.Attn.Wk)
		linearRowInto(d.v, tmp, b.Attn.Wv)
		d.kc[bi] = append(d.kc[bi], d.k...)
		d.vc[bi] = append(d.vc[bi], d.v...)
		attendRow(d.att, d.q, d.kc[bi], d.vc[bi], d.pos+1, b.Attn.Heads, dm, d.scores)
		linearRowInto(tmp, d.att, b.Attn.Wo)
		for i := range d.x {
			d.x[i] += tmp[i]
		}

		// Feed-forward sub-layer (pre-norm, residual).
		layerNormRow(tmp, d.x, b.LN2)
		linearRowInto(d.ff, tmp, b.FF.In)
		for i := range d.ff {
			d.ff[i] = gelu(d.ff[i])
		}
		linearRowInto(tmp, d.ff, b.FF.Out)
		for i := range d.x {
			d.x[i] += tmp[i]
		}
	}

	layerNormRow(tmp, d.x, m.Final)

	var out StepOut
	mlpRowInto(d.evOut, d.hid, d.hid2, tmp, m.EventHd)
	out.EventLogits = d.evOut
	mlpRowInto(d.iaOut, d.hid, d.hid2, tmp, m.IAHd)
	out.IAMean = d.iaOut[0]
	if m.Cfg.DistHead {
		out.IALogStd = math.Min(math.Max(d.iaOut[1], -6), 2)
	} else {
		out.IALogStd = math.NaN()
	}
	mlpRowInto(d.stopOut, d.hid, d.hid2, tmp, m.StopHd)
	out.StopLogits = [2]float64{d.stopOut[0], d.stopOut[1]}

	d.pos++
	return out
}

// attendRow computes one stream's multi-head attention output for the newest
// query row q against nPos cached key/value rows, writing into att (len dm).
// scores must have length ≥ nPos: the serial decoder and each BatchDecoder
// slot own a MaxLen-sized scores region, and every caller bounds nPos by the
// slot's own position (≤ MaxLen), so the check only fires if a slot is
// stepped past MaxLen without ResetSlot — the invariant continuous batching
// relies on when it seats a new stream in a retired slot. This is the shared
// row kernel of the serial decoder and the F64 BatchDecoder path, so both
// are bit-identical.
func attendRow(att, q, kc, vc []float64, nPos, heads, dm int, scores []float64) {
	if len(scores) < nPos {
		panic(fmt.Sprintf("cptgpt: attendRow scores buffer has %d rows for %d cached positions (slot stepped past MaxLen without reset?)", len(scores), nPos))
	}
	dh := dm / heads
	scale := 1 / math.Sqrt(float64(dh))
	scores = scores[:nPos]
	for h := 0; h < heads; h++ {
		lo := h * dh
		maxv := math.Inf(-1)
		for t := 0; t < nPos; t++ {
			kRow := kc[t*dm+lo : t*dm+lo+dh]
			var s float64
			for j := 0; j < dh; j++ {
				s += q[lo+j] * kRow[j]
			}
			s *= scale
			scores[t] = s
			if s > maxv {
				maxv = s
			}
		}
		var sum float64
		for t := range scores {
			scores[t] = math.Exp(scores[t] - maxv)
			sum += scores[t]
		}
		inv := 1 / sum
		for j := 0; j < dh; j++ {
			att[lo+j] = 0
		}
		for t := 0; t < nPos; t++ {
			w := scores[t] * inv
			vRow := vc[t*dm+lo : t*dm+lo+dh]
			for j := 0; j < dh; j++ {
				att[lo+j] += w * vRow[j]
			}
		}
	}
}

// linearRowInto computes dst = row·W + b for a single row; dst must have
// length = l.W.Cols and may not alias row.
func linearRowInto(dst, row []float64, l *nn.Linear) {
	cols := l.W.Cols
	copy(dst, l.B.Data)
	for k, x := range row {
		if x == 0 {
			continue
		}
		wRow := l.W.Data[k*cols : (k+1)*cols]
		for j, w := range wRow {
			dst[j] += x * w
		}
	}
}

// layerNormRow computes dst = LN(row) with l's gain and bias.
func layerNormRow(dst, row []float64, l *nn.LayerNorm) {
	n := float64(len(row))
	var mu float64
	for _, v := range row {
		mu += v
	}
	mu /= n
	var va float64
	for _, v := range row {
		d := v - mu
		va += d * d
	}
	va /= n
	istd := 1 / math.Sqrt(va+l.Eps)
	for i, v := range row {
		dst[i] = (v-mu)*istd*l.Gain.Data[i] + l.Bias.Data[i]
	}
}

// mlpRowInto applies an MLP (ReLU between layers) to a single row, writing
// the final layer into dst (len = last layer width). hid and hid2 are
// ping-pong scratch, each wide enough for every intermediate layer (they
// keep consecutive layers from aliasing); row is never modified.
func mlpRowInto(dst, hid, hid2, row []float64, m *nn.MLP) {
	cur := row
	last := len(m.Layers) - 1
	for i, l := range m.Layers {
		var next []float64
		switch {
		case i == last:
			next = dst[:l.W.Cols]
		case i%2 == 0:
			next = hid[:l.W.Cols]
		default:
			next = hid2[:l.W.Cols]
		}
		linearRowInto(next, cur, l)
		if i != last {
			for j := range next {
				if next[j] < 0 {
					next[j] = 0
				}
			}
		}
		cur = next
	}
}

func gelu(x float64) float64 {
	const c = 0.7978845608028654
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}
