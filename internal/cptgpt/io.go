package cptgpt

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"cptgpt/internal/nn"
)

// modelFile is the gob wire form of a trained model: configuration,
// tokenizer scaling, the released initial-event-type distribution and the
// flat parameter blobs (§4.5: "the trained model weights, along with the
// initial-event-type distribution, will be packaged together and released").
type modelFile struct {
	Magic       string
	Cfg         Config
	Tok         Tokenizer
	InitialDist []float64
	Params      []paramBlob
}

type paramBlob struct {
	Rows, Cols int
	Data       []float64
}

const modelMagic = "cptgpt-model/1"

// Save serializes the model to w.
func (m *Model) Save(w io.Writer) error {
	mf := modelFile{
		Magic:       modelMagic,
		Cfg:         m.Cfg,
		Tok:         m.Tok,
		InitialDist: m.InitialDist,
	}
	for _, p := range m.Params() {
		mf.Params = append(mf.Params, paramBlob{Rows: p.Rows, Cols: p.Cols, Data: p.Data})
	}
	if err := gob.NewEncoder(w).Encode(&mf); err != nil {
		return fmt.Errorf("cptgpt: encoding model: %w", err)
	}
	return nil
}

// Load reconstructs a model from r.
func Load(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("cptgpt: decoding model: %w", err)
	}
	if mf.Magic != modelMagic {
		return nil, fmt.Errorf("cptgpt: bad model magic %q", mf.Magic)
	}
	m, err := NewModel(mf.Cfg, mf.Tok)
	if err != nil {
		return nil, fmt.Errorf("cptgpt: rebuilding model: %w", err)
	}
	params := m.Params()
	if len(params) != len(mf.Params) {
		return nil, fmt.Errorf("cptgpt: model file has %d parameters, architecture has %d", len(mf.Params), len(params))
	}
	for i, b := range mf.Params {
		p := params[i]
		if b.Rows != p.Rows || b.Cols != p.Cols {
			return nil, fmt.Errorf("cptgpt: parameter %d shape mismatch: file %d×%d, model %d×%d", i, b.Rows, b.Cols, p.Rows, p.Cols)
		}
		copy(p.Data, b.Data)
	}
	m.InitialDist = mf.InitialDist
	return m, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cptgpt: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return m.Save(f)
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cptgpt: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}

// WeightBytes reports the serialized parameter size in bytes (the paper
// quotes 2.9 MB for its 725K-parameter model at float32; ours is float64).
func (m *Model) WeightBytes() int { return 8 * nn.NumParams(m.Params()) }
