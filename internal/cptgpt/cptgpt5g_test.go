package cptgpt

import (
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/metrics"
	"cptgpt/internal/synthetic"
)

// Test5GEndToEnd exercises the generality claim (C1): the same model,
// tokenizer and training loop work on the 5G vocabulary and state machine
// with zero code changes — only the Generation field differs.
func Test5GEndToEnd(t *testing.T) {
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen5G,
		Seed:       21,
		UEs:        map[events.DeviceType]int{events.Phone: 120},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallConfig()
	cfg.Generation = events.Gen5G
	tok := FitTokenizer(d)
	if tok.Gen != events.Gen5G || tok.Dim() != 8 {
		t.Fatalf("5G tokenizer: gen %v dim %d", tok.Gen, tok.Dim())
	}
	m, err := NewModel(cfg, tok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, d, TrainOpts{}); err != nil {
		t.Fatal(err)
	}
	gen, err := m.Generate(GenOpts{NumStreams: 120, Device: events.Phone, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}

	// All generated events must come from the 5G vocabulary.
	for i := range gen.Streams {
		for _, e := range gen.Streams[i].Events {
			if events.VocabIndex(events.Gen5G, e.Type) < 0 {
				t.Fatalf("generated non-5G event %s", e.Type)
			}
		}
	}
	// And the violation rate must stay low (the 5G machine is simpler than
	// 4G: no TAU ambiguity).
	agg := metrics.Replay(gen)
	if r := agg.EventViolationRate(); r > 0.05 {
		t.Fatalf("5G event violation rate %.3f", r)
	}
}

// TestGenerationMismatchRejected: a 5G config cannot pair with a 4G
// tokenizer, and 4G data cannot train a 5G model.
func TestGenerationMismatchRejected(t *testing.T) {
	d4 := testTrainingData(t, 20)
	tok4 := FitTokenizer(d4)
	cfg := smallConfig()
	cfg.Generation = events.Gen5G
	if _, err := NewModel(cfg, tok4); err == nil {
		t.Fatal("5G config with 4G tokenizer must error")
	}

	cfg4 := smallConfig()
	m, err := NewModel(cfg4, tok4)
	if err != nil {
		t.Fatal(err)
	}
	d5, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen5G,
		Seed:       23,
		UEs:        map[events.DeviceType]int{events.Phone: 10},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, d5, TrainOpts{}); err == nil {
		t.Fatal("5G data into 4G model must error")
	}
}

// TestStartWindowStaggersStreams: the StartWindow option spreads stream
// starts without touching interarrivals.
func TestStartWindowStaggersStreams(t *testing.T) {
	d := testTrainingData(t, 30)
	tok := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tok)
	if err != nil {
		t.Fatal(err)
	}
	m.InitialDist = d.InitialEventDist()

	plain, err := m.Generate(GenOpts{NumStreams: 40, Device: events.Phone, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := m.Generate(GenOpts{NumStreams: 40, Device: events.Phone, Seed: 9, StartWindow: 3600})
	if err != nil {
		t.Fatal(err)
	}
	var plainVar, spreadVar bool
	for i := range plain.Streams {
		if plain.Streams[i].Events[0].Time != 0 {
			plainVar = true
		}
		if spread.Streams[i].Events[0].Time != 0 {
			spreadVar = true
		}
	}
	if plainVar {
		t.Fatal("without StartWindow all streams must start at 0")
	}
	if !spreadVar {
		t.Fatal("with StartWindow stream starts must vary")
	}
}

// TestFineTuneDefaults: FineTune derives reduced budgets from the config.
func TestFineTuneDefaults(t *testing.T) {
	d := testTrainingData(t, 40)
	tok := FitTokenizer(d)
	cfg := smallConfig()
	cfg.Epochs = 9
	m, err := NewModel(cfg, tok)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FineTune(m, d, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs > cfg.Epochs/3+1 {
		t.Fatalf("fine-tune ran %d epochs; must be a fraction of %d", res.Epochs, cfg.Epochs)
	}
}

// TestProbeCheckpointRestored: the checkpoint-ranking probe restores the
// best-scoring weights.
func TestProbeCheckpointRestored(t *testing.T) {
	d := testTrainingData(t, 40)
	tok := FitTokenizer(d)
	cfg := smallConfig()
	cfg.Epochs = 3
	m, err := NewModel(cfg, tok)
	if err != nil {
		t.Fatal(err)
	}
	var snapshots [][]float64
	calls := 0
	res, err := Train(m, d, TrainOpts{Probe: func() float64 {
		calls++
		snapshots = append(snapshots, append([]float64(nil), m.Params()[0].Data...))
		return float64(calls) // epoch 1 is "best"
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEpoch != 1 {
		t.Fatalf("best epoch %d, want 1", res.BestEpoch)
	}
	got := m.Params()[0].Data
	want := snapshots[0]
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("best checkpoint was not restored")
		}
	}
}
