package cptgpt

import (
	"fmt"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// serialReference generates opts.NumStreams streams through the serial
// one-stream-at-a-time decoder — the reference the batched engine must
// reproduce bit-for-bit.
func serialReference(t *testing.T, m *Model, opts GenOpts) []trace.Stream {
	t.Helper()
	if opts.Temperature <= 0 {
		opts.Temperature = 1 // Generate's own normalization
	}
	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]trace.Stream, opts.NumStreams)
	for i := range streams {
		rng := stats.NewRand(streamSeed(opts.Seed, i))
		streams[i] = m.sampleStream(i, opts, init, rng)
	}
	return streams
}

// sameStreams requires exact equality — identical event types and
// bit-identical timestamps — between two generated stream sets.
func sameStreams(t *testing.T, label string, want, got []trace.Stream) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d streams, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.UEID != g.UEID || w.Device != g.Device {
			t.Fatalf("%s: stream %d identity %s/%s, want %s/%s", label, i, g.UEID, g.Device, w.UEID, w.Device)
		}
		if len(w.Events) != len(g.Events) {
			t.Fatalf("%s: stream %d has %d events, want %d", label, i, len(g.Events), len(w.Events))
		}
		for j := range w.Events {
			if w.Events[j].Type != g.Events[j].Type || w.Events[j].Time != g.Events[j].Time {
				t.Fatalf("%s: stream %d event %d = (%v, %s), want (%v, %s)",
					label, i, j, g.Events[j].Time, g.Events[j].Type, w.Events[j].Time, w.Events[j].Type)
			}
		}
	}
}

// TestBatchedGenerateMatchesSerial is the determinism guarantee of the
// batched engine: for a fixed seed, Generate emits bit-identical streams at
// every Parallelism × BatchSize combination, all equal to the serial
// reference path.
func TestBatchedGenerateMatchesSerial(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}

	base := GenOpts{NumStreams: 23, Device: events.Phone, Seed: 99, StartWindow: 30}
	want := serialReference(t, m, base)

	for _, c := range []struct{ par, batch int }{
		{1, 1}, {1, 23}, {8, 1}, {8, 4}, {3, 7}, {8, 64},
	} {
		opts := base
		opts.Parallelism = c.par
		opts.BatchSize = c.batch
		got, err := m.Generate(opts)
		if err != nil {
			t.Fatal(err)
		}
		sameStreams(t, fmt.Sprintf("parallelism=%d batch=%d", c.par, c.batch), want, got.Streams)
	}
}

// TestBatchedGenerateNoDistHead covers the Table 8 ablation path (scalar
// interarrival head) through the batched engine.
func TestBatchedGenerateNoDistHead(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	cfg := smallConfig()
	cfg.DistHead = false
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	base := GenOpts{NumStreams: 9, Device: events.Tablet, Seed: 5}
	want := serialReference(t, m, base)
	got, err := m.Generate(GenOpts{NumStreams: 9, Device: events.Tablet, Seed: 5, Parallelism: 4, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "no-dist-head", want, got.Streams)
}

// TestBatchDecoderMatchesDecoder steps the same token sequences through the
// serial decoder and through interleaved BatchDecoder slots, requiring
// bit-identical head outputs at every position.
func TestBatchDecoderMatchesDecoder(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	dim := tk.Dim()

	// Collect a few encodable streams' token matrices.
	var encs []*tensor.Tensor
	for i := range d.Streams {
		if len(d.Streams[i].Events) >= 4 && len(d.Streams[i].Events) <= m.Cfg.MaxLen {
			enc, _, err := tk.EncodeStream(&d.Streams[i])
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, enc)
			if len(encs) == 3 {
				break
			}
		}
	}
	if len(encs) < 2 {
		t.Skip("not enough suitable streams in tiny dataset")
	}

	bd := m.NewBatchDecoder(len(encs))
	serial := make([]*decoder, len(encs))
	for i := range serial {
		serial[i] = newDecoder(m)
	}

	toks := make([]float64, len(encs)*dim)
	for step := 0; ; step++ {
		var slots []int
		for i, enc := range encs {
			if step < enc.Rows {
				slots = append(slots, i)
				copy(toks[i*dim:(i+1)*dim], enc.Data[step*dim:(step+1)*dim])
			}
		}
		if len(slots) == 0 {
			break
		}
		outs := bd.Step(slots, toks)
		for j, slot := range slots {
			want := serial[slot].step(encs[slot].Data[step*dim : (step+1)*dim])
			got := outs[j]
			for k := range want.EventLogits {
				if want.EventLogits[k] != got.EventLogits[k] {
					t.Fatalf("slot %d step %d event logit %d: %v != %v", slot, step, k, got.EventLogits[k], want.EventLogits[k])
				}
			}
			if want.IAMean != got.IAMean || want.IALogStd != got.IALogStd || want.StopLogits != got.StopLogits {
				t.Fatalf("slot %d step %d heads differ: got (%v %v %v), want (%v %v %v)",
					slot, step, got.IAMean, got.IALogStd, got.StopLogits, want.IAMean, want.IALogStd, want.StopLogits)
			}
		}
	}
}

// TestGenerateRangeMatchesGenerate pins the chunked-emission contract: any
// partition of the stream index space concatenates to exactly the streams
// Generate produces, at any BatchSize.
func TestGenerateRangeMatchesGenerate(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	opts := GenOpts{NumStreams: 19, Device: events.Tablet, Seed: 5, StartWindow: 10}
	full, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 4, 19} {
		for _, batch := range []int{1, 3, 8} {
			var got []trace.Stream
			for lo := 0; lo < opts.NumStreams; lo += chunk {
				hi := lo + chunk
				if hi > opts.NumStreams {
					hi = opts.NumStreams
				}
				o := opts
				o.BatchSize = batch
				part, err := m.GenerateRange(lo, hi, o)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, part...)
			}
			sameStreams(t, fmt.Sprintf("chunk=%d batch=%d", chunk, batch), full.Streams, got)
		}
	}
	if _, err := m.GenerateRange(3, 1, opts); err == nil {
		t.Fatal("inverted range must error")
	}
}
