package cptgpt

import (
	"fmt"
	"math"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// serialReference generates opts.NumStreams streams through the serial
// one-stream-at-a-time decoder — the reference the batched engine must
// reproduce bit-for-bit.
func serialReference(t *testing.T, m *Model, opts GenOpts) []trace.Stream {
	t.Helper()
	if opts.Temperature <= 0 {
		opts.Temperature = 1 // Generate's own normalization
	}
	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]trace.Stream, opts.NumStreams)
	for i := range streams {
		rng := stats.NewRand(streamSeed(opts.Seed, i))
		streams[i] = m.sampleStream(i, opts, init, rng)
	}
	return streams
}

// sameStreams requires exact equality — identical event types and
// bit-identical timestamps — between two generated stream sets.
func sameStreams(t *testing.T, label string, want, got []trace.Stream) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d streams, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.UEID != g.UEID || w.Device != g.Device {
			t.Fatalf("%s: stream %d identity %s/%s, want %s/%s", label, i, g.UEID, g.Device, w.UEID, w.Device)
		}
		if len(w.Events) != len(g.Events) {
			t.Fatalf("%s: stream %d has %d events, want %d", label, i, len(g.Events), len(w.Events))
		}
		for j := range w.Events {
			if w.Events[j].Type != g.Events[j].Type || w.Events[j].Time != g.Events[j].Time {
				t.Fatalf("%s: stream %d event %d = (%v, %s), want (%v, %s)",
					label, i, j, g.Events[j].Time, g.Events[j].Type, w.Events[j].Time, w.Events[j].Type)
			}
		}
	}
}

// TestBatchedGenerateMatchesSerial is the determinism guarantee of the
// batched engine: for a fixed seed, Generate emits bit-identical streams at
// every Parallelism × BatchSize combination, all equal to the serial
// reference path.
func TestBatchedGenerateMatchesSerial(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}

	base := GenOpts{NumStreams: 23, Device: events.Phone, Seed: 99, StartWindow: 30}
	want := serialReference(t, m, base)

	for _, c := range []struct{ par, batch int }{
		{1, 1}, {1, 23}, {8, 1}, {8, 4}, {3, 7}, {8, 64},
	} {
		opts := base
		opts.Parallelism = c.par
		opts.BatchSize = c.batch
		got, err := m.Generate(opts)
		if err != nil {
			t.Fatal(err)
		}
		sameStreams(t, fmt.Sprintf("parallelism=%d batch=%d", c.par, c.batch), want, got.Streams)
	}
}

// TestBatchedGenerateNoDistHead covers the Table 8 ablation path (scalar
// interarrival head) through the batched engine.
func TestBatchedGenerateNoDistHead(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	cfg := smallConfig()
	cfg.DistHead = false
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	base := GenOpts{NumStreams: 9, Device: events.Tablet, Seed: 5}
	want := serialReference(t, m, base)
	got, err := m.Generate(GenOpts{NumStreams: 9, Device: events.Tablet, Seed: 5, Parallelism: 4, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "no-dist-head", want, got.Streams)
}

// TestBatchDecoderMatchesDecoder steps the same token sequences through the
// serial decoder and through interleaved BatchDecoder slots, requiring
// bit-identical head outputs at every position.
func TestBatchDecoderMatchesDecoder(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	dim := tk.Dim()

	// Collect a few encodable streams' token matrices.
	var encs []*tensor.Tensor
	for i := range d.Streams {
		if len(d.Streams[i].Events) >= 4 && len(d.Streams[i].Events) <= m.Cfg.MaxLen {
			enc, _, err := tk.EncodeStream(&d.Streams[i])
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, enc)
			if len(encs) == 3 {
				break
			}
		}
	}
	if len(encs) < 2 {
		t.Skip("not enough suitable streams in tiny dataset")
	}

	bd := m.NewBatchDecoder(len(encs), F64)
	serial := make([]*decoder, len(encs))
	for i := range serial {
		serial[i] = newDecoder(m)
	}

	toks := make([]float64, len(encs)*dim)
	for step := 0; ; step++ {
		var slots []int
		for i, enc := range encs {
			if step < enc.Rows {
				slots = append(slots, i)
				copy(toks[i*dim:(i+1)*dim], enc.Data[step*dim:(step+1)*dim])
			}
		}
		if len(slots) == 0 {
			break
		}
		outs := bd.Step(slots, toks)
		for j, slot := range slots {
			want := serial[slot].step(encs[slot].Data[step*dim : (step+1)*dim])
			got := outs[j]
			for k := range want.EventLogits {
				if want.EventLogits[k] != got.EventLogits[k] {
					t.Fatalf("slot %d step %d event logit %d: %v != %v", slot, step, k, got.EventLogits[k], want.EventLogits[k])
				}
			}
			if want.IAMean != got.IAMean || want.IALogStd != got.IALogStd || want.StopLogits != got.StopLogits {
				t.Fatalf("slot %d step %d heads differ: got (%v %v %v), want (%v %v %v)",
					slot, step, got.IAMean, got.IALogStd, got.StopLogits, want.IAMean, want.IALogStd, want.StopLogits)
			}
		}
	}
}

// TestSlotRefillMidBatch is the regression test for the slot-reset contract
// continuous batching relies on: a slot that retires mid-batch (its stream
// ended) is ResetSlot and reseated with a fresh stream while the other slot
// keeps decoding at a deeper position, and every output — before and after
// the refill, in both precisions — must equal decoding each stream in a
// decoder of its own. A stale score row, KV row or position after the reset
// would show up here immediately.
func TestSlotRefillMidBatch(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	dim := tk.Dim()

	var encs []*tensor.Tensor
	for i := range d.Streams {
		if len(d.Streams[i].Events) >= 5 && len(d.Streams[i].Events) <= m.Cfg.MaxLen {
			enc, _, err := tk.EncodeStream(&d.Streams[i])
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, enc)
			if len(encs) == 3 {
				break
			}
		}
	}
	if len(encs) < 3 {
		t.Skip("not enough suitable streams in tiny dataset")
	}
	a, bs, c := encs[0], encs[1], encs[2]
	// Truncate A so it retires strictly before B, forcing a mid-batch refill.
	aRows := min(3, bs.Rows-1)

	for _, prec := range []Precision{F64, F32} {
		// Reference: each stream decoded alone in a single-slot decoder of
		// the same precision (bit-identical kernels, so exact equality).
		ref := func(enc *tensor.Tensor, rows int) []StepOut {
			rd := m.NewBatchDecoder(1, prec)
			outs := make([]StepOut, rows)
			for s := 0; s < rows; s++ {
				o := rd.Step([]int{0}, enc.Data[s*dim:(s+1)*dim])[0]
				o.EventLogits = append([]float64(nil), o.EventLogits...)
				outs[s] = o
			}
			return outs
		}
		wantA := ref(a, aRows)
		wantB := ref(bs, bs.Rows)
		wantC := ref(c, c.Rows)

		same := func(label string, got, want StepOut) {
			t.Helper()
			for k := range want.EventLogits {
				if got.EventLogits[k] != want.EventLogits[k] {
					t.Fatalf("%s %s: event logit %d = %v, want %v", prec, label, k, got.EventLogits[k], want.EventLogits[k])
				}
			}
			sameNaN := math.IsNaN(got.IALogStd) && math.IsNaN(want.IALogStd)
			if got.IAMean != want.IAMean || (got.IALogStd != want.IALogStd && !sameNaN) || got.StopLogits != want.StopLogits {
				t.Fatalf("%s %s: heads differ: got (%v %v %v), want (%v %v %v)",
					prec, label, got.IAMean, got.IALogStd, got.StopLogits, want.IAMean, want.IALogStd, want.StopLogits)
			}
		}

		bd := m.NewBatchDecoder(2, prec)
		toks := make([]float64, 2*dim)
		// Phase 1: A in slot 0, B in slot 1, until A retires.
		for s := 0; s < aRows; s++ {
			copy(toks[0:dim], a.Data[s*dim:(s+1)*dim])
			copy(toks[dim:2*dim], bs.Data[s*dim:(s+1)*dim])
			outs := bd.Step([]int{0, 1}, toks)
			same(fmt.Sprintf("A step %d", s), outs[0], wantA[s])
			same(fmt.Sprintf("B step %d", s), outs[1], wantB[s])
		}
		// Refill: seat C in slot 0 while B keeps decoding at position aRows.
		bd.ResetSlot(0)
		if bd.Pos(0) != 0 || bd.Pos(1) != aRows {
			t.Fatalf("%s: after ResetSlot(0): pos = (%d, %d), want (0, %d)", prec, bd.Pos(0), bd.Pos(1), aRows)
		}
		for s := 0; ; s++ {
			var slots []int
			if s < c.Rows {
				slots = append(slots, 0)
				copy(toks[0:dim], c.Data[s*dim:(s+1)*dim])
			}
			if aRows+s < bs.Rows {
				slots = append(slots, 1)
				copy(toks[dim:2*dim], bs.Data[(aRows+s)*dim:(aRows+s+1)*dim])
			}
			if len(slots) == 0 {
				break
			}
			outs := bd.Step(slots, toks)
			for j, slot := range slots {
				if slot == 0 {
					same(fmt.Sprintf("C step %d", s), outs[j], wantC[s])
				} else {
					same(fmt.Sprintf("B step %d", aRows+s), outs[j], wantB[aRows+s])
				}
			}
		}
		st := bd.Stats()
		if st.Steps == 0 || st.SlotSteps == 0 {
			t.Fatalf("%s: Stats() = %+v, want non-zero scheduling counters", prec, st)
		}
	}
}

// TestGenerateRangeMatchesGenerate pins the chunked-emission contract: any
// partition of the stream index space concatenates to exactly the streams
// Generate produces, at any BatchSize.
func TestGenerateRangeMatchesGenerate(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	opts := GenOpts{NumStreams: 19, Device: events.Tablet, Seed: 5, StartWindow: 10}
	full, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 4, 19} {
		for _, batch := range []int{1, 3, 8} {
			var got []trace.Stream
			for lo := 0; lo < opts.NumStreams; lo += chunk {
				hi := lo + chunk
				if hi > opts.NumStreams {
					hi = opts.NumStreams
				}
				o := opts
				o.BatchSize = batch
				part, err := m.GenerateRange(lo, hi, o)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, part...)
			}
			sameStreams(t, fmt.Sprintf("chunk=%d batch=%d", chunk, batch), full.Streams, got)
		}
	}
	if _, err := m.GenerateRange(3, 1, opts); err == nil {
		t.Fatal("inverted range must error")
	}
}
