package cptgpt

import (
	"fmt"
	"testing"

	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// encodeFirstN encodes the first n eligible streams of d.
func encodeFirstN(t *testing.T, tk Tokenizer, d *trace.Dataset, maxLen, n int) (ins []*tensor.Tensor, tgs []*Targets) {
	t.Helper()
	for i := range d.Streams {
		s := &d.Streams[i]
		if len(s.Events) < 2 || len(s.Events) > maxLen+1 {
			continue
		}
		in, tg, err := tk.EncodeStream(s)
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
		tgs = append(tgs, tg)
		if len(ins) == n {
			return ins, tgs
		}
	}
	if len(ins) < 2 {
		t.Fatalf("only %d eligible streams", len(ins))
	}
	return ins, tgs
}

// TestForwardPackedMatchesForward pins the packed-minibatch invariant at the
// forward level: every head output row of a packed batch is bit-identical to
// running the serial Forward on that stream alone.
func TestForwardPackedMatchesForward(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	cfg := smallConfig()
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	ins, tgs := encodeFirstN(t, tk, d, cfg.MaxLen, 5)
	pb := PackStreams(ins, tgs)
	hp, err := m.ForwardPacked(pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, packed *tensor.Tensor, lo, hi int, serial *tensor.Tensor) {
		t.Helper()
		for r := lo; r < hi; r++ {
			for c := 0; c < packed.Cols; c++ {
				if got, want := packed.At(r, c), serial.At(r-lo, c); got != want {
					t.Fatalf("%s row %d col %d: packed %v != serial %v", name, r, c, got, want)
				}
			}
		}
	}
	for s := 0; s < pb.Streams(); s++ {
		hs, err := m.Forward(ins[s], nil)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := pb.Bounds[s], pb.Bounds[s+1]
		check("EventLogits", hp.EventLogits, lo, hi, hs.EventLogits)
		check("IAMean", hp.IAMean, lo, hi, hs.IAMean)
		check("IALogStd", hp.IALogStd, lo, hi, hs.IALogStd)
		check("StopLogits", hp.StopLogits, lo, hi, hs.StopLogits)
	}
}

// trainWeights trains a fresh model with the given options and returns its
// final parameter values plus the per-epoch losses.
func trainWeights(t *testing.T, d *trace.Dataset, cfg Config, opts TrainOpts) ([][]float64, []float64) {
	t.Helper()
	tk := FitTokenizer(d)
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(m, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return snapshotParams(m.Params()), res.EpochLoss
}

// TestTrainMicrobatchEquivalence is the trainer-level equivalence guarantee:
// packed-minibatch training reaches bit-identical weights and loss
// trajectories to the serial per-stream path, across microbatch sizes and
// parallelism degrees (Dropout is 0, so every reduction order is preserved;
// the arena and the blocked MatMul kernels are exercised on the packed runs
// and must not perturb a single bit either).
func TestTrainMicrobatchEquivalence(t *testing.T) {
	d := testTrainingData(t, 30)
	cfg := smallConfig()
	cfg.Epochs = 2

	refW, refLoss := trainWeights(t, d, cfg, TrainOpts{MicrobatchStreams: 1, Parallelism: 1, NoArena: true})

	for _, micro := range []int{1, 2, 4} {
		for _, par := range []int{1, 4} {
			name := fmt.Sprintf("micro=%d/par=%d", micro, par)
			t.Run(name, func(t *testing.T) {
				w, loss := trainWeights(t, d, cfg, TrainOpts{MicrobatchStreams: micro, Parallelism: par})
				if len(loss) != len(refLoss) {
					t.Fatalf("epoch count %d != %d", len(loss), len(refLoss))
				}
				for e := range loss {
					if loss[e] != refLoss[e] {
						t.Fatalf("epoch %d loss %v != serial %v", e, loss[e], refLoss[e])
					}
				}
				for p := range w {
					for j := range w[p] {
						if w[p][j] != refW[p][j] {
							t.Fatalf("param %d[%d]: %v != serial %v", p, j, w[p][j], refW[p][j])
						}
					}
				}
			})
		}
	}
}

// TestTrainMicrobatchDropoutConverges covers the dropout path of the packed
// trainer, which is statistically (not bitwise) equivalent to serial: it
// must still train — losses finite and decreasing over the run.
func TestTrainMicrobatchDropoutConverges(t *testing.T) {
	d := testTrainingData(t, 30)
	cfg := smallConfig()
	cfg.Epochs = 4
	cfg.Dropout = 0.1
	_, loss := trainWeights(t, d, cfg, TrainOpts{MicrobatchStreams: 4})
	if len(loss) == 0 {
		t.Fatal("no epochs ran")
	}
	if !(loss[len(loss)-1] < loss[0]) {
		t.Fatalf("dropout training did not improve: first %v last %v", loss[0], loss[len(loss)-1])
	}
}
