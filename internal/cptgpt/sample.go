package cptgpt

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// GenOpts parameterizes synthetic dataset generation.
type GenOpts struct {
	// NumStreams is the UE population to synthesize (§4.5: the user invokes
	// the model once per UE).
	NumStreams int
	// Device labels the generated streams (one CPT-GPT model is trained per
	// device type, as in the paper's evaluation).
	Device events.DeviceType
	// Seed fixes sampling randomness.
	Seed uint64
	// Temperature scales event/stop logits at sampling time (1 = faithful).
	Temperature float64
	// Parallelism bounds cross-stream decoding concurrency; 0 means the
	// tensor-layer default (GOMAXPROCS, or tensor.SetParallelism's value).
	// Output is identical at every setting: each stream's randomness comes
	// from its own index-seeded RNG.
	Parallelism int
	// Workers is a deprecated alias for Parallelism, honored when
	// Parallelism is 0.
	Workers int
	// BatchSize is the number of streams decoded in lockstep per
	// BatchDecoder batch; 0 means DefaultBatchSize. Output is identical at
	// every batch size.
	BatchSize int
	// StartWindow, when positive, offsets each stream's start uniformly in
	// [0, StartWindow) seconds so downstream consumers (e.g. an MCN) do
	// not see a synchronized t=0 attach storm. Interarrivals, sojourns and
	// flow lengths are unaffected.
	StartWindow float64
}

// parallelism resolves the effective worker count.
func (o GenOpts) parallelism() int {
	switch {
	case o.Parallelism > 0:
		return o.Parallelism
	case o.Workers > 0:
		return o.Workers
	default:
		return tensor.Parallelism()
	}
}

// streamSeed derives stream i's RNG seed; the per-stream RNG is the only
// randomness in decoding, which is what makes generation deterministic
// regardless of parallelism and batching.
func streamSeed(seed uint64, i int) uint64 {
	return seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
}

// Generate synthesizes a dataset of NumStreams independent UE streams by
// autoregressive decoding. Each stream starts from a bootstrap token whose
// event type is drawn from the model's released initial-event-type
// distribution, with interarrival and stop flag zero (§4.5), and decoding
// runs until the model emits a token with stop flag 1 or MaxLen is reached.
//
// Streams are decoded in lockstep batches of BatchSize through a shared-
// cache BatchDecoder, and batches fan out across Parallelism workers. For a
// fixed Seed the output is bit-identical at every Parallelism and BatchSize
// (including the serial reference path), because every stream consumes only
// its own index-seeded RNG and its own slice of the batch state.
func (m *Model) Generate(opts GenOpts) (*trace.Dataset, error) {
	if opts.NumStreams <= 0 {
		return nil, fmt.Errorf("cptgpt: NumStreams must be positive, got %d", opts.NumStreams)
	}
	if opts.Temperature <= 0 {
		opts.Temperature = 1
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > opts.NumStreams {
		batch = opts.NumStreams
	}
	numBatches := (opts.NumStreams + batch - 1) / batch
	workers := opts.parallelism()
	if workers > numBatches {
		workers = numBatches
	}

	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		return nil, fmt.Errorf("cptgpt: invalid initial-event distribution: %w", err)
	}

	streams := make([]trace.Stream, opts.NumStreams)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One decoder per worker, reused (Reset) across its batches.
			dec := m.NewBatchDecoder(batch)
			for bi := range jobs {
				lo := bi * batch
				hi := min(lo+batch, opts.NumStreams)
				m.sampleBatch(dec, streams[lo:hi], lo, opts, init)
			}
		}()
	}
	for bi := 0; bi < numBatches; bi++ {
		jobs <- bi
	}
	close(jobs)
	wg.Wait()

	return &trace.Dataset{Generation: m.Cfg.Generation, Streams: streams}, nil
}

// GenerateRange synthesizes the UE streams with global indices [lo, hi) of
// the population Generate would produce for the same opts: the returned
// slice equals Generate(opts).Streams[lo:hi] bit-for-bit whenever
// opts.NumStreams ≥ hi (batch_test pins this). Each stream consumes only
// its own index-seeded RNG, so chunked emission over any partition of the
// index space reproduces one full run — the streaming scenario engine pulls
// million-UE populations through this in O(chunk) memory, decoding each
// chunk in lockstep through a BatchDecoder.
func (m *Model) GenerateRange(lo, hi int, opts GenOpts) ([]trace.Stream, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("cptgpt: invalid stream range [%d,%d)", lo, hi)
	}
	if opts.Temperature <= 0 {
		opts.Temperature = 1
	}
	n := hi - lo
	if n == 0 {
		return nil, nil
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > n {
		batch = n
	}
	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		return nil, fmt.Errorf("cptgpt: invalid initial-event distribution: %w", err)
	}
	streams := make([]trace.Stream, n)
	dec := m.NewBatchDecoder(batch)
	for blo := 0; blo < n; blo += batch {
		bhi := min(blo+batch, n)
		m.sampleBatch(dec, streams[blo:bhi], lo+blo, opts, init)
	}
	return streams, nil
}

// sampleBatch decodes len(out) UE streams (global indices baseIdx+i) in
// lockstep through dec. Streams leave the active set as they emit stop
// flags; the batch finishes when every stream has stopped or hit MaxLen.
func (m *Model) sampleBatch(dec *BatchDecoder, out []trace.Stream, baseIdx int, opts GenOpts, init *stats.Categorical) {
	n := len(out)
	dec.Reset()
	dim := m.Tok.Dim()
	vocab := m.Tok.Vocab()

	rngs := make([]*rand.Rand, n)
	times := make([]float64, n)
	toks := make([]float64, n*dim)
	probs := make([]float64, m.Tok.V())
	active := make([]int, 0, n)

	// Bootstrap every stream exactly as the serial reference path does,
	// consuming the same RNG draws in the same order.
	for i := range out {
		rng := stats.NewRand(streamSeed(opts.Seed, baseIdx+i))
		rngs[i] = rng
		s := &out[i]
		s.UEID = fmt.Sprintf("gen-%s-%06d", opts.Device, baseIdx+i)
		s.Device = opts.Device

		evIdx := init.Sample(rng)
		m.Tok.writeToken(toks[i*dim:(i+1)*dim], evIdx, 0, 0)
		if opts.StartWindow > 0 {
			times[i] = rng.Float64() * opts.StartWindow
		}
		s.Events = append(s.Events, trace.Event{Time: times[i], Type: vocab[evIdx]})
		if len(s.Events) < m.Cfg.MaxLen {
			active = append(active, i)
		}
	}

	next := make([]int, 0, n)
	for len(active) > 0 {
		outs := dec.Step(active, toks)
		next = next[:0]
		for j, slot := range active {
			so := outs[j]
			rng := rngs[slot]
			s := &out[slot]

			nextEv := sampleLogitsInto(so.EventLogits, opts.Temperature, rng, probs)
			var scaled float64
			if m.Cfg.DistHead {
				std := math.Exp(so.IALogStd)
				scaled = so.IAMean + std*rng.NormFloat64()
			} else {
				// Ablation (Table 8, "No dist. pred."): deterministic scalar.
				scaled = so.IAMean
			}
			scaled = math.Min(math.Max(scaled, 0), 1)
			ia := m.Tok.UnscaleIA(scaled)
			stopIdx := sampleLogitsInto(so.StopLogits[:], opts.Temperature, rng, probs)

			times[slot] += ia
			s.Events = append(s.Events, trace.Event{Time: times[slot], Type: vocab[nextEv]})
			if stopIdx == 1 || len(s.Events) >= m.Cfg.MaxLen {
				continue
			}
			m.Tok.writeToken(toks[slot*dim:(slot+1)*dim], nextEv, scaled, stopIdx)
			next = append(next, slot)
		}
		active, next = next, active
	}
}

// sampleStream decodes one UE stream through the serial decoder. It is the
// reference implementation the batched path is tested against (identical
// output for identical opts.Seed and stream index).
func (m *Model) sampleStream(idx int, opts GenOpts, init *stats.Categorical, rng *rand.Rand) trace.Stream {
	vocab := m.Tok.Vocab()
	dec := newDecoder(m)

	s := trace.Stream{
		UEID:   fmt.Sprintf("gen-%s-%06d", opts.Device, idx),
		Device: opts.Device,
	}

	// Bootstrap token: sampled initial event, interarrival 0, stop 0.
	evIdx := init.Sample(rng)
	tok := make([]float64, m.Tok.Dim())
	m.Tok.writeToken(tok, evIdx, 0, 0)
	t := 0.0
	if opts.StartWindow > 0 {
		t = rng.Float64() * opts.StartWindow
	}
	s.Events = append(s.Events, trace.Event{Time: t, Type: vocab[evIdx]})

	for len(s.Events) < m.Cfg.MaxLen {
		out := dec.step(tok)

		nextEv := sampleLogits(out.EventLogits, opts.Temperature, rng)
		var scaled float64
		if m.Cfg.DistHead {
			std := math.Exp(out.IALogStd)
			scaled = out.IAMean + std*rng.NormFloat64()
		} else {
			// Ablation (Table 8, "No dist. pred."): deterministic scalar.
			scaled = out.IAMean
		}
		scaled = math.Min(math.Max(scaled, 0), 1)
		ia := m.Tok.UnscaleIA(scaled)
		stopIdx := sampleLogits(out.StopLogits[:], opts.Temperature, rng)

		t += ia
		s.Events = append(s.Events, trace.Event{Time: t, Type: vocab[nextEv]})
		if stopIdx == 1 {
			break
		}
		m.Tok.writeToken(tok, nextEv, scaled, stopIdx)
	}
	return s
}

// sampleLogits draws an index from softmax(logits / temperature).
func sampleLogits(logits []float64, temp float64, rng *rand.Rand) int {
	return sampleLogitsInto(logits, temp, rng, make([]float64, len(logits)))
}

// sampleLogitsInto is sampleLogits with caller-provided probability scratch
// (len(probs) ≥ len(logits)).
func sampleLogitsInto(logits []float64, temp float64, rng *rand.Rand, probs []float64) int {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v/temp > maxv {
			maxv = v / temp
		}
	}
	var sum float64
	probs = probs[:len(logits)]
	for i, v := range logits {
		p := math.Exp(v/temp - maxv)
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	for i, p := range probs {
		u -= p
		if u < 0 {
			return i
		}
	}
	return len(logits) - 1
}
