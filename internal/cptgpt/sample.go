package cptgpt

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/trace"
)

// GenOpts parameterizes synthetic dataset generation.
type GenOpts struct {
	// NumStreams is the UE population to synthesize (§4.5: the user invokes
	// the model once per UE).
	NumStreams int
	// Device labels the generated streams (one CPT-GPT model is trained per
	// device type, as in the paper's evaluation).
	Device events.DeviceType
	// Seed fixes sampling randomness.
	Seed uint64
	// Temperature scales event/stop logits at sampling time (1 = faithful).
	Temperature float64
	// Workers bounds sampling concurrency; 0 means GOMAXPROCS.
	Workers int
	// StartWindow, when positive, offsets each stream's start uniformly in
	// [0, StartWindow) seconds so downstream consumers (e.g. an MCN) do
	// not see a synchronized t=0 attach storm. Interarrivals, sojourns and
	// flow lengths are unaffected.
	StartWindow float64
}

// Generate synthesizes a dataset of NumStreams independent UE streams by
// autoregressive decoding. Each stream starts from a bootstrap token whose
// event type is drawn from the model's released initial-event-type
// distribution, with interarrival and stop flag zero (§4.5), and decoding
// runs until the model emits a token with stop flag 1 or MaxLen is reached.
func (m *Model) Generate(opts GenOpts) (*trace.Dataset, error) {
	if opts.NumStreams <= 0 {
		return nil, fmt.Errorf("cptgpt: NumStreams must be positive, got %d", opts.NumStreams)
	}
	if opts.Temperature <= 0 {
		opts.Temperature = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.NumStreams {
		workers = opts.NumStreams
	}

	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		return nil, fmt.Errorf("cptgpt: invalid initial-event distribution: %w", err)
	}

	streams := make([]trace.Stream, opts.NumStreams)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rng := stats.NewRand(opts.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
				streams[i] = m.sampleStream(i, opts, init, rng)
			}
		}()
	}
	for i := 0; i < opts.NumStreams; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return &trace.Dataset{Generation: m.Cfg.Generation, Streams: streams}, nil
}

// sampleStream decodes one UE stream.
func (m *Model) sampleStream(idx int, opts GenOpts, init *stats.Categorical, rng *rand.Rand) trace.Stream {
	vocab := m.Tok.Vocab()
	dec := newDecoder(m)

	s := trace.Stream{
		UEID:   fmt.Sprintf("gen-%s-%06d", opts.Device, idx),
		Device: opts.Device,
	}

	// Bootstrap token: sampled initial event, interarrival 0, stop 0.
	evIdx := init.Sample(rng)
	tok := make([]float64, m.Tok.Dim())
	m.Tok.writeToken(tok, evIdx, 0, 0)
	t := 0.0
	if opts.StartWindow > 0 {
		t = rng.Float64() * opts.StartWindow
	}
	s.Events = append(s.Events, trace.Event{Time: t, Type: vocab[evIdx]})

	for len(s.Events) < m.Cfg.MaxLen {
		out := dec.step(tok)

		nextEv := sampleLogits(out.eventLogits, opts.Temperature, rng)
		var scaled float64
		if m.Cfg.DistHead {
			std := math.Exp(out.iaLogStd)
			scaled = out.iaMean + std*rng.NormFloat64()
		} else {
			// Ablation (Table 8, "No dist. pred."): deterministic scalar.
			scaled = out.iaMean
		}
		scaled = math.Min(math.Max(scaled, 0), 1)
		ia := m.Tok.UnscaleIA(scaled)
		stopIdx := sampleLogits(out.stopLogits[:], opts.Temperature, rng)

		t += ia
		s.Events = append(s.Events, trace.Event{Time: t, Type: vocab[nextEv]})
		if stopIdx == 1 {
			break
		}
		m.Tok.writeToken(tok, nextEv, scaled, stopIdx)
	}
	return s
}

// sampleLogits draws an index from softmax(logits / temperature).
func sampleLogits(logits []float64, temp float64, rng *rand.Rand) int {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v/temp > maxv {
			maxv = v / temp
		}
	}
	var sum float64
	probs := make([]float64, len(logits))
	for i, v := range logits {
		p := math.Exp(v/temp - maxv)
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	for i, p := range probs {
		u -= p
		if u < 0 {
			return i
		}
	}
	return len(logits) - 1
}
