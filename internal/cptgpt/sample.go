package cptgpt

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// GenOpts parameterizes synthetic dataset generation.
type GenOpts struct {
	// NumStreams is the UE population to synthesize (§4.5: the user invokes
	// the model once per UE).
	NumStreams int
	// Device labels the generated streams (one CPT-GPT model is trained per
	// device type, as in the paper's evaluation).
	Device events.DeviceType
	// Seed fixes sampling randomness.
	Seed uint64
	// Temperature scales event/stop logits at sampling time (1 = faithful).
	Temperature float64
	// Precision selects the decode arithmetic. F64 (the default) is the
	// bit-exact reference path; F32 decodes through the model's frozen
	// float32 inference snapshot with fused kernels — about half the memory
	// traffic of F64 — under its own per-seed determinism contract. For a
	// fixed precision, output is identical at every Parallelism × BatchSize.
	Precision Precision
	// Parallelism bounds cross-stream decoding concurrency; 0 means the
	// tensor-layer default (GOMAXPROCS, or tensor.SetParallelism's value).
	// Output is identical at every setting: each stream's randomness comes
	// from its own index-seeded RNG.
	Parallelism int
	// Workers is a deprecated alias for Parallelism, honored when
	// Parallelism is 0.
	Workers int
	// BatchSize is the number of decode slots per BatchDecoder; 0 means
	// DefaultBatchSize. Output is identical at every batch size.
	BatchSize int
	// Lockstep disables continuous slot refill: each batch of BatchSize
	// streams is retired in full before the next batch starts, idling slots
	// whose streams stopped early. This is the pre-continuous scheduler,
	// kept as a benchmarking companion (see BenchmarkCPTGPTGenerateSkewed*);
	// output is identical either way.
	Lockstep bool
	// StartWindow, when positive, offsets each stream's start uniformly in
	// [0, StartWindow) seconds so downstream consumers (e.g. an MCN) do
	// not see a synchronized t=0 attach storm. Interarrivals, sojourns and
	// flow lengths are unaffected.
	StartWindow float64
	// Speculative enables speculative decoding: a cheap draft model
	// proposes DraftTokens tokens per slot and the transformer verifies
	// the whole chain in one multi-token pass, with acceptance–rejection
	// sampling preserving the output distribution exactly (see
	// speculate.go). Output remains deterministic per Seed at every
	// Parallelism × BatchSize, but differs stream-by-stream from the
	// non-speculative paths (different RNG consumption); workload
	// statistics match within the fidelity gates. Implies continuous
	// batching (Lockstep is ignored). The throughput win needs the
	// distribution head (the default); under the Table 8 ablation chains
	// cannot extend and speculation degrades to plain decoding speed.
	Speculative bool
	// DraftTokens is the number of draft tokens proposed per verify pass
	// (the speculation depth k); 0 means DefaultDraftTokens. Output is
	// deterministic per (Seed, DraftTokens) but differs across k — k
	// changes RNG consumption, not the output law.
	DraftTokens int
	// DraftModel proposes the draft chains. nil uses the model's
	// self-distilled n-gram (Model.SelfDraft, fitted once and cached);
	// NewSMMDraft adapts the paper's semi-Markov baseline. The draft only
	// moves the acceptance rate, never the output distribution.
	DraftModel DraftModel
	// Stats, when non-nil, accumulates the decode counters of every
	// BatchDecoder the call used (added atomically as workers finish):
	// scheduling steps plus, under Speculative, proposed/accepted draft
	// tokens — the acceptance-rate telemetry.
	Stats *DecodeStats
	// StepHist, when non-nil, observes every BatchDecoder.Step/StepK wall
	// duration (seconds) across all workers — the decode-step latency
	// distribution behind the daemon's native Prometheus histogram. It is
	// lock-free and never changes the generated output.
	StepHist *telemetry.Histogram
}

// parallelism resolves the effective worker count.
func (o GenOpts) parallelism() int {
	switch {
	case o.Parallelism > 0:
		return o.Parallelism
	case o.Workers > 0:
		return o.Workers
	default:
		return tensor.Parallelism()
	}
}

// streamSeed derives stream i's RNG seed; the per-stream RNG is the only
// randomness in decoding, which is what makes generation deterministic
// regardless of parallelism and batching.
func streamSeed(seed uint64, i int) uint64 {
	return seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
}

// bootStream performs one stream's bootstrap: identity stamp, initial-event
// draw from the released distribution, optional start-window offset, and
// the first emitted event, consuming the stream's own RNG. Like sampleStep
// for the per-token draws, this is the single copy of the bootstrap draw
// order (init.Sample, then the StartWindow uniform) that the serial,
// lockstep, continuous and speculative schedulers all share — the
// bit-identical-output and per-seed determinism contracts are exactly
// "same draws in the same order", so this helper is the only place that
// order may be defined.
func bootStream(s *trace.Stream, globalIdx int, opts GenOpts, init *stats.Categorical, vocab []events.Type, rng *rand.Rand) (evIdx int, start float64) {
	s.UEID = fmt.Sprintf("gen-%s-%06d", opts.Device, globalIdx)
	s.Device = opts.Device
	evIdx = init.Sample(rng)
	if opts.StartWindow > 0 {
		start = rng.Float64() * opts.StartWindow
	}
	s.Events = append(s.Events, trace.Event{Time: start, Type: vocab[evIdx]})
	return evIdx, start
}

// Generate synthesizes a dataset of NumStreams independent UE streams by
// autoregressive decoding. Each stream starts from a bootstrap token whose
// event type is drawn from the model's released initial-event-type
// distribution, with interarrival and stop flag zero (§4.5), and decoding
// runs until the model emits a token with stop flag 1 or MaxLen is reached.
//
// Scheduling is continuous batching: every worker owns a BatchDecoder of
// BatchSize slots and claims stream indices from a shared counter; the
// moment a slot's stream emits STOP, the slot is reset and reseated with the
// next pending stream, so all slots stay hot even under heavily skewed
// stream-length distributions (GenOpts.Lockstep restores the retire-whole-
// batch scheduler for comparison). For a fixed Seed and Precision the output
// is bit-identical at every Parallelism, BatchSize and scheduling mode —
// every stream consumes only its own index-seeded RNG and its own slot
// state, so who decodes it when cannot matter.
func (m *Model) Generate(opts GenOpts) (*trace.Dataset, error) {
	if opts.NumStreams <= 0 {
		return nil, fmt.Errorf("cptgpt: NumStreams must be positive, got %d", opts.NumStreams)
	}
	if opts.Temperature <= 0 {
		opts.Temperature = 1
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > opts.NumStreams {
		batch = opts.NumStreams
	}
	numBatches := (opts.NumStreams + batch - 1) / batch
	workers := opts.parallelism()
	if workers > numBatches {
		workers = numBatches
	}

	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		return nil, fmt.Errorf("cptgpt: invalid initial-event distribution: %w", err)
	}

	// Speculative decoding resolves its draft model once, up front, so all
	// workers share it (the self-draft fit itself decodes plainly).
	var draft DraftModel
	if opts.Speculative {
		if draft = opts.DraftModel; draft == nil {
			draft = m.SelfDraft()
		}
	}

	streams := make([]trace.Stream, opts.NumStreams)
	var wg sync.WaitGroup
	if opts.Lockstep && !opts.Speculative {
		// Legacy scheduler: fixed index ranges, each batch retired in full.
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One decoder per worker, reused (Reset) across its batches.
				dec := m.NewBatchDecoder(batch, opts.Precision)
				dec.SetStepHist(opts.StepHist)
				defer func() { addDecodeStats(opts.Stats, dec.Stats()) }()
				for bi := range jobs {
					lo := bi * batch
					hi := min(lo+batch, opts.NumStreams)
					m.sampleBatch(dec, streams[lo:hi], lo, opts, init)
				}
			}()
		}
		for bi := 0; bi < numBatches; bi++ {
			jobs <- bi
		}
		close(jobs)
	} else {
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dec := m.NewBatchDecoder(batch, opts.Precision)
				dec.SetStepHist(opts.StepHist)
				defer func() { addDecodeStats(opts.Stats, dec.Stats()) }()
				if opts.Speculative {
					m.sampleSpeculative(dec, streams, 0, &next, opts, init, draft)
				} else {
					m.sampleContinuous(dec, streams, 0, &next, opts, init)
				}
			}()
		}
	}
	wg.Wait()

	return &trace.Dataset{Generation: m.Cfg.Generation, Streams: streams}, nil
}

// GenerateRange synthesizes the UE streams with global indices [lo, hi) of
// the population Generate would produce for the same opts: the returned
// slice equals Generate(opts).Streams[lo:hi] bit-for-bit whenever
// opts.NumStreams ≥ hi (batch_test pins this). Each stream consumes only
// its own index-seeded RNG, so chunked emission over any partition of the
// index space reproduces one full run — the streaming scenario engine pulls
// million-UE populations through this in O(chunk) memory, decoding each
// chunk through a continuously refilled BatchDecoder.
func (m *Model) GenerateRange(lo, hi int, opts GenOpts) ([]trace.Stream, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("cptgpt: invalid stream range [%d,%d)", lo, hi)
	}
	if opts.Temperature <= 0 {
		opts.Temperature = 1
	}
	n := hi - lo
	if n == 0 {
		return nil, nil
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > n {
		batch = n
	}
	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		return nil, fmt.Errorf("cptgpt: invalid initial-event distribution: %w", err)
	}
	streams := make([]trace.Stream, n)
	dec := m.NewBatchDecoder(batch, opts.Precision)
	dec.SetStepHist(opts.StepHist)
	defer func() { addDecodeStats(opts.Stats, dec.Stats()) }()
	switch {
	case opts.Speculative:
		draft := opts.DraftModel
		if draft == nil {
			draft = m.SelfDraft()
		}
		var next atomic.Int64
		m.sampleSpeculative(dec, streams, lo, &next, opts, init, draft)
	case opts.Lockstep:
		for blo := 0; blo < n; blo += batch {
			bhi := min(blo+batch, n)
			m.sampleBatch(dec, streams[blo:bhi], lo+blo, opts, init)
		}
	default:
		var next atomic.Int64
		m.sampleContinuous(dec, streams, lo, &next, opts, init)
	}
	return streams, nil
}

// sampleStep draws one decode step's fields from the head outputs: the next
// event index, the scaled interarrival (Gaussian-sampled under DistHead,
// deterministic scalar in the Table 8 ablation) and the stop flag. It is
// the single copy of the per-token RNG draw order that the serial,
// lockstep and continuous schedulers all share — the bit-identical-output
// contract between them is exactly "same draws in the same order", so this
// helper is the only place that order may be defined.
func (m *Model) sampleStep(so StepOut, temp float64, rng *rand.Rand, probs []float64) (nextEv int, scaled float64, stopIdx int) {
	nextEv = sampleLogitsInto(so.EventLogits, temp, rng, probs)
	if m.Cfg.DistHead {
		std := math.Exp(so.IALogStd)
		scaled = so.IAMean + std*rng.NormFloat64()
	} else {
		// Ablation (Table 8, "No dist. pred."): deterministic scalar.
		scaled = so.IAMean
	}
	scaled = math.Min(math.Max(scaled, 0), 1)
	stopIdx = sampleLogitsInto(so.StopLogits[:], temp, rng, probs)
	return nextEv, scaled, stopIdx
}

// sampleContinuous decodes the streams of out (global indices baseIdx+i)
// through dec with continuous batching: slots are seated by claiming the
// next unclaimed index from next (shared across all workers of a Generate
// call), and the moment a slot's stream stops — STOP token or MaxLen — the
// slot is reset and reseated with a fresh claim instead of idling until the
// rest of the batch drains. Per-stream output is invariant to seating: a
// stream's events depend only on its own index-seeded RNG and its own slot
// region, which is why continuous and lockstep scheduling emit bit-identical
// datasets.
func (m *Model) sampleContinuous(dec *BatchDecoder, out []trace.Stream, baseIdx int, next *atomic.Int64, opts GenOpts, init *stats.Categorical) {
	capacity := dec.Capacity()
	dim := m.Tok.Dim()
	vocab := m.Tok.Vocab()
	total := int64(len(out))

	rngs := make([]*rand.Rand, capacity)
	times := make([]float64, capacity)
	cur := make([]int, capacity) // stream index (into out) seated in each slot
	toks := make([]float64, capacity*dim)
	probs := make([]float64, m.Tok.V())

	// claim returns the next unclaimed stream index, or -1 when the
	// population is exhausted.
	claim := func() int {
		if i := next.Add(1) - 1; i < total {
			return int(i)
		}
		return -1
	}

	// seat boots stream li into slot via the shared bootStream helper (same
	// RNG draws in the same order as every other scheduler) and reports
	// whether the stream still needs decode steps.
	seat := func(slot, li int) bool {
		dec.ResetSlot(slot)
		rng := stats.NewRand(streamSeed(opts.Seed, baseIdx+li))
		rngs[slot] = rng
		cur[slot] = li
		s := &out[li]
		evIdx, start := bootStream(s, baseIdx+li, opts, init, vocab, rng)
		m.Tok.writeToken(toks[slot*dim:(slot+1)*dim], evIdx, 0, 0)
		times[slot] = start
		return len(s.Events) < m.Cfg.MaxLen
	}

	// refill claims streams into slot until one needs decoding; it returns
	// false when the population is exhausted.
	refill := func(slot int) bool {
		for {
			li := claim()
			if li < 0 {
				return false
			}
			if seat(slot, li) {
				return true
			}
		}
	}

	active := make([]int, 0, capacity)
	for slot := 0; slot < capacity; slot++ {
		if !refill(slot) {
			break
		}
		active = append(active, slot)
	}

	keep := make([]int, 0, capacity)
	for len(active) > 0 {
		outs := dec.Step(active, toks)
		keep = keep[:0]
		for j, slot := range active {
			rng := rngs[slot]
			s := &out[cur[slot]]

			nextEv, scaled, stopIdx := m.sampleStep(outs[j], opts.Temperature, rng, probs)
			times[slot] += m.Tok.UnscaleIA(scaled)
			s.Events = append(s.Events, trace.Event{Time: times[slot], Type: vocab[nextEv]})
			if stopIdx != 1 && len(s.Events) < m.Cfg.MaxLen {
				m.Tok.writeToken(toks[slot*dim:(slot+1)*dim], nextEv, scaled, stopIdx)
				keep = append(keep, slot)
				continue
			}
			// Stream finished: reseat the slot immediately so it decodes a
			// pending stream on the very next Step.
			if refill(slot) {
				keep = append(keep, slot)
			}
		}
		active, keep = keep, active
	}
}

// sampleBatch decodes len(out) UE streams (global indices baseIdx+i) in
// lockstep through dec. Streams leave the active set as they emit stop
// flags; the batch finishes when every stream has stopped or hit MaxLen —
// retired slots idle until then, which is what GenOpts.Lockstep exists to
// measure against continuous batching.
func (m *Model) sampleBatch(dec *BatchDecoder, out []trace.Stream, baseIdx int, opts GenOpts, init *stats.Categorical) {
	n := len(out)
	dec.Reset()
	dim := m.Tok.Dim()
	vocab := m.Tok.Vocab()

	rngs := make([]*rand.Rand, n)
	times := make([]float64, n)
	toks := make([]float64, n*dim)
	probs := make([]float64, m.Tok.V())
	active := make([]int, 0, n)

	// Bootstrap every stream through the shared helper, consuming the same
	// RNG draws in the same order as the serial reference path.
	for i := range out {
		rng := stats.NewRand(streamSeed(opts.Seed, baseIdx+i))
		rngs[i] = rng
		s := &out[i]
		evIdx, start := bootStream(s, baseIdx+i, opts, init, vocab, rng)
		m.Tok.writeToken(toks[i*dim:(i+1)*dim], evIdx, 0, 0)
		times[i] = start
		if len(s.Events) < m.Cfg.MaxLen {
			active = append(active, i)
		}
	}

	next := make([]int, 0, n)
	for len(active) > 0 {
		outs := dec.Step(active, toks)
		next = next[:0]
		for j, slot := range active {
			rng := rngs[slot]
			s := &out[slot]

			nextEv, scaled, stopIdx := m.sampleStep(outs[j], opts.Temperature, rng, probs)
			times[slot] += m.Tok.UnscaleIA(scaled)
			s.Events = append(s.Events, trace.Event{Time: times[slot], Type: vocab[nextEv]})
			if stopIdx == 1 || len(s.Events) >= m.Cfg.MaxLen {
				continue
			}
			m.Tok.writeToken(toks[slot*dim:(slot+1)*dim], nextEv, scaled, stopIdx)
			next = append(next, slot)
		}
		active, next = next, active
	}
}

// sampleStream decodes one UE stream through the serial decoder. It is the
// reference implementation the batched path is tested against (identical
// output for identical opts.Seed and stream index).
func (m *Model) sampleStream(idx int, opts GenOpts, init *stats.Categorical, rng *rand.Rand) trace.Stream {
	vocab := m.Tok.Vocab()
	dec := newDecoder(m)

	// Bootstrap token: sampled initial event, interarrival 0, stop 0 (the
	// shared helper defines the draw order).
	var s trace.Stream
	evIdx, t := bootStream(&s, idx, opts, init, vocab, rng)
	tok := make([]float64, m.Tok.Dim())
	probs := make([]float64, m.Tok.V())
	m.Tok.writeToken(tok, evIdx, 0, 0)

	for len(s.Events) < m.Cfg.MaxLen {
		nextEv, scaled, stopIdx := m.sampleStep(dec.step(tok), opts.Temperature, rng, probs)
		t += m.Tok.UnscaleIA(scaled)
		s.Events = append(s.Events, trace.Event{Time: t, Type: vocab[nextEv]})
		if stopIdx == 1 {
			break
		}
		m.Tok.writeToken(tok, nextEv, scaled, stopIdx)
	}
	return s
}

// expUnderflow is math.Exp's underflow threshold: for arguments strictly
// below it Exp returns exactly 0, so the call can be skipped without
// changing a single bit of the result.
const expUnderflow = -7.45133219101941108420e+02

// sampleLogitsInto is sampleLogits with caller-provided probability scratch
// (len(probs) ≥ len(logits)). It max-shifts the logits before
// exponentiating and early-exits the math.Exp call for entries so far below
// the max that Exp underflows to zero anyway — when one candidate dominates
// (the common case for the 2-way stop head late in a stream), most of the
// vocabulary skips the transcendental entirely. The temperature division is
// elided at temp == 1 (faithful sampling, the default), which is exact.
// Results are bit-identical to the straightforward implementation; the
// regression test pins sampled indices against it.
func sampleLogitsInto(logits []float64, temp float64, rng *rand.Rand, probs []float64) int {
	maxv := math.Inf(-1)
	if temp == 1 {
		for _, v := range logits {
			if v > maxv {
				maxv = v
			}
		}
	} else {
		for _, v := range logits {
			if v/temp > maxv {
				maxv = v / temp
			}
		}
	}
	var sum float64
	probs = probs[:len(logits)]
	for i, v := range logits {
		z := v - maxv
		if temp != 1 {
			z = v/temp - maxv
		}
		var p float64
		if z >= expUnderflow {
			p = math.Exp(z)
		}
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	for i, p := range probs {
		u -= p
		if u < 0 {
			return i
		}
	}
	return len(logits) - 1
}
