package cptgpt

import (
	"fmt"
	"math/rand/v2"

	"cptgpt/internal/events"
	"cptgpt/internal/nn"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
)

// Config holds the model and training hyperparameters. The paper's tuned
// model uses 2 attention blocks, embedding dimension 128 and MLP hidden
// size 1024 (725K parameters); the defaults here are scaled for CPU
// training while preserving the architecture (see DESIGN.md §2).
type Config struct {
	// Generation selects the event vocabulary (and so the token dimension).
	Generation events.Generation
	// DModel is the attention hidden size (paper: 128).
	DModel int
	// Heads is the attention head count.
	Heads int
	// Blocks is the number of decoder blocks (paper: 2).
	Blocks int
	// MLPHidden is the per-block feed-forward hidden size (paper: 1024).
	MLPHidden int
	// HeadHidden is the hidden size of the three output MLP heads.
	HeadHidden int
	// MaxLen is the maximum stream length the model generates (paper: 500).
	MaxLen int

	// LR is the Adam learning rate.
	LR float64
	// Epochs is the number of passes over the training streams.
	Epochs int
	// AccumStreams is the number of streams whose gradients accumulate into
	// one optimizer step.
	AccumStreams int
	// MicrobatchStreams is the number of streams packed into one forward
	// pass (a padded-free concatenated minibatch with a block-diagonal
	// causal mask). 0 or 1 trains one stream at a time. The trained weights
	// are bit-identical at every setting when Dropout is 0 (the packed
	// path preserves every reduction order); with dropout they are
	// statistically equivalent (the mask draw order differs).
	MicrobatchStreams int
	// LossWeights weights the [event, interarrival, stop] losses in the
	// total (the paper trains 1:1:1 and studies 3:1:1 / 1:3:1 / 1:1:3).
	LossWeights [3]float64
	// DistHead enables Design 2 (predict Gaussian parameters for the
	// interarrival). Disabling it reproduces the Table 8 ablation where the
	// head regresses a single scalar trained with MSE.
	DistHead bool
	// Dropout is applied inside blocks during training (0 disables).
	Dropout float64
	// Seed fixes initialization and training-order randomness.
	Seed uint64
}

// DefaultConfig returns a CPU-sized configuration for 4G traffic.
func DefaultConfig() Config {
	return Config{
		Generation:   events.Gen4G,
		DModel:       32,
		Heads:        4,
		Blocks:       2,
		MLPHidden:    64,
		HeadHidden:   32,
		MaxLen:       200,
		LR:           3e-3,
		Epochs:       4,
		AccumStreams: 4,
		// One packed forward per optimizer step at the default AccumStreams.
		MicrobatchStreams: 4,
		LossWeights:       [3]float64{1, 1, 1},
		DistHead:          true,
		Seed:              7,
	}
}

// Validate checks config consistency.
func (c Config) Validate() error {
	switch {
	case c.DModel <= 0 || c.Heads <= 0 || c.Blocks <= 0:
		return fmt.Errorf("cptgpt: DModel/Heads/Blocks must be positive")
	case c.DModel%c.Heads != 0:
		return fmt.Errorf("cptgpt: DModel %d must be divisible by Heads %d", c.DModel, c.Heads)
	case c.MaxLen < 2:
		return fmt.Errorf("cptgpt: MaxLen must be ≥ 2, got %d", c.MaxLen)
	case c.LR <= 0:
		return fmt.Errorf("cptgpt: LR must be positive, got %v", c.LR)
	case c.Epochs <= 0:
		return fmt.Errorf("cptgpt: Epochs must be positive, got %d", c.Epochs)
	case c.MicrobatchStreams < 0:
		return fmt.Errorf("cptgpt: MicrobatchStreams must be non-negative, got %d", c.MicrobatchStreams)
	}
	for i, w := range c.LossWeights {
		if w < 0 {
			return fmt.Errorf("cptgpt: LossWeights[%d] = %v must be non-negative", i, w)
		}
	}
	return nil
}

// Model is the CPT-GPT network (Figure 3): a linear token projection plus
// learned positional embeddings, a stack of causal decoder blocks, a final
// layer norm and three MLP heads (event type, interarrival, stop flag).
type Model struct {
	Cfg Config
	Tok Tokenizer

	InProj   *nn.Linear     // d_token → d_model ("embedding" replacement)
	PosEmb   *tensor.Tensor // MaxLen × d_model learned positions
	BlocksNN []*nn.Block
	Final    *nn.LayerNorm
	EventHd  *nn.MLP // d_model → V logits
	IAHd     *nn.MLP // d_model → 2 (mean, logStd) or 1 when !DistHead
	StopHd   *nn.MLP // d_model → 2 logits

	// InitialDist is the distribution of first-event types extracted from
	// the training set and released with the model (§4.5).
	InitialDist []float64

	// infer caches the frozen float32 inference snapshot (see Infer). It is
	// derived state — never serialized, dropped by Clone's rebuild, and
	// invalidated by Train/FineTune after weight updates.
	infer inferCache
	// draft caches the self-fitted speculative draft proposer (see
	// SelfDraft); derived state with the same lifecycle as infer.
	draft draftCache
}

// NewModel builds an initialized model for the tokenizer's vocabulary.
func NewModel(cfg Config, tok Tokenizer) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tok.Gen != cfg.Generation {
		return nil, fmt.Errorf("cptgpt: tokenizer generation %s does not match config %s", tok.Gen, cfg.Generation)
	}
	rng := stats.NewRand(cfg.Seed)
	m := &Model{Cfg: cfg, Tok: tok}
	m.InProj = nn.NewLinear(tok.Dim(), cfg.DModel, rng)
	m.PosEmb = tensor.Randn(cfg.MaxLen, cfg.DModel, 0.02, rng).Param()
	for i := 0; i < cfg.Blocks; i++ {
		m.BlocksNN = append(m.BlocksNN, nn.NewBlock(cfg.DModel, cfg.Heads, cfg.MLPHidden, rng))
	}
	m.Final = nn.NewLayerNorm(cfg.DModel)
	m.EventHd = nn.NewMLP(rng, cfg.DModel, cfg.HeadHidden, tok.V())
	iaOut := 2
	if !cfg.DistHead {
		iaOut = 1
	}
	m.IAHd = nn.NewMLP(rng, cfg.DModel, cfg.HeadHidden, iaOut)
	m.StopHd = nn.NewMLP(rng, cfg.DModel, cfg.HeadHidden, 2)
	m.InitialDist = make([]float64, tok.V())
	for i := range m.InitialDist {
		m.InitialDist[i] = 1 / float64(tok.V())
	}
	return m, nil
}

// Params returns all trainable parameters in a stable order.
func (m *Model) Params() []*tensor.Tensor {
	ps := m.InProj.Params()
	ps = append(ps, m.PosEmb)
	for _, b := range m.BlocksNN {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.Final.Params()...)
	ps = append(ps, m.EventHd.Params()...)
	ps = append(ps, m.IAHd.Params()...)
	ps = append(ps, m.StopHd.Params()...)
	return ps
}

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int { return nn.NumParams(m.Params()) }

// Heads bundles the per-position head outputs of a forward pass.
type Heads struct {
	// EventLogits is T×V.
	EventLogits *tensor.Tensor
	// IAMean is T×1 (scaled space).
	IAMean *tensor.Tensor
	// IALogStd is T×1; nil when the distribution head is disabled.
	IALogStd *tensor.Tensor
	// StopLogits is T×2.
	StopLogits *tensor.Tensor
}

// Forward runs the network over a token matrix (T×d_token) and returns the
// three head outputs for every position. When dropRng is non-nil, dropout
// is active (training mode).
func (m *Model) Forward(tokens *tensor.Tensor, dropRng *rand.Rand) (*Heads, error) {
	t := tokens.Rows
	if t > m.Cfg.MaxLen {
		return nil, fmt.Errorf("cptgpt: sequence length %d exceeds MaxLen %d", t, m.Cfg.MaxLen)
	}
	x := m.InProj.Forward(tokens)
	x = tensor.Add(x, tensor.SliceRows(m.PosEmb, 0, t))
	for _, b := range m.BlocksNN {
		x = b.Forward(x)
		if m.Cfg.Dropout > 0 && dropRng != nil {
			x = tensor.Dropout(x, m.Cfg.Dropout, dropRng)
		}
	}
	x = m.Final.Forward(x)
	return m.headsOf(x), nil
}

// headsOf applies the final-norm output to the three MLP heads — the shared
// tail of Forward and ForwardPacked (all heads are row-wise).
func (m *Model) headsOf(x *tensor.Tensor) *Heads {
	h := &Heads{
		EventLogits: m.EventHd.Forward(x),
		StopLogits:  m.StopHd.Forward(x),
	}
	ia := m.IAHd.Forward(x)
	if m.Cfg.DistHead {
		h.IAMean = tensor.SliceCols(ia, 0, 1)
		// Clamp log-std to a sane range to keep the NLL well-conditioned.
		h.IALogStd = tensor.Clamp(tensor.SliceCols(ia, 1, 2), -6, 2)
	} else {
		h.IAMean = ia
	}
	return h
}

// Loss computes the weighted multi-field training loss for one encoded
// stream (Design 2: Gaussian NLL for the numeric field, cross-entropy for
// the categorical fields).
func (m *Model) Loss(h *Heads, tg *Targets) *tensor.Tensor {
	w := m.Cfg.LossWeights
	evLoss := tensor.CrossEntropy(h.EventLogits, tg.Event)
	stopLoss := tensor.CrossEntropy(h.StopLogits, tg.Stop)
	var iaLoss *tensor.Tensor
	if m.Cfg.DistHead {
		iaLoss = tensor.GaussianNLL(h.IAMean, h.IALogStd, tg.IA, tg.IAMask)
	} else {
		iaLoss = tensor.MSE(h.IAMean, tg.IA, tg.IAMask)
	}
	return tensor.AddScalars([]float64{w[0], w[1], w[2]}, evLoss, iaLoss, stopLoss)
}
