// Package cptgpt implements CPT-GPT, the paper's decoder-only transformer
// for control-plane traffic generation (§4): a multi-modal tokenizer over
// (event type, interarrival, stop flag), next-token training with packed
// multi-stream minibatches, and autoregressive decoding of arbitrarily many
// UE streams through a KV-cached BatchDecoder — with a float32 inference
// fast path, continuous slot batching and speculative (draft + multi-token
// verify) decoding layered on top.
//
// Determinism contract, per decoding path:
//
//   - Plain f64 decoding (the default) is bit-identical at every
//     Parallelism × BatchSize × scheduling mode: each stream consumes only
//     its own index-seeded RNG and slot state, so who decodes it when
//     cannot matter.
//   - f32 decoding fixes every per-row reduction order, so it is
//     deterministic per (Seed, Precision) at every Parallelism × BatchSize
//     × slot grouping — but differs numerically from f64 within the
//     fidelity gates pinned by the package tests.
//   - Speculative decoding is deterministic per (Seed, DraftTokens) and
//     distributionally exact (acceptance–rejection preserves plain
//     sampling's per-position conditionals), but consumes RNG draws
//     differently from plain decoding, so streams differ event-by-event.
//
// Concurrency contract: a Model is safe for concurrent Generate /
// GenerateRange calls once trained (the frozen inference snapshot is built
// under a mutex and shared read-only); each BatchDecoder belongs to one
// goroutine. DecodeStats counters are atomics — GenOpts.Stats sinks are
// accumulated atomically as workers finish, and a snapshot may be read
// (atomically, field by field) from any goroutine while generation runs,
// which is what the scenario engine's SourceStats hook and the cptserved
// daemon's live decode telemetry rely on.
package cptgpt
