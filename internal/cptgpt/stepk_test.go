package cptgpt

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"cptgpt/internal/tensor"
)

// stepKTestEncs returns a few encodable token matrices from the tiny
// training dataset.
func stepKTestEncs(t *testing.T, m *Model, minRows, want int) [][]float64 {
	t.Helper()
	d := testTrainingData(t, 60)
	var encs [][]float64
	for i := range d.Streams {
		if len(d.Streams[i].Events) >= minRows+1 && len(d.Streams[i].Events) <= m.Cfg.MaxLen {
			enc, _, err := m.Tok.EncodeStream(&d.Streams[i])
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, enc.Data[:enc.Rows*m.Tok.Dim()])
			if len(encs) == want {
				break
			}
		}
	}
	if len(encs) < want {
		t.Skip("not enough suitable streams in tiny dataset")
	}
	return encs
}

// TestStepKMatchesStep is the multi-token verify kernel's core contract:
// consuming a token chain through StepK yields the same per-position head
// outputs as stepping the chain one token at a time — bit-identical on the
// F64 path and on the F32 path with the scalar GEMM; within a small absolute
// tolerance with the assembly GEMM (wider reduction order). This is also the
// batched-prefill guarantee: prefilling a prompt is one StepK call.
func TestStepKMatchesStep(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	dim := tk.Dim()
	encs := stepKTestEncs(t, m, 6, 3)

	type mode struct {
		name string
		prec Precision
		asm  bool
		tol  float64
	}
	modes := []mode{
		{"f64", F64, false, 0},
		{"f32-scalar", F32, false, 0},
	}
	if tensor.GemmF32Asm() {
		modes = append(modes, mode{"f32-asm", F32, true, 2e-4})
	}
	for _, md := range modes {
		prevAsm := tensor.SetGemmF32Asm(md.asm)
		// Reference: one-token stepping through a separate decoder.
		ref := m.NewBatchDecoder(len(encs), md.prec)
		wants := make([][]StepOut, len(encs))
		tok := make([]float64, len(encs)*dim)
		for step := 0; ; step++ {
			var slots []int
			for i, enc := range encs {
				if step < len(enc)/dim {
					slots = append(slots, i)
					copy(tok[i*dim:(i+1)*dim], enc[step*dim:(step+1)*dim])
				}
			}
			if len(slots) == 0 {
				break
			}
			outs := ref.Step(slots, tok)
			for j, slot := range slots {
				o := outs[j]
				o.EventLogits = append([]float64(nil), o.EventLogits...)
				wants[slot] = append(wants[slot], o)
			}
		}

		// Multi-token: chains of varying width per pass (1, 2, 3, ... rows).
		const kMax = 3
		kd := m.NewBatchDecoder(len(encs), md.prec)
		toksK := make([]float64, len(encs)*kMax*dim)
		pos := make([]int, len(encs))
		for round := 0; ; round++ {
			var slots []int
			var ks []int
			for i, enc := range encs {
				rows := len(enc) / dim
				if pos[i] >= rows {
					continue
				}
				k := 1 + (round+i)%kMax
				if k > rows-pos[i] {
					k = rows - pos[i]
				}
				for r := 0; r < k; r++ {
					copy(toksK[(i*kMax+r)*dim:(i*kMax+r+1)*dim], enc[(pos[i]+r)*dim:(pos[i]+r+1)*dim])
				}
				slots = append(slots, i)
				ks = append(ks, k)
			}
			if len(slots) == 0 {
				break
			}
			outs := kd.StepK(slots, ks, kMax, toksK)
			for j, slot := range slots {
				for r := 0; r < ks[j]; r++ {
					want := wants[slot][pos[slot]+r]
					got := outs[j][r]
					check := func(name string, g, w float64) {
						t.Helper()
						if math.IsNaN(w) && math.IsNaN(g) {
							return
						}
						if diff := math.Abs(g - w); diff > md.tol {
							t.Fatalf("%s slot %d pos %d %s: StepK %v vs Step %v (|Δ| %.2e > %g)",
								md.name, slot, pos[slot]+r, name, g, w, diff, md.tol)
						}
					}
					for x := range want.EventLogits {
						check(fmt.Sprintf("event logit %d", x), got.EventLogits[x], want.EventLogits[x])
					}
					check("IAMean", got.IAMean, want.IAMean)
					check("IALogStd", got.IALogStd, want.IALogStd)
					check("stop0", got.StopLogits[0], want.StopLogits[0])
					check("stop1", got.StopLogits[1], want.StopLogits[1])
				}
				pos[slot] += ks[j]
			}
		}
		tensor.SetGemmF32Asm(prevAsm)
	}
}

// TestTruncateSlot pins the rewind contract speculative rejection relies on:
// consuming a chain, truncating back to an accepted prefix, and re-stepping
// a different continuation equals stepping the prefix + continuation in a
// fresh decoder.
func TestTruncateSlot(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	dim := tk.Dim()
	encs := stepKTestEncs(t, m, 6, 2)
	chain, alt := encs[0], encs[1]

	for _, prec := range []Precision{F64, F32} {
		const kMax = 4
		kd := m.NewBatchDecoder(1, prec)
		toks := make([]float64, kMax*dim)
		// Consume 4 rows of chain, then pretend rows 2..3 were rejected.
		copy(toks, chain[:4*dim])
		kd.StepK([]int{0}, []int{4}, kMax, toks)
		kd.TruncateSlot(0, 2)
		if kd.Pos(0) != 2 {
			t.Fatalf("%s: pos after truncate = %d, want 2", prec, kd.Pos(0))
		}
		// Continue with two rows of alt.
		copy(toks, alt[:2*dim])
		got := kd.StepK([]int{0}, []int{2}, kMax, toks)[0]

		// Reference: chain[0:2] + alt[0:2] in a fresh decoder.
		rd := m.NewBatchDecoder(1, prec)
		copy(toks, chain[:2*dim])
		rd.StepK([]int{0}, []int{2}, kMax, toks)
		copy(toks, alt[:2*dim])
		want := rd.StepK([]int{0}, []int{2}, kMax, toks)[0]
		for r := 0; r < 2; r++ {
			for x := range want[r].EventLogits {
				if got[r].EventLogits[x] != want[r].EventLogits[x] {
					t.Fatalf("%s row %d logit %d: %v != %v", prec, r, x, got[r].EventLogits[x], want[r].EventLogits[x])
				}
			}
			if got[r].IAMean != want[r].IAMean || got[r].StopLogits != want[r].StopLogits {
				t.Fatalf("%s row %d heads differ", prec, r)
			}
		}
	}

	// Out-of-range truncations must panic.
	kd := m.NewBatchDecoder(1, F64)
	for _, bad := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TruncateSlot(0, %d) did not panic", bad)
				}
			}()
			kd.TruncateSlot(0, bad)
		}()
	}
}

// TestBatchDecoderStatsRace reads Stats concurrently with stepping — the
// counters must be race-free (run under -race, as CI does).
func TestBatchDecoderStatsRace(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	dim := tk.Dim()
	dec := m.NewBatchDecoder(2, F64)
	toks := make([]float64, 2*dim)
	for i := 0; i < 2; i++ {
		m.Tok.writeToken(toks[i*dim:(i+1)*dim], 0, 0, 0)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				st := dec.Stats()
				if st.SlotSteps < 0 {
					panic("negative slot steps")
				}
			}
		}
	}()
	for i := 0; i < 50; i++ {
		dec.Step([]int{0, 1}, toks)
		dec.Reset()
	}
	close(done)
	wg.Wait()
	if st := dec.Stats(); st.Steps != 50 || st.SlotSteps != 100 {
		t.Fatalf("Stats = %+v, want 50 steps / 100 slot-steps", st)
	}
}
