package cptgpt

import (
	"sync/atomic"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// Scheduling benchmarks with the slot-utilization metric the public
// (root-package) benchmarks cannot see: they drive sampleContinuous /
// sampleBatch directly over one decoder and report
// slotSteps / (steps × capacity) from BatchDecoder.Stats — the fraction of
// the decoder's lockstep bandwidth doing useful work. On skewed
// stream-length populations lockstep drains each batch down to its longest
// stream (utilization falls with every retirement); continuous batching
// reseats retired slots immediately.

func benchScheduling(b *testing.B, lockstep bool) {
	b.Helper()
	prevPar := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prevPar)

	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G, Seed: 12,
		UEs: map[events.DeviceType]int{events.Phone: 30}, Hours: 1, StartHour: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Untrained model: the stop head fires near-geometrically, the skewed
	// stream-length regime where scheduling matters.
	m, err := NewModel(smallConfig(), FitTokenizer(d))
	if err != nil {
		b.Fatal(err)
	}
	init, err := stats.NewCategorical(m.InitialDist)
	if err != nil {
		b.Fatal(err)
	}
	const slots = 32
	opts := GenOpts{NumStreams: 512, Device: events.Phone, Seed: 9, Temperature: 1}
	dec := m.NewBatchDecoder(slots, F64)
	streams := make([]trace.Stream, opts.NumStreams)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range streams {
			streams[j] = trace.Stream{}
		}
		if lockstep {
			for lo := 0; lo < len(streams); lo += slots {
				m.sampleBatch(dec, streams[lo:min(lo+slots, len(streams))], lo, opts, init)
			}
		} else {
			var next atomic.Int64
			m.sampleContinuous(dec, streams, 0, &next, opts, init)
		}
	}
	b.StopTimer()
	st := dec.Stats()
	b.ReportMetric(100*float64(st.SlotSteps)/(float64(st.Steps)*slots), "util%")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*opts.NumStreams), "ns/stream")
}

// BenchmarkSchedulingContinuous reports continuous batching's utilization
// and per-stream cost on the skewed population.
func BenchmarkSchedulingContinuous(b *testing.B) { benchScheduling(b, false) }

// BenchmarkSchedulingLockstep is the retire-whole-batch companion over the
// identical (bit-identical output) population.
func BenchmarkSchedulingLockstep(b *testing.B) { benchScheduling(b, true) }
