package cptgpt

import (
	"fmt"
	"math"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/smm"
	"cptgpt/internal/stats"
	"cptgpt/internal/trace"
)

// specTestModel builds a tiny model plus its training data.
func specTestModel(t *testing.T) (*Model, *trace.Dataset) {
	t.Helper()
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

// TestSpeculativeGenerateDeterministic pins the speculative determinism
// contract: for a fixed (Seed, Precision, DraftTokens) the output is
// bit-identical across repeated runs, every Parallelism × BatchSize, and
// chunked GenerateRange emission.
func TestSpeculativeGenerateDeterministic(t *testing.T) {
	m, _ := specTestModel(t)
	for _, prec := range []Precision{F64, F32} {
		base := GenOpts{NumStreams: 23, Device: events.Phone, Seed: 99, StartWindow: 30,
			Precision: prec, Speculative: true}
		want, err := m.Generate(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct{ par, batch int }{
			{1, 1}, {1, 23}, {8, 4}, {3, 7},
		} {
			opts := base
			opts.Parallelism = c.par
			opts.BatchSize = c.batch
			got, err := m.Generate(opts)
			if err != nil {
				t.Fatal(err)
			}
			sameStreams(t, fmt.Sprintf("spec %s parallelism=%d batch=%d", prec, c.par, c.batch), want.Streams, got.Streams)
		}
		// Chunked emission reproduces the full population.
		var chunked []trace.Stream
		for lo := 0; lo < base.NumStreams; lo += 7 {
			hi := min(lo+7, base.NumStreams)
			part, err := m.GenerateRange(lo, hi, base)
			if err != nil {
				t.Fatal(err)
			}
			chunked = append(chunked, part...)
		}
		sameStreams(t, fmt.Sprintf("spec %s chunked range", prec), want.Streams, chunked)
	}
}

// specMarginals collects the workload marginals the fidelity gates compare.
func specMarginals(ds *trace.Dataset) (types map[events.Type]float64, ias, lens []float64) {
	types = make(map[events.Type]float64)
	var total float64
	for i := range ds.Streams {
		s := &ds.Streams[i]
		lens = append(lens, float64(len(s.Events)))
		for _, e := range s.Events {
			types[e.Type]++
			total++
		}
		ia := s.Interarrivals()
		ias = append(ias, ia[min(len(ia), 1):]...)
	}
	for k := range types {
		types[k] /= total
	}
	return types, ias, lens
}

// TestSpeculativeFidelityMarginals is the distribution-level gate on the
// speculative path (the speculative extension of TestF32FidelityMarginals):
// over a population, speculative output's event-type marginal must stay
// within a small total-variation distance of plain decoding's, and the
// interarrival and stream-length marginals within a small KS distance —
// in both precisions, with both the self-draft and an adversarially bad
// draft (acceptance must never leak into the law, only the speed).
func TestSpeculativeFidelityMarginals(t *testing.T) {
	// Unlike the F32-vs-F64 gate (whose populations are near-identical
	// stream-by-stream, so sampling noise cancels), speculative and plain
	// populations are INDEPENDENT draws from the same law — different RNG
	// consumption resteers every stream. The bounds below sit ~3× above
	// the two-independent-samples noise floor at these sizes (TV ≈ 0.009
	// over ~20k events; two-sample KS 99.9% critical ≈ 0.024 at n ≈ 10k
	// interarrivals and ≈ 0.062 at n = 2000 stream lengths), so they
	// still catch any real distribution shift, which would not shrink
	// with n.
	const streams = 2000
	m, _ := specTestModel(t)
	for _, prec := range []Precision{F64, F32} {
		opts := GenOpts{NumStreams: streams, Device: events.Phone, Seed: 17, Precision: prec}
		plain, err := m.Generate(opts)
		if err != nil {
			t.Fatal(err)
		}
		for name, draft := range map[string]DraftModel{
			"self-draft": nil,
			"bad-draft":  badDraft{},
		} {
			opts := opts
			opts.Speculative = true
			opts.DraftModel = draft
			spec, err := m.Generate(opts)
			if err != nil {
				t.Fatal(err)
			}
			tPlain, iaPlain, lenPlain := specMarginals(plain)
			tSpec, iaSpec, lenSpec := specMarginals(spec)
			var tv float64
			for _, typ := range m.Tok.Vocab() {
				tv += math.Abs(tPlain[typ] - tSpec[typ])
			}
			tv /= 2
			if tv > 0.02 {
				t.Fatalf("%s/%s: event-type marginal TV distance %v > 0.02", prec, name, tv)
			}
			if ks := stats.MaxYDistance(iaPlain, iaSpec); ks > 0.035 {
				t.Fatalf("%s/%s: interarrival KS distance %v > 0.035", prec, name, ks)
			}
			if ks := stats.MaxYDistance(lenPlain, lenSpec); ks > 0.07 {
				t.Fatalf("%s/%s: stream-length KS distance %v > 0.07", prec, name, ks)
			}
		}
	}
}

// badDraft is an adversarially mis-calibrated draft: a spiked event
// proposal and a narrow off-center interarrival proposal. Acceptance should
// crater; the output law must not move.
type badDraft struct{}

func (badDraft) NewDraftState() DraftState { return &badDraftState{} }

type badDraftState struct{}

func (*badDraftState) Reset(int)            {}
func (*badDraftState) Observe(int, float64) {}
func (*badDraftState) CopyFrom(DraftState)  {}
func (*badDraftState) Propose(evProbs []float64) {
	for i := range evProbs {
		evProbs[i] = 0.01 / float64(len(evProbs)-1)
	}
	evProbs[0] = 0.99
}
func (*badDraftState) ProposeIA(int) (float64, float64) { return 0.9, 0.06 }

// TestSpeculativeExactnessChiSquare is the per-position conditional
// exactness test: on a tiny model's REAL head outputs, the acceptance–
// rejection sampler's emitted values must match plain sampling's
// conditional distribution — chi-square over ≥10k samples for the event
// field (against exact softmax probabilities), a two-sample KS bound for
// the clamped-Gaussian interarrival field, and an exact frequency check for
// the stop field.
func TestSpeculativeExactnessChiSquare(t *testing.T) {
	m, d := specTestModel(t)
	// Real target conditionals: run a short prefix through the decoder.
	dec := m.NewBatchDecoder(1, F64)
	tok := make([]float64, m.Tok.Dim())
	m.Tok.writeToken(tok, 1, 0.3, 0)
	var h StepOut
	for step := 0; step < 3; step++ {
		h = dec.Step([]int{0}, tok)[0]
		m.Tok.writeToken(tok, (step+1)%m.Tok.V(), 0.2, 0)
	}
	// Real draft proposal: the n-gram fitted on the training data.
	draft := NewNGramDraft(d, m.Tok)
	ds := draft.NewDraftState()
	ds.Reset(1)
	qProbs := make([]float64, m.Tok.V())
	ds.Propose(qProbs)
	qMu, qSd := ds.ProposeIA(1)

	const trials = 20000
	rng := stats.NewRand(4242)
	p := make([]float64, m.Tok.V())
	softmaxInto(p, h.EventLogits, 1)

	// Event field: chi-square against the exact conditional pmf.
	obs := make([]float64, m.Tok.V())
	for i := 0; i < trials; i++ {
		evD := drawProbs(qProbs, rng)
		ev, _ := verifyEvent(evD, qProbs, p, rng)
		obs[ev]++
	}
	var chi2 float64
	df := 0
	for i := range p {
		e := p[i] * trials
		if e < 1e-9 {
			if obs[i] > 0 {
				t.Fatalf("event %d emitted %v times with target probability %v", i, obs[i], p[i])
			}
			continue
		}
		chi2 += (obs[i] - e) * (obs[i] - e) / e
		df++
	}
	// 99.9th percentile of chi-square at df ≤ 8 is < 26.1; the test is
	// deterministic (fixed seed), so a pass is stable.
	if chi2 > 26.1 {
		t.Fatalf("event field chi-square %.2f over %d trials (df %d): speculative sampler is not distribution-exact (p=%v obs=%v)",
			chi2, trials, df-1, p, obs)
	}

	// Interarrival field: two-sample KS between verified emissions and
	// direct target draws.
	pMu, pSd := h.IAMean, math.Exp(h.IALogStd)
	specIA := make([]float64, trials)
	directIA := make([]float64, trials)
	rngA, rngB := stats.NewRand(7), stats.NewRand(8)
	for i := 0; i < trials; i++ {
		iaD := clamp01(qMu + qSd*rngA.NormFloat64())
		specIA[i], _ = verifyIA(iaD, qMu, qSd, pMu, pSd, true, rngA)
		directIA[i] = clamp01(pMu + pSd*rngB.NormFloat64())
	}
	// Two-sample KS 99.9% critical value: 1.95·sqrt(2/n) ≈ 0.0195.
	if ks := stats.MaxYDistance(specIA, directIA); ks > 0.0195 {
		t.Fatalf("interarrival field KS %.4f over %d samples: residual sampling is biased", ks, trials)
	}

	// Stop field: the constant-continue proposal collapses to an exact
	// Bernoulli(p0) draw; check the frequency within 4 sigma.
	p0 := stopContinueProb(h.StopLogits, 1)
	var stops float64
	rngC := stats.NewRand(9)
	for i := 0; i < trials; i++ {
		if rngC.Float64() >= p0 {
			stops++
		}
	}
	want := (1 - p0) * trials
	sigma := math.Sqrt(trials * p0 * (1 - p0))
	if math.Abs(stops-want) > 4*sigma {
		t.Fatalf("stop field: %v stops, want %v ± %v", stops, want, 4*sigma)
	}
}

// TestVerifyEventResidual checks the categorical residual machinery on
// hand-built distributions, including zero-support proposals (q(x) = 0 on
// events the target likes must still emit them via the residual).
func TestVerifyEventResidual(t *testing.T) {
	p := []float64{0.5, 0.3, 0.2}
	q := []float64{1, 0, 0} // proposal never offers events 1 and 2
	rng := stats.NewRand(3)
	const trials = 30000
	obs := make([]float64, 3)
	for i := 0; i < trials; i++ {
		ev, _ := verifyEvent(0, q, p, rng)
		obs[ev]++
	}
	for i := range p {
		got := obs[i] / trials
		if math.Abs(got-p[i]) > 0.01 {
			t.Fatalf("event %d frequency %v, want %v", i, got, p[i])
		}
	}
}

// TestSpeculativeStatsCounters checks the Stats plumbing: a speculative run
// reports proposed/accepted counters with accepted ≤ proposed, and a good
// draft accepts a healthy share.
func TestSpeculativeStatsCounters(t *testing.T) {
	m, _ := specTestModel(t)
	var st DecodeStats
	if _, err := m.Generate(GenOpts{NumStreams: 60, Device: events.Phone, Seed: 3,
		Speculative: true, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.Steps == 0 || st.SlotSteps == 0 {
		t.Fatalf("no scheduling counters: %+v", st)
	}
	if st.DraftProposed == 0 {
		t.Fatalf("no draft proposals recorded: %+v", st)
	}
	if st.DraftAccepted < 0 || st.DraftAccepted > st.DraftProposed {
		t.Fatalf("accepted outside [0, proposed]: %+v", st)
	}
	rate := float64(st.DraftAccepted) / float64(st.DraftProposed)
	if rate < 0.05 {
		t.Fatalf("self-draft acceptance rate %.3f implausibly low: %+v", rate, st)
	}
	t.Logf("speculative stats: %+v (acceptance %.1f%%)", st, 100*rate)

	// Non-speculative runs must keep the draft counters at zero.
	var plain DecodeStats
	if _, err := m.Generate(GenOpts{NumStreams: 20, Device: events.Phone, Seed: 3, Stats: &plain}); err != nil {
		t.Fatal(err)
	}
	if plain.DraftProposed != 0 || plain.DraftAccepted != 0 {
		t.Fatalf("plain decode recorded draft counters: %+v", plain)
	}
}

// TestSpeculativeWithSMMDraft runs the end-to-end SMM-drafted path: fit the
// paper's semi-Markov baseline on the training data, adapt it as the draft,
// and require determinism plus marginal fidelity against plain decoding.
func TestSpeculativeWithSMMDraft(t *testing.T) {
	m, d := specTestModel(t)
	sm, err := smm.Fit(d, smm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	draft, err := NewSMMDraft(sm, m.Tok)
	if err != nil {
		t.Fatal(err)
	}
	var st DecodeStats
	opts := GenOpts{NumStreams: 300, Device: events.Phone, Seed: 11,
		Speculative: true, DraftModel: draft, Stats: &st}
	a, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Stats = nil
	b, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "smm-draft repeat", a.Streams, b.Streams)
	if st.DraftProposed == 0 {
		t.Fatal("SMM draft proposed nothing")
	}
	t.Logf("SMM draft acceptance: %.1f%%", 100*float64(st.DraftAccepted)/float64(st.DraftProposed))

	plain, err := m.Generate(GenOpts{NumStreams: 300, Device: events.Phone, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tPlain, _, lenPlain := specMarginals(plain)
	tSpec, _, lenSpec := specMarginals(a)
	var tv float64
	for _, typ := range m.Tok.Vocab() {
		tv += math.Abs(tPlain[typ] - tSpec[typ])
	}
	if tv /= 2; tv > 0.03 {
		t.Fatalf("SMM-draft event marginal TV %v > 0.03", tv)
	}
	if ks := stats.MaxYDistance(lenPlain, lenSpec); ks > 0.04 {
		t.Fatalf("SMM-draft stream-length KS %v > 0.04", ks)
	}
}

// TestSpeculativeNoDistHead covers the Table 8 ablation: with a
// deterministic interarrival head, chains cannot usefully extend (the
// point-mass target rejects almost every proposal) but output must stay
// correct and deterministic.
func TestSpeculativeNoDistHead(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	cfg := smallConfig()
	cfg.DistHead = false
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	opts := GenOpts{NumStreams: 40, Device: events.Tablet, Seed: 5, Speculative: true}
	a, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	sameStreams(t, "no-dist-head speculative", a.Streams, b.Streams)
	for i := range a.Streams {
		if n := len(a.Streams[i].Events); n < 1 || n > cfg.MaxLen {
			t.Fatalf("stream %d has %d events", i, n)
		}
	}
}

// TestNGramDraftProposals sanity-checks the fallback draft: proposals are
// normalized with full support (smoothing) and a positive IA spread.
func TestNGramDraftProposals(t *testing.T) {
	m, d := specTestModel(t)
	g := NewNGramDraft(d, m.Tok)
	st := g.NewDraftState()
	probs := make([]float64, m.Tok.V())
	st.Reset(0)
	for step := 0; step < 5; step++ {
		st.Propose(probs)
		var sum float64
		for _, p := range probs {
			if p <= 0 {
				t.Fatalf("step %d: zero-probability proposal %v (smoothing broken)", step, probs)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("step %d: proposal sums to %v", step, sum)
		}
		for ev := 0; ev < m.Tok.V(); ev++ {
			mu, sd := st.ProposeIA(ev)
			if sd < draftSigmaFloor || mu < -3 || mu > 4 || math.IsNaN(mu) {
				t.Fatalf("step %d event %d: bad IA proposal (%v, %v)", step, ev, mu, sd)
			}
		}
		st.Observe(step%m.Tok.V(), 0.4)
	}
	// Fork/CopyFrom round trip.
	other := g.NewDraftState()
	other.CopyFrom(st)
	a := make([]float64, m.Tok.V())
	b := make([]float64, m.Tok.V())
	st.Propose(a)
	other.Propose(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CopyFrom did not reproduce proposal state")
		}
	}
}

// TestSelfDraftCached pins the self-draft lifecycle: cached per model,
// dropped by InvalidateInfer.
func TestSelfDraftCached(t *testing.T) {
	m, _ := specTestModel(t)
	a := m.SelfDraft()
	if m.SelfDraft() != a {
		t.Fatal("SelfDraft must cache")
	}
	m.InvalidateInfer()
	if m.SelfDraft() == a {
		t.Fatal("InvalidateInfer must drop the cached draft")
	}
}
