package cptgpt

import (
	"math"
	"math/rand/v2"
	"testing"

	"cptgpt/internal/stats"
)

// sampleLogitsRef is the pre-optimization sampleLogitsInto, kept verbatim as
// the reference the micro-optimized version (max-shift hoisting, exp
// underflow early-exit, temp==1 division elision) must match bit-for-bit:
// same sampled index AND same RNG consumption for every input.
func sampleLogitsRef(logits []float64, temp float64, rng *rand.Rand, probs []float64) int {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v/temp > maxv {
			maxv = v / temp
		}
	}
	var sum float64
	probs = probs[:len(logits)]
	for i, v := range logits {
		p := math.Exp(v/temp - maxv)
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	for i, p := range probs {
		u -= p
		if u < 0 {
			return i
		}
	}
	return len(logits) - 1
}

// TestSampleLogitsIntoMatchesReference drives both implementations with
// identical RNG streams over adversarial logit vectors — dominated
// candidates deep in exp-underflow territory, ties, flat vectors, extreme
// temperatures — and requires identical sampled indices at every draw.
func TestSampleLogitsIntoMatchesReference(t *testing.T) {
	vectors := [][]float64{
		{0.3, -0.2},
		{1, 1, 1, 1, 1},
		{500, -500, -500, -500},         // dominated: all others underflow
		{-1000, -999.5, -1000.25},       // large magnitudes, small gaps
		{0, -800, 3, -1e6, 2.999999999}, // near-tie plus hard underflow
		{math.Inf(-1), 0, math.Inf(-1)}, // masked-out candidates
	}
	rngA := stats.NewRand(42)
	rngB := stats.NewRand(42)
	gen := stats.NewRand(7)
	for trial := 0; trial < 200; trial++ {
		n := 2 + gen.IntN(12)
		v := make([]float64, n)
		for i := range v {
			v[i] = gen.NormFloat64() * math.Pow(10, float64(gen.IntN(4)))
		}
		vectors = append(vectors, v)
	}
	probsA := make([]float64, 32)
	probsB := make([]float64, 32)
	for vi, v := range vectors {
		for _, temp := range []float64{1, 0.25, 0.7, 3} {
			for draw := 0; draw < 8; draw++ {
				want := sampleLogitsRef(v, temp, rngA, probsA)
				got := sampleLogitsInto(v, temp, rngB, probsB)
				if got != want {
					t.Fatalf("vector %d %v temp %v draw %d: sampled %d, reference %d", vi, v, temp, draw, got, want)
				}
			}
		}
	}
	// The two RNGs must remain in lockstep (same number of draws consumed).
	if a, b := rngA.Float64(), rngB.Float64(); a != b {
		t.Fatalf("RNG streams diverged: %v vs %v", a, b)
	}
}
