package cptgpt

import (
	"fmt"

	"cptgpt/internal/events"
	"cptgpt/internal/smm"
	"cptgpt/internal/statemachine"
)

// SMMDraft adapts a fitted semi-Markov baseline (internal/smm) into a
// speculative draft proposer: the SMM's per-state transition mixture
// proposes event types, and its per-transition log-sojourn moments —
// mapped affinely into the tokenizer's scaled interarrival space, which is
// exact for Gaussians because ScaleIA is affine in log1p(seconds) — propose
// interarrivals. The paper trains the SMM anyway as its domain-knowledge
// baseline, so the draft comes free; because the SMM walks the same 3GPP
// state machine the traffic obeys, its guesses track a trained CPT-GPT's
// conditionals closely where the machine constrains the future.
//
// The adapter tracks the machine state event by event. CPT-GPT may emit
// transitions the machine forbids (that freedom is the point of the paper);
// when that happens the draft marks the stream "lost" and falls back to the
// n-gram-style smoothed marginal until the next bootstrappable event
// re-anchors it. Draft quality only moves the acceptance rate — the
// speculative sampler keeps the output distribution exact regardless.
type SMMDraft struct {
	machine statemachine.Machine
	vocab   []events.Type
	// probs/iaMu/iaSd[st] are the per-state proposal tables in vocabulary-
	// index space (precomputed from sm.ProposeNext, uniform-smoothed).
	probs [][]float64
	iaMu  [][]float64
	iaSd  [][]float64
	// fallback is the uniform proposal used when state tracking is lost or
	// the state is absorbing in the fitted data.
	fallback []float64
}

// NewSMMDraft builds the adapter for a fitted SMM whose generation matches
// the tokenizer's.
func NewSMMDraft(sm *smm.Model, tok Tokenizer) (*SMMDraft, error) {
	if sm.Gen != tok.Gen {
		return nil, fmt.Errorf("cptgpt: SMM generation %s does not match tokenizer %s", sm.Gen, tok.Gen)
	}
	machine := statemachine.New(tok.Gen)
	vocab := tok.Vocab()
	v := len(vocab)
	states := machine.States()
	n := 0
	for _, st := range states {
		if int(st) >= n {
			n = int(st) + 1
		}
	}
	d := &SMMDraft{
		machine:  machine,
		vocab:    vocab,
		probs:    make([][]float64, n),
		iaMu:     make([][]float64, n),
		iaSd:     make([][]float64, n),
		fallback: make([]float64, v),
	}
	for i := range d.fallback {
		d.fallback[i] = 1 / float64(v)
	}
	rng := tok.MaxLog - tok.MinLog
	for _, st := range states {
		p, ok := sm.ProposeNext(st)
		if !ok {
			continue
		}
		probs := make([]float64, v)
		mu := make([]float64, v)
		sd := make([]float64, v)
		for i := range mu {
			mu[i], sd[i] = 0.5, 0.5 // defaults for never-proposed events
		}
		for j, e := range p.Events {
			idx := events.VocabIndex(tok.Gen, e)
			if idx < 0 {
				continue
			}
			probs[idx] = p.Probs[j]
			// Affine map from log1p-seconds moments into scaled space:
			// scaled = (log1p(x) − MinLog) / (MaxLog − MinLog).
			m := (p.SojournLogMean[j] - tok.MinLog) / rng
			s := p.SojournLogStd[j] / rng
			mu[idx] = clamp01(m)
			if s < draftSigmaFloor {
				s = draftSigmaFloor
			}
			sd[idx] = s
		}
		// Uniform smoothing: bound the acceptance cost of support gaps.
		for i := range probs {
			probs[i] = (1-draftUniformMix)*probs[i] + draftUniformMix/float64(v)
		}
		d.probs[st] = probs
		d.iaMu[st] = mu
		d.iaSd[st] = sd
	}
	return d, nil
}

// clamp01 clamps into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// NewDraftState returns a fresh machine-tracking state.
func (d *SMMDraft) NewDraftState() DraftState { return &smmState{d: d, lost: true} }

// smmState walks the 3GPP machine along the emitted event sequence.
type smmState struct {
	d    *SMMDraft
	st   statemachine.State
	lost bool
}

func (s *smmState) Reset(eventIdx int) {
	s.sync(eventIdx)
}

func (s *smmState) Observe(eventIdx int, _ float64) {
	if s.lost {
		s.sync(eventIdx)
		return
	}
	if next, ok := s.d.machine.Step(s.st, s.d.vocab[eventIdx]); ok {
		s.st = next
		return
	}
	// Semantically invalid emission: try to re-anchor, else mark lost.
	s.sync(eventIdx)
}

// sync re-anchors the machine state from a single event via Bootstrap.
func (s *smmState) sync(eventIdx int) {
	if eventIdx >= 0 && eventIdx < len(s.d.vocab) {
		if st, ok := s.d.machine.Bootstrap(s.d.vocab[eventIdx]); ok {
			s.st, s.lost = st, false
			return
		}
	}
	s.lost = true
}

func (s *smmState) Propose(evProbs []float64) {
	d := s.d
	if !s.lost && int(s.st) < len(d.probs) && d.probs[s.st] != nil {
		copy(evProbs[:len(d.fallback)], d.probs[s.st])
		return
	}
	copy(evProbs[:len(d.fallback)], d.fallback)
}

func (s *smmState) ProposeIA(eventIdx int) (float64, float64) {
	d := s.d
	if !s.lost && int(s.st) < len(d.iaMu) && d.iaMu[s.st] != nil &&
		eventIdx >= 0 && eventIdx < len(d.iaMu[s.st]) {
		return d.iaMu[s.st][eventIdx], d.iaSd[s.st][eventIdx]
	}
	return 0.5, 0.5
}

func (s *smmState) CopyFrom(src DraftState) {
	o, ok := src.(*smmState)
	if !ok {
		panic(fmt.Sprintf("cptgpt: smmState.CopyFrom(%T)", src))
	}
	*s = *o
}
