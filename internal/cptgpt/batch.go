package cptgpt

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"cptgpt/internal/telemetry"
	"cptgpt/internal/tensor"
	"cptgpt/internal/tracez"
)

// DefaultBatchSize is the number of UE streams a BatchDecoder steps per
// batch when GenOpts.BatchSize is unset. Batching amortizes scheduling
// and cache traffic across streams; the per-stream math is unchanged.
const DefaultBatchSize = 32

// BatchDecoder steps up to capacity independent UE streams through the
// transformer. All per-stream state lives in shared contiguous buffers:
// in the F64 reference path the key/value cache of block b is one slot-major
// slice of capacity × MaxLen × DModel values; in the F32 fast path the whole
// cache is a single contiguous float32 arena (blocks × slots × MaxLen rows
// of interleaved [K|V]), so stepping N streams touches N adjacent cache
// regions instead of N scattered per-stream decoders.
//
// In the F64 path each slot runs exactly the same row kernels as the serial
// decoder (linearRowInto, layerNormRow, attendRow, mlpRowInto) over its own
// slice of the shared buffers, and slots never read each other's state.
// Output is therefore bit-identical to decoding every stream alone,
// regardless of how many worker goroutines the step fans out over — the
// property the determinism tests pin down. The F32 path runs the fused
// float32 kernels of infer32.go over the frozen InferModel snapshot; it is
// deterministic per seed but not bit-compatible with F64.
//
// Slot-reset contract (continuous batching): a slot's KV-cache rows and
// score/accumulator scratch are meaningful only for positions < Pos(slot).
// ResetSlot rewinds one slot to position 0, making all of its prior cache
// contents unreachable — no zeroing needed — so a finished stream's slot can
// be refilled with a fresh stream mid-batch while other slots keep decoding
// at their own positions. Reset is ResetSlot over every slot.
type BatchDecoder struct {
	m        *Model
	prec     Precision
	inf      *InferModel // frozen f32 snapshot; non-nil iff prec == F32
	capacity int
	pos      []int // per-slot position

	// Lifetime counters (see Stats). Atomics: Step/StepK run on the
	// decoder's owning goroutine, but Stats may be read concurrently by a
	// monitor (and Generate aggregates worker decoders' counters while the
	// race detector watches), so every access is atomic.
	steps, slotSteps             atomic.Int64
	draftProposed, draftAccepted atomic.Int64

	// stepHist, when set, observes each Step/StepK wall duration in
	// seconds (see SetStepHist). Lock-free, so decoders on different
	// workers may share one histogram.
	stepHist *telemetry.Histogram

	// Multi-token (StepK) state: kMax is the per-slot row capacity the K
	// buffers are sized for, grown on demand by ensureK.
	kMax  int
	outsK [][]StepOut
	// Per-(slot, row) widened head outputs: capacity × kMax × width.
	evOutK, iaOutK, stopOutK []float64
	// F32 multi-token scratch: capacity × kMax × width.
	tokK32, xK32, qK32, kK32, vK32, attK32, tmpK32 []float32
	ffK32, hidK32, hidK232                         []float32
	evOutK32, iaOutK32, stopOutK32                 []float32

	// F64 state. kc/vc hold, per block, the shared KV cache: slot-major,
	// each slot owning MaxLen × DModel values.
	kc, vc [][]float64

	// Slot-major f64 scratch; slot i uses rows [i*width, (i+1)*width).
	x, q, k, v, att, tmp []float64 // capacity × DModel
	ff                   []float64 // capacity × MLPHidden
	scores               []float64 // capacity × MaxLen
	hid, hid2            []float64 // capacity × widest head layer

	// F32 state. kv32 is the contiguous KV arena: block-major, each
	// (block, slot) pair owning MaxLen rows of 2×DModel interleaved [K|V]
	// values (half the bytes of the f64 cache).
	kv32                        []float32
	tok32                       []float32 // capacity × Dim
	x32, q32, k32, v32          []float32 // capacity × DModel
	att32, tmp32                []float32 // capacity × DModel
	ff32                        []float32 // capacity × MLPHidden
	mAcc32, lAcc32              []float32 // capacity × Heads (online softmax)
	hid32, hid232               []float32 // capacity × widest head layer
	evOut32, iaOut32, stopOut32 []float32 // capacity × head widths

	// Head outputs (both precisions; the f32 path widens into these so
	// StepOut and the sampling loop are precision-agnostic).
	evOut   []float64 // capacity × V
	iaOut   []float64 // capacity × (1 or 2)
	stopOut []float64 // capacity × 2
	outs    []StepOut // capacity
}

// NewBatchDecoder creates a decoder that can step up to capacity streams at
// the given precision (F64: bit-exact reference; F32: fused float32 fast
// path over the model's frozen Infer snapshot). The decoder is reusable
// across batches via Reset/ResetSlot.
func (m *Model) NewBatchDecoder(capacity int, prec Precision) *BatchDecoder {
	if capacity < 1 {
		panic(fmt.Sprintf("cptgpt: BatchDecoder capacity must be ≥ 1, got %d", capacity))
	}
	dm := m.Cfg.DModel
	d := &BatchDecoder{m: m, prec: prec, capacity: capacity}
	d.pos = make([]int, capacity)
	hw := headHiddenMax(m)
	iaW := m.IAHd.Layers[len(m.IAHd.Layers)-1].W.Cols
	switch prec {
	case F32:
		d.inf = m.Infer()
		d.kv32 = make([]float32, len(m.BlocksNN)*capacity*m.Cfg.MaxLen*2*dm)
		d.tok32 = make([]float32, capacity*m.Tok.Dim())
		d.x32 = make([]float32, capacity*dm)
		d.q32 = make([]float32, capacity*dm)
		d.k32 = make([]float32, capacity*dm)
		d.v32 = make([]float32, capacity*dm)
		d.att32 = make([]float32, capacity*dm)
		d.tmp32 = make([]float32, capacity*dm)
		d.ff32 = make([]float32, capacity*m.Cfg.MLPHidden)
		d.mAcc32 = make([]float32, capacity*m.Cfg.Heads)
		d.lAcc32 = make([]float32, capacity*m.Cfg.Heads)
		d.hid32 = make([]float32, capacity*hw)
		d.hid232 = make([]float32, capacity*hw)
		d.evOut32 = make([]float32, capacity*m.Tok.V())
		d.iaOut32 = make([]float32, capacity*iaW)
		d.stopOut32 = make([]float32, capacity*2)
	default:
		d.kc = make([][]float64, len(m.BlocksNN))
		d.vc = make([][]float64, len(m.BlocksNN))
		for i := range d.kc {
			d.kc[i] = make([]float64, capacity*m.Cfg.MaxLen*dm)
			d.vc[i] = make([]float64, capacity*m.Cfg.MaxLen*dm)
		}
		d.x = make([]float64, capacity*dm)
		d.q = make([]float64, capacity*dm)
		d.k = make([]float64, capacity*dm)
		d.v = make([]float64, capacity*dm)
		d.att = make([]float64, capacity*dm)
		d.tmp = make([]float64, capacity*dm)
		d.ff = make([]float64, capacity*m.Cfg.MLPHidden)
		d.scores = make([]float64, capacity*m.Cfg.MaxLen)
		d.hid = make([]float64, capacity*hw)
		d.hid2 = make([]float64, capacity*hw)
	}
	d.evOut = make([]float64, capacity*m.Tok.V())
	d.iaOut = make([]float64, capacity*iaW)
	d.stopOut = make([]float64, capacity*2)
	d.outs = make([]StepOut, capacity)
	return d
}

// Capacity returns the number of decode slots.
func (d *BatchDecoder) Capacity() int { return d.capacity }

// Precision returns the decoder's arithmetic mode.
func (d *BatchDecoder) Precision() Precision { return d.prec }

// Pos returns slot's current position (tokens consumed).
func (d *BatchDecoder) Pos(slot int) int { return d.pos[slot] }

// Reset rewinds every slot to position 0, keeping all allocations. See the
// slot-reset contract in the type documentation: rewinding a position makes
// the slot's cached keys/values unreachable, so no buffer is cleared.
func (d *BatchDecoder) Reset() {
	for i := range d.pos {
		d.pos[i] = 0
	}
}

// ResetSlot rewinds a single slot to position 0 so continuous batching can
// seat a new stream in it while the other slots keep decoding. The slot's
// KV rows, scores and accumulators above position 0 become stale garbage
// that the next stream overwrites position by position — they are never
// read, because every kernel is bounded by the slot's own pos.
func (d *BatchDecoder) ResetSlot(slot int) { d.pos[slot] = 0 }

// TruncateSlot rewinds a slot to position pos < Pos(slot), discarding the
// cached keys/values above it under the same slot-reset contract as
// ResetSlot (stale rows are unreachable, never cleared). Speculative
// decoding uses this to drop the draft-chain suffix after the first
// rejected position: the accepted prefix's cache rows stay valid, and the
// resampled token is consumed on the next verify pass.
func (d *BatchDecoder) TruncateSlot(slot, pos int) {
	if pos < 0 || pos > d.pos[slot] {
		panic(fmt.Sprintf("cptgpt: TruncateSlot(%d, %d) outside [0, %d]", slot, pos, d.pos[slot]))
	}
	d.pos[slot] = pos
}

// DecodeStats is a snapshot of a BatchDecoder's lifetime counters.
//
// Steps counts Step/StepK calls and SlotSteps the slot-tokens decoded across
// them; SlotSteps / (Steps × Capacity × rows-per-slot) is the slot
// utilization continuous batching keeps near 1 on skewed stream-length
// populations. DraftProposed and DraftAccepted count speculative draft
// tokens offered to and fully accepted by the verify pass (zero outside
// speculative decoding); DraftAccepted / DraftProposed is the acceptance
// rate — the fraction of verify positions that became emitted tokens, the
// currency a draft model is judged in.
type DecodeStats struct {
	Steps, SlotSteps             int64
	DraftProposed, DraftAccepted int64
}

// Load atomically snapshots a DecodeStats that other goroutines are still
// accumulating into (a GenOpts.Stats sink mid-generation). Each field is
// read atomically; the fields may be mid-update relative to one another.
func (s *DecodeStats) Load() DecodeStats {
	return DecodeStats{
		Steps:         atomic.LoadInt64(&s.Steps),
		SlotSteps:     atomic.LoadInt64(&s.SlotSteps),
		DraftProposed: atomic.LoadInt64(&s.DraftProposed),
		DraftAccepted: atomic.LoadInt64(&s.DraftAccepted),
	}
}

// Stats returns a consistent-enough snapshot of the decoder's lifetime
// counters. It is safe to call concurrently with Step/StepK (each counter is
// read atomically; the counters may be mid-update relative to one another).
func (d *BatchDecoder) Stats() DecodeStats {
	return DecodeStats{
		Steps:         d.steps.Load(),
		SlotSteps:     d.slotSteps.Load(),
		DraftProposed: d.draftProposed.Load(),
		DraftAccepted: d.draftAccepted.Load(),
	}
}

// SetStepHist attaches a lock-free duration histogram that observes every
// Step/StepK wall time in seconds (nil detaches). The histogram's own
// accounting is atomic, so the samplers' worker decoders can all share the
// caller's one instrument. When unset, Step/StepK take no timestamps.
func (d *BatchDecoder) SetStepHist(h *telemetry.Histogram) { d.stepHist = h }

// countDraft accumulates speculative proposal/acceptance counts (called by
// the speculative sampler after each verify pass).
func (d *BatchDecoder) countDraft(proposed, accepted int64) {
	d.draftProposed.Add(proposed)
	d.draftAccepted.Add(accepted)
}

// stepCost estimates the multiply-adds of one stream's decode step, used to
// decide whether a batch is worth fanning out across the worker pool.
func (d *BatchDecoder) stepCost() int {
	dm := d.m.Cfg.DModel
	return len(d.m.BlocksNN) * (4*dm*dm + 2*dm*d.m.Cfg.MLPHidden)
}

// Step advances each listed slot by one token and returns the head outputs,
// one StepOut per slot in slots order. tokens is the slot-major token
// buffer: slot s reads tokens[s*Dim() : (s+1)*Dim()]. The returned slice
// and the EventLogits inside it alias decoder-owned scratch, valid only
// until the next Step.
//
// Slots are processed independently (fanned out over the tensor worker
// pool), each at its own position — continuous batching mixes fresh and
// deep slots freely — and a slot panics past MaxLen exactly like the serial
// decoder.
func (d *BatchDecoder) Step(slots []int, tokens []float64) []StepOut {
	sp := tracez.Begin(tracez.StageDecodeStep, "")
	var t0 time.Time
	if d.stepHist != nil {
		t0 = time.Now()
	}
	d.steps.Add(1)
	d.slotSteps.Add(int64(len(slots)))
	f32 := d.prec == F32
	tensor.ParallelFor(len(slots), d.stepCost(), func(lo, hi int) {
		if f32 {
			// The f32 fast path advances its shard of slots as one group
			// through weight-block-outer kernels: every weight panel is
			// streamed from memory once per group instead of once per slot,
			// which is the economy of scale that makes a full (continuously
			// refilled) batch cheaper per token than a drained one.
			d.stepGroupF32(slots, lo, hi, tokens)
			return
		}
		for i := lo; i < hi; i++ {
			d.stepSlotF64(i, slots[i], tokens)
		}
	})
	if d.stepHist != nil {
		d.stepHist.Observe(time.Since(t0).Seconds())
	}
	sp.End(int64(len(slots)), "")
	return d.outs[:len(slots)]
}

// stepSlotF64 advances one slot through the float64 reference kernels,
// writing d.outs[i]. It is the exact per-slot body the lockstep decoder has
// always run (bit-identical to the serial decoder in infer.go).
func (d *BatchDecoder) stepSlotF64(i, slot int, tokens []float64) {
	dim := d.m.Tok.Dim()
	v := d.m.Tok.V()
	iaW := len(d.iaOut) / d.capacity
	evOut := d.evOut[slot*v : (slot+1)*v]
	iaOut := d.iaOut[slot*iaW : (slot+1)*iaW]
	stopOut := d.stopOut[slot*2 : (slot+1)*2]
	d.decodeRowF64(slot, tokens[slot*dim:(slot+1)*dim], evOut, iaOut, stopOut)
	d.fillOut(i, slot, evOut, iaOut, stopOut)
}

// decodeRowF64 consumes one token for a slot through the float64 reference
// kernels — the shared row body of Step and the multi-token StepK — writing
// the three head outputs into the caller's buffers and advancing the slot's
// position. Identical calls produce identical bits regardless of which slots
// share the batch: every kernel touches only this slot's cache and scratch
// regions.
func (d *BatchDecoder) decodeRowF64(slot int, token, evOut, iaOut, stopOut []float64) {
	m := d.m
	dm := m.Cfg.DModel
	maxLen := m.Cfg.MaxLen
	hw := len(d.hid) / d.capacity

	pos := d.pos[slot]
	if pos >= maxLen {
		panic("cptgpt: BatchDecoder stepped past MaxLen")
	}
	x := d.x[slot*dm : (slot+1)*dm]
	q := d.q[slot*dm : (slot+1)*dm]
	k := d.k[slot*dm : (slot+1)*dm]
	vv := d.v[slot*dm : (slot+1)*dm]
	att := d.att[slot*dm : (slot+1)*dm]
	tmp := d.tmp[slot*dm : (slot+1)*dm]
	ff := d.ff[slot*m.Cfg.MLPHidden : (slot+1)*m.Cfg.MLPHidden]
	scores := d.scores[slot*maxLen : (slot+1)*maxLen]
	hid := d.hid[slot*hw : (slot+1)*hw]
	hid2 := d.hid2[slot*hw : (slot+1)*hw]

	// Token projection + positional embedding.
	linearRowInto(x, token, m.InProj)
	pe := m.PosEmb.Data[pos*dm : (pos+1)*dm]
	for j := range x {
		x[j] += pe[j]
	}

	for bi, b := range m.BlocksNN {
		// Attention sub-layer (pre-norm, residual) over this slot's
		// contiguous region of the shared cache.
		cacheLo := slot * maxLen * dm
		kc := d.kc[bi][cacheLo : cacheLo+(pos+1)*dm]
		vc := d.vc[bi][cacheLo : cacheLo+(pos+1)*dm]
		layerNormRow(tmp, x, b.LN1)
		linearRowInto(q, tmp, b.Attn.Wq)
		linearRowInto(k, tmp, b.Attn.Wk)
		linearRowInto(vv, tmp, b.Attn.Wv)
		copy(kc[pos*dm:], k)
		copy(vc[pos*dm:], vv)
		attendRow(att, q, kc, vc, pos+1, b.Attn.Heads, dm, scores)
		linearRowInto(tmp, att, b.Attn.Wo)
		for j := range x {
			x[j] += tmp[j]
		}

		// Feed-forward sub-layer (pre-norm, residual).
		layerNormRow(tmp, x, b.LN2)
		linearRowInto(ff, tmp, b.FF.In)
		for j := range ff {
			ff[j] = gelu(ff[j])
		}
		linearRowInto(tmp, ff, b.FF.Out)
		for j := range x {
			x[j] += tmp[j]
		}
	}

	layerNormRow(tmp, x, m.Final)

	mlpRowInto(evOut, hid, hid2, tmp, m.EventHd)
	mlpRowInto(iaOut, hid, hid2, tmp, m.IAHd)
	mlpRowInto(stopOut, hid, hid2, tmp, m.StopHd)

	d.pos[slot] = pos + 1
}

// stepGroupF32 advances slots[lo:hi] as one group through the fused float32
// kernels over the frozen InferModel snapshot, widening the head outputs
// into the shared float64 StepOut buffers (widening is exact, so sampling
// sees precisely the float32 results).
//
// The group runs phase-lockstep: every linear layer executes as a group
// matvec with the weight block as the outer loop, so the full weight set is
// streamed from memory once per group and shard instead of once per slot;
// per-row operations (layer norm, the online-softmax attention over each
// slot's own KV region, residual adds) run slot by slot. Per-slot results
// are bit-identical no matter how slots are grouped — each row's reduction
// order is fixed — which keeps F32 decoding deterministic at every
// parallelism and batch composition.
func (d *BatchDecoder) stepGroupF32(slots []int, lo, hi int, tokens []float64) {
	m := d.m
	inf := d.inf
	dm := m.Cfg.DModel
	dim := m.Tok.Dim()
	maxLen := m.Cfg.MaxLen
	heads := m.Cfg.Heads
	v := m.Tok.V()
	mlpH := m.Cfg.MLPHidden
	hw := len(d.hid32) / d.capacity
	iaW := len(d.iaOut) / d.capacity
	group := slots[lo:hi]

	// Token intake + positional embedding (per slot; panics before any
	// group work if a slot was stepped past MaxLen without a reset).
	for _, slot := range group {
		if d.pos[slot] >= maxLen {
			panic("cptgpt: BatchDecoder stepped past MaxLen")
		}
		tensor.F32From(d.tok32[slot*dim:(slot+1)*dim], tokens[slot*dim:(slot+1)*dim])
	}
	tensor.MatVecGroupF32(d.x32, dm, inf.inProj.WT, inf.inProj.B, d.tok32, dim, dim, dm, group)
	for _, slot := range group {
		x := d.x32[slot*dm : (slot+1)*dm]
		pe := inf.posEmb[d.pos[slot]*dm : (d.pos[slot]+1)*dm]
		for j := range x {
			x[j] += pe[j]
		}
	}

	stride := 2 * dm
	slotKV := maxLen * stride
	for bi := range inf.blocks {
		b := &inf.blocks[bi]
		// Attention sub-layer (pre-norm, residual): project Q/K/V for the
		// whole group, land K/V in each slot's interleaved arena row, then
		// one fused online-softmax pass per slot over its own cache.
		for _, slot := range group {
			layerNormRowF32(d.tmp32[slot*dm:(slot+1)*dm], d.x32[slot*dm:(slot+1)*dm], &b.ln1)
		}
		tensor.MatVecGroupF32(d.q32, dm, b.wq.WT, b.wq.B, d.tmp32, dm, dm, dm, group)
		tensor.MatVecGroupF32(d.k32, dm, b.wk.WT, b.wk.B, d.tmp32, dm, dm, dm, group)
		tensor.MatVecGroupF32(d.v32, dm, b.wv.WT, b.wv.B, d.tmp32, dm, dm, dm, group)
		for _, slot := range group {
			pos := d.pos[slot]
			kv := d.kv32[(bi*d.capacity+slot)*slotKV : (bi*d.capacity+slot+1)*slotKV]
			kvRow := kv[pos*stride : (pos+1)*stride]
			copy(kvRow[:dm], d.k32[slot*dm:(slot+1)*dm])
			copy(kvRow[dm:], d.v32[slot*dm:(slot+1)*dm])
			attendRowF32(d.att32[slot*dm:(slot+1)*dm], d.q32[slot*dm:(slot+1)*dm], kv,
				pos+1, b.heads, dm, d.mAcc32[slot*heads:(slot+1)*heads], d.lAcc32[slot*heads:(slot+1)*heads])
		}
		tensor.MatVecGroupF32(d.tmp32, dm, b.wo.WT, b.wo.B, d.att32, dm, dm, dm, group)
		for _, slot := range group {
			x := d.x32[slot*dm : (slot+1)*dm]
			tmp := d.tmp32[slot*dm : (slot+1)*dm]
			for j := range x {
				x[j] += tmp[j]
			}
		}

		// Feed-forward sub-layer (pre-norm, residual): up-projection and
		// GELU fused, both projections amortizing weights over the group.
		for _, slot := range group {
			layerNormRowF32(d.tmp32[slot*dm:(slot+1)*dm], d.x32[slot*dm:(slot+1)*dm], &b.ln2)
		}
		ffGeluGroupF32(d.ff32, mlpH, &b.ffIn, d.tmp32, dm, group)
		tensor.MatVecGroupF32(d.tmp32, dm, b.ffOut.WT, b.ffOut.B, d.ff32, mlpH, mlpH, dm, group)
		for _, slot := range group {
			x := d.x32[slot*dm : (slot+1)*dm]
			tmp := d.tmp32[slot*dm : (slot+1)*dm]
			for j := range x {
				x[j] += tmp[j]
			}
		}
	}

	for _, slot := range group {
		layerNormRowF32(d.tmp32[slot*dm:(slot+1)*dm], d.x32[slot*dm:(slot+1)*dm], &inf.final)
	}
	mlpGroupF32(d.evOut32, v, d.hid32, d.hid232, hw, d.tmp32, dm, &inf.eventHd, group)
	mlpGroupF32(d.iaOut32, iaW, d.hid32, d.hid232, hw, d.tmp32, dm, &inf.iaHd, group)
	mlpGroupF32(d.stopOut32, 2, d.hid32, d.hid232, hw, d.tmp32, dm, &inf.stopHd, group)

	for i := lo; i < hi; i++ {
		slot := slots[i]
		evOut := d.evOut[slot*v : (slot+1)*v]
		iaOut := d.iaOut[slot*iaW : (slot+1)*iaW]
		stopOut := d.stopOut[slot*2 : (slot+1)*2]
		for j, val := range d.evOut32[slot*v : (slot+1)*v] {
			evOut[j] = float64(val)
		}
		for j, val := range d.iaOut32[slot*iaW : (slot+1)*iaW] {
			iaOut[j] = float64(val)
		}
		for j, val := range d.stopOut32[slot*2 : (slot+1)*2] {
			stopOut[j] = float64(val)
		}
		d.fillOut(i, slot, evOut, iaOut, stopOut)
		d.pos[slot]++
	}
}

// fillOut assembles d.outs[i] from a slot's head-output regions (shared tail
// of both precision paths).
func (d *BatchDecoder) fillOut(i, slot int, evOut, iaOut, stopOut []float64) {
	fillStepOut(&d.outs[i], d.m.Cfg.DistHead, evOut, iaOut, stopOut)
}

// fillStepOut assembles one StepOut from head-output regions.
func fillStepOut(out *StepOut, distHead bool, evOut, iaOut, stopOut []float64) {
	out.EventLogits = evOut
	out.IAMean = iaOut[0]
	if distHead {
		out.IALogStd = math.Min(math.Max(iaOut[1], -6), 2)
	} else {
		out.IALogStd = math.NaN()
	}
	out.StopLogits = [2]float64{stopOut[0], stopOut[1]}
}

// ensureK sizes the multi-token buffers for up to kMax rows per slot. Grow-
// only: the first StepK of a Generate run allocates, steady state reuses.
func (d *BatchDecoder) ensureK(kMax int) {
	if kMax <= d.kMax {
		return
	}
	m := d.m
	c := d.capacity
	v := m.Tok.V()
	iaW := m.IAHd.Layers[len(m.IAHd.Layers)-1].W.Cols
	d.kMax = kMax
	d.outsK = make([][]StepOut, c)
	flat := make([]StepOut, c*kMax)
	for s := range d.outsK {
		d.outsK[s] = flat[s*kMax : (s+1)*kMax]
	}
	d.evOutK = make([]float64, c*kMax*v)
	d.iaOutK = make([]float64, c*kMax*iaW)
	d.stopOutK = make([]float64, c*kMax*2)
	if d.prec == F32 {
		dm := m.Cfg.DModel
		hw := len(d.hid32) / c
		d.tokK32 = make([]float32, c*kMax*m.Tok.Dim())
		d.xK32 = make([]float32, c*kMax*dm)
		d.qK32 = make([]float32, c*kMax*dm)
		d.kK32 = make([]float32, c*kMax*dm)
		d.vK32 = make([]float32, c*kMax*dm)
		d.attK32 = make([]float32, c*kMax*dm)
		d.tmpK32 = make([]float32, c*kMax*dm)
		d.ffK32 = make([]float32, c*kMax*m.Cfg.MLPHidden)
		d.hidK32 = make([]float32, c*kMax*hw)
		d.hidK232 = make([]float32, c*kMax*hw)
		d.evOutK32 = make([]float32, c*kMax*v)
		d.iaOutK32 = make([]float32, c*kMax*iaW)
		d.stopOutK32 = make([]float32, c*kMax*2)
	}
}

// StepK is the multi-token verify / batched prefill kernel: it advances each
// listed slot by ks[i] tokens in one pass, appending every token's keys and
// values to the slot's cache and returning the head outputs after each
// position — outsK[i][r] is the model's conditional after slot slots[i]
// consumed its rows 0..r. tokens is slot-major with kMax rows per slot: slot
// s's row r is tokens[(s*kMax+r)*Dim() : ...+Dim()].
//
// Because every consumed token is given up front, the pass is prefill-shaped
// rather than decode-shaped: on the F32 path each layer runs as a k-row GEMM
// per slot (tensor.GemmF32 — the AVX2 kernel where available), streaming
// each weight panel once per slot group instead of once per token, which is
// the speculative-decoding throughput headline. Causality is preserved
// position by position: row r's attention sees exactly the cache up to row
// r, so outputs equal stepping the same tokens one Step at a time — bit-
// identical on the F64 path and on the F32 path with the scalar GEMM
// fallback; within float32 rounding with the assembly GEMM (whose wider
// reduction order trades bit-compatibility for ~5× the matvec throughput).
//
// Per-slot results are independent of which slots share the pass and of the
// worker fan-out, so speculative decoding inherits the determinism contract.
// The returned slices alias decoder-owned scratch, valid until the next
// Step/StepK. Speculative rejection rewinds a slot's suffix via
// TruncateSlot; the same kernel prefills prompted generation by feeding the
// prompt's tokens as one chain.
func (d *BatchDecoder) StepK(slots []int, ks []int, kMax int, tokens []float64) [][]StepOut {
	if len(ks) != len(slots) {
		panic(fmt.Sprintf("cptgpt: StepK with %d slots but %d row counts", len(slots), len(ks)))
	}
	var total int64
	for i, k := range ks {
		if k < 1 || k > kMax {
			panic(fmt.Sprintf("cptgpt: StepK slot %d rows %d outside [1, %d]", slots[i], k, kMax))
		}
		total += int64(k)
	}
	d.ensureK(kMax)
	sp := tracez.Begin(tracez.StageDecodeStepK, "")
	var t0 time.Time
	if d.stepHist != nil {
		t0 = time.Now()
	}
	d.steps.Add(1)
	d.slotSteps.Add(total)
	f32 := d.prec == F32
	tensor.ParallelFor(len(slots), d.stepCost()*kMax, func(lo, hi int) {
		if f32 {
			d.stepGroupF32K(slots, ks, lo, hi, kMax, tokens)
			return
		}
		for i := lo; i < hi; i++ {
			d.stepSlotF64K(i, slots[i], ks[i], kMax, tokens)
		}
	})
	if d.stepHist != nil {
		d.stepHist.Observe(time.Since(t0).Seconds())
	}
	sp.End(total, "")
	return d.outsK[:len(slots)]
}

// stepSlotF64K runs one slot's k rows through the float64 reference row body
// — the same kernels, in the same order, as k successive Steps, so the
// outputs are bit-identical to single-token stepping.
func (d *BatchDecoder) stepSlotF64K(i, slot, k, kMax int, tokens []float64) {
	m := d.m
	dim := m.Tok.Dim()
	v := m.Tok.V()
	iaW := len(d.iaOut) / d.capacity
	outs := d.outsK[i][:k]
	for r := 0; r < k; r++ {
		row := slot*kMax + r
		evOut := d.evOutK[row*v : (row+1)*v]
		iaOut := d.iaOutK[row*iaW : (row+1)*iaW]
		stopOut := d.stopOutK[row*2 : (row+1)*2]
		d.decodeRowF64(slot, tokens[row*dim:(row+1)*dim], evOut, iaOut, stopOut)
		fillStepOut(&outs[r], m.Cfg.DistHead, evOut, iaOut, stopOut)
	}
}
