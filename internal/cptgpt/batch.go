package cptgpt

import (
	"fmt"
	"math"

	"cptgpt/internal/tensor"
)

// DefaultBatchSize is the number of UE streams a BatchDecoder steps in
// lockstep when GenOpts.BatchSize is unset. Batching amortizes scheduling
// and cache traffic across streams; the per-stream math is unchanged.
const DefaultBatchSize = 32

// BatchDecoder steps up to capacity independent UE streams in lockstep
// through the transformer. All per-stream state lives in shared contiguous
// buffers: the key/value cache of block b is one slot-major slice of
// capacity × MaxLen × DModel values, so stepping N streams touches N
// adjacent cache regions instead of N scattered per-stream decoders.
//
// Each slot runs exactly the same row kernels as the serial decoder
// (linearRowInto, layerNormRow, attendRow, mlpRowInto) over its own slice of
// the shared buffers, and slots never read each other's state. Output is
// therefore bit-identical to decoding every stream alone, regardless of how
// many worker goroutines the step fans out over — the property the
// determinism tests pin down.
type BatchDecoder struct {
	m        *Model
	capacity int
	pos      []int // per-slot position

	// kc/vc hold, per block, the shared KV cache: slot-major, each slot
	// owning MaxLen × DModel values.
	kc, vc [][]float64

	// Slot-major scratch; slot i uses rows [i*width, (i+1)*width).
	x, q, k, v, att, tmp []float64 // capacity × DModel
	ff                   []float64 // capacity × MLPHidden
	scores               []float64 // capacity × MaxLen
	hid, hid2            []float64 // capacity × widest head layer
	evOut                []float64 // capacity × V
	iaOut                []float64 // capacity × (1 or 2)
	stopOut              []float64 // capacity × 2
	outs                 []StepOut // capacity
}

// NewBatchDecoder creates a decoder that can step up to capacity streams in
// lockstep. The decoder is reusable across batches via Reset.
func (m *Model) NewBatchDecoder(capacity int) *BatchDecoder {
	if capacity < 1 {
		panic(fmt.Sprintf("cptgpt: BatchDecoder capacity must be ≥ 1, got %d", capacity))
	}
	dm := m.Cfg.DModel
	d := &BatchDecoder{m: m, capacity: capacity}
	d.pos = make([]int, capacity)
	d.kc = make([][]float64, len(m.BlocksNN))
	d.vc = make([][]float64, len(m.BlocksNN))
	for i := range d.kc {
		d.kc[i] = make([]float64, capacity*m.Cfg.MaxLen*dm)
		d.vc[i] = make([]float64, capacity*m.Cfg.MaxLen*dm)
	}
	d.x = make([]float64, capacity*dm)
	d.q = make([]float64, capacity*dm)
	d.k = make([]float64, capacity*dm)
	d.v = make([]float64, capacity*dm)
	d.att = make([]float64, capacity*dm)
	d.tmp = make([]float64, capacity*dm)
	d.ff = make([]float64, capacity*m.Cfg.MLPHidden)
	d.scores = make([]float64, capacity*m.Cfg.MaxLen)
	hw := headHiddenMax(m)
	d.hid = make([]float64, capacity*hw)
	d.hid2 = make([]float64, capacity*hw)
	d.evOut = make([]float64, capacity*m.Tok.V())
	d.iaOut = make([]float64, capacity*m.IAHd.Layers[len(m.IAHd.Layers)-1].W.Cols)
	d.stopOut = make([]float64, capacity*2)
	d.outs = make([]StepOut, capacity)
	return d
}

// Capacity returns the number of lockstep slots.
func (d *BatchDecoder) Capacity() int { return d.capacity }

// Pos returns slot's current position (tokens consumed).
func (d *BatchDecoder) Pos(slot int) int { return d.pos[slot] }

// Reset rewinds every slot to position 0, keeping all allocations.
func (d *BatchDecoder) Reset() {
	for i := range d.pos {
		d.pos[i] = 0
	}
}

// stepCost estimates the multiply-adds of one stream's decode step, used to
// decide whether a batch is worth fanning out across the worker pool.
func (d *BatchDecoder) stepCost() int {
	dm := d.m.Cfg.DModel
	return len(d.m.BlocksNN) * (4*dm*dm + 2*dm*d.m.Cfg.MLPHidden)
}

// Step advances each listed slot by one token and returns the head outputs,
// one StepOut per slot in slots order. tokens is the slot-major token
// buffer: slot s reads tokens[s*Dim() : (s+1)*Dim()]. The returned slice
// and the EventLogits inside it alias decoder-owned scratch, valid only
// until the next Step.
//
// Slots are processed independently (fanned out over the tensor worker
// pool), so a slot panics past MaxLen exactly like the serial decoder.
func (d *BatchDecoder) Step(slots []int, tokens []float64) []StepOut {
	m := d.m
	dm := m.Cfg.DModel
	dim := m.Tok.Dim()
	maxLen := m.Cfg.MaxLen
	v := m.Tok.V()
	hw := len(d.hid) / d.capacity
	iaW := len(d.iaOut) / d.capacity

	tensor.ParallelFor(len(slots), d.stepCost(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			slot := slots[i]
			pos := d.pos[slot]
			if pos >= maxLen {
				panic("cptgpt: BatchDecoder stepped past MaxLen")
			}
			token := tokens[slot*dim : (slot+1)*dim]
			x := d.x[slot*dm : (slot+1)*dm]
			q := d.q[slot*dm : (slot+1)*dm]
			k := d.k[slot*dm : (slot+1)*dm]
			vv := d.v[slot*dm : (slot+1)*dm]
			att := d.att[slot*dm : (slot+1)*dm]
			tmp := d.tmp[slot*dm : (slot+1)*dm]
			ff := d.ff[slot*m.Cfg.MLPHidden : (slot+1)*m.Cfg.MLPHidden]
			scores := d.scores[slot*maxLen : (slot+1)*maxLen]
			hid := d.hid[slot*hw : (slot+1)*hw]
			hid2 := d.hid2[slot*hw : (slot+1)*hw]

			// Token projection + positional embedding.
			linearRowInto(x, token, m.InProj)
			pe := m.PosEmb.Data[pos*dm : (pos+1)*dm]
			for j := range x {
				x[j] += pe[j]
			}

			for bi, b := range m.BlocksNN {
				// Attention sub-layer (pre-norm, residual) over this slot's
				// contiguous region of the shared cache.
				cacheLo := slot * maxLen * dm
				kc := d.kc[bi][cacheLo : cacheLo+(pos+1)*dm]
				vc := d.vc[bi][cacheLo : cacheLo+(pos+1)*dm]
				layerNormRow(tmp, x, b.LN1)
				linearRowInto(q, tmp, b.Attn.Wq)
				linearRowInto(k, tmp, b.Attn.Wk)
				linearRowInto(vv, tmp, b.Attn.Wv)
				copy(kc[pos*dm:], k)
				copy(vc[pos*dm:], vv)
				attendRow(att, q, kc, vc, pos+1, b.Attn.Heads, dm, scores)
				linearRowInto(tmp, att, b.Attn.Wo)
				for j := range x {
					x[j] += tmp[j]
				}

				// Feed-forward sub-layer (pre-norm, residual).
				layerNormRow(tmp, x, b.LN2)
				linearRowInto(ff, tmp, b.FF.In)
				for j := range ff {
					ff[j] = gelu(ff[j])
				}
				linearRowInto(tmp, ff, b.FF.Out)
				for j := range x {
					x[j] += tmp[j]
				}
			}

			layerNormRow(tmp, x, m.Final)

			evOut := d.evOut[slot*v : (slot+1)*v]
			iaOut := d.iaOut[slot*iaW : (slot+1)*iaW]
			stopOut := d.stopOut[slot*2 : (slot+1)*2]
			mlpRowInto(evOut, hid, hid2, tmp, m.EventHd)
			mlpRowInto(iaOut, hid, hid2, tmp, m.IAHd)
			mlpRowInto(stopOut, hid, hid2, tmp, m.StopHd)

			out := &d.outs[i]
			out.EventLogits = evOut
			out.IAMean = iaOut[0]
			if m.Cfg.DistHead {
				out.IALogStd = math.Min(math.Max(iaOut[1], -6), 2)
			} else {
				out.IALogStd = math.NaN()
			}
			out.StopLogits = [2]float64{stopOut[0], stopOut[1]}
			d.pos[slot] = pos + 1
		}
	})
	return d.outs[:len(slots)]
}
