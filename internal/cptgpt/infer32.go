package cptgpt

import (
	"math"

	"cptgpt/internal/nn"
	"cptgpt/internal/tensor"
)

// Fused float32 row kernels of the decode fast path. They mirror the float64
// kernels in infer.go but trade bit-compatibility for throughput:
//
//   - attendRowF32 computes attention scores, the softmax and the weighted
//     value sum in ONE pass over the interleaved KV cache (online softmax
//     with running max/sum per head), instead of the three passes the
//     float64 kernel makes. Every cached row is touched exactly once.
//   - ffGeluRowF32 fuses the MLP up-projection matvec with the GELU, so the
//     hidden activation is finished the moment its dot product is.
//   - Linear layers run through tensor.MatVecF32 over transposed panels
//     (unit-stride weight reads, 4-way unrolled accumulation).
//
// All loops are sequential with a fixed order, so F32 decoding is
// deterministic — the per-precision half of the determinism contract.

// negInf32 seeds the online-softmax running max.
var negInf32 = float32(math.Inf(-1))

// exp32 is the float32 exponential (computed via the float64 routine; the
// argument is ≤ 0 by construction in the online softmax).
func exp32(x float32) float32 {
	return float32(math.Exp(float64(x)))
}

// tanh32 is a float32 tanh via the classic 13/6-degree rational minimax
// approximation (the Eigen/XNNPACK fast-tanh polynomial), accurate to a few
// float32 ULP over the clamped range — indistinguishable from math.Tanh at
// float32 precision, at a fraction of its cost (no float64 round trip, no
// table lookups; ~10 multiplies and one divide).
func tanh32(x float32) float32 {
	const clamp = 7.90531110763549805 // tanh(±clamp) rounds to ±1 in float32
	if x > clamp {
		x = clamp
	} else if x < -clamp {
		x = -clamp
	}
	const (
		a1  = 4.89352455891786e-03
		a3  = 6.37261928875436e-04
		a5  = 1.48572235717979e-05
		a7  = 5.12229709037114e-08
		a9  = -8.60467152213735e-11
		a11 = 2.00018790482477e-13
		a13 = -2.76076847742355e-16
		b0  = 4.89352518554385e-03
		b2  = 2.26843463243900e-03
		b4  = 1.18534705686654e-04
		b6  = 1.19825839466702e-06
	)
	x2 := x * x
	p := x * (a1 + x2*(a3+x2*(a5+x2*(a7+x2*(a9+x2*(a11+x2*a13))))))
	q := b0 + x2*(b2+x2*(b4+x2*b6))
	return p / q
}

// gelu32 is the tanh-form GELU at float32 precision (same formula as the
// float64 gelu in infer.go, computed through tanh32).
func gelu32(x float32) float32 {
	const c = 0.7978845608028654
	return 0.5 * x * (1 + tanh32(c*(x+0.044715*x*x*x)))
}

// attendRowF32 computes one stream's multi-head attention output for query q
// against nPos cached positions, writing into att (len dm). kv is the slot's
// interleaved cache: row t is kv[t*2*dm : (t+1)*2*dm], keys in the first dm
// values, values in the second. mAcc and lAcc (len ≥ heads) carry the
// per-head running max and normalizer of the online softmax.
//
// The kernel makes a single pass over the cache: for each position it reads
// the KV row once, scores every head against the key half, and folds the
// value half into the output with flash-attention-style rescaling when a new
// max appears. One sweep of sequential memory per step is what makes long
// contexts cheap.
func attendRowF32(att, q, kv []float32, nPos, heads, dm int, mAcc, lAcc []float32) {
	dh := dm / heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < heads; h++ {
		mAcc[h] = negInf32
		lAcc[h] = 0
	}
	att = att[:dm]
	for i := range att {
		att[i] = 0
	}
	stride := 2 * dm
	for t := 0; t < nPos; t++ {
		row := kv[t*stride : (t+1)*stride]
		k, v := row[:dm], row[dm:]
		for h := 0; h < heads; h++ {
			lo := h * dh
			s := tensor.DotF32(q[lo:lo+dh], k[lo:lo+dh]) * scale
			if s > mAcc[h] {
				// New running max: rescale the accumulated sum and output.
				c := exp32(mAcc[h] - s)
				lAcc[h] *= c
				for j := lo; j < lo+dh; j++ {
					att[j] *= c
				}
				mAcc[h] = s
			}
			w := exp32(s - mAcc[h])
			lAcc[h] += w
			tensor.AxpyF32(att[lo:lo+dh], w, v[lo:lo+dh])
		}
	}
	for h := 0; h < heads; h++ {
		inv := 1 / lAcc[h]
		for j := h * dh; j < (h+1)*dh; j++ {
			att[j] *= inv
		}
	}
}

// layerNormRowF32 computes dst = LN(row) with l's gain and bias. The mean
// and variance accumulate in float64 (scalar registers, effectively free)
// to keep the normalization statistics tight.
func layerNormRowF32(dst, row []float32, l *nn.LayerNormF32) {
	n := float64(len(row))
	var mu float64
	for _, v := range row {
		mu += float64(v)
	}
	mu /= n
	var va float64
	for _, v := range row {
		d := float64(v) - mu
		va += d * d
	}
	va /= n
	m := float32(mu)
	istd := float32(1 / math.Sqrt(va+l.Eps))
	for i, v := range row {
		dst[i] = (v-m)*istd*l.Gain[i] + l.Bias[i]
	}
}

// ffGeluGroupF32 fuses the feed-forward up-projection with the GELU
// activation for a whole slot group: dst row s gets gelu(bias + x_s·wT),
// with the weight 4-row block as the outer loop (loaded once, L1-hot across
// the group — the same cross-slot amortization as tensor.MatVecGroupF32)
// and each hidden activation finished the moment its dot product is.
// Per-row results are independent of the grouping.
func ffGeluGroupF32(dst []float32, dstStride int, l *nn.LinearF32, x []float32, xStride int, group []int) {
	in := l.In
	j := 0
	for ; j+4 <= l.Out; j += 4 {
		w0 := l.WT[j*in : (j+1)*in]
		w1 := l.WT[(j+1)*in : (j+2)*in]
		w2 := l.WT[(j+2)*in : (j+3)*in]
		w3 := l.WT[(j+3)*in : (j+4)*in]
		b0, b1, b2, b3 := l.B[j], l.B[j+1], l.B[j+2], l.B[j+3]
		for _, s := range group {
			r0, r1, r2, r3 := tensor.Dot4F32(x[s*xStride:s*xStride+in], w0, w1, w2, w3)
			d := dst[s*dstStride+j : s*dstStride+j+4]
			d[0] = gelu32(b0 + r0)
			d[1] = gelu32(b1 + r1)
			d[2] = gelu32(b2 + r2)
			d[3] = gelu32(b3 + r3)
		}
	}
	for ; j < l.Out; j++ {
		w0 := l.WT[j*in : (j+1)*in]
		for _, s := range group {
			dst[s*dstStride+j] = gelu32(l.B[j] + tensor.Dot1F32(x[s*xStride:s*xStride+in], w0))
		}
	}
}

// stepGroupF32K is the float32 multi-token verify / prefill kernel: it
// advances each slot of slots[lo:hi] by its ks count of tokens in one pass.
// Where stepGroupF32 amortizes weight traffic across slots (one row each),
// this kernel amortizes across a slot's k known rows as well: every linear
// layer runs as a k-row GEMM per slot (tensor.GemmF32 — AVX2+FMA where the
// machine has it), with the layer loop outer and the slot loop inner so a
// weight panel fetched for one slot stays cache-hot for the rest of the
// shard. Attention stays per-row — row r's fused online-softmax pass sees
// exactly the slot's cache up to position pos+r, which is what keeps the
// pass causally identical to single-token stepping.
//
// Per-(slot, row) results are independent of the shard composition and the
// worker fan-out: GEMM row results don't depend on the rows batched with
// them, and every other kernel is per-row with a fixed order. With the
// scalar GEMM fallback the outputs are bit-identical to k successive Step
// calls; with the assembly GEMM they agree within float32 rounding (wider
// reduction order) and remain deterministic per machine.
func (d *BatchDecoder) stepGroupF32K(slots, ks []int, lo, hi, kMax int, tokens []float64) {
	m := d.m
	inf := d.inf
	dm := m.Cfg.DModel
	dim := m.Tok.Dim()
	maxLen := m.Cfg.MaxLen
	heads := m.Cfg.Heads
	v := m.Tok.V()
	mlpH := m.Cfg.MLPHidden
	iaW := len(d.iaOut) / d.capacity
	kst := d.kMax // row stride of the K scratch buffers (≥ kMax)

	// Token intake (and the past-MaxLen panic, before any work).
	for i := lo; i < hi; i++ {
		slot, k := slots[i], ks[i]
		if d.pos[slot]+k > maxLen {
			panic("cptgpt: BatchDecoder stepped past MaxLen")
		}
		for r := 0; r < k; r++ {
			tensor.F32From(d.tokK32[(slot*kst+r)*dim:(slot*kst+r+1)*dim],
				tokens[(slot*kMax+r)*dim:(slot*kMax+r+1)*dim])
		}
	}

	// Input projection + positional embeddings.
	for i := lo; i < hi; i++ {
		slot, k := slots[i], ks[i]
		base := slot * kst
		tensor.GemmF32(d.xK32[base*dm:(base+k)*dm], inf.inProj.WT, inf.inProj.B,
			d.tokK32[base*dim:(base+k)*dim], k, dim, dm)
		for r := 0; r < k; r++ {
			x := d.xK32[(base+r)*dm : (base+r+1)*dm]
			pe := inf.posEmb[(d.pos[slot]+r)*dm : (d.pos[slot]+r+1)*dm]
			for j := range x {
				x[j] += pe[j]
			}
		}
	}

	stride := 2 * dm
	slotKV := maxLen * stride
	for bi := range inf.blocks {
		b := &inf.blocks[bi]
		// Attention sub-layer (pre-norm, residual).
		for i := lo; i < hi; i++ {
			slot, k := slots[i], ks[i]
			base := slot * kst
			for r := 0; r < k; r++ {
				layerNormRowF32(d.tmpK32[(base+r)*dm:(base+r+1)*dm], d.xK32[(base+r)*dm:(base+r+1)*dm], &b.ln1)
			}
			tensor.GemmF32(d.qK32[base*dm:(base+k)*dm], b.wq.WT, b.wq.B, d.tmpK32[base*dm:(base+k)*dm], k, dm, dm)
			tensor.GemmF32(d.kK32[base*dm:(base+k)*dm], b.wk.WT, b.wk.B, d.tmpK32[base*dm:(base+k)*dm], k, dm, dm)
			tensor.GemmF32(d.vK32[base*dm:(base+k)*dm], b.wv.WT, b.wv.B, d.tmpK32[base*dm:(base+k)*dm], k, dm, dm)
			pos := d.pos[slot]
			kv := d.kv32[(bi*d.capacity+slot)*slotKV : (bi*d.capacity+slot+1)*slotKV]
			for r := 0; r < k; r++ {
				kvRow := kv[(pos+r)*stride : (pos+r+1)*stride]
				copy(kvRow[:dm], d.kK32[(base+r)*dm:(base+r+1)*dm])
				copy(kvRow[dm:], d.vK32[(base+r)*dm:(base+r+1)*dm])
			}
			// Causal: row r attends to exactly the cache through pos+r.
			for r := 0; r < k; r++ {
				attendRowF32(d.attK32[(base+r)*dm:(base+r+1)*dm], d.qK32[(base+r)*dm:(base+r+1)*dm], kv,
					pos+r+1, b.heads, dm, d.mAcc32[slot*heads:(slot+1)*heads], d.lAcc32[slot*heads:(slot+1)*heads])
			}
			tensor.GemmF32(d.tmpK32[base*dm:(base+k)*dm], b.wo.WT, b.wo.B, d.attK32[base*dm:(base+k)*dm], k, dm, dm)
			for r := 0; r < k; r++ {
				x := d.xK32[(base+r)*dm : (base+r+1)*dm]
				tmp := d.tmpK32[(base+r)*dm : (base+r+1)*dm]
				for j := range x {
					x[j] += tmp[j]
				}
			}
		}

		// Feed-forward sub-layer (pre-norm, residual).
		for i := lo; i < hi; i++ {
			slot, k := slots[i], ks[i]
			base := slot * kst
			for r := 0; r < k; r++ {
				layerNormRowF32(d.tmpK32[(base+r)*dm:(base+r+1)*dm], d.xK32[(base+r)*dm:(base+r+1)*dm], &b.ln2)
			}
			ff := d.ffK32[base*mlpH : (base+k)*mlpH]
			tensor.GemmF32(ff, b.ffIn.WT, b.ffIn.B, d.tmpK32[base*dm:(base+k)*dm], k, dm, mlpH)
			for j := range ff {
				ff[j] = gelu32(ff[j])
			}
			tensor.GemmF32(d.tmpK32[base*dm:(base+k)*dm], b.ffOut.WT, b.ffOut.B, ff, k, mlpH, dm)
			for r := 0; r < k; r++ {
				x := d.xK32[(base+r)*dm : (base+r+1)*dm]
				tmp := d.tmpK32[(base+r)*dm : (base+r+1)*dm]
				for j := range x {
					x[j] += tmp[j]
				}
			}
		}
	}

	// Final norm, output heads, widening.
	for i := lo; i < hi; i++ {
		slot, k := slots[i], ks[i]
		base := slot * kst
		for r := 0; r < k; r++ {
			layerNormRowF32(d.tmpK32[(base+r)*dm:(base+r+1)*dm], d.xK32[(base+r)*dm:(base+r+1)*dm], &inf.final)
		}
		x := d.tmpK32[base*dm : (base+k)*dm]
		hw := d.hkw()
		hid := d.hidK32[base*hw:]
		hid2 := d.hidK232[base*hw:]
		mlpGemmF32K(d.evOutK32[base*v:(base+k)*v], hid, hid2, x, &inf.eventHd, k)
		mlpGemmF32K(d.iaOutK32[base*iaW:(base+k)*iaW], hid, hid2, x, &inf.iaHd, k)
		mlpGemmF32K(d.stopOutK32[base*2:(base+k)*2], hid, hid2, x, &inf.stopHd, k)

		outs := d.outsK[i][:k]
		for r := 0; r < k; r++ {
			row := base + r
			evOut := d.evOutK[row*v : (row+1)*v]
			iaOut := d.iaOutK[row*iaW : (row+1)*iaW]
			stopOut := d.stopOutK[row*2 : (row+1)*2]
			for j, val := range d.evOutK32[row*v : (row+1)*v] {
				evOut[j] = float64(val)
			}
			for j, val := range d.iaOutK32[row*iaW : (row+1)*iaW] {
				iaOut[j] = float64(val)
			}
			for j, val := range d.stopOutK32[row*2 : (row+1)*2] {
				stopOut[j] = float64(val)
			}
			fillStepOut(&outs[r], m.Cfg.DistHead, evOut, iaOut, stopOut)
		}
		d.pos[slot] += k
	}
}

// hkw returns the per-row width of the multi-token hidden scratch.
func (d *BatchDecoder) hkw() int { return len(d.hidK32) / (d.capacity * d.kMax) }

// mlpGemmF32K applies an exported MLP (ReLU between layers) to k packed
// rows: every layer is one k-row GEMM, intermediate activations ping-pong
// through hid/hid2 (each with room for k × widest-layer values, packed at
// the layer's own width). Per-row arithmetic matches mlpGroupF32's exactly
// under the scalar GEMM.
func mlpGemmF32K(dst, hid, hid2 []float32, x []float32, m *nn.MLPF32, k int) {
	cur := x
	last := len(m.Layers) - 1
	for i := range m.Layers {
		l := &m.Layers[i]
		var next []float32
		switch {
		case i == last:
			next = dst[:k*l.Out]
		case i%2 == 0:
			next = hid[:k*l.Out]
		default:
			next = hid2[:k*l.Out]
		}
		tensor.GemmF32(next, l.WT, l.B, cur, k, l.In, l.Out)
		if i != last {
			for j := range next {
				if next[j] < 0 {
					next[j] = 0
				}
			}
		}
		cur = next
	}
}

// mlpGroupF32 applies an exported MLP (ReLU between layers) to a group of
// slot-major rows, writing the final layer into dst. hid and hid2 (stride
// hw) are ping-pong scratch wide enough for every intermediate layer; the
// input rows are never modified. Every layer runs as a group matvec so
// weight panels are read once per group.
func mlpGroupF32(dst []float32, dstStride int, hid, hid2 []float32, hw int, x []float32, xStride int, m *nn.MLPF32, group []int) {
	cur, curStride := x, xStride
	last := len(m.Layers) - 1
	for i := range m.Layers {
		l := &m.Layers[i]
		var next []float32
		var nextStride int
		switch {
		case i == last:
			next, nextStride = dst, dstStride
		case i%2 == 0:
			next, nextStride = hid, hw
		default:
			next, nextStride = hid2, hw
		}
		tensor.MatVecGroupF32(next, nextStride, l.WT, l.B, cur, curStride, l.In, l.Out, group)
		if i != last {
			for _, s := range group {
				row := next[s*nextStride : s*nextStride+l.Out]
				for j := range row {
					if row[j] < 0 {
						row[j] = 0
					}
				}
			}
		}
		cur, curStride = next, nextStride
	}
}
