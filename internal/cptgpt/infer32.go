package cptgpt

import (
	"math"

	"cptgpt/internal/nn"
	"cptgpt/internal/tensor"
)

// Fused float32 row kernels of the decode fast path. They mirror the float64
// kernels in infer.go but trade bit-compatibility for throughput:
//
//   - attendRowF32 computes attention scores, the softmax and the weighted
//     value sum in ONE pass over the interleaved KV cache (online softmax
//     with running max/sum per head), instead of the three passes the
//     float64 kernel makes. Every cached row is touched exactly once.
//   - ffGeluRowF32 fuses the MLP up-projection matvec with the GELU, so the
//     hidden activation is finished the moment its dot product is.
//   - Linear layers run through tensor.MatVecF32 over transposed panels
//     (unit-stride weight reads, 4-way unrolled accumulation).
//
// All loops are sequential with a fixed order, so F32 decoding is
// deterministic — the per-precision half of the determinism contract.

// negInf32 seeds the online-softmax running max.
var negInf32 = float32(math.Inf(-1))

// exp32 is the float32 exponential (computed via the float64 routine; the
// argument is ≤ 0 by construction in the online softmax).
func exp32(x float32) float32 {
	return float32(math.Exp(float64(x)))
}

// tanh32 is a float32 tanh via the classic 13/6-degree rational minimax
// approximation (the Eigen/XNNPACK fast-tanh polynomial), accurate to a few
// float32 ULP over the clamped range — indistinguishable from math.Tanh at
// float32 precision, at a fraction of its cost (no float64 round trip, no
// table lookups; ~10 multiplies and one divide).
func tanh32(x float32) float32 {
	const clamp = 7.90531110763549805 // tanh(±clamp) rounds to ±1 in float32
	if x > clamp {
		x = clamp
	} else if x < -clamp {
		x = -clamp
	}
	const (
		a1  = 4.89352455891786e-03
		a3  = 6.37261928875436e-04
		a5  = 1.48572235717979e-05
		a7  = 5.12229709037114e-08
		a9  = -8.60467152213735e-11
		a11 = 2.00018790482477e-13
		a13 = -2.76076847742355e-16
		b0  = 4.89352518554385e-03
		b2  = 2.26843463243900e-03
		b4  = 1.18534705686654e-04
		b6  = 1.19825839466702e-06
	)
	x2 := x * x
	p := x * (a1 + x2*(a3+x2*(a5+x2*(a7+x2*(a9+x2*(a11+x2*a13))))))
	q := b0 + x2*(b2+x2*(b4+x2*b6))
	return p / q
}

// gelu32 is the tanh-form GELU at float32 precision (same formula as the
// float64 gelu in infer.go, computed through tanh32).
func gelu32(x float32) float32 {
	const c = 0.7978845608028654
	return 0.5 * x * (1 + tanh32(c*(x+0.044715*x*x*x)))
}

// attendRowF32 computes one stream's multi-head attention output for query q
// against nPos cached positions, writing into att (len dm). kv is the slot's
// interleaved cache: row t is kv[t*2*dm : (t+1)*2*dm], keys in the first dm
// values, values in the second. mAcc and lAcc (len ≥ heads) carry the
// per-head running max and normalizer of the online softmax.
//
// The kernel makes a single pass over the cache: for each position it reads
// the KV row once, scores every head against the key half, and folds the
// value half into the output with flash-attention-style rescaling when a new
// max appears. One sweep of sequential memory per step is what makes long
// contexts cheap.
func attendRowF32(att, q, kv []float32, nPos, heads, dm int, mAcc, lAcc []float32) {
	dh := dm / heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	for h := 0; h < heads; h++ {
		mAcc[h] = negInf32
		lAcc[h] = 0
	}
	att = att[:dm]
	for i := range att {
		att[i] = 0
	}
	stride := 2 * dm
	for t := 0; t < nPos; t++ {
		row := kv[t*stride : (t+1)*stride]
		k, v := row[:dm], row[dm:]
		for h := 0; h < heads; h++ {
			lo := h * dh
			s := tensor.DotF32(q[lo:lo+dh], k[lo:lo+dh]) * scale
			if s > mAcc[h] {
				// New running max: rescale the accumulated sum and output.
				c := exp32(mAcc[h] - s)
				lAcc[h] *= c
				for j := lo; j < lo+dh; j++ {
					att[j] *= c
				}
				mAcc[h] = s
			}
			w := exp32(s - mAcc[h])
			lAcc[h] += w
			tensor.AxpyF32(att[lo:lo+dh], w, v[lo:lo+dh])
		}
	}
	for h := 0; h < heads; h++ {
		inv := 1 / lAcc[h]
		for j := h * dh; j < (h+1)*dh; j++ {
			att[j] *= inv
		}
	}
}

// layerNormRowF32 computes dst = LN(row) with l's gain and bias. The mean
// and variance accumulate in float64 (scalar registers, effectively free)
// to keep the normalization statistics tight.
func layerNormRowF32(dst, row []float32, l *nn.LayerNormF32) {
	n := float64(len(row))
	var mu float64
	for _, v := range row {
		mu += float64(v)
	}
	mu /= n
	var va float64
	for _, v := range row {
		d := float64(v) - mu
		va += d * d
	}
	va /= n
	m := float32(mu)
	istd := float32(1 / math.Sqrt(va+l.Eps))
	for i, v := range row {
		dst[i] = (v-m)*istd*l.Gain[i] + l.Bias[i]
	}
}

// ffGeluGroupF32 fuses the feed-forward up-projection with the GELU
// activation for a whole slot group: dst row s gets gelu(bias + x_s·wT),
// with the weight 4-row block as the outer loop (loaded once, L1-hot across
// the group — the same cross-slot amortization as tensor.MatVecGroupF32)
// and each hidden activation finished the moment its dot product is.
// Per-row results are independent of the grouping.
func ffGeluGroupF32(dst []float32, dstStride int, l *nn.LinearF32, x []float32, xStride int, group []int) {
	in := l.In
	j := 0
	for ; j+4 <= l.Out; j += 4 {
		w0 := l.WT[j*in : (j+1)*in]
		w1 := l.WT[(j+1)*in : (j+2)*in]
		w2 := l.WT[(j+2)*in : (j+3)*in]
		w3 := l.WT[(j+3)*in : (j+4)*in]
		b0, b1, b2, b3 := l.B[j], l.B[j+1], l.B[j+2], l.B[j+3]
		for _, s := range group {
			r0, r1, r2, r3 := tensor.Dot4F32(x[s*xStride:s*xStride+in], w0, w1, w2, w3)
			d := dst[s*dstStride+j : s*dstStride+j+4]
			d[0] = gelu32(b0 + r0)
			d[1] = gelu32(b1 + r1)
			d[2] = gelu32(b2 + r2)
			d[3] = gelu32(b3 + r3)
		}
	}
	for ; j < l.Out; j++ {
		w0 := l.WT[j*in : (j+1)*in]
		for _, s := range group {
			dst[s*dstStride+j] = gelu32(l.B[j] + tensor.Dot1F32(x[s*xStride:s*xStride+in], w0))
		}
	}
}

// mlpGroupF32 applies an exported MLP (ReLU between layers) to a group of
// slot-major rows, writing the final layer into dst. hid and hid2 (stride
// hw) are ping-pong scratch wide enough for every intermediate layer; the
// input rows are never modified. Every layer runs as a group matvec so
// weight panels are read once per group.
func mlpGroupF32(dst []float32, dstStride int, hid, hid2 []float32, hw int, x []float32, xStride int, m *nn.MLPF32, group []int) {
	cur, curStride := x, xStride
	last := len(m.Layers) - 1
	for i := range m.Layers {
		l := &m.Layers[i]
		var next []float32
		var nextStride int
		switch {
		case i == last:
			next, nextStride = dst, dstStride
		case i%2 == 0:
			next, nextStride = hid, hw
		default:
			next, nextStride = hid2, hw
		}
		tensor.MatVecGroupF32(next, nextStride, l.WT, l.B, cur, curStride, l.In, l.Out, group)
		if i != last {
			for _, s := range group {
				row := next[s*nextStride : s*nextStride+l.Out]
				for j := range row {
					if row[j] < 0 {
						row[j] = 0
					}
				}
			}
		}
		cur, curStride = next, nextStride
	}
}
