package cptgpt

import (
	"fmt"
	"math"
	"time"

	"cptgpt/internal/nn"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// cos and pi keep the LR-decay expression readable.
var cos = math.Cos

const pi = math.Pi

// TrainOpts tunes a training run without mutating the model config.
type TrainOpts struct {
	// Epochs overrides Config.Epochs when > 0 (used by fine-tuning).
	Epochs int
	// LR overrides Config.LR when > 0 (used by fine-tuning).
	LR float64
	// EarlyStopPatience stops training after this many consecutive epochs
	// whose mean loss improves by less than EarlyStopDelta; 0 disables.
	// This is the "training stops when fidelity metrics show diminishing
	// returns" device used for the paper's time measurements (§5.5).
	EarlyStopPatience int
	// EarlyStopDelta is the minimum per-epoch improvement (default 1e-3).
	EarlyStopDelta float64
	// OnEpoch, when non-nil, observes each epoch's mean loss.
	OnEpoch func(epoch int, meanLoss float64)
	// Probe, when non-nil, is called every ProbeEvery epochs and must
	// return a fidelity score (lower is better) for the current weights;
	// training restores the best-scoring checkpoint at the end. This is
	// the same checkpoint-ranking methodology applied to the GAN baseline,
	// used where fair time-to-quality comparisons are needed (§5.5).
	Probe func() float64
	// ProbeEvery defaults to 1.
	ProbeEvery int
	// Parallelism, when > 0, overrides the process-global tensor-kernel
	// parallelism (tensor.SetParallelism) for the duration of the run. The
	// sharded kernels are bit-identical to the serial path, so the trained
	// weights do not depend on this setting.
	Parallelism int
	// MicrobatchStreams overrides Config.MicrobatchStreams when > 0: the
	// number of streams packed into each forward pass. With Dropout 0 the
	// trained weights are bit-identical at every setting (see
	// Config.MicrobatchStreams); set 1 to force the serial per-stream path.
	MicrobatchStreams int
	// NoArena disables the per-step tensor arena, restoring heap allocation
	// for the tape. Training results are identical either way; the knob
	// exists for benchmarking the arena's effect and as a kill switch.
	NoArena bool
}

// TrainResult reports what a training run did.
type TrainResult struct {
	// Streams is the number of eligible training streams.
	Streams int
	// Steps is the number of optimizer steps taken.
	Steps int
	// Epochs is the number of epochs completed.
	Epochs int
	// EpochLoss holds the mean training loss per epoch.
	EpochLoss []float64
	// Duration is the wall-clock training time.
	Duration time.Duration
	// EarlyStopped reports whether the early-stop rule fired.
	EarlyStopped bool
	// BestEpoch is the 1-based epoch whose checkpoint was kept (0 when no
	// Probe was supplied); BestScore is its probe score.
	BestEpoch int
	BestScore float64
}

// FinalLoss returns the last epoch's mean loss (NaN-free convenience).
func (r *TrainResult) FinalLoss() float64 {
	if len(r.EpochLoss) == 0 {
		return 0
	}
	return r.EpochLoss[len(r.EpochLoss)-1]
}

// Train fits the model on the dataset with next-token supervision. It also
// extracts the initial-event-type distribution that ships with the model
// (§4.5). Streams of length < 2 are excluded, and streams longer than
// MaxLen+1 are dropped, matching the paper's preprocessing.
func Train(m *Model, d *trace.Dataset, opts TrainOpts) (*TrainResult, error) {
	if d.Generation != m.Cfg.Generation {
		return nil, fmt.Errorf("cptgpt: dataset generation %s does not match model %s", d.Generation, m.Cfg.Generation)
	}
	// Training rewrites the weights, so any frozen float32 inference
	// snapshot is stale from here on; drop it now and again on exit so the
	// next F32 decode re-freezes the trained parameters.
	m.InvalidateInfer()
	defer m.InvalidateInfer()
	epochs := m.Cfg.Epochs
	if opts.Epochs > 0 {
		epochs = opts.Epochs
	}
	lr := m.Cfg.LR
	if opts.LR > 0 {
		lr = opts.LR
	}
	if opts.EarlyStopDelta == 0 {
		opts.EarlyStopDelta = 1e-3
	}
	if opts.Parallelism > 0 {
		prev := tensor.SetParallelism(opts.Parallelism)
		defer tensor.SetParallelism(prev)
	}
	micro := opts.MicrobatchStreams
	if micro <= 0 {
		micro = m.Cfg.MicrobatchStreams
	}
	if micro < 1 {
		micro = 1
	}

	// Encode eligible streams once.
	type sample struct {
		in *tensor.Tensor
		tg *Targets
	}
	var samples []sample
	var totalTokens int
	for i := range d.Streams {
		s := &d.Streams[i]
		if len(s.Events) < 2 || len(s.Events) > m.Cfg.MaxLen+1 {
			continue
		}
		in, tg, err := m.Tok.EncodeStream(s)
		if err != nil {
			return nil, err
		}
		samples = append(samples, sample{in: in, tg: tg})
		totalTokens += in.Rows
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("cptgpt: no eligible training streams (need length in [2, %d])", m.Cfg.MaxLen+1)
	}
	// Streams contribute mean-per-token losses; re-weight each stream by
	// its token count so every *token* carries equal gradient weight. A
	// per-stream mean would overweight short streams' stop-flag targets and
	// systematically miscalibrate the stop hazard (streams would generate
	// too short).
	meanTokens := float64(totalTokens) / float64(len(samples))
	m.InitialDist = d.InitialEventDist()

	accum := m.Cfg.AccumStreams
	if accum < 1 {
		accum = 1
	}
	opt := nn.NewAdam(m.Params(), lr)
	rng := stats.NewRand(m.Cfg.Seed ^ 0xDEAD)
	res := &TrainResult{Streams: len(samples)}
	start := time.Now()

	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	probeEvery := opts.ProbeEvery
	if probeEvery <= 0 {
		probeEvery = 1
	}
	var bestSnap [][]float64
	bestScore := math.Inf(1)

	// The autograd tape has the same shape every step, so its buffers come
	// from a bump arena that is rewound after each chunk's gradients have
	// been folded into the (heap-allocated) parameter grads. Callbacks run
	// with the arena detached (tensor.ArenaDetached): anything they
	// allocate must outlive Reset. The install is ownership-gated so two
	// arena-using trainers cannot interleave installs and Resets (the
	// loser runs off the heap); other concurrent tape work while an arena
	// is held remains unsupported — see tensor.InstallArena.
	var arena *tensor.Arena
	if !opts.NoArena {
		arena = tensor.NewArena()
		if tensor.InstallArena(arena) {
			defer tensor.UninstallArena(arena)
		} else {
			arena = nil
		}
	}

	var dropRng = rng
	if m.Cfg.Dropout <= 0 {
		dropRng = nil
	}
	ins := make([]*tensor.Tensor, 0, micro)
	tgs := make([]*Targets, 0, micro)

	best := 0.0
	stale := 0
	for epoch := 0; epoch < epochs; epoch++ {
		// Cosine learning-rate decay to a 10% floor sharpens the late
		// epochs, which matters for near-zero semantic-violation rates.
		if epochs > 1 {
			frac := float64(epoch) / float64(epochs-1)
			opt.LR = lr * (0.1 + 0.9*0.5*(1+cos(pi*frac)))
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var sinceStep int
		opt.ZeroGrads()
		for k := 0; k < len(order); {
			// Pack up to `micro` streams, never crossing an optimizer-step
			// boundary, so step boundaries land on the same streams at every
			// microbatch setting (an equivalence requirement).
			chunk := micro
			if rem := accum - sinceStep; chunk > rem {
				chunk = rem
			}
			if rem := len(order) - k; chunk > rem {
				chunk = rem
			}
			if chunk == 1 {
				// Serial per-stream path (also the MicrobatchStreams=1 mode).
				sm := samples[order[k]]
				h, err := m.Forward(sm.in, dropRng)
				if err != nil {
					return nil, err
				}
				loss := m.Loss(h, sm.tg)
				lossSum += loss.Data[0]
				weighted := tensor.Scale(loss, float64(sm.in.Rows)/meanTokens)
				weighted.Backward()
			} else {
				ins, tgs = ins[:0], tgs[:0]
				for _, idx := range order[k : k+chunk] {
					ins = append(ins, samples[idx].in)
					tgs = append(tgs, samples[idx].tg)
				}
				pb := PackStreams(ins, tgs)
				h, err := m.ForwardPacked(pb, dropRng)
				if err != nil {
					return nil, err
				}
				total, perStream := m.LossPacked(h, pb, meanTokens)
				for _, lv := range perStream {
					lossSum += lv
				}
				total.Backward()
			}
			k += chunk
			sinceStep += chunk
			if sinceStep >= accum || k == len(order) {
				opt.Step()
				opt.ZeroGrads()
				res.Steps++
				sinceStep = 0
			}
			// The chunk's tape is dead (its gradients live in the heap
			// parameter grads), so the arena can be rewound even within an
			// accumulation window.
			if arena != nil {
				arena.Reset()
			}
		}
		meanLoss := lossSum / float64(len(order))
		res.EpochLoss = append(res.EpochLoss, meanLoss)
		res.Epochs = epoch + 1
		// The epoch's optimizer steps rewrote the weights, so a float32
		// snapshot a previous epoch's callback froze is stale — drop it
		// before this epoch's callbacks can decode through it.
		if opts.OnEpoch != nil || opts.Probe != nil {
			m.InvalidateInfer()
		}
		if opts.OnEpoch != nil {
			tensor.ArenaDetached(func() { opts.OnEpoch(epoch, meanLoss) })
		}
		if opts.Probe != nil && (epoch+1)%probeEvery == 0 {
			var score float64
			tensor.ArenaDetached(func() { score = opts.Probe() })
			if score < bestScore {
				bestScore = score
				res.BestEpoch = epoch + 1
				bestSnap = snapshotParams(m.Params())
			}
		}
		if opts.EarlyStopPatience > 0 {
			if epoch == 0 || best-meanLoss > opts.EarlyStopDelta {
				best = meanLoss
				stale = 0
			} else {
				stale++
				if stale >= opts.EarlyStopPatience {
					res.EarlyStopped = true
					break
				}
			}
		}
	}
	if bestSnap != nil {
		restoreParams(m.Params(), bestSnap)
		res.BestScore = bestScore
	}
	res.Duration = time.Since(start)
	return res, nil
}

// snapshotParams deep-copies parameter values.
func snapshotParams(params []*tensor.Tensor) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

// restoreParams writes snapshot values back into params.
func restoreParams(params []*tensor.Tensor, snap [][]float64) {
	for i, p := range params {
		copy(p.Data, snap[i])
	}
}

// FineTune continues training an already-trained model on a new dataset,
// the transfer-learning path of Design 3. It uses a reduced learning rate
// and epoch budget relative to the base run (the paper's hourly adaptation:
// a fine-tuned hour converges in a fraction of a scratch run's time).
func FineTune(m *Model, d *trace.Dataset, opts TrainOpts) (*TrainResult, error) {
	if opts.LR <= 0 {
		opts.LR = m.Cfg.LR / 3
	}
	if opts.Epochs <= 0 {
		opts.Epochs = max(1, m.Cfg.Epochs/3)
	}
	if opts.EarlyStopPatience == 0 {
		opts.EarlyStopPatience = 1
	}
	return Train(m, d, opts)
}

// Clone deep-copies the model (weights and config), the warm-start
// primitive for building an hourly ensemble out of one base model.
func (m *Model) Clone() (*Model, error) {
	c, err := NewModel(m.Cfg, m.Tok)
	if err != nil {
		return nil, err
	}
	if err := nn.CopyParams(c.Params(), m.Params()); err != nil {
		return nil, err
	}
	c.InitialDist = append([]float64(nil), m.InitialDist...)
	return c, nil
}
