package cptgpt

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/stats"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

func TestParsePrecision(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"", F64, true}, {"f64", F64, true}, {"float64", F64, true},
		{"f32", F32, true}, {"F32", F32, true}, {"float32", F32, true},
		{"f16", F64, false}, {"fast", F64, false},
	} {
		got, err := ParsePrecision(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParsePrecision(%q) = (%v, %v), want (%v, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Fatalf("Precision.String: %q %q", F64.String(), F32.String())
	}
}

// TestInferSnapshotInvalidation pins the freeze/invalidate lifecycle: Infer
// caches one snapshot, InvalidateInfer drops it, and the snapshot holds
// value copies (mutating the live weights does not change it).
func TestInferSnapshotInvalidation(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Infer()
	if m.Infer() != a {
		t.Fatal("Infer must cache the snapshot")
	}
	w0 := a.inProj.WT[0]
	m.InProj.W.Data[0] += 100
	if a.inProj.WT[0] != w0 {
		t.Fatal("snapshot aliases live weights")
	}
	m.InvalidateInfer()
	b := m.Infer()
	if b == a {
		t.Fatal("InvalidateInfer must drop the cached snapshot")
	}
	if float64(b.inProj.WT[0]) == float64(w0) {
		t.Fatal("re-frozen snapshot must see the updated weight")
	}
}

// TestF32LogitTolerance steps the same token sequences through the serial
// float64 decoder and the float32 BatchDecoder, requiring every head output
// to stay within a small absolute tolerance of the reference at every
// position — the per-token fidelity gate of the fast path.
func TestF32LogitTolerance(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	dim := tk.Dim()

	var encs []*tensor.Tensor
	for i := range d.Streams {
		if len(d.Streams[i].Events) >= 4 && len(d.Streams[i].Events) <= m.Cfg.MaxLen {
			enc, _, err := tk.EncodeStream(&d.Streams[i])
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, enc)
			if len(encs) == 3 {
				break
			}
		}
	}
	if len(encs) < 2 {
		t.Skip("not enough suitable streams in tiny dataset")
	}

	const tol = 5e-3
	bd := m.NewBatchDecoder(len(encs), F32)
	serial := make([]*decoder, len(encs))
	for i := range serial {
		serial[i] = newDecoder(m)
	}
	var maxDiff float64
	toks := make([]float64, len(encs)*dim)
	for step := 0; ; step++ {
		var slots []int
		for i, enc := range encs {
			if step < enc.Rows {
				slots = append(slots, i)
				copy(toks[i*dim:(i+1)*dim], enc.Data[step*dim:(step+1)*dim])
			}
		}
		if len(slots) == 0 {
			break
		}
		outs := bd.Step(slots, toks)
		for j, slot := range slots {
			want := serial[slot].step(encs[slot].Data[step*dim : (step+1)*dim])
			got := outs[j]
			check := func(name string, g, w float64) {
				diff := math.Abs(g - w)
				if diff > maxDiff {
					maxDiff = diff
				}
				if diff > tol || math.IsNaN(g) != math.IsNaN(w) {
					t.Fatalf("slot %d step %d %s: f32 %v vs f64 %v (|Δ| %.2e > %g)", slot, step, name, g, w, diff, tol)
				}
			}
			for k := range want.EventLogits {
				check(fmt.Sprintf("event logit %d", k), got.EventLogits[k], want.EventLogits[k])
			}
			check("IAMean", got.IAMean, want.IAMean)
			if !math.IsNaN(want.IALogStd) {
				check("IALogStd", got.IALogStd, want.IALogStd)
			}
			check("stop0", got.StopLogits[0], want.StopLogits[0])
			check("stop1", got.StopLogits[1], want.StopLogits[1])
		}
	}
	t.Logf("max |f32 - f64| head output difference: %.3e", maxDiff)
}

// TestF32GenerateDeterministic pins the F32 determinism contract: for a
// fixed seed the float32 path emits identical output at every Parallelism ×
// BatchSize × scheduling combination, and repeated runs are bit-identical.
func TestF32GenerateDeterministic(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	base := GenOpts{NumStreams: 23, Device: events.Phone, Seed: 99, StartWindow: 30, Precision: F32}
	want, err := m.Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		par, batch int
		lockstep   bool
	}{
		{1, 1, false}, {1, 23, false}, {8, 4, false}, {3, 7, false},
		{1, 1, true}, {8, 4, true},
	} {
		opts := base
		opts.Parallelism = c.par
		opts.BatchSize = c.batch
		opts.Lockstep = c.lockstep
		got, err := m.Generate(opts)
		if err != nil {
			t.Fatal(err)
		}
		sameStreams(t, fmt.Sprintf("f32 parallelism=%d batch=%d lockstep=%v", c.par, c.batch, c.lockstep), want.Streams, got.Streams)
	}

	// GenerateRange must reproduce the same population chunk-wise.
	var chunked []trace.Stream
	for lo := 0; lo < base.NumStreams; lo += 7 {
		hi := min(lo+7, base.NumStreams)
		part, err := m.GenerateRange(lo, hi, base)
		if err != nil {
			t.Fatal(err)
		}
		chunked = append(chunked, part...)
	}
	sameStreams(t, "f32 chunked range", want.Streams, chunked)
}

// TestF32FidelityMarginals is the distribution-level gate on the fast path:
// over a population generated from the same seed, the F32 event-type
// marginal must stay within a small total-variation distance of F64's, and
// the interarrival and stream-length marginals within a small KS distance.
// Individual streams may diverge (a near-tie flipped by a 1e-7 logit
// perturbation resteers that stream's RNG), but the workload statistics the
// paper evaluates must not move.
func TestF32FidelityMarginals(t *testing.T) {
	d := testTrainingData(t, 60)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	opts := GenOpts{NumStreams: 500, Device: events.Phone, Seed: 17}
	f64d, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Precision = F32
	f32d, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}

	marginals := func(ds *trace.Dataset) (types map[events.Type]float64, ias, lens []float64) {
		types = make(map[events.Type]float64)
		var total float64
		for i := range ds.Streams {
			s := &ds.Streams[i]
			lens = append(lens, float64(len(s.Events)))
			for _, e := range s.Events {
				types[e.Type]++
				total++
			}
			ia := s.Interarrivals()
			ias = append(ias, ia[min(len(ia), 1):]...)
		}
		for k := range types {
			types[k] /= total
		}
		return types, ias, lens
	}
	t64, ia64, len64 := marginals(f64d)
	t32, ia32, len32 := marginals(f32d)

	var tv float64
	for _, typ := range tk.Vocab() {
		tv += math.Abs(t64[typ] - t32[typ])
	}
	tv /= 2
	if tv > 0.02 {
		t.Fatalf("event-type marginal TV distance %v > 0.02 (f64 %v vs f32 %v)", tv, t64, t32)
	}
	if ks := stats.MaxYDistance(ia64, ia32); ks > 0.02 {
		t.Fatalf("interarrival KS distance %v > 0.02", ks)
	}
	if ks := stats.MaxYDistance(len64, len32); ks > 0.02 {
		t.Fatalf("stream-length KS distance %v > 0.02", ks)
	}
}

// TestConcurrentGenerateSharedModel decodes from one Model in four
// goroutines at once — two per precision, the F32 pair racing to build the
// shared Infer snapshot — and requires every run to equal its single-
// threaded reference. Run under -race (CI does), this pins the contract
// that trained weights and the frozen snapshot are data-race-free shared
// state across any number of concurrent decoders.
func TestConcurrentGenerateSharedModel(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	optsFor := func(prec Precision, seed uint64) GenOpts {
		return GenOpts{NumStreams: 12, Device: events.Phone, Seed: seed, Precision: prec, Parallelism: 2, BatchSize: 4}
	}
	want := map[string]*trace.Dataset{}
	for _, prec := range []Precision{F64, F32} {
		for _, seed := range []uint64{5, 6} {
			ds, err := m.Generate(optsFor(prec, seed))
			if err != nil {
				t.Fatal(err)
			}
			want[fmt.Sprintf("%s-%d", prec, seed)] = ds
		}
	}
	m.InvalidateInfer() // force the concurrent runs to rebuild the snapshot

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for _, prec := range []Precision{F64, F32} {
		for _, seed := range []uint64{5, 6} {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := m.Generate(optsFor(prec, seed))
				if err != nil {
					errs <- err
					return
				}
				key := fmt.Sprintf("%s-%d", prec, seed)
				w := want[key]
				if len(got.Streams) != len(w.Streams) {
					errs <- fmt.Errorf("%s: %d streams, want %d", key, len(got.Streams), len(w.Streams))
					return
				}
				for i := range w.Streams {
					if len(got.Streams[i].Events) != len(w.Streams[i].Events) {
						errs <- fmt.Errorf("%s stream %d: %d events, want %d", key, i, len(got.Streams[i].Events), len(w.Streams[i].Events))
						return
					}
					for j := range w.Streams[i].Events {
						if got.Streams[i].Events[j] != w.Streams[i].Events[j] {
							errs <- fmt.Errorf("%s stream %d event %d differs", key, i, j)
							return
						}
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
