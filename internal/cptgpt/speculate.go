package cptgpt

import (
	"math"
	"math/rand/v2"
	"sync/atomic"

	"cptgpt/internal/stats"
	"cptgpt/internal/trace"
	"cptgpt/internal/tracez"
)

// Speculative decoding: emit several tokens per transformer pass while
// preserving CPT-GPT's output distribution exactly.
//
// Plain decoding pays one full forward per emitted token. Speculative
// decoding has a cheap draft model (an SMM or n-gram proposer, draft.go)
// guess a chain of k tokens, runs all k through the transformer in ONE
// prefill-shaped pass (BatchDecoder.StepK, whose k-row GEMMs run ~5× the
// per-token matvec throughput on AVX2 machines), and then plays the
// standard speculative acceptance–rejection game position by position:
//
//   - a drafted value x, proposed with probability/density q(x), is
//     accepted with probability min(1, p(x)/q(x)) against the verified
//     target distribution p;
//   - on rejection the value is resampled from the residual distribution
//     ∝ max(p − q, 0), and the chain's unverified suffix is discarded
//     (BatchDecoder.TruncateSlot rewinds the KV cache).
//
// Either branch emits a value distributed exactly per p — the classic
// speculative-sampling lemma — so chaining over positions and over the
// three token fields (event, interarrival, stop) reproduces plain
// sampling's per-position conditionals bit-for-bit in distribution. The
// draft model only moves the ACCEPTANCE RATE, never the output law; the
// exactness tests in speculate_test.go pin this with chi-square and KS
// checks against the plain sampler.
//
// Token fields are verified in the same order plain sampling draws them
// (event, interarrival, stop):
//
//   - event: categorical acceptance–rejection with a categorical residual;
//   - interarrival: the target is the clamped Gaussian
//     clamp(N(mean, std), 0, 1) of GenOpts' Design-2 head — a mixed
//     distribution with atoms at 0 and 1 and a density between. The draft
//     proposes from the same family, so the acceptance ratio is the
//     Radon–Nikodym derivative w.r.t. the shared dominating measure
//     (Lebesgue on (0,1) plus the two atoms): atom masses compare with
//     atom masses, interior densities with densities. The residual is
//     sampled by rejection from the target itself.
//   - stop: the draft always proposes "continue" (chains only extend
//     through stop = 0), whose residual is exactly {stop = 1} — so the
//     verification collapses to drawing the stop field directly from the
//     target, and a rejected stop simply ends the stream. Nothing is
//     wasted and no draft statistics are needed.
//
// Scheduling is continuous batching exactly like sampleContinuous: a
// finished stream's slot reseats the next pending stream immediately. Every
// random draw comes from the stream's own index-seeded RNG in a fixed
// per-stream order, and StepK's per-slot results are independent of batch
// composition, so speculative output is deterministic per seed at every
// Parallelism × BatchSize × DraftTokens — though its streams differ from
// the non-speculative paths' (different RNG consumption), which remain
// bit-identical to PR 4.

// draftTokens resolves the per-pass draft chain length.
func (o GenOpts) draftTokens() int {
	if o.DraftTokens > 0 {
		return o.DraftTokens
	}
	return DefaultDraftTokens
}

// addDecodeStats accumulates src into dst atomically (workers report their
// decoders' lifetime counters into a shared GenOpts.Stats).
func addDecodeStats(dst *DecodeStats, src DecodeStats) {
	if dst == nil {
		return
	}
	atomic.AddInt64(&dst.Steps, src.Steps)
	atomic.AddInt64(&dst.SlotSteps, src.SlotSteps)
	atomic.AddInt64(&dst.DraftProposed, src.DraftProposed)
	atomic.AddInt64(&dst.DraftAccepted, src.DraftAccepted)
}

// softmaxInto fills probs with softmax(logits/temp), max-shifted. The probs
// are the distribution sampleLogitsInto draws from, made explicit for the
// acceptance ratios.
func softmaxInto(probs, logits []float64, temp float64) {
	probs = probs[:len(logits)]
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v/temp > maxv {
			maxv = v / temp
		}
	}
	var sum float64
	for i, v := range logits {
		p := math.Exp(v/temp - maxv)
		probs[i] = p
		sum += p
	}
	inv := 1 / sum
	for i := range probs {
		probs[i] *= inv
	}
}

// drawProbs samples an index from a normalized pmf.
func drawProbs(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	for i, p := range probs {
		u -= p
		if u < 0 {
			return i
		}
	}
	return len(probs) - 1
}

// verifyEvent runs one categorical acceptance–rejection round: evD was
// drawn from proposal pmf q; p is the verified target pmf. The returned
// index is distributed exactly per p; accepted reports whether the drafted
// value survived (the emitted token equals the draft, so the chain may
// continue).
func verifyEvent(evD int, q, p []float64, rng *rand.Rand) (ev int, accepted bool) {
	if q[evD] > 0 && rng.Float64()*q[evD] < p[evD] {
		return evD, true
	}
	// Residual ∝ max(p − q, 0).
	var total float64
	for i := range p {
		if d := p[i] - q[i]; d > 0 {
			total += d
		}
	}
	if total <= 0 {
		// p ≤ q everywhere means p == q (both sum to 1): rejection had
		// probability 0; numerically, fall back to a direct target draw.
		return drawProbs(p, rng), false
	}
	u := rng.Float64() * total
	last := evD
	for i := range p {
		if d := p[i] - q[i]; d > 0 {
			last = i
			u -= d
			if u < 0 {
				return i, false
			}
		}
	}
	return last, false
}

const sqrt2Pi = 2.5066282746310005024157652848110452530069867406099

// stdPhi is the standard normal CDF.
func stdPhi(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// clampedGaussRN is the Radon–Nikodym derivative of clamp(N(mu, sigma), 0, 1)
// at x, w.r.t. the dominating measure Lebesgue-on-(0,1) + δ₀ + δ₁: the atom
// mass at the clamp points, the Gaussian density between them.
func clampedGaussRN(x, mu, sigma float64) float64 {
	switch {
	case x <= 0:
		return stdPhi((0 - mu) / sigma)
	case x >= 1:
		return 1 - stdPhi((1-mu)/sigma)
	default:
		z := (x - mu) / sigma
		return math.Exp(-0.5*z*z) / (sigma * sqrt2Pi)
	}
}

// verifyIA runs the interarrival acceptance–rejection round. iaD was drawn
// from clamp(N(qMu, qSd), 0, 1); the target is clamp(N(pMu, pSd), 0, 1)
// under the distribution head, or the deterministic clamp(pMu) in the
// Table 8 ablation. The returned value is distributed exactly per the
// target; accepted reports draft survival.
func verifyIA(iaD, qMu, qSd, pMu, pSd float64, distHead bool, rng *rand.Rand) (ia float64, accepted bool) {
	if !distHead {
		// Point-mass target: the draft survives only on exact agreement;
		// the residual of everything else is the point mass itself.
		target := clamp01(pMu)
		return target, iaD == target
	}
	pd := clampedGaussRN(iaD, pMu, pSd)
	qd := clampedGaussRN(iaD, qMu, qSd)
	if qd > 0 && rng.Float64()*qd < pd {
		return iaD, true
	}
	// Residual ∝ p − min(p, q), sampled by rejection from the target: draw
	// y ~ p, keep it with probability 1 − min(1, q(y)/p(y)). Each round
	// succeeds with probability equal to the total rejection mass — the
	// same mass that brought us here — so the expected number of extra
	// target draws per emitted token is ~1 regardless of draft quality.
	for it := 0; it < 10000; it++ {
		y := clamp01(pMu + pSd*rng.NormFloat64())
		py := clampedGaussRN(y, pMu, pSd)
		qy := clampedGaussRN(y, qMu, qSd)
		if rng.Float64()*py >= math.Min(py, qy) {
			return y, false
		}
	}
	// Statistically unreachable (needs ~10⁴ consecutive sub-machine-epsilon
	// residual rounds); keep the last target draw rather than loop forever.
	return clamp01(pMu + pSd*rng.NormFloat64()), false
}

// stopContinueProb is p(stop = 0) under the target's temperature-scaled
// stop head — the acceptance probability of the draft's constant
// "continue" proposal.
func stopContinueProb(logits [2]float64, temp float64) float64 {
	a, b := logits[0]/temp, logits[1]/temp
	m := math.Max(a, b)
	ea, eb := math.Exp(a-m), math.Exp(b-m)
	return ea / (ea + eb)
}

// sampleSpeculative decodes the streams of out (global indices baseIdx+i)
// through dec with speculative continuous batching. Slot protocol: a seated
// stream always carries either a PENDING token (emitted but not yet
// consumed by the transformer — the bootstrap token right after seating, or
// a rejection's replacement) or HELD head outputs (a fully accepted pass's
// final conditional, from which the next token is sampled for free). Each
// round turns held heads into an emission + pending token, drafts a chain
// behind the pending token, verifies the whole chain in one StepK pass, and
// accepts a prefix.
func (m *Model) sampleSpeculative(dec *BatchDecoder, out []trace.Stream, baseIdx int, next *atomic.Int64, opts GenOpts, init *stats.Categorical, draft DraftModel) {
	capacity := dec.Capacity()
	dim := m.Tok.Dim()
	vocab := m.Tok.Vocab()
	v := m.Tok.V()
	total := int64(len(out))
	maxLen := m.Cfg.MaxLen
	temp := opts.Temperature
	k := opts.draftTokens()
	kMax := k + 1

	rngs := make([]*rand.Rand, capacity)
	times := make([]float64, capacity)
	cur := make([]int, capacity)
	committed := make([]DraftState, capacity)
	scratch := make([]DraftState, capacity)
	for i := range committed {
		committed[i] = draft.NewDraftState()
		scratch[i] = draft.NewDraftState()
	}

	toks := make([]float64, capacity*kMax*dim)
	probs := make([]float64, v)
	qProbs := make([]float64, v)

	// Held target heads (per slot; valid when held[slot]).
	held := make([]bool, capacity)
	heldEv := make([]float64, capacity*v)
	heldIA := make([]float64, capacity*2) // IAMean, IALogStd
	heldStop := make([]float64, capacity*2)

	// Pending emitted-but-unconsumed token (valid when !held for an active
	// slot).
	pendEv := make([]int, capacity)
	pendIA := make([]float64, capacity)

	// Draft chain bookkeeping, slot-major kMax rows (row 0 unused — it is
	// the pending token).
	type chainEnt struct {
		ev       int
		ia       float64
		qMu, qSd float64
	}
	chain := make([]chainEnt, capacity*kMax)
	chainQ := make([]float64, capacity*kMax*v)

	claim := func() int {
		if i := next.Add(1) - 1; i < total {
			return int(i)
		}
		return -1
	}

	// seat boots stream li into slot through the shared bootStream helper
	// (one definition of the bootstrap draw order across all schedulers)
	// and reports whether it needs decode passes. The bootstrap token
	// becomes the slot's pending token.
	seat := func(slot, li int) bool {
		dec.ResetSlot(slot)
		rng := stats.NewRand(streamSeed(opts.Seed, baseIdx+li))
		rngs[slot] = rng
		cur[slot] = li
		s := &out[li]
		evIdx, start := bootStream(s, baseIdx+li, opts, init, vocab, rng)
		times[slot] = start
		if len(s.Events) >= maxLen {
			return false
		}
		committed[slot].Reset(evIdx)
		pendEv[slot], pendIA[slot] = evIdx, 0
		held[slot] = false
		return true
	}

	refill := func(slot int) bool {
		for {
			li := claim()
			if li < 0 {
				return false
			}
			if seat(slot, li) {
				return true
			}
		}
	}

	// ensurePending converts held heads into an emission + pending token
	// (the free token of a fully accepted pass). On stream end it reseats
	// the slot; false retires the slot (population exhausted).
	ensurePending := func(slot int) bool {
		if !held[slot] {
			return true
		}
		held[slot] = false
		so := StepOut{
			EventLogits: heldEv[slot*v : (slot+1)*v],
			IAMean:      heldIA[slot*2],
			IALogStd:    heldIA[slot*2+1],
			StopLogits:  [2]float64{heldStop[slot*2], heldStop[slot*2+1]},
		}
		ev, scaled, stopIdx := m.sampleStep(so, temp, rngs[slot], probs)
		s := &out[cur[slot]]
		times[slot] += m.Tok.UnscaleIA(scaled)
		s.Events = append(s.Events, trace.Event{Time: times[slot], Type: vocab[ev]})
		if stopIdx != 1 && len(s.Events) < maxLen {
			committed[slot].Observe(ev, scaled)
			pendEv[slot], pendIA[slot] = ev, scaled
			return true
		}
		return refill(slot)
	}

	active := make([]int, 0, capacity)
	for slot := 0; slot < capacity; slot++ {
		if !refill(slot) {
			break
		}
		active = append(active, slot)
	}

	slotsRun := make([]int, 0, capacity)
	ks := make([]int, 0, capacity)
	keep := make([]int, 0, capacity)
	for len(active) > 0 {
		// Phase 1: resolve held heads, then draft a chain behind every
		// slot's pending token.
		draftSp := tracez.Begin(tracez.StageDecodeDraft, "")
		slotsRun = slotsRun[:0]
		ks = ks[:0]
		for _, slot := range active {
			if !ensurePending(slot) {
				continue
			}
			s := &out[cur[slot]]
			c := k
			if r := maxLen - len(s.Events); c > r {
				c = r
			}
			m.Tok.writeToken(toks[(slot*kMax)*dim:(slot*kMax+1)*dim], pendEv[slot], pendIA[slot], 0)
			scratch[slot].CopyFrom(committed[slot])
			for r := 1; r <= c; r++ {
				scratch[slot].Propose(qProbs)
				evD := drawProbs(qProbs, rngs[slot])
				qMu, qSd := scratch[slot].ProposeIA(evD)
				var iaD float64
				if m.Cfg.DistHead {
					iaD = clamp01(qMu + qSd*rngs[slot].NormFloat64())
				} else {
					iaD = clamp01(qMu)
				}
				ce := &chain[slot*kMax+r]
				ce.ev, ce.ia, ce.qMu, ce.qSd = evD, iaD, qMu, qSd
				copy(chainQ[(slot*kMax+r)*v:(slot*kMax+r+1)*v], qProbs)
				scratch[slot].Observe(evD, iaD)
				m.Tok.writeToken(toks[(slot*kMax+r)*dim:(slot*kMax+r+1)*dim], evD, iaD, 0)
			}
			slotsRun = append(slotsRun, slot)
			ks = append(ks, c+1)
		}
		draftSp.End(int64(len(slotsRun)), "")
		if len(slotsRun) == 0 {
			break
		}

		// Phase 2: one multi-token verify pass for the whole batch
		// (StepK records its own decode.stepk span).
		outs := dec.StepK(slotsRun, ks, kMax, toks)

		// Phase 3: acceptance–rejection over each slot's chain.
		verifySp := tracez.Begin(tracez.StageDecodeVerify, "")
		keep = keep[:0]
		var propTotal, accTotal int64
		for j, slot := range slotsRun {
			c := ks[j] - 1
			s := &out[cur[slot]]
			rng := rngs[slot]
			pos0 := dec.Pos(slot) - (c + 1) // slot position before the pass
			propTotal += int64(c)
			done := false
			i := 1
			for ; i <= c; i++ {
				h := outs[j][i-1] // target conditional for chain position i
				ce := chain[slot*kMax+i]

				softmaxInto(probs, h.EventLogits, temp)
				ev, okEv := verifyEvent(ce.ev, chainQ[(slot*kMax+i)*v:(slot*kMax+i+1)*v], probs, rng)
				pSd := math.Exp(h.IALogStd) // unused when !DistHead
				ia, okIA := verifyIA(ce.ia, ce.qMu, ce.qSd, h.IAMean, pSd, m.Cfg.DistHead, rng)
				stopIdx := 0
				if rng.Float64() >= stopContinueProb(h.StopLogits, temp) {
					stopIdx = 1
				}

				times[slot] += m.Tok.UnscaleIA(ia)
				s.Events = append(s.Events, trace.Event{Time: times[slot], Type: vocab[ev]})
				if okEv && okIA {
					accTotal++
				}
				if stopIdx == 1 || len(s.Events) >= maxLen {
					done = true
					break
				}
				committed[slot].Observe(ev, ia)
				if !(okEv && okIA) {
					// Rejection: the emitted replacement becomes the pending
					// token; drop the chain's unverified suffix.
					pendEv[slot], pendIA[slot] = ev, ia
					dec.TruncateSlot(slot, pos0+i)
					break
				}
			}
			if !done && i > c {
				// Full acceptance: the pass's final heads seed the next
				// round's free token.
				h := outs[j][c]
				copy(heldEv[slot*v:(slot+1)*v], h.EventLogits)
				heldIA[slot*2], heldIA[slot*2+1] = h.IAMean, h.IALogStd
				heldStop[slot*2], heldStop[slot*2+1] = h.StopLogits[0], h.StopLogits[1]
				held[slot] = true
			}
			if done {
				if refill(slot) {
					keep = append(keep, slot)
				}
				continue
			}
			keep = append(keep, slot)
		}
		dec.countDraft(propTotal, accTotal)
		verifySp.End(accTotal, "")
		active, keep = keep, active
	}
}
