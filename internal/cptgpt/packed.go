package cptgpt

import (
	"fmt"
	"math/rand/v2"

	"cptgpt/internal/tensor"
)

// PackedBatch is a multi-stream training minibatch: B encoded streams
// concatenated row-wise into one (ΣTₛ × d_token) matrix, with segment
// bounds for the block-diagonal causal attention mask and per-row position
// indices for the positional-embedding lookup. Packing B streams into one
// forward amortizes kernel dispatch and worker fan-out over the whole batch
// and feeds the pool ΣTₛ rows per op instead of Tₛ — the core of the packed
// minibatch trainer.
type PackedBatch struct {
	// Tokens is the ΣTₛ×d_token input matrix (streams stacked in order).
	// It is ephemeral: when a trainer has an arena installed, the buffer
	// dies at the next arena Reset.
	Tokens *tensor.Tensor
	// Bounds holds the B+1 segment offsets; stream s spans rows
	// Bounds[s]..Bounds[s+1].
	Bounds []int
	// PosIdx maps each packed row to its within-stream position (0..Tₛ-1).
	PosIdx []int
	// Targets holds the per-stream next-token targets, in segment order.
	Targets []*Targets
}

// PackStreams builds a PackedBatch from encoded streams (EncodeStream
// outputs). Streams are stacked in argument order; that order is load-
// bearing for bit-exact equivalence with per-stream training, because every
// row-serial reduction in the tape then adds the same terms in the same
// order as the per-stream passes did.
func PackStreams(ins []*tensor.Tensor, tgs []*Targets) *PackedBatch {
	if len(ins) == 0 || len(ins) != len(tgs) {
		panic(fmt.Sprintf("cptgpt: PackStreams got %d inputs and %d targets", len(ins), len(tgs)))
	}
	d := ins[0].Cols
	total := 0
	for _, in := range ins {
		if in.Cols != d {
			panic("cptgpt: PackStreams token-dimension mismatch")
		}
		total += in.Rows
	}
	pb := &PackedBatch{
		Tokens:  tensor.NewEphemeral(total, d),
		Bounds:  make([]int, 1, len(ins)+1),
		PosIdx:  make([]int, 0, total),
		Targets: tgs,
	}
	off := 0
	for _, in := range ins {
		copy(pb.Tokens.Data[off*d:], in.Data)
		for p := 0; p < in.Rows; p++ {
			pb.PosIdx = append(pb.PosIdx, p)
		}
		off += in.Rows
		pb.Bounds = append(pb.Bounds, off)
	}
	return pb
}

// Streams returns the number of packed streams.
func (pb *PackedBatch) Streams() int { return len(pb.Bounds) - 1 }

// Rows returns the total packed row (token) count.
func (pb *PackedBatch) Rows() int { return pb.Bounds[len(pb.Bounds)-1] }

// ForwardPacked runs the network over a packed minibatch and returns the
// head outputs for every packed row. Per-stream rows are bit-identical to
// Forward on each stream alone: the linear layers, layer norms and heads
// are row-wise, attention is computed segment-wise under the block-diagonal
// causal mask, and the positional embedding is gathered per row.
//
// When dropRng is non-nil dropout is active; the mask is drawn over the
// packed matrix in row-major order, which differs from the per-stream draw
// order — so with dropout the packed path is statistically, not bitwise,
// equivalent to serial training.
func (m *Model) ForwardPacked(pb *PackedBatch, dropRng *rand.Rand) (*Heads, error) {
	for s := 0; s < pb.Streams(); s++ {
		if t := pb.Bounds[s+1] - pb.Bounds[s]; t > m.Cfg.MaxLen {
			return nil, fmt.Errorf("cptgpt: packed stream %d length %d exceeds MaxLen %d", s, t, m.Cfg.MaxLen)
		}
	}
	x := m.InProj.Forward(pb.Tokens)
	x = tensor.Add(x, tensor.GatherRows(m.PosEmb, pb.PosIdx))
	for _, b := range m.BlocksNN {
		x = b.ForwardPacked(x, pb.Bounds)
		if m.Cfg.Dropout > 0 && dropRng != nil {
			x = tensor.Dropout(x, m.Cfg.Dropout, dropRng)
		}
	}
	x = m.Final.Forward(x)
	return m.headsOf(x), nil
}

// sliceHeads restricts packed head outputs to one segment's rows.
func sliceHeads(h *Heads, lo, hi int) *Heads {
	out := &Heads{
		EventLogits: tensor.SliceRows(h.EventLogits, lo, hi),
		IAMean:      tensor.SliceRows(h.IAMean, lo, hi),
		StopLogits:  tensor.SliceRows(h.StopLogits, lo, hi),
	}
	if h.IALogStd != nil {
		out.IALogStd = tensor.SliceRows(h.IALogStd, lo, hi)
	}
	return out
}

// LossPacked computes the per-stream training losses of a packed forward
// and combines them into one scalar, re-weighting stream s by
// rows_s/meanTokens exactly as the serial trainer scales each stream's
// backward pass. It returns the combined loss plus the raw (unweighted)
// per-stream loss values for epoch accounting.
func (m *Model) LossPacked(h *Heads, pb *PackedBatch, meanTokens float64) (total *tensor.Tensor, perStream []float64) {
	n := pb.Streams()
	losses := make([]*tensor.Tensor, n)
	weights := make([]float64, n)
	perStream = make([]float64, n)
	for s := 0; s < n; s++ {
		lo, hi := pb.Bounds[s], pb.Bounds[s+1]
		ls := m.Loss(sliceHeads(h, lo, hi), pb.Targets[s])
		losses[s] = ls
		weights[s] = float64(hi-lo) / meanTokens
		perStream[s] = ls.Data[0]
	}
	return tensor.AddScalars(weights, losses...), perStream
}
