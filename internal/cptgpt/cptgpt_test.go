package cptgpt

import (
	"bytes"
	"math"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/metrics"
	"cptgpt/internal/stats"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/tensor"
	"cptgpt/internal/trace"
)

// testTrainingData returns a small phone-only 4G ground-truth trace.
func testTrainingData(t *testing.T, ues int) *trace.Dataset {
	t.Helper()
	cfg := synthetic.DefaultConfig()
	cfg.UEs = map[events.DeviceType]int{events.Phone: ues}
	cfg.Hours = 1
	d, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.DModel = 24
	cfg.Heads = 4
	cfg.MLPHidden = 48
	cfg.HeadHidden = 24
	cfg.MaxLen = 160
	cfg.Epochs = 8
	return cfg
}

func TestTokenizerScaleRoundTrip(t *testing.T) {
	tk := Tokenizer{Gen: events.Gen4G, MinLog: 0, MaxLog: math.Log1p(1000), LogScale: true}
	for _, x := range []float64{0, 0.5, 1, 10, 100, 999} {
		s := tk.ScaleIA(x)
		if s < 0 || s > 1 {
			t.Fatalf("ScaleIA(%v) = %v outside [0,1]", x, s)
		}
		back := tk.UnscaleIA(s)
		if math.Abs(back-x) > 1e-6*(1+x) {
			t.Fatalf("round trip %v -> %v -> %v", x, s, back)
		}
	}
	// Out-of-range values clamp rather than extrapolate.
	if s := tk.ScaleIA(1e9); s != 1 {
		t.Fatalf("ScaleIA above range = %v, want 1", s)
	}
	if s := tk.ScaleIA(-5); s != 0 {
		t.Fatalf("ScaleIA below range = %v, want 0", s)
	}
}

func TestTokenizerDim(t *testing.T) {
	tk := Tokenizer{Gen: events.Gen4G, LogScale: true, MaxLog: 1}
	if tk.Dim() != 9 { // 1 + 6 + 2, the paper's d_token
		t.Fatalf("4G token dim = %d, want 9", tk.Dim())
	}
	tk5 := Tokenizer{Gen: events.Gen5G, LogScale: true, MaxLog: 1}
	if tk5.Dim() != 8 { // 1 + 5 + 2
		t.Fatalf("5G token dim = %d, want 8", tk5.Dim())
	}
}

func TestEncodeStream(t *testing.T) {
	s := &trace.Stream{UEID: "u", Device: events.Phone, Events: []trace.Event{
		{Time: 0, Type: events.Attach},
		{Time: 10, Type: events.S1ConnRel},
		{Time: 40, Type: events.ServiceRequest},
	}}
	d := &trace.Dataset{Generation: events.Gen4G, Streams: []trace.Stream{*s}}
	tk := FitTokenizer(d)
	in, tg, err := tk.EncodeStream(s)
	if err != nil {
		t.Fatal(err)
	}
	if in.Rows != 2 || in.Cols != 9 {
		t.Fatalf("encoded shape %dx%d, want 2x9", in.Rows, in.Cols)
	}
	// First token: ia 0, event ATCH (index 0), stop 0.
	if in.At(0, 0) != 0 {
		t.Fatalf("first token ia = %v, want 0", in.At(0, 0))
	}
	if in.At(0, 1) != 1 {
		t.Fatal("first token should one-hot ATCH")
	}
	if in.At(0, 7) != 1 || in.At(0, 8) != 0 {
		t.Fatal("first token stop flag should be 0")
	}
	// Targets: next events are S1_CONN_REL (idx 3) then SRV_REQ (idx 2).
	if tg.Event[0] != 3 || tg.Event[1] != 2 {
		t.Fatalf("targets %v, want [3 2]", tg.Event)
	}
	if tg.Stop[0] != 0 || tg.Stop[1] != 1 {
		t.Fatalf("stop targets %v, want [0 1]", tg.Stop)
	}
	if !tg.IAMask[0] || !tg.IAMask[1] {
		t.Fatal("IA targets should be unmasked")
	}
}

func TestEncodeStreamRejectsShort(t *testing.T) {
	s := &trace.Stream{Events: []trace.Event{{Time: 0, Type: events.Attach}}}
	tk := Tokenizer{Gen: events.Gen4G, MaxLog: 1, LogScale: true}
	if _, _, err := tk.EncodeStream(s); err == nil {
		t.Fatal("length-1 stream must be rejected")
	}
}

func TestEncodeStreamRejectsWrongVocabulary(t *testing.T) {
	s := &trace.Stream{Events: []trace.Event{
		{Time: 0, Type: events.Register}, // 5G event
		{Time: 1, Type: events.ANRel},
	}}
	tk := Tokenizer{Gen: events.Gen4G, MaxLog: 1, LogScale: true}
	if _, _, err := tk.EncodeStream(s); err == nil {
		t.Fatal("5G events must be rejected by a 4G tokenizer")
	}
}

// TestDecoderMatchesForward verifies the KV-cached incremental decoder
// against the full tape forward pass — the core inference-correctness
// invariant.
func TestDecoderMatchesForward(t *testing.T) {
	d := testTrainingData(t, 20)
	tk := FitTokenizer(d)
	cfg := smallConfig()
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}

	var enc *tensor.Tensor
	for i := range d.Streams {
		if len(d.Streams[i].Events) >= 6 && len(d.Streams[i].Events) <= cfg.MaxLen {
			enc, _, err = tk.EncodeStream(&d.Streams[i])
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if enc == nil {
		t.Skip("no suitable stream in tiny dataset")
	}

	h, err := m.Forward(enc, nil)
	if err != nil {
		t.Fatal(err)
	}

	dec := newDecoder(m)
	dim := tk.Dim()
	var out StepOut
	for r := 0; r < enc.Rows; r++ {
		out = dec.step(enc.Data[r*dim : (r+1)*dim])
		// Compare against the tape forward at this row.
		for j := 0; j < tk.V(); j++ {
			if diff := math.Abs(out.EventLogits[j] - h.EventLogits.At(r, j)); diff > 1e-9 {
				t.Fatalf("row %d event logit %d differs by %g", r, j, diff)
			}
		}
		if diff := math.Abs(out.IAMean - h.IAMean.At(r, 0)); diff > 1e-9 {
			t.Fatalf("row %d iaMean differs by %g", r, diff)
		}
		if diff := math.Abs(out.IALogStd - h.IALogStd.At(r, 0)); diff > 1e-9 {
			t.Fatalf("row %d iaLogStd differs by %g", r, diff)
		}
		for j := 0; j < 2; j++ {
			if diff := math.Abs(out.StopLogits[j] - h.StopLogits.At(r, j)); diff > 1e-9 {
				t.Fatalf("row %d stop logit %d differs by %g", r, j, diff)
			}
		}
	}
}

// TestTrainLearnsSemantics is the headline end-to-end check: a small model
// trained on ground-truth traffic should generate streams with a far lower
// violation rate than chance and a sane event breakdown.
func TestTrainLearnsSemantics(t *testing.T) {
	d := testTrainingData(t, 150)
	tk := FitTokenizer(d)
	cfg := smallConfig()
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(m, d, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.Epochs != cfg.Epochs {
		t.Fatalf("unexpected training result: %+v", res)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %v", res.EpochLoss)
	}

	gen, err := m.Generate(GenOpts{NumStreams: 200, Device: events.Phone, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gen.NumStreams() != 200 {
		t.Fatalf("generated %d streams, want 200", gen.NumStreams())
	}
	agg := metrics.Replay(gen)
	if r := agg.EventViolationRate(); r > 0.05 {
		t.Fatalf("event violation rate %.3f too high after training", r)
	}

	f := metrics.Evaluate(d, gen)
	// SRV_REQ + release should dominate the breakdown as in the source.
	srvIdx := events.VocabIndex(events.Gen4G, events.ServiceRequest)
	relIdx := events.VocabIndex(events.Gen4G, events.S1ConnRel)
	if f.BreakdownSynth[srvIdx]+f.BreakdownSynth[relIdx] < 0.5 {
		t.Fatalf("SRV_REQ+S1_CONN_REL share %.2f, expected dominant",
			f.BreakdownSynth[srvIdx]+f.BreakdownSynth[relIdx])
	}
}

func TestGenerateStreamProperties(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	m.InitialDist = d.InitialEventDist()
	gen, err := m.Generate(GenOpts{NumStreams: 30, Device: events.Tablet, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gen.Streams {
		s := &gen.Streams[i]
		if len(s.Events) == 0 || len(s.Events) > m.Cfg.MaxLen {
			t.Fatalf("stream %d length %d out of bounds", i, len(s.Events))
		}
		if s.Device != events.Tablet {
			t.Fatalf("stream %d device %v", i, s.Device)
		}
		last := math.Inf(-1)
		for _, e := range s.Events {
			if e.Time < last {
				t.Fatalf("stream %d timestamps decrease", i)
			}
			last = e.Time
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	d := testTrainingData(t, 30)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	m.InitialDist = d.InitialEventDist()
	g1, err := m.Generate(GenOpts{NumStreams: 10, Device: events.Phone, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.Generate(GenOpts{NumStreams: 10, Device: events.Phone, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Streams {
		a, b := g1.Streams[i], g2.Streams[i]
		if len(a.Events) != len(b.Events) {
			t.Fatalf("stream %d lengths differ: %d vs %d", i, len(a.Events), len(b.Events))
		}
		for j := range a.Events {
			if a.Events[j] != b.Events[j] {
				t.Fatalf("stream %d event %d differs", i, j)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := testTrainingData(t, 30)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	m.InitialDist = d.InitialEventDist()

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := m.Generate(GenOpts{NumStreams: 5, Device: events.Phone, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m2.Generate(GenOpts{NumStreams: 5, Device: events.Phone, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Streams {
		if len(g1.Streams[i].Events) != len(g2.Streams[i].Events) {
			t.Fatal("loaded model generates differently")
		}
		for j := range g1.Streams[i].Events {
			if g1.Streams[i].Events[j] != g2.Streams[i].Events[j] {
				t.Fatal("loaded model generates differently")
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := testTrainingData(t, 20)
	tk := FitTokenizer(d)
	m, err := NewModel(smallConfig(), tk)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c.Params()[0].Data[0] += 42
	if m.Params()[0].Data[0] == c.Params()[0].Data[0] {
		t.Fatal("clone shares parameter storage with original")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DModel = 0 },
		func(c *Config) { c.DModel = 30; c.Heads = 4 }, // not divisible
		func(c *Config) { c.MaxLen = 1 },
		func(c *Config) { c.LR = 0 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.LossWeights[1] = -1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestInitialDistExtractedDuringTraining(t *testing.T) {
	d := testTrainingData(t, 40)
	tk := FitTokenizer(d)
	cfg := smallConfig()
	cfg.Epochs = 1
	m, err := NewModel(cfg, tk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, d, TrainOpts{}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range m.InitialDist {
		if p < 0 {
			t.Fatal("negative initial probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("initial distribution sums to %v", sum)
	}
	// It should match the dataset's first-event distribution exactly.
	want := d.InitialEventDist()
	for i := range want {
		if math.Abs(want[i]-m.InitialDist[i]) > 1e-12 {
			t.Fatal("initial distribution not extracted from training data")
		}
	}
	_ = stats.Mean // keep stats import if unused paths change
}
