package experiments

import "fmt"

// Experiment pairs an id with its runner.
type Experiment struct {
	ID   string
	Run  func(*Lab) (*Report, error)
	Slow bool // involves extra model training beyond the shared lab
}

// All returns every experiment in presentation order (the order of the
// paper's evaluation section).
func All() []Experiment {
	return []Experiment{
		{ID: "table3", Run: Table3},
		{ID: "figure2", Run: Figure2},
		{ID: "table4", Run: Table4, Slow: true},
		{ID: "table5", Run: Table5},
		{ID: "table6", Run: Table6},
		{ID: "figure5", Run: Figure5},
		{ID: "table7", Run: Table7},
		{ID: "table8", Run: Table8, Slow: true},
		{ID: "figure6", Run: Figure6},
		{ID: "table9", Run: Table9, Slow: true},
		{ID: "table10", Run: Table10, Slow: true},
		{ID: "table11", Run: Table11},
		{ID: "figure7", Run: Figure7},
		{ID: "ablation-batchgen", Run: TableNetShareBatchGen, Slow: true},
		{ID: "ablation-logscale", Run: TableLogScale, Slow: true},
	}
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes every experiment against one shared lab, returning the
// reports in order. When skipSlow is true, experiments that train extra
// models (timing, ablations) are skipped.
func RunAll(l *Lab, skipSlow bool) ([]*Report, error) {
	var out []*Report
	for _, e := range All() {
		if skipSlow && e.Slow {
			continue
		}
		l.logf("running %s", e.ID)
		r, err := e.Run(l)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
