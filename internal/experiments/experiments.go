// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function from a Lab — a cache of
// ground-truth traces and trained generators — to a Report carrying one or
// more rendered tables. The per-experiment index lives in DESIGN.md §4;
// EXPERIMENTS.md records paper-vs-measured values.
//
// Experiments are deterministic for a fixed Scale and seed, and all heavy
// artifacts (datasets, trained models, timing runs) are built lazily and
// shared across experiments through the Lab.
package experiments

import (
	"fmt"
	"math"
	"sync"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/metrics"
	"cptgpt/internal/netshare"
	"cptgpt/internal/smm"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/trace"
)

// Scale selects the experiment size preset.
type Scale int

const (
	// Unit is the smallest preset, sized for `go test`.
	Unit Scale = iota
	// Short is the benchmark preset (default for cmd/cptexperiments).
	Short
	// Full is the paper-shaped preset (1000 generated UEs per generator,
	// six hourly models) for unattended runs.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Unit:
		return "unit"
	case Short:
		return "short"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts "unit" / "short" / "full".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "unit":
		return Unit, nil
	case "short":
		return Short, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want unit, short or full)", s)
	}
}

// sizes bundles every scale-dependent knob.
type sizes struct {
	trainUEs   map[events.DeviceType]int
	evalUEs    int // generated streams per generator per device
	cptEpochs  int
	cptFTEps   int // fine-tune epochs (device transfer)
	cptDModel  int
	nsEpochs   int
	nsFTEps    int
	smmK       int
	hours      int // hourly-drift experiments (Tables 4, 9, 10)
	hourEpochs int // per-hour scratch epoch budget
	scaleMults []int
	memStreams int // generated streams for the memorization audit
}

func (s Scale) sizes() sizes {
	switch s {
	case Full:
		return sizes{
			trainUEs:   map[events.DeviceType]int{events.Phone: 1200, events.ConnectedCar: 700, events.Tablet: 500},
			evalUEs:    1000,
			cptEpochs:  24,
			cptFTEps:   8,
			cptDModel:  32,
			nsEpochs:   40,
			nsFTEps:    16,
			smmK:       32,
			hours:      6,
			hourEpochs: 20,
			scaleMults: []int{1, 2, 4, 8, 16},
			memStreams: 600,
		}
	case Short:
		return sizes{
			trainUEs:   map[events.DeviceType]int{events.Phone: 500, events.ConnectedCar: 300, events.Tablet: 250},
			evalUEs:    500,
			cptEpochs:  20,
			cptFTEps:   7,
			cptDModel:  32,
			nsEpochs:   30,
			nsFTEps:    12,
			smmK:       16,
			hours:      4,
			hourEpochs: 14,
			scaleMults: []int{1, 2, 4, 8},
			memStreams: 300,
		}
	default: // Unit
		return sizes{
			trainUEs:   map[events.DeviceType]int{events.Phone: 150, events.ConnectedCar: 90, events.Tablet: 80},
			evalUEs:    150,
			cptEpochs:  6,
			cptFTEps:   3,
			cptDModel:  24,
			nsEpochs:   6,
			nsFTEps:    3,
			smmK:       6,
			hours:      2,
			hourEpochs: 4,
			scaleMults: []int{1, 2},
			memStreams: 100,
		}
	}
}

// Lab caches the shared experiment artifacts: ground-truth train/test
// traces per device type and the four trained generators per device type.
// All fields build lazily; a Lab is safe for sequential use (experiments
// run one at a time, as in the paper's pipeline).
type Lab struct {
	Scale Scale
	Seed  uint64
	// Log, when non-nil, receives progress lines (training announcements).
	Log func(format string, args ...any)
	// Parallelism bounds per-generator sampling concurrency; 0 means the
	// tensor-layer default (GOMAXPROCS, or tensor.SetParallelism's value).
	// Generated datasets are identical at every setting.
	Parallelism int
	// BatchSize is the CPT-GPT lockstep decode batch; 0 means the
	// generator default.
	BatchSize int
	// Microbatch is the CPT-GPT packed-minibatch size for training (streams
	// per forward pass); 0 means the model-config default. Trained weights
	// are bit-identical at every setting (Dropout is 0 here), so results do
	// not depend on it.
	Microbatch int

	sz sizes

	mu       sync.Mutex
	train    map[events.DeviceType]*trace.Dataset
	test     map[events.DeviceType]*trace.Dataset
	cpt      map[events.DeviceType]*cptgpt.Model
	ns       map[events.DeviceType]*netshare.Model
	smm1     map[events.DeviceType]*smm.Model
	smmK     map[events.DeviceType]*smm.Model
	gen      map[string]*trace.Dataset // cached synthesized datasets
	hourly   []*trace.Dataset          // train trace sliced per hour
	hourlyTe []*trace.Dataset          // test trace sliced per hour
	timing   *timingResults
}

// NewLab creates a lab at the given scale. Seed 0 selects the default seed.
func NewLab(scale Scale, seed uint64) *Lab {
	if seed == 0 {
		seed = 1
	}
	return &Lab{
		Scale: scale,
		Seed:  seed,
		sz:    scale.sizes(),
		train: make(map[events.DeviceType]*trace.Dataset),
		test:  make(map[events.DeviceType]*trace.Dataset),
		cpt:   make(map[events.DeviceType]*cptgpt.Model),
		ns:    make(map[events.DeviceType]*netshare.Model),
		smm1:  make(map[events.DeviceType]*smm.Model),
		smmK:  make(map[events.DeviceType]*smm.Model),
		gen:   make(map[string]*trace.Dataset),
	}
}

func (l *Lab) logf(format string, args ...any) {
	if l.Log != nil {
		l.Log(format, args...)
	}
}

// groundTruth builds a 1-hour ground-truth trace for one device type.
func (l *Lab) groundTruth(dev events.DeviceType, seed uint64) (*trace.Dataset, error) {
	cfg := synthetic.Config{
		Generation: events.Gen4G,
		Seed:       seed,
		UEs:        map[events.DeviceType]int{dev: l.sz.trainUEs[dev]},
		Hours:      1,
		StartHour:  10,
	}
	return synthetic.Generate(cfg)
}

// Train returns the training ("June") trace for a device type.
func (l *Lab) Train(dev events.DeviceType) (*trace.Dataset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d, ok := l.train[dev]; ok {
		return d, nil
	}
	d, err := l.groundTruth(dev, l.Seed)
	if err != nil {
		return nil, err
	}
	l.train[dev] = d
	return d, nil
}

// Test returns the held-out ("August") trace for a device type — same
// generating process, disjoint seed, as the paper trains on one collection
// period and tests on another.
func (l *Lab) Test(dev events.DeviceType) (*trace.Dataset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d, ok := l.test[dev]; ok {
		return d, nil
	}
	d, err := l.groundTruth(dev, l.Seed^0xA0605)
	if err != nil {
		return nil, err
	}
	l.test[dev] = d
	return d, nil
}

// probeFor returns the fidelity score function (lower = better) used for
// checkpoint ranking, matching the paper's §5.5 heuristic: generate a small
// sample and combine the distribution metrics against a validation slice.
func (l *Lab) probeFor(val *trace.Dataset, generate func() (*trace.Dataset, error)) func() float64 {
	return func() float64 {
		g, err := generate()
		if err != nil {
			return math.Inf(1)
		}
		f := metrics.Evaluate(val, g)
		return f.FlowLenMaxY + f.SojournConnMaxY + f.SojournIdleMaxY +
			5*f.AvgAbsBreakdownDiff + 3*f.EventViolation
	}
}

// cptConfig returns the scale's CPT-GPT model configuration.
func (l *Lab) cptConfig() cptgpt.Config {
	cfg := cptgpt.DefaultConfig()
	cfg.DModel = l.sz.cptDModel
	cfg.Heads = 4
	cfg.MLPHidden = 2 * l.sz.cptDModel
	cfg.HeadHidden = l.sz.cptDModel
	cfg.MaxLen = 200
	cfg.Epochs = l.sz.cptEpochs
	cfg.LR = 3e-3
	cfg.AccumStreams = 4
	cfg.Seed = l.Seed ^ 0xC97
	return cfg
}

// CPT returns the trained CPT-GPT model for a device type. The phone model
// is trained from scratch; connected-car and tablet models are adapted from
// it by transfer learning, exactly as §5.1 describes.
func (l *Lab) CPT(dev events.DeviceType) (*cptgpt.Model, error) {
	l.mu.Lock()
	if m, ok := l.cpt[dev]; ok {
		l.mu.Unlock()
		return m, nil
	}
	l.mu.Unlock()

	if dev != events.Phone {
		base, err := l.CPT(events.Phone)
		if err != nil {
			return nil, err
		}
		d, err := l.Train(dev)
		if err != nil {
			return nil, err
		}
		m, err := base.Clone()
		if err != nil {
			return nil, err
		}
		l.logf("fine-tuning CPT-GPT %s model from phone base (%d streams)", dev, d.NumStreams())
		if _, err := cptgpt.FineTune(m, d, cptgpt.TrainOpts{Epochs: l.sz.cptFTEps, EarlyStopPatience: 0, Parallelism: l.Parallelism, MicrobatchStreams: l.Microbatch}); err != nil {
			return nil, err
		}
		l.mu.Lock()
		l.cpt[dev] = m
		l.mu.Unlock()
		return m, nil
	}

	d, err := l.Train(events.Phone)
	if err != nil {
		return nil, err
	}
	tok := cptgpt.FitTokenizer(d)
	m, err := cptgpt.NewModel(l.cptConfig(), tok)
	if err != nil {
		return nil, err
	}
	// No checkpoint-ranking probe here: supervised training is stable, and
	// at this probe-sample size the KS noise floor (~0.1 for 120 streams)
	// makes checkpoint selection worse than simply taking the final epoch.
	// The GAN baseline keeps the probe (NetShare in this lab) because its
	// losses genuinely do not track sample quality (§5.5).
	l.logf("training CPT-GPT phone model from scratch (%d streams, %d epochs)", d.NumStreams(), l.sz.cptEpochs)
	if _, err := cptgpt.Train(m, d, cptgpt.TrainOpts{Parallelism: l.Parallelism, MicrobatchStreams: l.Microbatch}); err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.cpt[events.Phone] = m
	l.mu.Unlock()
	return m, nil
}

// nsConfig returns the scale's NetShare configuration.
func (l *Lab) nsConfig() netshare.Config {
	cfg := netshare.DefaultConfig()
	cfg.Epochs = l.sz.nsEpochs
	cfg.Seed = l.Seed ^ 0x75
	return cfg
}

// NetShare returns the trained NetShare model for a device type, built with
// the same scratch-then-transfer scheme as CPT-GPT and checkpoint-ranked
// with the fidelity probe (§5.5).
func (l *Lab) NetShare(dev events.DeviceType) (*netshare.Model, error) {
	l.mu.Lock()
	if m, ok := l.ns[dev]; ok {
		l.mu.Unlock()
		return m, nil
	}
	l.mu.Unlock()

	d, err := l.Train(dev)
	if err != nil {
		return nil, err
	}
	val := d.Sample(200)

	var m *netshare.Model
	epochs := l.sz.nsEpochs
	if dev != events.Phone {
		base, err := l.NetShare(events.Phone)
		if err != nil {
			return nil, err
		}
		if m, err = base.Clone(); err != nil {
			return nil, err
		}
		epochs = l.sz.nsFTEps
		l.logf("fine-tuning NetShare %s model from phone base (%d streams)", dev, d.NumStreams())
	} else {
		if m, err = netshare.New(l.nsConfig()); err != nil {
			return nil, err
		}
		l.logf("training NetShare phone model from scratch (%d streams, %d epochs)", d.NumStreams(), epochs)
	}
	probe := l.probeFor(val, func() (*trace.Dataset, error) {
		return m.Generate(netshare.GenOpts{NumStreams: 120, Device: dev, Seed: l.Seed ^ 0x9999})
	})
	if _, err := netshare.Train(m, d, netshare.TrainOpts{Epochs: epochs, Probe: probe, ProbeEvery: 2, Parallelism: l.Parallelism}); err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.ns[dev] = m
	l.mu.Unlock()
	return m, nil
}

// SMM returns the fitted SMM baseline for a device type: clustered=false
// gives SMM-1, clustered=true gives SMM-K.
func (l *Lab) SMM(dev events.DeviceType, clustered bool) (*smm.Model, error) {
	l.mu.Lock()
	cache := l.smm1
	if clustered {
		cache = l.smmK
	}
	if m, ok := cache[dev]; ok {
		l.mu.Unlock()
		return m, nil
	}
	l.mu.Unlock()

	d, err := l.Train(dev)
	if err != nil {
		return nil, err
	}
	cfg := smm.DefaultConfig()
	cfg.Seed = l.Seed ^ 0x5111
	if clustered {
		cfg.K = l.sz.smmK
	}
	m, err := smm.Fit(d, cfg)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	cache[dev] = m
	l.mu.Unlock()
	return m, nil
}

// GeneratorID names the four generators of the evaluation.
type GeneratorID string

// Generator identifiers, in the paper's column order.
const (
	GenSMM1     GeneratorID = "SMM-1"
	GenSMMK     GeneratorID = "SMM-K"
	GenNetShare GeneratorID = "NetShare"
	GenCPTGPT   GeneratorID = "CPT-GPT"
)

// AllGenerators returns the generator ids in presentation order.
func AllGenerators() []GeneratorID {
	return []GeneratorID{GenSMM1, GenSMMK, GenNetShare, GenCPTGPT}
}

// Generated returns (and caches) the synthesized dataset of one generator
// for one device type, sized by the scale's evalUEs (the paper synthesizes
// 1000 streams per generator for the fidelity evaluation).
func (l *Lab) Generated(id GeneratorID, dev events.DeviceType) (*trace.Dataset, error) {
	return l.GeneratedN(id, dev, l.sz.evalUEs)
}

// GeneratedN is Generated with an explicit stream count (used by the
// scalability study, Figure 6).
func (l *Lab) GeneratedN(id GeneratorID, dev events.DeviceType, n int) (*trace.Dataset, error) {
	key := fmt.Sprintf("%s/%s/%d", id, dev, n)
	l.mu.Lock()
	if d, ok := l.gen[key]; ok {
		l.mu.Unlock()
		return d, nil
	}
	l.mu.Unlock()

	var d *trace.Dataset
	var err error
	seed := l.Seed ^ 0xEE<<8 ^ uint64(dev)
	switch id {
	case GenSMM1, GenSMMK:
		m, ferr := l.SMM(dev, id == GenSMMK)
		if ferr != nil {
			return nil, ferr
		}
		d, err = m.Generate(smm.GenOpts{NumStreams: n, Device: dev, Seed: seed, Parallelism: l.Parallelism})
	case GenNetShare:
		m, ferr := l.NetShare(dev)
		if ferr != nil {
			return nil, ferr
		}
		d, err = m.Generate(netshare.GenOpts{NumStreams: n, Device: dev, Seed: seed, Parallelism: l.Parallelism})
	case GenCPTGPT:
		m, ferr := l.CPT(dev)
		if ferr != nil {
			return nil, ferr
		}
		d, err = m.Generate(cptgpt.GenOpts{NumStreams: n, Device: dev, Seed: seed, Parallelism: l.Parallelism, BatchSize: l.BatchSize})
	default:
		return nil, fmt.Errorf("experiments: unknown generator %q", id)
	}
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.gen[key] = d
	l.mu.Unlock()
	return d, nil
}

// Hourly returns the multi-hour train and test traces sliced per hour,
// building them on first use (drift experiments: Tables 4, 9, 10).
func (l *Lab) Hourly() (train, test []*trace.Dataset, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hourly != nil {
		return l.hourly, l.hourlyTe, nil
	}
	mk := func(seed uint64) ([]*trace.Dataset, error) {
		cfg := synthetic.Config{
			Generation: events.Gen4G,
			Seed:       seed,
			UEs:        map[events.DeviceType]int{events.Phone: l.sz.trainUEs[events.Phone]},
			Hours:      l.sz.hours,
			StartHour:  6, // crosses the morning diurnal ramp → real drift
		}
		d, err := synthetic.Generate(cfg)
		if err != nil {
			return nil, err
		}
		out := make([]*trace.Dataset, l.sz.hours)
		for h := 0; h < l.sz.hours; h++ {
			out[h] = d.SliceHour(h)
		}
		return out, nil
	}
	if l.hourly, err = mk(l.Seed ^ 0x40); err != nil {
		l.hourly = nil
		return nil, nil, err
	}
	if l.hourlyTe, err = mk(l.Seed ^ 0x41); err != nil {
		l.hourly, l.hourlyTe = nil, nil
		return nil, nil, err
	}
	return l.hourly, l.hourlyTe, nil
}
