package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of strings.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table in aligned monospace, suitable for terminals and
// EXPERIMENTS.md code blocks.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Report is the output of one experiment: an id ("table5", "figure2"), a
// caption, one or more tables and free-form notes (e.g. paper-vs-measured
// commentary).
type Report struct {
	ID      string
	Caption string
	Tables  []*Table
	Notes   []string
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Caption)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct renders a fraction as a percentage with two decimals.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// pct3 renders a fraction as a percentage with three decimals (used for
// near-zero violation rates).
func pct3(x float64) string { return fmt.Sprintf("%.3f%%", 100*x) }

// signedPct renders a signed percentage difference.
func signedPct(x float64) string { return fmt.Sprintf("%+.2f%%", 100*x) }

// cdfDeciles samples the ECDF of xs at the given quantile levels and
// returns the x values (for decile-style figure tables).
func cdfDeciles(xs []float64, qs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if len(s) == 0 {
			out[i] = 0
			continue
		}
		idx := int(q * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}

// defaultQs are the quantile levels used in figure tables.
var defaultQs = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}

// qsHeader renders the quantile header row.
func qsHeader(label string) []string {
	h := []string{label}
	for _, q := range defaultQs {
		h = append(h, fmt.Sprintf("p%02.0f", q*100))
	}
	return h
}

// qsRow renders one curve's quantiles with a value formatter.
func qsRow(name string, xs []float64, format func(float64) string) []string {
	row := []string{name}
	for _, v := range cdfDeciles(xs, defaultQs) {
		row = append(row, format(v))
	}
	return row
}

// secs formats seconds compactly.
func secs(v float64) string { return fmt.Sprintf("%.1fs", v) }

// count formats a float count without decimals.
func count(v float64) string { return fmt.Sprintf("%.0f", v) }
