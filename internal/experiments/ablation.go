package experiments

import (
	"fmt"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/metrics"
	"cptgpt/internal/netshare"
	"cptgpt/internal/trace"
)

// Table8 reproduces the sensitivity/ablation study: CPT-GPT trained with
// loss weights 1:1:1 (the default), 3:1:1, 1:3:1, 1:1:3, and with the
// distribution head disabled (predicting a single interarrival scalar with
// MSE instead of Gaussian parameters with NLL).
func Table8(l *Lab) (*Report, error) {
	real, err := l.Test(events.Phone)
	if err != nil {
		return nil, err
	}
	train, err := l.Train(events.Phone)
	if err != nil {
		return nil, err
	}
	tok := cptgpt.FitTokenizer(train)

	type variant struct {
		name    string
		weights [3]float64
		dist    bool
	}
	variants := []variant{
		{"1:1:1 (ours)", [3]float64{1, 1, 1}, true},
		{"3:1:1", [3]float64{3, 1, 1}, true},
		{"1:3:1", [3]float64{1, 3, 1}, true},
		{"1:1:3", [3]float64{1, 1, 3}, true},
		{"no dist. pred.", [3]float64{1, 1, 1}, false},
	}

	t := &Table{
		Title:  "CPT-GPT ablation: loss weights (event:arrival:stop) and distribution head",
		Header: []string{"variant", "event viol", "stream viol", "sojourn CONN", "sojourn IDLE", "flow length", "breakdown diff"},
	}
	for _, v := range variants {
		var m *cptgpt.Model
		if v.name == "1:1:1 (ours)" {
			// The default variant is exactly the lab's phone model.
			if m, err = l.CPT(events.Phone); err != nil {
				return nil, err
			}
		} else {
			cfg := l.cptConfig()
			cfg.LossWeights = v.weights
			cfg.DistHead = v.dist
			if m, err = cptgpt.NewModel(cfg, tok); err != nil {
				return nil, err
			}
			l.logf("ablation: training CPT-GPT variant %q", v.name)
			if _, err = cptgpt.Train(m, train, cptgpt.TrainOpts{Parallelism: l.Parallelism, MicrobatchStreams: l.Microbatch}); err != nil {
				return nil, err
			}
		}
		gen, err := m.Generate(cptgpt.GenOpts{NumStreams: l.sz.evalUEs, Device: events.Phone, Seed: l.Seed ^ 0x8})
		if err != nil {
			return nil, err
		}
		f := metrics.Evaluate(real, gen)
		t.AddRow(v.name,
			pct3(f.EventViolation), pct(f.StreamViolation),
			pct(f.SojournConnMaxY), pct(f.SojournIdleMaxY),
			pct(f.FlowLenMaxY), pct(f.AvgAbsBreakdownDiff))
	}
	return &Report{
		ID:      "table8",
		Caption: "Loss-weight sensitivity and the distribution-head ablation",
		Tables:  []*Table{t},
		Notes: []string{
			"paper: loss weights barely matter (sojourn CONN 6.4–9.1% across weightings); removing the distribution head collapses fidelity (flow-length max-y 3.8% → 69.9%)",
		},
	}, nil
}

// TableLogScale is the Figure 7 companion ablation: CPT-GPT trained with
// the tokenizer's log1p interarrival scaling disabled (plain min-max over
// raw seconds). The paper's Appendix B argues log scaling un-skews the
// heavy-tailed interarrival distribution; without it most scaled values
// crowd near zero and the Gaussian head cannot resolve them.
func TableLogScale(l *Lab) (*Report, error) {
	real, err := l.Test(events.Phone)
	if err != nil {
		return nil, err
	}
	train, err := l.Train(events.Phone)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "CPT-GPT with and without log-scaled interarrival tokenization (phones)",
		Header: []string{"variant", "sojourn CONN", "sojourn IDLE", "flow length", "breakdown diff"},
	}
	for _, v := range []struct {
		name     string
		logScale bool
	}{{"log1p + min-max (ours)", true}, {"raw min-max", false}} {
		var m *cptgpt.Model
		if v.logScale {
			if m, err = l.CPT(events.Phone); err != nil {
				return nil, err
			}
		} else {
			tok := cptgpt.FitTokenizer(train)
			tok.LogScale = false
			// Refit bounds in raw-seconds space.
			tok.MinLog, tok.MaxLog = rawIABounds(train)
			if m, err = cptgpt.NewModel(l.cptConfig(), tok); err != nil {
				return nil, err
			}
			l.logf("ablation: training CPT-GPT without log scaling")
			if _, err = cptgpt.Train(m, train, cptgpt.TrainOpts{Parallelism: l.Parallelism, MicrobatchStreams: l.Microbatch}); err != nil {
				return nil, err
			}
		}
		gen, err := m.Generate(cptgpt.GenOpts{NumStreams: l.sz.evalUEs, Device: events.Phone, Seed: l.Seed ^ 0x10a})
		if err != nil {
			return nil, err
		}
		f := metrics.Evaluate(real, gen)
		t.AddRow(v.name, pct(f.SojournConnMaxY), pct(f.SojournIdleMaxY),
			pct(f.FlowLenMaxY), pct(f.AvgAbsBreakdownDiff))
	}
	return &Report{
		ID:      "ablation-logscale",
		Caption: "Extension: the tokenizer's log scaling matters for heavy-tailed interarrivals (Figure 7 rationale)",
		Tables:  []*Table{t},
	}, nil
}

// rawIABounds returns the min/max raw interarrival across the dataset.
func rawIABounds(d *trace.Dataset) (lo, hi float64) {
	lo, hi = 0, 1
	first := true
	for i := range d.Streams {
		ia := d.Streams[i].Interarrivals()
		for _, x := range ia[min(len(ia), 1):] {
			if first {
				lo, hi = x, x
				first = false
				continue
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	if hi-lo < 1e-9 {
		hi = lo + 1
	}
	return lo, hi
}

// TableNetShareBatchGen is an extension ablation (not in the paper's tables
// but motivated by its L4 discussion): how NetShare's batch-generation size
// S affects semantic correctness — larger batches sacrifice more intra-batch
// dependency.
func TableNetShareBatchGen(l *Lab) (*Report, error) {
	real, err := l.Test(events.Phone)
	if err != nil {
		return nil, err
	}
	train, err := l.Train(events.Phone)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "NetShare batch-generation size S vs fidelity (phones)",
		Header: []string{"S", "event viol", "stream viol", "flow length", "breakdown diff"},
	}
	for _, s := range []int{2, 5, 10} {
		cfg := l.nsConfig()
		cfg.BatchGen = s
		cfg.Steps = 60 / s // hold MaxLen at 60
		m, err := netshare.New(cfg)
		if err != nil {
			return nil, err
		}
		val := train.Sample(150)
		probe := l.probeFor(val, func() (*trace.Dataset, error) {
			return m.Generate(netshare.GenOpts{NumStreams: 120, Device: events.Phone, Seed: l.Seed ^ 0x888})
		})
		l.logf("ablation: training NetShare with batch-generation S=%d", s)
		if _, err := netshare.Train(m, train, netshare.TrainOpts{Probe: probe, ProbeEvery: 2, Parallelism: l.Parallelism}); err != nil {
			return nil, err
		}
		gen, err := m.Generate(netshare.GenOpts{NumStreams: l.sz.evalUEs, Device: events.Phone, Seed: l.Seed ^ 0x889})
		if err != nil {
			return nil, err
		}
		f := metrics.Evaluate(real, gen)
		agg := metrics.Replay(gen)
		t.AddRow(fmt.Sprintf("%d", s),
			pct3(agg.EventViolationRate()), pct(agg.StreamViolationRate()),
			pct(f.FlowLenMaxY), pct(f.AvgAbsBreakdownDiff))
	}
	return &Report{
		ID:      "ablation-batchgen",
		Caption: "Extension: batch-generation size trades intra-batch dependency for fewer LSTM passes (L4)",
		Tables:  []*Table{t},
	}, nil
}
