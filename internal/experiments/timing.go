package experiments

import (
	"fmt"
	"time"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/metrics"
	"cptgpt/internal/netshare"
	"cptgpt/internal/trace"
)

// timingResults caches the drift-adaptation measurement shared by Tables 4,
// 9 and 10: per-framework wall-clock time to a converged model with and
// without transfer learning, plus the resulting hour models for fidelity
// evaluation.
type timingResults struct {
	hours int

	nsScratchAll  time.Duration // one model over all hours, from scratch
	nsFirstHour   time.Duration
	nsFinetuneAvg time.Duration
	nsTotal       time.Duration

	cgScratchAll  time.Duration
	cgFirstHour   time.Duration
	cgFinetuneAvg time.Duration
	cgTotal       time.Duration

	// Models for the Table 10 fidelity comparison at the probe hour.
	probeHour    int
	nsScratchMod *netshare.Model
	nsXferMod    *netshare.Model
	cgScratchMod *cptgpt.Model
	cgXferMod    *cptgpt.Model
}

// timeToBest converts a training run's duration and best-checkpoint epoch
// into "time to converged model": the wall-clock share spent up to the best
// checkpoint (epoch cost is uniform). With no probe information it falls
// back to the full duration.
func timeToBest(dur time.Duration, bestEpoch, epochs int) time.Duration {
	if bestEpoch <= 0 || epochs <= 0 {
		return dur
	}
	return time.Duration(float64(dur) * float64(bestEpoch) / float64(epochs))
}

// driftTiming runs (once) the full drift-adaptation measurement of §5.5:
// train each framework on the multi-hour trace from scratch, then build an
// hourly ensemble by training hour 0 from scratch and fine-tuning
// recursively through the remaining hours, timing everything with the
// checkpoint-ranking convergence criterion.
func (l *Lab) driftTiming() (*timingResults, error) {
	l.mu.Lock()
	if l.timing != nil {
		defer l.mu.Unlock()
		return l.timing, nil
	}
	l.mu.Unlock()

	hourlyTrain, hourlyTest, err := l.Hourly()
	if err != nil {
		return nil, err
	}
	hours := len(hourlyTrain)
	tr := &timingResults{hours: hours, probeHour: min(3, hours-1)}

	// Concatenated multi-hour dataset (hour slices already rename UEs).
	all := &trace.Dataset{Generation: events.Gen4G}
	for _, h := range hourlyTrain {
		all.Streams = append(all.Streams, h.Streams...)
	}

	// ---------------- CPT-GPT ----------------
	cptCfg := l.cptConfig()
	cptCfg.Epochs = l.sz.hourEpochs
	mkProbe := func(val *trace.Dataset, gen func() (*trace.Dataset, error)) func() float64 {
		return l.probeFor(val.Sample(150), gen)
	}

	l.logf("drift timing: CPT-GPT scratch model over %d hours (%d streams)", hours, all.NumStreams())
	tok := cptgpt.FitTokenizer(all)
	cgAll, err := cptgpt.NewModel(cptCfg, tok)
	if err != nil {
		return nil, err
	}
	probe := mkProbe(all, func() (*trace.Dataset, error) {
		return cgAll.Generate(cptgpt.GenOpts{NumStreams: 100, Device: events.Phone, Seed: l.Seed ^ 0xF00})
	})
	res, err := cptgpt.Train(cgAll, all, cptgpt.TrainOpts{Probe: probe, ProbeEvery: 2, Parallelism: l.Parallelism, MicrobatchStreams: l.Microbatch})
	if err != nil {
		return nil, err
	}
	tr.cgScratchAll = timeToBest(res.Duration, res.BestEpoch, res.Epochs)
	tr.cgScratchMod = cgAll

	l.logf("drift timing: CPT-GPT hourly ensemble via transfer learning")
	cgHour, err := cptgpt.NewModel(cptCfg, cptgpt.FitTokenizer(hourlyTrain[0]))
	if err != nil {
		return nil, err
	}
	probe = mkProbe(hourlyTrain[0], func() (*trace.Dataset, error) {
		return cgHour.Generate(cptgpt.GenOpts{NumStreams: 100, Device: events.Phone, Seed: l.Seed ^ 0xF01})
	})
	res, err = cptgpt.Train(cgHour, hourlyTrain[0], cptgpt.TrainOpts{Probe: probe, ProbeEvery: 2, Parallelism: l.Parallelism, MicrobatchStreams: l.Microbatch})
	if err != nil {
		return nil, err
	}
	tr.cgFirstHour = timeToBest(res.Duration, res.BestEpoch, res.Epochs)

	var cgFT time.Duration
	cur := cgHour
	for h := 1; h < hours; h++ {
		next, err := cur.Clone()
		if err != nil {
			return nil, err
		}
		probe = mkProbe(hourlyTrain[h], func() (*trace.Dataset, error) {
			return next.Generate(cptgpt.GenOpts{NumStreams: 100, Device: events.Phone, Seed: l.Seed ^ uint64(h)})
		})
		res, err = cptgpt.FineTune(next, hourlyTrain[h], cptgpt.TrainOpts{
			Epochs: max(2, l.sz.hourEpochs/3), Probe: probe, ProbeEvery: 1, EarlyStopPatience: 0,
			Parallelism: l.Parallelism, MicrobatchStreams: l.Microbatch,
		})
		if err != nil {
			return nil, err
		}
		cgFT += timeToBest(res.Duration, res.BestEpoch, res.Epochs)
		cur = next
		if h == tr.probeHour {
			tr.cgXferMod = cur
		}
	}
	if tr.cgXferMod == nil {
		tr.cgXferMod = cur
	}
	tr.cgFinetuneAvg = cgFT / time.Duration(max(1, hours-1))
	tr.cgTotal = tr.cgFirstHour + cgFT

	// ---------------- NetShare ----------------
	nsCfg := l.nsConfig()
	nsCfg.Epochs = l.sz.nsEpochs

	l.logf("drift timing: NetShare scratch model over %d hours", hours)
	nsAll, err := netshare.New(nsCfg)
	if err != nil {
		return nil, err
	}
	probe = mkProbe(all, func() (*trace.Dataset, error) {
		return nsAll.Generate(netshare.GenOpts{NumStreams: 100, Device: events.Phone, Seed: l.Seed ^ 0xF02})
	})
	nres, err := netshare.Train(nsAll, all, netshare.TrainOpts{Probe: probe, ProbeEvery: 2, Parallelism: l.Parallelism})
	if err != nil {
		return nil, err
	}
	tr.nsScratchAll = timeToBest(nres.Duration, nres.BestEpoch, nres.Epochs)
	tr.nsScratchMod = nsAll

	l.logf("drift timing: NetShare hourly ensemble via transfer learning")
	nsHour, err := netshare.New(nsCfg)
	if err != nil {
		return nil, err
	}
	probe = mkProbe(hourlyTrain[0], func() (*trace.Dataset, error) {
		return nsHour.Generate(netshare.GenOpts{NumStreams: 100, Device: events.Phone, Seed: l.Seed ^ 0xF03})
	})
	nres, err = netshare.Train(nsHour, hourlyTrain[0], netshare.TrainOpts{Probe: probe, ProbeEvery: 2, Parallelism: l.Parallelism})
	if err != nil {
		return nil, err
	}
	tr.nsFirstHour = timeToBest(nres.Duration, nres.BestEpoch, nres.Epochs)

	var nsFT time.Duration
	nsCur := nsHour
	for h := 1; h < hours; h++ {
		next, err := nsCur.Clone()
		if err != nil {
			return nil, err
		}
		probe = mkProbe(hourlyTrain[h], func() (*trace.Dataset, error) {
			return next.Generate(netshare.GenOpts{NumStreams: 100, Device: events.Phone, Seed: l.Seed ^ 0xF04 ^ uint64(h)})
		})
		// GAN fine-tuning gets the same epoch budget as scratch: unlike
		// the supervised transformer, adversarial training does not
		// reliably converge faster from a warm start (the paper's L3).
		nres, err = netshare.Train(next, hourlyTrain[h], netshare.TrainOpts{
			Epochs: l.sz.nsFTEps, Probe: probe, ProbeEvery: 2, Parallelism: l.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		nsFT += timeToBest(nres.Duration, nres.BestEpoch, nres.Epochs)
		nsCur = next
		if h == tr.probeHour {
			tr.nsXferMod = nsCur
		}
	}
	if tr.nsXferMod == nil {
		tr.nsXferMod = nsCur
	}
	tr.nsFinetuneAvg = nsFT / time.Duration(max(1, hours-1))
	tr.nsTotal = tr.nsFirstHour + nsFT

	_ = hourlyTest
	l.mu.Lock()
	l.timing = tr
	l.mu.Unlock()
	return tr, nil
}

// Table4 reproduces the NetShare-only training-time comparison that
// motivates L3 (a subset of Table 9's measurement).
func Table4(l *Lab) (*Report, error) {
	tr, err := l.driftTiming()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("NetShare training time (%d-hour workload)", tr.hours),
		Header: []string{"setup", "time"},
	}
	t.AddRow(fmt.Sprintf("%d-hour model from scratch", tr.hours), tr.nsScratchAll.Round(time.Millisecond).String())
	t.AddRow("1-hour model from scratch", tr.nsFirstHour.Round(time.Millisecond).String())
	t.AddRow("1-hour model from finetuning from another hour", tr.nsFinetuneAvg.Round(time.Millisecond).String())
	t.AddRow(fmt.Sprintf("%d 1-hour models total from transfer learning", tr.hours), tr.nsTotal.Round(time.Millisecond).String())
	return &Report{
		ID:      "table4",
		Caption: "Time to train NetShare from scratch vs transfer learning",
		Tables:  []*Table{t},
		Notes: []string{
			"paper (A100, 6 hours): scratch 108.36 min; hourly ensemble via transfer 195.12 min — transfer is ~1.8× slower",
			fmt.Sprintf("measured ratio ensemble/scratch: %.2f×", ratio(tr.nsTotal, tr.nsScratchAll)),
		},
	}, nil
}

// Table9 reproduces the training-time comparison of both frameworks with
// and without transfer learning.
func Table9(l *Lab) (*Report, error) {
	tr, err := l.driftTiming()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Training time with and without transfer learning (%d hourly models)", tr.hours),
		Header: []string{"setup", "NetShare", "CPT-GPT"},
	}
	t.AddRow("No transfer learning (one multi-hour model)",
		tr.nsScratchAll.Round(time.Millisecond).String(), tr.cgScratchAll.Round(time.Millisecond).String())
	t.AddRow("First hour from scratch",
		tr.nsFirstHour.Round(time.Millisecond).String(), tr.cgFirstHour.Round(time.Millisecond).String())
	t.AddRow("Finetune to each subsequent hour (avg)",
		tr.nsFinetuneAvg.Round(time.Millisecond).String(), tr.cgFinetuneAvg.Round(time.Millisecond).String())
	t.AddRow("Total (hourly ensemble)",
		tr.nsTotal.Round(time.Millisecond).String(), tr.cgTotal.Round(time.Millisecond).String())
	return &Report{
		ID:      "table9",
		Caption: "Drift adaptation cost: scratch vs transfer learning",
		Tables:  []*Table{t},
		Notes: []string{
			"paper: NetShare 108.36 → 195.12 min (transfer hurts); CPT-GPT 104.40 → 67.12 min (transfer helps, 3.36× cheaper hourly models)",
			fmt.Sprintf("measured: NetShare ensemble/scratch %.2f×; CPT-GPT ensemble/scratch %.2f×; CPT-GPT finetune is %.2f× faster than its scratch hour",
				ratio(tr.nsTotal, tr.nsScratchAll), ratio(tr.cgTotal, tr.cgScratchAll), ratio(tr.cgFirstHour, tr.cgFinetuneAvg)),
		},
	}, nil
}

// Table10 reproduces the fidelity comparison at the probe hour with and
// without transfer learning.
func Table10(l *Lab) (*Report, error) {
	tr, err := l.driftTiming()
	if err != nil {
		return nil, err
	}
	_, hourlyTest, err := l.Hourly()
	if err != nil {
		return nil, err
	}
	real := hourlyTest[tr.probeHour]
	n := l.sz.evalUEs

	eval := func(gen *trace.Dataset) metrics.Fidelity { return metrics.Evaluate(real, gen) }
	nsScr, err := tr.nsScratchMod.Generate(netshare.GenOpts{NumStreams: n, Device: events.Phone, Seed: l.Seed ^ 0xA1})
	if err != nil {
		return nil, err
	}
	nsXfer, err := tr.nsXferMod.Generate(netshare.GenOpts{NumStreams: n, Device: events.Phone, Seed: l.Seed ^ 0xA2})
	if err != nil {
		return nil, err
	}
	cgScr, err := tr.cgScratchMod.Generate(cptgpt.GenOpts{NumStreams: n, Device: events.Phone, Seed: l.Seed ^ 0xA3})
	if err != nil {
		return nil, err
	}
	cgXfer, err := tr.cgXferMod.Generate(cptgpt.GenOpts{NumStreams: n, Device: events.Phone, Seed: l.Seed ^ 0xA4})
	if err != nil {
		return nil, err
	}
	fNsScr, fNsX, fCgScr, fCgX := eval(nsScr), eval(nsXfer), eval(cgScr), eval(cgXfer)

	t := &Table{
		Title:  fmt.Sprintf("Fidelity at hour %d with and without transfer learning", tr.probeHour+1),
		Header: []string{"metric", "NetShare w/o xfer", "CPT-GPT w/o xfer", "NetShare w/ xfer", "CPT-GPT w/ xfer"},
	}
	t.AddRow("Event violations", pct3(fNsScr.EventViolation), pct3(fCgScr.EventViolation), pct3(fNsX.EventViolation), pct3(fCgX.EventViolation))
	t.AddRow("Stream violations", pct(fNsScr.StreamViolation), pct(fCgScr.StreamViolation), pct(fNsX.StreamViolation), pct(fCgX.StreamViolation))
	t.AddRow("Sojourn CONNECTED max-y", pct(fNsScr.SojournConnMaxY), pct(fCgScr.SojournConnMaxY), pct(fNsX.SojournConnMaxY), pct(fCgX.SojournConnMaxY))
	t.AddRow("Sojourn IDLE max-y", pct(fNsScr.SojournIdleMaxY), pct(fCgScr.SojournIdleMaxY), pct(fNsX.SojournIdleMaxY), pct(fCgX.SojournIdleMaxY))
	t.AddRow("Flow length max-y", pct(fNsScr.FlowLenMaxY), pct(fCgScr.FlowLenMaxY), pct(fNsX.FlowLenMaxY), pct(fCgX.FlowLenMaxY))
	return &Report{
		ID:      "table10",
		Caption: "Transfer learning has limited impact on fidelity (both frameworks)",
		Tables:  []*Table{t},
		Notes: []string{
			"paper: transfer learning does not obviously change fidelity for either framework; some metrics improve, others degrade",
		},
	}, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
