package experiments

import (
	"strings"
	"testing"

	"cptgpt/internal/events"
)

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"unit", Unit}, {"short", Short}, {"full", Full}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScale(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() round trip %q", got)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestSizesMonotone(t *testing.T) {
	u, s, f := Unit.sizes(), Short.sizes(), Full.sizes()
	if !(u.evalUEs < s.evalUEs && s.evalUEs < f.evalUEs) {
		t.Fatal("evalUEs must grow with scale")
	}
	if !(u.hours <= s.hours && s.hours <= f.hours) {
		t.Fatal("hours must grow with scale")
	}
	if f.evalUEs != 1000 {
		t.Fatalf("full-scale evalUEs %d; the paper synthesizes 1000 streams", f.evalUEs)
	}
	if f.hours != 6 {
		t.Fatalf("full-scale hours %d; the paper uses 6 hourly models", f.hours)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bbb"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2")
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"table3", "figure2", "table4", "table5", "table6", "figure5",
		"table7", "table8", "figure6", "table9", "table10", "table11",
		"figure7", "ablation-batchgen", "ablation-logscale",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
		if _, err := Lookup(id); err != nil {
			t.Fatalf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("table99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestLabDatasetsCachedAndDisjoint(t *testing.T) {
	l := NewLab(Unit, 1)
	a, err := l.Train(events.Phone)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Train(events.Phone)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("train dataset must be cached")
	}
	te, err := l.Test(events.Phone)
	if err != nil {
		t.Fatal(err)
	}
	if te.NumEvents() == a.NumEvents() {
		t.Log("test and train coincide in event count (unlikely but possible)")
	}
	if te.Streams[0].Events[0] == a.Streams[0].Events[0] &&
		te.Streams[0].Events[1] == a.Streams[0].Events[1] {
		t.Fatal("test trace must differ from train trace (different seed)")
	}
}

// TestFigure7Runs exercises the cheapest experiment end-to-end (no model
// training).
func TestFigure7Runs(t *testing.T) {
	l := NewLab(Unit, 1)
	r, err := Figure7(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "figure7" || len(r.Tables) != 1 || len(r.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected report: %+v", r)
	}
	if !strings.Contains(r.String(), "log(t+1)") {
		t.Fatal("log-transform row missing")
	}
}

// TestTable3Runs exercises an experiment that trains a model (NetShare at
// unit scale) and checks the report structure.
func TestTable3Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	l := NewLab(Unit, 1)
	r, err := Table3(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables[0].Rows) < 2 {
		t.Fatalf("table 3 rows: %+v", r.Tables[0].Rows)
	}
	// Running again must hit the cache (fast, identical output).
	r2, err := Table3(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != r2.String() {
		t.Fatal("cached re-run must be identical")
	}
}

// TestHourlySlicesDrift verifies the drift data used by Tables 4/9/10.
func TestHourlySlicesDrift(t *testing.T) {
	l := NewLab(Unit, 1)
	train, test, err := l.Hourly()
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != Unit.sizes().hours || len(test) != len(train) {
		t.Fatalf("hour counts: %d/%d", len(train), len(test))
	}
	for h, d := range train {
		if d.NumStreams() == 0 {
			t.Fatalf("hour %d empty", h)
		}
	}
}
