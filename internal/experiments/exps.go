package experiments

import (
	"fmt"
	"math"

	"cptgpt/internal/cptgpt"
	"cptgpt/internal/events"
	"cptgpt/internal/metrics"
	"cptgpt/internal/statemachine"
	"cptgpt/internal/trace"
)

// statemachineAgg aliases the replay aggregate for readability in the
// figure definitions.
type statemachineAgg = statemachine.AggregateReplay

// Table3 reproduces "Semantic violations in control-plane traffic
// synthesized by NetShare": event/stream violation percentages and the top
// three (state, event) violation pairs, for phones.
func Table3(l *Lab) (*Report, error) {
	gen, err := l.Generated(GenNetShare, events.Phone)
	if err != nil {
		return nil, err
	}
	agg := metrics.Replay(gen)

	t := &Table{Title: "NetShare semantic violations (phones)", Header: []string{"metric", "value"}}
	t.AddRow("Perc. event violations", pct(agg.EventViolationRate()))
	t.AddRow("Perc. streams w/ at least one violating event", pct(agg.StreamViolationRate()))
	keys, shares := agg.TopViolations(3)
	for i, k := range keys {
		t.AddRow(fmt.Sprintf("top-%d violation: %s, %s", i+1, k.State, k.Event), pct(shares[i]))
	}
	return &Report{
		ID:      "table3",
		Caption: "Semantic violations in NetShare-synthesized traffic",
		Tables:  []*Table{t},
		Notes: []string{
			"paper: 2.61% event violations, 22.10% stream violations; top pairs (S1_REL_S, S1_CONN_REL), (S1_REL_S, HO), (CONNECTED, SRV_REQ)",
		},
	}, nil
}

// Figure2 reproduces the CDF of the per-UE mean CONNECTED sojourn time for
// phones: Real vs NetShare vs CPT-GPT, reported as quantile rows.
func Figure2(l *Lab) (*Report, error) {
	real, err := l.Test(events.Phone)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Mean CONNECTED sojourn per UE, seconds (phones)",
		Header: qsHeader("curve"),
	}
	t.AddRow(qsRow("Real", metrics.Replay(real).MeanConnectedPerUE, secs)...)
	for _, id := range []GeneratorID{GenNetShare, GenCPTGPT} {
		gen, err := l.Generated(id, events.Phone)
		if err != nil {
			return nil, err
		}
		t.AddRow(qsRow(string(id), metrics.Replay(gen).MeanConnectedPerUE, secs)...)
	}
	nsF, cgF, err := l.twoFidelities(events.Phone)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:      "figure2",
		Caption: "CONNECTED sojourn-time CDFs: Real vs NetShare vs CPT-GPT (phones)",
		Tables:  []*Table{t},
		Notes: []string{
			fmt.Sprintf("max y-distance vs real: NetShare %s, CPT-GPT %s (paper: 27.9%% and 6.4%%)",
				pct(nsF.SojournConnMaxY), pct(cgF.SojournConnMaxY)),
		},
	}, nil
}

// twoFidelities evaluates NetShare and CPT-GPT against the test trace.
func (l *Lab) twoFidelities(dev events.DeviceType) (ns, cg metrics.Fidelity, err error) {
	real, err := l.Test(dev)
	if err != nil {
		return ns, cg, err
	}
	nsGen, err := l.Generated(GenNetShare, dev)
	if err != nil {
		return ns, cg, err
	}
	cgGen, err := l.Generated(GenCPTGPT, dev)
	if err != nil {
		return ns, cg, err
	}
	return metrics.Evaluate(real, nsGen), metrics.Evaluate(real, cgGen), nil
}

// Table5 reproduces the per-device-type violation comparison between
// NetShare and CPT-GPT. SMM rows are omitted as in the paper (zero by
// construction).
func Table5(l *Lab) (*Report, error) {
	t := &Table{
		Title:  "Stateful semantic violations (SMM omitted: zero by construction)",
		Header: []string{"device", "NetShare events", "CPT-GPT events", "NetShare streams", "CPT-GPT streams"},
	}
	for _, dev := range events.DeviceTypes() {
		nsGen, err := l.Generated(GenNetShare, dev)
		if err != nil {
			return nil, err
		}
		cgGen, err := l.Generated(GenCPTGPT, dev)
		if err != nil {
			return nil, err
		}
		nsAgg, cgAgg := metrics.Replay(nsGen), metrics.Replay(cgGen)
		t.AddRow(dev.String(),
			pct3(nsAgg.EventViolationRate()), pct3(cgAgg.EventViolationRate()),
			pct(nsAgg.StreamViolationRate()), pct(cgAgg.StreamViolationRate()))
	}
	return &Report{
		ID:      "table5",
		Caption: "Percentage of events and streams violating 3GPP stateful semantics",
		Tables:  []*Table{t},
		Notes: []string{
			"paper events: NetShare 2.614/3.915/3.572%, CPT-GPT 0.004/0.034/0.079%",
			"paper streams: NetShare 22.1/11.5/16.9%, CPT-GPT 0.2/0.4/1.5%",
		},
	}, nil
}

// Table6 reproduces the max-y-distance grid: sojourn times (CONNECTED,
// IDLE) and flow lengths (all, SRV_REQ, S1_CONN_REL) for the four
// generators across the three device types.
func Table6(l *Lab) (*Report, error) {
	rows := []struct {
		name string
		get  func(metrics.Fidelity) float64
	}{
		{"Sojourn CONNECTED", func(f metrics.Fidelity) float64 { return f.SojournConnMaxY }},
		{"Sojourn IDLE", func(f metrics.Fidelity) float64 { return f.SojournIdleMaxY }},
		{"Flow length (all)", func(f metrics.Fidelity) float64 { return f.FlowLenMaxY }},
		{"Flow length (SRV_REQ)", func(f metrics.Fidelity) float64 { return f.FlowLenSrvReqMaxY }},
		{"Flow length (S1_CONN_REL)", func(f metrics.Fidelity) float64 { return f.FlowLenRelMaxY }},
	}
	rep := &Report{
		ID:      "table6",
		Caption: "Maximum y-distance between real and synthesized CDFs",
		Notes: []string{
			"paper (phones, CONNECTED sojourn): SMM-1 40.1%, SMM-20k 14.8%, NetShare 27.9%, CPT-GPT 6.4%",
			"paper (phones, flow length all): SMM-1 44.2%, SMM-20k 1.9%, NetShare 1.6%, CPT-GPT 3.8%",
		},
	}
	for _, dev := range events.DeviceTypes() {
		real, err := l.Test(dev)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("Max CDF y-distance — %s", dev),
			Header: []string{"metric", "SMM-1", "SMM-K", "NetShare", "CPT-GPT"},
		}
		fids := make(map[GeneratorID]metrics.Fidelity)
		for _, id := range AllGenerators() {
			gen, err := l.Generated(id, dev)
			if err != nil {
				return nil, err
			}
			fids[id] = metrics.Evaluate(real, gen)
		}
		for _, r := range rows {
			t.AddRow(r.name,
				pct(r.get(fids[GenSMM1])), pct(r.get(fids[GenSMMK])),
				pct(r.get(fids[GenNetShare])), pct(r.get(fids[GenCPTGPT])))
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep, nil
}

// Figure5 reproduces the CDF grid behind Table 6: for each device type and
// metric, the quantiles of every generator's distribution next to the real
// one.
func Figure5(l *Lab) (*Report, error) {
	rep := &Report{
		ID:      "figure5",
		Caption: "Distributions of fidelity metrics (quantile view of the paper's CDF grid)",
	}
	type metricDef struct {
		name   string
		format func(float64) string
		get    func(*trace.Dataset, *statemachineAgg) []float64
	}
	srv := events.ServiceRequest
	rel := events.S1ConnRel
	defs := []metricDef{
		{"Sojourn CONNECTED (s)", secs, func(d *trace.Dataset, a *statemachineAgg) []float64 { return a.MeanConnectedPerUE }},
		{"Sojourn IDLE (s)", secs, func(d *trace.Dataset, a *statemachineAgg) []float64 { return a.MeanIdlePerUE }},
		{"Flow length (all)", count, func(d *trace.Dataset, a *statemachineAgg) []float64 { return d.FlowLengths(nil) }},
		{"Flow length (SRV_REQ)", count, func(d *trace.Dataset, a *statemachineAgg) []float64 { return d.FlowLengths(&srv) }},
		{"Flow length (S1_CONN_REL)", count, func(d *trace.Dataset, a *statemachineAgg) []float64 { return d.FlowLengths(&rel) }},
	}
	for _, dev := range events.DeviceTypes() {
		real, err := l.Test(dev)
		if err != nil {
			return nil, err
		}
		curves := []struct {
			name string
			d    *trace.Dataset
		}{{"Real", real}}
		for _, id := range AllGenerators() {
			gen, err := l.Generated(id, dev)
			if err != nil {
				return nil, err
			}
			curves = append(curves, struct {
				name string
				d    *trace.Dataset
			}{string(id), gen})
		}
		// Replay each curve's dataset once, reusing across the metric defs.
		aggs := make([]*statemachineAgg, len(curves))
		for i, c := range curves {
			aggs[i] = metrics.Replay(c.d)
		}
		for _, def := range defs {
			t := &Table{
				Title:  fmt.Sprintf("%s — %s", def.name, dev),
				Header: qsHeader("curve"),
			}
			for i, c := range curves {
				t.AddRow(qsRow(c.name, def.get(c.d, aggs[i]), def.format)...)
			}
			rep.Tables = append(rep.Tables, t)
		}
	}
	return rep, nil
}

// Table7 reproduces the event-type breakdown: the real shares and each
// generator's signed difference from them, per device type.
func Table7(l *Lab) (*Report, error) {
	rep := &Report{
		ID:      "table7",
		Caption: "Event-type breakdown: real share and per-generator difference",
		Notes: []string{
			"paper (phones): real SRV_REQ 47.06%, S1_CONN_REL 48.25%; CPT-GPT diffs within ±0.66%",
		},
	}
	for _, dev := range events.DeviceTypes() {
		real, err := l.Test(dev)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("Event breakdown — %s", dev),
			Header: []string{"event", "Real", "SMM-1", "SMM-K", "NetShare", "CPT-GPT"},
		}
		fids := make(map[GeneratorID]metrics.Fidelity)
		for _, id := range AllGenerators() {
			gen, err := l.Generated(id, dev)
			if err != nil {
				return nil, err
			}
			fids[id] = metrics.Evaluate(real, gen)
		}
		vocab := events.Vocabulary(events.Gen4G)
		realShares, _ := real.EventBreakdown()
		for i, ev := range vocab {
			t.AddRow(ev.String(), pct(realShares[i]),
				signedPct(fids[GenSMM1].BreakdownDiff[i]),
				signedPct(fids[GenSMMK].BreakdownDiff[i]),
				signedPct(fids[GenNetShare].BreakdownDiff[i]),
				signedPct(fids[GenCPTGPT].BreakdownDiff[i]))
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep, nil
}

// Table11 reproduces the data-memorization audit: the fraction of n-grams
// in CPT-GPT-generated traffic that repeat a training n-gram, for
// n ∈ {5, 10, 20} and tolerance ε ∈ {10%, 20%}.
func Table11(l *Lab) (*Report, error) {
	train, err := l.Train(events.Phone)
	if err != nil {
		return nil, err
	}
	m, err := l.CPT(events.Phone)
	if err != nil {
		return nil, err
	}
	gen, err := m.Generate(cptgpt.GenOpts{
		NumStreams: l.sz.memStreams,
		Device:     events.Phone,
		Seed:       l.Seed ^ 0x111E,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Percentage of generated n-grams repeated from the training set (phones)",
		Header: []string{"n", "eps=10%", "eps=20%"},
	}
	for _, n := range []int{5, 10, 20} {
		row := []string{fmt.Sprintf("n=%d", n)}
		for _, eps := range []float64{0.10, 0.20} {
			r, err := metrics.Memorization(gen, train, n, eps)
			if err != nil {
				return nil, err
			}
			row = append(row, pct3(r.Rate()))
		}
		t.AddRow(row...)
	}
	return &Report{
		ID:      "table11",
		Caption: "Data memorization: n-gram repetition from the training set",
		Tables:  []*Table{t},
		Notes: []string{
			"paper: n=5 57.9/80.3%, n=10 0.003/0.287%, n=20 0.000/0.000%",
			"short n-grams repeat because the 3GPP protocol constrains them (e.g. SRV_REQ/S1_CONN_REL alternation), not because of memorization",
		},
	}, nil
}

// Figure6 reproduces the scalability study: fidelity versus generated
// population size (multiples of the base evaluation size).
func Figure6(l *Lab) (*Report, error) {
	real, err := l.Test(events.Phone)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fidelity vs generated UE population (CPT-GPT, phones)",
		Header: []string{"UE count", "event viol", "stream viol", "sojourn CONN", "sojourn IDLE", "flow length", "breakdown diff"},
	}
	for _, mult := range l.sz.scaleMults {
		n := l.sz.evalUEs * mult
		gen, err := l.GeneratedN(GenCPTGPT, events.Phone, n)
		if err != nil {
			return nil, err
		}
		f := metrics.Evaluate(real, gen)
		t.AddRow(fmt.Sprintf("%d", n),
			pct3(f.EventViolation), pct(f.StreamViolation),
			pct(f.SojournConnMaxY), pct(f.SojournIdleMaxY),
			pct(f.FlowLenMaxY), pct(f.AvgAbsBreakdownDiff))
	}
	return &Report{
		ID:      "figure6",
		Caption: "Fidelity of synthesized datasets for varying UE population",
		Tables:  []*Table{t},
		Notes: []string{
			"paper: dataset size (10k–160k UEs) has minimal influence on all fidelity metrics",
			"the real comparison set is fixed at the full test trace; the paper sampled equal-size subsets from a 380k-UE pool",
		},
	}, nil
}

// Figure7 reproduces the interarrival-time distribution view: quantiles of
// raw interarrivals and of their log1p transform, showing how log scaling
// un-skews the heavy tail (the rationale for Design 1's scaling).
func Figure7(l *Lab) (*Report, error) {
	real, err := l.Train(events.Phone)
	if err != nil {
		return nil, err
	}
	ia := real.Interarrivals()
	logIA := make([]float64, len(ia))
	for i, x := range ia {
		logIA[i] = math.Log1p(x)
	}
	t := &Table{
		Title:  "Interarrival time distribution (phones)",
		Header: qsHeader("transform"),
	}
	t.AddRow(qsRow("t (seconds)", ia, secs)...)
	t.AddRow(qsRow("log(t+1)", logIA, func(v float64) string { return fmt.Sprintf("%.2f", v) })...)
	return &Report{
		ID:      "figure7",
		Caption: "Raw vs log-scaled interarrival-time distribution",
		Tables:  []*Table{t},
		Notes: []string{
			"paper: the raw distribution is long-tailed; log scaling makes it near-uniform, motivating the tokenizer's log1p + min-max scaling",
		},
	}, nil
}
