package experiments

import (
	"strings"
	"testing"
)

func TestPctFormatting(t *testing.T) {
	if got := pct(0.123456); got != "12.35%" {
		t.Fatalf("pct = %q", got)
	}
	if got := pct3(0.0000412); got != "0.004%" {
		t.Fatalf("pct3 = %q", got)
	}
	if got := signedPct(-0.005); got != "-0.50%" {
		t.Fatalf("signedPct = %q", got)
	}
	if got := signedPct(0.005); got != "+0.50%" {
		t.Fatalf("signedPct = %q", got)
	}
}

func TestCdfDeciles(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3} // sorted: 1..5
	got := cdfDeciles(xs, []float64{0, 0.5, 1})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("deciles %v", got)
	}
	empty := cdfDeciles(nil, []float64{0.5})
	if empty[0] != 0 {
		t.Fatalf("empty deciles %v", empty)
	}
}

func TestQsRowHeaderAligned(t *testing.T) {
	h := qsHeader("curve")
	r := qsRow("real", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, secs)
	if len(h) != len(r) {
		t.Fatalf("header %d cells, row %d cells", len(h), len(r))
	}
	if h[0] != "curve" || r[0] != "real" {
		t.Fatal("labels misplaced")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{
		ID:      "tableX",
		Caption: "demo",
		Tables:  []*Table{{Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}},
		Notes:   []string{"a note"},
	}
	out := r.String()
	for _, want := range []string{"tableX", "demo", "a note", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
