package tensor

import "sync/atomic"

// Multi-row float32 GEMM backing the speculative-decoding verify kernel.
//
// Plain decoding is one matvec per slot per layer: every weight element is
// loaded for exactly one multiply, so the scalar kernels in f32.go sit at the
// scalar FP port limit (~1 MAC/cycle) and nothing short of wider arithmetic
// moves them. The verify pass of speculative decoding is different work: a
// slot arrives with k *known* token rows (the draft chain), so each layer is
// a k-row × panel GEMM — prefill-shaped, not decode-shaped — and the kernel
// may amortize every weight load over k rows and use SIMD lanes.
//
// GemmF32 therefore has two implementations:
//
//   - an AVX2+FMA assembly kernel (amd64, runtime-detected) that processes
//     the reduction 8 lanes at a time with 4 independent accumulators —
//     the source of the speculative-decode throughput headline;
//   - a portable scalar fallback whose per-row arithmetic and reduction
//     order are exactly MatVecF32's, so on machines without AVX2 (or with
//     the kill switch thrown) a k-row GEMM is bit-identical to k matvecs.
//
// Both implementations are deterministic: each has a fixed reduction order,
// so a given machine and kill-switch setting always reproduces the same
// bits. The two orders differ (8-lane tree vs 4-chain pairwise), which is
// why the assembly kernel is only ever used on the speculative path — the
// non-speculative F32 decode contract ("bit-identical to PR 4 at every
// parallelism and batch size") never routes through GemmF32.

// gemmAsmAvailable reports whether the platform provides the assembly
// kernel (set by gemm32_amd64.go / gemm32_noasm.go at init).
var gemmAsmAvailable = hasGemmAsm()

// gemmAsmEnabled gates dispatch to the assembly kernel; it starts at the
// platform's capability and can be lowered (never raised past capability)
// via SetGemmF32Asm.
var gemmAsmEnabled atomic.Bool

func init() {
	gemmAsmEnabled.Store(gemmAsmAvailable)
}

// GemmF32Asm reports whether GemmF32 currently dispatches to the AVX2
// assembly kernel.
func GemmF32Asm() bool { return gemmAsmEnabled.Load() }

// SetGemmF32Asm enables or disables the assembly GEMM kernel, returning the
// previous setting. Enabling is a no-op on machines without AVX2+FMA. The
// scalar fallback makes speculative verification bit-identical to the plain
// step kernels, at scalar speed — useful for cross-checking and for pinning
// tests to one arithmetic.
func SetGemmF32Asm(on bool) (prev bool) {
	prev = gemmAsmEnabled.Load()
	gemmAsmEnabled.Store(on && gemmAsmAvailable)
	return prev
}

// GemmF32 computes dst[r*out+j] = bias[j] + x[r*in:]·wT[j*in:] for
// r in [0, rows) and j in [0, out): rows row-major input rows against a
// transposed (out×in) weight panel, the layer shape of the multi-token
// verify pass. Row results are independent of rows batched together.
func GemmF32(dst, wT, bias, x []float32, rows, in, out int) {
	if rows <= 0 || out <= 0 {
		return
	}
	// Bounds are hoisted here so both kernels can run unchecked.
	_ = dst[rows*out-1]
	_ = bias[out-1]
	if in > 0 {
		_ = wT[out*in-1]
		_ = x[rows*in-1]
	} else {
		// Degenerate reduction: every output is its bias.
		for r := 0; r < rows; r++ {
			copy(dst[r*out:(r+1)*out], bias[:out])
		}
		return
	}
	if gemmAsmEnabled.Load() {
		gemmF32Asm(&dst[0], &wT[0], &bias[0], &x[0], rows, in, out)
		return
	}
	gemmF32Scalar(dst, wT, bias, x, rows, in, out)
}

// gemmF32Scalar is the portable kernel: output rows in the same 4/2/1
// register blocks as MatVecF32, input rows inner so each weight block stays
// hot across the row group. Per-row reduction order is exactly MatVecF32's,
// so a k-row GEMM equals k independent matvecs bit-for-bit.
func gemmF32Scalar(dst, wT, bias, x []float32, rows, in, out int) {
	j := 0
	for ; j+4 <= out; j += 4 {
		w0 := wT[j*in : (j+1)*in]
		w1 := wT[(j+1)*in : (j+2)*in]
		w2 := wT[(j+2)*in : (j+3)*in]
		w3 := wT[(j+3)*in : (j+4)*in]
		b0, b1, b2, b3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
		for r := 0; r < rows; r++ {
			xr := x[r*in : r*in+in]
			r0, r1, r2, r3 := Dot4F32(xr, w0, w1, w2, w3)
			d := dst[r*out+j : r*out+j+4]
			d[0] = b0 + r0
			d[1] = b1 + r1
			d[2] = b2 + r2
			d[3] = b3 + r3
		}
	}
	if j+2 <= out {
		w0 := wT[j*in : (j+1)*in]
		w1 := wT[(j+1)*in : (j+2)*in]
		for r := 0; r < rows; r++ {
			xr := x[r*in : r*in+in]
			r0, r1 := Dot2F32(xr, w0, w1)
			dst[r*out+j] = bias[j] + r0
			dst[r*out+j+1] = bias[j+1] + r1
		}
		j += 2
	}
	if j < out {
		w0 := wT[j*in : (j+1)*in]
		for r := 0; r < rows; r++ {
			dst[r*out+j] = bias[j] + Dot1F32(x[r*in:r*in+in], w0)
		}
	}
}
