package tensor

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"
)

// withArena runs fn with a fresh ambient arena installed and returns it.
func withArena(fn func()) *Arena {
	a := NewArena()
	prev := SetArena(a)
	defer SetArena(prev)
	fn()
	return a
}

// tapeStep runs a representative forward+backward over the ops whose scratch
// is arena-routed (matmul, layernorm, dropout, cross-entropy) and returns
// the loss value and the weight gradient.
func tapeStep(rng *rand.Rand) (float64, []float64) {
	w := Randn(16, 8, 0.5, rng).Param()
	gain := New(1, 8)
	for i := range gain.Data {
		gain.Data[i] = 1
	}
	gain.Param()
	bias := New(1, 8).Param()
	x := Randn(12, 16, 1, rng)
	h := LayerNorm(MatMul(x, w), gain, bias, 1e-5)
	h = Dropout(h, 0.25, rng)
	targets := make([]int, 12)
	for i := range targets {
		targets[i] = i % 8
	}
	loss := CrossEntropy(h, targets)
	loss.Backward()
	return loss.Data[0], append([]float64(nil), w.Grad...)
}

// TestArenaValuesMatchHeap: routing the tape through an arena must not
// change a single bit of any value or gradient.
func TestArenaValuesMatchHeap(t *testing.T) {
	heapLoss, heapGrad := tapeStep(rand.New(rand.NewPCG(7, 9)))
	var arenaLoss float64
	var arenaGrad []float64
	withArena(func() {
		arenaLoss, arenaGrad = tapeStep(rand.New(rand.NewPCG(7, 9)))
	})
	if heapLoss != arenaLoss {
		t.Fatalf("loss: heap %v != arena %v", heapLoss, arenaLoss)
	}
	for i := range heapGrad {
		if heapGrad[i] != arenaGrad[i] {
			t.Fatalf("grad[%d]: heap %v != arena %v", i, heapGrad[i], arenaGrad[i])
		}
	}
}

// TestArenaReuse: after Reset the arena serves subsequent steps from the
// same slabs — the footprint stops growing after the first step, and fresh
// allocations come back zeroed despite the recycled memory.
func TestArenaReuse(t *testing.T) {
	a := NewArena()
	prev := SetArena(a)
	defer SetArena(prev)

	tapeStep(rand.New(rand.NewPCG(1, 2)))
	a.Reset()
	after1 := a.Footprint()
	for i := 0; i < 5; i++ {
		tapeStep(rand.New(rand.NewPCG(1, 2)))
		a.Reset()
	}
	if got := a.Footprint(); got != after1 {
		t.Fatalf("footprint grew across identical steps: %d -> %d floats", after1, got)
	}
	buf := a.Alloc(4096)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("recycled alloc not zeroed at %d: %v", i, v)
		}
	}
	if a.Peak() == 0 {
		t.Fatal("peak usage not tracked")
	}
}

// TestInstallArenaGating: only one trainer can hold the ambient slot; the
// loser falls back to heap allocation, and ArenaDetached restores the
// owner's arena even when the callback panics.
func TestInstallArenaGating(t *testing.T) {
	a, b := NewArena(), NewArena()
	if !InstallArena(a) {
		t.Fatal("first install refused")
	}
	defer UninstallArena(a)
	if InstallArena(b) {
		t.Fatal("second install succeeded while slot held")
	}
	if ActiveArena() != a {
		t.Fatal("ambient arena is not the first installer")
	}
	func() {
		defer func() { recover() }()
		ArenaDetached(func() {
			if ActiveArena() != nil {
				t.Fatal("arena not detached inside callback")
			}
			panic("callback exploded")
		})
	}()
	if ActiveArena() != a {
		t.Fatal("arena not restored after panicking callback")
	}
	UninstallArena(b) // wrong owner: must be a no-op
	if ActiveArena() != a {
		t.Fatal("UninstallArena removed an arena it does not own")
	}
	UninstallArena(a)
	if ActiveArena() != nil {
		t.Fatal("slot not released")
	}
}

// TestArenaOversizedAlloc: requests larger than a slab get a dedicated slab
// and survive Reset cycles.
func TestArenaOversizedAlloc(t *testing.T) {
	a := NewArena()
	big := a.Alloc(arenaSlabFloats * 3)
	if len(big) != arenaSlabFloats*3 {
		t.Fatalf("oversized alloc length %d", len(big))
	}
	a.Reset()
	if got := a.Alloc(arenaSlabFloats * 3); len(got) != arenaSlabFloats*3 {
		t.Fatalf("oversized re-alloc length %d", len(got))
	}
}

// TestArenaCutsTapeAllocations is the allocation regression guard for the
// arena'd kernels: a steady-state forward+backward step under the arena
// (parameters and inputs pre-built, as in a real training loop) must
// allocate well under half of what the heap path does — what remains is
// tape bookkeeping (tensor structs and closures), not float buffers.
func TestArenaCutsTapeAllocations(t *testing.T) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)

	rng := rand.New(rand.NewPCG(3, 4))
	w := Randn(16, 8, 0.5, rng).Param()
	gain := New(1, 8)
	for i := range gain.Data {
		gain.Data[i] = 1
	}
	gain.Param()
	bias := New(1, 8).Param()
	x := Randn(12, 16, 1, rng)
	targets := make([]int, 12)
	for i := range targets {
		targets[i] = i % 8
	}
	step := func() {
		h := LayerNorm(MatMul(x, w), gain, bias, 1e-5)
		h = Dropout(h, 0.25, rng)
		CrossEntropy(h, targets).Backward()
		w.ZeroGrad()
		gain.ZeroGrad()
		bias.ZeroGrad()
	}

	heapAllocs := testing.AllocsPerRun(50, step)
	heapBytes := bytesPerRun(50, step)

	a := NewArena()
	prevA := SetArena(a)
	defer SetArena(prevA)
	arenaStep := func() {
		step()
		a.Reset()
	}
	arenaAllocs := testing.AllocsPerRun(50, arenaStep)
	arenaBytes := bytesPerRun(50, arenaStep)

	// The arena's win is measured in bytes: every float buffer of the tape
	// (values, grads, op scratch) moves off the heap. What remains is small
	// fixed bookkeeping (tensor structs, op closures), so bytes must drop
	// by far more than half; allocation count drops too, but less sharply.
	if arenaBytes*2 > heapBytes {
		t.Fatalf("arena step allocates %d B, heap step %d B — want < half", arenaBytes, heapBytes)
	}
	if arenaAllocs >= heapAllocs {
		t.Fatalf("arena step allocates %.0f objects, heap step %.0f — want fewer", arenaAllocs, heapAllocs)
	}
}

// bytesPerRun measures average heap bytes allocated per fn() call.
func bytesPerRun(runs int, fn func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm-up outside the measured window
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return (m1.TotalAlloc - m0.TotalAlloc) / uint64(runs)
}

// TestMatMulBlockedMatchesNaive: the cache-blocked, transpose-packed kernels
// accumulate in the same order as the naive ones for the forward product and
// the weight gradient, so those must be bit-identical, including at sizes
// that do not divide the tile dimensions. The input gradient's blocked path
// re-associates its reduction (terms fold directly into the destination
// instead of a local dot accumulator), so it is checked to a 1-ulp-scale
// relative tolerance instead.
func TestMatMulBlockedMatchesNaive(t *testing.T) {
	shapes := [][3]int{
		{16, 16, 16},
		{33, 47, 65},   // straddles mmBlockJ
		{7, 130, 200},  // straddles mmBlockK
		{129, 64, 129}, // multiple j-tiles, parallel-eligible
		{1, 300, 5},
		{200, 17, 4},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		run := func(blocked bool) (y, ga, gb []float64) {
			prev := SetBlockedMatMul(blocked)
			defer SetBlockedMatMul(prev)
			rng := rand.New(rand.NewPCG(11, uint64(m*k*n)))
			a := Randn(m, k, 1, rng).Param()
			b := Randn(k, n, 1, rng).Param()
			out := MatMul(a, b)
			Mean(out).Backward()
			return append([]float64(nil), out.Data...),
				append([]float64(nil), a.Grad...),
				append([]float64(nil), b.Grad...)
		}
		ny, nga, ngb := run(false)
		by, bga, bgb := run(true)
		cmp := func(name string, naive, blocked []float64, tol float64) {
			t.Helper()
			for i := range naive {
				d := math.Abs(naive[i] - blocked[i])
				if d > tol*(1+math.Abs(naive[i])) {
					t.Fatalf("%d×%d·%d×%d %s[%d]: naive %v != blocked %v",
						m, k, k, n, name, i, naive[i], blocked[i])
				}
			}
		}
		cmp("out", ny, by, 0)
		cmp("dA", nga, bga, 1e-12)
		cmp("dB", ngb, bgb, 0)
	}
}

// TestGatherRows covers the packed-minibatch positional lookup: forward
// selection and scatter-add gradients.
func TestGatherRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := Randn(6, 3, 1, rng).Param()
	idx := []int{0, 1, 2, 0, 1, 0}
	out := GatherRows(a, idx)
	for r, src := range idx {
		for c := 0; c < 3; c++ {
			if out.At(r, c) != a.At(src, c) {
				t.Fatalf("gather row %d", r)
			}
		}
	}
	Sum(out).Backward()
	counts := []float64{3, 2, 1, 0, 0, 0} // row 0 picked 3×, row 1 2×, row 2 1×
	for r, want := range counts {
		for c := 0; c < 3; c++ {
			if got := a.Grad[r*3+c]; got != want {
				t.Fatalf("grad row %d col %d = %v, want %v", r, c, got, want)
			}
		}
	}
}

// TestConcatRows covers the segment-reassembly op of packed attention.
func TestConcatRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	a := Randn(2, 3, 1, rng).Param()
	b := Randn(4, 3, 1, rng).Param()
	out := ConcatRows(a, b)
	if out.Rows != 6 || out.Cols != 3 {
		t.Fatalf("shape %d×%d", out.Rows, out.Cols)
	}
	for c := 0; c < 3; c++ {
		if out.At(1, c) != a.At(1, c) || out.At(2, c) != b.At(0, c) {
			t.Fatal("concat rows misplaced")
		}
	}
	Scale(Sum(out), 2).Backward()
	for _, p := range []*Tensor{a, b} {
		for i, g := range p.Grad {
			if g != 2 {
				t.Fatalf("grad[%d] = %v, want 2", i, g)
			}
		}
	}
}
