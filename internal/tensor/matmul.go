package tensor

import "sync/atomic"

// Matrix-multiply kernels. Three variants back the MatMul op: the forward
// product and the two gradient accumulations. Each has a naive row-loop path
// (cheapest for small or very sparse operands, e.g. one-hot token rows) and
// a cache-blocked path that packs the strided operand once per call and
// tiles the j/k loops so a panel block stays in cache across many output
// rows. All inner loops are kept in axpy form (independent adds across j)
// rather than dot form: a dot product's single accumulator is a loop-carried
// dependency chain that stalls the FPU pipeline, which measurably dominates
// these kernels on scalar Go.
//
// matmulInto and matmulAccT accumulate every output element over k in
// ascending order on both paths, so their blocked results are bit-identical
// to the naive ones; the kernel choice is a pure performance decision and
// the parallel row sharding on top preserves bit-exactness at any degree
// exactly as before (parallel_test.go). matmulAccBT's blocked path folds
// terms directly into the destination instead of via the naive path's local
// dot accumulator — a re-association that can differ in the last ulp — so
// its path choice depends only on the weight-matrix shape, never on the row
// count, keeping every training configuration (serial, packed, any
// parallelism) on the same kernel for a given layer.

const (
	// mmBlockJ and mmBlockK tile the packed panels: a tile is at most
	// mmBlockJ×mmBlockK floats (32 KiB), sized to sit in L1 while a shard's
	// rows stream past it.
	mmBlockJ = 64
	mmBlockK = 64

	// mmPackMinK is the smallest shared dimension worth packing: below it
	// the transpose costs more than the strided reads it avoids, and the
	// naive kernel's zero-skip wins on one-hot inputs (k = d_token).
	mmPackMinK = 16

	// mmPackMinWork is the smallest multiply-add count worth packing.
	mmPackMinWork = 1 << 14

	// mmPackMinPanel is the smallest bᵀ panel (weight-shape product) worth
	// packing in matmulAccBT. Deliberately a function of the weight shape
	// only — see the bit-exactness note above.
	mmPackMinPanel = 512
)

// axpy4 folds di[j] += av*bk[j] over equal-length di and bk with a 4-way
// unroll. Each j is an independent element, so the per-element accumulation
// order is exactly the plain loop's; the unroll only trims loop overhead and
// bounds checks.
func axpy4(di, bk []float64, av float64) {
	n := len(bk)
	di = di[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		di[j] += av * bk[j]
		di[j+1] += av * bk[j+1]
		di[j+2] += av * bk[j+2]
		di[j+3] += av * bk[j+3]
	}
	for ; j < n; j++ {
		di[j] += av * bk[j]
	}
}

// axpy4x2 folds two rows at once — di0[j] += a0*bk[j] and di1[j] += a1*bk[j]
// — sharing each bk load between them (2-row register blocking). The rows
// are distinct destinations, so per-element accumulation order is untouched.
func axpy4x2(di0, di1, bk []float64, a0, a1 float64) {
	n := len(bk)
	di0 = di0[:n]
	di1 = di1[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		b0, b1, b2, b3 := bk[j], bk[j+1], bk[j+2], bk[j+3]
		di0[j] += a0 * b0
		di0[j+1] += a0 * b1
		di0[j+2] += a0 * b2
		di0[j+3] += a0 * b3
		di1[j] += a1 * b0
		di1[j+1] += a1 * b1
		di1[j+2] += a1 * b2
		di1[j+3] += a1 * b3
	}
	for ; j < n; j++ {
		bv := bk[j]
		di0[j] += a0 * bv
		di1[j] += a1 * bv
	}
}

// axpyPair dispatches one k-step for a row pair, preserving the naive
// kernel's exact zero-skip semantics per row.
func axpyPair(di0, di1, bk []float64, a0, a1 float64) {
	switch {
	case a0 != 0 && a1 != 0:
		axpy4x2(di0, di1, bk, a0, a1)
	case a0 != 0:
		axpy4(di0, bk, a0)
	case a1 != 0:
		axpy4(di1, bk, a1)
	}
}

// blockedMatMul gates the blocked kernels; on by default. SetBlockedMatMul
// exists so benchmarks can pin the naive kernels for comparison.
var blockedMatMul atomic.Bool

func init() { blockedMatMul.Store(true) }

// SetBlockedMatMul enables or disables the cache-blocked MatMul kernels and
// returns the previous setting. The forward product and the weight-gradient
// accumulation are bit-identical either way; the input-gradient
// accumulation may differ in the last ulp (re-associated reduction). The
// toggle exists for benchmarking and as a kill switch.
func SetBlockedMatMul(on bool) (prev bool) {
	return blockedMatMul.Swap(on)
}

// matmulInto computes dst = a(rA×cA) · b(cA×cB) with dst pre-sized.
func matmulInto(dst, a, b []float64, rA, cA, cB int) {
	if blockedMatMul.Load() && cA >= mmPackMinK && cB >= 4 && rA*cA*cB >= mmPackMinWork {
		matmulIntoBlocked(dst, a, b, rA, cA, cB)
		return
	}
	parallelRows(rA, cA*cB, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a[i*cA : (i+1)*cA]
			di := dst[i*cB : (i+1)*cB]
			for j := range di {
				di[j] = 0
			}
			for k, av := range ai {
				if av == 0 {
					continue
				}
				bk := b[k*cB : (k+1)*cB]
				for j, bv := range bk {
					di[j] += av * bv
				}
			}
		}
	})
}

// matmulIntoBlocked is the packed path of matmulInto: b is repacked once
// into column panels of width mmBlockJ (each panel row-major over k), then
// each shard walks j/k tiles so one ≤32 KiB tile is reused across all of the
// shard's rows. Accumulation folds terms directly into dst in ascending k
// order — tiles ascend and rows within a tile ascend — which is the naive
// kernel's association exactly, so results match bit for bit.
func matmulIntoBlocked(dst, a, b []float64, rA, cA, cB int) {
	bp, handle := getRawBuf(cA * cB)
	off := 0
	for jb := 0; jb < cB; jb += mmBlockJ {
		je := min(jb+mmBlockJ, cB)
		w := je - jb
		for k := 0; k < cA; k++ {
			copy(bp[off+k*w:off+(k+1)*w], b[k*cB+jb:k*cB+je])
		}
		off += cA * w
	}
	parallelRows(rA, 2*cA*cB, func(lo, hi int) {
		off := 0
		for jb := 0; jb < cB; jb += mmBlockJ {
			je := min(jb+mmBlockJ, cB)
			w := je - jb
			for kb := 0; kb < cA; kb += mmBlockK {
				ke := min(kb+mmBlockK, cA)
				i := lo
				for ; i+2 <= hi; i += 2 {
					ai0 := a[i*cA : (i+1)*cA]
					ai1 := a[(i+1)*cA : (i+2)*cA]
					di0 := dst[i*cB+jb : i*cB+je]
					di1 := dst[(i+1)*cB+jb : (i+1)*cB+je]
					if kb == 0 {
						for j := range di0 {
							di0[j] = 0
						}
						for j := range di1 {
							di1[j] = 0
						}
					}
					for k := kb; k < ke; k++ {
						axpyPair(di0, di1, bp[off+k*w:off+(k+1)*w], ai0[k], ai1[k])
					}
				}
				for ; i < hi; i++ {
					ai := a[i*cA : (i+1)*cA]
					di := dst[i*cB+jb : i*cB+je]
					if kb == 0 {
						for j := range di {
							di[j] = 0
						}
					}
					for k := kb; k < ke; k++ {
						av := ai[k]
						if av == 0 {
							continue
						}
						axpy4(di, bp[off+k*w:off+(k+1)*w], av)
					}
				}
			}
			off += cA * w
		}
	})
	putBuf(handle)
}

// matmulAccT computes dst += aᵀ(cA×rA)·b(rA×cB) where a is rA×cA — used for
// weight gradients (dW = Xᵀ·dY).
func matmulAccT(dst, a, b []float64, rA, cA, cB int) {
	if blockedMatMul.Load() && rA >= mmPackMinK && rA*cA*cB >= mmPackMinWork {
		matmulAccTBlocked(dst, a, b, rA, cA, cB)
		return
	}
	parallelRows(cA, rA*cB, func(lo, hi int) {
		for i := lo; i < hi; i++ { // row of aᵀ = column i of a
			di := dst[i*cB : (i+1)*cB]
			for k := 0; k < rA; k++ {
				av := a[k*cA+i]
				if av == 0 {
					continue
				}
				bk := b[k*cB : (k+1)*cB]
				for j, bv := range bk {
					di[j] += av * bv
				}
			}
		}
	})
}

// matmulAccTBlocked packs aᵀ once so each gradient row reads its activation
// column sequentially instead of with stride cA, then tiles the k loop so a
// block of b's rows is reused across the shard. Accumulation per element
// stays in ascending k (= ascending activation row) order: tiles ascend and
// rows inside a tile ascend, so the sum matches the naive kernel bit for bit
// — which is also what makes packed-minibatch training reproduce the serial
// per-stream gradients exactly (streams are stacked in order, so one blocked
// accumulation over the batch adds the same terms in the same order as the
// per-stream accumulations did).
func matmulAccTBlocked(dst, a, b []float64, rA, cA, cB int) {
	at, handle := getRawBuf(cA * rA)
	for k := 0; k < rA; k++ {
		row := a[k*cA : (k+1)*cA]
		for i, v := range row {
			at[i*rA+k] = v
		}
	}
	parallelRows(cA, 2*rA*cB, func(lo, hi int) {
		for kb := 0; kb < rA; kb += mmBlockK {
			ke := min(kb+mmBlockK, rA)
			i := lo
			for ; i+2 <= hi; i += 2 {
				ai0 := at[i*rA : (i+1)*rA]
				ai1 := at[(i+1)*rA : (i+2)*rA]
				di0 := dst[i*cB : (i+1)*cB]
				di1 := dst[(i+1)*cB : (i+2)*cB]
				for k := kb; k < ke; k++ {
					axpyPair(di0, di1, b[k*cB:(k+1)*cB], ai0[k], ai1[k])
				}
			}
			for ; i < hi; i++ {
				ai := at[i*rA : (i+1)*rA]
				di := dst[i*cB : (i+1)*cB]
				for k := kb; k < ke; k++ {
					av := ai[k]
					if av == 0 {
						continue
					}
					axpy4(di, b[k*cB:(k+1)*cB], av)
				}
			}
		}
	})
	putBuf(handle)
}

// matmulAccBT computes dst += a(rA×cA)·bᵀ(cB×cA→cA×cB)… precisely:
// dst(rA×rB) += a(rA×cA) · bᵀ where b is rB×cA — used for input gradients
// (dX = dY·Wᵀ). The packing condition depends only on b's (weight) shape so
// that every sequence length of a given layer takes the same path.
func matmulAccBT(dst, a, b []float64, rA, cA, rB int) {
	if blockedMatMul.Load() && cA >= 4 && cA*rB >= mmPackMinPanel {
		matmulAccBTBlocked(dst, a, b, rA, cA, rB)
		return
	}
	parallelRows(rA, cA*rB, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a[i*cA : (i+1)*cA]
			di := dst[i*rB : (i+1)*rB]
			for j := 0; j < rB; j++ {
				bj := b[j*cA : (j+1)*cA]
				var s float64
				for k, av := range ai {
					s += av * bj[k]
				}
				di[j] += s
			}
		}
	})
}

// matmulAccBTBlocked packs b (already transposed relative to the product)
// back into k-major order once, turning the per-element dot products of the
// naive path into axpy row updates: for each k, one multiple of a packed
// row folds into the destination row. This trades the naive path's
// dot-accumulator dependency chain for independent adds, at the cost of
// re-associating the k-reduction (terms fold directly into dst), which can
// differ from the naive path in the last ulp.
func matmulAccBTBlocked(dst, a, b []float64, rA, cA, rB int) {
	bt, handle := getRawBuf(cA * rB) // bt[k*rB+j] = b[j*cA+k]
	for j := 0; j < rB; j++ {
		row := b[j*cA : (j+1)*cA]
		for k, v := range row {
			bt[k*rB+j] = v
		}
	}
	parallelRows(rA, 2*cA*rB, func(lo, hi int) {
		for kb := 0; kb < cA; kb += mmBlockK {
			ke := min(kb+mmBlockK, cA)
			i := lo
			for ; i+2 <= hi; i += 2 {
				ai0 := a[i*cA : (i+1)*cA]
				ai1 := a[(i+1)*cA : (i+2)*cA]
				di0 := dst[i*rB : (i+1)*rB]
				di1 := dst[(i+1)*rB : (i+2)*rB]
				for k := kb; k < ke; k++ {
					axpyPair(di0, di1, bt[k*rB:(k+1)*rB], ai0[k], ai1[k])
				}
			}
			for ; i < hi; i++ {
				ai := a[i*cA : (i+1)*cA]
				di := dst[i*rB : (i+1)*rB]
				for k := kb; k < ke; k++ {
					av := ai[k]
					if av == 0 {
						continue
					}
					axpy4(di, bt[k*rB:(k+1)*rB], av)
				}
			}
		}
	})
	putBuf(handle)
}
