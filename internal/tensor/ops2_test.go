package tensor

import (
	"math"
	"testing"
)

func TestScaleRowsGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(3, 4, 1, rng).Param()
	col := Randn(3, 1, 1, rng).Param()
	checkGrads(t, "scale_rows", []*Tensor{a, col}, func() *Tensor {
		return Mean(ScaleRows(a, col))
	})
}

func TestScaleRowsForward(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	col := FromSlice(2, 1, []float64{10, 0.5})
	out := ScaleRows(a, col)
	want := []float64{10, 20, 1.5, 2}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("ScaleRows[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}

func TestScaleRowsShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	ScaleRows(New(3, 2), New(2, 1))
}

func TestMeanRowsGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(4, 3, 1, rng).Param()
	w := Randn(1, 3, 1, rng)
	checkGrads(t, "mean_rows", []*Tensor{a}, func() *Tensor {
		return Mean(Mul(MeanRows(a), w))
	})
}

func TestMeanRowsForward(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m := MeanRows(a)
	if m.Rows != 1 || m.Cols != 2 || m.Data[0] != 2 || m.Data[1] != 3 {
		t.Fatalf("MeanRows = %v", m.Data)
	}
}

func TestBroadcastScalarGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(1, 1, 1, rng).Param()
	w := Randn(4, 1, 1, rng)
	checkGrads(t, "bcast_scalar", []*Tensor{a}, func() *Tensor {
		return Mean(Mul(BroadcastScalar(a, 4), w))
	})
}

func TestBroadcastScalarShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-scalar input")
		}
	}()
	BroadcastScalar(New(2, 1), 3)
}

// The minibatch-variance composition used by the GAN discriminator must be
// differentiable end-to-end.
func TestMinibatchVarianceGrad(t *testing.T) {
	rng := newRNG()
	x := Randn(4, 3, 1, rng).Param()
	checkGrads(t, "minibatch_variance", []*Tensor{x}, func() *Tensor {
		mean := MeanRows(x)
		centered := Add(x, Scale(mean, -1))
		variance := Mean(Mul(centered, centered))
		return Mean(ConcatCols(x, BroadcastScalar(variance, x.Rows)))
	})
}

func TestDropoutTrainingAndIdentity(t *testing.T) {
	rng := newRNG()
	a := Randn(50, 50, 1, rng)
	// p<=0 or nil rng: identity (same tensor).
	if Dropout(a, 0, rng) != a || Dropout(a, 0.5, nil) != a {
		t.Fatal("dropout must be identity when disabled")
	}
	out := Dropout(a, 0.5, rng)
	zeros := 0
	for i, v := range out.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2*a.Data[i]) > 1e-12 {
			t.Fatalf("survivor %d not scaled by 1/(1-p): %v vs %v", i, v, a.Data[i])
		}
	}
	frac := float64(zeros) / float64(len(out.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropout rate %v, want ≈0.5", frac)
	}
}

func TestDropoutGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(3, 3, 1, rng).Param()
	// Fix the mask by reusing one dropout output within the loss closure:
	// gradient check requires a deterministic function, so check the
	// identity-mode gradient (p=0) plus manual mask verification above.
	checkGrads(t, "dropout_identity", []*Tensor{a}, func() *Tensor {
		return Mean(Dropout(a, 0, nil))
	})
}

func TestSubGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(2, 3, 1, rng).Param()
	b := Randn(2, 3, 1, rng).Param()
	checkGrads(t, "sub", []*Tensor{a, b}, func() *Tensor {
		return Mean(Sub(a, b))
	})
}

func TestScalarHelper(t *testing.T) {
	s := Scalar(3.5)
	if s.Rows != 1 || s.Cols != 1 || s.Data[0] != 3.5 {
		t.Fatalf("Scalar = %+v", s)
	}
}

func TestCrossEntropyAllMasked(t *testing.T) {
	rng := newRNG()
	logits := Randn(2, 3, 1, rng).Param()
	loss := CrossEntropy(logits, []int{-1, -1})
	if loss.Data[0] != 0 {
		t.Fatalf("all-masked CE = %v, want 0", loss.Data[0])
	}
	loss.Backward() // must not panic or produce NaN
	for _, g := range logits.Grad {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestGaussianNLLKnownValue(t *testing.T) {
	// mean 0, logStd 0 (σ=1), target 0: NLL = 0.5·log(2π) ≈ 0.9189.
	mean := New(1, 1)
	logStd := New(1, 1)
	loss := GaussianNLL(mean, logStd, []float64{0}, []bool{true})
	if math.Abs(loss.Data[0]-0.9189385332046727) > 1e-12 {
		t.Fatalf("NLL = %v", loss.Data[0])
	}
}

func TestBCEKnownValue(t *testing.T) {
	// logit 0, target 1: loss = log 2.
	logits := New(1, 1)
	loss := BCEWithLogits(logits, []float64{1})
	if math.Abs(loss.Data[0]-math.Log(2)) > 1e-12 {
		t.Fatalf("BCE = %v", loss.Data[0])
	}
}
